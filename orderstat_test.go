package bst_test

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	bst "repro"
)

// TestOrderStatsDisabled: without WithOrderStatistics every aggregate
// query answers ErrNoOrderStats, on both layouts.
func TestOrderStatsDisabled(t *testing.T) {
	for _, opts := range [][]bst.Option{
		nil,
		{bst.WithShards(4), bst.WithShardRange(0, 1<<20)},
	} {
		tr := bst.New(opts...)
		tr.Insert(7)
		if _, err := tr.Rank(7, bst.Exact); !errors.Is(err, bst.ErrNoOrderStats) {
			t.Fatalf("Rank err = %v, want ErrNoOrderStats", err)
		}
		if _, err := tr.Select(0, bst.Exact); !errors.Is(err, bst.ErrNoOrderStats) {
			t.Fatalf("Select err = %v, want ErrNoOrderStats", err)
		}
		if _, err := tr.CountRange(0, 10, bst.Exact); !errors.Is(err, bst.ErrNoOrderStats) {
			t.Fatalf("CountRange err = %v, want ErrNoOrderStats", err)
		}
		if _, err := tr.SumRange(0, 10, bst.Exact); !errors.Is(err, bst.ErrNoOrderStats) {
			t.Fatalf("SumRange err = %v, want ErrNoOrderStats", err)
		}
		err := tr.ScanIndexed(0, 10, bst.Exact, func(int64) bool { return true })
		if !errors.Is(err, bst.ErrNoOrderStats) {
			t.Fatalf("ScanIndexed err = %v, want ErrNoOrderStats", err)
		}
		tr.Close()
	}
}

// TestOrderStatsAgainstReference drives the public API on both layouts
// against a sorted reference, including clamping and edge indices.
func TestOrderStatsAgainstReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []bst.Option
	}{
		{"single", []bst.Option{bst.WithOrderStatistics()}},
		{"sharded", []bst.Option{
			bst.WithOrderStatistics(),
			bst.WithShards(4), bst.WithShardRange(-1<<19, 1<<19),
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := bst.New(tc.opts...)
			defer tr.Close()
			rng := rand.New(rand.NewSource(5))
			ref := map[int64]bool{}
			for i := 0; i < 3000; i++ {
				k := int64(rng.Intn(1<<20)) - 1<<19 // negatives included
				if rng.Intn(4) == 0 {
					tr.Delete(k)
					delete(ref, k)
				} else {
					tr.Insert(k)
					ref[k] = true
				}
			}
			sorted := make([]int64, 0, len(ref))
			for k := range ref {
				sorted = append(sorted, k)
			}
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

			for trial := 0; trial < 40; trial++ {
				k := int64(rng.Intn(1<<20)) - 1<<19
				want := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= k })
				if got, err := tr.Rank(k, bst.Exact); err != nil || got != want {
					t.Fatalf("Rank(%d) = (%d,%v), want %d", k, got, err, want)
				}

				lo := int64(rng.Intn(1<<20)) - 1<<19
				hi := lo + int64(rng.Intn(1<<19))
				wantN, wantS := 0, int64(0)
				for _, v := range sorted {
					if v >= lo && v <= hi {
						wantN++
						wantS += v
					}
				}
				if got, err := tr.CountRange(lo, hi, bst.Exact); err != nil || got != wantN {
					t.Fatalf("CountRange(%d,%d) = (%d,%v), want %d", lo, hi, got, err, wantN)
				}
				if got, err := tr.SumRange(lo, hi, bst.Exact); err != nil || got != wantS {
					t.Fatalf("SumRange(%d,%d) = (%d,%v), want %d", lo, hi, got, err, wantS)
				}

				i := rng.Intn(len(sorted))
				if got, err := tr.Select(i, bst.Exact); err != nil || got != sorted[i] {
					t.Fatalf("Select(%d) = (%d,%v), want %d", i, got, err, sorted[i])
				}
			}

			// Edges: rank above MaxKey is the population, inverted and
			// clamped ranges, select out of bounds.
			if got, err := tr.Rank(bst.MaxKey+1, bst.Exact); err != nil || got != len(sorted) {
				t.Fatalf("Rank(MaxKey+1) = (%d,%v), want %d", got, err, len(sorted))
			}
			if got, err := tr.CountRange(10, 0, bst.Exact); err != nil || got != 0 {
				t.Fatalf("CountRange inverted = (%d,%v), want 0", got, err)
			}
			minK := int64(-1 << 63)
			if got, err := tr.CountRange(minK, bst.MaxKey+2, bst.Exact); err != nil || got != len(sorted) {
				t.Fatalf("CountRange full clamped = (%d,%v), want %d", got, err, len(sorted))
			}
			if _, err := tr.Select(len(sorted), bst.Exact); !errors.Is(err, bst.ErrSelectOutOfRange) {
				t.Fatalf("Select(len) err = %v, want ErrSelectOutOfRange", err)
			}
			if _, err := tr.Select(-1, bst.Exact); !errors.Is(err, bst.ErrSelectOutOfRange) {
				t.Fatalf("Select(-1) err = %v, want ErrSelectOutOfRange", err)
			}

			// ScanIndexed streams exactly the in-range reference keys.
			lo, hi := int64(-1<<18), int64(1<<18)
			var got []int64
			if err := tr.ScanIndexed(lo, hi, bst.Exact, func(k int64) bool {
				got = append(got, k)
				return true
			}); err != nil {
				t.Fatalf("ScanIndexed: %v", err)
			}
			var want []int64
			for _, v := range sorted {
				if v >= lo && v <= hi {
					want = append(want, v)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("ScanIndexed yielded %d keys, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("ScanIndexed[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

// TestShardedAggregatesAgreeWithScan is the cross-shard regression: on a
// forest, Exact CountRange over a boundary-spanning window must agree
// with the merged Scan's count once writers quiesce, and stay inside the
// acked/issued monotone window while they churn. Same for Exact Rank
// versus a scan-derived rank.
func TestShardedAggregatesAgreeWithScan(t *testing.T) {
	const (
		span    = 1 << 20
		workers = 4
		perW    = 3000
	)
	tr := bst.New(
		bst.WithOrderStatistics(),
		bst.WithShards(4), bst.WithShardRange(0, span),
	)
	defer tr.Close()

	// Window picked to straddle shard boundaries: the 4 shards split
	// [0, span] evenly, so [span/4 - 1000, 3*span/4 + 1000] crosses two.
	lo, hi := int64(span/4-1000), int64(3*span/4+1000)
	if tr.ShardOf(lo) == tr.ShardOf(hi) {
		t.Fatalf("test window does not span shards (%d..%d)", tr.ShardOf(lo), tr.ShardOf(hi))
	}

	var issued, acked atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct in-window keys per worker: every insert is new,
			// so completed inserts == in-window key count growth.
			for i := 0; i < perW; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := lo + int64(w*perW+i)
				issued.Add(1)
				tr.Insert(k)
				acked.Add(1)
			}
		}(w)
	}

	// Under churn: every Exact count sits inside the monotone window
	// [ackedBefore, issuedAfter], and successive exact counts never
	// decrease (insert-only workload). The Scan count obeys the same
	// window, so the two can only diverge within in-flight slack.
	prev := 0
	for q := 0; q < 200; q++ {
		before := acked.Load()
		got, err := tr.CountRange(lo, hi, bst.Exact)
		after := issued.Load()
		if err != nil {
			t.Fatalf("CountRange: %v", err)
		}
		if int64(got) < before || int64(got) > after {
			t.Fatalf("exact CountRange = %d outside [acked %d, issued %d]", got, before, after)
		}
		if got < prev {
			t.Fatalf("exact CountRange went backwards: %d after %d", got, prev)
		}
		prev = got

		before = acked.Load()
		rank, err := tr.Rank(hi+1, bst.Exact)
		after = issued.Load()
		if err != nil {
			t.Fatalf("Rank: %v", err)
		}
		if int64(rank) < before || int64(rank) > after {
			t.Fatalf("exact Rank = %d outside [acked %d, issued %d]", rank, before, after)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: aggregate answers and the merged Scan agree exactly.
	scanN := 0
	tr.Scan(lo, hi, func(int64) bool { scanN++; return true })
	if got, _ := tr.CountRange(lo, hi, bst.Exact); got != scanN {
		t.Fatalf("quiesced CountRange = %d, Scan count = %d", got, scanN)
	}
	scanRank := 0
	tr.Scan(0, hi, func(int64) bool { scanRank++; return true })
	if got, _ := tr.Rank(hi+1, bst.Exact); got != scanRank {
		t.Fatalf("quiesced Rank(%d) = %d, scan rank = %d", hi+1, got, scanRank)
	}
}

// TestBoundedStaleBudgetPublic: a BoundedStale answer is within the dirty
// budget of exact — asserted at the public API, per the documented bound.
func TestBoundedStaleBudgetPublic(t *testing.T) {
	const budget = 32
	tr := bst.New(bst.WithOrderStatistics())
	defer tr.Close()
	for k := int64(0); k < 1000; k++ {
		tr.Insert(k)
	}
	exact, err := tr.CountRange(0, 1<<20, bst.Exact)
	if err != nil || exact != 1000 {
		t.Fatalf("exact warmup count = (%d,%v)", exact, err)
	}
	// budget pending mutations: the stale answer may lag, but by no more
	// than the budget; the exact answer always reflects them all.
	for k := int64(1000); k < 1000+budget; k++ {
		tr.Insert(k)
	}
	stale, err := tr.CountRange(0, 1<<20, bst.BoundedStale(budget))
	if err != nil {
		t.Fatalf("stale count: %v", err)
	}
	if stale < 1000 || stale > 1000+budget {
		t.Fatalf("BoundedStale(%d) count = %d, want within [1000,%d]", budget, stale, 1000+budget)
	}
	if got, _ := tr.CountRange(0, 1<<20, bst.Exact); got != 1000+budget {
		t.Fatalf("exact count = %d, want %d", got, 1000+budget)
	}
}
