package bst

import (
	"repro/internal/forest"
	"repro/internal/keys"
	"repro/internal/metrics"
)

// Sharding options. WithShards partitions the key space across several
// independent core trees (a "forest"): each shard owns its own arena,
// reclamation domain, and WAL lane (when wrapped by internal/durable), so
// write throughput scales with shard count instead of funneling through
// one allocator and one group-commit line. Only the default
// NatarajanMittal algorithm shards; other algorithms ignore these options.

// WithShards splits the key space across n independent trees (n is rounded
// up to a power of two; 0 and 1 keep the single-tree layout). Point
// operations route by a range split — one subtract and one shift in the
// hot path. Scan merges per-shard iterators into one sorted stream. Each
// operation remains individually linearizable; operations on different
// shards are as independent as operations on one tree (see DESIGN.md §14
// for the exact consistency scope).
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithShardRange declares the expected user key range [lo, hi] (inclusive)
// for shard balancing. The range split cuts this span evenly across
// shards; keys outside it remain storable but clamp to the first/last
// shard. Without it the full int64 space is split, which balances uniform
// random keys but routes a small dense range (say [0, 1e6)) to one shard.
func WithShardRange(lo, hi int64) Option {
	return func(c *config) {
		c.shardLo, c.shardHi = lo, hi
		c.shardRange = true
	}
}

// newForest builds the sharded backend for New.
func newForest(cfg config, reg *metrics.Registry) (*forest.Forest, error) {
	fc := forest.Config{Shards: cfg.shards}
	if cfg.shardRange {
		lo, hi := cfg.shardLo, cfg.shardHi
		if hi > MaxKey {
			hi = MaxKey
		}
		if lo > hi {
			lo = hi
		}
		fc.Lo, fc.Hi = keys.Map(lo), keys.Map(hi)
	}
	fc.Tree.Capacity = cfg.capacity
	fc.Tree.Reclaim = cfg.reclaim
	fc.Tree.Metrics = reg
	fc.Tree.TrackDirty = cfg.orderstat
	return forest.New(fc)
}

// Shards reports the tree's effective shard count: 1 for every unsharded
// tree, the rounded power-of-two count for a forest.
func (t *Tree) Shards() int {
	if f, ok := t.b.(*forest.Forest); ok {
		return f.Shards()
	}
	return 1
}

// ShardOf reports which shard stores key (always 0 when unsharded). The
// mapping is stable for the lifetime of the tree; the durable layer keys
// its WAL lanes on it.
func (t *Tree) ShardOf(key int64) int {
	if f, ok := t.b.(*forest.Forest); ok {
		return f.ShardOf(mapKey(key))
	}
	return 0
}

// ShardKeyRange returns the inclusive user key range routed to shard i
// (the full storable range when unsharded). Checkpoints scan one shard by
// passing these bounds to Scan.
func (t *Tree) ShardKeyRange(i int) (lo, hi int64) {
	if f, ok := t.b.(*forest.Forest); ok {
		ulo, uhi := f.Bounds(i)
		return keys.Unmap(ulo), keys.Unmap(uhi)
	}
	if i != 0 {
		panic("bst: shard index out of range on unsharded tree")
	}
	return minInt64, MaxKey
}

const minInt64 = -1 << 63
