// bstbench regenerates Figure 4 of "Fast Concurrent Lock-Free Binary
// Search Trees" (Natarajan & Mittal, PPoPP 2014): system throughput of
// four concurrent BST implementations across key ranges (maximum tree
// size), workload mixes and thread counts.
//
// Each (key range × workload) pair corresponds to one graph of Figure 4;
// this tool prints one table per graph with a row per thread count and a
// column per algorithm, followed by the paper-style relative-speedup
// summary of NM-BST against each baseline.
//
// Examples:
//
//	bstbench                                  # full Figure 4 grid, quick cells
//	bstbench -keyranges 1000 -workloads write-dominated -threads 1,2,4,8
//	bstbench -duration 5s -reps 3             # slower, tighter cells
//	bstbench -csv > fig4.csv                  # machine-readable series
//	bstbench -json BENCH.json -metrics        # stable JSON + telemetry deltas
//	bstbench -metrics -metrics-addr :9100     # scrape /metrics while it runs
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	runtrace "runtime/trace"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/rtrace"
	"repro/internal/stats"
	"repro/internal/workload"
)

// curRegistry is the registry of the cell currently measuring, read by the
// live -metrics-addr endpoint (registries rotate per rep so JSON deltas
// stay per-cell).
var curRegistry atomic.Pointer[metrics.Registry]

func main() {
	var (
		targetsFlag   = flag.String("targets", "nm,efrb,hj,bcco", "comma-separated algorithms (nm, nm-boxed, efrb, hj, bcco, cgl, kst4, kst16)")
		keyRangesFlag = flag.String("keyranges", "1000,10000,100000,1000000", "comma-separated key ranges (paper: 1K,10K,100K,1M)")
		workloadsFlag = flag.String("workloads", "write-dominated,mixed,read-dominated", "comma-separated workload mixes")
		threadsFlag   = flag.String("threads", "1,2,4,8,16,32,64", "comma-separated thread counts")
		duration      = flag.Duration("duration", 500*time.Millisecond, "measurement duration per cell")
		reps          = flag.Int("reps", 1, "repetitions per cell (median reported)")
		seed          = flag.Uint64("seed", 1, "base RNG seed")
		zipfS         = flag.Float64("zipf", 0, "Zipf skew parameter (>1 enables skewed keys; 0 = uniform as in the paper)")
		reclaim       = flag.Bool("reclaim", false, "enable epoch reclamation on the NM tree (ablation; paper runs without)")
		csv           = flag.Bool("csv", false, "emit one CSV stream instead of tables")
		noPrefill     = flag.Bool("no-prefill", false, "skip pre-population (paper pre-populates to half the key range)")
		jsonPath      = flag.String("json", "", "also write a stable bst-bench/v1 JSON document to this path (\"-\" for stdout)")
		batchMode     = flag.Bool("batch", false, "measure batched vs single-op throughput on the nm tree (cells per -batchsizes) instead of the Figure 4 grid")
		shardsFlag    = flag.String("shards", "", "comma-separated shard counts; when set, measure the nm tree sharded across these counts (shard-mode table) instead of the Figure 4 grid")
		durableMode   = flag.Bool("durable", false, "measure durability overhead on the nm tree (in-memory baseline vs WAL sync policies fsync/interval/none) instead of the Figure 4 grid")
		batchSizes    = flag.String("batchsizes", "1,8,64", "comma-separated batch sizes for -batch mode (1 = single-op baseline)")
		aggMode       = flag.Bool("aggregate", false, "measure order-statistics queries (rank/select/count/sum) vs the scan baseline on an indexed nm tree instead of the Figure 4 grid")
		aggWriters    = flag.Int("agg-writers", 0, "concurrent mutators churning the tree during -aggregate cells (0 = quiescent)")
		aggMinSpeedup = flag.Float64("agg-min-speedup", 0, "fail unless count-exact beats scan-count by this factor at the largest key range (0 = no assertion)")
		metricsOn     = flag.Bool("metrics", false, "enable live contention telemetry on the nm tree (counters + sampled latency histograms)")
		metricsAddr   = flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /debug/vars (JSON) on this address while running (implies -metrics)")
		traceFile     = flag.String("trace", "", "write a runtime/trace capture of the whole run to this file")
		traceSample   = flag.Int("trace-sample", 0, "flight recorder: sample every Nth operation per worker and report per-phase time in the JSON cells (0 disables)")
	)
	flag.Parse()
	if *metricsAddr != "" {
		*metricsOn = true
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		fatal(err)
		fatal(runtrace.Start(f))
		defer func() { runtrace.Stop(); f.Close() }()
	}
	if *metricsAddr != "" {
		h := metrics.Handler(func() []metrics.Source {
			return []metrics.Source{{Name: harness.TargetNM, Registry: curRegistry.Load()}}
		})
		srv, err := serveHTTP(*metricsAddr, h)
		fatal(err)
		fmt.Printf("# metrics endpoint: http://%s/metrics\n", srv)
	}

	targets, err := parseTargets(*targetsFlag)
	fatal(err)
	keyRanges, err := parseInts(*keyRangesFlag)
	fatal(err)
	threads, err := parseInts(*threadsFlag)
	fatal(err)
	var mixes []workload.Mix
	for _, name := range strings.Split(*workloadsFlag, ",") {
		m, err := workload.MixByName(strings.TrimSpace(name))
		fatal(err)
		mixes = append(mixes, m)
	}

	var csvTable *stats.Table
	if *csv {
		csvTable = stats.NewTable("keyrange", "workload", "threads", "algorithm", "ops_per_sec")
	}
	var doc *benchJSON
	if *jsonPath != "" {
		doc = newBenchJSON(duration.String(), *reps, *seed, *zipfS, *reclaim, !*noPrefill, *metricsOn)
	}

	if *aggMode {
		runAggregateMode(keyRanges, *aggWriters, *reps, *duration, *seed, *aggMinSpeedup, csvTable, doc)
		if *csv {
			fmt.Print(csvTable.CSV())
		}
		if doc != nil {
			fatal(doc.write(*jsonPath))
		}
		return
	}

	if *durableMode {
		runDurableMode(keyRanges, mixes, threads, batchModeDeps{
			duration: *duration, reps: *reps, seed: *seed, zipfS: *zipfS,
			reclaim: *reclaim, prefill: !*noPrefill, metricsOn: *metricsOn,
			traceSample: *traceSample, csvTable: csvTable, doc: doc,
		})
		if *csv {
			fmt.Print(csvTable.CSV())
		}
		if doc != nil {
			fatal(doc.write(*jsonPath))
		}
		return
	}

	if *shardsFlag != "" {
		counts, err := parseInts(*shardsFlag)
		fatal(err)
		runShardMode(keyRanges, mixes, threads, counts, batchModeDeps{
			duration: *duration, reps: *reps, seed: *seed, zipfS: *zipfS,
			reclaim: *reclaim, prefill: !*noPrefill, metricsOn: *metricsOn,
			traceSample: *traceSample, csvTable: csvTable, doc: doc,
		})
		if *csv {
			fmt.Print(csvTable.CSV())
		}
		if doc != nil {
			fatal(doc.write(*jsonPath))
		}
		return
	}

	if *batchMode {
		sizes, err := parseInts(*batchSizes)
		fatal(err)
		runBatchMode(keyRanges, mixes, threads, sizes, batchModeDeps{
			duration: *duration, reps: *reps, seed: *seed, zipfS: *zipfS,
			reclaim: *reclaim, prefill: !*noPrefill, metricsOn: *metricsOn,
			traceSample: *traceSample, csvTable: csvTable, doc: doc,
		})
		if *csv {
			fmt.Print(csvTable.CSV())
		}
		if doc != nil {
			fatal(doc.write(*jsonPath))
		}
		return
	}

	fmt.Printf("# bstbench: Figure 4 reproduction — %d algorithms × %d key ranges × %d workloads × %d thread counts\n",
		len(targets), len(keyRanges), len(mixes), len(threads))
	fmt.Printf("# GOMAXPROCS=%d duration/cell=%v reps=%d zipf=%v reclaim=%v\n",
		runtime.GOMAXPROCS(0), *duration, *reps, *zipfS, *reclaim)

	for _, kr := range keyRanges {
		for _, mix := range mixes {
			if !*csv {
				fmt.Printf("\n== key range %d, workload %s ==\n", kr, mix.Name)
			}
			header := append([]string{"threads"}, names(targets)...)
			tbl := stats.NewTable(header...)
			// throughput[target][threadIdx]
			tp := make(map[string][]float64, len(targets))
			for _, th := range threads {
				row := []any{th}
				for _, tg := range targets {
					cfg := harness.Config{
						Threads:  th,
						Duration: *duration,
						KeyRange: int64(kr),
						Mix:      mix,
						Seed:     *seed,
						Prefill:  !*noPrefill,
						ZipfS:    *zipfS,
						Reclaim:  *reclaim,
					}
					runs, cell := runCell(tg, cfg, *reps, *metricsOn, *traceSample)
					v := stats.Median(runs)
					tp[tg.Name] = append(tp[tg.Name], v)
					row = append(row, stats.HumanCount(v))
					if *csv {
						csvTable.AddRow(kr, mix.Name, th, tg.Name, v)
					}
					if doc != nil {
						doc.Cells = append(doc.Cells, cell)
					}
				}
				tbl.AddRow(row...)
			}
			if !*csv {
				fmt.Print(tbl.String())
				printSpeedups(tp, threads)
			}
		}
	}
	if *csv {
		fmt.Print(csvTable.CSV())
	}
	if doc != nil {
		fatal(doc.write(*jsonPath))
	}
}

// runCell measures one (algorithm × threads × key range × workload) cell:
// reps fresh instances, each with its own telemetry registry when metricsOn
// (so every counter in the cell's JSON is a per-cell delta), summed across
// reps.
func runCell(tg harness.Target, cfg harness.Config, reps int, metricsOn bool, traceSample int) ([]float64, cellJSON) {
	cell := cellJSON{
		Algorithm: tg.Name,
		Threads:   cfg.Threads,
		KeyRange:  int(cfg.KeyRange),
		Workload:  cfg.Mix.Name,
		Reps:      reps,
	}
	var agg [metrics.NumOps]metrics.LatencySnapshot
	sampled := false
	runs := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*1_000_003
		var reg *metrics.Registry
		if metricsOn && tg.Name == harness.TargetNM {
			reg = metrics.NewRegistry(0)
			c.Metrics = reg
			curRegistry.Store(reg)
		}
		var rec *rtrace.Recorder
		if traceSample > 0 {
			// Fresh recorder per rep: the folded phase aggregates are
			// per-cell deltas, same discipline as the metrics registries.
			rec = rtrace.New(rtrace.Options{SampleEvery: traceSample})
			c.Trace = rec
		}
		res := harness.RunTarget(tg, c)
		runs = append(runs, res.Throughput())
		if reg != nil {
			cell.addMetrics(reg.Snapshot(), &agg)
			sampled = true
		}
		if rec != nil {
			cell.addTracePhases(rec.Phases())
		}
	}
	cell.OpsPerSec = runs
	cell.MedianOpsPerSec = stats.Median(runs)
	if sampled {
		cell.finishLatency(&agg)
	}
	return runs, cell
}

// batchModeDeps carries the flag-derived settings into -batch mode.
type batchModeDeps struct {
	duration    time.Duration
	reps        int
	seed        uint64
	zipfS       float64
	reclaim     bool
	prefill     bool
	metricsOn   bool
	traceSample int
	csvTable    *stats.Table
	doc         *benchJSON
}

// runBatchMode measures the nm tree's batched entry points against its own
// single-op loop: one table per (key range × workload) with a row per
// thread count and a column per batch size, followed by the amortization
// summary. Identical workload generators feed every cell, so a column's
// gain is purely the batch path — one epoch pin per group and sorted
// path-sharing seeks.
func runBatchMode(keyRanges []int, mixes []workload.Mix, threads, sizes []int, d batchModeDeps) {
	nm, err := harness.TargetByName(harness.TargetNM)
	fatal(err)
	fmt.Printf("# bstbench: batch amortization on %s — %d key ranges × %d workloads × %d thread counts × batch sizes %v\n",
		nm.Name, len(keyRanges), len(mixes), len(threads), sizes)
	fmt.Printf("# GOMAXPROCS=%d duration/cell=%v reps=%d zipf=%v reclaim=%v\n",
		runtime.GOMAXPROCS(0), d.duration, d.reps, d.zipfS, d.reclaim)

	for _, kr := range keyRanges {
		for _, mix := range mixes {
			if d.csvTable == nil {
				fmt.Printf("\n== key range %d, workload %s, batched ==\n", kr, mix.Name)
			}
			header := []string{"threads"}
			for _, b := range sizes {
				header = append(header, fmt.Sprintf("batch=%d", b))
			}
			tbl := stats.NewTable(header...)
			tp := make(map[int][]float64, len(sizes)) // batch size → per-thread medians
			for _, th := range threads {
				row := []any{th}
				for _, b := range sizes {
					cfg := harness.Config{
						Threads:   th,
						Duration:  d.duration,
						KeyRange:  int64(kr),
						Mix:       mix,
						Seed:      d.seed,
						Prefill:   d.prefill,
						ZipfS:     d.zipfS,
						Reclaim:   d.reclaim,
						BatchSize: b,
					}
					runs, cell := runCell(nm, cfg, d.reps, d.metricsOn, d.traceSample)
					v := stats.Median(runs)
					tp[b] = append(tp[b], v)
					row = append(row, stats.HumanCount(v))
					if d.csvTable != nil {
						d.csvTable.AddRow(kr, mix.Name, th, fmt.Sprintf("nm[b=%d]", b), v)
					}
					if d.doc != nil {
						cell.BatchSize = b
						d.doc.Cells = append(d.doc.Cells, cell)
					}
				}
				tbl.AddRow(row...)
			}
			if d.csvTable == nil {
				fmt.Print(tbl.String())
				printBatchSpeedups(tp, sizes, threads)
			}
		}
	}
}

// runShardMode measures the nm tree partitioned into a forest: one table
// per (key range × workload) with a row per thread count and a column per
// shard count, followed by the scaling summary against the shards=1
// column. Identical workload generators feed every cell, so a column's
// gain is purely the partitioning — per-shard arenas remove allocation-path
// sharing and per-shard epoch domains shrink reclamation scopes.
func runShardMode(keyRanges []int, mixes []workload.Mix, threads, counts []int, d batchModeDeps) {
	nm, err := harness.TargetByName(harness.TargetNM)
	fatal(err)
	fmt.Printf("# bstbench: sharded forest scaling on %s — %d key ranges × %d workloads × %d thread counts × shard counts %v\n",
		nm.Name, len(keyRanges), len(mixes), len(threads), counts)
	fmt.Printf("# GOMAXPROCS=%d duration/cell=%v reps=%d zipf=%v reclaim=%v\n",
		runtime.GOMAXPROCS(0), d.duration, d.reps, d.zipfS, d.reclaim)

	for _, kr := range keyRanges {
		for _, mix := range mixes {
			if d.csvTable == nil {
				fmt.Printf("\n== key range %d, workload %s, sharded ==\n", kr, mix.Name)
			}
			header := []string{"threads"}
			for _, n := range counts {
				header = append(header, fmt.Sprintf("shards=%d", n))
			}
			tbl := stats.NewTable(header...)
			tp := make(map[int][]float64, len(counts)) // shard count → per-thread medians
			for _, th := range threads {
				row := []any{th}
				for _, n := range counts {
					cfg := harness.Config{
						Threads:  th,
						Duration: d.duration,
						KeyRange: int64(kr),
						Mix:      mix,
						Seed:     d.seed,
						Prefill:  d.prefill,
						ZipfS:    d.zipfS,
						Reclaim:  d.reclaim,
						Shards:   n,
					}
					runs, cell := runCell(nm, cfg, d.reps, d.metricsOn, d.traceSample)
					v := stats.Median(runs)
					tp[n] = append(tp[n], v)
					row = append(row, stats.HumanCount(v))
					if d.csvTable != nil {
						d.csvTable.AddRow(kr, mix.Name, th, fmt.Sprintf("nm[s=%d]", n), v)
					}
					if d.doc != nil {
						cell.Shards = n
						d.doc.Cells = append(d.doc.Cells, cell)
					}
				}
				tbl.AddRow(row...)
			}
			if d.csvTable == nil {
				fmt.Print(tbl.String())
				printShardSpeedups(tp, counts, threads)
			}
		}
	}
}

// printShardSpeedups reports each shard count's gain over the single-tree
// baseline column (shards=1), when that baseline was measured.
func printShardSpeedups(tp map[int][]float64, counts, threads []int) {
	base, ok := tp[1]
	if !ok {
		return
	}
	for _, n := range counts {
		if n == 1 {
			continue
		}
		series := tp[n]
		lo, hi := 0.0, 0.0
		for i := range series {
			s := stats.Speedup(series[i], base[i])
			if i == 0 || s < lo {
				lo = s
			}
			if i == 0 || s > hi {
				hi = s
			}
		}
		fmt.Printf("  shards=%-3d vs single tree: %+.0f%% .. %+.0f%% (across %d thread counts)\n", n, lo, hi, len(threads))
	}
}

// printBatchSpeedups reports each batch size's gain over the single-op
// baseline column (batch size 1), when that baseline was measured.
func printBatchSpeedups(tp map[int][]float64, sizes, threads []int) {
	base, ok := tp[1]
	if !ok {
		return
	}
	for _, b := range sizes {
		if b == 1 {
			continue
		}
		series := tp[b]
		lo, hi := 0.0, 0.0
		for i := range series {
			s := stats.Speedup(series[i], base[i])
			if i == 0 || s < lo {
				lo = s
			}
			if i == 0 || s > hi {
				hi = s
			}
		}
		fmt.Printf("  batch=%-3d vs single-op: %+.0f%% .. %+.0f%% (across %d thread counts)\n", b, lo, hi, len(threads))
	}
}

// printSpeedups reports the paper-style "NM outperforms X by a%-b%" lines.
func printSpeedups(tp map[string][]float64, threads []int) {
	nm, ok := tp[harness.TargetNM]
	if !ok {
		return
	}
	for name, series := range tp {
		if name == harness.TargetNM {
			continue
		}
		lo, hi := 0.0, 0.0
		for i := range series {
			s := stats.Speedup(nm[i], series[i])
			if i == 0 || s < lo {
				lo = s
			}
			if i == 0 || s > hi {
				hi = s
			}
		}
		fmt.Printf("  nm vs %-8s: %+.0f%% .. %+.0f%% (across %d thread counts)\n", name, lo, hi, len(threads))
	}
}

func parseTargets(s string) ([]harness.Target, error) {
	var out []harness.Target
	for _, name := range strings.Split(s, ",") {
		t, err := harness.TargetByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no targets given")
	}
	return out, nil
}

func names(ts []harness.Target) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// serveHTTP starts a background HTTP server and returns its bound address.
// The server lives for the process; bench runs exit when measurement ends.
func serveHTTP(addr string, h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bstbench:", err)
		os.Exit(1)
	}
}
