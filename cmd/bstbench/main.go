// bstbench regenerates Figure 4 of "Fast Concurrent Lock-Free Binary
// Search Trees" (Natarajan & Mittal, PPoPP 2014): system throughput of
// four concurrent BST implementations across key ranges (maximum tree
// size), workload mixes and thread counts.
//
// Each (key range × workload) pair corresponds to one graph of Figure 4;
// this tool prints one table per graph with a row per thread count and a
// column per algorithm, followed by the paper-style relative-speedup
// summary of NM-BST against each baseline.
//
// Examples:
//
//	bstbench                                  # full Figure 4 grid, quick cells
//	bstbench -keyranges 1000 -workloads write-dominated -threads 1,2,4,8
//	bstbench -duration 5s -reps 3             # slower, tighter cells
//	bstbench -csv > fig4.csv                  # machine-readable series
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		targetsFlag   = flag.String("targets", "nm,efrb,hj,bcco", "comma-separated algorithms (nm, nm-boxed, efrb, hj, bcco, cgl, kst4, kst16)")
		keyRangesFlag = flag.String("keyranges", "1000,10000,100000,1000000", "comma-separated key ranges (paper: 1K,10K,100K,1M)")
		workloadsFlag = flag.String("workloads", "write-dominated,mixed,read-dominated", "comma-separated workload mixes")
		threadsFlag   = flag.String("threads", "1,2,4,8,16,32,64", "comma-separated thread counts")
		duration      = flag.Duration("duration", 500*time.Millisecond, "measurement duration per cell")
		reps          = flag.Int("reps", 1, "repetitions per cell (median reported)")
		seed          = flag.Uint64("seed", 1, "base RNG seed")
		zipfS         = flag.Float64("zipf", 0, "Zipf skew parameter (>1 enables skewed keys; 0 = uniform as in the paper)")
		reclaim       = flag.Bool("reclaim", false, "enable epoch reclamation on the NM tree (ablation; paper runs without)")
		csv           = flag.Bool("csv", false, "emit one CSV stream instead of tables")
		noPrefill     = flag.Bool("no-prefill", false, "skip pre-population (paper pre-populates to half the key range)")
	)
	flag.Parse()

	targets, err := parseTargets(*targetsFlag)
	fatal(err)
	keyRanges, err := parseInts(*keyRangesFlag)
	fatal(err)
	threads, err := parseInts(*threadsFlag)
	fatal(err)
	var mixes []workload.Mix
	for _, name := range strings.Split(*workloadsFlag, ",") {
		m, err := workload.MixByName(strings.TrimSpace(name))
		fatal(err)
		mixes = append(mixes, m)
	}

	fmt.Printf("# bstbench: Figure 4 reproduction — %d algorithms × %d key ranges × %d workloads × %d thread counts\n",
		len(targets), len(keyRanges), len(mixes), len(threads))
	fmt.Printf("# GOMAXPROCS=%d duration/cell=%v reps=%d zipf=%v reclaim=%v\n",
		runtime.GOMAXPROCS(0), *duration, *reps, *zipfS, *reclaim)

	var csvTable *stats.Table
	if *csv {
		csvTable = stats.NewTable("keyrange", "workload", "threads", "algorithm", "ops_per_sec")
	}

	for _, kr := range keyRanges {
		for _, mix := range mixes {
			if !*csv {
				fmt.Printf("\n== key range %d, workload %s ==\n", kr, mix.Name)
			}
			header := append([]string{"threads"}, names(targets)...)
			tbl := stats.NewTable(header...)
			// throughput[target][threadIdx]
			tp := make(map[string][]float64, len(targets))
			for _, th := range threads {
				row := []any{th}
				for _, tg := range targets {
					cfg := harness.Config{
						Threads:  th,
						Duration: *duration,
						KeyRange: int64(kr),
						Mix:      mix,
						Seed:     *seed,
						Prefill:  !*noPrefill,
						ZipfS:    *zipfS,
						Reclaim:  *reclaim,
					}
					runs := harness.RunRepeated(tg, cfg, *reps)
					v := stats.Median(runs)
					tp[tg.Name] = append(tp[tg.Name], v)
					row = append(row, stats.HumanCount(v))
					if *csv {
						csvTable.AddRow(kr, mix.Name, th, tg.Name, v)
					}
				}
				tbl.AddRow(row...)
			}
			if !*csv {
				fmt.Print(tbl.String())
				printSpeedups(tp, threads)
			}
		}
	}
	if *csv {
		fmt.Print(csvTable.CSV())
	}
}

// printSpeedups reports the paper-style "NM outperforms X by a%-b%" lines.
func printSpeedups(tp map[string][]float64, threads []int) {
	nm, ok := tp[harness.TargetNM]
	if !ok {
		return
	}
	for name, series := range tp {
		if name == harness.TargetNM {
			continue
		}
		lo, hi := 0.0, 0.0
		for i := range series {
			s := stats.Speedup(nm[i], series[i])
			if i == 0 || s < lo {
				lo = s
			}
			if i == 0 || s > hi {
				hi = s
			}
		}
		fmt.Printf("  nm vs %-8s: %+.0f%% .. %+.0f%% (across %d thread counts)\n", name, lo, hi, len(threads))
	}
}

func parseTargets(s string) ([]harness.Target, error) {
	var out []harness.Target
	for _, name := range strings.Split(s, ",") {
		t, err := harness.TargetByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no targets given")
	}
	return out, nil
}

func names(ts []harness.Target) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bstbench:", err)
		os.Exit(1)
	}
}
