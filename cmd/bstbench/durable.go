package main

import (
	"fmt"
	"os"
	"runtime"

	bst "repro"
	"repro/internal/durable"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/rtrace"
	"repro/internal/stats"
	"repro/internal/wal"
	"repro/internal/workload"
)

// -durable mode: the cost of log-before-ack. Each (key range × workload)
// table has a row per thread count and a column per store variant — the
// in-memory baseline plus one durable.Tree per WAL sync policy — so the
// overhead of the write-ahead log (and of actually waiting for fsync)
// reads directly across a row. Group commit is what keeps the fsync
// column usable at higher thread counts: concurrent appenders share one
// flush, so the per-op fsync cost divides by the group size.

// durablePolicies orders the columns. "memory" is bst.New behind the same
// Accessor API — the zero-durability baseline.
var durablePolicies = []string{"memory", "none", "interval", "fsync"}

// setInstance adapts the public int64-keyed bst.Accessor surface (shared
// by bst.Tree and durable.Tree) to the harness's internal-key Accessor.
type setInstance struct {
	newAcc func() bst.Accessor
}

type setAccessor struct{ a bst.Accessor }

func (i setInstance) NewAccessor() harness.Accessor { return setAccessor{i.newAcc()} }

func (a setAccessor) Search(u uint64) bool { return a.a.Contains(keys.Unmap(u)) }
func (a setAccessor) Insert(u uint64) bool { return a.a.Insert(keys.Unmap(u)) }
func (a setAccessor) Delete(u uint64) bool { return a.a.Delete(keys.Unmap(u)) }

// runDurableCell measures one (policy × cfg) cell: reps fresh stores, each
// on a fresh data dir.
func runDurableCell(policy string, cfg harness.Config, reps, traceSample int) ([]float64, cellJSON) {
	cell := cellJSON{
		Algorithm:  harness.TargetNM,
		SyncPolicy: policy,
		Threads:    cfg.Threads,
		KeyRange:   int(cfg.KeyRange),
		Workload:   cfg.Mix.Name,
		Reps:       reps,
	}
	runs := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*1_000_003
		var rec *rtrace.Recorder
		if traceSample > 0 {
			rec = rtrace.New(rtrace.Options{SampleEvery: traceSample})
		}
		runs = append(runs, durableRep(policy, c, rec))
		if rec != nil {
			cell.addTracePhases(rec.Phases())
		}
	}
	cell.OpsPerSec = runs
	cell.MedianOpsPerSec = stats.Median(runs)
	return runs, cell
}

func durableRep(policy string, cfg harness.Config, rec *rtrace.Recorder) float64 {
	treeOpts := []bst.Option{bst.WithCapacity(1 << 22)}
	if cfg.Reclaim {
		treeOpts = append(treeOpts, bst.WithReclamation())
	}
	var inst setInstance
	var prefillAcc func() bst.Accessor
	var cleanup func()
	if policy == "memory" {
		tree := bst.New(treeOpts...)
		inst = setInstance{newAcc: tree.NewAccessor}
		prefillAcc = tree.NewAccessor
		cleanup = func() { tree.Close() }
		// No WAL here: the harness's own sampling records the KTreeOp
		// baseline the durable columns compare against.
		cfg.Trace = rec
	} else {
		sync, err := wal.ParseSyncPolicy(policy)
		fatal(err)
		dir, err := os.MkdirTemp("", "bstbench-durable-")
		fatal(err)
		// Sampling lives in the durable layer for WAL-backed cells — it
		// splits each mutation into KTreeOp (apply + enqueue) and KWALWait
		// (group-commit wait), which is the whole point of tracing a
		// durability cell. The harness layer stays untraced so the phases
		// are recorded exactly once.
		dur, err := durable.Open(dir, durable.Options{Sync: sync, TreeOptions: treeOpts, Trace: rec})
		fatal(err)
		inst = setInstance{newAcc: dur.NewAccessor}
		// Prefill bypasses the WAL (straight into the wrapped tree): the
		// cell measures steady-state logged throughput, not the one-time
		// cost of logging the prefill.
		prefillAcc = dur.Underlying().NewAccessor
		cleanup = func() { dur.Close(); os.RemoveAll(dir) }
	}
	defer cleanup()

	if cfg.Prefill {
		p := workload.Prefiller{KeyRange: cfg.KeyRange, Seed: cfg.Seed}
		acc := prefillAcc()
		p.Fill(func(k int64) bool { return acc.Insert(k) })
	}
	c := cfg
	c.Prefill = false // done above, without timing it
	res := harness.Run(harness.TargetNM+"-durable-"+policy, inst, c)
	return res.Throughput()
}

// runDurableMode is the -durable entry point: batch-mode-shaped tables
// with one column per store variant and the overhead summary per table.
func runDurableMode(keyRanges []int, mixes []workload.Mix, threads []int, d batchModeDeps) {
	fmt.Printf("# bstbench: durability overhead on %s — %d key ranges × %d workloads × %d thread counts × policies %v\n",
		harness.TargetNM, len(keyRanges), len(mixes), len(threads), durablePolicies)
	fmt.Printf("# GOMAXPROCS=%d duration/cell=%v reps=%d reclaim=%v (acked⇒durable only under fsync)\n",
		runtime.GOMAXPROCS(0), d.duration, d.reps, d.reclaim)

	for _, kr := range keyRanges {
		for _, mix := range mixes {
			if d.csvTable == nil {
				fmt.Printf("\n== key range %d, workload %s, durable ==\n", kr, mix.Name)
			}
			header := []string{"threads"}
			header = append(header, durablePolicies...)
			tbl := stats.NewTable(header...)
			tp := make(map[string][]float64, len(durablePolicies))
			for _, th := range threads {
				row := []any{th}
				for _, policy := range durablePolicies {
					cfg := harness.Config{
						Threads:  th,
						Duration: d.duration,
						KeyRange: int64(kr),
						Mix:      mix,
						Seed:     d.seed,
						Prefill:  d.prefill,
						ZipfS:    d.zipfS,
						Reclaim:  d.reclaim,
					}
					runs, cell := runDurableCell(policy, cfg, d.reps, d.traceSample)
					v := stats.Median(runs)
					tp[policy] = append(tp[policy], v)
					row = append(row, stats.HumanCount(v))
					if d.csvTable != nil {
						d.csvTable.AddRow(kr, mix.Name, th, "nm["+policy+"]", v)
					}
					if d.doc != nil {
						d.doc.Cells = append(d.doc.Cells, cell)
					}
				}
				tbl.AddRow(row...)
			}
			if d.csvTable == nil {
				fmt.Print(tbl.String())
				printDurableOverhead(tp, threads)
			}
		}
	}
}

// printDurableOverhead reports each policy's cost against the in-memory
// baseline column.
func printDurableOverhead(tp map[string][]float64, threads []int) {
	base, ok := tp["memory"]
	if !ok {
		return
	}
	for _, policy := range durablePolicies {
		if policy == "memory" {
			continue
		}
		series := tp[policy]
		lo, hi := 0.0, 0.0
		for i := range series {
			s := stats.Speedup(series[i], base[i])
			if i == 0 || s < lo {
				lo = s
			}
			if i == 0 || s > hi {
				hi = s
			}
		}
		fmt.Printf("  sync=%-8s vs in-memory: %+.0f%% .. %+.0f%% (across %d thread counts)\n",
			policy, lo, hi, len(threads))
	}
}
