package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,64")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 64 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := parseInts("0"); err == nil {
		t.Fatal("non-positive accepted")
	}
}

func TestParseTargets(t *testing.T) {
	ts, err := parseTargets("nm, efrb")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Name != "nm" || ts[1].Name != "efrb" {
		t.Fatalf("parseTargets wrong: %v", names(ts))
	}
	if _, err := parseTargets("nm,bogus"); err == nil {
		t.Fatal("bogus target accepted")
	}
}
