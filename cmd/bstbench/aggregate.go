package main

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	bst "repro"
	"repro/internal/stats"
)

// -aggregate mode: order-statistics queries against the scan they
// replace. Each key range gets one table — a row per query method, all
// answering the same window shapes over the same population — so "what
// does CountRange buy over counting a Scan" reads straight down the
// column. The -agg-writers flag adds churn: exact queries then pay
// summary refresh waves (the price of linearizing against completed
// mutations) while bounded-stale queries keep serving the cached summary,
// which is the Exact-vs-BoundedStale trade the docs table records.

// aggMethods orders the rows. scan-count is the baseline every other
// method is compared against.
var aggMethods = []string{
	"scan-count", "count-exact", "count-stale",
	"rank-exact", "select-exact", "sum-exact",
}

// aggStaleBudget is the BoundedStale dirty budget for the *-stale rows:
// large enough that a cell's churn rarely forces a wave, so the row shows
// the pure cached-summary cost.
const aggStaleBudget = 4096

// runAggregateCell measures one (method × key range) cell: reps
// measurement windows over one prefilled tree, random half-range windows
// per query.
func runAggregateCell(tree *bst.Tree, method string, kr int, reps int, dur time.Duration, seed uint64) []float64 {
	exact := bst.Exact
	stale := bst.BoundedStale(aggStaleBudget)
	runs := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(int64(seed) + int64(rep)*7919))
		queries := 0
		deadline := time.Now().Add(dur)
		for time.Now().Before(deadline) {
			// A fresh window per query, half the key range wide on
			// average, so summaries can't special-case one range.
			lo := int64(rng.Intn(kr))
			hi := lo + int64(rng.Intn(kr/2+1))
			switch method {
			case "scan-count":
				n := 0
				tree.Scan(lo, hi, func(int64) bool { n++; return true })
			case "count-exact":
				mustAgg(tree.CountRange(lo, hi, exact))
			case "count-stale":
				mustAgg(tree.CountRange(lo, hi, stale))
			case "rank-exact":
				mustAgg(tree.Rank(hi, exact))
			case "select-exact":
				// lo is almost always below the population; churn can push
				// it past the end, which is an answer, not a failure.
				if _, err := tree.Select(int(lo), exact); err != nil && !errors.Is(err, bst.ErrSelectOutOfRange) {
					fatal(err)
				}
			case "sum-exact":
				mustAgg64(tree.SumRange(lo, hi, exact))
			}
			queries++
		}
		runs = append(runs, float64(queries)/dur.Seconds())
	}
	return runs
}

func mustAgg(_ int, err error)     { fatal(err) }
func mustAgg64(_ int64, err error) { fatal(err) }

// runAggregateMode is the -aggregate entry point.
func runAggregateMode(keyRanges []int, writers, reps int, dur time.Duration, seed uint64, minSpeedup float64, csvTable *stats.Table, doc *benchJSON) {
	fmt.Printf("# bstbench: order-statistics queries vs scan — %d key ranges × methods %v, writers=%d\n",
		len(keyRanges), aggMethods, writers)
	fmt.Printf("# GOMAXPROCS=%d duration/cell=%v reps=%d stale_budget=%d\n",
		runtime.GOMAXPROCS(0), dur, reps, aggStaleBudget)

	var lastSpeedup float64
	for _, kr := range keyRanges {
		// Shuffled prefill: monotone insertion would build the external
		// tree as a spine and hand the scan baseline a pathological shape.
		// Reclamation is on because churned cells recycle nodes for the
		// whole measurement — without it the writers exhaust the arena.
		tree := bst.New(bst.WithOrderStatistics(), bst.WithReclamation(),
			bst.WithCapacity(nextPow2(2*kr+16)))
		rng := rand.New(rand.NewSource(int64(seed)))
		for _, k := range rng.Perm(kr) {
			tree.Insert(int64(k))
		}
		// Warm the summary so quiescent cells measure steady state, not
		// the first wave.
		if _, err := tree.Rank(0, bst.Exact); err != nil {
			fatal(err)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		var churn atomic.Uint64
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(int64(seed) + 1000003*int64(w+1)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					k := int64(wrng.Intn(kr))
					if wrng.Intn(2) == 0 {
						tree.Insert(k)
					} else {
						tree.Delete(k)
					}
					churn.Add(1)
				}
			}(w)
		}

		tbl := stats.NewTable("method", "queries_per_sec", "vs_scan")
		var scanQPS float64
		for _, method := range aggMethods {
			runs := runAggregateCell(tree, method, kr, reps, dur, seed)
			v := stats.Median(runs)
			if method == "scan-count" {
				scanQPS = v
			}
			ratio := 0.0
			if scanQPS > 0 {
				ratio = v / scanQPS
			}
			if method == "count-exact" {
				lastSpeedup = ratio
			}
			tbl.AddRow(method, stats.HumanCount(v), fmt.Sprintf("%.1fx", ratio))
			if csvTable != nil {
				csvTable.AddRow(kr, "aggregate", 1, "nm["+method+"]", v)
			}
			if doc != nil {
				doc.Cells = append(doc.Cells, cellJSON{
					Algorithm:       "nm",
					Threads:         1,
					KeyRange:        kr,
					Workload:        "aggregate",
					Reps:            reps,
					AggMethod:       method,
					AggWriters:      writers,
					OpsPerSec:       runs,
					MedianOpsPerSec: v,
				})
			}
		}
		close(stop)
		wg.Wait()
		if csvTable == nil {
			fmt.Printf("\n== key range %d, aggregate queries (writers=%d, churned %d mutations) ==\n",
				kr, writers, churn.Load())
			fmt.Print(tbl.String())
		}
		tree.Close()
	}

	// The smoke gate's assertion line — always last on stdout.
	status := "ok"
	if minSpeedup > 0 && lastSpeedup < minSpeedup {
		status = fmt.Sprintf("FAIL (need ≥%.0fx)", minSpeedup)
	}
	fmt.Printf("aggregate: count-exact vs scan-count %.1fx at %d keys: %s\n",
		lastSpeedup, keyRanges[len(keyRanges)-1], status)
	if minSpeedup > 0 && lastSpeedup < minSpeedup {
		fatal(fmt.Errorf("aggregate speedup gate failed: %.1fx < %.1fx", lastSpeedup, minSpeedup))
	}
}

// nextPow2 rounds n up to a power of two (arena capacities require it).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
