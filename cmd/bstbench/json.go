package main

import (
	"encoding/json"
	"os"
	"runtime"

	"repro/internal/metrics"
	"repro/internal/rtrace"
)

// The -json output schema. Version it ("bst-bench/v1") so downstream
// tooling can accumulate a perf trajectory across PRs without guessing at
// field meanings; only add fields, never rename or repurpose them.
type benchJSON struct {
	Schema     string     `json:"schema"` // always "bst-bench/v1"
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Duration   string     `json:"duration_per_cell"`
	Reps       int        `json:"reps"`
	Seed       uint64     `json:"seed"`
	Zipf       float64    `json:"zipf_s"`
	Reclaim    bool       `json:"reclaim"`
	Prefill    bool       `json:"prefill"`
	Metrics    bool       `json:"metrics_enabled"`
	Cells      []cellJSON `json:"cells"`
}

type cellJSON struct {
	Algorithm string `json:"algorithm"`
	Threads   int    `json:"threads"`
	KeyRange  int    `json:"key_range"`
	Workload  string `json:"workload"`
	Reps      int    `json:"reps"`
	// BatchSize is the operations-per-batch of a -batch mode cell; 0 or 1
	// means the single-op loop. (Added for bst-bench/v1 consumers: new
	// field, never renamed.)
	BatchSize int `json:"batch_size,omitempty"`
	// Shards marks a -shards mode cell: the number of independent trees the
	// key space was partitioned across (0 or 1 = single tree). (bst-bench/v1:
	// new field, never renamed.)
	Shards int `json:"shards,omitempty"`
	// SyncPolicy marks a -durable mode cell: "memory" for the in-memory
	// baseline, else the WAL sync policy ("fsync", "interval", "none").
	// Empty for non-durable cells. (bst-bench/v1: new field, never
	// renamed.)
	SyncPolicy string `json:"sync_policy,omitempty"`
	// AggMethod marks an -aggregate mode cell: the query method measured
	// ("scan-count", "count-exact", "count-stale", "rank-exact",
	// "select-exact", "sum-exact"). ops_per_sec is queries/sec for these
	// cells. (bst-bench/v1: new field, never renamed.)
	AggMethod string `json:"agg_method,omitempty"`
	// AggWriters is the concurrent mutator count churning the tree during
	// an -aggregate cell (0 = quiescent). (bst-bench/v1: new field, never
	// renamed.)
	AggWriters      int       `json:"agg_writers,omitempty"`
	OpsPerSec       []float64 `json:"ops_per_sec"`
	MedianOpsPerSec float64   `json:"median_ops_per_sec"`
	// Metrics holds the cell's telemetry deltas summed across reps
	// (counters only — monotonic, so per-cell registries make every value
	// a delta), plus sampled latency summaries per op. Present only when
	// -metrics is set and the algorithm supports instrumentation.
	Metrics map[string]uint64      `json:"metrics,omitempty"`
	Latency map[string]latencyJSON `json:"latency,omitempty"`
	// TracePhases holds the flight recorder's per-phase aggregates summed
	// across reps when -trace-sample is set: how many sampled spans each
	// phase recorded and their cumulative nanoseconds — the breakdown
	// behind "where did a durable cell's time go". (bst-bench/v1: new
	// field, never renamed.)
	TracePhases map[string]tracePhaseJSON `json:"trace_phases,omitempty"`
}

// tracePhaseJSON is one phase's share of the sampled operations.
type tracePhaseJSON struct {
	Spans uint64 `json:"spans"`
	Nanos uint64 `json:"nanos"`
}

type latencyJSON struct {
	SampledOps uint64  `json:"sampled_ops"`
	MeanNanos  float64 `json:"mean_ns"`
	P50Nanos   uint64  `json:"p50_ns"`
	P99Nanos   uint64  `json:"p99_ns"`
}

func newBenchJSON(duration string, reps int, seed uint64, zipf float64, reclaim, prefill, metricsOn bool) *benchJSON {
	return &benchJSON{
		Schema:     "bst-bench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Duration:   duration,
		Reps:       reps,
		Seed:       seed,
		Zipf:       zipf,
		Reclaim:    reclaim,
		Prefill:    prefill,
		Metrics:    metricsOn,
	}
}

// addTracePhases folds one rep's recorder phase aggregates into the cell.
func (c *cellJSON) addTracePhases(phases map[string]rtrace.PhaseSnapshot) {
	if c.TracePhases == nil {
		c.TracePhases = make(map[string]tracePhaseJSON, len(phases))
	}
	for name, p := range phases {
		t := c.TracePhases[name]
		t.Spans += p.Count
		t.Nanos += p.Nanos
		c.TracePhases[name] = t
	}
}

// addMetrics folds one rep's snapshot into the cell (counters sum across
// reps; latency summaries aggregate the merged histograms).
func (c *cellJSON) addMetrics(s metrics.Snapshot, agg *[metrics.NumOps]metrics.LatencySnapshot) {
	if c.Metrics == nil {
		c.Metrics = map[string]uint64{}
	}
	for k, v := range s.CounterMap() {
		c.Metrics[k] += v
	}
	for op := metrics.Op(0); op < metrics.NumOps; op++ {
		l := &agg[op]
		for b := range s.Latency[op].Buckets {
			l.Buckets[b] += s.Latency[op].Buckets[b]
		}
		l.Count += s.Latency[op].Count
		l.SumNanos += s.Latency[op].SumNanos
	}
}

func (c *cellJSON) finishLatency(agg *[metrics.NumOps]metrics.LatencySnapshot) {
	c.Latency = map[string]latencyJSON{}
	for op := metrics.Op(0); op < metrics.NumOps; op++ {
		l := agg[op]
		c.Latency[op.Name()] = latencyJSON{
			SampledOps: l.Count,
			MeanNanos:  l.MeanNanos(),
			P50Nanos:   l.Quantile(0.50),
			P99Nanos:   l.Quantile(0.99),
		}
	}
}

// writeJSON emits the document to path ("-" for stdout).
func (b *benchJSON) write(path string) error {
	var f *os.File
	if path == "-" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
