package main

import (
	"strings"
	"testing"
)

const sampleCSV = `keyrange,workload,threads,algorithm,ops_per_sec
1000,write-dominated,1,nm,6350000.00
1000,write-dominated,4,nm,6440000.00
1000,write-dominated,1,efrb,4680000.00
1000,write-dominated,4,efrb,4800000.00
10000,mixed,1,nm,4620000.00
`

func TestParseCSV(t *testing.T) {
	rows, err := parse(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("parsed %d rows, want 5", len(rows))
	}
	r := rows[0]
	if r.keyRange != 1000 || r.workload != "write-dominated" || r.threads != 1 ||
		r.algorithm != "nm" || r.ops != 6350000 {
		t.Fatalf("row 0 wrong: %+v", r)
	}
	if rows[4].keyRange != 10000 || rows[4].workload != "mixed" {
		t.Fatalf("row 4 wrong: %+v", rows[4])
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n" + sampleCSV
	rows, err := parse(strings.NewReader(in))
	if err != nil || len(rows) != 5 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
}

func TestParseRejectsMissingColumns(t *testing.T) {
	if _, err := parse(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestParseRejectsBadNumbers(t *testing.T) {
	in := "keyrange,workload,threads,algorithm,ops_per_sec\nxx,mixed,1,nm,5\n"
	if _, err := parse(strings.NewReader(in)); err == nil {
		t.Fatal("bad keyrange accepted")
	}
}
