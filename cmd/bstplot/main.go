// bstplot renders bstbench CSV output as ASCII line charts — one chart per
// (key range, workload) pair, i.e. one per graph of Figure 4.
//
// Usage:
//
//	bstbench -csv | bstplot
//	bstbench -csv > fig4.csv && bstplot fig4.csv
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/plot"
)

type row struct {
	keyRange  int64
	workload  string
	threads   float64
	algorithm string
	ops       float64
}

func main() {
	var in io.Reader = os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "bstplot:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	rows, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bstplot:", err)
		os.Exit(1)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "bstplot: no data rows (expected bstbench -csv output)")
		os.Exit(1)
	}

	type graphKey struct {
		kr int64
		wl string
	}
	graphs := map[graphKey]map[string]*plot.Series{}
	var order []graphKey
	for _, r := range rows {
		gk := graphKey{r.keyRange, r.workload}
		if graphs[gk] == nil {
			graphs[gk] = map[string]*plot.Series{}
			order = append(order, gk)
		}
		s := graphs[gk][r.algorithm]
		if s == nil {
			s = &plot.Series{Name: r.algorithm}
			graphs[gk][r.algorithm] = s
		}
		s.X = append(s.X, r.threads)
		s.Y = append(s.Y, r.ops)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].kr != order[j].kr {
			return order[i].kr < order[j].kr
		}
		return order[i].wl < order[j].wl
	})

	for _, gk := range order {
		var names []string
		for name := range graphs[gk] {
			names = append(names, name)
		}
		sort.Strings(names)
		c := plot.Chart{
			Title:  fmt.Sprintf("key range %d — %s", gk.kr, gk.wl),
			XLabel: "threads (log scale)",
			YLabel: "throughput (ops/s)",
			LogX:   true,
		}
		for _, name := range names {
			c.Series = append(c.Series, *graphs[gk][name])
		}
		fmt.Println(c.Render())
	}
}

func parse(in io.Reader) ([]row, error) {
	sc := bufio.NewScanner(in)
	var rows []row
	var header []string
	col := map[string]int{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if header == nil {
			header = fields
			for i, h := range fields {
				col[strings.TrimSpace(h)] = i
			}
			for _, want := range []string{"keyrange", "workload", "threads", "algorithm", "ops_per_sec"} {
				if _, ok := col[want]; !ok {
					return nil, fmt.Errorf("missing CSV column %q (got %v)", want, header)
				}
			}
			continue
		}
		if len(fields) < len(header) {
			return nil, fmt.Errorf("short row: %q", line)
		}
		kr, err := strconv.ParseInt(fields[col["keyrange"]], 10, 64)
		if err != nil {
			return nil, err
		}
		th, err := strconv.ParseFloat(fields[col["threads"]], 64)
		if err != nil {
			return nil, err
		}
		ops, err := strconv.ParseFloat(fields[col["ops_per_sec"]], 64)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{
			keyRange:  kr,
			workload:  fields[col["workload"]],
			threads:   th,
			algorithm: fields[col["algorithm"]],
			ops:       ops,
		})
	}
	return rows, sc.Err()
}
