// bsttable1 regenerates Table 1 of "Fast Concurrent Lock-Free Binary
// Search Trees" (Natarajan & Mittal, PPoPP 2014): the number of objects
// allocated and atomic instructions executed per insert and per delete, in
// the absence of contention, for the three lock-free algorithms.
//
// Expected (from the paper):
//
//	algorithm          objects: insert/delete    atomics: insert/delete
//	Ellen et al.             4 / 1                    3 / 4
//	Howley and Jones         2 / 1                    3 / up to 9
//	This work (NM)           2 / 0                    1 / 3
//
// The tool runs each algorithm single-threaded with instrumented handles
// over uniformly scattered keys (so the Howley–Jones tree exercises both
// its cheap ≤1-child path and its expensive relocation path), averages
// over many operations, and prints measured mean and worst case against
// the paper's numbers.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/efrb"
	"repro/internal/hjbst"
	"repro/internal/keys"
	"repro/internal/stats"
	"repro/internal/workload"
)

type measurement struct {
	objectsInsert, objectsDelete float64
	atomicsInsert, atomicsDelete float64
	atomicsDeleteMax             float64
}

func main() {
	ops := flag.Int("ops", 10000, "operations measured per cell")
	prefill := flag.Int("prefill", 4096, "keys pre-inserted before measuring")
	flag.Parse()

	rows := []struct {
		name     string
		expected string
		run      func(prefill, ops int) measurement
	}{
		{"Ellen et al. (EFRB)", "4/1 objects, 3/4 atomics", measureEFRB},
		{"Howley and Jones (HJ)", "2/1 objects, 3/≤9 atomics", measureHJ},
		{"This work (NM)", "2/0 objects, 1/3 atomics", measureNM},
	}

	tbl := stats.NewTable("algorithm", "objs/ins", "objs/del", "atomics/ins", "atomics/del (mean)", "atomics/del (max)", "paper says")
	for _, r := range rows {
		m := r.run(*prefill, *ops)
		tbl.AddRow(r.name, m.objectsInsert, m.objectsDelete, m.atomicsInsert, m.atomicsDelete, m.atomicsDeleteMax, r.expected)
	}
	fmt.Println("# Table 1: per-operation cost without contention and without memory reclamation")
	fmt.Printf("# averaged over %d inserts and %d deletes after prefilling %d keys\n\n", *ops, *ops, *prefill)
	fmt.Print(tbl.String())
	fmt.Println("\nNote: \"objects\" counts nodes plus coordination records, as the paper does.")
	fmt.Println("Go-specific boxing (immutable update/op wrapper records standing in for C's")
	fmt.Println("packed pointer bits) is excluded, matching the paper's C accounting.")
}

// keyPlan yields scattered fresh keys for inserts (and the same keys, in a
// different order, for deletes) plus background prefill keys, so every
// measured operation succeeds without contention but hits a realistic mix
// of tree shapes.
type keyPlan struct {
	prefill, ops int
}

func (p keyPlan) prefillKeys(insert func(uint64) bool) {
	rng := workload.NewSplitMix64(11)
	for i := 0; i < p.prefill; i++ {
		insert(keys.Map(rng.Intn(1 << 40)))
	}
}

// freshKey scatters ids over a disjoint high range (bijective multiply).
func (p keyPlan) freshKey(i int) uint64 {
	scrambled := int64(uint64(i)*0x9E3779B97F4A7C15%(1<<40)) + 1<<41
	return keys.Map(scrambled)
}

// deleteOrder visits the fresh keys in a shuffled order so parents of
// deleted nodes have arbitrary child configurations.
func (p keyPlan) deleteOrder() []int {
	order := make([]int, p.ops)
	for i := range order {
		order[i] = i
	}
	rng := workload.NewSplitMix64(23)
	for i := len(order) - 1; i > 0; i-- {
		j := rng.Intn(int64(i + 1))
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// measure runs the shared protocol against any instrumented handle.
func measure(prefill, ops int,
	insert func(uint64) bool, delete_ func(uint64) bool,
	objects func() uint64, atomics func() uint64) measurement {

	plan := keyPlan{prefill, ops}
	plan.prefillKeys(insert)

	objs0, at0 := objects(), atomics()
	for i := 0; i < ops; i++ {
		insert(plan.freshKey(i))
	}
	objs1, at1 := objects(), atomics()

	var delMax uint64
	prevAt := at1
	for _, i := range plan.deleteOrder() {
		delete_(plan.freshKey(i))
		now := atomics()
		if d := now - prevAt; d > delMax {
			delMax = d
		}
		prevAt = now
	}
	objs2, at2 := objects(), atomics()

	return measurement{
		objectsInsert:    float64(objs1-objs0) / float64(ops),
		objectsDelete:    float64(objs2-objs1) / float64(ops),
		atomicsInsert:    float64(at1-at0) / float64(ops),
		atomicsDelete:    float64(at2-at1) / float64(ops),
		atomicsDeleteMax: float64(delMax),
	}
}

func measureNM(prefill, ops int) measurement {
	t := core.New(core.Config{Capacity: 1 << 22})
	h := t.NewHandle()
	return measure(prefill, ops, h.Insert, h.Delete,
		func() uint64 { return h.Stats.NodesAlloc },
		func() uint64 { return h.Stats.Atomics() })
}

func measureEFRB(prefill, ops int) measurement {
	t := efrb.New()
	h := t.NewHandle()
	return measure(prefill, ops, h.Insert, h.Delete,
		func() uint64 { return h.Stats.NodesAlloc + h.Stats.InfoAlloc },
		func() uint64 { return h.Stats.Atomics() })
}

func measureHJ(prefill, ops int) measurement {
	t := hjbst.New()
	h := t.NewHandle()
	return measure(prefill, ops, h.Insert, h.Delete,
		func() uint64 { return h.Stats.NodesAlloc + h.Stats.OpAlloc },
		func() uint64 { return h.Stats.Atomics() })
}
