// bstspace measures space behaviour under churn — the concern the paper
// raises in Section 1 about deletion schemes that never physically remove
// keys ("the size of the tree may become much larger than the number of
// keys stored in the tree").
//
// It churns insert/delete pairs over a bounded key range against each
// implementation with interesting space behaviour, then reports, in a
// quiescent state, how much structure remains per live key:
//
//   - nm:        arena slots reserved (monotonic without reclamation) vs
//     with epoch reclamation (plateaus near the working set);
//   - bcco:      value-less routing nodes awaiting rebalance cleanup;
//   - hj:        marked zombie nodes awaiting traversal cleanup;
//   - kst:       empty leaves and the monotonically grown split skeleton
//     (the future-work pruning problem, quantified).
package main

import (
	"flag"
	"fmt"

	"repro/internal/bcco"
	"repro/internal/core"
	"repro/internal/hjbst"
	"repro/internal/keys"
	"repro/internal/kst"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	ops := flag.Int("ops", 400_000, "churn operations (50/50 insert/delete)")
	keyRange := flag.Int64("keyrange", 1024, "bounded hot key range")
	flag.Parse()

	churn := func(insert, del func(uint64) bool) {
		gen := workload.NewGenerator(workload.WriteDominated, *keyRange, 99)
		for i := 0; i < *ops; i++ {
			op, k := gen.Next()
			u := keys.Map(k)
			if op == workload.OpInsert {
				insert(u)
			} else {
				del(u)
			}
		}
	}

	tbl := stats.NewTable("structure", "live keys", "residual structure", "total reachable", "amplification")
	row := func(name string, live, residual, total int) {
		amp := "—"
		if live > 0 {
			amp = fmt.Sprintf("%.2fx", float64(total)/float64(live))
		}
		tbl.AddRow(name, live, residual, total, amp)
	}

	// NM without reclamation: every insert permanently consumes 2 slots.
	nm := core.New(core.Config{Capacity: 1 << 22})
	churn(nm.Insert, nm.Delete)
	s := nm.Space()
	row("nm (no reclaim): reserved arena slots", s.LiveKeys, int(s.ReservedSlots)-s.ReachableNodes, int(s.ReservedSlots))

	// NM with epoch reclamation: slots recycle.
	nmr := core.New(core.Config{Capacity: 1 << 22, Reclaim: true})
	h := nmr.NewHandle()
	churn(h.Insert, h.Delete)
	h.Close()
	sr := nmr.Space()
	row("nm (reclaim): reserved arena slots", sr.LiveKeys, int(sr.ReservedSlots)-sr.ReachableNodes, int(sr.ReservedSlots))

	// BCCO: routing nodes.
	bc := bcco.New()
	churn(bc.Insert, bc.Delete)
	bs := bc.Space()
	row("bcco: routing nodes", bs.LiveKeys, bs.RoutingNodes, bs.TotalNodes)

	// HJ: marked zombies.
	hj := hjbst.New()
	churn(hj.Insert, hj.Delete)
	hs := hj.Space()
	row("hj: zombie nodes", hs.LiveKeys, hs.ZombieNodes, hs.TotalNodes)

	// kst: empty leaves + permanent internal skeleton.
	for _, k := range []int{4, 16} {
		ks := kst.New(k)
		churn(ks.Insert, ks.Delete)
		ksp := ks.Space()
		row(fmt.Sprintf("kst k=%d: empty leaves + skeleton", k),
			ksp.LiveKeys, ksp.EmptyLeaves+ksp.InternalNodes, ksp.Leaves+ksp.InternalNodes)
	}

	fmt.Printf("# space under churn: %d ops (50/50 insert/delete) over %d keys\n\n", *ops, *keyRange)
	fmt.Print(tbl.String())
	fmt.Println(`
Reading the table: "residual structure" is storage held beyond the live
keys (abandoned arena slots, routing nodes, zombies, empty leaves +
internal skeleton). The NM rows contrast the paper's no-reclamation
protocol with the epoch-reclamation extension; the kst row quantifies the
open empty-leaf pruning problem the paper's edge-marking is proposed to
solve.`)
}
