package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/netchaos"
)

// The -chaos round is the self-healing gate: nobody promotes anything by
// hand. Three auto-failover nodes run behind a full mesh of six netchaos
// proxies (one per directed link), so the round can partition, blackhole,
// and delay any link on a deterministic, seeded schedule while the parent
// keeps direct access to every node's data and admin ports.
//
// The script, and what each step proves:
//
//  1. A (priority 0) leads a seeded store; B (priority 2) and C
//     (priority 1) catch up as semi-sync followers. Latency/jitter noise
//     plays over the links while workers hammer A with the exact-ledger
//     discipline of -crash.
//  2. The round quiesces — stops the load and waits until B and C have
//     applied everything A acked. Semi-sync acks are satisfied by ANY
//     follower, so only a converged cut makes "acked implies on the next
//     leader" exact; the election ranks priority above applied-seq and
//     genuinely cannot promise it (DESIGN §13).
//  3. All four of A's links partition. B's lease expires, it outranks C,
//     self-promotes to the next term and announces; C defers. No operator.
//  4. The partition heals. A — still a zombie leader of the old term —
//     probes its peers, observes the newer term, fences itself, and
//     rejoins as B's follower. Direct writes to A must all answer
//     StatusFenced.
//  5. A's link to B gets a fat latency rule. A stays a healthy follower
//     (the lease budget dwarfs the lag) but its cumulative acks now trail
//     C's by the lag, so B's semi-sync watermark only ever advances on
//     C's acks — the final audit is exact again with two followers up.
//  6. Workers hammer B; mid-load B is SIGKILL'd. C outranks the fenced A,
//     promotes to a third term, and serves within the recovery budget.
//  7. The audit, against C over the wire: every acked insert present,
//     every acked delete stuck, zero ghost keys in a full Range scan, all
//     fenced writes absent — and a health poller that watched all three
//     nodes the whole time must have seen at most one leader per term.
const (
	chaosSnapKeys = 50_000
	chaosTailOps  = 5_000

	// Mirrors runFailoverChild: Heartbeat 50ms, lease 5× the heartbeat
	// (the repl default multiplier), hold-off 400ms per rank.
	chaosHeartbeat = 50 * time.Millisecond
	chaosLease     = 5 * chaosHeartbeat
	chaosHoldOff   = 400 * time.Millisecond
)

// chaosProbeB/C are the first writes clocked on each self-promoted
// leader; chaosCanary proves A's pull stream is live again after the
// heal; chaosRedirect is written through the fenced ex-leader by a
// retrying client following the StatusFenced redirect; chaosFenceBase
// keys are pinned writes the fenced ex-leader must refuse.
const (
	chaosProbeB    = int64(1)<<60 + 1
	chaosProbeC    = int64(1)<<60 + 2
	chaosCanary    = int64(1)<<60 + 3
	chaosRedirect  = int64(1)<<60 + 4
	chaosFenceBase = int64(1)<<59 + 1

	// ackLag is the latency injected on A's link in phase 2. Far below
	// the lease budget, far above the ack interval: A keeps following
	// but its acks always trail C's, keeping the semi-sync watermark
	// pinned to C.
	chaosAckLag = 75 * time.Millisecond
)

// termLeaders tracks which nodes were ever observed leading which term.
// The poller samples /healthz on every node a few dozen times per second;
// the invariant it guards — at most one leader per term — is the one the
// deterministic-rank election promises even without consensus.
type termLeaders struct {
	mu      sync.Mutex
	leaders map[uint64]map[string]bool
	fencedA bool
}

func (t *termLeaders) note(name string, h clusterHealth) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h.Cluster.Role == "leader" {
		if t.leaders[h.Cluster.Term] == nil {
			t.leaders[h.Cluster.Term] = map[string]bool{}
		}
		t.leaders[h.Cluster.Term][name] = true
	}
	if name == "A" && h.Cluster.Fenced {
		t.fencedA = true
	}
}

func (t *termLeaders) check() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for term, who := range t.leaders {
		if len(who) > 1 {
			names := make([]string, 0, len(who))
			for n := range who {
				names = append(names, n)
			}
			return fmt.Errorf("term %d had %d leaders: %v", term, len(who), names)
		}
	}
	if !t.fencedA {
		return errors.New("the deposed leader A was never observed fenced")
	}
	return nil
}

// chaosLoad runs the -crash ledger discipline (one conn, one attempt,
// disjoint per-worker ranges, every 4th op deletes an acked insert)
// against addr until stop closes or the connection dies. Transport errors
// land the key in the in-flight set; only protocol violations set r.err.
func chaosLoad(addr string, workers int, seed uint64, base func(w int) int64, stop <-chan struct{}) []crashWorker {
	results := make([]crashWorker, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			cl, err := client.Dial(client.Config{
				Addr: addr, Conns: 1, MaxAttempts: 1, Seed: int64(seed)*1000 + int64(w),
			})
			if err != nil {
				r.err = err
				return
			}
			defer cl.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			next := base(w)
			delCursor := 0
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%4 == 3 && delCursor < len(r.ackedIns) {
					k := r.ackedIns[delCursor]
					ok, err := cl.Delete(ctx, k)
					if err != nil {
						r.inflight = append(r.inflight, k)
						return
					}
					if !ok {
						r.err = fmt.Errorf("Delete(%d) of an acked key = false", k)
						return
					}
					r.ackedDel = append(r.ackedDel, k)
					delCursor++
					continue
				}
				k := next
				next++
				ok, err := cl.Insert(ctx, k)
				if err != nil {
					r.inflight = append(r.inflight, k)
					return
				}
				if !ok {
					r.err = fmt.Errorf("Insert(%d) of a fresh key = false", k)
					return
				}
				r.ackedIns = append(r.ackedIns, k)
			}
		}(w)
	}
	wg.Wait()
	return results
}

// waitHealth polls adminAddr until cond is satisfied or the budget runs
// out. The last health (and fetch error) ride along in the failure.
func waitHealth(adminAddr, what string, budget time.Duration, cond func(clusterHealth) bool) (clusterHealth, error) {
	deadline := time.Now().Add(budget)
	for {
		h, err := fetchHealth(adminAddr)
		if err == nil && cond(h) {
			return h, nil
		}
		if time.Now().After(deadline) {
			return h, fmt.Errorf("%s: not reached within %v (last health %+v, err %v)", what, budget, h.Cluster, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func chaosRound(workers int, seed uint64) (err error) {
	logf := func(format string, a ...any) { fmt.Printf("chaos: "+format+"\n", a...) }
	logf("seed=%d workers=%d", seed, workers)

	dirs := make([]string, 3)
	for i := range dirs {
		d, derr := os.MkdirTemp("", "bst-chaos-node-")
		if derr != nil {
			return derr
		}
		defer os.RemoveAll(d)
		dirs[i] = d
	}
	if err := seedFailoverStore(dirs[0], seed, chaosSnapKeys, chaosTailOps); err != nil {
		return fmt.Errorf("seeding leader store: %w", err)
	}

	// The proxy mesh exists before any node so every child can be
	// configured with stable link addresses: pXY is X's dialing view of Y.
	var pAB, pAC, pBA, pBC, pCA, pCB *netchaos.Proxy
	for i, slot := range []**netchaos.Proxy{&pAB, &pAC, &pBA, &pBC, &pCA, &pCB} {
		p, perr := netchaos.New(seed*16 + uint64(i))
		if perr != nil {
			return perr
		}
		defer p.Close()
		*slot = p
	}

	// A leads the seeded store. Its priority is the lowest on purpose:
	// once deposed it must never outrank the healthy followers, or a
	// stale store could win a later election.
	a, killA, err := spawnFailoverChild(dirs[0], childOpts{
		peers: pAB.Addr() + "," + pAC.Addr(), priority: 0, auto: true,
	})
	if err != nil {
		return err
	}
	defer killA()
	pBA.SetTarget(a.repl)
	pCA.SetTarget(a.repl)

	b, killB, err := spawnFailoverChild(dirs[1], childOpts{
		replicaOf: pBA.Addr(), peers: pBA.Addr() + "," + pBC.Addr(), priority: 2, auto: true,
	})
	if err != nil {
		return err
	}
	defer killB()
	c, killC, err := spawnFailoverChild(dirs[2], childOpts{
		replicaOf: pCA.Addr(), peers: pCA.Addr() + "," + pCB.Addr(), priority: 1, auto: true,
	})
	if err != nil {
		return err
	}
	defer killC()
	pAB.SetTarget(b.repl)
	pCB.SetTarget(b.repl)
	pAC.SetTarget(c.repl)
	pBC.SetTarget(c.repl)

	// Both followers must fully converge before the load starts: the
	// leader is semi-sync, and the audit depends on a clean baseline.
	catchup := time.Now()
	ha, err := waitHealth(a.admin, "cluster catch-up", 120*time.Second, func(h clusterHealth) bool {
		if h.Cluster.Followers < 2 || h.Cluster.AppliedSeq == 0 || h.Cluster.AckedSeq < h.Cluster.AppliedSeq {
			return false
		}
		hb, berr := fetchHealth(b.admin)
		hc, cerr := fetchHealth(c.admin)
		return berr == nil && cerr == nil &&
			hb.Cluster.AppliedSeq == h.Cluster.AppliedSeq &&
			hc.Cluster.AppliedSeq == h.Cluster.AppliedSeq
	})
	if err != nil {
		return err
	}
	term0 := ha.Cluster.Term
	logf("3-node cluster converged on %d-key + %d-op seed in %v (term %d)",
		chaosSnapKeys, chaosTailOps, time.Since(catchup).Round(time.Millisecond), term0)

	// Leader-per-term poller: watches every node's /healthz for the whole
	// round. Sampling can miss a sub-20ms flicker, but any election bug
	// that leaves two leaders standing is caught.
	obs := &termLeaders{leaders: map[uint64]map[string]bool{}}
	pollStop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		nodes := []struct{ name, admin string }{{"A", a.admin}, {"B", b.admin}, {"C", c.admin}}
		for {
			select {
			case <-pollStop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			for _, nd := range nodes {
				if h, herr := fetchHealth(nd.admin); herr == nil {
					obs.note(nd.name, h)
				}
			}
		}
	}()
	defer pollWG.Wait()
	defer func() {
		select {
		case <-pollStop:
		default:
			close(pollStop)
		}
	}()

	// Phase 1: load on A under seeded latency/jitter noise on random
	// links. The noise is deliberately far below the lease budget — this
	// phase proves tolerance of a degraded-but-connected network.
	rng := netchaos.NewRand(seed ^ 0x9e3779b97f4a7c15)
	links := []*netchaos.Proxy{pAB, pAC, pBA, pBC, pCA, pCB}
	var events []netchaos.Event
	for i := 0; i < 6; i++ {
		li := rng.Intn(len(links))
		p := links[li]
		lat := time.Duration(1+rng.Intn(8)) * time.Millisecond
		jit := rng.Duration(3 * time.Millisecond)
		events = append(events, netchaos.Event{
			At:   time.Duration(i) * 200 * time.Millisecond,
			Name: fmt.Sprintf("latency %v jitter %v on link %d", lat, jit, li),
			Do:   func() { p.SetRule(netchaos.Rule{Latency: lat, Jitter: jit}) },
		})
	}
	events = append(events, netchaos.Event{
		At: 1400 * time.Millisecond, Name: "clear noise",
		Do: func() {
			for _, p := range links {
				p.SetRule(netchaos.Rule{})
			}
		},
	})
	scheduleDone := make(chan error, 1)
	go func() { scheduleDone <- netchaos.RunSchedule(events, pollStop, logf) }()

	stop1 := make(chan struct{})
	time.AfterFunc(1600*time.Millisecond, func() { close(stop1) })
	phase1 := chaosLoad(a.data, workers, seed, func(w int) int64 { return int64(w+1) << 32 }, stop1)
	if serr := <-scheduleDone; serr != nil {
		return fmt.Errorf("noise schedule: %w", serr)
	}
	acked1 := 0
	for w := range phase1 {
		if phase1[w].err != nil {
			return fmt.Errorf("phase-1 worker %d: %v", w, phase1[w].err)
		}
		acked1 += len(phase1[w].ackedIns) + len(phase1[w].ackedDel)
	}
	if acked1 == 0 {
		return errors.New("phase 1 acked nothing; round is inconclusive")
	}

	// Quiesce to a converged cut (see the file comment for why).
	if _, err := waitHealth(a.admin, "pre-partition quiesce", 15*time.Second, func(h clusterHealth) bool {
		if h.Cluster.AckedSeq < h.Cluster.AppliedSeq {
			return false
		}
		hb, berr := fetchHealth(b.admin)
		hc, cerr := fetchHealth(c.admin)
		return berr == nil && cerr == nil &&
			hb.Cluster.AppliedSeq == h.Cluster.AppliedSeq &&
			hc.Cluster.AppliedSeq == h.Cluster.AppliedSeq
	}); err != nil {
		return err
	}
	logf("phase 1: %d acked ops under link noise, cluster quiesced", acked1)

	// Phase 2: partition every one of A's links. B must notice the dead
	// lease, outrank C, and self-promote — no /promote anywhere.
	aLinks := []*netchaos.Proxy{pAB, pAC, pBA, pCA}
	for _, p := range aLinks {
		p.SetRule(netchaos.Rule{Partition: true})
	}
	partStart := time.Now()
	logf("partitioned A from the cluster")
	hb, err := waitHealth(b.admin, "B self-promotion", recoveryBudget, func(h clusterHealth) bool {
		return h.Cluster.Role == "leader" && h.Cluster.Term > term0
	})
	if err != nil {
		return err
	}
	termB := hb.Cluster.Term
	promotedIn := time.Since(partStart)

	clB, err := client.Dial(client.Config{Addr: b.data, Seed: int64(seed)})
	if err != nil {
		return err
	}
	defer clB.Close()
	var servedB time.Duration
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		ok, werr := clB.Insert(ctx, chaosProbeB)
		cancel()
		if werr == nil && ok {
			servedB = time.Since(partStart)
			break
		}
		if time.Since(partStart) > recoveryBudget {
			return fmt.Errorf("B not serving writes %v after the partition (budget %v; last err %v)",
				time.Since(partStart).Round(time.Millisecond), recoveryBudget, werr)
		}
	}
	logf("B self-promoted to term %d in %v, serving writes in %v (lease %v + hold-off %v budget, hard cap %v)",
		termB, promotedIn.Round(time.Millisecond), servedB.Round(time.Millisecond), chaosLease, chaosHoldOff, recoveryBudget)

	// Phase 3: heal. The zombie leader A probes its peers, sees term B,
	// fences, and rejoins as a follower — then must refuse direct writes.
	for _, p := range aLinks {
		p.SetRule(netchaos.Rule{})
	}
	healStart := time.Now()
	if _, err := waitHealth(a.admin, "A fencing after heal", 15*time.Second, func(h clusterHealth) bool {
		return h.Cluster.Fenced && h.Cluster.Role == "follower" && h.Cluster.Term >= termB
	}); err != nil {
		return err
	}
	logf("healed: A fenced itself and rejoined in %v", time.Since(healStart).Round(time.Millisecond))
	hb2, err := fetchHealth(b.admin)
	if err != nil {
		return fmt.Errorf("B health after heal: %w", err)
	}
	if _, err := waitHealth(a.admin, "A catching up under B", 15*time.Second, func(h clusterHealth) bool {
		return h.Cluster.AppliedSeq >= hb2.Cluster.AppliedSeq
	}); err != nil {
		return err
	}
	// The applied-seq check above can pass on A's pre-partition state
	// alone (nothing was written during the outage), so prove A's pull
	// stream is actually live: write a canary through B and wait until A
	// has streamed it.
	{
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		ok, werr := clB.Insert(ctx, chaosCanary)
		cancel()
		if werr != nil || !ok {
			return fmt.Errorf("canary insert on B: ok=%v err=%v", ok, werr)
		}
	}
	hb3, err := fetchHealth(b.admin)
	if err != nil {
		return fmt.Errorf("B health after canary: %w", err)
	}
	if _, err := waitHealth(a.admin, "A streaming live from B", 15*time.Second, func(h clusterHealth) bool {
		return h.Cluster.AppliedSeq >= hb3.Cluster.AppliedSeq
	}); err != nil {
		return err
	}

	// Pinned fence probes: each write uses a fresh one-shot client so the
	// learned-leader cache cannot route around A — the request must land
	// on the fenced node itself and come back StatusFenced.
	for i := int64(0); i < 5; i++ {
		clA, derr := client.Dial(client.Config{Addr: a.data, Conns: 1, MaxAttempts: 1, Seed: int64(seed) + i})
		if derr != nil {
			return derr
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, werr := clA.Insert(ctx, chaosFenceBase+i)
		cancel()
		clA.Close()
		if !errors.Is(werr, client.ErrFenced) {
			return fmt.Errorf("write %d to the fenced ex-leader: want StatusFenced, got %v", i, werr)
		}
	}
	// The flip side of fencing: a retrying client pointed at the fenced
	// ex-leader must follow the StatusFenced redirect to the live leader
	// and land its write there transparently.
	clRedir, err := client.Dial(client.Config{Addr: a.data, Conns: 1, Seed: int64(seed)})
	if err != nil {
		return err
	}
	{
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		ok, werr := clRedir.Insert(ctx, chaosRedirect)
		cancel()
		clRedir.Close()
		if werr != nil || !ok {
			return fmt.Errorf("redirected write via the fenced ex-leader: ok=%v err=%v", ok, werr)
		}
	}
	logf("all 5 pinned writes to the fenced ex-leader refused with StatusFenced; retrying client redirected to the live leader")

	// Phase 4: lag A's link. A's acks now always trail C's, so B's
	// semi-sync watermark only advances on C's acks and every acked write
	// is provably on C — the node about to win the next election.
	pAB.SetRule(netchaos.Rule{Latency: chaosAckLag})

	stop2 := make(chan struct{})
	phase2ch := make(chan []crashWorker, 1)
	go func() {
		phase2ch <- chaosLoad(b.data, workers, seed+101,
			func(w int) int64 { return int64(w+1)<<32 | 1<<30 }, stop2)
	}()
	time.Sleep(time.Second)
	killStart := time.Now()
	killB() // SIGKILL mid-load: the second leader dies ungracefully
	close(stop2)
	phase2 := <-phase2ch
	pAB.SetRule(netchaos.Rule{})
	acked2 := 0
	for w := range phase2 {
		if phase2[w].err != nil {
			return fmt.Errorf("phase-2 worker %d: %v", w, phase2[w].err)
		}
		acked2 += len(phase2[w].ackedIns) + len(phase2[w].ackedDel)
	}
	if acked2 == 0 {
		return errors.New("phase 2 acked nothing before the kill; round is inconclusive")
	}

	// C must outrank the fenced, lowest-priority A and take the next term.
	hc, err := waitHealth(c.admin, "C self-promotion", recoveryBudget, func(h clusterHealth) bool {
		return h.Cluster.Role == "leader" && h.Cluster.Term > termB
	})
	if err != nil {
		return err
	}
	termC := hc.Cluster.Term

	clC, err := client.Dial(client.Config{Addr: c.data, Seed: int64(seed)})
	if err != nil {
		return err
	}
	defer clC.Close()
	// Audit failures from here should name the guilty phase on C.
	defer func() {
		if err != nil {
			dumpSlowOps(c.admin)
		}
	}()
	var servedC time.Duration
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		ok, werr := clC.Insert(ctx, chaosProbeC)
		cancel()
		if werr == nil && ok {
			servedC = time.Since(killStart)
			break
		}
		if time.Since(killStart) > recoveryBudget {
			return fmt.Errorf("C not serving writes %v after kill -9 of B (budget %v; last err %v)",
				time.Since(killStart).Round(time.Millisecond), recoveryBudget, werr)
		}
	}
	logf("B killed mid-load; C self-promoted to term %d, serving writes %v after the kill",
		termC, servedC.Round(time.Millisecond))

	// The audit, against the final leader C. Phase-1 acks are covered by
	// the pre-partition quiesce; phase-2 acks by the one-way blackhole.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	mustPresent := map[int64]bool{}
	mayEither := map[int64]bool{}
	for _, results := range [][]crashWorker{phase1, phase2} {
		for w := range results {
			r := &results[w]
			for _, k := range r.ackedIns {
				mustPresent[k] = true
			}
			for _, k := range r.ackedDel {
				delete(mustPresent, k)
				if ok, lerr := clC.Lookup(ctx, k); lerr != nil {
					return fmt.Errorf("audit Lookup(%d): %w", k, lerr)
				} else if ok {
					return fmt.Errorf("key %d: delete was acked but the key survived the failovers", k)
				}
			}
			for _, k := range r.inflight {
				delete(mustPresent, k)
				mayEither[k] = true
			}
		}
	}
	for k := range mustPresent {
		if ok, lerr := clC.Lookup(ctx, k); lerr != nil {
			return fmt.Errorf("audit Lookup(%d): %w", k, lerr)
		} else if !ok {
			return fmt.Errorf("key %d: insert was acked (semi-sync) but is gone on the final leader", k)
		}
	}
	for i := int64(0); i < 5; i++ {
		if ok, lerr := clC.Lookup(ctx, chaosFenceBase+i); lerr != nil {
			return fmt.Errorf("audit Lookup(fence %d): %w", i, lerr)
		} else if ok {
			return fmt.Errorf("fenced write %d leaked into the cluster despite StatusFenced", i)
		}
	}
	for _, k := range []int64{chaosProbeB, chaosCanary, chaosRedirect} {
		if ok, lerr := clC.Lookup(ctx, k); lerr != nil {
			return fmt.Errorf("audit Lookup(%d): %w", k, lerr)
		} else if !ok {
			return fmt.Errorf("acked probe key %d missing on the final leader", k)
		}
	}

	seen := 0
	from := int64(-1) << 62
	for {
		keys, rerr := clC.Range(ctx, from, 1<<62, 4096)
		if rerr != nil {
			return fmt.Errorf("audit Range from %d: %w", from, rerr)
		}
		if len(keys) == 0 {
			break
		}
		for _, k := range keys {
			seen++
			if k >= 0 && k < int64(chaosSnapKeys+chaosTailOps) {
				continue // seeded
			}
			switch k {
			case chaosProbeB, chaosProbeC, chaosCanary, chaosRedirect:
				continue
			}
			if mustPresent[k] || mayEither[k] {
				continue
			}
			return fmt.Errorf("ghost key %d on the final leader: never seeded, acknowledged, or in flight", k)
		}
		from = keys[len(keys)-1] + 1
	}
	if seen < chaosSnapKeys+chaosTailOps {
		return fmt.Errorf("audit scan saw %d keys, fewer than the %d seeded", seen, chaosSnapKeys+chaosTailOps)
	}

	close(pollStop)
	pollWG.Wait()
	if oerr := obs.check(); oerr != nil {
		return fmt.Errorf("leader-per-term audit: %w", oerr)
	}

	inflight := 0
	for _, results := range [][]crashWorker{phase1, phase2} {
		for w := range results {
			inflight += len(results[w].inflight)
		}
	}
	logf("OK — 2 elections (terms %d→%d→%d), 1 fenced ex-leader, %d acked ops (%d in flight) audited 100%% present, 0 ghosts across %d keys, exactly one leader per term",
		term0, termB, termC, acked1+acked2, inflight, seen)
	return nil
}
