package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	bst "repro"
	"repro/internal/client"
	"repro/internal/durable"
	"repro/internal/logx"
	"repro/internal/repl"
	"repro/internal/rtrace"
	"repro/internal/server"
	"repro/internal/wal"
)

// The -failover round is the replication gate, the cluster-scale sibling
// of -crash. It runs one full operator-driven failover at real scale:
//
//  1. The parent seeds a leader data directory with a 1M-key snapshot
//     plus a 100k-op WAL tail (the -crash phase-B shape), then re-execs
//     two children: a semi-synchronous leader that recovers that store,
//     and an empty follower that catches up over the replication stream —
//     snapshot bulk-load plus tail replay plus live tail, end to end.
//  2. Workers hammer the leader over the wire (one connection, one
//     attempt, disjoint key ranges) recording exactly which mutations
//     were acknowledged. Semi-sync means every ack implies the follower
//     applied the record — that is what makes the audit below exact.
//  3. Mid-load the leader is SIGKILLed. The parent promotes the follower
//     via POST /promote and clocks kill → first acknowledged write on the
//     new leader; the budget is recoveryBudget (shared with -crash).
//  4. The audit runs against the promoted node over the wire: 100% of
//     acked inserts present (unless acked-deleted), 100% of acked deletes
//     stuck, in-flight ops either way, and a full paginated Range scan
//     must show zero ghost keys — nothing beyond the seeded keyspace, the
//     acked ledger, the in-flight set, and the probe key.

// childOpts is the cluster shape of one re-exec'd node: who it follows,
// which peers it may probe for elections, and its election priority. The
// -failover round uses the zero value plus replicaOf (operator-driven
// promotion only); the -chaos round turns auto on everywhere.
type childOpts struct {
	replicaOf string // leader repl address ("" = start as leader)
	peers     string // comma-separated peer repl addrs (election probes)
	priority  int    // election priority (higher outranks)
	auto      bool   // stand for election when the heartbeat lease expires
}

// failoverChild runs one cluster node: durable store, replication node,
// data server, admin HTTP (for /promote and /healthz). It publishes
// "data repl admin" addresses to addrFile and parks until killed.
func runFailoverChild(dir, addrFile string, o childOpts) int {
	logger := logx.New(os.Stderr, "failover-child")
	logf := logx.Printf(logger)
	// Every child runs a sampled flight recorder so the parent can read
	// /debug/rtrace off the promoted node when the audit goes wrong: which
	// phase ate the time is the first question a failover regression asks.
	rec := rtrace.New(rtrace.Options{SampleEvery: 64, SlowOp: 50 * time.Millisecond})
	dur, err := durable.Open(dir, durable.Options{Sync: wal.SyncFsync, Logf: logf})
	if err != nil {
		logf("open: %v", err)
		return 1
	}
	// The repl node must advertise the data address before the server
	// binds it, so reserve a concrete port first.
	dataAddr, err := reserveAddr()
	if err != nil {
		logf("reserve: %v", err)
		return 1
	}
	var peers []string
	for _, p := range strings.Split(o.peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	node, err := repl.Start(repl.Config{
		Store:       dur,
		Advertise:   dataAddr,
		ListenRepl:  "127.0.0.1:0",
		ReplicaOf:   o.replicaOf,
		Heartbeat:   50 * time.Millisecond,
		AckEvery:    1,
		AckInterval: 2 * time.Millisecond,
		// The seeded leader is semi-synchronous; with elections on, every
		// node is a potential leader and must carry the same guarantee.
		RequireAck:   o.replicaOf == "" || o.auto,
		AckTimeout:   10 * time.Second,
		Priority:     int32(o.priority),
		Peers:        peers,
		AutoFailover: o.auto,
		// A wide hold-off keeps lower-ranked candidates from racing the
		// winner to the same term under CI scheduling jitter.
		HoldOff: 400 * time.Millisecond,
		Trace:   rec,
		Logger:  logger,
	})
	if err != nil {
		logf("repl: %v", err)
		return 1
	}
	srv := server.New(server.Config{Store: dur, Cluster: node, MaxInFlight: 64, RangeLimit: 4096, Trace: rec, Logger: logger})
	if err := srv.Start(dataAddr); err != nil {
		logf("serve: %v", err)
		return 1
	}
	adminLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		logf("admin: %v", err)
		return 1
	}
	go http.Serve(adminLn, srv.AdminHandler())
	addrs := fmt.Sprintf("%s %s %s", dataAddr, node.ReplAddr(), adminLn.Addr().String())
	if err := os.WriteFile(addrFile, []byte(addrs), 0o644); err != nil {
		logf("publish: %v", err)
		return 1
	}
	select {}
}

// dumpSlowOps prints the promoted node's /debug/rtrace slow-op log to
// stderr — best effort, for audit-failure forensics only.
func dumpSlowOps(adminAddr string) {
	resp, err := http.Get("http://" + adminAddr + "/debug/rtrace")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var body struct {
		Slow []json.RawMessage `json:"slow"`
	}
	if json.NewDecoder(resp.Body).Decode(&body) != nil {
		return
	}
	fmt.Fprintf(os.Stderr, "failover: %d slow op(s) retained on the promoted node:\n", len(body.Slow))
	for _, so := range body.Slow {
		fmt.Fprintf(os.Stderr, "  %s\n", so)
	}
}

func reserveAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// childAddrs is what a failover child publishes.
type childAddrs struct {
	data, repl, admin string
}

// spawnFailoverChild re-execs this binary as one cluster node and waits
// for its published addresses. The returned kill func is idempotent.
func spawnFailoverChild(dir string, o childOpts) (childAddrs, func(), error) {
	var ca childAddrs
	addrDir, err := os.MkdirTemp("", "bst-failover-addr-")
	if err != nil {
		return ca, nil, err
	}
	addrFile := filepath.Join(addrDir, "addr")
	exe, err := os.Executable()
	if err != nil {
		os.RemoveAll(addrDir)
		return ca, nil, err
	}
	args := []string{"-failover-child", "-fo-data", dir, "-fo-addr-file", addrFile, "-fo-replica-of", o.replicaOf}
	if o.peers != "" {
		args = append(args, "-fo-peers", o.peers)
	}
	if o.priority != 0 {
		args = append(args, "-fo-priority", strconv.Itoa(o.priority))
	}
	if o.auto {
		args = append(args, "-fo-auto")
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		os.RemoveAll(addrDir)
		return ca, nil, fmt.Errorf("spawn child: %w", err)
	}
	var once sync.Once
	kill := func() {
		once.Do(func() {
			cmd.Process.Kill() // SIGKILL: no drain, no heads-up to peers
			cmd.Wait()
			os.RemoveAll(addrDir)
		})
	}
	// A leader child first recovers the 1.1M-op seed store; give it time.
	for waitUntil := time.Now().Add(60 * time.Second); ; {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			f := strings.Fields(string(b))
			if len(f) == 3 {
				ca.data, ca.repl, ca.admin = f[0], f[1], f[2]
				return ca, kill, nil
			}
		}
		if time.Now().After(waitUntil) {
			kill()
			return ca, nil, errors.New("child never published its addresses")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// clusterHealth is the slice of the admin /healthz body the rounds read.
type clusterHealth struct {
	Cluster struct {
		Role          string `json:"role"`
		Term          uint64 `json:"term"`
		AppliedSeq    uint64 `json:"applied_seq"`
		AckedSeq      uint64 `json:"acked_seq"`
		Followers     int    `json:"followers"`
		ElectionState string `json:"election_state"`
		Fenced        bool   `json:"fenced"`
	} `json:"cluster"`
}

func fetchHealth(adminAddr string) (clusterHealth, error) {
	var h clusterHealth
	resp, err := http.Get("http://" + adminAddr + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	return h, json.NewDecoder(resp.Body).Decode(&h)
}

// seedFailoverStore builds the leader's starting state on disk: snap
// shuffled inserts, a checkpoint, then a tail of inserts that only the
// WAL holds, ended with a dirty close — so the leader child recovers a
// real snapshot + tail, and the follower's catch-up must cross both.
func seedFailoverStore(dir string, seed uint64, snap, tail int) error {
	dur, err := durable.Open(dir, durable.Options{Sync: wal.SyncNone})
	if err != nil {
		return err
	}
	ks := make([]int64, snap+tail)
	for i := range ks {
		ks[i] = int64(i)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	rng.Shuffle(len(ks), func(i, j int) { ks[i], ks[j] = ks[j], ks[i] })

	acc := dur.NewAccessor()
	insertAll := func(part []int64) error {
		out := make([]bst.OpResult, 4096)
		for len(part) > 0 {
			n := min(len(part), 4096)
			acc.InsertBatch(part[:n], out[:n])
			for i := 0; i < n; i++ {
				if out[i].Err != nil || !out[i].OK {
					return fmt.Errorf("seed InsertBatch(%d) = %+v", part[i], out[i])
				}
			}
			part = part[n:]
		}
		return nil
	}
	if err := insertAll(ks[:snap]); err != nil {
		acc.Close()
		return err
	}
	if _, err := dur.Checkpoint(); err != nil {
		acc.Close()
		return fmt.Errorf("seed checkpoint: %w", err)
	}
	if err := insertAll(ks[snap:]); err != nil {
		acc.Close()
		return err
	}
	acc.Close()
	return dur.Crash()
}

const probeKey = int64(1) << 60 // first write on the promoted node

func failoverRound(workers int, seed uint64) (err error) {
	leaderDir, err := os.MkdirTemp("", "bst-failover-leader-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(leaderDir)
	followerDir, err := os.MkdirTemp("", "bst-failover-follower-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(followerDir)

	if err := seedFailoverStore(leaderDir, seed, snapKeys, tailOps); err != nil {
		return fmt.Errorf("seeding leader store: %w", err)
	}

	leader, killLeader, err := spawnFailoverChild(leaderDir, childOpts{})
	if err != nil {
		return err
	}
	defer killLeader()
	follower, killFollower, err := spawnFailoverChild(followerDir, childOpts{replicaOf: leader.repl})
	if err != nil {
		return err
	}
	defer killFollower()

	// Gate the load on the follower having fully caught up (snapshot
	// bulk-load + 1.1M-op horizon): the leader is semi-sync, so writes
	// before a follower connects would only time out.
	catchup := time.Now()
	for {
		h, err := fetchHealth(leader.admin)
		if err == nil && h.Cluster.Followers >= 1 && h.Cluster.AckedSeq >= h.Cluster.AppliedSeq && h.Cluster.AppliedSeq > 0 {
			break
		}
		if time.Since(catchup) > 120*time.Second {
			return fmt.Errorf("follower never caught up to the leader (last health: %+v, err: %v)", h, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("failover: follower caught up %d-key + %d-op seed in %v\n",
		snapKeys, tailOps, time.Since(catchup).Round(time.Millisecond))

	// Load phase: same ledger discipline as -crash (one conn, one attempt,
	// sequential ops, disjoint ranges), so the post-failover audit is exact.
	results := make([]crashWorker, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			cl, err := client.Dial(client.Config{
				Addr: leader.data, Conns: 1, MaxAttempts: 1, Seed: int64(seed)*1000 + int64(w),
			})
			if err != nil {
				r.err = err
				return
			}
			defer cl.Close()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()

			next := int64(w+1) << 32 // disjoint ranges, clear of the seed keys
			delCursor := 0
			for i := 0; ; i++ {
				if i%4 == 3 && delCursor < len(r.ackedIns) {
					k := r.ackedIns[delCursor]
					ok, err := cl.Delete(ctx, k)
					if err != nil {
						r.inflight = append(r.inflight, k)
						return
					}
					if !ok {
						r.err = fmt.Errorf("Delete(%d) of an acked key = false", k)
						return
					}
					r.ackedDel = append(r.ackedDel, k)
					delCursor++
					continue
				}
				k := next
				next++
				ok, err := cl.Insert(ctx, k)
				if err != nil {
					r.inflight = append(r.inflight, k)
					return
				}
				if !ok {
					r.err = fmt.Errorf("Insert(%d) of a fresh key = false", k)
					return
				}
				r.ackedIns = append(r.ackedIns, k)
			}
		}(w)
	}

	time.Sleep(time.Second)
	killStart := time.Now()
	killLeader() // SIGKILL mid-load: the cluster's data plane is down
	wg.Wait()

	totalAcked := 0
	for w := range results {
		if results[w].err != nil {
			return fmt.Errorf("worker %d before the kill: %v", w, results[w].err)
		}
		totalAcked += len(results[w].ackedIns) + len(results[w].ackedDel)
	}
	if totalAcked == 0 {
		return errors.New("no operation was acknowledged before the kill; round is inconclusive")
	}

	// Operator-driven failover: promote the follower, then clock until the
	// promoted node acknowledges a write.
	promoted := false
	for time.Since(killStart) < recoveryBudget {
		resp, err := http.Post("http://"+follower.admin+"/promote", "", nil)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				promoted = true
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !promoted {
		return fmt.Errorf("POST /promote never succeeded within %v", recoveryBudget)
	}
	cl, err := client.Dial(client.Config{Addr: follower.data, Seed: int64(seed)})
	if err != nil {
		return err
	}
	defer cl.Close()
	// From here every failure is an audit failure against the promoted
	// node: dump its slow-op log so the report names the guilty phase.
	defer func() {
		if err != nil {
			dumpSlowOps(follower.admin)
		}
	}()
	var served time.Duration
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		ok, err := cl.Insert(ctx, probeKey)
		cancel()
		if err == nil && ok {
			served = time.Since(killStart)
			break
		}
		if time.Since(killStart) > recoveryBudget {
			return fmt.Errorf("promoted node not serving writes %v after the kill (budget %v; last err %v)",
				time.Since(killStart).Round(time.Millisecond), recoveryBudget, err)
		}
	}

	// Audit over the wire against the promoted node. Semi-sync made every
	// client ack imply follower application, so this is exact, not
	// probabilistic: acked state must be 100% present, no ghosts.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	mustPresent := map[int64]bool{}
	mayEither := map[int64]bool{}
	for w := range results {
		r := &results[w]
		for _, k := range r.ackedIns {
			mustPresent[k] = true
		}
		for _, k := range r.ackedDel {
			delete(mustPresent, k)
			if ok, err := cl.Lookup(ctx, k); err != nil {
				return fmt.Errorf("audit Lookup(%d): %w", k, err)
			} else if ok {
				return fmt.Errorf("key %d: delete was acked before the kill but the key survived failover", k)
			}
		}
		for _, k := range r.inflight {
			delete(mustPresent, k)
			mayEither[k] = true
		}
	}
	for k := range mustPresent {
		if ok, err := cl.Lookup(ctx, k); err != nil {
			return fmt.Errorf("audit Lookup(%d): %w", k, err)
		} else if !ok {
			return fmt.Errorf("key %d: insert was acked (semi-sync) before the kill but is gone after failover", k)
		}
	}

	// Ghost scan: page the whole keyspace through Range and reject any key
	// with no explanation (seed, acked ledger, in-flight, probe).
	seen := 0
	from := int64(-1) << 62
	for {
		keys, err := cl.Range(ctx, from, 1<<62, 4096)
		if err != nil {
			return fmt.Errorf("audit Range from %d: %w", from, err)
		}
		if len(keys) == 0 {
			break
		}
		for _, k := range keys {
			seen++
			if k >= 0 && k < int64(snapKeys+tailOps) {
				continue // seeded
			}
			if k == probeKey || mustPresent[k] || mayEither[k] {
				continue
			}
			return fmt.Errorf("ghost key %d present after failover: never seeded, acknowledged, or in flight", k)
		}
		from = keys[len(keys)-1] + 1
	}
	if seen < snapKeys+tailOps {
		return fmt.Errorf("audit scan saw %d keys, fewer than the %d seeded", seen, snapKeys+tailOps)
	}

	inflight := 0
	for w := range results {
		inflight += len(results[w].inflight)
	}
	fmt.Printf("failover: promoted follower serving %v after kill -9 (budget %v) — %d acked ops (%d in flight) "+
		"audited 100%% present, 0 ghosts across %d keys\n",
		served.Round(time.Millisecond), recoveryBudget, totalAcked, inflight, seen)
	return nil
}
