package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	bst "repro"
)

// aggregateRound checks that Exact-mode order-statistics queries are
// linearizable against concurrent inserts AND deletes, on both the single
// tree and the sharded forest (which merges per-shard summaries).
//
// The checker brackets every query: each worker owns a disjoint key block
// and tracks its keys locally, so it knows before issuing whether a
// mutation will succeed; guaranteed-successful mutations bump an issued
// counter before the call and an acked counter after it. A query reads
// acked counters at t0 (before issuing) and issued counters at t1 (after
// returning). Any linearization point t of the query lies in [t0, t1], so
//
//	count(t) ≥ insAcked(t0) − delIssued(t1)   (completed ⇒ linearized;
//	count(t) ≤ insIssued(t1) − delAcked(t0)    linearized ⇒ issued)
//
// — every Exact Rank/CountRange answer must land inside that window, with
// no quiescing. A final quiescent phase then checks exact agreement
// against a fresh Scan (count, rank, and spot-checked Select).
func aggregateRound(workers int, seed uint64) error {
	for _, sharded := range []bool{false, true} {
		if err := aggregateConfigRound(workers, seed, sharded); err != nil {
			name := "single"
			if sharded {
				name = "sharded"
			}
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

func aggregateConfigRound(workers int, seed uint64, sharded bool) error {
	const (
		blockSize = 4096 // keys per worker block
		opsPerW   = 20000
		queries   = 400
	)
	span := int64(workers) * blockSize
	opts := []bst.Option{
		bst.WithOrderStatistics(), bst.WithReclamation(), bst.WithCapacity(1 << 20),
	}
	if sharded {
		opts = append(opts, bst.WithShards(4), bst.WithShardRange(0, span))
	}
	tr := bst.New(opts...)
	defer tr.Close()

	var insIssued, insAcked, delIssued, delAcked atomic.Int64
	var wg sync.WaitGroup
	var workerErr atomic.Value
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)*1000 + int64(w)))
			lo := int64(w) * blockSize
			present := make(map[int64]bool, blockSize)
			for i := 0; i < opsPerW; i++ {
				k := lo + rng.Int63n(blockSize)
				if !present[k] {
					insIssued.Add(1)
					if !tr.Insert(k) {
						workerErr.Store(fmt.Errorf("insert of absent owned key %d returned false", k))
						return
					}
					insAcked.Add(1)
					present[k] = true
				} else {
					delIssued.Add(1)
					if !tr.Delete(k) {
						workerErr.Store(fmt.Errorf("delete of present owned key %d returned false", k))
						return
					}
					delAcked.Add(1)
					present[k] = false
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()

	qrng := rand.New(rand.NewSource(int64(seed) * 7919))
	checked := 0
	for checked < queries {
		select {
		case <-done:
		default:
		}
		// Whole-span count via CountRange and via Rank — both must sit in
		// the bracket. Sub-windows can't be bracketed by global counters,
		// so the concurrent check uses the full span; sub-window agreement
		// is the quiescent phase's job.
		aIns, aDel := insAcked.Load(), delAcked.Load()
		n, err := tr.CountRange(0, span, bst.Exact)
		if err != nil {
			return err
		}
		r, err := tr.Rank(span+1, bst.Exact)
		if err != nil {
			return err
		}
		iIns, iDel := insIssued.Load(), delIssued.Load()
		lo, hi := aIns-iDel, iIns-aDel
		if int64(n) < lo || int64(n) > hi {
			return fmt.Errorf("exact CountRange = %d outside linearizability window [%d, %d]", n, lo, hi)
		}
		if int64(r) < lo || int64(r) > hi {
			return fmt.Errorf("exact Rank = %d outside linearizability window [%d, %d]", r, lo, hi)
		}
		checked++
		_ = qrng
	}
	wg.Wait()
	if e := workerErr.Load(); e != nil {
		return e.(error)
	}

	// Quiescent: aggregate answers agree exactly with a fresh scan.
	var keys []int64
	tr.Scan(0, span, func(k int64) bool { keys = append(keys, k); return true })
	n, err := tr.CountRange(0, span, bst.Exact)
	if err != nil {
		return err
	}
	if n != len(keys) {
		return fmt.Errorf("quiescent CountRange = %d, scan found %d", n, len(keys))
	}
	if net := insAcked.Load() - delAcked.Load(); int64(n) != net {
		return fmt.Errorf("quiescent count %d != acked net %d", n, net)
	}
	for t := 0; t < 32 && len(keys) > 0; t++ {
		i := qrng.Intn(len(keys))
		got, err := tr.Select(i, bst.Exact)
		if err != nil {
			return err
		}
		if got != keys[i] {
			return fmt.Errorf("quiescent Select(%d) = %d, scan says %d", i, got, keys[i])
		}
		mid := keys[i]
		r, err := tr.Rank(mid, bst.Exact)
		if err != nil {
			return err
		}
		if r != i {
			return fmt.Errorf("quiescent Rank(%d) = %d, scan says %d", mid, r, i)
		}
	}
	return nil
}
