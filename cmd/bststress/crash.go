package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	bst "repro"
	"repro/internal/client"
	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/wal"
)

// The -crash round is the durability gate. It runs two phases:
//
// Phase A (kill -9): the process re-execs itself as a durable bstserve
// child (-sync fsync) on a temp data dir, hammers it over the wire from
// workers on disjoint key ranges while recording exactly which mutations
// were acknowledged, SIGKILLs the child mid-flight, then reopens the data
// dir in-process and audits the recovered set:
//
//   - every acked insert (not later acked-deleted) must be present,
//   - every acked delete must have stuck,
//   - the single op each worker had in flight when the connection died
//     may have landed either way,
//   - and a full Scan must show no ghost keys — nothing the workers never
//     asked for, and nothing that was never acknowledged and not in
//     flight.
//
// Phase B (recovery clock): builds a 1M-key store, checkpoints, appends a
// 100k-op WAL tail, crashes without fsync, and times the reopen — the
// snapshot bulk-load plus tail replay must finish inside
// recoveryBudget, and the measured time is printed for the CI log.

// shardTreeOpts returns the TreeOptions for an n-sharded store routing the
// key range [0, rangeHi]; n <= 1 means the classic unsharded store. Every
// open of the same data dir must pass the same options — the forest
// manifest refuses a mismatched reopen.
func shardTreeOpts(n int, rangeHi int64) []bst.Option {
	if n <= 1 {
		return nil
	}
	return []bst.Option{bst.WithShards(n), bst.WithShardRange(0, rangeHi)}
}

// runCrashChild is the re-exec'd server side of phase A: a durable
// fsync-on-ack store behind the full server stack. It writes its data
// address to addrFile and then parks forever — the parent's SIGKILL is
// the only way out, which is the point.
func runCrashChild(dir, addrFile string, shards int, rangeHi int64) int {
	// CheckpointEvery is set low so the kill usually lands with snapshots
	// already cut mid-load — recovery then exercises snapshot bulk-load
	// plus tail replay, and the atomic-rename publish races the SIGKILL.
	dur, err := durable.Open(dir, durable.Options{
		Sync: wal.SyncFsync, CheckpointEvery: 1000,
		TreeOptions: shardTreeOpts(shards, rangeHi),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash-child:", err)
		return 1
	}
	srv := server.New(server.Config{Store: dur, MaxInFlight: 64})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		fmt.Fprintln(os.Stderr, "crash-child:", err)
		return 1
	}
	if err := os.WriteFile(addrFile, []byte(srv.Addr().String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "crash-child:", err)
		return 1
	}
	select {}
}

// crashWorker is one parent-side load generator's ledger. Keys are drawn
// from a per-worker range no other worker touches, so post-crash
// accounting needs no cross-worker reconciliation.
type crashWorker struct {
	ackedIns []int64 // inserts acknowledged (true, nil) over the wire
	ackedDel []int64 // deletes acknowledged (true, nil) over the wire
	inflight []int64 // keys whose op errored mid-flight: either outcome is legal
	err      error   // a semantic violation observed before the kill
}

func crashRound(workers, shards int, seed uint64) error {
	dir, err := os.MkdirTemp("", "bst-crash-data-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	addrDir, err := os.MkdirTemp("", "bst-crash-addr-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(addrDir)
	addrFile := filepath.Join(addrDir, "addr")

	// With shards > 1, route exactly the workers' disjoint key ranges
	// (worker w draws from (w+1)<<32 upward): the range split then spreads
	// the workers across shards, so the kill lands with records in several
	// WAL lanes and recovery actually exercises parallel lane replay.
	rangeHi := (int64(workers) + 2) << 32
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	cmd := exec.Command(exe, "-crash-child", "-crash-data", dir, "-crash-addr-file", addrFile,
		"-crash-shards", fmt.Sprint(shards), "-crash-range-hi", fmt.Sprint(rangeHi))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawn child: %w", err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	var addr string
	for waitUntil := time.Now().Add(15 * time.Second); ; {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		if time.Now().After(waitUntil) {
			return fmt.Errorf("child never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Drive load until the kill. One connection, one attempt, sequential
	// ops per worker: at any instant a worker has at most one op in
	// flight, so the "either way" set stays tight. Retries are off
	// because a retried insert that already landed would come back
	// (false, nil) — an ack that does NOT imply the first attempt's WAL
	// record was fsynced, which would poison the audit.
	results := make([]crashWorker, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			cl, err := client.Dial(client.Config{
				Addr: addr, Conns: 1, MaxAttempts: 1, Seed: int64(seed)*1000 + int64(w),
			})
			if err != nil {
				r.err = err
				return
			}
			defer cl.Close()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()

			next := int64(w+1) << 32 // disjoint ranges
			delCursor := 0
			for i := 0; ; i++ {
				if i%4 == 3 && delCursor < len(r.ackedIns) {
					k := r.ackedIns[delCursor]
					ok, err := cl.Delete(ctx, k)
					if err != nil {
						r.inflight = append(r.inflight, k)
						return
					}
					if !ok {
						r.err = fmt.Errorf("Delete(%d) of an acked key = false", k)
						return
					}
					r.ackedDel = append(r.ackedDel, k)
					delCursor++
					continue
				}
				k := next
				next++
				ok, err := cl.Insert(ctx, k)
				if err != nil {
					r.inflight = append(r.inflight, k)
					return
				}
				if !ok {
					r.err = fmt.Errorf("Insert(%d) of a fresh key = false", k)
					return
				}
				r.ackedIns = append(r.ackedIns, k)
			}
		}(w)
	}

	time.Sleep(500 * time.Millisecond)
	cmd.Process.Kill() // SIGKILL: no drain, no final fsync, no checkpoint
	cmd.Wait()
	killed = true
	wg.Wait()

	totalAcked := 0
	for w := range results {
		if results[w].err != nil {
			return fmt.Errorf("worker %d before the kill: %v", w, results[w].err)
		}
		totalAcked += len(results[w].ackedIns) + len(results[w].ackedDel)
	}
	if totalAcked == 0 {
		return fmt.Errorf("no operation was acknowledged before the kill; round is inconclusive")
	}

	// Recover in-process and audit against the ledgers.
	start := time.Now()
	dur, err := durable.Open(dir, durable.Options{
		Sync: wal.SyncFsync, TreeOptions: shardTreeOpts(shards, rangeHi),
	})
	if err != nil {
		return fmt.Errorf("recovery after kill -9: %w", err)
	}
	defer dur.Close()
	rs := dur.RecoveryStats()

	mustPresent := map[int64]bool{}
	mayEither := map[int64]bool{}
	for w := range results {
		r := &results[w]
		for _, k := range r.ackedIns {
			mustPresent[k] = true
		}
		for _, k := range r.ackedDel {
			delete(mustPresent, k)
			if dur.Contains(k) {
				return fmt.Errorf("key %d: delete was acked before the kill but the key came back", k)
			}
		}
		for _, k := range r.inflight {
			delete(mustPresent, k)
			mayEither[k] = true
		}
	}
	for k := range mustPresent {
		if !dur.Contains(k) {
			return fmt.Errorf("key %d: insert was acked (fsync policy) before kill -9 but is gone after recovery", k)
		}
	}
	ghosts := 0
	dur.Scan(-1<<62, 1<<62, func(k int64) bool {
		if !mustPresent[k] && !mayEither[k] {
			ghosts++
			if ghosts == 1 {
				err = fmt.Errorf("ghost key %d present after recovery: never acknowledged and not in flight", k)
			}
		}
		return true
	})
	if ghosts > 0 {
		return err
	}

	inflight := 0
	for w := range results {
		inflight += len(results[w].inflight)
	}
	if got := dur.Shards(); got != max(shards, 1) {
		return fmt.Errorf("recovered store has %d WAL lanes, want %d", got, max(shards, 1))
	}
	fmt.Printf("crash phase A: kill -9 with %d acked ops (%d in flight, %d WAL lanes) — 100%% of acked mutations present, "+
		"0 ghosts; recovered %d snapshot keys + %d WAL ops in %v\n",
		totalAcked, inflight, dur.Shards(), rs.SnapshotKeys, rs.ReplayedOps, time.Since(start).Round(time.Millisecond))
	return recoveryClock(seed, shards)
}

// recoveryClock is phase B: bound the time to come back from a crash with
// a large snapshot and a long WAL tail.
const (
	recoveryBudget = 10 * time.Second
	snapKeys       = 1_000_000
	tailOps        = 100_000
)

func recoveryClock(seed uint64, shards int) error {
	dir, err := os.MkdirTemp("", "bst-crash-clock-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Build: 1M keys (shuffled — sequential inserts would spine the live
	// tree), one checkpoint, then a 100k-op tail that only the WAL holds.
	// sync=none keeps the build fast; the records still reach the file
	// through the flusher before CloseDirty returns. With shards > 1 the
	// keys spread evenly across lanes (the routed range is exactly the key
	// set), so the timed reopen measures parallel lane replay.
	clockOpts := shardTreeOpts(shards, snapKeys+tailOps)
	dur, err := durable.Open(dir, durable.Options{Sync: wal.SyncNone, TreeOptions: clockOpts})
	if err != nil {
		return err
	}
	keys := make([]int64, snapKeys+tailOps)
	for i := range keys {
		keys[i] = int64(i)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

	acc := dur.NewAccessor()
	insertAll := func(ks []int64) error {
		out := make([]bst.OpResult, 4096)
		for len(ks) > 0 {
			n := min(len(ks), 4096)
			acc.InsertBatch(ks[:n], out[:n])
			for i := 0; i < n; i++ {
				if out[i].Err != nil || !out[i].OK {
					return fmt.Errorf("build InsertBatch(%d) = %+v", ks[i], out[i])
				}
			}
			ks = ks[n:]
		}
		return nil
	}
	if err := insertAll(keys[:snapKeys]); err != nil {
		acc.Close()
		return err
	}
	ck, err := dur.Checkpoint()
	if err != nil {
		acc.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if ck.Keys != snapKeys {
		acc.Close()
		return fmt.Errorf("checkpoint covered %d keys, want %d", ck.Keys, snapKeys)
	}
	if err := insertAll(keys[snapKeys:]); err != nil {
		acc.Close()
		return err
	}
	acc.Close()
	if err := dur.Crash(); err != nil {
		return fmt.Errorf("Crash: %w", err)
	}

	start := time.Now()
	dur2, err := durable.Open(dir, durable.Options{Sync: wal.SyncFsync, TreeOptions: clockOpts})
	if err != nil {
		return fmt.Errorf("timed recovery: %w", err)
	}
	elapsed := time.Since(start)
	defer dur2.Close()

	rs := dur2.RecoveryStats()
	if rs.SnapshotKeys != snapKeys || rs.ReplayedOps != tailOps {
		return fmt.Errorf("recovery shape: %d snapshot keys + %d replayed, want %d + %d",
			rs.SnapshotKeys, rs.ReplayedOps, snapKeys, tailOps)
	}
	if got := dur2.Len(); got != snapKeys+tailOps {
		return fmt.Errorf("recovered Len = %d, want %d", got, snapKeys+tailOps)
	}
	for _, k := range []int64{0, snapKeys - 1, snapKeys, snapKeys + tailOps - 1} {
		if !dur2.Contains(k) {
			return fmt.Errorf("recovered store missing key %d", k)
		}
	}
	fmt.Printf("crash phase B: recovered %d-key snapshot + %d-op WAL tail (%d lanes) in %v (budget %v)\n",
		snapKeys, tailOps, dur2.Shards(), elapsed.Round(time.Millisecond), recoveryBudget)
	if elapsed > recoveryBudget {
		return fmt.Errorf("recovery took %v, over the %v budget", elapsed, recoveryBudget)
	}
	return nil
}
