// bststress is a correctness gate: it hammers every concurrent BST
// implementation with adversarial concurrent workloads and fails loudly on
// any violation of the sequential set semantics.
//
// Two checks run per round:
//
//  1. Counting invariant: per key, successful inserts minus successful
//     deletes must equal the key's final presence (0 or 1).
//  2. Linearizability: a recorded timestamped history over a small hot key
//     set must admit a valid linearization (Wing & Gong check against the
//     dictionary specification) — the paper's Section 3.3 claim.
//
// With -exhaust a third check runs against the arena-backed tree only:
// workers drive a deliberately tiny arena (-capacity) past ErrCapacity and
// the round verifies graceful degradation — no panics, reads and deletes
// keep working at the bound, and inserts succeed again once reclamation
// recycles freed nodes.
//
// With -crash the durability gate runs (see crash.go): a re-exec'd durable
// fsync server is SIGKILLed mid-load, the data dir is recovered in-process,
// and every wire-acknowledged mutation must have survived — plus a timed
// 1M-key snapshot + 100k-op WAL tail recovery under a hard budget.
//
// With -failover the replication gate runs (see failover.go): a
// semi-synchronous leader seeded at 1M-key + 100k-tail scale replicates to
// a follower, is SIGKILLed mid-load, and the promoted follower must serve
// writes within the recovery budget while an over-the-wire audit shows
// 100% of acked mutations present and zero ghost keys.
//
// Exit status is non-zero if any round fails. Intended for CI and soak
// runs (-duration 10m).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	bst "repro"
	"repro/internal/check"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workload"
)

// curRegistry holds the telemetry registry of the round currently running,
// so the -metrics endpoint always serves live numbers while registries
// rotate per round.
var curRegistry atomic.Pointer[metrics.Registry]

func main() {
	var (
		duration    = flag.Duration("duration", 10*time.Second, "total stress budget")
		workers     = flag.Int("workers", 8, "concurrent workers per round")
		keySpace    = flag.Int64("keyspace", 64, "hot key range (small = high contention)")
		targetsFlag = flag.String("targets", "nm,nm-boxed,efrb,hj,bcco,cgl,kst4,kst16", "implementations to stress")
		capacity    = flag.Int("capacity", 512, "arena bound (nodes) for the -exhaust round")
		exhaust     = flag.Bool("exhaust", false, "also stress capacity exhaustion and recovery on the arena-backed tree")
		serve       = flag.Bool("serve", false, "also soak the network serving layer: in-process bstserve + retrying clients, counting invariant verified over the wire")
		batch       = flag.Bool("batch", false, "also check linearizability of batched operations racing single ops (targets with batch entry points)")
		metricsAddr = flag.String("metrics", "", "serve live telemetry on this address (/metrics Prometheus, /debug/vars JSON) while stressing")
		traceFile   = flag.String("trace", "", "write a runtime/trace capture (rounds appear as tasks with per-check regions)")
		aggregate   = flag.Bool("aggregate", false, "also check Exact-mode order-statistics linearizability: rank/count bracket checker racing concurrent inserts and deletes on indexed single and sharded trees")
		crash       = flag.Bool("crash", false, "also run the durability gate: kill -9 a durable fsync server mid-load, recover, audit every acked mutation, and clock a 1M-key recovery")
		crashShards = flag.Int("crash-shards", 1, "shard count for the -crash round's durable store (>1 = per-shard WAL lanes, parallel lane replay on recovery)")

		failover = flag.Bool("failover", false, "also run the failover gate: seed a 1M-key leader, replicate to a follower, kill -9 the leader mid-load, promote, and audit every acked mutation on the new leader")

		chaos     = flag.Bool("chaos", false, "also run the chaos gate: a 3-node auto-failover cluster behind a fault-injecting proxy mesh — scripted partitions fence the old leader, kill -9 takes the successor — auditing every acked mutation and exactly one leader per term")
		chaosSeed = flag.Uint64("chaos-seed", 1, "deterministic seed for the -chaos fault schedule")

		crashChild    = flag.Bool("crash-child", false, "internal: run as the -crash round's durable server child")
		crashData     = flag.String("crash-data", "", "internal: data dir for -crash-child")
		crashAddrFile = flag.String("crash-addr-file", "", "internal: where -crash-child writes its data address")
		crashRangeHi  = flag.Int64("crash-range-hi", 0, "internal: sharded key-range upper bound for -crash-child")

		foChild     = flag.Bool("failover-child", false, "internal: run as a -failover/-chaos round cluster node child")
		foData      = flag.String("fo-data", "", "internal: data dir for -failover-child")
		foAddrFile  = flag.String("fo-addr-file", "", "internal: where -failover-child writes its addresses")
		foReplicaOf = flag.String("fo-replica-of", "", "internal: leader repl address for a follower -failover-child")
		foPeers     = flag.String("fo-peers", "", "internal: comma-separated peer repl addrs for -failover-child elections")
		foPriority  = flag.Int("fo-priority", 0, "internal: election priority for -failover-child")
		foAuto      = flag.Bool("fo-auto", false, "internal: enable automatic elections in -failover-child")
	)
	flag.Parse()
	if *crashChild {
		os.Exit(runCrashChild(*crashData, *crashAddrFile, *crashShards, *crashRangeHi))
	}
	if *foChild {
		os.Exit(runFailoverChild(*foData, *foAddrFile, childOpts{
			replicaOf: *foReplicaOf, peers: *foPeers, priority: *foPriority, auto: *foAuto,
		}))
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bststress:", err)
			os.Exit(2)
		}
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "bststress:", err)
			os.Exit(2)
		}
		defer func() { rtrace.Stop(); f.Close() }()
	}
	if *metricsAddr != "" {
		h := metrics.Handler(func() []metrics.Source {
			return []metrics.Source{{Name: "nm", Registry: curRegistry.Load()}}
		})
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bststress:", err)
			os.Exit(2)
		}
		srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
		go srv.Serve(ln)
		fmt.Printf("metrics endpoint: http://%s/metrics\n", ln.Addr())
	}
	if *exhaust && *capacity < 16 {
		// Below ~8 slots the tree cannot even allocate its sentinels.
		fmt.Fprintln(os.Stderr, "bststress: -capacity must be at least 16 for -exhaust")
		os.Exit(2)
	}

	var targets []harness.Target
	for _, name := range strings.Split(*targetsFlag, ",") {
		t, err := harness.TargetByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bststress:", err)
			os.Exit(2)
		}
		targets = append(targets, t)
	}

	// SIGINT/SIGTERM request a graceful stop: the current round runs to
	// completion (its invariant checks still count), then the final report
	// prints and the exit status reflects failures so far. A second signal
	// kills the process via the default handler.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	interrupted := func() (os.Signal, bool) {
		select {
		case sig := <-sigc:
			signal.Stop(sigc)
			return sig, true
		default:
			return nil, false
		}
	}

	deadline := time.Now().Add(*duration)
	round := 0
	failures := 0
	for time.Now().Before(deadline) {
		if sig, stop := interrupted(); stop {
			fmt.Printf("bststress: %v — finishing after %d complete round(s)\n", sig, round)
			break
		}
		round++
		// Fresh telemetry registry per round (served live via -metrics);
		// only the arena-backed nm tree consumes it.
		reg := metrics.NewRegistry(0)
		curRegistry.Store(reg)
		// Each round is a runtime/trace task; each check on each target is
		// a region labelled for pprof, so per-check, per-algorithm costs
		// show up in standard Go tooling when -trace or profiling is on.
		ctx, task := rtrace.NewTask(context.Background(), fmt.Sprintf("stress-round-%d", round))
		for _, target := range targets {
			runCheck(ctx, "counting", target.Name, func() {
				if err := countingRound(target, *workers, *keySpace, uint64(round), reg); err != nil {
					failures++
					fmt.Printf("FAIL [counting] %s round %d: %v\n", target.Name, round, err)
				}
			})
			runCheck(ctx, "linearizability", target.Name, func() {
				if err := linearizabilityRound(target, *workers, uint64(round), reg); err != nil {
					failures++
					fmt.Printf("FAIL [linearizability] %s round %d: %v\n", target.Name, round, err)
				}
			})
			if *batch {
				runCheck(ctx, "batch-linearizability", target.Name, func() {
					if err := batchLinearizabilityRound(target, *workers, uint64(round), reg); err != nil {
						failures++
						fmt.Printf("FAIL [batch-linearizability] %s round %d: %v\n", target.Name, round, err)
					}
				})
			}
		}
		if *exhaust {
			runCheck(ctx, "exhaust", "nm", func() {
				if err := exhaustRound(*capacity, *workers, *keySpace, uint64(round), reg); err != nil {
					failures++
					fmt.Printf("FAIL [exhaust] nm round %d: %v\n", round, err)
				}
			})
		}
		if *serve {
			runCheck(ctx, "serve", "nm", func() {
				if err := serveRound(*workers, *keySpace, uint64(round)); err != nil {
					failures++
					fmt.Printf("FAIL [serve] nm round %d: %v\n", round, err)
				}
			})
		}
		if *aggregate {
			runCheck(ctx, "aggregate", "nm", func() {
				if err := aggregateRound(*workers, uint64(round)); err != nil {
					failures++
					fmt.Printf("FAIL [aggregate] nm round %d: %v\n", round, err)
				}
			})
		}
		if *crash {
			runCheck(ctx, "crash", "nm", func() {
				if err := crashRound(*workers, *crashShards, uint64(round)); err != nil {
					failures++
					fmt.Printf("FAIL [crash] nm round %d: %v\n", round, err)
				}
			})
		}
		if *failover {
			runCheck(ctx, "failover", "nm", func() {
				if err := failoverRound(*workers, uint64(round)); err != nil {
					failures++
					fmt.Printf("FAIL [failover] nm round %d: %v\n", round, err)
				}
			})
		}
		if *chaos {
			runCheck(ctx, "chaos", "nm", func() {
				if err := chaosRound(*workers, *chaosSeed+uint64(round)-1); err != nil {
					failures++
					fmt.Printf("FAIL [chaos] nm round %d: %v\n", round, err)
				}
			})
		}
		task.End()
		fmt.Printf("round %d complete (%d targets, %d failures so far)\n", round, len(targets), failures)
	}
	if failures > 0 {
		fmt.Printf("bststress: %d failure(s) over %d rounds\n", failures, round)
		os.Exit(1)
	}
	fmt.Printf("bststress: OK — %d rounds × %d targets, no violations\n", round, len(targets))
}

// runCheck runs one correctness check under pprof labels and a trace
// region, so profiles and traces attribute costs to (check, target).
func runCheck(ctx context.Context, check, target string, fn func()) {
	labels := pprof.Labels("bst_check", check, "bst_target", target)
	pprof.Do(ctx, labels, func(ctx context.Context) {
		rtrace.WithRegion(ctx, check+":"+target, fn)
	})
}

func countingRound(target harness.Target, workers int, keySpace int64, seed uint64, reg *metrics.Registry) error {
	inst := target.New(harness.Config{ArenaCapacity: 1 << 22, Metrics: reg})
	ins := make([]atomic.Int64, keySpace)
	del := make([]atomic.Int64, keySpace)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := inst.NewAccessor()
			rng := rand.New(rand.NewSource(int64(seed)*1000 + int64(w)))
			for i := 0; i < 30000; i++ {
				k := rng.Int63n(keySpace)
				u := keys.Map(k)
				switch rng.Intn(3) {
				case 0:
					if acc.Insert(u) {
						ins[k].Add(1)
					}
				case 1:
					if acc.Delete(u) {
						del[k].Add(1)
					}
				default:
					acc.Search(u)
				}
			}
		}(w)
	}
	wg.Wait()
	acc := inst.NewAccessor()
	for k := int64(0); k < keySpace; k++ {
		diff := ins[k].Load() - del[k].Load()
		present := acc.Search(keys.Map(k))
		if !(diff == 0 && !present || diff == 1 && present) {
			return fmt.Errorf("key %d: %d successful inserts, %d successful deletes, present=%v",
				k, ins[k].Load(), del[k].Load(), present)
		}
	}
	return nil
}

// exhaustRound drives a reclaiming arena-backed tree to its capacity bound
// from every worker at once, then verifies graceful degradation: ErrCapacity
// (never a panic) at the bound, reads and deletes still serving, structural
// validity throughout, and inserts succeeding again after frees.
func exhaustRound(capacity, workers int, keySpace int64, seed uint64, reg *metrics.Registry) error {
	tr := core.New(core.Config{Capacity: capacity, Reclaim: true, Metrics: reg})
	_ = keySpace // exhaust uses disjoint per-worker ranges; contention comes from the shared arena

	type result struct {
		inserted  []int64 // keys this worker holds live
		sawCap    bool
		recovered int
		err       error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			h := tr.NewHandle()
			defer h.Close()
			base := int64(seed)*1_000_000_000 + int64(w)*10_000_000

			// Phase 1: insert fresh keys until the arena pushes back.
			for k := base; ; k++ {
				ok, err := h.TryInsert(keys.Map(k))
				if err != nil {
					if !errors.Is(err, core.ErrCapacity) {
						r.err = fmt.Errorf("TryInsert: %v, want ErrCapacity", err)
						return
					}
					r.sawCap = true
					break
				}
				if !ok {
					r.err = fmt.Errorf("TryInsert(%d) = false on a fresh key", k)
					return
				}
				r.inserted = append(r.inserted, k)
				if len(r.inserted) > capacity {
					r.err = fmt.Errorf("worker alone inserted %d keys into a %d-node arena", len(r.inserted), capacity)
					return
				}
			}

			// Phase 2: a full tree still serves reads and deletes.
			for _, k := range r.inserted {
				if !h.Search(keys.Map(k)) {
					r.err = fmt.Errorf("key %d lost at the capacity bound", k)
					return
				}
			}
			half := r.inserted[:len(r.inserted)/2]
			for _, k := range half {
				if !h.Delete(keys.Map(k)) {
					r.err = fmt.Errorf("Delete(%d) failed at the capacity bound", k)
					return
				}
			}
			r.inserted = r.inserted[len(half):]

			// Phase 3: recovery — freed nodes recycle (the TryInsert retry
			// path forces epoch flushes) and inserts succeed again.
			for k := base + 5_000_000; k < base+5_000_000+int64(len(half)); k++ {
				ok, err := h.TryInsert(keys.Map(k))
				if err != nil {
					break // peers may still hold the recycled slots; not a failure by itself
				}
				if !ok {
					r.err = fmt.Errorf("recovery TryInsert(%d) = false on a fresh key", k)
					return
				}
				r.inserted = append(r.inserted, k)
				r.recovered++
			}
		}(w)
	}
	wg.Wait()

	recovered := 0
	for w := range results {
		r := &results[w]
		if r.err != nil {
			return fmt.Errorf("worker %d: %v", w, r.err)
		}
		if !r.sawCap {
			return fmt.Errorf("worker %d never hit ErrCapacity; bound not enforced", w)
		}
		recovered += r.recovered
	}
	if recovered == 0 {
		return errors.New("no worker recovered any insert after frees; reclamation recycled nothing")
	}

	// Final audit: every live key present, structure valid, health sane.
	h := tr.NewHandle()
	defer h.Close()
	for w := range results {
		for _, k := range results[w].inserted {
			if !h.Search(keys.Map(k)) {
				return fmt.Errorf("live key %d missing in final audit", k)
			}
		}
	}
	if err := tr.Audit(); err != nil {
		return fmt.Errorf("tree invalid after exhaust/recover cycle: %v", err)
	}
	hl := tr.Health()
	if hl.Recycled == 0 {
		return fmt.Errorf("health reports no recycling after recovery: %+v", hl)
	}
	return nil
}

// serveRound soaks the network serving layer: an in-process bstserve with a
// deliberately low in-flight cap (so shedding really happens) fronting the
// arena-backed tree, hammered by one retrying client per worker. The
// counting invariant is verified purely through acknowledgements that
// crossed the wire, then the server drains gracefully — any dropped-but-
// acknowledged operation, stuck drain, or structural damage fails the round.
func serveRound(workers int, keySpace int64, seed uint64) error {
	tree := bst.New(bst.WithCapacity(1<<20), bst.WithReclamation())
	srv := server.New(server.Config{Tree: tree, MaxInFlight: max(2, workers/2)})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	addr := srv.Addr().String()

	ins := make([]atomic.Int64, keySpace)
	del := make([]atomic.Int64, keySpace)
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(client.Config{Addr: addr, Conns: 1, Seed: int64(seed)*1000 + int64(w)})
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			defer cl.Close()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			rng := rand.New(rand.NewSource(int64(seed)*7919 + int64(w)))
			for i := 0; i < 2000; i++ {
				k := rng.Int63n(keySpace)
				var ok bool
				var err error
				switch rng.Intn(3) {
				case 0:
					if ok, err = cl.Insert(ctx, k); ok {
						ins[k].Add(1)
					}
				case 1:
					if ok, err = cl.Delete(ctx, k); ok {
						del[k].Add(1)
					}
				default:
					_, err = cl.Lookup(ctx, k)
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("worker %d op %d: %w", w, i, err))
					return
				}
			}
		}(w)
	}
	wg.Wait()

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return err
	}
	for k := int64(0); k < keySpace; k++ {
		diff := ins[k].Load() - del[k].Load()
		present := tree.Contains(k)
		if !(diff == 0 && !present || diff == 1 && present) {
			return fmt.Errorf("key %d: %d acked inserts, %d acked deletes over the wire, present=%v",
				k, ins[k].Load(), del[k].Load(), present)
		}
	}
	if err := tree.Validate(); err != nil {
		return fmt.Errorf("tree invalid after serve soak: %v", err)
	}
	if c := srv.Counters(); c.InFlight != 0 || c.OpenConns != 0 {
		return fmt.Errorf("post-drain counters: %+v", c)
	}
	return tree.Close()
}

// batchLinearizabilityRound races batched operations against single ops on
// a hot key set and checks the merged history. Each batched call records
// all its operations with the shared invocation/response window — the
// batch is per-op linearizable, not atomic, so every operation's
// linearization point may fall anywhere inside the call and the checker
// must find a consistent placement against the concurrently recorded
// singles. Targets without batch entry points are skipped.
func batchLinearizabilityRound(target harness.Target, workers int, seed uint64, reg *metrics.Registry) error {
	const (
		keySpace  = 128
		batchSize = 16
		rounds    = 8
		singles   = 8 // single ops interleaved per round, racing peers' batches
	)
	inst := target.New(harness.Config{ArenaCapacity: 1 << 20, Metrics: reg})
	if _, ok := inst.NewAccessor().(harness.BatchAccessor); !ok {
		return nil
	}
	rec := trace.NewRecorder(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ba := inst.NewAccessor().(harness.BatchAccessor)
			tape := rec.Worker(w)
			gen := workload.NewGenerator(workload.Mix{Name: "hot", Search: 20, Insert: 40, Delete_: 40},
				keySpace, seed*61+uint64(w)+1)
			var (
				ks   = make([]int64, batchSize)
				us   = make([]uint64, batchSize)
				out  = make([]bool, batchSize)
				errs = make([]error, batchSize)
				ops  = make([]workload.OpKind, batchSize)
			)
			fill := func(kind workload.OpKind) {
				for i := 0; i < batchSize; i++ {
					_, k := gen.Next() // keys only; the kind is the batch's
					ks[i], us[i], ops[i] = k, keys.Map(k), kind
				}
			}
			for r := 0; r < rounds; r++ {
				fill(workload.OpInsert)
				tape.RecordGroup(ops, ks, out, func() { ba.InsertBatch(us, out, errs) })
				fill(workload.OpDelete)
				tape.RecordGroup(ops, ks, out, func() { ba.DeleteBatch(us, out) })
				fill(workload.OpSearch)
				tape.RecordGroup(ops, ks, out, func() { ba.LookupBatch(us, out) })
				for i := 0; i < singles; i++ {
					op, k := gen.Next()
					u := keys.Map(k)
					switch op {
					case workload.OpSearch:
						tape.Record(op, k, func() bool { return ba.Search(u) })
					case workload.OpInsert:
						tape.Record(op, k, func() bool { return ba.Insert(u) })
					default:
						tape.Record(op, k, func() bool { return ba.Delete(u) })
					}
				}
			}
		}(w)
	}
	wg.Wait()
	events := rec.Events()
	if err := check.Linearizable(events, nil); err != nil {
		return fmt.Errorf("%v (%s)", err, check.Stats(events))
	}
	return nil
}

func linearizabilityRound(target harness.Target, workers int, seed uint64, reg *metrics.Registry) error {
	const (
		opsEach  = 400
		keySpace = 96
	)
	inst := target.New(harness.Config{ArenaCapacity: 1 << 20, Metrics: reg})
	rec := trace.NewRecorder(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := inst.NewAccessor()
			tape := rec.Worker(w)
			gen := workload.NewGenerator(workload.Mix{Name: "hot", Search: 20, Insert: 40, Delete_: 40},
				keySpace, seed*31+uint64(w)+1)
			for i := 0; i < opsEach; i++ {
				op, k := gen.Next()
				u := keys.Map(k)
				switch op {
				case workload.OpSearch:
					tape.Record(op, k, func() bool { return acc.Search(u) })
				case workload.OpInsert:
					tape.Record(op, k, func() bool { return acc.Insert(u) })
				default:
					tape.Record(op, k, func() bool { return acc.Delete(u) })
				}
			}
		}(w)
	}
	wg.Wait()
	events := rec.Events()
	if err := check.Linearizable(events, nil); err != nil {
		return fmt.Errorf("%v (%s)", err, check.Stats(events))
	}
	return nil
}
