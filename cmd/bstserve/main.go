// bstserve serves one lock-free BST over TCP (the internal/wire binary
// protocol) behind the full robustness stack of internal/server: bounded
// in-flight admission with explicit load shedding, per-request deadlines,
// fail-soft capacity errors, panic isolation, slow-loris defense, and
// graceful drain on SIGTERM/SIGINT — stop accepting, finish every request
// already received, fold per-connection accessor stats, close the
// reclamation domain, then exit 0.
//
// A side HTTP listener (-admin) serves /healthz, /readyz, /metrics
// (Prometheus) and /debug/vars, deliberately separate from the data port so
// probes and scrapes bypass admission control.
//
// With -data <dir> the store becomes durable: mutations are written to a
// group-commit WAL before they are acknowledged (-sync picks the policy),
// epoch-consistent snapshots bound recovery time (-checkpoint-every, plus
// POST /checkpoint on demand), startup replays snapshot + WAL tail, and the
// SIGTERM drain finishes with a final fsync + checkpoint.
//
// With -listen-repl the node serves the replication protocol to followers,
// and with -replica-of it runs as a follower of another bstserve: the
// leader streams committed WAL frames, the follower catches up (snapshot
// bulk-load plus WAL-tail replay) and then rides the live tail, refusing
// writes with a redirect to the leader while serving reads (including
// ReadAtLeast read-your-writes). POST /promote on the admin port flips a
// follower to leader during operator-driven failover. -repl-sync makes the
// leader semi-synchronous: a mutation is not acknowledged until a follower
// ack covers it. Replication requires -data.
//
// With -shards N the key space is partitioned across N independent trees
// (own arena, epoch domain, and — with -data — WAL lane and snapshot chain
// per shard), removing the shared allocation and group-commit bottlenecks
// under write-heavy load. Sharding is incompatible with replication, which
// streams a single dense WAL sequence.
//
// With -smoke the binary instead runs a deterministic in-process
// self-test — one shed response, one capacity response, one graceful
// drain, then a batch/pipelining stage that requires the pipelined client
// to beat request-per-round-trip throughput — and exits 0/1.
// `make serve-smoke` wires it into CI.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	bst "repro"
	"repro/internal/client"
	"repro/internal/durable"
	"repro/internal/failpoint"
	"repro/internal/logx"
	"repro/internal/metrics"
	"repro/internal/repl"
	"repro/internal/rtrace"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9044", "data listener address")
		adminAddr    = flag.String("admin", "127.0.0.1:9045", "admin HTTP address (/healthz /readyz /metrics); empty disables")
		capacity     = flag.Int("capacity", 1<<20, "arena bound in nodes (0 = unbounded)")
		reclaim      = flag.Bool("reclaim", true, "enable epoch-based node reclamation")
		shards       = flag.Int("shards", 1, "partition the key space across this many independent trees (rounded up to a power of two; incompatible with replication)")
		orderStats   = flag.Bool("order-stats", false, "maintain the order-statistics index so clients can issue rank/select/count/sum aggregate queries (OpAggregate); without it those queries answer no-index")
		maxInFlight  = flag.Int("max-inflight", 256, "admission cap: concurrently executing requests before shedding")
		deadline     = flag.Duration("deadline", time.Second, "default per-request deadline for requests that carry none")
		readTimeout  = flag.Duration("read-timeout", 60*time.Second, "per-frame read deadline (idle + slow-loris bound)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a signal-triggered drain may wait for in-flight requests")
		smoke        = flag.Bool("smoke", false, "run the in-process serve smoke test and exit")

		dataDir      = flag.String("data", "", "durability directory (WAL + snapshots); empty = in-memory only")
		syncPolicy   = flag.String("sync", "fsync", "WAL sync policy with -data: fsync | interval | none")
		syncInterval = flag.Duration("sync-interval", 5*time.Millisecond, "background fsync cadence for -sync interval")
		ckptEvery    = flag.Int("checkpoint-every", 1_000_000, "auto-checkpoint after this many logged mutations (0 disables)")

		listenRepl = flag.String("listen-repl", "", "replication listener address (serves WAL streaming to followers); empty disables")
		replicaOf  = flag.String("replica-of", "", "run as a follower of this leader replication address (requires -data)")
		advertise  = flag.String("advertise", "", "data address advertised to the cluster for client redirects (default -addr)")
		replSync   = flag.Bool("repl-sync", false, "semi-synchronous: acknowledge mutations only after a follower ack covers them")

		peers        = flag.String("peers", "", "comma-separated replication addresses of the other cluster members (election probes and leader watch)")
		priority     = flag.Int("priority", 0, "election priority: higher wins; ties break on applied seq, then advertise address")
		autoFailover = flag.Bool("auto-failover", false, "self-promote when the leader's heartbeat lease expires (deterministic rank, no quorum — see DESIGN)")
		holdOff      = flag.Duration("holdoff", 0, "per-rank election hold-off step (default 2x heartbeat)")

		traceSample = flag.Int("trace-sample", 0, "flight recorder: self-sample every Nth request per connection (0 disables tracing)")
		slowOp      = flag.Duration("slow-op", 20*time.Millisecond, "slow-op log threshold for sampled requests (with -trace-sample)")
		debugAddr   = flag.String("debug-addr", "", "net/http/pprof listener (profiling); empty disables — exposes heap and execution internals, never bind publicly")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "bstserve: SMOKE FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("bstserve: smoke OK — shed, capacity, drain, batch and pipeline paths all exercised")
		return
	}

	opts := []bst.Option{}
	if *capacity > 0 {
		opts = append(opts, bst.WithCapacity(*capacity))
	}
	if *reclaim {
		opts = append(opts, bst.WithReclamation())
	}
	if *orderStats {
		opts = append(opts, bst.WithOrderStatistics())
	}
	if *shards > 1 {
		// Replication ships one dense WAL sequence; a sharded store has one
		// lane per shard, so the two are mutually exclusive (see DESIGN §14).
		if *listenRepl != "" || *replicaOf != "" {
			fmt.Fprintln(os.Stderr, "bstserve: -shards > 1 is incompatible with -listen-repl/-replica-of (replication streams a single WAL lane)")
			os.Exit(2)
		}
		opts = append(opts, bst.WithShards(*shards))
	}
	logger := logx.New(os.Stderr, *addr)
	// The storage layers keep printf-style hooks; bridge them here so the
	// whole process logs through one handler.
	logf := logx.Printf(logger)

	// The flight recorder is shared by every layer that records spans:
	// server (admission/tree/WAL/repl waits), replication (cross-node
	// linkage), and the admin endpoints that export it.
	var rec *rtrace.Recorder
	if *traceSample > 0 {
		rec = rtrace.New(rtrace.Options{SampleEvery: *traceSample, SlowOp: *slowOp})
	}

	cfg := server.Config{
		MaxInFlight:     *maxInFlight,
		DefaultDeadline: *deadline,
		ReadTimeout:     *readTimeout,
		Logger:          logger,
		Trace:           rec,
	}

	// With -data the server fronts a durable.Tree: every mutation is
	// WAL-logged before it is acknowledged, and startup replays snapshot +
	// log tail. Without it the tree is memory-only, exactly as before.
	var dur *durable.Tree
	var tree *bst.Tree
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*syncPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bstserve:", err)
			os.Exit(2)
		}
		start := time.Now()
		dur, err = durable.Open(*dataDir, durable.Options{
			Sync:            policy,
			SyncInterval:    *syncInterval,
			CheckpointEvery: *ckptEvery,
			TreeOptions:     opts,
			Logf:            logf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bstserve: recovery failed:", err)
			os.Exit(2)
		}
		rs := dur.RecoveryStats()
		fmt.Printf("bstserve: recovered %s — %d snapshot keys + %d WAL ops replayed in %v (snapshot %q, %d corrupt skipped)\n",
			*dataDir, rs.SnapshotKeys, rs.ReplayedOps, time.Since(start).Round(time.Millisecond),
			rs.SnapshotPath, rs.CorruptSnapshots)
		reg := metrics.NewRegistry(0)
		reg.AddHook(dur.MetricsHook)
		if rec != nil {
			reg.AddHook(rec.MetricsHook)
		}
		cfg.Store = dur
		cfg.Metrics = reg
	} else {
		tree = bst.New(opts...)
		cfg.Tree = tree
		if rec != nil {
			// Memory-only servers still export trace phase aggregates.
			reg := metrics.NewRegistry(0)
			reg.AddHook(rec.MetricsHook)
			cfg.Metrics = reg
		}
	}

	// Replication rides the durable store's WAL: a node with a replication
	// listener streams committed frames to followers; a node with
	// -replica-of pulls them and refuses direct writes.
	var node *repl.Node
	if *listenRepl != "" || *replicaOf != "" {
		if dur == nil {
			fmt.Fprintln(os.Stderr, "bstserve: replication requires -data (the WAL is the replication stream)")
			os.Exit(2)
		}
		adv := *advertise
		if adv == "" {
			adv = *addr
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if *autoFailover && len(peerList) == 0 && *replicaOf != "" {
			fmt.Fprintln(os.Stderr, "bstserve: -auto-failover on a follower needs -peers (who to probe and rank against)")
			os.Exit(2)
		}
		var err error
		node, err = repl.Start(repl.Config{
			Store:        dur,
			Advertise:    adv,
			ListenRepl:   *listenRepl,
			ReplicaOf:    *replicaOf,
			RequireAck:   *replSync,
			Priority:     int32(*priority),
			Peers:        peerList,
			AutoFailover: *autoFailover,
			HoldOff:      *holdOff,
			Trace:        rec,
			Logger:       logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bstserve: replication:", err)
			os.Exit(2)
		}
		cfg.Metrics.AddHook(node.MetricsHook)
		cfg.Cluster = node
	}

	srv := server.New(cfg)
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "bstserve:", err)
		os.Exit(2)
	}
	durDesc := "off"
	if dur != nil {
		durDesc = fmt.Sprintf("%s sync=%s checkpoint-every=%d", *dataDir, *syncPolicy, *ckptEvery)
	}
	fmt.Printf("bstserve: serving on %s (capacity=%d reclaim=%v shards=%d max-inflight=%d durability=%s)\n",
		srv.Addr(), *capacity, *reclaim, *shards, *maxInFlight, durDesc)
	if node != nil {
		role := "follower of " + *replicaOf
		if node.IsLeader() {
			role = "leader"
		}
		fmt.Printf("bstserve: cluster role=%s term=%d repl-listen=%s semi-sync=%v auto-failover=%v priority=%d\n",
			role, node.Term(), node.ReplAddr(), *replSync, *autoFailover, *priority)
	}

	// -debug-addr mounts net/http/pprof on its own listener, separate from
	// both the data plane and the admin surface: profiles reveal memory
	// contents and execution structure, so this port must stay loopback or
	// firewalled — it exists for incident debugging, not for dashboards.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bstserve:", err)
			os.Exit(2)
		}
		go (&http.Server{Handler: dmux, ReadHeaderTimeout: 5 * time.Second}).Serve(dln)
		fmt.Printf("bstserve: pprof on http://%s/debug/pprof/ (keep private)\n", dln.Addr())
	}

	var adminSrv *http.Server
	if *adminAddr != "" {
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bstserve:", err)
			os.Exit(2)
		}
		adminSrv = &http.Server{Handler: srv.AdminHandler(), ReadHeaderTimeout: 5 * time.Second}
		go adminSrv.Serve(ln)
		adminDesc := "/healthz /readyz /metrics"
		if rec != nil {
			adminDesc += " /debug/rtrace"
		}
		fmt.Printf("bstserve: admin on http://%s (%s)\n", ln.Addr(), adminDesc)
	}

	// Graceful drain on SIGTERM/SIGINT: readiness flips first (the admin
	// listener stays up so load balancers observe the drain), then the data
	// plane flushes, then the reclamation domain closes.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigc
	fmt.Fprintf(os.Stderr, "bstserve: %v — draining (up to %v)\n", sig, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err := srv.Shutdown(ctx)
	if adminSrv != nil {
		adminSrv.Close()
	}
	if node != nil {
		// Stop streaming/pulling before the final checkpoint: a follower
		// must not apply records into a store that is flushing to close.
		node.Close()
	}
	if dur != nil {
		// Final fsync + checkpoint: a clean shutdown leaves a data dir
		// that recovers with zero WAL replay.
		if cerr := dur.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "bstserve: durable close:", cerr)
			if err == nil {
				err = cerr
			}
		} else {
			fmt.Println("bstserve: final checkpoint written, WAL synced")
		}
	} else {
		tree.Close()
	}

	c := srv.Counters()
	fmt.Printf("bstserve: drained — %d requests served, %d shed, %d capacity errors, %d timeouts, %d panics, %d conns\n",
		c.Requests, c.Shed, c.CapacityErrs, c.Timeouts, c.Panics, c.ConnsAccepted)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bstserve: drain incomplete:", err)
		os.Exit(1)
	}
}

// runSmoke is the deterministic self-test behind `make serve-smoke`: a real
// server on a loopback port must (1) shed a request while its single
// in-flight slot is frozen, (2) push back with a capacity error when its
// 128-node arena fills and accept writes again after deletes, (3) drain
// gracefully with the frozen request completing and acknowledged, and
// (4) answer batch frames with correct per-op statuses and deliver at
// least 2× single-op throughput to a pipelined client on the same link.
func runSmoke() error {
	tree := bst.New(bst.WithCapacity(128), bst.WithReclamation())
	fp := failpoint.NewSet()
	srv := server.New(server.Config{Tree: tree, MaxInFlight: 1, Failpoints: fp})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	addr := srv.Addr().String()

	retrying, err := client.Dial(client.Config{Addr: addr, Seed: 1})
	if err != nil {
		return err
	}
	defer retrying.Close()
	oneShot, err := client.Dial(client.Config{Addr: addr, MaxAttempts: 1, Seed: 2})
	if err != nil {
		return err
	}
	defer oneShot.Close()
	ctx := context.Background()

	// 1. Shed: freeze the only admission slot, observe StatusOverloaded,
	// then release and confirm the frozen op was acknowledged truthfully.
	st := fp.Site(server.FPHandle)
	st.StallNext()
	frozen := make(chan error, 1)
	go func() {
		_, err := retrying.Insert(ctx, -1)
		frozen <- err
	}()
	if !st.WaitStalled(5 * time.Second) {
		return errors.New("insert never reached the handler failpoint")
	}
	if _, err := oneShot.Insert(ctx, -2); !errors.Is(err, client.ErrOverloaded) {
		return fmt.Errorf("probe during overload: err = %v, want ErrOverloaded", err)
	}
	st.Release()
	if err := <-frozen; err != nil {
		return fmt.Errorf("frozen insert: %v", err)
	}
	if !tree.Contains(-1) {
		return errors.New("acknowledged insert missing after stall release")
	}
	fmt.Println("bstserve: smoke 1/4 — load shed observed, frozen request completed")

	// 2. Capacity: fill the arena over the wire, verify the distinct wire
	// status, free half, verify the retrying client converges.
	var kept []int64
	for k := int64(0); ; k++ {
		ok, err := oneShot.Insert(ctx, k)
		if err != nil {
			if !errors.Is(err, bst.ErrCapacity) {
				return fmt.Errorf("fill: err = %v, want ErrCapacity", err)
			}
			break
		}
		if !ok {
			return fmt.Errorf("fill: Insert(%d) = false on a fresh key", k)
		}
		kept = append(kept, k)
		if k > 1<<20 {
			return errors.New("128-node arena accepted 1M inserts; bound not enforced")
		}
	}
	for _, k := range kept[:len(kept)/2] {
		if ok, err := retrying.Delete(ctx, k); err != nil || !ok {
			return fmt.Errorf("free: Delete(%d) = (%v, %v)", k, ok, err)
		}
	}
	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	ok, err := retrying.Insert(rctx, 1<<40)
	cancel()
	if err != nil || !ok {
		return fmt.Errorf("recovery insert = (%v, %v); client stats %+v", ok, err, retrying.Stats())
	}
	fmt.Println("bstserve: smoke 2/4 — capacity pushback on the wire, backoff converged after frees")

	// 3. Drain with one request in flight; it must complete and be acked.
	st.StallNext()
	frozen2 := make(chan error, 1)
	go func() {
		ok, err := retrying.Delete(ctx, 1<<40)
		if err == nil && !ok {
			err = errors.New("drain-straddling delete returned false on a present key")
		}
		frozen2 <- err
	}()
	if !st.WaitStalled(5 * time.Second) {
		return errors.New("delete never reached the handler failpoint")
	}
	drained := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Shutdown(dctx)
	}()
	time.Sleep(50 * time.Millisecond) // let the drain interrupt idle readers
	st.Release()
	if err := <-drained; err != nil {
		return fmt.Errorf("drain: %v", err)
	}
	if err := <-frozen2; err != nil {
		return fmt.Errorf("in-flight request during drain: %v", err)
	}
	if tree.Contains(1 << 40) {
		return errors.New("acknowledged delete not applied")
	}
	if err := tree.Close(); err != nil {
		return err
	}
	if err := tree.Validate(); err != nil {
		return fmt.Errorf("tree invalid after smoke: %v", err)
	}
	c := srv.Counters()
	if c.Shed == 0 || c.CapacityErrs == 0 || c.Drains != 1 || c.InFlight != 0 || c.OpenConns != 0 {
		return fmt.Errorf("smoke counters off: %+v", c)
	}
	fmt.Println("bstserve: smoke 3/4 — graceful drain completed in-flight work, domain closed")

	return smokeBatchPipeline()
}

// smokeBatchPipeline is smoke stage 4: a fresh server answers a mixed
// OpBatch frame with per-op statuses, then the same workload is driven
// twice — synchronous request-per-round-trip versus one pipelined
// connection — and the pipeline must win by at least 2× ops/sec.
func smokeBatchPipeline() error {
	tree := bst.New(bst.WithReclamation())
	srv := server.New(server.Config{Tree: tree})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	cl, err := client.Dial(client.Config{Addr: srv.Addr().String(), Seed: 3})
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx := context.Background()

	// One frame, mixed kinds, an out-of-range slot in the middle: each op
	// answers for itself.
	ops := []client.Op{
		client.InsertOp(1),
		client.InsertOp(2),
		client.InsertOp(bst.MaxKey + 1),
		client.LookupOp(1),
		client.DeleteOp(1),
		client.LookupOp(1),
	}
	res, err := cl.Do(ctx, ops)
	if err != nil {
		return fmt.Errorf("batch: %v", err)
	}
	wantOK := []bool{true, true, false, true, true, false}
	for i, r := range res {
		if i == 2 {
			if !errors.Is(r.Err, bst.ErrKeyOutOfRange) {
				return fmt.Errorf("batch op %d: err = %v, want ErrKeyOutOfRange", i, r.Err)
			}
			continue
		}
		if r.Err != nil || r.OK != wantOK[i] {
			return fmt.Errorf("batch op %d: = (%v, %v), want (%v, nil)", i, r.OK, r.Err, wantOK[i])
		}
	}

	// Throughput: N fresh-key inserts per phase, drawn from one shuffled
	// deterministic sequence — random insertion order keeps the external
	// tree near log depth, so both phases do identical work. (Ascending
	// keys would build an n-deep spine during the first phase and bill the
	// traversal cost to the second.)
	const n = 4000
	keys := make([]int64, 2*n)
	for i := range keys {
		keys[i] = int64(10_000 + i)
	}
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

	start := time.Now()
	for i := 0; i < n; i++ {
		if ok, err := cl.Insert(ctx, keys[i]); err != nil || !ok {
			return fmt.Errorf("sync insert %d: (%v, %v)", i, ok, err)
		}
	}
	syncDur := time.Since(start)

	p, err := cl.NewPipeline(ctx)
	if err != nil {
		return err
	}
	futs := make([]*client.Future, n)
	start = time.Now()
	for i := range futs {
		if futs[i], err = p.Submit(ctx, client.InsertOp(keys[n+i])); err != nil {
			return fmt.Errorf("pipeline submit %d: %v", i, err)
		}
	}
	for i, f := range futs {
		if ok, err := f.Wait(ctx); err != nil || !ok {
			return fmt.Errorf("pipeline insert %d: (%v, %v)", i, ok, err)
		}
	}
	pipeDur := time.Since(start)
	p.Close()

	speedup := float64(syncDur) / float64(pipeDur)
	if speedup < 2 {
		return fmt.Errorf("pipelined throughput only %.2fx of round-trip (sync %v, pipelined %v for %d ops); want >= 2x",
			speedup, syncDur, pipeDur, n)
	}
	if got := tree.Len(); got != 1+n+n { // key 2 + both insert ranges
		return fmt.Errorf("tree Len = %d after throughput runs, want %d", got, 1+n+n)
	}
	if err := tree.Validate(); err != nil {
		return fmt.Errorf("tree invalid after batch smoke: %v", err)
	}
	if c := srv.Counters(); c.BatchOps != uint64(len(ops)) {
		return fmt.Errorf("BatchOps = %d, want %d", c.BatchOps, len(ops))
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("batch-stage drain: %v", err)
	}
	tree.Close()
	fmt.Printf("bstserve: smoke 4/4 — batch per-op statuses OK, pipelined client %.1fx over round-trip\n", speedup)
	return nil
}
