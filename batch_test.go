package bst_test

import (
	"errors"
	"math/rand"
	"testing"

	bst "repro"
)

// allResults runs a batch op and returns out for brevity.
func insertBatch(s interface {
	InsertBatch([]int64, []bst.OpResult)
}, ks []int64) []bst.OpResult {
	out := make([]bst.OpResult, len(ks))
	s.InsertBatch(ks, out)
	return out
}

func TestBatchAllAlgorithms(t *testing.T) {
	for _, algo := range bst.Algorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			s := bst.New(bst.WithAlgorithm(algo))
			defer s.Close()

			ks := []int64{5, 1, 9, 5, -3, 1000, 7}
			out := insertBatch(s, ks)
			// 5 appears twice: exactly one of the two slots inserted it.
			fives := 0
			for i, r := range out {
				if r.Err != nil {
					t.Fatalf("insert %d: %v", ks[i], r.Err)
				}
				if ks[i] == 5 && r.OK {
					fives++
				}
			}
			if fives != 1 {
				t.Fatalf("duplicate key inserted %d times, want 1", fives)
			}

			got := make([]bst.OpResult, len(ks))
			s.ContainsBatch(ks, got)
			for i, r := range got {
				if !r.OK || r.Err != nil {
					t.Fatalf("contains %d = (%v, %v), want (true, nil)", ks[i], r.OK, r.Err)
				}
			}
			if s.Contains(2) {
				t.Fatal("contains(2) on tree without 2")
			}

			del := []int64{5, 2, -3}
			dout := make([]bst.OpResult, len(del))
			s.DeleteBatch(del, dout)
			if !dout[0].OK || dout[1].OK || !dout[2].OK {
				t.Fatalf("delete results = %+v", dout)
			}
			if s.Contains(5) || s.Contains(-3) || !s.Contains(9) {
				t.Fatal("tree contents wrong after DeleteBatch")
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}

			// Same contract through an Accessor.
			a := s.NewAccessor()
			defer a.Close()
			aout := make([]bst.OpResult, 2)
			a.InsertBatch([]int64{5, 42}, aout)
			if !aout[0].OK || !aout[1].OK {
				t.Fatalf("accessor InsertBatch = %+v", aout)
			}
			a.ContainsBatch([]int64{5, 42}, aout)
			if !aout[0].OK || !aout[1].OK {
				t.Fatalf("accessor ContainsBatch = %+v", aout)
			}
			a.DeleteBatch([]int64{42, 41}, aout)
			if !aout[0].OK || aout[1].OK {
				t.Fatalf("accessor DeleteBatch = %+v", aout)
			}
		})
	}
}

// TestBatchOutOfRangePerOp: a key above MaxKey must fail only its own
// slot — with the ErrKeyOutOfRange sentinel — while the rest of the batch
// executes. Single-key methods panic on the same input; batches must not.
func TestBatchOutOfRangePerOp(t *testing.T) {
	for _, algo := range []bst.Algorithm{bst.NatarajanMittal, bst.CoarseLock} {
		t.Run(algo.String(), func(t *testing.T) {
			s := bst.New(bst.WithAlgorithm(algo))
			defer s.Close()
			ks := []int64{1, bst.MaxKey + 1, 3}
			out := insertBatch(s, ks)
			if !out[0].OK || !out[2].OK {
				t.Fatalf("valid slots failed: %+v", out)
			}
			if out[1].OK || !errors.Is(out[1].Err, bst.ErrKeyOutOfRange) {
				t.Fatalf("out-of-range slot = %+v, want ErrKeyOutOfRange", out[1])
			}
			s.ContainsBatch(ks, out)
			if !out[0].OK || !errors.Is(out[1].Err, bst.ErrKeyOutOfRange) || !out[2].OK {
				t.Fatalf("ContainsBatch = %+v", out)
			}
			s.DeleteBatch(ks, out)
			if !out[0].OK || !errors.Is(out[1].Err, bst.ErrKeyOutOfRange) || !out[2].OK {
				t.Fatalf("DeleteBatch = %+v", out)
			}
		})
	}
}

// TestBatchCapacityPerOp: on a capacity-bounded tree, ErrCapacity lands in
// the failing slots (sentinel identity intact) and the tree stays valid.
func TestBatchCapacityPerOp(t *testing.T) {
	s := bst.New(bst.WithCapacity(64))
	defer s.Close()
	ks := make([]int64, 64)
	for i := range ks {
		ks[i] = int64(i)
	}
	out := insertBatch(s, ks)
	okN, capN := 0, 0
	for i, r := range out {
		switch {
		case r.Err == nil && r.OK:
			okN++
		case errors.Is(r.Err, bst.ErrCapacity):
			if r.OK {
				t.Fatalf("slot %d: OK with ErrCapacity", i)
			}
			capN++
		default:
			t.Fatalf("slot %d: unexpected result %+v", i, r)
		}
	}
	if okN == 0 || capN == 0 {
		t.Fatalf("want a mix of successes and capacity failures, got ok=%d cap=%d", okN, capN)
	}
	// Per-op results must agree with the tree.
	chk := make([]bst.OpResult, len(ks))
	s.ContainsBatch(ks, chk)
	for i, r := range chk {
		if r.OK != out[i].OK {
			t.Fatalf("key %d: contains=%v but insert reported %+v", ks[i], r.OK, out[i])
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate after capacity exhaustion: %v", err)
	}
}

// TestBatchModelPublic cross-checks the public batch API against a map
// model through the default algorithm's accessor path.
func TestBatchModelPublic(t *testing.T) {
	s := bst.New(bst.WithReclamation())
	defer s.Close()
	a := s.NewAccessor()
	defer a.Close()
	rng := rand.New(rand.NewSource(7))
	model := map[int64]bool{}
	out := make([]bst.OpResult, 32)
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(32)
		ks := make([]int64, n)
		for i := range ks {
			ks[i] = int64(rng.Intn(300))
		}
		switch round % 3 {
		case 0:
			a.InsertBatch(ks, out[:n])
			for _, k := range ks {
				model[k] = true
			}
		case 1:
			a.DeleteBatch(ks, out[:n])
			for _, k := range ks {
				delete(model, k)
			}
		case 2:
			a.ContainsBatch(ks, out[:n])
			for i, k := range ks {
				if out[i].OK != model[k] {
					t.Fatalf("round %d: contains(%d) = %v, model %v", round, k, out[i].OK, model[k])
				}
			}
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
}

func TestMapBatch(t *testing.T) {
	m := bst.NewMap[string]()
	ks := []int64{1, 2, 3}
	out := make([]bst.OpResult, 3)
	m.PutBatch(ks, []string{"a", "b", "c"}, out)
	for i, r := range out {
		if r.OK || r.Err != nil {
			t.Fatalf("fresh PutBatch slot %d = %+v", i, r)
		}
	}
	m.PutBatch([]int64{2, bst.MaxKey + 1}, []string{"B", "x"}, out[:2])
	if !out[0].OK || !errors.Is(out[1].Err, bst.ErrKeyOutOfRange) {
		t.Fatalf("PutBatch replace/out-of-range = %+v", out[:2])
	}
	if v, _ := m.Get(2); v != "B" {
		t.Fatalf("Get(2) = %q, want B", v)
	}
	m.ContainsBatch([]int64{1, 9}, out[:2])
	if !out[0].OK || out[1].OK {
		t.Fatalf("ContainsBatch = %+v", out[:2])
	}
	m.DeleteBatch([]int64{1, 9}, out[:2])
	if !out[0].OK || out[1].OK {
		t.Fatalf("DeleteBatch = %+v", out[:2])
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}
