package bst_test

import (
	"errors"
	"testing"

	bst "repro"
)

func TestTryInsertBasics(t *testing.T) {
	s := bst.New()
	ok, err := s.TryInsert(42)
	if err != nil || !ok {
		t.Fatalf("TryInsert(42) = (%v, %v), want (true, nil)", ok, err)
	}
	ok, err = s.TryInsert(42)
	if err != nil || ok {
		t.Fatalf("duplicate TryInsert(42) = (%v, %v), want (false, nil)", ok, err)
	}
	if !s.Contains(42) {
		t.Fatal("key missing after TryInsert")
	}
}

func TestTryInsertKeyOutOfRange(t *testing.T) {
	s := bst.New()
	if _, err := s.TryInsert(bst.MaxKey + 1); !errors.Is(err, bst.ErrKeyOutOfRange) {
		t.Fatalf("TryInsert(MaxKey+1) err = %v, want ErrKeyOutOfRange", err)
	}
	// The panicking path is unchanged.
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(MaxKey+1) did not panic")
		}
	}()
	s.Insert(bst.MaxKey + 1)
}

func TestTryInsertCapacityExhaustion(t *testing.T) {
	s := bst.New(bst.WithCapacity(64))
	var kept []int64
	var capErr error
	for k := int64(0); k < 1000; k++ {
		ok, err := s.TryInsert(k)
		if err != nil {
			capErr = err
			break
		}
		if !ok {
			t.Fatalf("TryInsert(%d) = false on a fresh key", k)
		}
		kept = append(kept, k)
	}
	if !errors.Is(capErr, bst.ErrCapacity) {
		t.Fatalf("bounded tree never returned ErrCapacity (err=%v)", capErr)
	}

	// Exhaustion degrades gracefully: reads, deletes and validation all
	// keep working on the full tree.
	for _, k := range kept {
		if !s.Contains(k) {
			t.Fatalf("key %d lost after exhaustion", k)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("tree invalid after exhaustion: %v", err)
	}
	if !s.Delete(kept[0]) {
		t.Fatal("Delete failed on an exhausted tree")
	}

	h := s.Health()
	if h.Capacity != 64 || h.NodesAllocated == 0 {
		t.Fatalf("implausible health after exhaustion: %+v", h)
	}
	if st := s.Stats(); st.NodesAllocated != h.NodesAllocated {
		t.Fatalf("Stats/Health disagree: %+v vs %+v", st, h)
	}
}

func TestCapacityRecoveryAfterReclamation(t *testing.T) {
	s := bst.New(bst.WithCapacity(128), bst.WithReclamation())
	a := s.NewAccessor()
	var kept []int64
	for k := int64(0); ; k++ {
		ok, err := a.TryInsert(k)
		if err != nil {
			if !errors.Is(err, bst.ErrCapacity) {
				t.Fatalf("TryInsert err = %v", err)
			}
			break
		}
		if !ok {
			t.Fatalf("TryInsert(%d) = false on a fresh key", k)
		}
		kept = append(kept, k)
		if k > 1000 {
			t.Fatal("tree never exhausted")
		}
	}

	// Delete half, then insert again: the retry path flushes epochs until
	// the freed nodes recycle.
	for _, k := range kept[:len(kept)/2] {
		if !a.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	ok, err := a.TryInsert(1 << 40)
	if err != nil || !ok {
		t.Fatalf("TryInsert after frees = (%v, %v), want (true, nil)", ok, err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if !h.ReclaimEnabled || h.NodesRecycled == 0 {
		t.Fatalf("recovery left no reclamation trace: %+v", h)
	}
}

func TestTryInsertUnboundedAlgorithms(t *testing.T) {
	for _, algo := range bst.Algorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			s := bst.New(bst.WithAlgorithm(algo))
			ok, err := s.TryInsert(7)
			if err != nil || !ok {
				t.Fatalf("TryInsert = (%v, %v), want (true, nil)", ok, err)
			}
			a := s.NewAccessor()
			ok, err = a.TryInsert(8)
			if err != nil || !ok {
				t.Fatalf("accessor TryInsert = (%v, %v), want (true, nil)", ok, err)
			}
			if _, err := a.TryInsert(bst.MaxKey + 1); !errors.Is(err, bst.ErrKeyOutOfRange) {
				t.Fatalf("accessor TryInsert(MaxKey+1) err = %v", err)
			}
			if !s.Contains(7) || !s.Contains(8) {
				t.Fatal("keys missing after TryInsert")
			}
			h := s.Health()
			if h.Algorithm != algo {
				t.Fatalf("Health.Algorithm = %v, want %v", h.Algorithm, algo)
			}
		})
	}
}
