package bst_test

import (
	"errors"
	"sync"
	"testing"

	bst "repro"
)

// These tests pin down error propagation through every public wrapper
// layer: the sentinel errors produced deep in the arena/key layers must
// survive — identity intact for errors.Is — through Accessor.TryInsert,
// the pooled-handle Tree.TryInsert path, and Map.TryPut.

func TestTreeTryInsertCapacityThroughPooledPath(t *testing.T) {
	// Tree-level TryInsert runs on sync.Pool-managed handles; the
	// capacity sentinel must surface through that wrapper identically to
	// the accessor path, including under concurrency.
	tr := bst.New(bst.WithCapacity(128), bst.WithReclamation())
	var kept []int64
	for k := int64(0); ; k++ {
		ok, err := tr.TryInsert(k)
		if err != nil {
			if !errors.Is(err, bst.ErrCapacity) {
				t.Fatalf("pooled TryInsert err = %v, want ErrCapacity", err)
			}
			break
		}
		if !ok {
			t.Fatalf("TryInsert(%d) = false on a fresh key", k)
		}
		kept = append(kept, k)
		if k > 1<<20 {
			t.Fatal("bounded arena accepted 1M keys")
		}
	}

	// Concurrent pooled-path writers at the bound: every error is the
	// capacity sentinel, never a panic, never a different error.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 200; i++ {
				if _, err := tr.TryInsert(int64(1<<30) + int64(w)*1000 + i); err != nil && !errors.Is(err, bst.ErrCapacity) {
					t.Errorf("concurrent pooled TryInsert err = %v, want ErrCapacity", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Recovery after frees, still through the pooled path.
	for _, k := range kept[:len(kept)/2] {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) = false", k)
		}
	}
	recovered := false
	for i := 0; i < 64 && !recovered; i++ {
		ok, err := tr.TryInsert(1 << 40)
		if err == nil {
			recovered = ok
		} else if !errors.Is(err, bst.ErrCapacity) {
			t.Fatalf("recovery TryInsert err = %v", err)
		}
	}
	if !recovered {
		t.Fatal("pooled TryInsert never recovered after half the keys were freed")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorTryInsertErrorIdentity(t *testing.T) {
	tr := bst.New(bst.WithCapacity(128), bst.WithReclamation())
	acc := tr.NewAccessor()
	defer acc.Close()

	// Key-range violations are detected before touching the tree and
	// carry the exact sentinel.
	if _, err := acc.TryInsert(bst.MaxKey + 1); !errors.Is(err, bst.ErrKeyOutOfRange) {
		t.Fatalf("TryInsert(MaxKey+1) err = %v, want ErrKeyOutOfRange", err)
	}
	// The two sentinels are distinct: a range error is never a capacity
	// error and vice versa.
	if _, err := acc.TryInsert(bst.MaxKey + 1); errors.Is(err, bst.ErrCapacity) {
		t.Fatalf("range error satisfied errors.Is(ErrCapacity): %v", err)
	}

	var capErr error
	for k := int64(0); ; k++ {
		if _, err := acc.TryInsert(k); err != nil {
			capErr = err
			break
		}
		if k > 1<<20 {
			t.Fatal("bounded arena accepted 1M keys")
		}
	}
	if !errors.Is(capErr, bst.ErrCapacity) {
		t.Fatalf("accessor TryInsert err = %v, want ErrCapacity", capErr)
	}
	if errors.Is(capErr, bst.ErrKeyOutOfRange) {
		t.Fatalf("capacity error satisfied errors.Is(ErrKeyOutOfRange): %v", capErr)
	}
	// MaxKey itself is storable through the fail-soft path (after room is
	// made): boundary, not error.
	acc.Delete(0)
	acc.Delete(1)
	ok, err := acc.TryInsert(bst.MaxKey)
	for i := 0; i < 64 && errors.Is(err, bst.ErrCapacity); i++ {
		ok, err = acc.TryInsert(bst.MaxKey)
	}
	if err != nil || !ok {
		t.Fatalf("TryInsert(MaxKey) after frees = (%v, %v), want (true, nil)", ok, err)
	}
}

func TestMapTryPut(t *testing.T) {
	m := bst.NewMap[string]()

	replaced, err := m.TryPut(7, "a")
	if err != nil || replaced {
		t.Fatalf("TryPut fresh = (%v, %v), want (false, nil)", replaced, err)
	}
	replaced, err = m.TryPut(7, "b")
	if err != nil || !replaced {
		t.Fatalf("TryPut existing = (%v, %v), want (true, nil)", replaced, err)
	}
	if v, ok := m.Get(7); !ok || v != "b" {
		t.Fatalf("Get(7) = (%q, %v) after TryPut", v, ok)
	}

	// Out-of-range keys error instead of panicking (Put would panic).
	if _, err := m.TryPut(bst.MaxKey+1, "x"); !errors.Is(err, bst.ErrKeyOutOfRange) {
		t.Fatalf("TryPut(MaxKey+1) err = %v, want ErrKeyOutOfRange", err)
	}
	if m.Len() != 1 {
		t.Fatalf("failed TryPut changed the map: Len = %d, want 1", m.Len())
	}
	// Negative keys and MaxKey are in range.
	if _, err := m.TryPut(-42, "neg"); err != nil {
		t.Fatalf("TryPut(-42) err = %v", err)
	}
	if _, err := m.TryPut(bst.MaxKey, "max"); err != nil {
		t.Fatalf("TryPut(MaxKey) err = %v", err)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
}

func TestAccessorCloseIdempotent(t *testing.T) {
	tr := bst.New(bst.WithCapacity(1<<12), bst.WithReclamation())
	acc := tr.NewAccessor()
	if !acc.Insert(1) {
		t.Fatal("Insert(1) = false")
	}
	if err := acc.Close(); err != nil {
		t.Fatal(err)
	}
	// The tree remains fully usable through other paths after one
	// accessor closes.
	if !tr.Contains(1) {
		t.Fatal("key lost after accessor Close")
	}
	acc2 := tr.NewAccessor()
	if !acc2.Insert(2) {
		t.Fatal("new accessor Insert failed")
	}
	if err := acc2.Close(); err != nil {
		t.Fatal(err)
	}

	// Tree.Close after all accessors: epoch slots fully retired, repeat
	// Close harmless.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if h := tr.Health(); h.EpochSlots != 0 {
		t.Fatalf("EpochSlots = %d after Tree.Close, want 0", h.EpochSlots)
	}
}

func TestCloseNoopForGCBackedAlgorithms(t *testing.T) {
	for _, algo := range []bst.Algorithm{bst.NatarajanMittalBoxed, bst.EllenEtAl, bst.CoarseLock} {
		tr := bst.New(bst.WithAlgorithm(algo))
		acc := tr.NewAccessor()
		acc.Insert(1)
		if err := acc.Close(); err != nil {
			t.Fatalf("%v accessor Close: %v", algo, err)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("%v tree Close: %v", algo, err)
		}
		if !tr.Contains(1) {
			t.Fatalf("%v: Close disturbed the tree", algo)
		}
	}
}

func TestScanConcurrentWithWriters(t *testing.T) {
	// Scan must be safe (and sane) with reclamation recycling nodes under
	// it: stable keys always appear, in order, exactly once.
	tr := bst.New(bst.WithCapacity(1<<14), bst.WithReclamation())
	for k := int64(0); k < 512; k += 2 {
		tr.Insert(k) // stable evens
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := tr.NewAccessor()
			defer acc.Close()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := int64(1) + 2*((int64(w)*1000+i)%512) // odd churn keys
				acc.Insert(k)
				acc.Delete(k)
			}
		}(w)
	}
	for iter := 0; iter < 50; iter++ {
		var got []int64
		tr.Scan(0, 511, func(k int64) bool {
			got = append(got, k)
			return true
		})
		seen := make(map[int64]bool, len(got))
		prev := int64(-1)
		evens := 0
		for _, k := range got {
			if k <= prev {
				t.Fatalf("Scan out of order: %d after %d", k, prev)
			}
			if seen[k] {
				t.Fatalf("Scan visited %d twice", k)
			}
			seen[k] = true
			prev = k
			if k%2 == 0 {
				evens++
			}
		}
		if evens != 256 {
			t.Fatalf("Scan saw %d stable even keys, want 256", evens)
		}
	}
	close(stop)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScanBoundsClamped(t *testing.T) {
	tr := bst.New()
	for _, k := range []int64{-3, 0, 5, bst.MaxKey} {
		tr.Insert(k)
	}
	var got []int64
	// A hi above MaxKey clamps rather than panics; an inverted range is
	// empty.
	tr.Scan(-10, bst.MaxKey+1, func(k int64) bool { got = append(got, k); return true })
	if len(got) != 4 || got[0] != -3 || got[3] != bst.MaxKey {
		t.Fatalf("clamped Scan = %v", got)
	}
	n := 0
	tr.Scan(10, -10, func(int64) bool { n++; return true })
	if n != 0 {
		t.Fatalf("inverted Scan visited %d keys", n)
	}
	// Early stop.
	got = got[:0]
	tr.Scan(-10, bst.MaxKey, func(k int64) bool { got = append(got, k); return len(got) < 2 })
	if len(got) != 2 {
		t.Fatalf("early-stop Scan = %v", got)
	}
}
