package bst_test

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"

	bst "repro"
)

func TestShardedBasicOps(t *testing.T) {
	s := bst.New(bst.WithShards(4), bst.WithShardRange(0, 1<<20), bst.WithReclamation())
	defer s.Close()
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d", s.Shards())
	}
	rng := rand.New(rand.NewSource(1))
	want := map[int64]bool{}
	for i := 0; i < 5000; i++ {
		k := rng.Int63n(1 << 21) // half the keys clamp into the edge shard
		if rng.Intn(4) == 0 {
			s.Delete(k)
			delete(want, k)
		} else {
			s.Insert(k)
			want[k] = true
		}
	}
	for k := range want {
		if !s.Contains(k) {
			t.Fatalf("key %d missing", k)
		}
	}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedRoundsUp(t *testing.T) {
	s := bst.New(bst.WithShards(3))
	defer s.Close()
	if s.Shards() != 4 {
		t.Fatalf("Shards(3) should round to 4, got %d", s.Shards())
	}
}

func TestShardKeyRangeCoversSpace(t *testing.T) {
	s := bst.New(bst.WithShards(8), bst.WithShardRange(0, 1<<30))
	defer s.Close()
	lo0, _ := s.ShardKeyRange(0)
	if lo0 != -1<<63 {
		t.Fatalf("shard 0 must start at MinInt64, got %d", lo0)
	}
	_, hiN := s.ShardKeyRange(s.Shards() - 1)
	if hiN != bst.MaxKey {
		t.Fatalf("last shard must end at MaxKey, got %d", hiN)
	}
	for i := 0; i < s.Shards(); i++ {
		lo, hi := s.ShardKeyRange(i)
		if s.ShardOf(lo) != i || s.ShardOf(hi) != i {
			t.Fatalf("shard %d bounds [%d,%d] do not route home (%d, %d)",
				i, lo, hi, s.ShardOf(lo), s.ShardOf(hi))
		}
		if i > 0 {
			_, prevHi := s.ShardKeyRange(i - 1)
			if lo != prevHi+1 {
				t.Fatalf("gap between shard %d and %d", i-1, i)
			}
		}
	}
}

func TestUnshardedShardAccessors(t *testing.T) {
	s := bst.New()
	defer s.Close()
	if s.Shards() != 1 || s.ShardOf(42) != 0 {
		t.Fatal("unsharded tree must report one shard")
	}
	lo, hi := s.ShardKeyRange(0)
	if lo != -1<<63 || hi != bst.MaxKey {
		t.Fatalf("unsharded range [%d,%d]", lo, hi)
	}
}

func TestShardedScanMergedSorted(t *testing.T) {
	s := bst.New(bst.WithShards(4), bst.WithShardRange(0, 99999))
	defer s.Close()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		s.Insert(rng.Int63n(100000))
	}
	var got []int64
	s.Scan(250, 90000, func(k int64) bool { got = append(got, k); return true })
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("sharded Scan stream not sorted")
	}
	for _, k := range got {
		if k < 250 || k > 90000 {
			t.Fatalf("scan leaked out-of-range key %d", k)
		}
	}
	// Early termination across shard boundary.
	n := 0
	s.Scan(0, 99999, func(int64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early-stop scan yielded %d", n)
	}
}

func TestShardedAccessorBatches(t *testing.T) {
	s := bst.New(bst.WithShards(4), bst.WithShardRange(0, 1<<16), bst.WithMetrics(0))
	defer s.Close()
	a := s.NewAccessor()
	defer a.Close()
	keys := make([]int64, 500)
	for i := range keys {
		keys[i] = int64(i * 131)
	}
	keys[7] = bst.MaxKey + 1 // out-of-range key must fail only its slot
	out := make([]bst.OpResult, len(keys))
	a.InsertBatch(keys, out)
	for i := range keys {
		if i == 7 {
			if !errors.Is(out[i].Err, bst.ErrKeyOutOfRange) {
				t.Fatalf("slot 7: err=%v, want ErrKeyOutOfRange", out[i].Err)
			}
			continue
		}
		if out[i].Err != nil || !out[i].OK {
			t.Fatalf("slot %d: ok=%v err=%v", i, out[i].OK, out[i].Err)
		}
	}
	a.ContainsBatch(keys, out)
	for i := range keys {
		if i == 7 {
			continue
		}
		if !out[i].OK {
			t.Fatalf("contains slot %d false", i)
		}
	}
	a.DeleteBatch(keys, out)
	for i := range keys {
		if i == 7 {
			continue
		}
		if !out[i].OK {
			t.Fatalf("delete slot %d false", i)
		}
	}
	m := s.Metrics()
	if !m.Enabled {
		t.Fatal("metrics should be enabled")
	}
	if m.Gauges["forest_shards"] != 4 {
		t.Fatalf("forest_shards gauge = %v", m.Gauges["forest_shards"])
	}
}

func TestShardedConcurrentAccessors(t *testing.T) {
	s := bst.New(bst.WithShards(8), bst.WithShardRange(0, 1<<16), bst.WithReclamation())
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := s.NewAccessor()
			defer a.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			ks := make([]int64, 128)
			out := make([]bst.OpResult, 128)
			for i := 0; i < 100; i++ {
				for j := range ks {
					ks[j] = rng.Int63n(1 << 16)
				}
				a.InsertBatch(ks, out)
				a.ContainsBatch(ks, out)
				a.DeleteBatch(ks, out)
				a.Insert(rng.Int63n(1 << 16))
				a.Delete(rng.Int63n(1 << 16))
			}
		}(w)
	}
	wg.Wait()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
