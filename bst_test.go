package bst_test

import (
	"math/rand"
	"sync"
	"testing"

	bst "repro"
)

func allAlgorithms(t *testing.T, f func(t *testing.T, tree *bst.Tree)) {
	t.Helper()
	for _, a := range bst.Algorithms() {
		t.Run(a.String(), func(t *testing.T) {
			f(t, bst.New(bst.WithAlgorithm(a), bst.WithCapacity(1<<21)))
		})
	}
}

func TestPublicAPIBasics(t *testing.T) {
	allAlgorithms(t, func(t *testing.T, s *bst.Tree) {
		if s.Contains(1) {
			t.Fatal("empty tree contains 1")
		}
		if !s.Insert(1) || s.Insert(1) {
			t.Fatal("insert semantics wrong")
		}
		if !s.Contains(1) {
			t.Fatal("inserted key missing")
		}
		if s.Len() != 1 {
			t.Fatalf("Len = %d", s.Len())
		}
		if !s.Delete(1) || s.Delete(1) {
			t.Fatal("delete semantics wrong")
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPublicAPINegativeKeys(t *testing.T) {
	allAlgorithms(t, func(t *testing.T, s *bst.Tree) {
		ks := []int64{-5, 0, 5, -1 << 60, 1 << 60}
		for _, k := range ks {
			if !s.Insert(k) {
				t.Fatalf("insert %d failed", k)
			}
		}
		for _, k := range ks {
			if !s.Contains(k) {
				t.Fatalf("key %d missing", k)
			}
		}
		min, ok := s.Min()
		if !ok || min != -1<<60 {
			t.Fatalf("Min = %d, %v", min, ok)
		}
		max, ok := s.Max()
		if !ok || max != 1<<60 {
			t.Fatalf("Max = %d, %v", max, ok)
		}
	})
}

func TestAscendOrder(t *testing.T) {
	allAlgorithms(t, func(t *testing.T, s *bst.Tree) {
		rng := rand.New(rand.NewSource(1))
		want := map[int64]bool{}
		for i := 0; i < 500; i++ {
			k := int64(rng.Intn(10000) - 5000)
			s.Insert(k)
			want[k] = true
		}
		prev := int64(-1 << 62)
		n := 0
		s.Ascend(func(k int64) bool {
			if k <= prev {
				t.Fatalf("Ascend out of order: %d after %d", k, prev)
			}
			if !want[k] {
				t.Fatalf("Ascend yielded unexpected key %d", k)
			}
			prev = k
			n++
			return true
		})
		if n != len(want) {
			t.Fatalf("Ascend yielded %d keys, want %d", n, len(want))
		}
	})
}

func TestAscendRange(t *testing.T) {
	s := bst.New()
	for i := int64(0); i < 100; i++ {
		s.Insert(i)
	}
	var got []int64
	s.AscendRange(10, 19, func(k int64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("AscendRange wrong: %v", got)
	}
}

func TestAccessorConcurrent(t *testing.T) {
	allAlgorithms(t, func(t *testing.T, s *bst.Tree) {
		const workers = 4
		const each = 2000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				a := s.NewAccessor()
				for i := 0; i < each; i++ {
					a.Insert(int64(w*each + i))
				}
			}(w)
		}
		wg.Wait()
		if s.Len() != workers*each {
			t.Fatalf("Len = %d, want %d", s.Len(), workers*each)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestKeyRangePanics(t *testing.T) {
	s := bst.New()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range key did not panic")
		}
	}()
	s.Insert(bst.MaxKey + 1)
}

func TestMaxKeyStorable(t *testing.T) {
	s := bst.New()
	if !s.Insert(bst.MaxKey) || !s.Contains(bst.MaxKey) {
		t.Fatal("MaxKey not storable")
	}
}

func TestReclamationOption(t *testing.T) {
	s := bst.New(bst.WithReclamation(), bst.WithCapacity(1<<16))
	// Churn far more inserts than the capacity could hold without
	// recycling: 2 nodes per insert × 200k inserts ≫ 65k slots.
	a := s.NewAccessor()
	for i := 0; i < 200000; i++ {
		k := int64(i % 50)
		a.Insert(k)
		a.Delete(k)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestAlgorithmReported(t *testing.T) {
	for _, a := range bst.Algorithms() {
		if got := bst.New(bst.WithAlgorithm(a)).Algorithm(); got != a {
			t.Fatalf("Algorithm() = %v, want %v", got, a)
		}
	}
}

func TestEmptyTreeMinMax(t *testing.T) {
	s := bst.New()
	if _, ok := s.Min(); ok {
		t.Fatal("Min on empty returned ok")
	}
	if _, ok := s.Max(); ok {
		t.Fatal("Max on empty returned ok")
	}
}
