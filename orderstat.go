package bst

import (
	"errors"
	"fmt"

	"repro/internal/keys"
)

// Order statistics & range aggregates. WithOrderStatistics attaches a
// lazily-refreshed augmentation layer (internal/orderstat) to the default
// NatarajanMittal tree — sharded or not — so rank, select, count-in-range
// and sum-in-range answer in O(log n) instead of an O(range) scan.
// Writers pay one nil-checked counter bump per successful mutation; no
// atomic is added to the lock-free hot paths. Every query names its
// consistency: Exact answers are equivalent to an epoch-pinned scan at
// the query's linearization point (forcing a summary refresh wave when
// mutations have completed since the last one), BoundedStale(m) accepts
// answers at most m completed mutations old in exchange for never paying
// a wave. See DESIGN.md §15 for the protocol and its staleness bounds.

// ErrNoOrderStats is returned by the aggregate queries when the tree was
// built without WithOrderStatistics (or with an algorithm other than
// NatarajanMittal, which is the only one with the dirty-counter hooks).
var ErrNoOrderStats = errors.New("bst: order statistics not enabled (WithOrderStatistics)")

// ErrSelectOutOfRange is returned by Select when the requested index is
// negative or at least the tree's key count under the query's
// consistency mode.
var ErrSelectOutOfRange = errors.New("bst: select index out of range")

// WithOrderStatistics enables the order-statistics layer on the
// NatarajanMittal algorithm (other algorithms ignore it and answer
// ErrNoOrderStats). On a sharded tree every shard gets its own index and
// aggregates merge across shards.
func WithOrderStatistics() Option { return func(c *config) { c.orderstat = true } }

// Consistency selects how fresh an aggregate answer must be. The zero
// value behaves like BoundedStale(0): cached summaries are served only
// while no mutation has completed since they were built.
type Consistency struct {
	exact    bool
	maxDirty uint64
}

// Exact demands an answer equivalent to an epoch-pinned scan at the
// query's linearization point: the cached summary is served only when no
// mutation has completed since it was built, otherwise the query runs (or
// joins) a refresh wave first. Mutations still in flight during the query
// may land on either side of it, exactly as with Scan.
var Exact = Consistency{exact: true}

// BoundedStale accepts an answer at most maxDirty completed mutations
// old: each completed insert or delete moves any rank, count or selection
// index by at most one, so the returned value is within maxDirty of an
// exact answer (per shard, on a sharded tree — a query spanning k shards
// is within k×maxDirty). Queries under BoundedStale never pay a refresh
// wave while the tree mutates slower than the budget.
func BoundedStale(maxDirty uint64) Consistency { return Consistency{maxDirty: maxDirty} }

func (c Consistency) String() string {
	if c.exact {
		return "exact"
	}
	return fmt.Sprintf("bounded-stale(%d)", c.maxDirty)
}

// Rank returns the number of keys strictly less than key under the given
// consistency. Keys above MaxKey are permitted (every stored key ranks
// below them).
func (t *Tree) Rank(key int64, c Consistency) (int, error) {
	switch {
	case t.ix != nil:
		if !keys.InRange(key) {
			return t.ix.Acquire(c.exact, c.maxDirty).Len(), nil
		}
		return t.ix.Acquire(c.exact, c.maxDirty).Rank(keys.Map(key)), nil
	case t.agg != nil:
		if !keys.InRange(key) {
			return t.agg.Len(c.exact, c.maxDirty), nil
		}
		return t.agg.Rank(keys.Map(key), c.exact, c.maxDirty), nil
	}
	return 0, ErrNoOrderStats
}

// Select returns the i-th smallest key (0-based) under the given
// consistency, or ErrSelectOutOfRange when i is outside [0, count).
func (t *Tree) Select(i int, c Consistency) (int64, error) {
	var u uint64
	var ok bool
	switch {
	case t.ix != nil:
		u, ok = t.ix.Acquire(c.exact, c.maxDirty).Select(i)
	case t.agg != nil:
		u, ok = t.agg.Select(i, c.exact, c.maxDirty)
	default:
		return 0, ErrNoOrderStats
	}
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrSelectOutOfRange, i)
	}
	return keys.Unmap(u), nil
}

// CountRange returns the number of keys in [lo, hi] (inclusive, matching
// Scan) under the given consistency. Bounds above MaxKey clamp; lo > hi
// counts zero.
func (t *Tree) CountRange(lo, hi int64, c Consistency) (int, error) {
	lo, hi, empty := clampRange(lo, hi)
	if empty {
		if t.ix == nil && t.agg == nil {
			return 0, ErrNoOrderStats
		}
		return 0, nil
	}
	switch {
	case t.ix != nil:
		return t.ix.Acquire(c.exact, c.maxDirty).Count(keys.Map(lo), keys.Map(hi)), nil
	case t.agg != nil:
		return t.agg.Count(keys.Map(lo), keys.Map(hi), c.exact, c.maxDirty), nil
	}
	return 0, ErrNoOrderStats
}

// SumRange returns the sum of the keys in [lo, hi] (inclusive) under the
// given consistency, with ordinary int64 wraparound on overflow.
func (t *Tree) SumRange(lo, hi int64, c Consistency) (int64, error) {
	lo, hi, empty := clampRange(lo, hi)
	if empty {
		if t.ix == nil && t.agg == nil {
			return 0, ErrNoOrderStats
		}
		return 0, nil
	}
	switch {
	case t.ix != nil:
		return t.ix.Acquire(c.exact, c.maxDirty).Sum(keys.Map(lo), keys.Map(hi)), nil
	case t.agg != nil:
		return t.agg.Sum(keys.Map(lo), keys.Map(hi), c.exact, c.maxDirty), nil
	}
	return 0, ErrNoOrderStats
}

// ScanIndexed visits the keys in [from, to] ascending through the
// order-statistics summaries instead of walking the live tree: the
// planner prunes every subtree wholly outside the range, so positioning
// costs O(log n) and the visit touches only in-range keys. The stream's
// freshness is the summary's (per the consistency mode); for a
// walk-the-live-tree scan use Scan.
func (t *Tree) ScanIndexed(from, to int64, c Consistency, yield func(key int64) bool) error {
	from, to, empty := clampRange(from, to)
	if empty {
		if t.ix == nil && t.agg == nil {
			return ErrNoOrderStats
		}
		return nil
	}
	wrap := func(u uint64) bool { return yield(keys.Unmap(u)) }
	switch {
	case t.ix != nil:
		t.ix.Acquire(c.exact, c.maxDirty).Visit(keys.Map(from), keys.Map(to), wrap)
		return nil
	case t.agg != nil:
		t.agg.Visit(keys.Map(from), keys.Map(to), c.exact, c.maxDirty, wrap)
		return nil
	}
	return ErrNoOrderStats
}

// clampRange normalizes an inclusive user-key range the way Scan does:
// bounds above MaxKey clamp, an inverted range is empty.
func clampRange(lo, hi int64) (int64, int64, bool) {
	if hi > MaxKey {
		hi = MaxKey
	}
	if lo > hi {
		return lo, hi, true
	}
	return lo, hi, false
}
