package bst

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/metrics"
)

// WithMetrics enables live contention telemetry on the NatarajanMittal
// algorithm (other algorithms accept the option and report nothing): each
// per-goroutine accessor gets a private cache-line-padded counter shard
// wired into the tree's hot paths, and Insert/Delete/Contains latencies are
// sampled into power-of-two histograms (one timed operation in every
// sampleEvery; 0 selects the default of 64, 1 times every operation).
// Read the results with Tree.Metrics or serve them with ServeMetrics.
func WithMetrics(sampleEvery int) Option {
	return func(c *config) { c.metrics, c.metricsSample = true, sampleEvery }
}

// LatencyStats is one operation kind's sampled latency histogram. Bucket i
// counts sampled operations whose duration fell in [2^(i-1), 2^i)
// nanoseconds.
type LatencyStats struct {
	Count    uint64   // sampled operations
	SumNanos uint64   // total sampled nanoseconds
	P50Nanos uint64   // approximate median (bucket upper bound)
	P99Nanos uint64   // approximate 99th percentile (bucket upper bound)
	Buckets  []uint64 // power-of-two buckets, len metrics.NumBuckets
}

// Metrics is a cumulative telemetry snapshot. Counters and latency
// histograms are monotonic since tree creation; Gauges are instantaneous.
// The zero value (Enabled false) is returned by trees built without
// WithMetrics.
type Metrics struct {
	// Enabled reports whether the tree records telemetry at all.
	Enabled bool
	// SampleEvery is the latency sampling period: one timed operation per
	// this many, per accessor. Counters are never sampled.
	SampleEvery uint64
	// Counters maps stable snake_case names (e.g. "cas_failures_flag_total",
	// "help_other_total", "seek_restarts_total", "epoch_advances_total") to
	// monotonic event counts.
	Counters map[string]uint64
	// Gauges maps names like "arena_allocated_nodes" or
	// "epoch_retired_backlog_nodes" to instantaneous values.
	Gauges map[string]float64
	// Latency maps "search", "insert", "delete" to sampled histograms.
	Latency map[string]LatencyStats
}

// Sub returns the delta m−prev for counters and latency histograms (the
// delta-since helper for rate computations); gauges keep their current
// values. Both snapshots must come from the same tree.
func (m Metrics) Sub(prev Metrics) Metrics {
	d := Metrics{
		Enabled:     m.Enabled,
		SampleEvery: m.SampleEvery,
		Counters:    make(map[string]uint64, len(m.Counters)),
		Gauges:      make(map[string]float64, len(m.Gauges)),
		Latency:     make(map[string]LatencyStats, len(m.Latency)),
	}
	for k, v := range m.Counters {
		d.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range m.Gauges {
		d.Gauges[k] = v
	}
	for k, v := range m.Latency {
		p := prev.Latency[k]
		l := LatencyStats{
			Count:    v.Count - p.Count,
			SumNanos: v.SumNanos - p.SumNanos,
			Buckets:  make([]uint64, len(v.Buckets)),
		}
		var snap metrics.LatencySnapshot
		for i := range v.Buckets {
			l.Buckets[i] = v.Buckets[i]
			if i < len(p.Buckets) {
				l.Buckets[i] -= p.Buckets[i]
			}
			snap.Buckets[i] = l.Buckets[i]
		}
		snap.Count = l.Count
		l.P50Nanos = snap.Quantile(0.50)
		l.P99Nanos = snap.Quantile(0.99)
		d.Latency[k] = l
	}
	return d
}

// Metrics returns a cumulative telemetry snapshot. For trees built without
// WithMetrics (or with an algorithm other than NatarajanMittal) the zero
// snapshot with Enabled false is returned.
func (t *Tree) Metrics() Metrics {
	reg := t.metricsRegistry()
	if reg == nil {
		return Metrics{}
	}
	return fromSnapshot(reg.Snapshot())
}

func (t *Tree) metricsRegistry() *metrics.Registry {
	switch b := t.b.(type) {
	case *core.Tree:
		return b.Metrics()
	case *forest.Forest:
		return b.Metrics()
	default:
		return nil
	}
}

func fromSnapshot(s metrics.Snapshot) Metrics {
	m := Metrics{
		Enabled:     true,
		SampleEvery: s.SampleEvery,
		Counters:    s.CounterMap(),
		Gauges:      s.Gauges,
		Latency:     make(map[string]LatencyStats, int(metrics.NumOps)),
	}
	for op := metrics.Op(0); op < metrics.NumOps; op++ {
		l := s.Latency[op]
		m.Latency[op.Name()] = LatencyStats{
			Count:    l.Count,
			SumNanos: l.SumNanos,
			P50Nanos: l.Quantile(0.50),
			P99Nanos: l.Quantile(0.99),
			Buckets:  append([]uint64(nil), l.Buckets[:]...),
		}
	}
	return m
}

// MetricsHandler returns an HTTP handler exposing the telemetry of the
// given trees (keyed by the label used in the exported series):
//
//	GET /metrics     Prometheus text exposition format
//	GET /debug/vars  expvar-style JSON
//
// Trees without metrics enabled are skipped. The handler is safe to serve
// while the trees are under full concurrent load; scrapes never block
// operations.
func MetricsHandler(trees map[string]*Tree) http.Handler {
	return metrics.Handler(func() []metrics.Source {
		out := make([]metrics.Source, 0, len(trees))
		for name, t := range trees {
			out = append(out, metrics.Source{Name: name, Registry: t.metricsRegistry()})
		}
		return out
	})
}

// MetricsServer is a running metrics HTTP endpoint (see ServeMetrics).
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the listener's address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *MetricsServer) Close() error { return s.srv.Close() }

// ServeMetrics starts an HTTP endpoint on addr (e.g. ":9100" or
// "127.0.0.1:0") exposing the telemetry of the given trees; see
// MetricsHandler for the routes. The caller owns the returned server and
// should Close it when done.
func ServeMetrics(addr string, trees map[string]*Tree) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bst: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: MetricsHandler(trees), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &MetricsServer{ln: ln, srv: srv}, nil
}
