package bst

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func workTree(t *testing.T, opts ...Option) *Tree {
	t.Helper()
	tr := New(append([]Option{WithCapacity(1 << 14)}, opts...)...)
	for i := int64(0); i < 500; i++ {
		tr.Insert(i)
	}
	for i := int64(0); i < 500; i++ {
		tr.Contains(i)
	}
	for i := int64(0); i < 250; i++ {
		tr.Delete(i)
	}
	return tr
}

func TestTreeMetricsSnapshot(t *testing.T) {
	tr := workTree(t, WithMetrics(1))
	m := tr.Metrics()
	if !m.Enabled {
		t.Fatal("Metrics().Enabled = false on a WithMetrics tree")
	}
	if m.SampleEvery != 1 {
		t.Fatalf("SampleEvery = %d, want 1", m.SampleEvery)
	}
	if got := m.Counters["ops_insert_total"]; got != 500 {
		t.Fatalf("ops_insert_total = %d, want 500", got)
	}
	if got := m.Counters["ops_delete_total"]; got != 250 {
		t.Fatalf("ops_delete_total = %d, want 250", got)
	}
	lat, ok := m.Latency["insert"]
	if !ok || lat.Count != 500 {
		t.Fatalf("insert latency count = %d (ok=%v), want 500 at sampleEvery=1", lat.Count, ok)
	}
	if lat.P50Nanos == 0 || lat.P99Nanos < lat.P50Nanos {
		t.Fatalf("implausible quantiles: p50=%d p99=%d", lat.P50Nanos, lat.P99Nanos)
	}
	if m.Gauges["arena_allocated_nodes"] == 0 {
		t.Fatal("arena_allocated_nodes gauge missing")
	}
}

func TestTreeMetricsSub(t *testing.T) {
	tr := workTree(t, WithMetrics(1))
	before := tr.Metrics()
	for i := int64(1000); i < 1100; i++ {
		tr.Insert(i)
	}
	d := tr.Metrics().Sub(before)
	if got := d.Counters["ops_insert_total"]; got != 100 {
		t.Fatalf("delta ops_insert_total = %d, want 100", got)
	}
	if got := d.Counters["ops_delete_total"]; got != 0 {
		t.Fatalf("delta ops_delete_total = %d, want 0", got)
	}
	if got := d.Latency["insert"].Count; got != 100 {
		t.Fatalf("delta insert latency count = %d, want 100", got)
	}
	if got := d.Latency["delete"].Count; got != 0 {
		t.Fatalf("delta delete latency count = %d, want 0", got)
	}
}

func TestTreeMetricsDisabled(t *testing.T) {
	tr := workTree(t)
	if m := tr.Metrics(); m.Enabled {
		t.Fatalf("Metrics().Enabled = true without WithMetrics: %+v", m)
	}
	// Non-NM algorithms accept the option and report nothing.
	tr2 := New(WithAlgorithm(CoarseLock), WithMetrics(1))
	tr2.Insert(1)
	if m := tr2.Metrics(); m.Enabled {
		t.Fatalf("CoarseLock tree reports metrics: %+v", m)
	}
}

// TestServeMetricsEndpoint is the acceptance test for the HTTP exposition
// path: start a real listener, GET /metrics over TCP like a scraper would,
// and check the Prometheus text includes the contention families and
// latency histogram series.
func TestServeMetricsEndpoint(t *testing.T) {
	tr := workTree(t, WithMetrics(1))
	srv, err := ServeMetrics("127.0.0.1:0", map[string]*Tree{"nm": tr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body := httpGet(t, "http://"+srv.Addr()+"/metrics")
	for _, want := range []string{
		`# TYPE bst_ops_total counter`,
		`bst_ops_total{tree="nm",op="insert"} 500`,
		`# TYPE bst_cas_failures_total counter`,
		`bst_cas_failures_total{tree="nm",step="flag"}`,
		`bst_cas_failures_total{tree="nm",step="insert"}`,
		`# TYPE bst_help_total counter`,
		`bst_help_total{tree="nm"}`,
		`# TYPE bst_seek_restarts_total counter`,
		`bst_seek_restarts_total{tree="nm"}`,
		`# TYPE bst_op_latency_seconds histogram`,
		`bst_op_latency_seconds_bucket{tree="nm",op="search",le="+Inf"} 500`,
		`bst_op_latency_seconds_count{tree="nm",op="delete"} 250`,
		`bst_op_latency_seconds_sum{tree="nm",op="insert"}`,
		`bst_arena_allocated_nodes{tree="nm"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("GET /metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("full body:\n%s", body)
	}

	// /debug/vars must be valid JSON with the same counters.
	var vars map[string]struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+srv.Addr()+"/debug/vars")), &vars); err != nil {
		t.Fatalf("GET /debug/vars is not valid JSON: %v", err)
	}
	if got := vars["nm"].Counters["ops_search_total"]; got != 500 {
		t.Fatalf("/debug/vars ops_search_total = %d, want 500", got)
	}
}

// TestServeMetricsLive checks a scrape taken while writers are running:
// the endpoint must respond with parseable output mid-load (scrapes never
// block operations) and successive scrapes must be monotonic.
func TestServeMetricsLive(t *testing.T) {
	tr := New(WithCapacity(1<<16), WithMetrics(0), WithReclamation())
	srv, err := ServeMetrics("127.0.0.1:0", map[string]*Tree{"nm": tr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ac := tr.NewAccessor()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := i % 4096
			ac.Insert(k)
			ac.Delete(k)
		}
	}()

	var prev uint64
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 3; i++ {
		m := tr.Metrics()
		total := m.Counters["ops_insert_total"] + m.Counters["ops_delete_total"]
		if total < prev {
			t.Fatalf("scrape %d went backwards: %d < %d", i, total, prev)
		}
		prev = total
		body := httpGet(t, "http://"+srv.Addr()+"/metrics")
		if !strings.Contains(body, `bst_ops_total{tree="nm",op="insert"}`) {
			t.Fatalf("mid-load scrape missing ops series:\n%s", body)
		}
		if time.Now().After(deadline) {
			break
		}
	}
	close(stop)
	<-done
	if err := tr.Validate(); err != nil {
		t.Fatalf("tree invalid after scraped run: %v", err)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(b)
}

func ExampleTree_Metrics() {
	tr := New(WithMetrics(1), WithCapacity(1<<12))
	tr.Insert(1)
	tr.Insert(2)
	tr.Delete(1)
	m := tr.Metrics()
	fmt.Println(m.Counters["ops_insert_total"], m.Counters["ops_delete_total"])
	// Output: 2 1
}
