package bst_test

import (
	"fmt"

	bst "repro"
)

func ExampleNew() {
	s := bst.New() // the paper's lock-free Natarajan–Mittal tree
	fmt.Println(s.Insert(10))
	fmt.Println(s.Insert(10)) // duplicate
	fmt.Println(s.Contains(10))
	fmt.Println(s.Delete(10))
	fmt.Println(s.Contains(10))
	// Output:
	// true
	// false
	// true
	// true
	// false
}

func ExampleWithAlgorithm() {
	// Same interface, different concurrency design: the Bronson et al.
	// relaxed AVL tree stays balanced under sorted insertions.
	s := bst.New(bst.WithAlgorithm(bst.Bronson))
	for i := int64(0); i < 1000; i++ {
		s.Insert(i) // monotonic keys: worst case for unbalanced trees
	}
	fmt.Println(s.Len())
	// Output:
	// 1000
}

func ExampleTree_Ascend() {
	s := bst.New()
	for _, k := range []int64{30, 10, 20} {
		s.Insert(k)
	}
	s.Ascend(func(k int64) bool {
		fmt.Println(k)
		return true
	})
	// Output:
	// 10
	// 20
	// 30
}

func ExampleTree_AscendRange() {
	s := bst.New()
	for i := int64(0); i < 10; i++ {
		s.Insert(i * 10)
	}
	s.AscendRange(25, 55, func(k int64) bool {
		fmt.Println(k)
		return true
	})
	// Output:
	// 30
	// 40
	// 50
}

func ExampleTree_NewAccessor() {
	s := bst.New()
	// One accessor per goroutine: private seek record and node allocator.
	a := s.NewAccessor()
	for i := int64(0); i < 100; i++ {
		a.Insert(i * 7 % 100)
	}
	fmt.Println(s.Len())
	// Output:
	// 100
}

func ExampleWithReclamation() {
	// A long-lived set under churn: deleted nodes are recycled after a
	// grace period, so a small arena sustains unbounded operations.
	s := bst.New(bst.WithReclamation(), bst.WithCapacity(1<<16))
	a := s.NewAccessor()
	for i := 0; i < 100_000; i++ {
		a.Insert(int64(i % 10))
		a.Delete(int64(i % 10))
	}
	fmt.Println(s.Len())
	// Output:
	// 0
}

func ExampleNewMap() {
	m := bst.NewMap[string]()
	fmt.Println(m.Put(1, "one")) // insert
	fmt.Println(m.Put(1, "uno")) // replace (single-CAS leaf swap)
	v, ok := m.Get(1)
	fmt.Println(v, ok)
	fmt.Println(m.PutIfAbsent(1, "ein"))
	fmt.Println(m.Delete(1))
	// Output:
	// false
	// true
	// uno true
	// false
	// true
}

func ExampleMap_Ascend() {
	m := bst.NewMap[int]()
	for i := int64(3); i >= 1; i-- {
		m.Put(i, int(i)*100)
	}
	m.Ascend(func(k int64, v int) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 1 100
	// 2 200
	// 3 300
}

func ExampleTree_Min() {
	s := bst.New()
	s.Insert(42)
	s.Insert(-7)
	min, _ := s.Min()
	max, _ := s.Max()
	fmt.Println(min, max)
	// Output:
	// -7 42
}
