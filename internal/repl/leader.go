package repl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/snapshot"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Streaming tunables. sendChunk bounds how many WAL bytes one ReplFrames
// batch carries (well under wire.MaxFrame after headers); liveQueue is the
// per-subscriber buffer of tap batches — overflow marks the subscriber
// lagged and it resyncs from disk rather than stalling the flusher.
const (
	sendChunk    = 32 << 10
	liveQueueLen = 1024
)

// liveBatch is one tap delivery: verbatim on-disk WAL frames covering the
// dense sequence range [first, last].
type liveBatch struct {
	first, last uint64
	frames      []byte
}

// subscriber is one follower connection on the replication listener.
type subscriber struct {
	conn net.Conn
	bw   *bufio.Writer
	live chan liveBatch
	// lagged is set (by the tap, under subMu) when live overflowed and the
	// subscriber must resync from the WAL files.
	lagged bool
	// sent is the newest sequence streamed to this follower; only the
	// subscriber goroutine touches it.
	sent uint64
}

func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			if n.closed.Load() {
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			n.log.Error("replication accept failed", "err", err)
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			if err := n.serveSubscriber(c); err != nil && !n.closed.Load() {
				n.log.Warn("subscriber stream ended", "peer", c.RemoteAddr().String(), "err", err)
			}
		}()
	}
}

// serveSubscriber runs one follower stream: handshake, catch-up (snapshot
// and/or WAL replay), then live tail + heartbeats, with acks read on a
// side goroutine. Any node with a replication listener serves subscribers
// regardless of role — a follower relaying its log downstream is chained
// replication, and the term/address it advertises are the cluster
// leader's, so redirects stay correct.
func (n *Node) serveSubscriber(c net.Conn) error {
	defer c.Close()

	c.SetReadDeadline(time.Now().Add(30 * time.Second))
	frame, _, err := wire.ReadFrame(c, nil)
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	// The first frame's kind splits the connection's purpose: a ReplStatus
	// is a one-shot status exchange (election probes, new-leader
	// announcements); anything else must be a Subscribe opening a stream.
	if k, kerr := wire.ReplKind(frame); kerr == nil && k == wire.ReplStatus {
		return n.handleStatusExchange(c, frame)
	}
	sub, err := wire.DecodeReplSubscribe(frame)
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	c.SetReadDeadline(time.Time{})

	// A subscriber carrying a higher term than ours has spoken to a newer
	// leader; adopt it — if we were leading that term is fenced now, and
	// either way our heartbeats must not roll the cluster back.
	if t := sub.Term; t > n.term.Load() {
		n.log.Info("subscriber announces newer term; adopting", "subscriber_term", t)
		n.observeTerm(t, "", "")
	}

	s := &subscriber{
		conn: c,
		bw:   bufio.NewWriterSize(c, 64<<10),
		live: make(chan liveBatch, liveQueueLen),
		sent: sub.FromSeq,
	}
	n.subMu.Lock()
	n.subs[s] = struct{}{}
	n.subMu.Unlock()
	defer func() {
		n.subMu.Lock()
		delete(n.subs, s)
		n.subMu.Unlock()
	}()

	// Ack reader: cumulative ReplAcks arrive on the same connection.
	ackErr := make(chan error, 1)
	go func() {
		var scratch []byte
		for {
			frame, newScratch, rerr := wire.ReadFrame(c, scratch)
			if rerr != nil {
				ackErr <- rerr
				return
			}
			scratch = newScratch
			ack, derr := wire.DecodeReplAck(frame)
			if derr != nil {
				ackErr <- derr
				return
			}
			n.noteAck(ack.AppliedSeq, ack.Term)
		}
	}()

	hb := time.NewTicker(n.cfg.Heartbeat)
	defer hb.Stop()

	// Initial catch-up: anything the follower is missing that predates the
	// live window comes from disk (or from a snapshot, if the WAL tail it
	// needs was GC'd by a checkpoint).
	if err := n.resync(s); err != nil {
		return err
	}

	for {
		select {
		case b := <-s.live:
			if err := n.forwardLive(s, b); err != nil {
				return err
			}
		case <-hb.C:
			// Heartbeat-send failpoint: skip the tick as a lossy network
			// would, letting tests starve a follower's lease on demand.
			if fp := n.cfg.Failpoints; fp != nil && fp.Hit(FPHeartbeatSend) {
				continue
			}
			if err := n.sendBatch(s, nil, 0, 0, 0); err != nil {
				return err
			}
			n.c.heartbeatsSent.Add(1)
		case err := <-ackErr:
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("ack stream: %w", err)
		case <-n.quit:
			return nil
		}
		// The tap marks lagged under subMu when live overflows; recover by
		// draining and re-reading from the segment files.
		n.subMu.Lock()
		lagged := s.lagged
		s.lagged = false
		n.subMu.Unlock()
		if lagged {
			for {
				select {
				case <-s.live:
					continue
				default:
				}
				break
			}
			if err := n.resync(s); err != nil {
				return err
			}
		}
	}
}

// handleStatusExchange answers one symmetric status probe on the
// replication listener: the caller has already sent its own PeerStatus as
// the first frame; record any news it carries — a self-declared leader
// with a newer term retargets (and fences) us, a bare higher term at
// least fences — then reply with our own status and close. Election
// probes and new-leader announcements are the same exchange.
func (n *Node) handleStatusExchange(c net.Conn, frame []byte) error {
	ps, err := wire.DecodeReplPeerStatus(frame)
	if err != nil {
		return fmt.Errorf("status exchange: %w", err)
	}
	if ps.IsLeader {
		n.observeTerm(ps.Term, ps.Advertise, ps.ReplAddr)
	} else if ps.Term > n.term.Load() {
		n.observeTerm(ps.Term, "", "")
	}
	out := n.localStatus()
	bp := wire.GetBuf()
	*bp = wire.AppendReplPeerStatus((*bp)[:0], out)
	c.SetWriteDeadline(time.Now().Add(5 * time.Second))
	err = wire.WriteFrame(c, *bp)
	wire.PutBuf(bp)
	return err
}

// forwardLive relays one tap batch. Batches arrive in flush order, so a
// gap (first > sent+1) only appears after an overflow drop; the caller's
// lagged check resyncs afterwards, and overlap (first <= sent) is
// harmless — followers skip records at or below their own log.
func (n *Node) forwardLive(s *subscriber, b liveBatch) error {
	if b.last <= s.sent {
		return nil
	}
	if err := n.sendBatch(s, b.frames, countRecords(b.frames), b.first, b.last); err != nil {
		return err
	}
	s.sent = b.last
	return nil
}

// sendBatch writes one ReplFrames frame (frames == nil is a heartbeat)
// carrying the current term, durable horizon, and the leader's advertised
// data address — the address rides every frame so followers can always
// answer "who is the leader" for client redirects. Live batches
// ([first, last] nonzero) additionally carry the trace context of any
// sampled mutation they cover, so the follower's apply span links into the
// originating request's trace; the recorder consumes the entry, so with
// multiple subscribers exactly one stream carries the stamp.
func (n *Node) sendBatch(s *subscriber, frames []byte, nrec uint32, first, last uint64) error {
	fb := wire.FrameBatch{
		Term:      n.term.Load(),
		CommitSeq: n.store.DurableSeq(),
		Addr:      n.LeaderAddr(),
		N:         nrec,
		Frames:    frames,
	}
	if nrec > 0 && last > 0 {
		if tc, seq, ok := n.cfg.Trace.SampledSeqInRange(first, last); ok {
			fb.Trace, fb.TraceSeq = tc, seq
		}
	}
	bp := wire.GetBuf()
	*bp = wire.AppendReplFrames((*bp)[:0], fb)
	err := wire.WriteFrame(s.bw, *bp)
	wire.PutBuf(bp)
	if err != nil {
		return err
	}
	if err := s.bw.Flush(); err != nil {
		return err
	}
	if nrec > 0 {
		n.c.recordsSent.Add(uint64(nrec))
		n.c.batchesSent.Add(1)
	}
	return nil
}

// countRecords counts WAL frames in a verbatim byte run (tap batches are
// always well-formed; a decode error here is a programming error upstream
// and the count stops early, which the follower will reject loudly).
func countRecords(frames []byte) uint32 {
	var nrec uint32
	for len(frames) > 0 {
		_, adv, err := wal.DecodeFrame(frames)
		if err != nil {
			break
		}
		frames = frames[adv:]
		nrec++
	}
	return nrec
}

// resync brings a subscriber to the log's current tail from durable state:
// snapshot bulk-transfer when the follower's position predates the
// retained WAL, then segment replay until sent catches the tail. Live
// batches queued meanwhile are deduplicated by sequence in forwardLive.
func (n *Node) resync(s *subscriber) error {
	n.c.resyncs.Add(1)
	for {
		first := n.store.WALFirstSeq()
		if s.sent+1 < first {
			before := s.sent
			if err := n.shipSnapshot(s); err != nil {
				return err
			}
			if s.sent <= before {
				// No snapshot advanced the position (none on disk, or the
				// newest predates the follower): the gap is unbridgeable.
				return fmt.Errorf("repl: subscriber at seq %d predates retained WAL (first %d) and no snapshot covers the gap", before, first)
			}
			continue
		}
		target := n.store.LastSeq()
		if s.sent >= target {
			return nil
		}
		if err := n.replayRange(s, target); err != nil {
			return err
		}
	}
}

// replayRange streams records (s.sent, target] from the WAL segment files,
// re-framed with the on-disk encoding so the stream is identical to the
// live tap's. A read error from a segment GC'd mid-replay surfaces as a
// replay error; the caller loop falls back to the snapshot path.
func (n *Node) replayRange(s *subscriber, target uint64) error {
	var (
		buf  []byte
		nrec uint32
	)
	flush := func() error {
		if nrec == 0 {
			return nil
		}
		err := n.sendBatch(s, buf, nrec, 0, 0)
		buf, nrec = buf[:0], 0
		return err
	}
	err := n.store.ReplayWAL(s.sent, func(r wal.Record) error {
		if r.Seq > target {
			// Stop at the requested horizon; the tail past it is either in
			// the live queue already or picked up by the caller's next pass.
			return errReplayDone
		}
		buf = wal.AppendFrame(buf, r)
		nrec++
		s.sent = r.Seq
		if len(buf) >= sendChunk {
			return flush()
		}
		return nil
	})
	if err != nil && !errors.Is(err, errReplayDone) {
		if ferr := flush(); ferr != nil {
			return ferr
		}
		// Retained-WAL miss (a checkpoint removed segments under the
		// replay): report distinctly so resync retries via snapshot.
		n.log.Warn("replay fell off retained WAL; resync via snapshot", "seq", s.sent, "err", err)
		return nil
	}
	return flush()
}

var errReplayDone = errors.New("repl: replay horizon reached")

// shipSnapshot streams the newest snapshot to a follower whose position
// predates the retained WAL. The file is pinned for the duration so a
// concurrent checkpoint's GC cannot delete it mid-stream (see
// snapshot.Pin), and the final chunk carries Final=1 so the follower knows
// to bulk-load and re-subscribe its log position to the snapshot horizon.
func (n *Node) shipSnapshot(s *subscriber) error {
	entries, err := snapshot.List(n.store.Dir())
	if err != nil {
		return fmt.Errorf("snapshot list: %w", err)
	}
	if len(entries) == 0 {
		// No snapshot means no checkpoint ever ran, so the WAL is fully
		// retained and the replay path must succeed; nothing to ship.
		return nil
	}
	e := entries[0]
	release := snapshot.Pin(e.Path)
	defer release()

	chunk := make([]int64, 0, wire.MaxSnapshotChunk)
	send := func(final bool) error {
		sc := wire.SnapshotChunk{WALSeq: e.WALSeq, Final: final, Keys: chunk}
		bp := wire.GetBuf()
		*bp = wire.AppendReplSnapshot((*bp)[:0], sc)
		werr := wire.WriteFrame(s.bw, *bp)
		wire.PutBuf(bp)
		if werr != nil {
			return werr
		}
		n.c.snapshotKeysShipped.Add(uint64(len(chunk)))
		chunk = chunk[:0]
		return nil
	}
	_, _, err = snapshot.Load(e.Path, wire.MaxSnapshotChunk, func(keys []int64) error {
		chunk = append(chunk, keys...)
		if len(chunk) >= wire.MaxSnapshotChunk {
			return send(false)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("snapshot load: %w", err)
	}
	// Final chunk (possibly empty — an empty snapshot still moves the
	// follower's log position to the snapshot horizon).
	if err := send(true); err != nil {
		return err
	}
	if err := s.bw.Flush(); err != nil {
		return err
	}
	s.sent = e.WALSeq
	n.c.snapshotsShipped.Add(1)
	n.log.Info("shipped snapshot", "wal_seq", e.WALSeq, "peer", s.conn.RemoteAddr().String())
	return nil
}

// tapFanout distributes one flushed WAL batch to every subscriber. Called
// from the log flusher (via durable.SetWALTap) — it must not block and
// must not retain frames, so each subscriber gets its own copy through a
// buffered channel, and overflow degrades to a disk resync.
func (n *Node) tapFanout(frames []byte, first, last uint64) {
	n.subMu.Lock()
	for s := range n.subs {
		cp := make([]byte, len(frames))
		copy(cp, frames)
		select {
		case s.live <- liveBatch{first: first, last: last, frames: cp}:
		default:
			s.lagged = true
		}
	}
	n.subMu.Unlock()
}
