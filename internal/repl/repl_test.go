package repl

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/wal"
)

func openStore(t *testing.T) *durable.Tree {
	t.Helper()
	d, err := durable.Open(t.TempDir(), durable.Options{Sync: wal.SyncFsync})
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func startLeader(t *testing.T, store *durable.Tree, extra func(*Config)) *Node {
	t.Helper()
	cfg := Config{
		Store:      store,
		Advertise:  "leader-data:1",
		ListenRepl: "127.0.0.1:0",
		Heartbeat:  20 * time.Millisecond,
	}
	if extra != nil {
		extra(&cfg)
	}
	n, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start leader: %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func startFollower(t *testing.T, store *durable.Tree, leaderRepl string, extra func(*Config)) *Node {
	t.Helper()
	cfg := Config{
		Store:       store,
		Advertise:   "follower-data:1",
		ListenRepl:  "127.0.0.1:0",
		ReplicaOf:   leaderRepl,
		Heartbeat:   20 * time.Millisecond,
		AckEvery:    1,
		AckInterval: 5 * time.Millisecond,
	}
	if extra != nil {
		extra(&cfg)
	}
	n, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start follower: %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestLiveReplication: records inserted on the leader appear on a
// follower that subscribed from seq 0, via the live tap path.
func TestLiveReplication(t *testing.T) {
	ls := openStore(t)
	leader := startLeader(t, ls, nil)
	fs := openStore(t)
	follower := startFollower(t, fs, leader.ReplAddr(), nil)

	for i := int64(1); i <= 200; i++ {
		if !ls.Insert(i * 7) {
			t.Fatalf("leader Insert(%d) = false", i*7)
		}
	}
	ls.Delete(7)

	seq := ls.LastSeq()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := follower.WaitApplied(ctx, seq); err != nil {
		t.Fatalf("WaitApplied(%d): %v", seq, err)
	}
	if fs.Len() != 199 || fs.Contains(7) || !fs.Contains(14) {
		t.Fatalf("follower state wrong: len=%d", fs.Len())
	}
	// The follower learned the leader's data address from heartbeats.
	waitFor(t, "leader address", func() bool { return follower.LeaderAddr() == "leader-data:1" })
	if follower.IsLeader() {
		t.Fatal("follower reports leader role")
	}
	if got := follower.Term(); got != 1 {
		t.Fatalf("follower term = %d, want 1", got)
	}
	// The leader saw cumulative acks covering the tail.
	waitFor(t, "leader ack watermark", func() bool { return leader.AckedSeq() >= seq })
}

// TestSnapshotCatchUp: a follower whose position predates the leader's
// retained WAL (checkpoint GC'd the early segments) bulk-loads from a
// shipped snapshot, then rides the live tail.
func TestSnapshotCatchUp(t *testing.T) {
	// Small segments so the checkpoint can GC sealed WAL prefix segments,
	// leaving a retained-WAL gap only a snapshot can bridge.
	ls, err := durable.Open(t.TempDir(), durable.Options{Sync: wal.SyncFsync, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	t.Cleanup(func() { ls.Close() })
	for i := int64(1); i <= 500; i++ {
		ls.Insert(i)
	}
	if _, err := ls.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if ls.WALFirstSeq() <= 1 {
		t.Fatalf("checkpoint did not advance the retained WAL (first=%d); snapshot path not exercised", ls.WALFirstSeq())
	}
	leader := startLeader(t, ls, nil)

	fs := openStore(t)
	follower := startFollower(t, fs, leader.ReplAddr(), nil)

	waitFor(t, "snapshot load", func() bool { return follower.AppliedSeq() >= 500 })
	if fs.Len() != 500 {
		t.Fatalf("follower len = %d after snapshot, want 500", fs.Len())
	}

	// Tail records continue over the same stream.
	ls.Insert(1000)
	ls.Delete(1)
	seq := ls.LastSeq()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := follower.WaitApplied(ctx, seq); err != nil {
		t.Fatalf("WaitApplied tail: %v", err)
	}
	if !fs.Contains(1000) || fs.Contains(1) {
		t.Fatal("tail records not applied after snapshot catch-up")
	}
}

// TestRestartResume: a follower restarted with durable state re-subscribes
// from its log position and receives only the missing tail.
func TestRestartResume(t *testing.T) {
	ls := openStore(t)
	leader := startLeader(t, ls, nil)

	fdir := t.TempDir()
	fs1, err := durable.Open(fdir, durable.Options{Sync: wal.SyncFsync})
	if err != nil {
		t.Fatalf("open follower store: %v", err)
	}
	f1 := startFollower(t, fs1, leader.ReplAddr(), nil)

	for i := int64(1); i <= 100; i++ {
		ls.Insert(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f1.WaitApplied(ctx, ls.LastSeq()); err != nil {
		t.Fatalf("WaitApplied: %v", err)
	}
	f1.Close()
	fs1.Close()

	// More writes while the follower is down.
	for i := int64(101); i <= 150; i++ {
		ls.Insert(i)
	}

	fs2, err := durable.Open(fdir, durable.Options{Sync: wal.SyncFsync})
	if err != nil {
		t.Fatalf("reopen follower store: %v", err)
	}
	t.Cleanup(func() { fs2.Close() })
	if fs2.LastSeq() != 100 {
		t.Fatalf("follower restarted at seq %d, want 100", fs2.LastSeq())
	}
	f2 := startFollower(t, fs2, leader.ReplAddr(), nil)
	if err := f2.WaitApplied(ctx, ls.LastSeq()); err != nil {
		t.Fatalf("WaitApplied after restart: %v", err)
	}
	if fs2.Len() != 150 {
		t.Fatalf("follower len = %d after resume, want 150", fs2.Len())
	}
}

// TestPromotion: an operator promotes a follower; the role flips, the
// term increments, and applied reads don't regress.
func TestPromotion(t *testing.T) {
	ls := openStore(t)
	leader := startLeader(t, ls, nil)
	fs := openStore(t)
	follower := startFollower(t, fs, leader.ReplAddr(), nil)

	ls.Insert(42)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := follower.WaitApplied(ctx, ls.LastSeq()); err != nil {
		t.Fatalf("WaitApplied: %v", err)
	}
	waitFor(t, "term adoption", func() bool { return follower.Term() == 1 })

	term, err := follower.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if term != 2 {
		t.Fatalf("promoted term = %d, want 2", term)
	}
	if !follower.IsLeader() {
		t.Fatal("promoted node not leader")
	}
	if follower.LeaderAddr() != "follower-data:1" {
		t.Fatalf("promoted leader addr = %q", follower.LeaderAddr())
	}
	if _, err := follower.Promote(); !errors.Is(err, ErrNotFollower) {
		t.Fatalf("second Promote err = %v, want ErrNotFollower", err)
	}
	// The new leader takes writes through its store immediately.
	if !fs.Insert(43) {
		t.Fatal("insert on promoted leader failed")
	}
	if err := follower.WaitApplied(ctx, fs.LastSeq()); err != nil {
		t.Fatalf("WaitApplied on new leader: %v", err)
	}
}

// TestSemiSyncWaitReplicated: with RequireAck the leader's gate opens only
// once a follower ack covers the sequence, and times out (ErrAckTimeout)
// when no follower is connected.
func TestSemiSyncWaitReplicated(t *testing.T) {
	ls := openStore(t)
	leader := startLeader(t, ls, func(c *Config) {
		c.RequireAck = true
		c.AckTimeout = 200 * time.Millisecond
	})

	ls.Insert(1)
	ctx := context.Background()
	if err := leader.WaitReplicated(ctx, ls.LastSeq()); !errors.Is(err, ErrAckTimeout) {
		t.Fatalf("WaitReplicated with no follower = %v, want ErrAckTimeout", err)
	}

	fs := openStore(t)
	startFollower(t, fs, leader.ReplAddr(), nil)
	ls.Insert(2)
	done := make(chan error, 1)
	go func() { done <- leader.WaitReplicated(ctx, ls.LastSeq()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitReplicated with follower: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitReplicated never released")
	}
}

// TestLeaseExpiry: a follower cut off from its leader reports the lease
// expired; one that is connected does not.
func TestLeaseExpiry(t *testing.T) {
	ls := openStore(t)
	leader := startLeader(t, ls, nil)
	fs := openStore(t)
	follower := startFollower(t, fs, leader.ReplAddr(), func(c *Config) {
		c.LeaseTimeout = 80 * time.Millisecond
	})

	waitFor(t, "initial heartbeat", func() bool { return follower.LeaderAddr() != "" })
	if follower.LeaseExpired() {
		t.Fatal("lease expired while connected")
	}
	leader.Close()
	waitFor(t, "lease expiry", func() bool { return follower.LeaseExpired() })
}
