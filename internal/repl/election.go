package repl

import (
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// This file is the automatic-failover engine (Config.AutoFailover). There
// are no votes and no quorum: when a follower's heartbeat lease expires it
// probes the configured peers, ranks every reachable non-leader candidate
// by (priority desc, applied seq desc, advertise addr asc), and waits
// rank × HoldOff before self-promoting — the deterministic winner moves
// first and the losers observe its announcement instead of racing it. The
// same status exchange doubles as the leader's peer watch: a leader that
// probes its peers and hears a newer term fences itself and rejoins as a
// follower, which is how a healed partition converges without an operator.

// peerView is one successful probe: the peer's status plus the address we
// dialed it at. Retargeting always uses the dialed address, never the
// peer's self-reported listener — the configured entry may be a proxy
// (tests route every link through internal/netchaos) and bypassing it
// would bypass the fault being injected.
type peerView struct {
	addr string
	st   wire.PeerStatus
}

// candidate is the election-relevant slice of a node's identity. addr is
// the data-plane Advertise string: the one name every node agrees on for
// a given peer no matter which proxy or interface it dialed.
type candidate struct {
	priority int32
	applied  uint64
	addr     string
}

// better reports whether a outranks b: higher priority, then more applied
// log, then the lexically lowest advertise address as the final, total
// tiebreak.
func better(a, b candidate) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	if a.applied != b.applied {
		return a.applied > b.applied
	}
	return a.addr < b.addr
}

// electLoop runs for the node's lifetime when AutoFailover is set. A
// follower checks its lease every heartbeat interval and stands for
// election when it expires; a leader probes the peer list once per lease
// interval so it cannot keep believing it leads after a partition heals
// around a newer term.
func (n *Node) electLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.Heartbeat)
	defer t.Stop()
	var lastLeaderProbe time.Time
	for {
		select {
		case <-n.quit:
			return
		case <-t.C:
		}
		if n.closed.Load() {
			return
		}
		if n.IsLeader() {
			if now := n.now(); now.Sub(lastLeaderProbe) >= n.cfg.LeaseTimeout {
				lastLeaderProbe = now
				n.probePeers()
			}
			continue
		}
		if !n.LeaseExpired() {
			continue
		}
		n.runElection()
	}
}

// runElection is one candidacy: probe the field, defer to any live leader,
// rank ourselves, hold off by rank, and promote if nobody beat us to it.
// Unreachable peers simply don't count — a candidate alone in a partition
// still promotes (see DESIGN for why that is the accepted trade).
func (n *Node) runElection() {
	startTerm := n.term.Load()
	n.electState.Store(stateCandidate)
	n.c.elections.Add(1)
	n.log.Warn("leader lease expired; standing for election",
		"term", startTerm, "priority", n.cfg.Priority, "applied_seq", n.store.LastSeq())

	views := n.probePeers()
	if n.deferToLeader(views) {
		return
	}
	if n.term.Load() != startTerm || n.Role() != Follower {
		// A probe (or an inbound announcement) moved the term under us;
		// back off and let the next tick re-evaluate against it.
		n.electState.Store(stateFollowing)
		return
	}

	if rank := n.rankAmong(views); rank > 0 {
		wait := time.Duration(rank) * n.cfg.HoldOff
		deadline := n.now().Add(wait)
		n.electState.Store(stateHoldingOff)
		n.holdOffUntil.Store(deadline.UnixNano())
		n.log.Info("holding off for higher-ranked candidates", "rank", rank, "wait", wait)
		ok := n.holdOff(deadline, startTerm)
		n.holdOffUntil.Store(0)
		if !ok {
			n.electState.Store(stateFollowing)
			return
		}
		// The favored candidates had their window; look once more before
		// concluding they are gone too.
		views = n.probePeers()
		if n.deferToLeader(views) {
			return
		}
		if n.term.Load() != startTerm || n.Role() != Follower {
			n.electState.Store(stateFollowing)
			return
		}
	}

	term, err := n.promote(true)
	if err != nil {
		n.electState.Store(stateFollowing)
		return
	}
	n.log.Warn("self-promoted after lease expiry", "term", term)
	n.announce()
}

// deferToLeader ends a candidacy when any probe found a live leader at our
// term or newer: follow it instead of standing.
func (n *Node) deferToLeader(views []peerView) bool {
	for _, v := range views {
		if v.st.IsLeader && v.st.Term >= n.term.Load() {
			n.followLeaderFrom(v.addr, v.st)
			return true
		}
	}
	return false
}

// followLeaderFrom points the node at a leader discovered by probing:
// retarget the pull loop at the address we dialed, grant a fresh lease so
// the subscription has time to establish, and sever any stale connection
// so the redial happens now.
func (n *Node) followLeaderFrom(addr string, st wire.PeerStatus) {
	if st.Advertise != "" {
		n.leaderAddr.Store(st.Advertise)
	}
	n.leaderRepl.Store(addr)
	n.lastHeard.Store(n.now().UnixNano())
	n.electState.Store(stateFollowing)
	n.holdOffUntil.Store(0)
	n.log.Info("following discovered leader", "leader", st.Advertise, "repl", addr, "term", st.Term)
	n.severPull()
	n.startFollowerLoop()
}

// holdOff waits until deadline in heartbeat-quarter slices, aborting when
// the node closes, the role or term moves (someone else won), or the lease
// recovers (the old leader was merely slow). Returns true only when the
// full hold-off elapsed with the world unchanged.
func (n *Node) holdOff(deadline time.Time, startTerm uint64) bool {
	step := n.cfg.Heartbeat / 4
	if step <= 0 {
		step = 10 * time.Millisecond
	}
	for n.now().Before(deadline) {
		select {
		case <-n.quit:
			return false
		case <-time.After(step):
		}
		if n.closed.Load() || n.Role() != Follower || n.term.Load() != startTerm || !n.LeaseExpired() {
			return false
		}
	}
	return true
}

// rankAmong counts how many reachable non-leader candidates outrank this
// node. Peers are deduplicated by Advertise (two configured routes to the
// same node must not count it twice), and self-views are skipped the same
// way.
func (n *Node) rankAmong(views []peerView) int {
	self := candidate{priority: n.cfg.Priority, applied: n.store.LastSeq(), addr: n.cfg.Advertise}
	seen := map[string]bool{self.addr: true}
	rank := 0
	for _, v := range views {
		if v.st.IsLeader || v.st.Advertise == "" || seen[v.st.Advertise] {
			continue
		}
		seen[v.st.Advertise] = true
		if better(candidate{v.st.Priority, v.st.AppliedSeq, v.st.Advertise}, self) {
			rank++
		}
	}
	return rank
}

// probePeers exchanges status with every configured peer concurrently and
// returns the successful views, after feeding any news they carried into
// the node: a live leader at a newer term fences and retargets us (the
// zombie-leader healing path), a bare newer term at least fences.
func (n *Node) probePeers() []peerView {
	peers := n.cfg.Peers
	if len(peers) == 0 {
		return nil
	}
	type res struct {
		v  peerView
		ok bool
	}
	ch := make(chan res, len(peers))
	for _, addr := range peers {
		go func(addr string) {
			st, err := n.probePeer(addr)
			ch <- res{peerView{addr: addr, st: st}, err == nil}
		}(addr)
	}
	out := make([]peerView, 0, len(peers))
	for range peers {
		if r := <-ch; r.ok {
			out = append(out, r.v)
		}
	}
	for _, v := range out {
		if v.st.Term > n.term.Load() {
			if v.st.IsLeader {
				n.observeTerm(v.st.Term, v.st.Advertise, v.addr)
			} else {
				n.observeTerm(v.st.Term, "", "")
			}
		}
	}
	return out
}

// probePeer runs one symmetric status exchange against addr: send our
// status, read the peer's. The send doubles as an announcement — the peer
// learns our term and role from the same frame — so a freshly promoted
// leader "announces" by probing.
func (n *Node) probePeer(addr string) (wire.PeerStatus, error) {
	var ps wire.PeerStatus
	d := n.probeTimeout()
	c, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return ps, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(d))
	bp := wire.GetBuf()
	*bp = wire.AppendReplPeerStatus((*bp)[:0], n.localStatus())
	err = wire.WriteFrame(c, *bp)
	wire.PutBuf(bp)
	if err != nil {
		return ps, err
	}
	frame, _, err := wire.ReadFrame(c, nil)
	if err != nil {
		return ps, err
	}
	return wire.DecodeReplPeerStatus(frame)
}

// probeTimeout bounds one probe's dial+exchange: half the lease, clamped
// to [100ms, 2s], so a full probe round always fits inside the failover
// budget yet tolerates a chaos layer injecting latency.
func (n *Node) probeTimeout() time.Duration {
	d := n.cfg.LeaseTimeout / 2
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// localStatus is this node's side of a status exchange.
func (n *Node) localStatus() wire.PeerStatus {
	return wire.PeerStatus{
		Term:       n.term.Load(),
		IsLeader:   n.IsLeader(),
		Priority:   n.cfg.Priority,
		AppliedSeq: n.store.LastSeq(),
		Advertise:  n.cfg.Advertise,
		ReplAddr:   n.ReplAddr(),
	}
}

// announce pushes the new leader's status at every peer at once. Best
// effort: a peer that is unreachable right now discovers the new term on
// its own next probe; one that answers with an even newer term fences us
// straight back (probePeers-style processing via the exchange itself is
// not needed — the reply is only logged, and a newer-term reply will also
// reach us through acks, subscribes, or our own leader watch).
func (n *Node) announce() {
	var wg sync.WaitGroup
	for _, addr := range n.cfg.Peers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			st, err := n.probePeer(addr)
			if err != nil {
				n.log.Info("leader announcement not delivered", "peer", addr, "err", err)
				return
			}
			if st.Term > n.term.Load() {
				if st.IsLeader {
					n.observeTerm(st.Term, st.Advertise, addr)
				} else {
					n.observeTerm(st.Term, "", "")
				}
			}
		}(addr)
	}
	wg.Wait()
}
