package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/rtrace"
	"repro/internal/wal"
	"repro/internal/wire"
)

// followerLoop is the pull side: dial the leader's replication listener,
// subscribe from the local log position, and apply whatever arrives —
// snapshot chunks into a bulk load, WAL frames record-by-record — until
// the connection drops (redial with backoff) or the node is promoted or
// closed.
func (n *Node) followerLoop() {
	defer n.wg.Done()
	backoff := 100 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for {
		if n.closed.Load() || n.Role() != Follower {
			return
		}
		err := n.pullOnce()
		if n.closed.Load() || n.Role() != Follower {
			return
		}
		if err != nil {
			n.log.Warn("replication pull failed; retrying", "retry_in", backoff, "err", err)
		}
		n.c.reconnects.Add(1)
		select {
		case <-time.After(backoff):
		case <-n.quit:
			return
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// pullOnce runs one replication connection to completion, dialing the
// current leader (elections and probes may have moved it off the
// configured ReplicaOf).
func (n *Node) pullOnce() error {
	target := n.replicaTarget()
	if target == "" {
		// A deposed original leader that has not yet learned who won; the
		// election loop's probes will fill the target in.
		return errors.New("repl: no known leader to subscribe to")
	}
	c, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		return err
	}
	n.followerConn.Lock()
	if n.closed.Load() || n.Role() != Follower {
		n.followerConn.Unlock()
		c.Close()
		return nil
	}
	n.followerConn.c = c
	n.followerConn.Unlock()
	defer func() {
		n.followerConn.Lock()
		n.followerConn.c = nil
		n.followerConn.Unlock()
		c.Close()
	}()

	bw := bufio.NewWriterSize(c, 4<<10)
	sub := wire.Subscribe{FromSeq: n.store.LastSeq(), Term: n.term.Load()}
	bp := wire.GetBuf()
	*bp = wire.AppendReplSubscribe((*bp)[:0], sub)
	err = wire.WriteFrame(bw, *bp)
	wire.PutBuf(bp)
	if err != nil {
		return fmt.Errorf("subscribe: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("subscribe: %w", err)
	}

	st := &applyState{
		n:       n,
		bw:      bw,
		applied: n.store.LastSeq(),
		lastAck: n.store.LastSeq(),
	}
	n.applied.Store(st.applied)

	br := bufio.NewReaderSize(c, 64<<10)
	ackTick := time.NewTicker(n.cfg.AckInterval)
	defer ackTick.Stop()

	var scratch []byte
	for {
		// Bound each read by the lease: a leader that goes silent for the
		// full lease window is reported lost; the loop keeps waiting (the
		// role only changes via explicit promotion) but the error path
		// re-dials, which distinguishes a dead TCP peer from a slow one.
		c.SetReadDeadline(time.Now().Add(n.cfg.LeaseTimeout))
		var frame []byte
		frame, scratch, err = wire.ReadFrame(br, scratch)
		if err != nil {
			if st.snapKeys != nil {
				return fmt.Errorf("stream ended mid-snapshot: %w", err)
			}
			return err
		}
		if err := st.handleFrame(frame); err != nil {
			return err
		}
		// Windowed cumulative acks: every AckEvery records, or on the
		// interval tick, whichever comes first.
		select {
		case <-ackTick.C:
			if err := st.sendAck(true); err != nil {
				return err
			}
		default:
			if err := st.sendAck(false); err != nil {
				return err
			}
		}
		if n.closed.Load() || n.Role() != Follower {
			return nil
		}
	}
}

// applyState is the per-connection apply cursor.
type applyState struct {
	n       *Node
	bw      *bufio.Writer
	applied uint64 // local log position (== store.LastSeq(); cached)
	lastAck uint64 // newest seq covered by a sent ack
	// snapKeys accumulates an in-flight snapshot transfer (nil when none).
	snapKeys   []int64
	snapWALSeq uint64
}

func (st *applyState) handleFrame(frame []byte) error {
	n := st.n
	switch k, _ := wire.ReplKind(frame); k {
	case wire.ReplFrames:
		fb, err := wire.DecodeReplFrames(frame)
		if err != nil {
			return err
		}
		if st.snapKeys != nil {
			return errors.New("repl: WAL frames arrived mid-snapshot transfer")
		}
		// Term fencing: frames from a term older than ours come from a
		// deposed leader (or a relay that has not heard the news). Refuse
		// the whole stream — the lease must not refresh and nothing may be
		// applied from a superseded history.
		if fb.Term < n.term.Load() {
			n.c.fencedFrames.Add(1)
			return fmt.Errorf("repl: rejecting frames from stale term %d (ours %d)", fb.Term, n.term.Load())
		}
		// Heartbeat-receive failpoint: drop the batch before it refreshes
		// the lease, as a blackholed link would.
		if fp := n.cfg.Failpoints; fp != nil && fp.Hit(FPHeartbeatRecv) {
			return nil
		}
		n.lastHeard.Store(n.now().UnixNano())
		n.leaderCommit.Store(fb.CommitSeq)
		if fb.Addr != "" {
			n.leaderAddr.Store(fb.Addr)
		}
		n.observeTerm(fb.Term, fb.Addr, "")
		return st.applyFrames(fb)
	case wire.ReplSnapshot:
		sc, err := wire.DecodeReplSnapshot(frame)
		if err != nil {
			return err
		}
		if fp := n.cfg.Failpoints; fp != nil && fp.Hit(FPHeartbeatRecv) {
			return nil
		}
		return st.applySnapshotChunk(sc)
	default:
		return fmt.Errorf("repl: unexpected frame kind %d from leader", k)
	}
}

// applyFrames applies one ReplFrames batch: decode each verbatim WAL
// frame, skip what the local log already holds (catch-up overlap is by
// design — see forwardLive), apply the rest in order.
func (st *applyState) applyFrames(fb wire.FrameBatch) error {
	frames := fb.Frames
	var applied uint32
	start := time.Now()
	for len(frames) > 0 {
		r, adv, err := wal.DecodeFrame(frames)
		if err != nil {
			return fmt.Errorf("repl: bad WAL frame in stream: %w", err)
		}
		frames = frames[adv:]
		if r.Seq <= st.applied {
			continue // overlap with what we already hold: idempotent skip
		}
		if err := st.n.store.ApplyRecord(r); err != nil {
			return fmt.Errorf("repl: apply seq %d: %w", r.Seq, err)
		}
		st.applied = r.Seq
		applied++
	}
	if applied > 0 {
		st.n.c.recordsApplied.Add(uint64(applied))
		st.n.applied.Store(st.applied)
		st.n.wakeApplied()
		// A batch stamped with a trace context covers a sampled mutation on
		// the leader: record this apply as a span of that trace, parented
		// under the leader's request span (Arg = the sampled WAL seq).
		if fb.Trace.Sampled() {
			st.n.cfg.Trace.Span(fb.Trace, rtrace.KApply, start, int64(fb.TraceSeq))
		}
	}
	return nil
}

// applySnapshotChunk accumulates snapshot chunks and bulk-loads on the
// final one. Snapshot catch-up requires an empty local store — the
// durable layer enforces it; a non-empty follower that is too far behind
// must be wiped by the operator (documented in DESIGN).
func (st *applyState) applySnapshotChunk(sc wire.SnapshotChunk) error {
	n := st.n
	n.lastHeard.Store(n.now().UnixNano())
	if st.snapKeys == nil {
		st.snapKeys = make([]int64, 0, len(sc.Keys))
		st.snapWALSeq = sc.WALSeq
	}
	if sc.WALSeq != st.snapWALSeq {
		return fmt.Errorf("repl: snapshot transfer changed horizon mid-stream (%d -> %d)", st.snapWALSeq, sc.WALSeq)
	}
	st.snapKeys = append(st.snapKeys, sc.Keys...)
	if !sc.Final {
		return nil
	}
	keys := st.snapKeys
	st.snapKeys = nil
	if err := n.store.ApplySnapshot(keys, st.snapWALSeq); err != nil {
		return fmt.Errorf("repl: snapshot bulk load: %w", err)
	}
	st.applied = st.snapWALSeq
	st.lastAck = 0 // force an ack so the leader learns the new position
	n.applied.Store(st.applied)
	n.wakeApplied()
	n.c.snapshotLoads.Add(1)
	n.log.Info("loaded snapshot", "wal_seq", st.snapWALSeq, "keys", len(keys))
	return st.sendAck(true)
}

// sendAck sends one cumulative ReplAck covering everything applied so
// far. force bypasses the record-count window (interval ticks, snapshot
// completion); otherwise an ack goes out once AckEvery records have been
// applied since the last one.
func (st *applyState) sendAck(force bool) error {
	if st.applied == st.lastAck {
		return nil
	}
	if !force && st.applied-st.lastAck < uint64(st.n.cfg.AckEvery) {
		return nil
	}
	// The ack carries the highest term we have observed: a deposed leader
	// still holding this connection sees a newer term than its own and
	// must fence itself rather than count the ack (see Node.noteAck).
	ack := wire.Ack{
		AppliedSeq: st.applied,
		DurableSeq: st.n.store.DurableSeq(),
		Term:       st.n.term.Load(),
	}
	bp := wire.GetBuf()
	*bp = wire.AppendReplAck((*bp)[:0], ack)
	err := wire.WriteFrame(st.bw, *bp)
	wire.PutBuf(bp)
	if err != nil {
		return err
	}
	if err := st.bw.Flush(); err != nil {
		return err
	}
	st.lastAck = st.applied
	st.n.c.acksSent.Add(1)
	return nil
}
