// Package repl turns two or more bstserve processes into a WAL-shipping
// replication cluster: one leader takes writes, streams committed WAL
// frames to followers, and followers apply them to their own durable
// stores — tree first, then local WAL, exactly like a leader-side
// mutation — so any follower can be promoted without replaying anything.
//
// # Shape
//
// The WAL is already a replication log: seq-dense, CRC-framed, idempotent
// to re-apply. The leader taps the log's flusher (durable.SetWALTap) and
// fans the verbatim frame bytes out to subscriber connections; the frames
// a follower receives are the same bytes the leader's disk holds. A
// follower that is too far behind the leader's retained WAL (a checkpoint
// GC'd the segments it needs) catches up from the leader's newest
// snapshot instead — streamed in chunks, bulk-loaded with the balanced
// BFS loader, pinned on the leader (snapshot.Pin) so a concurrent
// checkpoint cannot GC it mid-stream — and then rides the WAL tail.
//
// # Roles, terms, leases
//
// A node is leader or follower; the role only changes through explicit
// operator-driven promotion (POST /promote on the admin port — no
// automatic elections, no quorum; this is a primary/backup design, not
// consensus). Each promotion increments a term number that rides every
// ReplFrames batch; a follower adopts any higher term it hears and
// records the sender as leader. The lease is the follower's view of
// leader liveness: heartbeats (empty ReplFrames) arrive every Heartbeat
// interval, and a follower that has heard nothing for LeaseTimeout
// reports the lease expired through Health/metrics so operators (and the
// failover tooling) know promotion is warranted. Followers refuse writes
// regardless of lease state — wire.StatusNotLeader carries the leader's
// data address, so clients re-aim instead of guessing.
//
// # Ack windows and durability
//
// Followers acknowledge cumulatively: one ReplAck covers every record at
// or below its sequence — the replication analogue of the WAL's group
// commit. With RequireAck (semi-sync) the leader's server withholds write
// acknowledgements until a follower ack covers them, so "the client saw
// OK" implies "a follower has it" and a SIGKILLed leader loses nothing
// that was acknowledged; without it, acked-but-unreplicated writes are
// bounded by the follower's ack window (AckEvery records / AckInterval).
package repl

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/logx"
	"repro/internal/metrics"
	"repro/internal/rtrace"
)

// Role is a node's current replication role.
type Role int32

const (
	Follower Role = iota
	Leader
)

func (r Role) String() string {
	if r == Leader {
		return "leader"
	}
	return "follower"
}

// ErrAckTimeout is returned by WaitReplicated when no follower
// acknowledged the sequence within AckTimeout — replication is degraded
// (follower down or lagging). The server maps it to a retryable status:
// the write is applied and locally durable, but not yet safe to
// acknowledge under semi-sync rules.
var ErrAckTimeout = errors.New("repl: no follower ack within timeout")

// ErrNotFollower is returned by Promote on a node that is already leader.
var ErrNotFollower = errors.New("repl: already leader")

// Config configures a Node. Store and Advertise are required.
type Config struct {
	// Store is the node's durable tree (the same one the server fronts).
	Store *durable.Tree
	// Advertise is the data-plane address clients should be redirected to
	// when this node is (or becomes) leader.
	Advertise string
	// ListenRepl is the replication listener address. Required for a
	// leader; optional for a follower (serving it lets the follower feed
	// other subscribers after promotion).
	ListenRepl string
	// ReplicaOf is the leader's replication address. Empty means start as
	// leader.
	ReplicaOf string
	// Heartbeat is the leader's keepalive interval (default 200ms).
	Heartbeat time.Duration
	// LeaseTimeout is how long a follower tolerates silence before
	// reporting the leader lost (default 5×Heartbeat).
	LeaseTimeout time.Duration
	// AckEvery is the follower's ack window in records: one cumulative
	// ReplAck per AckEvery applied records (default 256).
	AckEvery int
	// AckInterval bounds how stale a follower's ack may go under a trickle
	// of records (default 50ms).
	AckInterval time.Duration
	// RequireAck enables semi-synchronous mode on the leader: write
	// acknowledgements wait for a follower ack (see WaitReplicated).
	RequireAck bool
	// AckTimeout bounds the semi-sync wait (default 2s).
	AckTimeout time.Duration
	// Trace, when non-nil, links replication into request tracing: a
	// leader stamps shipped frame batches with the trace context of any
	// sampled mutation they cover (consulting the recorder's sampled-seq
	// table), and a follower records a KApply span — parented under the
	// leader's request span — for every stamped batch it applies. Nil
	// disables the linkage at a nil-check's cost.
	Trace *rtrace.Recorder
	// Logger, when non-nil, receives one structured record per notable
	// event. Every record is stamped — at emit time, not construction —
	// with the node's current role and term, so lines logged across a
	// failover carry the identity the node had when each line happened.
	Logger *slog.Logger
}

// Node is one member of a replication cluster. Create with Start; wire it
// into the server via server.Config.Cluster and the admin endpoints.
type Node struct {
	cfg   Config
	store *durable.Tree
	log   *slog.Logger

	role       atomic.Int32
	term       atomic.Uint64
	leaderAddr atomic.Value // string: the current leader's data address

	// applied tracks the follower's apply progress; on a leader the store's
	// own LastSeq is authoritative (every local mutation is "applied").
	applied atomic.Uint64
	// lastHeard is the unix-nano timestamp of the last frame from the
	// leader (follower role).
	lastHeard atomic.Int64
	// leaderCommit is the leader's durable horizon as of the last
	// ReplFrames batch (follower role); applied lag is measured against it.
	leaderCommit atomic.Uint64

	// notify is closed and replaced whenever applied (follower) or the
	// local WAL (leader, via the tap) advances; WaitApplied parks on it.
	notifyMu sync.Mutex
	notifyCh chan struct{}

	// ackCh is the same copy-on-notify channel for follower acks
	// (WaitReplicated parks on it); maxAck is the newest sequence any
	// follower has acknowledged as applied.
	ackMu  sync.Mutex
	ackCh  chan struct{}
	maxAck atomic.Uint64

	subMu sync.Mutex
	subs  map[*subscriber]struct{}

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool
	quit   chan struct{}

	// followerCancel interrupts the follower loop's current connection on
	// Promote/Close.
	followerConn struct {
		sync.Mutex
		c net.Conn
	}

	c counters
}

type counters struct {
	recordsSent         atomic.Uint64
	batchesSent         atomic.Uint64
	heartbeatsSent      atomic.Uint64
	recordsApplied      atomic.Uint64
	acksSent            atomic.Uint64
	acksReceived        atomic.Uint64
	snapshotsShipped    atomic.Uint64
	snapshotKeysShipped atomic.Uint64
	snapshotLoads       atomic.Uint64
	resyncs             atomic.Uint64
	reconnects          atomic.Uint64
	ackTimeouts         atomic.Uint64
	promotions          atomic.Uint64
}

// Start creates a node, starts its replication listener (when configured)
// and, for a follower, the catch-up/apply loop.
func Start(cfg Config) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("repl: Config.Store is required")
	}
	if cfg.Advertise == "" {
		return nil, errors.New("repl: Config.Advertise is required")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 200 * time.Millisecond
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 5 * cfg.Heartbeat
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 256
	}
	if cfg.AckInterval <= 0 {
		cfg.AckInterval = 50 * time.Millisecond
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 2 * time.Second
	}
	n := &Node{
		cfg:      cfg,
		store:    cfg.Store,
		notifyCh: make(chan struct{}),
		ackCh:    make(chan struct{}),
		subs:     make(map[*subscriber]struct{}),
		quit:     make(chan struct{}),
	}
	// Role and term flip during failover; resolve them per record rather
	// than freezing them into the handler at construction.
	n.log = logx.Dynamic(cfg.Logger, func() []slog.Attr {
		return []slog.Attr{
			slog.String("role", n.Role().String()),
			slog.Uint64("term", n.term.Load()),
		}
	})
	if cfg.Logger == nil {
		n.log = logx.Discard()
	}
	if cfg.ReplicaOf == "" {
		n.role.Store(int32(Leader))
		n.term.Store(1)
		n.leaderAddr.Store(cfg.Advertise)
	} else {
		n.role.Store(int32(Follower))
		n.leaderAddr.Store("") // unknown until the first heartbeat
		n.applied.Store(n.store.LastSeq())
		n.lastHeard.Store(time.Now().UnixNano())
	}

	// The tap fans committed frames out to subscribers and doubles as the
	// "log advanced" wakeup for applied-seq waiters. It is installed on
	// every role: a follower's own flushes feed downstream subscribers
	// (chained replication) and, after promotion, the listener is already
	// live.
	n.store.SetWALTap(func(frames []byte, first, last uint64) {
		n.tapFanout(frames, first, last)
		n.wakeApplied()
	})

	if cfg.ListenRepl != "" {
		ln, err := net.Listen("tcp", cfg.ListenRepl)
		if err != nil {
			return nil, fmt.Errorf("repl: listen %s: %w", cfg.ListenRepl, err)
		}
		n.ln = ln
		n.wg.Add(1)
		go n.acceptLoop(ln)
	}
	if cfg.ReplicaOf != "" {
		n.wg.Add(1)
		go n.followerLoop()
	}
	return n, nil
}

// Role returns the node's current role.
func (n *Node) Role() Role { return Role(n.role.Load()) }

// IsLeader reports whether the node currently takes writes.
func (n *Node) IsLeader() bool { return n.Role() == Leader }

// Term returns the node's current term number.
func (n *Node) Term() uint64 { return n.term.Load() }

// LeaderAddr returns the data address of the cluster's current leader as
// this node knows it ("" when a follower has not heard a heartbeat yet).
func (n *Node) LeaderAddr() string {
	a, _ := n.leaderAddr.Load().(string)
	return a
}

// AppliedSeq returns the newest sequence number reflected in this node's
// tree: the WAL's last seq on a leader, the apply loop's progress on a
// follower.
func (n *Node) AppliedSeq() uint64 {
	if n.IsLeader() {
		return n.store.LastSeq()
	}
	return n.applied.Load()
}

// AckedSeq returns the newest sequence number any follower has
// acknowledged as applied (leader; 0 on a follower).
func (n *Node) AckedSeq() uint64 { return n.maxAck.Load() }

// LeaseExpired reports whether a follower has gone LeaseTimeout without
// hearing from its leader. Always false on a leader.
func (n *Node) LeaseExpired() bool {
	if n.IsLeader() {
		return false
	}
	return time.Since(time.Unix(0, n.lastHeard.Load())) > n.cfg.LeaseTimeout
}

// LeaseRemaining returns how much of the heartbeat lease is left before
// this follower declares the leader lost (floored at 0 once expired). A
// leader reports its full lease: it cannot lose itself.
func (n *Node) LeaseRemaining() time.Duration {
	if n.IsLeader() {
		return n.cfg.LeaseTimeout
	}
	rem := n.cfg.LeaseTimeout - time.Since(time.Unix(0, n.lastHeard.Load()))
	return max(rem, 0)
}

// LeaderCommit returns the newest WAL sequence this node has heard the
// leader commit: its own log horizon on a leader, the commit horizon of
// the last ReplFrames batch on a follower. AppliedSeq lagging this is the
// follower's replication staleness.
func (n *Node) LeaderCommit() uint64 {
	if n.IsLeader() {
		return n.store.LastSeq()
	}
	return n.leaderCommit.Load()
}

// ReplAddr returns the bound replication listener address ("" when the
// node has no listener). Useful with ListenRepl ":0".
func (n *Node) ReplAddr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Followers returns the number of connected replication subscribers.
func (n *Node) Followers() int {
	n.subMu.Lock()
	defer n.subMu.Unlock()
	return len(n.subs)
}

// wakeApplied re-arms the applied-seq notification channel.
func (n *Node) wakeApplied() {
	n.notifyMu.Lock()
	close(n.notifyCh)
	n.notifyCh = make(chan struct{})
	n.notifyMu.Unlock()
}

func (n *Node) appliedWake() <-chan struct{} {
	n.notifyMu.Lock()
	defer n.notifyMu.Unlock()
	return n.notifyCh
}

// noteAck folds a follower ack into the leader's watermark and wakes
// semi-sync waiters.
func (n *Node) noteAck(applied uint64) {
	n.c.acksReceived.Add(1)
	for {
		old := n.maxAck.Load()
		if applied <= old {
			return
		}
		if n.maxAck.CompareAndSwap(old, applied) {
			break
		}
	}
	n.ackMu.Lock()
	close(n.ackCh)
	n.ackCh = make(chan struct{})
	n.ackMu.Unlock()
}

func (n *Node) ackWake() <-chan struct{} {
	n.ackMu.Lock()
	defer n.ackMu.Unlock()
	return n.ackCh
}

// WaitApplied blocks until this node's applied sequence reaches seq or
// ctx is done — the read-your-writes wait behind OpLookupAt: a client
// that saw seq acked can demand a follower read reflect it.
func (n *Node) WaitApplied(ctx context.Context, seq uint64) error {
	for {
		if n.AppliedSeq() >= seq {
			return nil
		}
		wake := n.appliedWake()
		// Re-check after arming: the apply may have landed between the
		// load and the channel fetch.
		if n.AppliedSeq() >= seq {
			return nil
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		case <-n.quit:
			return errors.New("repl: node closed")
		}
	}
}

// WaitReplicated blocks until a follower has acknowledged seq, the
// semi-sync gate for write acknowledgements. It returns immediately when
// the node is not a semi-sync leader; ErrAckTimeout when AckTimeout
// passes first (the caller should answer with a retryable status, not an
// ack); ctx errors pass through.
func (n *Node) WaitReplicated(ctx context.Context, seq uint64) error {
	if !n.cfg.RequireAck || !n.IsLeader() || seq == 0 {
		return nil
	}
	t := time.NewTimer(n.cfg.AckTimeout)
	defer t.Stop()
	for {
		if n.maxAck.Load() >= seq {
			return nil
		}
		wake := n.ackWake()
		if n.maxAck.Load() >= seq {
			return nil
		}
		select {
		case <-wake:
		case <-t.C:
			n.c.ackTimeouts.Add(1)
			return ErrAckTimeout
		case <-ctx.Done():
			return ctx.Err()
		case <-n.quit:
			return errors.New("repl: node closed")
		}
	}
}

// Promote turns a follower into the leader: the pull loop stops, the term
// increments, and the node starts answering as leader (its replication
// listener, if any, keeps serving subscribers — now with the new term).
// Explicitly operator-driven; the caller is the admin endpoint.
func (n *Node) Promote() (term uint64, err error) {
	if n.closed.Load() {
		return 0, errors.New("repl: node closed")
	}
	if !n.role.CompareAndSwap(int32(Follower), int32(Leader)) {
		return n.term.Load(), ErrNotFollower
	}
	// Sever the pull connection; the follower loop observes the role flip
	// and exits instead of redialing.
	n.followerConn.Lock()
	if c := n.followerConn.c; c != nil {
		c.Close()
	}
	n.followerConn.Unlock()
	term = n.term.Add(1)
	n.leaderAddr.Store(n.cfg.Advertise)
	n.c.promotions.Add(1)
	// Catch the applied watermark up to the local log so reads gated on
	// WaitApplied never regress across the role change.
	n.applied.Store(n.store.LastSeq())
	n.wakeApplied()
	n.log.Info("promoted to leader", "applied_seq", n.store.LastSeq())
	return term, nil
}

// Close stops the listener, the follower loop, and every subscriber
// stream. The store is not closed — its lifecycle belongs to the caller.
func (n *Node) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	close(n.quit)
	n.store.SetWALTap(nil)
	if n.ln != nil {
		n.ln.Close()
	}
	n.followerConn.Lock()
	if c := n.followerConn.c; c != nil {
		c.Close()
	}
	n.followerConn.Unlock()
	n.subMu.Lock()
	for s := range n.subs {
		s.conn.Close()
	}
	n.subMu.Unlock()
	n.wg.Wait()
	return nil
}

// Stats is a point-in-time snapshot of the node's replication counters.
type Stats struct {
	Role                Role
	Term                uint64
	LeaderAddr          string
	AppliedSeq          uint64
	AckedSeq            uint64
	Followers           int
	LeaseExpired        bool
	RecordsSent         uint64
	BatchesSent         uint64
	HeartbeatsSent      uint64
	RecordsApplied      uint64
	AcksSent            uint64
	AcksReceived        uint64
	SnapshotsShipped    uint64
	SnapshotKeysShipped uint64
	SnapshotLoads       uint64
	Resyncs             uint64
	Reconnects          uint64
	AckTimeouts         uint64
	Promotions          uint64
}

// ReplStats returns a snapshot of the node's counters.
func (n *Node) ReplStats() Stats {
	return Stats{
		Role:                n.Role(),
		Term:                n.Term(),
		LeaderAddr:          n.LeaderAddr(),
		AppliedSeq:          n.AppliedSeq(),
		AckedSeq:            n.AckedSeq(),
		Followers:           n.Followers(),
		LeaseExpired:        n.LeaseExpired(),
		RecordsSent:         n.c.recordsSent.Load(),
		BatchesSent:         n.c.batchesSent.Load(),
		HeartbeatsSent:      n.c.heartbeatsSent.Load(),
		RecordsApplied:      n.c.recordsApplied.Load(),
		AcksSent:            n.c.acksSent.Load(),
		AcksReceived:        n.c.acksReceived.Load(),
		SnapshotsShipped:    n.c.snapshotsShipped.Load(),
		SnapshotKeysShipped: n.c.snapshotKeysShipped.Load(),
		SnapshotLoads:       n.c.snapshotLoads.Load(),
		Resyncs:             n.c.resyncs.Load(),
		Reconnects:          n.c.reconnects.Load(),
		AckTimeouts:         n.c.ackTimeouts.Load(),
		Promotions:          n.c.promotions.Load(),
	}
}

// MetricsHook folds the node's replication telemetry into a registry
// snapshot (register with reg.AddHook(node.MetricsHook)). Series follow
// the repl_* naming convention alongside the wal_*/snapshot_* families.
func (n *Node) MetricsHook(s *metrics.Snapshot) {
	st := n.ReplStats()
	if st.Role == Leader {
		s.Gauges["repl_is_leader"] = 1
	} else {
		s.Gauges["repl_is_leader"] = 0
	}
	s.Gauges["repl_term"] = float64(st.Term)
	s.Gauges["repl_applied_seq"] = float64(st.AppliedSeq)
	s.Gauges["repl_acked_seq"] = float64(st.AckedSeq)
	s.Gauges["repl_followers_connected"] = float64(st.Followers)
	// Lag: what a leader still has to ship (against its own log), or what
	// a follower still has to apply (against the leader's commit horizon).
	if st.Role == Leader {
		last := n.store.LastSeq()
		lag := float64(0)
		if st.Followers > 0 && last > st.AckedSeq {
			lag = float64(last - st.AckedSeq)
		}
		s.Gauges["repl_lag_records"] = lag
	} else {
		s.Gauges["repl_lag_records"] = float64(n.leaderCommit.Load()) - float64(st.AppliedSeq)
	}
	if st.LeaseExpired {
		s.Gauges["repl_lease_expired"] = 1
	} else {
		s.Gauges["repl_lease_expired"] = 0
	}
	s.Gauges["repl_lease_remaining_seconds"] = n.LeaseRemaining().Seconds()
	s.External["repl_records_sent_total"] += st.RecordsSent
	s.External["repl_batches_sent_total"] += st.BatchesSent
	s.External["repl_heartbeats_sent_total"] += st.HeartbeatsSent
	s.External["repl_records_applied_total"] += st.RecordsApplied
	s.External["repl_acks_sent_total"] += st.AcksSent
	s.External["repl_acks_received_total"] += st.AcksReceived
	s.External["repl_snapshots_shipped_total"] += st.SnapshotsShipped
	s.External["repl_snapshot_keys_shipped_total"] += st.SnapshotKeysShipped
	s.External["repl_snapshot_loads_total"] += st.SnapshotLoads
	s.External["repl_resyncs_total"] += st.Resyncs
	s.External["repl_reconnects_total"] += st.Reconnects
	s.External["repl_ack_timeouts_total"] += st.AckTimeouts
	s.External["repl_promotions_total"] += st.Promotions
}
