// Package repl turns two or more bstserve processes into a WAL-shipping
// replication cluster: one leader takes writes, streams committed WAL
// frames to followers, and followers apply them to their own durable
// stores — tree first, then local WAL, exactly like a leader-side
// mutation — so any follower can be promoted without replaying anything.
//
// # Shape
//
// The WAL is already a replication log: seq-dense, CRC-framed, idempotent
// to re-apply. The leader taps the log's flusher (durable.SetWALTap) and
// fans the verbatim frame bytes out to subscriber connections; the frames
// a follower receives are the same bytes the leader's disk holds. A
// follower that is too far behind the leader's retained WAL (a checkpoint
// GC'd the segments it needs) catches up from the leader's newest
// snapshot instead — streamed in chunks, bulk-loaded with the balanced
// BFS loader, pinned on the leader (snapshot.Pin) so a concurrent
// checkpoint cannot GC it mid-stream — and then rides the WAL tail.
//
// # Roles, terms, leases, elections
//
// A node is leader or follower; the role changes through operator-driven
// promotion (POST /promote on the admin port) or, with AutoFailover,
// through lease-expiry elections (still no quorum; this is a
// primary/backup design, not consensus). Each promotion increments a term
// number that rides every ReplFrames batch; a follower adopts any higher
// term it hears and records the sender as leader. The lease is the
// follower's view of leader liveness: heartbeats (empty ReplFrames)
// arrive every Heartbeat interval, and a follower that has heard nothing
// for LeaseTimeout reports the lease expired through Health/metrics —
// and, with AutoFailover, stands for election: it probes Peers with a
// ReplStatus exchange, ranks the reachable candidates deterministically
// by (Priority, applied seq, Advertise address), holds off by its rank ×
// HoldOff, and self-promotes only if no newer-term leader appeared first;
// losers re-subscribe to the winner. Followers refuse writes regardless
// of lease state — wire.StatusNotLeader carries the leader's data
// address, so clients re-aim instead of guessing.
//
// # Term fencing
//
// A deposed leader that comes back is refused everywhere: followers
// reject ReplFrames carrying a term lower than their own, a semi-sync
// leader refuses to count acks stamped with a newer term (they are the
// proof it was deposed), and the moment a node observes a higher term
// while believing itself leader it steps down, fences its store
// (durable.Fence — even in-flight writes cannot be acknowledged), answers
// mutations with wire.StatusFenced, and rejoins as a follower of the
// winner. Leaders with Peers configured probe them on a lease cadence so
// a healed partition cannot leave a zombie leader serving stale reads and
// unackable writes indefinitely.
//
// # Ack windows and durability
//
// Followers acknowledge cumulatively: one ReplAck covers every record at
// or below its sequence — the replication analogue of the WAL's group
// commit. With RequireAck (semi-sync) the leader's server withholds write
// acknowledgements until a follower ack covers them, so "the client saw
// OK" implies "a follower has it" and a SIGKILLed leader loses nothing
// that was acknowledged; without it, acked-but-unreplicated writes are
// bounded by the follower's ack window (AckEvery records / AckInterval).
package repl

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/failpoint"
	"repro/internal/logx"
	"repro/internal/metrics"
	"repro/internal/rtrace"
)

// Role is a node's current replication role.
type Role int32

const (
	Follower Role = iota
	Leader
)

func (r Role) String() string {
	if r == Leader {
		return "leader"
	}
	return "follower"
}

// ErrAckTimeout is returned by WaitReplicated when no follower
// acknowledged the sequence within AckTimeout — replication is degraded
// (follower down or lagging). The server maps it to a retryable status:
// the write is applied and locally durable, but not yet safe to
// acknowledge under semi-sync rules.
var ErrAckTimeout = errors.New("repl: no follower ack within timeout")

// ErrNotFollower is returned by Promote on a node that is already leader.
var ErrNotFollower = errors.New("repl: already leader")

// Failpoint site names (Config.Failpoints) for deterministic fault
// injection on the heartbeat path: FPHeartbeatSend drops an outgoing
// leader heartbeat before it is written, FPHeartbeatRecv drops an incoming
// ReplFrames batch before the follower processes it (the lease does not
// refresh), so tests can starve a lease without touching the network.
const (
	FPHeartbeatSend = "repl/heartbeat-send"
	FPHeartbeatRecv = "repl/heartbeat-recv"
)

// Election states surfaced through ElectionState/health/metrics.
const (
	stateFollowing int32 = iota
	stateCandidate
	stateHoldingOff
	statePromoted
)

// Config configures a Node. Store and Advertise are required.
type Config struct {
	// Store is the node's durable tree (the same one the server fronts).
	Store *durable.Tree
	// Advertise is the data-plane address clients should be redirected to
	// when this node is (or becomes) leader.
	Advertise string
	// ListenRepl is the replication listener address. Required for a
	// leader; optional for a follower (serving it lets the follower feed
	// other subscribers after promotion).
	ListenRepl string
	// ReplicaOf is the leader's replication address. Empty means start as
	// leader.
	ReplicaOf string
	// Heartbeat is the leader's keepalive interval (default 200ms).
	Heartbeat time.Duration
	// LeaseTimeout is how long a follower tolerates silence before
	// reporting the leader lost (default 5×Heartbeat).
	LeaseTimeout time.Duration
	// AckEvery is the follower's ack window in records: one cumulative
	// ReplAck per AckEvery applied records (default 256).
	AckEvery int
	// AckInterval bounds how stale a follower's ack may go under a trickle
	// of records (default 50ms).
	AckInterval time.Duration
	// RequireAck enables semi-synchronous mode on the leader: write
	// acknowledgements wait for a follower ack (see WaitReplicated).
	RequireAck bool
	// AckTimeout bounds the semi-sync wait (default 2s).
	AckTimeout time.Duration
	// Priority ranks this node in automatic elections: higher wins; ties
	// break on highest applied sequence, then lowest Advertise address.
	Priority int32
	// Peers lists the replication-listener addresses of the other cluster
	// members as this node dials them (they may be proxies — see
	// internal/netchaos). Elections probe these addresses; a loser
	// re-subscribes to the winner through its configured address, and a
	// leader with Peers set probes them on a lease cadence so a healed
	// partition cannot leave it believing it still leads.
	Peers []string
	// AutoFailover enables the election loop: a follower whose heartbeat
	// lease expires probes Peers, ranks the reachable candidates by
	// (Priority, applied seq, Advertise), holds off in rank order, and
	// self-promotes if no newer-term leader appears first. No votes and no
	// quorum — see DESIGN for what this does and does not guarantee.
	AutoFailover bool
	// HoldOff is the per-rank hold-off step after a candidate decides to
	// stand (default 2×Heartbeat): the rank-i candidate waits i×HoldOff
	// before promoting, so the deterministic winner moves first and losers
	// observe it instead of racing it.
	HoldOff time.Duration
	// Failpoints enables the FPHeartbeat* injection sites. Nil in
	// production (a nil set costs one pointer check per site).
	Failpoints *failpoint.Set
	// Trace, when non-nil, links replication into request tracing: a
	// leader stamps shipped frame batches with the trace context of any
	// sampled mutation they cover (consulting the recorder's sampled-seq
	// table), and a follower records a KApply span — parented under the
	// leader's request span — for every stamped batch it applies. Nil
	// disables the linkage at a nil-check's cost.
	Trace *rtrace.Recorder
	// Logger, when non-nil, receives one structured record per notable
	// event. Every record is stamped — at emit time, not construction —
	// with the node's current role and term, so lines logged across a
	// failover carry the identity the node had when each line happened.
	Logger *slog.Logger
}

// Node is one member of a replication cluster. Create with Start; wire it
// into the server via server.Config.Cluster and the admin endpoints.
type Node struct {
	cfg   Config
	store *durable.Tree
	log   *slog.Logger

	role       atomic.Int32
	term       atomic.Uint64
	leaderAddr atomic.Value // string: the current leader's data address
	// leaderRepl is the replication address of the current leader as this
	// node dials it (seeded from ReplicaOf; elections and probes move it).
	leaderRepl atomic.Value // string
	// fenced marks a node deposed by a newer term while it was leader;
	// sticky until the node is promoted again, so every write aimed at the
	// old leader keeps getting the unambiguous StatusFenced redirect.
	fenced atomic.Bool
	// electState/holdOffUntil drive the health/metrics election view.
	electState   atomic.Int32
	holdOffUntil atomic.Int64 // unix nanos; 0 = no hold-off pending
	// clock overrides time.Now for lease math (tests inject jitter).
	clock atomic.Value // func() time.Time

	// applied tracks the follower's apply progress; on a leader the store's
	// own LastSeq is authoritative (every local mutation is "applied").
	applied atomic.Uint64
	// lastHeard is the unix-nano timestamp of the last frame from the
	// leader (follower role).
	lastHeard atomic.Int64
	// leaderCommit is the leader's durable horizon as of the last
	// ReplFrames batch (follower role); applied lag is measured against it.
	leaderCommit atomic.Uint64

	// notify is closed and replaced whenever applied (follower) or the
	// local WAL (leader, via the tap) advances; WaitApplied parks on it.
	notifyMu sync.Mutex
	notifyCh chan struct{}

	// ackCh is the same copy-on-notify channel for follower acks
	// (WaitReplicated parks on it); maxAck is the newest sequence any
	// follower has acknowledged as applied.
	ackMu  sync.Mutex
	ackCh  chan struct{}
	maxAck atomic.Uint64

	subMu sync.Mutex
	subs  map[*subscriber]struct{}

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool
	quit   chan struct{}

	// loopMu serializes startFollowerLoop against Close so a late restart
	// (a deposed leader rejoining) cannot race the final wg.Wait;
	// followerRunning keeps the pull loop single-instance.
	loopMu          sync.Mutex
	followerRunning atomic.Bool

	// followerCancel interrupts the follower loop's current connection on
	// Promote/Close.
	followerConn struct {
		sync.Mutex
		c net.Conn
	}

	c counters
}

type counters struct {
	recordsSent         atomic.Uint64
	batchesSent         atomic.Uint64
	heartbeatsSent      atomic.Uint64
	recordsApplied      atomic.Uint64
	acksSent            atomic.Uint64
	acksReceived        atomic.Uint64
	snapshotsShipped    atomic.Uint64
	snapshotKeysShipped atomic.Uint64
	snapshotLoads       atomic.Uint64
	resyncs             atomic.Uint64
	reconnects          atomic.Uint64
	ackTimeouts         atomic.Uint64
	promotions          atomic.Uint64
	elections           atomic.Uint64
	fenceEvents         atomic.Uint64
	fencedFrames        atomic.Uint64
	staleAcks           atomic.Uint64
	fencedRequests      atomic.Uint64
}

// Start creates a node, starts its replication listener (when configured)
// and, for a follower, the catch-up/apply loop.
func Start(cfg Config) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("repl: Config.Store is required")
	}
	if cfg.Advertise == "" {
		return nil, errors.New("repl: Config.Advertise is required")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 200 * time.Millisecond
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 5 * cfg.Heartbeat
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 256
	}
	if cfg.AckInterval <= 0 {
		cfg.AckInterval = 50 * time.Millisecond
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 2 * time.Second
	}
	if cfg.HoldOff <= 0 {
		cfg.HoldOff = 2 * cfg.Heartbeat
	}
	n := &Node{
		cfg:      cfg,
		store:    cfg.Store,
		notifyCh: make(chan struct{}),
		ackCh:    make(chan struct{}),
		subs:     make(map[*subscriber]struct{}),
		quit:     make(chan struct{}),
	}
	// Role and term flip during failover; resolve them per record rather
	// than freezing them into the handler at construction.
	n.log = logx.Dynamic(cfg.Logger, func() []slog.Attr {
		return []slog.Attr{
			slog.String("role", n.Role().String()),
			slog.Uint64("term", n.term.Load()),
		}
	})
	if cfg.Logger == nil {
		n.log = logx.Discard()
	}
	n.leaderRepl.Store(cfg.ReplicaOf)
	if cfg.ReplicaOf == "" {
		n.role.Store(int32(Leader))
		n.term.Store(1)
		n.leaderAddr.Store(cfg.Advertise)
	} else {
		n.role.Store(int32(Follower))
		n.leaderAddr.Store("") // unknown until the first heartbeat
		n.applied.Store(n.store.LastSeq())
		n.lastHeard.Store(n.now().UnixNano())
	}

	// The tap fans committed frames out to subscribers and doubles as the
	// "log advanced" wakeup for applied-seq waiters. It is installed on
	// every role: a follower's own flushes feed downstream subscribers
	// (chained replication) and, after promotion, the listener is already
	// live.
	n.store.SetWALTap(func(frames []byte, first, last uint64) {
		n.tapFanout(frames, first, last)
		n.wakeApplied()
	})

	if cfg.ListenRepl != "" {
		ln, err := net.Listen("tcp", cfg.ListenRepl)
		if err != nil {
			return nil, fmt.Errorf("repl: listen %s: %w", cfg.ListenRepl, err)
		}
		n.ln = ln
		n.wg.Add(1)
		go n.acceptLoop(ln)
	}
	if cfg.ReplicaOf != "" {
		n.startFollowerLoop()
	}
	if cfg.AutoFailover {
		n.wg.Add(1)
		go n.electLoop()
	}
	return n, nil
}

// now is the node's clock; tests may swap it (setClock) to jitter lease
// arithmetic without touching real timers.
func (n *Node) now() time.Time {
	if f, ok := n.clock.Load().(func() time.Time); ok {
		return f()
	}
	return time.Now()
}

func (n *Node) setClock(f func() time.Time) { n.clock.Store(f) }

// replicaTarget is the replication address the pull loop should dial: the
// leader learned from elections/probes, falling back to the configured
// ReplicaOf.
func (n *Node) replicaTarget() string {
	if a, _ := n.leaderRepl.Load().(string); a != "" {
		return a
	}
	return n.cfg.ReplicaOf
}

// startFollowerLoop launches the pull loop if it is not already running.
// Besides startup, this is how a deposed leader rejoins the cluster as a
// follower of whoever fenced it.
func (n *Node) startFollowerLoop() {
	n.loopMu.Lock()
	defer n.loopMu.Unlock()
	if n.closed.Load() || !n.followerRunning.CompareAndSwap(false, true) {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.followerRunning.Store(false)
		n.followerLoop()
	}()
}

// observeTerm folds a term observation from any source — frame batch,
// subscriber handshake, ack, status probe — into the node. A higher term
// than our own is adopted (recording the advertised leader when known);
// adopting one while we believe ourselves leader is a deposition: step
// down to follower, fence the store so in-flight writes cannot be
// acknowledged, and rejoin the cluster as a subscriber of whoever won.
func (n *Node) observeTerm(t uint64, leaderData, leaderRepl string) {
	for {
		old := n.term.Load()
		if t <= old {
			return
		}
		if n.term.CompareAndSwap(old, t) {
			break
		}
	}
	if leaderData != "" {
		n.leaderAddr.Store(leaderData)
	}
	if leaderRepl != "" {
		n.leaderRepl.Store(leaderRepl)
	}
	if n.role.CompareAndSwap(int32(Leader), int32(Follower)) {
		// Deposed. Fence before waking semi-sync waiters so no write that
		// was in flight when the newer term appeared can still be acked.
		n.fenced.Store(true)
		n.store.Fence(t)
		n.c.fenceEvents.Add(1)
		n.electState.Store(stateFollowing)
		// Grant the winner one fresh lease to reach us before the election
		// loop considers standing again.
		n.lastHeard.Store(n.now().UnixNano())
		n.wakeAcks()
		n.log.Warn("fenced: observed newer term, stepping down",
			"new_term", t, "new_leader", leaderData)
		n.startFollowerLoop()
	} else if leaderRepl != "" && n.Role() == Follower {
		// A plain follower learning who won: grant the winner a fresh
		// lease, drop any pull connection still pointed at the old leader,
		// and make sure the loop is running to redial the new target.
		n.lastHeard.Store(n.now().UnixNano())
		n.severPull()
		n.startFollowerLoop()
	}
}

// Role returns the node's current role.
func (n *Node) Role() Role { return Role(n.role.Load()) }

// IsLeader reports whether the node currently takes writes.
func (n *Node) IsLeader() bool { return n.Role() == Leader }

// Term returns the node's current term number.
func (n *Node) Term() uint64 { return n.term.Load() }

// LeaderAddr returns the data address of the cluster's current leader as
// this node knows it ("" when a follower has not heard a heartbeat yet).
func (n *Node) LeaderAddr() string {
	a, _ := n.leaderAddr.Load().(string)
	return a
}

// AppliedSeq returns the newest sequence number reflected in this node's
// tree: the WAL's last seq on a leader, the apply loop's progress on a
// follower.
func (n *Node) AppliedSeq() uint64 {
	if n.IsLeader() {
		return n.store.LastSeq()
	}
	return n.applied.Load()
}

// AckedSeq returns the newest sequence number any follower has
// acknowledged as applied (leader; 0 on a follower).
func (n *Node) AckedSeq() uint64 { return n.maxAck.Load() }

// LeaseExpired reports whether a follower has gone LeaseTimeout without
// hearing from its leader. Always false on a leader. A heartbeat landing
// exactly at the deadline still counts: the lease is expired only when
// silence strictly exceeds LeaseTimeout.
func (n *Node) LeaseExpired() bool {
	if n.IsLeader() {
		return false
	}
	return n.now().Sub(time.Unix(0, n.lastHeard.Load())) > n.cfg.LeaseTimeout
}

// LeaseRemaining returns how much of the heartbeat lease is left before
// this follower declares the leader lost (floored at 0 once expired). A
// leader reports its full lease: it cannot lose itself.
func (n *Node) LeaseRemaining() time.Duration {
	if n.IsLeader() {
		return n.cfg.LeaseTimeout
	}
	rem := n.cfg.LeaseTimeout - n.now().Sub(time.Unix(0, n.lastHeard.Load()))
	return max(rem, 0)
}

// Fenced reports whether this node was deposed by a newer leader term.
// Sticky until the node is promoted again: clients that still aim writes
// here get StatusFenced (with the new leader's address once known) rather
// than a plain not-leader, so they know to drop their cached leader.
func (n *Node) Fenced() bool { return n.fenced.Load() }

// ElectionState names where this node stands in the automatic-failover
// state machine: "following" (healthy follower, or elections disabled),
// "candidate" (lease expired, probing peers), "holding_off" (standing but
// waiting out its deterministic rank delay), "promoted" (won an automatic
// election), or "leading" (leader by start or operator promotion).
func (n *Node) ElectionState() string {
	if n.IsLeader() {
		if n.electState.Load() == statePromoted {
			return "promoted"
		}
		return "leading"
	}
	switch n.electState.Load() {
	case stateCandidate:
		return "candidate"
	case stateHoldingOff:
		return "holding_off"
	default:
		return "following"
	}
}

// HoldOffDeadline returns when the node's current election hold-off ends
// (zero time when no hold-off is pending).
func (n *Node) HoldOffDeadline() time.Time {
	ns := n.holdOffUntil.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// NoteFenced counts one client write refused with StatusFenced; the
// server calls it (via the optional Cluster interface) so the
// repl_fenced_requests_total series lands beside the other replication
// counters.
func (n *Node) NoteFenced() { n.c.fencedRequests.Add(1) }

// LeaderCommit returns the newest WAL sequence this node has heard the
// leader commit: its own log horizon on a leader, the commit horizon of
// the last ReplFrames batch on a follower. AppliedSeq lagging this is the
// follower's replication staleness.
func (n *Node) LeaderCommit() uint64 {
	if n.IsLeader() {
		return n.store.LastSeq()
	}
	return n.leaderCommit.Load()
}

// ReplAddr returns the bound replication listener address ("" when the
// node has no listener). Useful with ListenRepl ":0".
func (n *Node) ReplAddr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Followers returns the number of connected replication subscribers.
func (n *Node) Followers() int {
	n.subMu.Lock()
	defer n.subMu.Unlock()
	return len(n.subs)
}

// wakeApplied re-arms the applied-seq notification channel.
func (n *Node) wakeApplied() {
	n.notifyMu.Lock()
	close(n.notifyCh)
	n.notifyCh = make(chan struct{})
	n.notifyMu.Unlock()
}

func (n *Node) appliedWake() <-chan struct{} {
	n.notifyMu.Lock()
	defer n.notifyMu.Unlock()
	return n.notifyCh
}

// noteAck folds a follower ack into the leader's watermark and wakes
// semi-sync waiters. The acker's term is the fencing check: an ack from a
// newer term is proof this leader was deposed — it fences the node instead
// of advancing the watermark — and an ack from an older term is not
// counted either (the subscriber predates our promotion; it re-acks with
// the right term within a heartbeat). Term 0 is a bootstrap follower that
// has not heard any term yet (or a legacy frame) and is counted.
func (n *Node) noteAck(applied, term uint64) {
	n.c.acksReceived.Add(1)
	if our := n.term.Load(); term != 0 && term != our {
		n.c.staleAcks.Add(1)
		if term > our {
			n.observeTerm(term, "", "")
		}
		return
	}
	for {
		old := n.maxAck.Load()
		if applied <= old {
			return
		}
		if n.maxAck.CompareAndSwap(old, applied) {
			break
		}
	}
	n.wakeAcks()
}

// wakeAcks re-arms the semi-sync ack notification channel.
func (n *Node) wakeAcks() {
	n.ackMu.Lock()
	close(n.ackCh)
	n.ackCh = make(chan struct{})
	n.ackMu.Unlock()
}

func (n *Node) ackWake() <-chan struct{} {
	n.ackMu.Lock()
	defer n.ackMu.Unlock()
	return n.ackCh
}

// WaitApplied blocks until this node's applied sequence reaches seq or
// ctx is done — the read-your-writes wait behind OpLookupAt: a client
// that saw seq acked can demand a follower read reflect it.
func (n *Node) WaitApplied(ctx context.Context, seq uint64) error {
	for {
		if n.AppliedSeq() >= seq {
			return nil
		}
		wake := n.appliedWake()
		// Re-check after arming: the apply may have landed between the
		// load and the channel fetch.
		if n.AppliedSeq() >= seq {
			return nil
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		case <-n.quit:
			return errors.New("repl: node closed")
		}
	}
}

// WaitReplicated blocks until a follower has acknowledged seq, the
// semi-sync gate for write acknowledgements. It returns immediately when
// the node is not a semi-sync leader; ErrAckTimeout when AckTimeout
// passes first (the caller should answer with a retryable status, not an
// ack); ctx errors pass through.
func (n *Node) WaitReplicated(ctx context.Context, seq uint64) error {
	if !n.cfg.RequireAck || seq == 0 {
		return nil
	}
	// The fence check must precede the role shortcut: a leader deposed
	// with this write in flight is a follower now, and returning nil here
	// would acknowledge a write the new leader's history may not contain.
	if n.fenced.Load() {
		return durable.ErrFenced
	}
	if !n.IsLeader() {
		return nil
	}
	t := time.NewTimer(n.cfg.AckTimeout)
	defer t.Stop()
	for {
		if n.fenced.Load() {
			return durable.ErrFenced
		}
		if n.maxAck.Load() >= seq {
			return nil
		}
		wake := n.ackWake()
		if n.maxAck.Load() >= seq {
			return nil
		}
		select {
		case <-wake:
		case <-t.C:
			n.c.ackTimeouts.Add(1)
			return ErrAckTimeout
		case <-ctx.Done():
			return ctx.Err()
		case <-n.quit:
			return errors.New("repl: node closed")
		}
	}
}

// Promote turns a follower into the leader: the pull loop stops, the term
// increments, and the node starts answering as leader (its replication
// listener, if any, keeps serving subscribers — now with the new term).
// Operator-driven; the caller is the admin endpoint. Automatic elections
// go through the same transition via promote(true).
func (n *Node) Promote() (term uint64, err error) {
	return n.promote(false)
}

func (n *Node) promote(auto bool) (term uint64, err error) {
	if n.closed.Load() {
		return 0, errors.New("repl: node closed")
	}
	if !n.role.CompareAndSwap(int32(Follower), int32(Leader)) {
		return n.term.Load(), ErrNotFollower
	}
	// Sever the pull connection; the follower loop observes the role flip
	// and exits instead of redialing.
	n.severPull()
	term = n.term.Add(1)
	// Taking leadership lifts any fence from an earlier deposition: this
	// node's writes are the history of the new term.
	n.fenced.Store(false)
	n.store.Unfence()
	n.leaderAddr.Store(n.cfg.Advertise)
	n.c.promotions.Add(1)
	if auto {
		n.electState.Store(statePromoted)
	} else {
		n.electState.Store(stateFollowing)
	}
	n.holdOffUntil.Store(0)
	// Catch the applied watermark up to the local log so reads gated on
	// WaitApplied never regress across the role change.
	n.applied.Store(n.store.LastSeq())
	n.wakeApplied()
	n.log.Info("promoted to leader", "applied_seq", n.store.LastSeq(), "auto", auto)
	return term, nil
}

// severPull closes the follower pull connection (if any), forcing the pull
// loop to redial — or exit, when the role changed.
func (n *Node) severPull() {
	n.followerConn.Lock()
	if c := n.followerConn.c; c != nil {
		c.Close()
	}
	n.followerConn.Unlock()
}

// Close stops the listener, the follower loop, and every subscriber
// stream. The store is not closed — its lifecycle belongs to the caller.
func (n *Node) Close() error {
	n.loopMu.Lock()
	already := n.closed.Swap(true)
	n.loopMu.Unlock()
	if already {
		return nil
	}
	close(n.quit)
	n.store.SetWALTap(nil)
	if n.ln != nil {
		n.ln.Close()
	}
	n.followerConn.Lock()
	if c := n.followerConn.c; c != nil {
		c.Close()
	}
	n.followerConn.Unlock()
	n.subMu.Lock()
	for s := range n.subs {
		s.conn.Close()
	}
	n.subMu.Unlock()
	n.wg.Wait()
	return nil
}

// Stats is a point-in-time snapshot of the node's replication counters.
type Stats struct {
	Role                Role
	Term                uint64
	LeaderAddr          string
	AppliedSeq          uint64
	AckedSeq            uint64
	Followers           int
	LeaseExpired        bool
	Fenced              bool
	ElectionState       string
	RecordsSent         uint64
	BatchesSent         uint64
	HeartbeatsSent      uint64
	RecordsApplied      uint64
	AcksSent            uint64
	AcksReceived        uint64
	SnapshotsShipped    uint64
	SnapshotKeysShipped uint64
	SnapshotLoads       uint64
	Resyncs             uint64
	Reconnects          uint64
	AckTimeouts         uint64
	Promotions          uint64
	Elections           uint64
	FenceEvents         uint64
	FencedFrames        uint64
	StaleAcks           uint64
	FencedRequests      uint64
}

// ReplStats returns a snapshot of the node's counters.
func (n *Node) ReplStats() Stats {
	return Stats{
		Role:                n.Role(),
		Term:                n.Term(),
		LeaderAddr:          n.LeaderAddr(),
		AppliedSeq:          n.AppliedSeq(),
		AckedSeq:            n.AckedSeq(),
		Followers:           n.Followers(),
		LeaseExpired:        n.LeaseExpired(),
		Fenced:              n.Fenced(),
		ElectionState:       n.ElectionState(),
		RecordsSent:         n.c.recordsSent.Load(),
		BatchesSent:         n.c.batchesSent.Load(),
		HeartbeatsSent:      n.c.heartbeatsSent.Load(),
		RecordsApplied:      n.c.recordsApplied.Load(),
		AcksSent:            n.c.acksSent.Load(),
		AcksReceived:        n.c.acksReceived.Load(),
		SnapshotsShipped:    n.c.snapshotsShipped.Load(),
		SnapshotKeysShipped: n.c.snapshotKeysShipped.Load(),
		SnapshotLoads:       n.c.snapshotLoads.Load(),
		Resyncs:             n.c.resyncs.Load(),
		Reconnects:          n.c.reconnects.Load(),
		AckTimeouts:         n.c.ackTimeouts.Load(),
		Promotions:          n.c.promotions.Load(),
		Elections:           n.c.elections.Load(),
		FenceEvents:         n.c.fenceEvents.Load(),
		FencedFrames:        n.c.fencedFrames.Load(),
		StaleAcks:           n.c.staleAcks.Load(),
		FencedRequests:      n.c.fencedRequests.Load(),
	}
}

// MetricsHook folds the node's replication telemetry into a registry
// snapshot (register with reg.AddHook(node.MetricsHook)). Series follow
// the repl_* naming convention alongside the wal_*/snapshot_* families.
func (n *Node) MetricsHook(s *metrics.Snapshot) {
	st := n.ReplStats()
	if st.Role == Leader {
		s.Gauges["repl_is_leader"] = 1
	} else {
		s.Gauges["repl_is_leader"] = 0
	}
	s.Gauges["repl_term"] = float64(st.Term)
	s.Gauges["repl_applied_seq"] = float64(st.AppliedSeq)
	s.Gauges["repl_acked_seq"] = float64(st.AckedSeq)
	s.Gauges["repl_followers_connected"] = float64(st.Followers)
	// Lag: what a leader still has to ship (against its own log), or what
	// a follower still has to apply (against the leader's commit horizon).
	if st.Role == Leader {
		last := n.store.LastSeq()
		lag := float64(0)
		if st.Followers > 0 && last > st.AckedSeq {
			lag = float64(last - st.AckedSeq)
		}
		s.Gauges["repl_lag_records"] = lag
	} else {
		s.Gauges["repl_lag_records"] = float64(n.leaderCommit.Load()) - float64(st.AppliedSeq)
	}
	if st.LeaseExpired {
		s.Gauges["repl_lease_expired"] = 1
	} else {
		s.Gauges["repl_lease_expired"] = 0
	}
	s.Gauges["repl_lease_remaining_seconds"] = n.LeaseRemaining().Seconds()
	if st.Fenced {
		s.Gauges["repl_fenced"] = 1
	} else {
		s.Gauges["repl_fenced"] = 0
	}
	s.Gauges["repl_election_state"] = float64(n.electState.Load())
	if d := n.HoldOffDeadline(); !d.IsZero() {
		s.Gauges["repl_holdoff_remaining_seconds"] = max(d.Sub(n.now()), 0).Seconds()
	} else {
		s.Gauges["repl_holdoff_remaining_seconds"] = 0
	}
	s.External["repl_records_sent_total"] += st.RecordsSent
	s.External["repl_batches_sent_total"] += st.BatchesSent
	s.External["repl_heartbeats_sent_total"] += st.HeartbeatsSent
	s.External["repl_records_applied_total"] += st.RecordsApplied
	s.External["repl_acks_sent_total"] += st.AcksSent
	s.External["repl_acks_received_total"] += st.AcksReceived
	s.External["repl_snapshots_shipped_total"] += st.SnapshotsShipped
	s.External["repl_snapshot_keys_shipped_total"] += st.SnapshotKeysShipped
	s.External["repl_snapshot_loads_total"] += st.SnapshotLoads
	s.External["repl_resyncs_total"] += st.Resyncs
	s.External["repl_reconnects_total"] += st.Reconnects
	s.External["repl_ack_timeouts_total"] += st.AckTimeouts
	s.External["repl_promotions_total"] += st.Promotions
	s.External["repl_elections_total"] += st.Elections
	s.External["repl_fence_events_total"] += st.FenceEvents
	s.External["repl_fenced_frames_total"] += st.FencedFrames
	s.External["repl_stale_acks_total"] += st.StaleAcks
	s.External["repl_fenced_requests_total"] += st.FencedRequests
}
