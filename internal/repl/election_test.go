package repl

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/failpoint"
)

// reserveAddr grabs a concrete loopback address that a node can be told
// to listen on later — the only way to hand two nodes each other's
// addresses in their Config before either has started.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestLeaseEdgeExactlyAtExpiry pins the lease boundary semantics: a
// heartbeat landing exactly LeaseTimeout after the last one still counts
// — the lease is expired only when silence strictly exceeds the budget.
// The race this guards: an election firing at the same instant a healthy
// heartbeat arrives must lose to the heartbeat, not split the cluster.
// The follower points at a dead leader so the injected clock and
// manually-stored heartbeats are the only lease inputs.
func TestLeaseEdgeExactlyAtExpiry(t *testing.T) {
	fs := openStore(t)
	follower := startFollower(t, fs, reserveAddr(t), nil)

	base := time.Now()
	follower.lastHeard.Store(base.UnixNano())

	follower.setClock(func() time.Time { return base.Add(follower.cfg.LeaseTimeout) })
	if follower.LeaseExpired() {
		t.Fatal("lease expired exactly at the deadline; the edge must still count as alive")
	}
	if rem := follower.LeaseRemaining(); rem != 0 {
		t.Fatalf("LeaseRemaining at the deadline = %v, want 0", rem)
	}

	follower.setClock(func() time.Time { return base.Add(follower.cfg.LeaseTimeout + time.Nanosecond) })
	if !follower.LeaseExpired() {
		t.Fatal("lease not expired one nanosecond past the deadline")
	}

	// A heartbeat at the edge re-arms the full budget: refresh lastHeard
	// at the deadline instant and the next full lease must be available.
	follower.lastHeard.Store(base.Add(follower.cfg.LeaseTimeout).UnixNano())
	if follower.LeaseExpired() {
		t.Fatal("lease expired immediately after an edge heartbeat")
	}
	if rem := follower.LeaseRemaining(); rem != follower.cfg.LeaseTimeout-time.Nanosecond {
		t.Fatalf("LeaseRemaining after edge heartbeat = %v, want %v",
			rem, follower.cfg.LeaseTimeout-time.Nanosecond)
	}
}

// TestLeaseClockJitter drives the lease check with a deliberately nasty
// clock — skewing forward and backward around on-time heartbeats — and
// asserts the check stays sane: jitter smaller than the remaining budget
// never fakes an expiry, a backward step never panics or goes negative,
// and only a genuine overshoot reports expired.
func TestLeaseClockJitter(t *testing.T) {
	fs := openStore(t)
	follower := startFollower(t, fs, reserveAddr(t), nil)

	lease := follower.cfg.LeaseTimeout
	base := time.Now()
	jitters := []time.Duration{0, lease / 4, -lease / 4, lease / 2, -lease / 2, lease/2 - time.Millisecond}
	for i := 0; i < 50; i++ {
		beat := base.Add(time.Duration(i) * follower.cfg.Heartbeat)
		follower.lastHeard.Store(beat.UnixNano())
		j := jitters[i%len(jitters)]
		follower.setClock(func() time.Time { return beat.Add(j) })
		if follower.LeaseExpired() {
			t.Fatalf("iteration %d: jitter %v faked a lease expiry (budget %v)", i, j, lease)
		}
		// Negative jitter (clock behind the heartbeat) legitimately reads
		// as more than a full budget remaining; it must never go negative.
		if rem := follower.LeaseRemaining(); rem < 0 || (j >= 0 && rem > lease) {
			t.Fatalf("iteration %d: jitter %v gave LeaseRemaining %v (budget %v)", i, j, rem, lease)
		}
	}

	// A backward jump larger than the lease itself: silence is negative,
	// which must read as a fresh lease, not an overflow.
	now := base.Add(100 * follower.cfg.Heartbeat)
	follower.lastHeard.Store(now.UnixNano())
	follower.setClock(func() time.Time { return now.Add(-2 * lease) })
	if follower.LeaseExpired() {
		t.Fatal("clock running behind the heartbeat reported an expired lease")
	}
	// And a forward jump past the budget is a real expiry.
	follower.setClock(func() time.Time { return now.Add(lease + time.Millisecond) })
	if !follower.LeaseExpired() {
		t.Fatal("clock overshooting the budget did not expire the lease")
	}
}

// TestSimultaneousExpiryDeterministicRank starves two auto-failover
// followers of heartbeats at the same instant (a heartbeat-send failpoint
// on the leader drops every tick for every subscriber at once) and
// asserts the deterministic rank resolves the race: exactly the
// higher-priority follower promotes, and the other defers to it instead
// of claiming the same term.
func TestSimultaneousExpiryDeterministicRank(t *testing.T) {
	fps := failpoint.NewSet()
	ls := openStore(t)
	leader := startLeader(t, ls, func(c *Config) { c.Failpoints = fps })

	// Each candidate needs the other in its peer list before starting, so
	// both replication listen addresses are reserved up front. The dead
	// leader is deliberately absent from the lists: elections must work
	// with exactly the peers that are still reachable.
	addr1, addr2 := reserveAddr(t), reserveAddr(t)
	f1s, f2s := openStore(t), openStore(t)
	f1 := startFollower(t, f1s, leader.ReplAddr(), func(c *Config) {
		c.Advertise = "f1-data:1"
		c.ListenRepl = addr1
		c.Priority = 2
		c.AutoFailover = true
		c.Peers = []string{addr2}
	})
	f2 := startFollower(t, f2s, leader.ReplAddr(), func(c *Config) {
		c.Advertise = "f2-data:1"
		c.ListenRepl = addr2
		c.Priority = 1
		c.AutoFailover = true
		c.Peers = []string{addr1}
	})

	for i := int64(1); i <= 20; i++ {
		if !ls.Insert(i) {
			t.Fatalf("leader Insert(%d) = false", i)
		}
	}
	seq := ls.LastSeq()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f1.WaitApplied(ctx, seq); err != nil {
		t.Fatalf("f1 WaitApplied: %v", err)
	}
	if err := f2.WaitApplied(ctx, seq); err != nil {
		t.Fatalf("f2 WaitApplied: %v", err)
	}

	// Drop every heartbeat from here on: both leases expire together.
	fps.Site(FPHeartbeatSend).FailEveryN(1)

	waitFor(t, "priority-2 follower to win the election", func() bool {
		return f1.IsLeader() && f1.Term() == 2
	})
	waitFor(t, "priority-1 follower to defer to the winner", func() bool {
		return f2.Role() == Follower && f2.Term() == 2 && f2.replicaTarget() == addr1
	})
	if f2.IsLeader() {
		t.Fatal("both candidates promoted: rank was not deterministic")
	}
	waitFor(t, "loser re-subscribed to the winner", func() bool { return f1.Followers() >= 1 })
	waitFor(t, "loser learned the winner's data address", func() bool {
		return f2.LeaderAddr() == "f1-data:1"
	})
	if n := f1.c.elections.Load(); n == 0 {
		t.Fatal("winner's election counter never incremented")
	}
}

// TestDeposedLeaderRejoinsAsFollower exercises the zombie-healing path: a
// leader whose follower was promoted behind its back (an operator, or a
// partition it never noticed) probes its peers, observes the newer term,
// fences its store, and rejoins as a follower that replicates and acks
// the new leader — while refusing direct mutations of its own.
func TestDeposedLeaderRejoinsAsFollower(t *testing.T) {
	followerRepl := reserveAddr(t)
	ls := openStore(t)
	leader := startLeader(t, ls, func(c *Config) {
		c.AutoFailover = true
		c.Peers = []string{followerRepl}
	})
	fs := openStore(t)
	follower := startFollower(t, fs, leader.ReplAddr(), func(c *Config) {
		c.Advertise = "new-leader-data:1"
		c.ListenRepl = followerRepl
	})

	for i := int64(1); i <= 30; i++ {
		if !ls.Insert(i) {
			t.Fatalf("Insert(%d) = false", i)
		}
	}
	seq := ls.LastSeq()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := follower.WaitApplied(ctx, seq); err != nil {
		t.Fatalf("WaitApplied: %v", err)
	}

	// Operator-style promotion behind the old leader's back.
	if term, err := follower.Promote(); err != nil || term != 2 {
		t.Fatalf("Promote = (%d, %v), want (2, nil)", term, err)
	}

	// The old leader's periodic peer watch must fence and depose it.
	waitFor(t, "old leader to fence and step down", func() bool {
		return leader.Fenced() && leader.Role() == Follower && leader.Term() == 2
	})
	if got := ls.FencedTerm(); got != 2 {
		t.Fatalf("store fenced term = %d, want 2", got)
	}
	if leader.ElectionState() != "following" {
		t.Fatalf("deposed leader election state = %q, want following", leader.ElectionState())
	}
	// Direct mutations on the fenced store are refused...
	if ok, err := ls.TryInsert(1_000_000); ok || err == nil {
		t.Fatalf("direct insert on a fenced store: ok=%v err=%v, want refused", ok, err)
	}

	// ...but replicated state from the new leader flows in and is acked.
	for i := int64(31); i <= 60; i++ {
		if !fs.Insert(i) {
			t.Fatalf("new leader Insert(%d) = false", i)
		}
	}
	seq = fs.LastSeq()
	if err := leader.WaitApplied(ctx, seq); err != nil {
		t.Fatalf("deposed leader WaitApplied under new leader: %v", err)
	}
	if !ls.Contains(45) {
		t.Fatal("replicated key missing on the rejoined ex-leader")
	}
	// The new leader counts the rejoined node's term-carrying acks.
	waitFor(t, "new leader ack watermark", func() bool { return follower.AckedSeq() >= seq })
	waitFor(t, "rejoined ex-leader keeps a live lease", func() bool { return !leader.LeaseExpired() })
}

// TestStaleTermFramesRejected: a follower that has observed a newer term
// refuses frame batches stamped with an older one — and the rejection
// loop closes end to end: the follower's re-subscription carries the new
// term to the stale leader, which fences itself.
func TestStaleTermFramesRejected(t *testing.T) {
	ls := openStore(t)
	leader := startLeader(t, ls, nil)
	fs := openStore(t)
	follower := startFollower(t, fs, leader.ReplAddr(), nil)
	waitFor(t, "subscription", func() bool { return leader.Followers() == 1 })

	// The follower hears of term 3 out of band (an election elsewhere).
	follower.observeTerm(3, "", "")

	// The still-term-1 leader keeps heartbeating and writing; the
	// follower must reject the stale frames rather than apply them.
	for i := int64(1); i <= 10; i++ {
		ls.Insert(100 + i)
	}
	waitFor(t, "stale frames rejected", func() bool { return follower.c.fencedFrames.Load() >= 1 })
	if follower.Term() != 3 {
		t.Fatalf("follower term = %d, want 3", follower.Term())
	}
	// The rejection severs the stream; the redial's Subscribe announces
	// term 3, which deposes and fences the stale leader.
	waitFor(t, "stale leader fenced by its own subscriber", func() bool {
		return leader.Fenced() && leader.Role() == Follower
	})
}
