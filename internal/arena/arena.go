// Package arena provides a chunked, concurrently growable object arena with
// stable 32-bit indices.
//
// The Natarajan–Mittal algorithm steals two bits from every child address.
// Go's garbage collector does not allow mark bits inside real pointers, so
// the packed tree (internal/core) addresses nodes by arena index instead:
// the index fits in 32 bits, leaving room for the flag and tag bits inside a
// single uint64 child word (see internal/atomicx).
//
// Properties:
//
//   - Objects never move once allocated. Storage is a list of fixed-size
//     chunks; growing the arena appends chunks and never copies.
//   - Index 0 is reserved and never handed out, so it can encode nil.
//   - Allocation is lock-free: goroutines reserve blocks of indices from a
//     global counter with a single atomic add, then hand indices out from
//     the block with no further synchronization (see Alloc).
//   - Indices can be recycled through an Alloc free list. The arena itself
//     performs no liveness tracking; safe recycling requires an external
//     grace-period mechanism such as internal/reclaim.
//   - Allocation is fallible: TryNew reports exhaustion instead of
//     panicking, so callers can degrade gracefully (ErrCapacity); the
//     legacy New panics and remains for callers that size capacity for the
//     whole workload.
//   - A shared overflow pool lets retiring allocators donate their unused
//     reservations and surplus free lists (Release), so capacity freed by
//     one goroutine can satisfy another's allocation after exhaustion.
package arena

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrCapacity reports that the arena's configured slot bound is exhausted.
// It is the sentinel surfaced by fallible allocation paths up through
// internal/core and the public bst API.
var ErrCapacity = errors.New("arena capacity exhausted")

const (
	chunkBits = 16
	// ChunkSize is the number of objects per chunk.
	ChunkSize = 1 << chunkBits
	chunkMask = ChunkSize - 1
)

// DefaultBlock is the number of indices an Alloc reserves from the shared
// counter at a time. Large enough that the shared atomic add is cold, small
// enough that idle goroutines do not strand much memory.
const DefaultBlock = 1024

// Arena is a concurrently growable object store addressed by uint32 index.
// The zero value is not usable; call New.
type Arena[T any] struct {
	next     atomic.Uint64 // next unreserved global index
	limit    uint64        // hard bound on indices (requested capacity + nil slot)
	recycled atomic.Uint64 // cumulative indices returned to free lists
	chunks   []atomic.Pointer[[ChunkSize]T]

	// Shared overflow pool: indices donated by retiring or overflowing
	// Allocs, served to any Alloc whose private sources are exhausted.
	spillMu   sync.Mutex
	spill     []uint32
	spillHits atomic.Uint64 // non-empty spillTake calls (telemetry)
}

// New creates an arena able to hold exactly capacity objects (storage is
// rounded up to a whole number of chunks, but allocation stops at the
// requested bound). Only chunk bookkeeping is allocated eagerly; chunk
// payloads are allocated on demand.
func New[T any](capacity int) *Arena[T] {
	if capacity < 1 {
		capacity = 1
	}
	nchunks := (capacity + ChunkSize) / ChunkSize // +1 slot for reserved index 0
	if nchunks < 1 {
		nchunks = 1
	}
	a := &Arena[T]{
		limit:  uint64(capacity) + 1, // +1: index 0 is reserved for nil
		chunks: make([]atomic.Pointer[[ChunkSize]T], nchunks),
	}
	a.ensure(0)
	a.next.Store(1) // index 0 is the nil sentinel
	return a
}

// Cap returns the chunk-rounded storage capacity (including the reserved
// nil slot). Allocation is bounded by Limit, which may be smaller.
func (a *Arena[T]) Cap() int { return len(a.chunks) * ChunkSize }

// Limit returns the hard bound on allocatable indices (the requested
// capacity plus the reserved nil slot).
func (a *Arena[T]) Limit() uint64 { return a.limit }

// Allocated returns the number of indices reserved so far, excluding the
// reserved nil slot, so it never exceeds the requested capacity (an upper
// bound on live objects; block allocation may strand up to block-1 indices
// per Alloc).
func (a *Arena[T]) Allocated() uint64 { return a.next.Load() - 1 }

// Recycled returns the cumulative number of indices returned to free lists
// for reuse (via Alloc.Recycle). Together with Allocated this bounds the
// live object count for capacity diagnostics.
func (a *Arena[T]) Recycled() uint64 { return a.recycled.Load() }

// Get returns the object at index idx. idx must have been returned by an
// Alloc of this arena; Get(0) is invalid.
func (a *Arena[T]) Get(idx uint32) *T {
	return &a.chunks[idx>>chunkBits].Load()[idx&chunkMask]
}

// ensure makes chunk c exist, installing it with a CAS race that at most
// wastes one chunk allocation per contender.
func (a *Arena[T]) ensure(c uint64) {
	if c >= uint64(len(a.chunks)) {
		// Unreachable: tryReserve never exceeds limit ≤ Cap. Kept as an
		// internal invariant check.
		panic(fmt.Sprintf("arena: chunk %d out of range (%d chunks)", c, len(a.chunks)))
	}
	if a.chunks[c].Load() != nil {
		return
	}
	fresh := new([ChunkSize]T)
	a.chunks[c].CompareAndSwap(nil, fresh)
}

// tryReserve claims up to n consecutive indices (fewer near the capacity
// bound, so no slot is stranded by a partial block) and guarantees their
// chunks exist. ok is false iff the arena is exhausted.
func (a *Arena[T]) tryReserve(n uint64) (lo, hi uint64, ok bool) {
	for {
		cur := a.next.Load()
		if cur >= a.limit {
			return 0, 0, false
		}
		if rem := a.limit - cur; rem < n {
			n = rem
		}
		if a.next.CompareAndSwap(cur, cur+n) {
			for c := cur >> chunkBits; c <= (cur+n-1)>>chunkBits; c++ {
				a.ensure(c)
			}
			return cur, cur + n, true
		}
	}
}

// spillPut donates indices to the shared overflow pool.
func (a *Arena[T]) spillPut(idxs []uint32) {
	if len(idxs) == 0 {
		return
	}
	a.spillMu.Lock()
	a.spill = append(a.spill, idxs...)
	a.spillMu.Unlock()
}

// spillTake removes and returns up to max indices from the overflow pool.
func (a *Arena[T]) spillTake(max int) []uint32 {
	a.spillMu.Lock()
	defer a.spillMu.Unlock()
	n := len(a.spill)
	if n == 0 {
		return nil
	}
	if n > max {
		n = max
	}
	out := make([]uint32, n)
	copy(out, a.spill[len(a.spill)-n:])
	a.spill = a.spill[:len(a.spill)-n]
	a.spillHits.Add(1)
	return out
}

// SpillHits returns how many times an exhausted allocator successfully
// refilled from the shared overflow pool (telemetry: a rising value means
// capacity is circulating between goroutines rather than sitting stranded).
func (a *Arena[T]) SpillHits() uint64 { return a.spillHits.Load() }

// RecycleShared returns a single index directly to the shared overflow
// pool. Unlike Alloc.Recycle it is safe for concurrent use from any
// goroutine — it exists for release paths that outlive the allocator that
// produced the index, such as epoch-reclamation orphans adopted from a
// closed slot.
func (a *Arena[T]) RecycleShared(idx uint32) {
	a.recycled.Add(1)
	a.spillPut([]uint32{idx})
}

// Alloc hands out indices from privately reserved blocks. It is not safe for
// concurrent use; give each goroutine its own Alloc.
type Alloc[T any] struct {
	a         *Arena[T]
	next, lim uint64
	block     uint64
	free      []uint32 // recycled indices, LIFO
	fresh     uint64   // stats: indices taken from the shared counter
	recycled  uint64   // stats: indices served from the free list
}

// NewAlloc creates an allocation handle that reserves block indices at a
// time (DefaultBlock if block <= 0).
func (a *Arena[T]) NewAlloc(block int) *Alloc[T] {
	if block <= 0 {
		block = DefaultBlock
	}
	return &Alloc[T]{a: a, block: uint64(block)}
}

// New returns an unused index and a pointer to its (possibly dirty) object.
// Recycled objects are returned as-is; callers must fully reinitialize them.
// It panics when the arena is exhausted; use TryNew to degrade gracefully.
func (al *Alloc[T]) New() (uint32, *T) {
	idx, p, ok := al.TryNew()
	if !ok {
		panic(fmt.Sprintf("arena: %v (limit %d slots); size the arena for the workload or use TryNew", ErrCapacity, al.a.limit))
	}
	return idx, p
}

// TryNew is the fallible allocation path: it returns ok=false instead of
// panicking when every source — the private free list, the current block,
// fresh reservation, and the shared overflow pool — is exhausted. A false
// return is not permanent: recycling (or another allocator's Release) can
// make a later TryNew succeed.
func (al *Alloc[T]) TryNew() (idx uint32, obj *T, ok bool) {
	for {
		if n := len(al.free); n > 0 {
			idx := al.free[n-1]
			al.free = al.free[:n-1]
			al.recycled++
			return idx, al.a.Get(idx), true
		}
		if al.next < al.lim {
			idx := uint32(al.next)
			al.next++
			al.fresh++
			return idx, al.a.Get(idx), true
		}
		if lo, hi, ok := al.a.tryReserve(al.block); ok {
			al.next, al.lim = lo, hi
			continue
		}
		if got := al.a.spillTake(int(al.block)); len(got) > 0 {
			al.free = got
			continue
		}
		return 0, nil, false
	}
}

// spillThreshold bounds the private free list relative to the block size;
// beyond it, half the list is donated to the shared pool so one handle's
// frees can satisfy another handle's allocations.
const spillThresholdBlocks = 4

// Recycle returns an index to this handle's free list. The caller is
// responsible for guaranteeing no other goroutine can still reach idx (for
// lock-free structures that means a grace period, e.g. internal/reclaim).
func (al *Alloc[T]) Recycle(idx uint32) {
	if idx == 0 {
		panic("arena: recycling nil index")
	}
	al.a.recycled.Add(1)
	al.free = append(al.free, idx)
	if uint64(len(al.free)) > spillThresholdBlocks*al.block {
		half := len(al.free) / 2
		al.a.spillPut(al.free[half:])
		al.free = al.free[:half]
	}
}

// Release donates the allocator's unused capacity — the remainder of its
// reserved block and its entire free list — to the arena's shared overflow
// pool, where any other allocator can pick it up. Call when retiring an
// allocator; it must not be used afterwards.
func (al *Alloc[T]) Release() {
	for al.next < al.lim {
		al.free = append(al.free, uint32(al.next))
		al.next++
	}
	al.a.spillPut(al.free)
	al.free = nil
}

// Get is a convenience passthrough to the arena.
func (al *Alloc[T]) Get(idx uint32) *T { return al.a.Get(idx) }

// Stats reports how many indices this handle served fresh vs recycled.
func (al *Alloc[T]) Stats() (fresh, recycled uint64) { return al.fresh, al.recycled }
