// Package arena provides a chunked, concurrently growable object arena with
// stable 32-bit indices.
//
// The Natarajan–Mittal algorithm steals two bits from every child address.
// Go's garbage collector does not allow mark bits inside real pointers, so
// the packed tree (internal/core) addresses nodes by arena index instead:
// the index fits in 32 bits, leaving room for the flag and tag bits inside a
// single uint64 child word (see internal/atomicx).
//
// Properties:
//
//   - Objects never move once allocated. Storage is a list of fixed-size
//     chunks; growing the arena appends chunks and never copies.
//   - Index 0 is reserved and never handed out, so it can encode nil.
//   - Allocation is lock-free: goroutines reserve blocks of indices from a
//     global counter with a single atomic add, then hand indices out from
//     the block with no further synchronization (see Alloc).
//   - Indices can be recycled through an Alloc free list. The arena itself
//     performs no liveness tracking; safe recycling requires an external
//     grace-period mechanism such as internal/reclaim.
package arena

import (
	"fmt"
	"sync/atomic"
)

const (
	chunkBits = 16
	// ChunkSize is the number of objects per chunk.
	ChunkSize = 1 << chunkBits
	chunkMask = ChunkSize - 1
)

// DefaultBlock is the number of indices an Alloc reserves from the shared
// counter at a time. Large enough that the shared atomic add is cold, small
// enough that idle goroutines do not strand much memory.
const DefaultBlock = 1024

// Arena is a concurrently growable object store addressed by uint32 index.
// The zero value is not usable; call New.
type Arena[T any] struct {
	next   atomic.Uint64 // next unreserved global index
	chunks []atomic.Pointer[[ChunkSize]T]
}

// New creates an arena able to hold at least capacity objects (rounded up to
// a whole number of chunks, minimum one chunk). Only chunk bookkeeping is
// allocated eagerly; chunk payloads are allocated on demand.
func New[T any](capacity int) *Arena[T] {
	if capacity < 1 {
		capacity = 1
	}
	nchunks := (capacity + ChunkSize) / ChunkSize // +1 slot for reserved index 0
	if nchunks < 1 {
		nchunks = 1
	}
	a := &Arena[T]{chunks: make([]atomic.Pointer[[ChunkSize]T], nchunks)}
	a.ensure(0)
	a.next.Store(1) // index 0 is the nil sentinel
	return a
}

// Cap returns the maximum number of objects the arena can hold (including
// the reserved nil slot).
func (a *Arena[T]) Cap() int { return len(a.chunks) * ChunkSize }

// Allocated returns the number of indices reserved so far (an upper bound on
// live objects; block allocation may strand up to block-1 indices per Alloc).
func (a *Arena[T]) Allocated() uint64 { return a.next.Load() }

// Get returns the object at index idx. idx must have been returned by an
// Alloc of this arena; Get(0) is invalid.
func (a *Arena[T]) Get(idx uint32) *T {
	return &a.chunks[idx>>chunkBits].Load()[idx&chunkMask]
}

// ensure makes chunk c exist, installing it with a CAS race that at most
// wastes one chunk allocation per contender.
func (a *Arena[T]) ensure(c uint64) {
	if c >= uint64(len(a.chunks)) {
		panic(fmt.Sprintf("arena: capacity exhausted (chunk %d of %d); size the arena for the workload", c, len(a.chunks)))
	}
	if a.chunks[c].Load() != nil {
		return
	}
	fresh := new([ChunkSize]T)
	a.chunks[c].CompareAndSwap(nil, fresh)
}

// reserve claims n consecutive indices and guarantees their chunks exist.
func (a *Arena[T]) reserve(n uint64) (lo, hi uint64) {
	hi = a.next.Add(n)
	lo = hi - n
	for c := lo >> chunkBits; c <= (hi-1)>>chunkBits; c++ {
		a.ensure(c)
	}
	return lo, hi
}

// Alloc hands out indices from privately reserved blocks. It is not safe for
// concurrent use; give each goroutine its own Alloc.
type Alloc[T any] struct {
	a         *Arena[T]
	next, lim uint64
	block     uint64
	free      []uint32 // recycled indices, LIFO
	fresh     uint64   // stats: indices taken from the shared counter
	recycled  uint64   // stats: indices served from the free list
}

// NewAlloc creates an allocation handle that reserves block indices at a
// time (DefaultBlock if block <= 0).
func (a *Arena[T]) NewAlloc(block int) *Alloc[T] {
	if block <= 0 {
		block = DefaultBlock
	}
	return &Alloc[T]{a: a, block: uint64(block)}
}

// New returns an unused index and a pointer to its (possibly dirty) object.
// Recycled objects are returned as-is; callers must fully reinitialize them.
func (al *Alloc[T]) New() (uint32, *T) {
	if n := len(al.free); n > 0 {
		idx := al.free[n-1]
		al.free = al.free[:n-1]
		al.recycled++
		return idx, al.a.Get(idx)
	}
	if al.next == al.lim {
		al.next, al.lim = al.a.reserve(al.block)
	}
	idx := uint32(al.next)
	al.next++
	al.fresh++
	return idx, al.a.Get(idx)
}

// Recycle returns an index to this handle's free list. The caller is
// responsible for guaranteeing no other goroutine can still reach idx (for
// lock-free structures that means a grace period, e.g. internal/reclaim).
func (al *Alloc[T]) Recycle(idx uint32) {
	if idx == 0 {
		panic("arena: recycling nil index")
	}
	al.free = append(al.free, idx)
}

// Get is a convenience passthrough to the arena.
func (al *Alloc[T]) Get(idx uint32) *T { return al.a.Get(idx) }

// Stats reports how many indices this handle served fresh vs recycled.
func (al *Alloc[T]) Stats() (fresh, recycled uint64) { return al.fresh, al.recycled }
