package arena

import (
	"sync"
	"testing"
	"testing/quick"
)

type obj struct {
	id  uint64
	pad [2]uint64
}

func TestIndexZeroReserved(t *testing.T) {
	a := New[obj](100)
	al := a.NewAlloc(4)
	idx, _ := al.New()
	if idx == 0 {
		t.Fatal("allocator handed out the reserved nil index")
	}
}

func TestStableAddresses(t *testing.T) {
	a := New[obj](4 * ChunkSize)
	al := a.NewAlloc(256)
	type rec struct {
		idx uint32
		p   *obj
	}
	var recs []rec
	// Allocate across several chunk boundaries.
	for i := 0; i < 3*ChunkSize; i++ {
		idx, p := al.New()
		p.id = uint64(idx)
		recs = append(recs, rec{idx, p})
	}
	for _, r := range recs {
		if got := a.Get(r.idx); got != r.p {
			t.Fatalf("index %d moved: %p != %p", r.idx, got, r.p)
		}
		if got := a.Get(r.idx).id; got != uint64(r.idx) {
			t.Fatalf("index %d payload clobbered: %d", r.idx, got)
		}
	}
}

func TestUniqueIndices(t *testing.T) {
	const (
		workers = 8
		each    = 5000
	)
	a := New[obj](workers*each + 10*DefaultBlock)
	results := make([][]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			al := a.NewAlloc(64)
			out := make([]uint32, 0, each)
			for i := 0; i < each; i++ {
				idx, p := al.New()
				p.id = uint64(w)<<32 | uint64(idx)
				out = append(out, idx)
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	seen := make(map[uint32]int)
	for w, out := range results {
		for _, idx := range out {
			if idx == 0 {
				t.Fatal("nil index handed out")
			}
			if prev, dup := seen[idx]; dup {
				t.Fatalf("index %d handed to both worker %d and %d", idx, prev, w)
			}
			seen[idx] = w
			if got := a.Get(idx).id; got != uint64(w)<<32|uint64(idx) {
				t.Fatalf("worker %d index %d: payload %#x", w, idx, got)
			}
		}
	}
}

func TestRecycle(t *testing.T) {
	a := New[obj](100)
	al := a.NewAlloc(8)
	idx, p := al.New()
	p.id = 7
	al.Recycle(idx)
	idx2, _ := al.New()
	if idx2 != idx {
		t.Fatalf("recycled index not reused: got %d want %d", idx2, idx)
	}
	fresh, recycled := al.Stats()
	if fresh != 1 || recycled != 1 {
		t.Fatalf("stats = (%d,%d), want (1,1)", fresh, recycled)
	}
}

func TestRecycleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Recycle(0) did not panic")
		}
	}()
	New[obj](10).NewAlloc(0).Recycle(0)
}

func TestCapExhaustionPanics(t *testing.T) {
	a := New[obj](1) // one chunk
	al := a.NewAlloc(ChunkSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected capacity panic")
		}
	}()
	for i := 0; i < 2*ChunkSize; i++ {
		al.New()
	}
}

func TestCapRounding(t *testing.T) {
	f := func(capHint uint16) bool {
		a := New[obj](int(capHint))
		return a.Cap() >= int(capHint)+1 && a.Cap()%ChunkSize == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatedMonotonic(t *testing.T) {
	a := New[obj](10 * DefaultBlock)
	before := a.Allocated()
	al := a.NewAlloc(0)
	al.New()
	if a.Allocated() < before+DefaultBlock {
		t.Fatalf("block reservation not visible: %d -> %d", before, a.Allocated())
	}
}

func TestSpillHitsTelemetry(t *testing.T) {
	a := New[int](64)
	if a.SpillHits() != 0 {
		t.Fatal("fresh arena reports spill hits")
	}
	// Exhaust the arena through one allocator, recycle everything, and
	// release — all capacity now sits in the shared spill pool.
	al1 := a.NewAlloc(1)
	var idxs []uint32
	for {
		idx, _, ok := al1.TryNew()
		if !ok {
			break
		}
		idxs = append(idxs, idx)
	}
	if len(idxs) == 0 {
		t.Fatal("arena yielded no indices")
	}
	if a.SpillHits() != 0 {
		t.Fatal("exhausting an empty spill pool must not count as a hit")
	}
	for _, i := range idxs {
		al1.Recycle(i)
	}
	al1.Release()

	// A second allocator can only be served from the spill pool.
	al2 := a.NewAlloc(1)
	if _, _, ok := al2.TryNew(); !ok {
		t.Fatal("TryNew failed with a populated spill pool")
	}
	if a.SpillHits() == 0 {
		t.Fatal("spill refill did not increment SpillHits")
	}
}
