package trace

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

func TestRecordCapturesResultAndOrder(t *testing.T) {
	r := NewRecorder(1)
	tape := r.Worker(0)
	got := tape.Record(workload.OpInsert, 7, func() bool { return true })
	if !got {
		t.Fatal("Record did not pass through the result")
	}
	tape.Record(workload.OpSearch, 7, func() bool { return false })
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("recorded %d events, want 2", len(evs))
	}
	if evs[0].Op != workload.OpInsert || !evs[0].Out {
		t.Fatalf("first event wrong: %+v", evs[0])
	}
	if evs[0].Start > evs[0].End {
		t.Fatal("event ends before it starts")
	}
	if evs[0].Start > evs[1].Start {
		t.Fatal("events not sorted by start")
	}
	if evs[1].End < evs[0].End && evs[1].Start < evs[0].Start {
		t.Fatal("sequential ops on one tape overlap")
	}
}

func TestTapesIndependentUnderConcurrency(t *testing.T) {
	const workers = 4
	const each = 1000
	r := NewRecorder(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tape := r.Worker(w)
			for i := 0; i < each; i++ {
				tape.Record(workload.OpSearch, int64(i%10), func() bool { return false })
			}
		}(w)
	}
	wg.Wait()
	evs := r.Events()
	if len(evs) != workers*each {
		t.Fatalf("recorded %d events, want %d", len(evs), workers*each)
	}
	perWorker := map[int]int{}
	for i, e := range evs {
		perWorker[e.Worker]++
		if i > 0 && evs[i-1].Start > e.Start {
			t.Fatal("merged events not sorted by start time")
		}
	}
	for w := 0; w < workers; w++ {
		if perWorker[w] != each {
			t.Fatalf("worker %d has %d events, want %d", w, perWorker[w], each)
		}
	}
}

func TestPerKeyGrouping(t *testing.T) {
	r := NewRecorder(1)
	tape := r.Worker(0)
	for i := 0; i < 30; i++ {
		tape.Record(workload.OpInsert, int64(i%3), func() bool { return true })
	}
	groups := PerKey(r.Events())
	if len(groups) != 3 {
		t.Fatalf("grouped into %d keys, want 3", len(groups))
	}
	for k, evs := range groups {
		if len(evs) != 10 {
			t.Fatalf("key %d has %d events, want 10", k, len(evs))
		}
		for _, e := range evs {
			if e.Key != k {
				t.Fatalf("event with key %d grouped under %d", e.Key, k)
			}
		}
	}
}

func TestTimestampsMonotonicWithinTape(t *testing.T) {
	r := NewRecorder(1)
	tape := r.Worker(0)
	for i := 0; i < 100; i++ {
		tape.Record(workload.OpDelete, 1, func() bool { return false })
	}
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].End {
			t.Fatal("sequential operations on one tape must not overlap")
		}
	}
}

// TestMergePreservesPerWorkerOrder is the merge ordering invariant: the
// merged stream, filtered back down to one worker, must equal that worker's
// tape in program order — even when events carry tied Start timestamps
// (a coarse clock can stamp several fast operations identically, and an
// unstable merge sort would be free to invert them).
func TestMergePreservesPerWorkerOrder(t *testing.T) {
	const workers = 3
	r := NewRecorder(workers)
	// Craft tapes directly with heavy timestamp ties across and within
	// workers; Key records each event's per-tape sequence number.
	for w := 0; w < workers; w++ {
		tape := r.Worker(w)
		for i := 0; i < 50; i++ {
			start := int64(i / 5) // five consecutive events share a Start
			tape.events = append(tape.events, Event{
				Worker: w, Op: workload.OpSearch, Key: int64(i),
				Start: start, End: start + 1,
			})
		}
	}
	evs := r.Events()
	next := make([]int64, workers)
	for i, e := range evs {
		if i > 0 && evs[i-1].Start > e.Start {
			t.Fatalf("merged events not sorted by start at %d", i)
		}
		if e.Key != next[e.Worker] {
			t.Fatalf("worker %d order broken: event seq %d arrived when %d was expected",
				e.Worker, e.Key, next[e.Worker])
		}
		next[e.Worker]++
	}
}

// TestMergeOrderUnderConcurrentTapes re-checks the same invariant with
// tapes written by live goroutines (real clock, real interleaving).
func TestMergeOrderUnderConcurrentTapes(t *testing.T) {
	const workers = 4
	const each = 500
	r := NewRecorder(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tape := r.Worker(w)
			for i := 0; i < each; i++ {
				tape.Record(workload.OpInsert, int64(i), func() bool { return true })
			}
		}(w)
	}
	wg.Wait()
	next := make([]int64, workers)
	for _, e := range r.Events() {
		if e.Key != next[e.Worker] {
			t.Fatalf("worker %d program order broken in merge: got seq %d, want %d",
				e.Worker, e.Key, next[e.Worker])
		}
		next[e.Worker]++
	}
}
