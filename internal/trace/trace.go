// Package trace records concurrent operation histories — invocation and
// response timestamps plus results — for offline linearizability checking
// by internal/check.
//
// Each worker records into its own tape (no synchronization on the hot
// path beyond reading the monotonic clock); tapes are merged after the run.
package trace

import (
	"sort"
	"time"

	"repro/internal/workload"
)

// Event is one completed operation.
type Event struct {
	Worker     int
	Op         workload.OpKind
	Key        int64
	Out        bool  // operation result
	Start, End int64 // monotonic ns, from the recorder's base
}

// Recorder collects per-worker tapes.
type Recorder struct {
	base  time.Time
	tapes []*Tape
}

// NewRecorder creates a recorder for the given number of workers.
func NewRecorder(workers int) *Recorder {
	r := &Recorder{base: time.Now(), tapes: make([]*Tape, workers)}
	for i := range r.tapes {
		r.tapes[i] = &Tape{recorder: r, worker: i}
	}
	return r
}

// Worker returns worker i's tape. Tapes are single-goroutine.
func (r *Recorder) Worker(i int) *Tape { return r.tapes[i] }

// Events merges all tapes sorted by start time. The sort must be stable:
// two events on one tape can share a Start timestamp when the clock is
// coarser than the operations, and an unstable sort could then invert a
// worker's program order, which the linearizability checker relies on.
func (r *Recorder) Events() []Event {
	var out []Event
	for _, t := range r.tapes {
		out = append(out, t.events...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Tape is one worker's event log.
type Tape struct {
	recorder *Recorder
	worker   int
	events   []Event
}

// Record runs fn, timestamping the invocation and response around it.
func (t *Tape) Record(op workload.OpKind, key int64, fn func() bool) bool {
	start := time.Since(t.recorder.base).Nanoseconds()
	out := fn()
	end := time.Since(t.recorder.base).Nanoseconds()
	t.events = append(t.events, Event{
		Worker: t.worker, Op: op, Key: key, Out: out, Start: start, End: end,
	})
	return out
}

// RecordGroup runs fn — one batched call completing len(ops) operations
// whose results land in out — and records every operation with the shared
// invocation/response window. That window is the sound one for a per-op
// linearizable batch: each operation's linearization point lies somewhere
// inside the batched call, and nothing narrower is known.
func (t *Tape) RecordGroup(ops []workload.OpKind, keys []int64, out []bool, fn func()) {
	start := time.Since(t.recorder.base).Nanoseconds()
	fn()
	end := time.Since(t.recorder.base).Nanoseconds()
	for i := range ops {
		t.events = append(t.events, Event{
			Worker: t.worker, Op: ops[i], Key: keys[i], Out: out[i], Start: start, End: end,
		})
	}
}

// PerKey groups events by key (each group sorted by start time, inherited
// from Events()).
func PerKey(events []Event) map[int64][]Event {
	m := map[int64][]Event{}
	for _, e := range events {
		m[e.Key] = append(m[e.Key], e)
	}
	return m
}
