package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/settest"
)

func TestConformance(t *testing.T) {
	settest.Run(t, func(capacity int) settest.Set {
		return core.New(core.Config{Capacity: 1 << 22})
	})
}

func TestConformanceReclaim(t *testing.T) {
	settest.Run(t, func(capacity int) settest.Set {
		return core.New(core.Config{Capacity: 1 << 22, Reclaim: true})
	})
}

func TestConformanceCASOnly(t *testing.T) {
	settest.Run(t, func(capacity int) settest.Set {
		return core.New(core.Config{Capacity: 1 << 22, CASOnly: true})
	})
}
