package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/keys"
	"repro/internal/metrics"
)

// batchInsert/batchDelete/batchLookup are small wrappers so the model
// checks below read like the single-op tests.
func batchInsert(h *Handle, ks []uint64) ([]bool, []error) {
	out := make([]bool, len(ks))
	errs := make([]error, len(ks))
	h.InsertBatch(ks, out, errs)
	return out, errs
}

func batchDelete(h *Handle, ks []uint64) []bool {
	out := make([]bool, len(ks))
	h.DeleteBatch(ks, out)
	return out
}

func batchLookup(h *Handle, ks []uint64) []bool {
	out := make([]bool, len(ks))
	h.LookupBatch(ks, out)
	return out
}

func uniq(ks []uint64) map[uint64]struct{} {
	m := make(map[uint64]struct{}, len(ks))
	for _, k := range ks {
		m[k] = struct{}{}
	}
	return m
}

func TestBatchBasic(t *testing.T) {
	tr := newTest(t)
	h := tr.NewHandle()
	ks := []uint64{keys.Map(5), keys.Map(1), keys.Map(9), keys.Map(1), keys.Map(-7)}

	ok, errs := batchInsert(h, ks)
	for i, e := range errs {
		if e != nil {
			t.Fatalf("insert %d: %v", i, e)
		}
	}
	// Results land in caller order: the duplicate key 1 succeeds exactly
	// once, and which of the two positions reports true is unspecified.
	if !ok[0] || !ok[2] || !ok[4] {
		t.Fatalf("fresh inserts failed: %v", ok)
	}
	if ok[1] == ok[3] {
		t.Fatalf("duplicate key in batch: got %v and %v, want exactly one true", ok[1], ok[3])
	}
	if tr.Size() != 4 {
		t.Fatalf("size = %d, want 4", tr.Size())
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}

	got := batchLookup(h, []uint64{keys.Map(1), keys.Map(2), keys.Map(5), keys.Map(9), keys.Map(-7)})
	want := []bool{true, false, true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lookup %d = %v, want %v", i, got[i], want[i])
		}
	}

	del := batchDelete(h, []uint64{keys.Map(9), keys.Map(404), keys.Map(1), keys.Map(1)})
	if !del[0] || del[1] {
		t.Fatalf("delete statuses: %v", del)
	}
	if del[2] == del[3] {
		t.Fatalf("duplicate delete in batch: got %v and %v, want exactly one true", del[2], del[3])
	}
	if tr.Size() != 2 {
		t.Fatalf("size after deletes = %d, want 2", tr.Size())
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}

	// Empty batches are no-ops.
	h.InsertBatch(nil, nil, nil)
	h.DeleteBatch(nil, nil)
	h.LookupBatch(nil, nil)
}

// TestBatchModelEquivalence drives batched operations against a map model
// with a small key space, so path resumes constantly cross freshly inserted
// and freshly deleted regions.
func TestBatchModelEquivalence(t *testing.T) {
	tr := newTest(t)
	h := tr.NewHandle()
	rng := rand.New(rand.NewSource(42))
	model := map[uint64]bool{}

	for round := 0; round < 300; round++ {
		n := 1 + rng.Intn(64)
		ks := make([]uint64, n)
		for i := range ks {
			ks[i] = keys.Map(int64(rng.Intn(500)))
		}
		// Duplicates within a batch resolve in sorted (not caller) order, so
		// compare per-key success counts, not per-position values.
		trues := map[uint64]int{}
		switch round % 3 {
		case 0:
			ok, errs := batchInsert(h, ks)
			for i, k := range ks {
				if errs[i] != nil {
					t.Fatalf("round %d: insert err %v", round, errs[i])
				}
				if ok[i] {
					trues[k]++
				}
			}
			for k := range uniq(ks) {
				want := 0
				if !model[k] {
					want = 1 // exactly one insert of an absent key succeeds
				}
				if trues[k] != want {
					t.Fatalf("round %d: insert(%#x) succeeded %d times, want %d", round, k, trues[k], want)
				}
				model[k] = true
			}
		case 1:
			ok := batchDelete(h, ks)
			for i, k := range ks {
				if ok[i] {
					trues[k]++
				}
			}
			for k := range uniq(ks) {
				want := 0
				if model[k] {
					want = 1 // exactly one delete of a present key succeeds
				}
				if trues[k] != want {
					t.Fatalf("round %d: delete(%#x) succeeded %d times, want %d", round, k, trues[k], want)
				}
				delete(model, k)
			}
		default:
			got := batchLookup(h, ks)
			for i, k := range ks {
				if got[i] != model[k] {
					t.Fatalf("round %d: lookup(%#x) = %v, model %v", round, k, got[i], model[k])
				}
			}
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for range model {
		n++
	}
	if tr.Size() != n {
		t.Fatalf("size = %d, model %d", tr.Size(), n)
	}
}

// Sorted batches over a dense prefilled region must actually share paths:
// the skipped-levels counter is the whole point of the batch seek.
func TestBatchPathSharingSkipsLevels(t *testing.T) {
	tr := newTest(t)
	h := tr.NewHandle()
	for i := int64(0); i < 4096; i++ {
		h.Insert(keys.Map(i))
	}

	ks := make([]uint64, 64)
	for i := range ks {
		ks[i] = keys.Map(int64(1000 + i))
	}
	before := h.Stats
	got := batchLookup(h, ks)
	for i, ok := range got {
		if !ok {
			t.Fatalf("lookup %d missing", i)
		}
	}
	d := h.Stats
	if d.Batches-before.Batches != 1 || d.BatchOps-before.BatchOps != 64 {
		t.Fatalf("batch counters: %+v", d)
	}
	skipped := d.BatchSkippedLevels - before.BatchSkippedLevels
	// 64 adjacent keys in a ~4k-leaf tree share nearly the whole path; even
	// a weak bound (1 level per resumed seek) catches a broken resume.
	if skipped < 63 {
		t.Fatalf("adjacent-key batch skipped only %d levels", skipped)
	}

	// Search results and stats must agree with the per-op counters.
	if d.Searches-before.Searches != 64 {
		t.Fatalf("Searches delta = %d, want 64", d.Searches-before.Searches)
	}
}

// Deleting a sorted run makes each delete detach the previous key's
// recorded parent, forcing the resume validation to pop up the recorded
// path. The results must stay exact.
func TestBatchDeleteSortedRunPopsUp(t *testing.T) {
	tr := newTest(t)
	h := tr.NewHandle()
	for i := int64(0); i < 1024; i++ {
		h.Insert(keys.Map(i))
	}
	ks := make([]uint64, 256)
	for i := range ks {
		ks[i] = keys.Map(int64(256 + i))
	}
	ok := batchDelete(h, ks)
	for i := range ok {
		if !ok[i] {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Size() != 1024-256 {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1024; i++ {
		want := i < 256 || i >= 512
		if got := h.Search(keys.Map(i)); got != want {
			t.Fatalf("search %d = %v, want %v", i, got, want)
		}
	}
}

// A mid-batch capacity failure must not abort the batch: every op reports
// its own status and the tree stays auditable.
func TestBatchInsertCapacityPartialFailure(t *testing.T) {
	tr := New(Config{Capacity: 64})
	h := tr.NewHandle()

	ks := make([]uint64, 64)
	for i := range ks {
		ks[i] = keys.Map(int64(i))
	}
	ok, errs := batchInsert(h, ks)

	var succeeded, failed int
	sawFailAfterSuccess := false
	for i := range ks {
		switch {
		case errs[i] == nil && ok[i]:
			succeeded++
		case errors.Is(errs[i], ErrCapacity):
			if ok[i] {
				t.Fatalf("op %d: ok=true with ErrCapacity", i)
			}
			failed++
			if succeeded > 0 {
				sawFailAfterSuccess = true
			}
		default:
			t.Fatalf("op %d: ok=%v err=%v", i, ok[i], errs[i])
		}
	}
	if succeeded == 0 || failed == 0 {
		t.Fatalf("want a mix of successes and capacity failures, got %d/%d", succeeded, failed)
	}
	_ = sawFailAfterSuccess // keys are processed in sorted order; mix is what matters

	// Every op that reported success is present; the tree audits clean and
	// keeps serving.
	for i, k := range ks {
		if got := h.Search(k); got != (errs[i] == nil) {
			t.Fatalf("key %d present=%v, want %v", i, got, errs[i] == nil)
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatalf("tree invalid after partial batch failure: %v", err)
	}
	if h.Stats.CapacityFailures == 0 {
		t.Fatal("capacity failures not counted")
	}
}

// With reclamation on, the capacity path unpins mid-batch (invalidating the
// recorded path); after deletes free slots, later batches succeed again.
func TestBatchInsertCapacityRecoversWithReclaim(t *testing.T) {
	tr := New(Config{Capacity: 256, Reclaim: true})
	defer tr.Close()
	h := tr.NewHandle()

	// Exhaust the arena with a batch.
	ks := make([]uint64, 256)
	for i := range ks {
		ks[i] = keys.Map(int64(i))
	}
	_, errs := batchInsert(h, ks)
	var inserted []uint64
	for i, k := range ks {
		if errs[i] == nil {
			inserted = append(inserted, k)
		}
	}
	if len(inserted) == len(ks) {
		t.Fatal("arena never exhausted")
	}

	// Free half and let grace periods expire.
	del := batchDelete(h, inserted[:len(inserted)/2])
	for i := range del {
		if !del[i] {
			t.Fatalf("delete %d failed", i)
		}
	}
	if h.slot != nil {
		h.slot.Flush()
	}

	ks2 := make([]uint64, 8)
	for i := range ks2 {
		ks2[i] = keys.Map(int64(10000 + i))
	}
	ok2, errs2 := batchInsert(h, ks2)
	recovered := 0
	for i := range ks2 {
		if errs2[i] == nil && ok2[i] {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("no insert recovered after deletes + flush")
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchMetricsCounters(t *testing.T) {
	reg := metrics.NewRegistry(0)
	tr := New(Config{Capacity: 1 << 16, Metrics: reg})
	h := tr.NewHandle()
	for i := int64(0); i < 512; i++ {
		h.Insert(keys.Map(i))
	}
	ks := make([]uint64, 32)
	for i := range ks {
		ks[i] = keys.Map(int64(100 + i))
	}
	batchLookup(h, ks)
	batchInsert(h, ks)
	batchDelete(h, ks)

	s := reg.Snapshot()
	m := s.CounterMap()
	if got := m["batch_ops_total"]; got != 96 {
		t.Fatalf("batch_ops_total = %d, want 96", got)
	}
	if m["batch_seek_skipped_levels_total"] == 0 {
		t.Fatal("batch_seek_skipped_levels_total = 0 for adjacent-key batches")
	}
	// Batched ops count in the per-kind totals too.
	if m["ops_search_total"] < 32 || m["ops_insert_total"] < 32 || m["ops_delete_total"] < 32 {
		t.Fatalf("per-kind totals missing batched ops: %v", m)
	}
}

// TestBatchConcurrentWithSingles races batched writers against single-op
// writers and readers on overlapping key ranges, then audits. Run with
// -race in ci.
func TestBatchConcurrentWithSingles(t *testing.T) {
	tr := New(Config{Capacity: 1 << 20, Reclaim: true})
	defer tr.Close()

	const (
		workers  = 4
		rounds   = 200
		keySpace = 512
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			ks := make([]uint64, 16)
			out := make([]bool, 16)
			errs := make([]error, 16)
			for r := 0; r < rounds; r++ {
				for i := range ks {
					ks[i] = keys.Map(int64(rng.Intn(keySpace)))
				}
				switch r % 4 {
				case 0:
					h.InsertBatch(ks, out, errs)
					for i := range errs {
						if errs[i] != nil {
							t.Errorf("worker %d: %v", w, errs[i])
							return
						}
					}
				case 1:
					h.DeleteBatch(ks, out)
				case 2:
					h.LookupBatch(ks, out)
				default:
					// Single ops interleaved on the same keys.
					for i := range ks {
						switch i % 3 {
						case 0:
							h.Insert(ks[i])
						case 1:
							h.Delete(ks[i])
						default:
							h.Search(ks[i])
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}
