package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

func newTest(t testing.TB) *Tree {
	t.Helper()
	return New(Config{Capacity: 1 << 20})
}

func TestEmptyTree(t *testing.T) {
	tr := newTest(t)
	if tr.Search(keys.Map(42)) {
		t.Fatal("empty tree found a key")
	}
	if tr.Size() != 0 {
		t.Fatalf("empty tree size = %d", tr.Size())
	}
	if err := tr.Audit(); err != nil {
		t.Fatalf("empty tree audit: %v", err)
	}
	if tr.Delete(keys.Map(42)) {
		t.Fatal("delete on empty tree returned true")
	}
}

func TestInsertSearchDelete(t *testing.T) {
	tr := newTest(t)
	k := keys.Map(10)
	if !tr.Insert(k) {
		t.Fatal("first insert returned false")
	}
	if !tr.Search(k) {
		t.Fatal("inserted key not found")
	}
	if tr.Insert(k) {
		t.Fatal("duplicate insert returned true")
	}
	if !tr.Delete(k) {
		t.Fatal("delete of present key returned false")
	}
	if tr.Search(k) {
		t.Fatal("deleted key still found")
	}
	if tr.Delete(k) {
		t.Fatal("second delete returned true")
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendingDescendingInserts(t *testing.T) {
	for name, gen := range map[string]func(i int) int64{
		"ascending":  func(i int) int64 { return int64(i) },
		"descending": func(i int) int64 { return int64(1000 - i) },
		"negative":   func(i int) int64 { return int64(-i) },
	} {
		t.Run(name, func(t *testing.T) {
			tr := newTest(t)
			const n = 500
			for i := 0; i < n; i++ {
				if !tr.Insert(keys.Map(gen(i))) {
					t.Fatalf("insert %d returned false", i)
				}
			}
			if tr.Size() != n {
				t.Fatalf("size = %d, want %d", tr.Size(), n)
			}
			if err := tr.Audit(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if !tr.Search(keys.Map(gen(i))) {
					t.Fatalf("key %d missing", gen(i))
				}
			}
		})
	}
}

func TestInOrderIteration(t *testing.T) {
	tr := newTest(t)
	want := []int64{5, -3, 99, 0, 7, 12, -100, 63}
	for _, k := range want {
		tr.Insert(keys.Map(k))
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []int64
	tr.Keys(func(u uint64) bool {
		got = append(got, keys.Unmap(u))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %d want %d (keys not in order)", i, got[i], want[i])
		}
	}
}

func TestIterationEarlyStop(t *testing.T) {
	tr := newTest(t)
	for i := 0; i < 100; i++ {
		tr.Insert(keys.Map(int64(i)))
	}
	n := 0
	tr.Keys(func(uint64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d keys, want 10", n)
	}
}

func TestDeleteRebuildsRouting(t *testing.T) {
	// Delete interior keys and check the remaining set is fully searchable.
	tr := newTest(t)
	for i := int64(0); i < 200; i++ {
		tr.Insert(keys.Map(i))
	}
	for i := int64(0); i < 200; i += 2 {
		if !tr.Delete(keys.Map(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		want := i%2 == 1
		if got := tr.Search(keys.Map(i)); got != want {
			t.Fatalf("search %d = %v, want %v", i, got, want)
		}
	}
	if tr.Size() != 100 {
		t.Fatalf("size = %d, want 100", tr.Size())
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := newTest(t)
	for round := 0; round < 5; round++ {
		for i := int64(0); i < 64; i++ {
			if !tr.Insert(keys.Map(i)) {
				t.Fatalf("round %d: insert %d failed", round, i)
			}
		}
		for i := int64(63); i >= 0; i-- {
			if !tr.Delete(keys.Map(i)) {
				t.Fatalf("round %d: delete %d failed", round, i)
			}
		}
		if tr.Size() != 0 {
			t.Fatalf("round %d: size %d after deleting all", round, tr.Size())
		}
		if err := tr.Audit(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestModelEquivalence drives the tree with random operations and checks
// every return value against a map-based model (property-based test).
func TestModelEquivalence(t *testing.T) {
	type op struct {
		Kind byte
		Key  int16 // small key space provokes structure reuse
	}
	f := func(ops []op) bool {
		tr := newTest(t)
		model := map[int64]bool{}
		for _, o := range ops {
			k := int64(o.Key)
			u := keys.Map(k)
			switch o.Kind % 3 {
			case 0:
				if got, want := tr.Insert(u), !model[k]; got != want {
					t.Logf("insert(%d) = %v, model says %v", k, got, want)
					return false
				}
				model[k] = true
			case 1:
				if got, want := tr.Delete(u), model[k]; got != want {
					t.Logf("delete(%d) = %v, model says %v", k, got, want)
					return false
				}
				delete(model, k)
			default:
				if got, want := tr.Search(u), model[k]; got != want {
					t.Logf("search(%d) = %v, model says %v", k, got, want)
					return false
				}
			}
		}
		if err := tr.Audit(); err != nil {
			t.Log(err)
			return false
		}
		n := 0
		for range model {
			n++
		}
		return tr.Size() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomChurnLarge(t *testing.T) {
	tr := newTest(t)
	rng := rand.New(rand.NewSource(7))
	model := map[int64]bool{}
	for i := 0; i < 50000; i++ {
		k := int64(rng.Intn(2000))
		u := keys.Map(k)
		switch rng.Intn(3) {
		case 0:
			if got, want := tr.Insert(u), !model[k]; got != want {
				t.Fatalf("op %d: insert(%d) = %v want %v", i, k, got, want)
			}
			model[k] = true
		case 1:
			if got, want := tr.Delete(u), model[k]; got != want {
				t.Fatalf("op %d: delete(%d) = %v want %v", i, k, got, want)
			}
			delete(model, k)
		default:
			if got, want := tr.Search(u), model[k]; got != want {
				t.Fatalf("op %d: search(%d) = %v want %v", i, k, got, want)
			}
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleStatsUncontended(t *testing.T) {
	// Table 1 claims: insert = 2 objects, 1 atomic; delete = 0 objects,
	// 3 atomics (flag CAS + BTS + splice CAS) — in the absence of contention.
	tr := newTest(t)
	h := tr.NewHandle()

	h.Insert(keys.Map(50)) // pre-populate so the measured ops are generic
	h.Insert(keys.Map(25))
	h.Insert(keys.Map(75))

	before := h.Stats
	if !h.Insert(keys.Map(60)) {
		t.Fatal("insert failed")
	}
	d := h.Stats
	if got := d.NodesAlloc - before.NodesAlloc; got != 2 {
		t.Fatalf("uncontended insert allocated %d objects, paper says 2", got)
	}
	if got := d.Atomics() - before.Atomics(); got != 1 {
		t.Fatalf("uncontended insert executed %d atomics, paper says 1", got)
	}

	before = h.Stats
	if !h.Delete(keys.Map(60)) {
		t.Fatal("delete failed")
	}
	d = h.Stats
	if got := d.NodesAlloc - before.NodesAlloc; got != 0 {
		t.Fatalf("uncontended delete allocated %d objects, paper says 0", got)
	}
	if got := d.Atomics() - before.Atomics(); got != 3 {
		t.Fatalf("uncontended delete executed %d atomics, paper says 3", got)
	}
}

func TestSearchIsReadOnly(t *testing.T) {
	tr := newTest(t)
	h := tr.NewHandle()
	for i := int64(0); i < 100; i++ {
		h.Insert(keys.Map(i))
	}
	before := h.Stats
	for i := int64(0); i < 200; i++ {
		h.Search(keys.Map(i))
	}
	d := h.Stats
	if d.Atomics() != before.Atomics() {
		t.Fatal("search executed atomic instructions")
	}
	if d.NodesAlloc != before.NodesAlloc {
		t.Fatal("search allocated nodes")
	}
}

func TestSentinelKeysRejectedByAudit(t *testing.T) {
	// The tree never stores sentinels as user keys; iteration must skip the
	// three sentinel leaves even in a populated tree.
	tr := newTest(t)
	tr.Insert(keys.Map(1))
	seen := 0
	tr.Keys(func(u uint64) bool {
		if keys.IsSentinel(u) {
			t.Fatalf("iteration yielded sentinel %#x", u)
		}
		seen++
		return true
	})
	if seen != 1 {
		t.Fatalf("saw %d keys, want 1", seen)
	}
}
