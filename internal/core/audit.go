package core

import (
	"fmt"

	"repro/internal/atomicx"
	"repro/internal/keys"
)

// The functions in this file inspect a quiescent tree: they require that no
// operations run concurrently. They are intended for tests, audits and
// examples — not for the concurrent hot path.

// Size returns the number of user keys stored (quiescent only).
func (t *Tree) Size() int {
	n := 0
	t.Keys(func(uint64) bool { n++; return true })
	return n
}

// Keys visits the stored user keys in ascending order until yield returns
// false (quiescent only). Sentinel keys are not visited.
func (t *Tree) Keys(yield func(key uint64) bool) {
	t.visit(t.r, yield)
}

func (t *Tree) visit(idx uint32, yield func(uint64) bool) bool {
	n := t.ar.Get(idx)
	l, r := atomicx.Addr(n.left.Load()), atomicx.Addr(n.right.Load())
	if l == 0 && r == 0 { // leaf
		if keys.IsSentinel(n.key) {
			return true
		}
		return yield(n.key)
	}
	if l != 0 && !t.visit(l, yield) {
		return false
	}
	if r != 0 && !t.visit(r, yield) {
		return false
	}
	return true
}

// Audit validates every structural invariant of the external BST (quiescent
// only):
//
//   - the sentinel skeleton of Figure 3 is intact,
//   - every internal node has exactly two children, every leaf none,
//   - routing is correct: keys in a node's left subtree are < its key, keys
//     in its right subtree are ≥ its key,
//   - no reachable edge carries a flag or tag (in a quiescent tree a marked
//     edge would mean a delete committed but was never physically applied),
//   - node keys never exceed their sentinel bounds.
//
// It returns nil if the tree is valid.
func (t *Tree) Audit() error {
	rn := t.ar.Get(t.r)
	if rn.key != keys.Inf2 {
		return fmt.Errorf("root key = %#x, want ∞₂", rn.key)
	}
	rl := rn.left.Load()
	if atomicx.Marked(rl) {
		return fmt.Errorf("edge (ℝ, 𝕊) is marked: %#x", rl)
	}
	if atomicx.Addr(rl) != t.s {
		return fmt.Errorf("root's left child is not 𝕊")
	}
	sn := t.ar.Get(t.s)
	if sn.key != keys.Inf1 {
		return fmt.Errorf("𝕊 key = %#x, want ∞₁", sn.key)
	}
	_, err := t.audit(t.r, 0, ^uint64(0))
	return err
}

// audit recursively checks the subtree at idx; keys must lie in [lo, hi).
// hi is inclusive-capped at ∞₂ via ^uint64(0). Returns the number of leaves.
func (t *Tree) audit(idx uint32, lo, hi uint64) (int, error) {
	n := t.ar.Get(idx)
	if n.key < lo || n.key > hi {
		return 0, fmt.Errorf("node %d key %#x outside [%#x, %#x]", idx, n.key, lo, hi)
	}
	lw, rw := n.left.Load(), n.right.Load()
	if atomicx.Marked(lw) || atomicx.Marked(rw) {
		return 0, fmt.Errorf("node %d (key %#x) has marked edge(s) in quiescent tree: left=%#x right=%#x", idx, n.key, lw, rw)
	}
	l, r := atomicx.Addr(lw), atomicx.Addr(rw)
	switch {
	case l == 0 && r == 0:
		return 1, nil // leaf
	case l == 0 || r == 0:
		return 0, fmt.Errorf("node %d (key %#x) has exactly one child: not a legal external BST", idx, n.key)
	}
	// Left subtree: keys strictly below n.key; right: keys ≥ n.key.
	if n.key == 0 {
		return 0, fmt.Errorf("internal node %d has key 0 with a non-empty left subtree", idx)
	}
	nl, err := t.audit(l, lo, n.key-1)
	if err != nil {
		return 0, err
	}
	nr, err := t.audit(r, n.key, hi)
	if err != nil {
		return 0, err
	}
	return nl + nr, nil
}

// DumpStats is a quiescent diagnostic summary.
func (t *Tree) DumpStats() string {
	return fmt.Sprintf("size=%d allocated=%d", t.Size(), t.ar.Allocated())
}

// SpaceStats reports storage accounting (quiescent). Without reclamation,
// ReservedSlots grows with every insert ever performed (the paper's
// no-reclamation protocol); with Config.Reclaim, spliced-out nodes are
// recycled and ReservedSlots plateaus near the live working set.
type SpaceStats struct {
	LiveKeys       int
	ReachableNodes int    // nodes reachable from the root, incl. sentinels
	ReservedSlots  uint64 // arena indices ever reserved (monotonic)
}

// Space computes SpaceStats by walking the tree (quiescent only).
func (t *Tree) Space() SpaceStats {
	var s SpaceStats
	s.LiveKeys = t.Size()
	s.ReservedSlots = t.ar.Allocated()
	var walk func(idx uint32)
	walk = func(idx uint32) {
		if idx == 0 {
			return
		}
		s.ReachableNodes++
		n := t.ar.Get(idx)
		walk(atomicx.Addr(n.left.Load()))
		walk(atomicx.Addr(n.right.Load()))
	}
	walk(t.r)
	return s
}
