package core

// Exhaustive schedule exploration: the real Insert/Delete/Search code is
// driven one atomic step at a time through *every* interleaving (for
// 2-operation scenarios) or a large random sample (3 operations), and
// every complete schedule is validated three ways:
//
//  1. the history must be linearizable (internal/check),
//  2. the final tree must pass the structural audit,
//  3. the final membership must equal initial state + net successful ops.
//
// This catches protocol bugs that wall-clock stress cannot reliably hit —
// e.g. a splice racing a flag at exactly one interleaving — because here
// every interleaving at atomic-step granularity is actually executed.
// The generic stepping machinery lives in internal/settest/explore.go.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/keys"
	"repro/internal/settest"
	"repro/internal/trace"
	"repro/internal/workload"
)

// opSpec describes one concurrent operation of a scenario.
type opSpec struct {
	kind workload.OpKind
	key  int64
}

func (o opSpec) String() string { return fmt.Sprintf("%v(%d)", o.kind, o.key) }

// scenario is a fixed initial tree plus concurrent operations.
type scenario struct {
	name  string
	setup []int64
	ops   []opSpec
}

// builder returns a build function for the explorer plus access to the
// tree built by the most recent call.
func (sc scenario) builder(t *testing.T) (build func() []*settest.SteppedOp, lastTree func() *Tree) {
	var tr *Tree
	build = func() []*settest.SteppedOp {
		tr = New(Config{Capacity: 1 << 16})
		setupH := tr.NewHandle()
		for _, k := range sc.setup {
			if !setupH.Insert(keys.Map(k)) {
				t.Fatalf("setup insert %d failed", k)
			}
		}
		ops := make([]*settest.SteppedOp, len(sc.ops))
		for i, spec := range sc.ops {
			h := tr.NewHandle()
			u := keys.Map(spec.key)
			run := map[workload.OpKind]func() bool{
				workload.OpInsert: func() bool { return h.Insert(u) },
				workload.OpDelete: func() bool { return h.Delete(u) },
				workload.OpSearch: func() bool { return h.Search(u) },
			}[spec.kind]
			ops[i] = settest.LaunchStepped(func(hook func(string)) { h.stepHook = hook }, run)
		}
		return ops
	}
	return build, func() *Tree { return tr }
}

// validateOutcome checks a completed schedule's results against the
// sequential specification and the tree's structural invariants.
func (sc scenario) validateOutcome(t *testing.T, schedule []int, ops []*settest.SteppedOp, tr *Tree) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Fatalf("scenario %q schedule %v: "+format, append([]any{sc.name, schedule}, args...)...)
	}
	if err := tr.Audit(); err != nil {
		fail("audit: %v", err)
	}

	initial := map[int64]bool{}
	for _, k := range sc.setup {
		initial[k] = true
	}

	// Linearizability of the recorded history (grant ticks as time).
	events := make([]trace.Event, len(ops))
	for i, op := range ops {
		events[i] = trace.Event{
			Worker: i,
			Op:     sc.ops[i].kind,
			Key:    sc.ops[i].key,
			Out:    op.Result,
			Start:  int64(op.FirstGrant),
			End:    int64(op.LastGrant) + 1,
		}
	}
	if err := check.Linearizable(events, initial); err != nil {
		fail("%v", err)
	}

	// Final membership must equal initial + net successful changes.
	net := map[int64]int{}
	for i, op := range ops {
		if !op.Result {
			continue
		}
		switch sc.ops[i].kind {
		case workload.OpInsert:
			net[sc.ops[i].key]++
		case workload.OpDelete:
			net[sc.ops[i].key]--
		}
	}
	seen := map[int64]bool{}
	for _, spec := range sc.ops {
		seen[spec.key] = true
	}
	for _, k := range sc.setup {
		seen[k] = true
	}
	h := tr.NewHandle()
	for k := range seen {
		want := net[k] == 1 || (initial[k] && net[k] == 0)
		if got := h.Search(keys.Map(k)); got != want {
			fail("final membership of %d = %v, want %v (initial=%v net=%+d)", k, got, want, initial[k], net[k])
		}
	}
}

var twoOpScenarios = []scenario{
	{"delete-delete-same-key", []int64{50, 25, 75}, []opSpec{
		{workload.OpDelete, 25}, {workload.OpDelete, 25}}},
	{"delete-delete-siblings", []int64{50, 25, 75}, []opSpec{
		{workload.OpDelete, 25}, {workload.OpDelete, 50}}},
	{"insert-insert-same-leaf", []int64{50}, []opSpec{
		{workload.OpInsert, 25}, {workload.OpInsert, 75}}},
	{"insert-insert-same-key", []int64{50}, []opSpec{
		{workload.OpInsert, 25}, {workload.OpInsert, 25}}},
	{"insert-vs-delete-parent", []int64{50, 25, 75}, []opSpec{
		{workload.OpInsert, 30}, {workload.OpDelete, 25}}},
	{"insert-vs-delete-same-key", []int64{50, 25}, []opSpec{
		{workload.OpInsert, 25}, {workload.OpDelete, 25}}},
	{"delete-vs-insert-sibling", []int64{50, 25, 75, 60}, []opSpec{
		{workload.OpDelete, 60}, {workload.OpInsert, 70}}},
	{"search-during-delete", []int64{50, 25, 75}, []opSpec{
		{workload.OpSearch, 25}, {workload.OpDelete, 25}}},
	{"empty-then-refill", []int64{50}, []opSpec{
		{workload.OpDelete, 50}, {workload.OpInsert, 50}}},
}

// TestExhaustiveTwoOpSchedules explores every interleaving of the
// canonical two-operation conflicts on tiny trees.
func TestExhaustiveTwoOpSchedules(t *testing.T) {
	for _, sc := range twoOpScenarios {
		t.Run(sc.name, func(t *testing.T) {
			build, lastTree := sc.builder(t)
			n := settest.ExploreExhaustive(t, build, func(t *testing.T, schedule []int, ops []*settest.SteppedOp) {
				sc.validateOutcome(t, schedule, ops, lastTree())
			})
			if n < 2 {
				t.Fatalf("only %d schedules explored; scenario has no concurrency", n)
			}
			t.Logf("validated %d schedules", n)
		})
	}
}

// TestRandomThreeOpSchedules samples random schedules of three-way
// conflicts (exhaustive enumeration would be millions of replays).
func TestRandomThreeOpSchedules(t *testing.T) {
	scenarios := []scenario{
		{"three-deletes-chain", []int64{40, 20, 60, 10, 30}, []opSpec{
			{workload.OpDelete, 10}, {workload.OpDelete, 30}, {workload.OpDelete, 20}}},
		{"two-deletes-one-insert", []int64{50, 25, 75}, []opSpec{
			{workload.OpDelete, 25}, {workload.OpDelete, 75}, {workload.OpInsert, 60}}},
		{"insert-delete-search", []int64{50, 25}, []opSpec{
			{workload.OpInsert, 30}, {workload.OpDelete, 25}, {workload.OpSearch, 25}}},
	}
	const samples = 300
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			build, lastTree := sc.builder(t)
			rng := rand.New(rand.NewSource(1))
			for s := 0; s < samples; s++ {
				prefix := []int{}
				_, unfinished := settest.RunSchedule(t, build, nil)
				steps := rng.Intn(12)
				for i := 0; i < steps && len(unfinished) > 0; i++ {
					prefix = append(prefix, unfinished[rng.Intn(len(unfinished))])
					_, unfinished = settest.RunSchedule(t, build, prefix)
				}
				finalOps, _ := settest.RunSchedule(t, build, prefix)
				sc.validateOutcome(t, prefix, finalOps, lastTree())
			}
		})
	}
}
