package core

import (
	"runtime"
	"testing"

	"repro/internal/keys"
)

// TestDroppedHandlesReleaseSlots: handles abandoned without Close (as the
// convenience-method pool does under GC pressure) must deregister their
// epoch slots via finalizer, or the domain's slot list — scanned on every
// epoch advance — would grow without bound.
func TestDroppedHandlesReleaseSlots(t *testing.T) {
	tr := New(Config{Capacity: 1 << 16, Reclaim: true})
	const n = 300
	for i := 0; i < n; i++ {
		h := tr.newHandle(1, true) // block size 1, exactly like pooled handles
		h.Insert(keys.Map(int64(i)))
		// dropped without Close
	}
	if got := tr.epoch.Slots(); got < n {
		t.Fatalf("expected ≥%d registered slots before GC, got %d", n, got)
	}
	for i := 0; i < 10 && tr.epoch.Slots() > n/10; i++ {
		runtime.GC() // finalizers run asynchronously; a few cycles settle them
	}
	if got := tr.epoch.Slots(); got > n/10 {
		t.Fatalf("%d slots still registered after GC; handle finalizers not releasing", got)
	}

	// The tree must remain fully functional afterwards.
	h := tr.NewHandle()
	defer h.Close()
	if !h.Insert(keys.Map(99999)) || !h.Search(keys.Map(99999)) {
		t.Fatal("tree broken after slot reclamation")
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}
