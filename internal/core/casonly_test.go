package core

import (
	"testing"

	"repro/internal/keys"
)

// TestCASOnlyDeleteCost verifies the paper's CAS-only remark concretely:
// with BTS replaced by a CAS loop, an uncontended delete still executes
// exactly three atomic instructions (flag CAS, tag CAS, splice CAS).
func TestCASOnlyDeleteCost(t *testing.T) {
	tr := New(Config{Capacity: 1 << 20, CASOnly: true})
	h := tr.NewHandle()
	for _, k := range []int64{50, 25, 75, 60} {
		h.Insert(keys.Map(k))
	}

	before := h.Stats
	if !h.Delete(keys.Map(60)) {
		t.Fatal("delete failed")
	}
	d := h.Stats
	if got := d.Atomics() - before.Atomics(); got != 3 {
		t.Fatalf("uncontended CAS-only delete executed %d atomics, want 3", got)
	}
	if d.BTS != before.BTS {
		t.Fatal("CAS-only mode executed a BTS instruction")
	}
}

// TestCASOnlyMatchesBTSResults runs identical operation sequences through
// both modes and cross-checks the results (differential test).
func TestCASOnlyMatchesBTSResults(t *testing.T) {
	a := New(Config{Capacity: 1 << 20})
	b := New(Config{Capacity: 1 << 20, CASOnly: true})
	ha, hb := a.NewHandle(), b.NewHandle()

	seq := []struct {
		op  byte
		key int64
	}{}
	rng := uint64(12345)
	next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng >> 33 }
	for i := 0; i < 20000; i++ {
		seq = append(seq, struct {
			op  byte
			key int64
		}{byte(next() % 3), int64(next() % 200)})
	}
	for i, s := range seq {
		u := keys.Map(s.key)
		var ra, rb bool
		switch s.op {
		case 0:
			ra, rb = ha.Insert(u), hb.Insert(u)
		case 1:
			ra, rb = ha.Delete(u), hb.Delete(u)
		default:
			ra, rb = ha.Search(u), hb.Search(u)
		}
		if ra != rb {
			t.Fatalf("op %d: BTS mode returned %v, CAS-only returned %v", i, ra, rb)
		}
	}
	if a.Size() != b.Size() {
		t.Fatalf("sizes diverged: %d vs %d", a.Size(), b.Size())
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
}
