package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/keys"
)

// TestDeleteStallDoesNotBlockOthers freezes a delete immediately before
// each of its three atomic steps (flag CAS, sibling-tag BTS, splice CAS)
// and verifies the lock-freedom claim: every other thread keeps completing
// operations — including on the frozen key itself, which helpers finish on
// the stalled thread's behalf.
func TestDeleteStallDoesNotBlockOthers(t *testing.T) {
	for _, site := range []string{FPFlagCAS, FPTag, FPSpliceCAS} {
		t.Run(site, func(t *testing.T) {
			fs := failpoint.NewSet()
			tr := New(Config{Capacity: 1 << 16, Failpoints: fs})
			setup := tr.NewHandle()
			for i := int64(0); i < 100; i++ {
				setup.Insert(keys.Map(i))
			}

			st := fs.Site(site)
			st.StallNext()
			victim := make(chan bool, 1)
			go func() {
				h := tr.NewHandle()
				victim <- h.Delete(keys.Map(50))
			}()
			if !st.WaitStalled(10 * time.Second) {
				t.Fatalf("deleter never reached failpoint %s", site)
			}

			// One thread is frozen mid-delete. Everyone else must finish a
			// full workload, including operations on the frozen key's
			// neighborhood.
			const others = 4
			otherDel50 := make(chan bool, others)
			var wg sync.WaitGroup
			for w := 0; w < others; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := tr.NewHandle()
					base := int64(1000 * (w + 1))
					for i := int64(0); i < 200; i++ {
						h.Insert(keys.Map(base + i))
						h.Search(keys.Map(base + i))
						h.Delete(keys.Map(base + i))
					}
					h.Insert(keys.Map(49))
					h.Search(keys.Map(50))
					otherDel50 <- h.Delete(keys.Map(50))
				}(w)
			}
			progress := make(chan struct{})
			go func() { wg.Wait(); close(progress) }()
			select {
			case <-progress:
			case <-time.After(30 * time.Second):
				t.Fatalf("other threads made no progress while one was stalled at %s", site)
			}

			st.Release()
			var stalledResult bool
			select {
			case stalledResult = <-victim:
			case <-time.After(10 * time.Second):
				t.Fatalf("stalled delete never completed after release at %s", site)
			}

			// Key 50 was deleted exactly once: by the stalled thread or by
			// exactly one of the others, never both and never zero.
			succ := 0
			if stalledResult {
				succ++
			}
			close(otherDel50)
			for ok := range otherDel50 {
				if ok {
					succ++
				}
			}
			if succ != 1 {
				t.Fatalf("key 50 deleted %d times, want exactly 1 (stalled=%v)", succ, stalledResult)
			}
			if setup.Search(keys.Map(50)) {
				t.Fatal("key 50 still present after its delete completed")
			}
			if err := tr.Audit(); err != nil {
				t.Fatalf("tree invalid after stalled delete at %s: %v", site, err)
			}
		})
	}
}

// TestPermanentStallHelpedToCompletion is the chaos version of the stall
// tests above: the deleter is parked *permanently* (for the test's
// lifetime) between its flag CAS and its tag step — the delete is
// logically committed but physically incomplete — and is never released
// while the assertions run. Helping must carry the operation to
// completion without the original thread: a second thread operating on
// the same key finishes the splice, the key becomes unreachable, the same
// key is re-insertable, and the structure audits clean — all while the
// deleter is still frozen. A watchdog bounds every step, so a helping bug
// that blocks (rather than corrupts) also fails the test rather than
// hanging the suite.
func TestPermanentStallHelpedToCompletion(t *testing.T) {
	fs := failpoint.NewSet()
	tr := New(Config{Capacity: 1 << 16, Failpoints: fs})
	setup := tr.NewHandle()
	for i := int64(0); i < 64; i++ {
		setup.Insert(keys.Map(i))
	}

	st := fs.Site(FPTag)
	st.StallNext()
	victim := make(chan bool, 1)
	go func() {
		h := tr.NewHandle()
		victim <- h.Delete(keys.Map(31))
	}()
	if !st.WaitStalled(10 * time.Second) {
		t.Fatal("deleter never reached the tag failpoint")
	}
	// The deleter stays parked for the remainder of the test; release only
	// at cleanup so its goroutine can exit.
	t.Cleanup(func() {
		st.Release()
		select {
		case res := <-victim:
			// The frozen thread owned the flag, so the delete is its.
			if !res {
				t.Error("stalled deleter reported false for the delete it committed")
			}
		case <-time.After(10 * time.Second):
			t.Error("stalled deleter never completed after release")
		}
	})

	// done runs fn on a watchdog budget: helping is lock-free, so every
	// step below must finish in bounded time with the deleter still parked.
	done := func(what string, fn func()) {
		t.Helper()
		ch := make(chan struct{})
		go func() { fn(); close(ch) }()
		select {
		case <-ch:
		case <-time.After(20 * time.Second):
			t.Fatalf("%s did not complete while the deleter was parked (helping stuck?)", what)
		}
	}

	// At this instant the delete is committed (edge flagged) but not
	// applied (no tag, no splice). A second deleter of the same key must
	// help the frozen operation to completion and then find the key gone.
	helper := tr.NewHandle()
	done("helping delete", func() {
		if helper.Delete(keys.Map(31)) {
			t.Error("helper's delete returned true; the frozen thread owns the flagged edge")
		}
	})
	done("search after help", func() {
		if helper.Search(keys.Map(31)) {
			t.Error("key 31 still reachable after helping completed the frozen delete")
		}
	})
	// External BST: a completed delete leaves no trace; the key is
	// immediately re-insertable by anyone, deleter still parked.
	done("reinsert", func() {
		if !helper.Insert(keys.Map(31)) {
			t.Error("re-insert of the helped-deleted key returned false")
		}
		if !helper.Delete(keys.Map(31)) {
			t.Error("delete of the re-inserted key returned false")
		}
	})
	// Neighborhood traffic keeps flowing — the parked thread pins nothing.
	done("neighborhood churn", func() {
		for i := int64(0); i < 1000; i++ {
			k := keys.Map(100 + i%50)
			helper.Insert(k)
			helper.Search(k)
			helper.Delete(k)
		}
	})
	// No reachable flagged/tagged edge survives: helping physically
	// finished what the frozen thread started, so the structure audits
	// clean even though the deleter never advanced past its flag CAS.
	done("audit", func() {
		if err := tr.Audit(); err != nil {
			t.Errorf("tree invalid with deleter parked post-flag: %v", err)
		}
	})
}

// TestStalledReaderVisibleInHealth pins a goroutine mid-operation (via a
// failpoint stall) on a reclaiming tree and checks that Health reports the
// slot as stalled — lagging the global epoch with a frozen retired
// backlog — and that the report clears once the goroutine resumes.
func TestStalledReaderVisibleInHealth(t *testing.T) {
	fs := failpoint.NewSet()
	tr := New(Config{Capacity: 1 << 16, Reclaim: true, Failpoints: fs})
	setup := tr.NewHandle()
	defer setup.Close()
	for i := int64(0); i < 200; i++ {
		setup.Insert(keys.Map(i))
	}

	st := fs.Site(FPTag)
	st.StallNext()
	victim := make(chan bool, 1)
	go func() {
		h := tr.NewHandle()
		defer h.Close()
		victim <- h.Delete(keys.Map(100))
	}()
	if !st.WaitStalled(10 * time.Second) {
		t.Fatal("deleter never reached the tag failpoint")
	}

	// Churn through another handle so epoch advancement is attempted; the
	// stalled, pinned deleter lets the epoch advance at most once and then
	// freezes it, so its slot lags behind.
	h := tr.NewHandle()
	defer h.Close()
	for i := int64(0); i < 150; i++ {
		h.Insert(keys.Map(10000 + i))
		h.Delete(keys.Map(10000 + i))
	}
	h.slot.Flush()
	hl := tr.Health()
	if hl.Stalled != 1 {
		t.Fatalf("Health.Stalled = %d with a reader frozen mid-delete, want 1 (health %+v)", hl.Stalled, hl)
	}
	if hl.MaxEpochLag == 0 {
		t.Fatalf("Health.MaxEpochLag = 0 for a stalled reader (health %+v)", hl)
	}
	if hl.RetiredBacklog == 0 {
		t.Fatalf("Health.RetiredBacklog = 0 despite frozen reclamation (health %+v)", hl)
	}

	st.Release()
	select {
	case <-victim:
	case <-time.After(10 * time.Second):
		t.Fatal("stalled delete never completed after release")
	}
	h.slot.Flush()
	if hl := tr.Health(); hl.Stalled != 0 {
		t.Fatalf("Health.Stalled = %d after the reader resumed, want 0", hl.Stalled)
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}
