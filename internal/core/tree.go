// Package core implements the lock-free external binary search tree of
// Natarajan and Mittal ("Fast Concurrent Lock-Free Binary Search Trees",
// PPoPP 2014) — the paper's primary contribution, referred to as NM-BST.
//
// # Algorithm
//
// The tree is external (leaf-oriented): keys live in leaves; internal nodes
// hold routing keys and always have exactly two children. Coordination
// between operations marks *edges*, not nodes: two bits are stolen from each
// child word —
//
//   - flag: the edge's head node (a leaf) is being deleted,
//   - tag: only the edge's tail node (an internal node) is being deleted.
//
// A delete first flags the edge into its target leaf (one CAS: the
// operation's linearization anchor), then tags the sibling edge of the
// leaf's parent (one BTS, which cannot fail), and finally splices the
// sibling up to the *ancestor* — the last node on the access path reached by
// an untagged edge (one CAS). Because the splice bypasses every tagged node
// between ancestor and parent, a single CAS can physically remove several
// logically deleted leaves at once. An insert needs exactly one CAS.
// Helping is performed only on behalf of deletes, by re-executing the
// cleanup steps; no separate coordination records are ever allocated.
//
// # Representation
//
// Go's garbage collector forbids mark bits inside real pointers, so nodes
// live in a chunked arena (internal/arena) and a child field is a single
// atomic uint64 packing a 32-bit arena index plus the flag and tag bits
// (internal/atomicx). This keeps the paper's instruction set intact: CAS is
// atomic.Uint64.CompareAndSwap and BTS is atomic.Uint64.Or. A GC-friendly
// boxed-pointer variant of the same algorithm, for comparison, is
// internal/nmboxed.
//
// # Usage
//
// Tree methods (Insert/Delete/Search) are safe for arbitrary concurrent use.
// For the hot path, each goroutine should obtain its own *Handle, which
// carries a private node allocator, the reusable seek record the paper
// describes, and operation statistics.
//
// Keys are the internal uint64 key space of internal/keys; the public
// wrapper (package bst at the module root) maps user int64 keys into it.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/atomicx"
	"repro/internal/keys"
	"repro/internal/reclaim"
)

// node is a tree node. Exactly three fields, as in the paper: a key and two
// packed child words. Internal nodes have both children non-nil; leaves have
// both nil. The key, once initialized, never changes while the node is
// reachable.
type node struct {
	key   uint64
	left  atomic.Uint64
	right atomic.Uint64
}

// seekRecord holds the four access-path addresses a seek returns
// (Algorithm 1 of the paper). One record per Handle is reused across
// operations, as in the paper's per-thread seek record.
type seekRecord struct {
	ancestor  uint32 // tail of the last untagged edge on the access path
	successor uint32 // head of that edge
	parent    uint32 // second-to-last node on the access path
	leaf      uint32 // last node on the access path
}

// Config tunes a Tree.
type Config struct {
	// Capacity is the maximum number of arena slots (nodes) the tree may
	// ever allocate. With reclamation disabled (the paper's experimental
	// configuration) every insert permanently consumes two slots, so size
	// this to roughly 2× the total number of inserts in the tree's
	// lifetime. Default: 1 << 26.
	Capacity int
	// Reclaim enables epoch-based reclamation of spliced-out nodes: arena
	// slots are recycled once no operation can still reference them. The
	// paper's measurements run without reclamation; enable this for
	// long-lived trees.
	Reclaim bool
	// CountPrunedLeaves makes successful cleanup splices walk the removed
	// chain to count how many logically deleted leaves were physically
	// removed, recording it in Stats. Implied by Reclaim (the walk happens
	// anyway to retire nodes).
	CountPrunedLeaves bool
	// CASOnly replaces the BTS instruction (atomic Or) in cleanup with a
	// CAS retry loop — the paper's remark that the algorithm "can be
	// easily modified to use only CAS instructions", as an ablation for
	// hardware without a one-shot fetch-or.
	CASOnly bool
}

// DefaultCapacity is the arena capacity used when Config.Capacity is zero.
const DefaultCapacity = 1 << 26

// Tree is a lock-free external binary search tree over the internal uint64
// key space. All methods are safe for concurrent use.
type Tree struct {
	ar  *arena.Arena[node]
	r   uint32 // sentinel internal node ℝ, key ∞₂ (the root)
	s   uint32 // sentinel internal node 𝕊, key ∞₁ (ℝ's left child)
	cfg Config

	epoch   *reclaim.Domain[uint32] // grace periods for arena-slot recycling; nil when !cfg.Reclaim
	handles sync.Pool               // fallback handles for direct Tree method calls
}

// New creates an empty tree (containing only the three sentinel keys of
// Figure 3 in the paper).
func New(cfg Config) *Tree {
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultCapacity
	}
	t := &Tree{ar: arena.New[node](cfg.Capacity), cfg: cfg}
	if cfg.Reclaim {
		t.epoch = reclaim.NewDomain[uint32]()
	}

	boot := t.ar.NewAlloc(8)
	newNode := func(key uint64, left, right uint64) uint32 {
		idx, n := boot.New()
		n.key = key
		n.left.Store(left)
		n.right.Store(right)
		return idx
	}
	// Figure 3: ℝ(∞₂) has left child 𝕊(∞₁) and right child leaf(∞₂);
	// 𝕊 has left child leaf(∞₀) and right child leaf(∞₁). Since every user
	// key is smaller than ∞₀, the whole user tree grows under 𝕊's left
	// child, and no outgoing edge of ℝ or 𝕊 is ever marked.
	l0 := newNode(keys.Inf0, 0, 0)
	l1 := newNode(keys.Inf1, 0, 0)
	l2 := newNode(keys.Inf2, 0, 0)
	t.s = newNode(keys.Inf1, atomicx.Pack(l0, false, false), atomicx.Pack(l1, false, false))
	t.r = newNode(keys.Inf2, atomicx.Pack(t.s, false, false), atomicx.Pack(l2, false, false))

	// Pooled handles back the convenience Tree methods. They reserve one
	// arena slot at a time: sync.Pool may drop handles at any GC (and does
	// so aggressively under the race detector), and a dropped handle
	// strands its unused block.
	t.handles.New = func() any { return t.newHandle(1) }
	return t
}

// NewHandle returns a per-goroutine accessor. A Handle must not be used
// concurrently; each worker goroutine should create its own.
func (t *Tree) NewHandle() *Handle {
	return t.newHandle(0)
}

func (t *Tree) newHandle(block int) *Handle {
	h := &Handle{t: t, al: t.ar.NewAlloc(block)}
	if t.cfg.Reclaim {
		// Capture the allocator, not the handle: the epoch domain holds
		// this closure, and referencing h through it would keep the handle
		// reachable forever, so its finalizer could never run.
		al := h.al
		h.slot = t.epoch.Register(func(idx uint32) { al.Recycle(idx) })
		// Safety net for handles that are dropped instead of Closed (the
		// convenience-method pool sheds handles at GC): deregister the
		// epoch slot so the domain's slot list cannot grow without bound.
		runtime.SetFinalizer(h, func(h *Handle) {
			if h.slot != nil {
				h.slot.Close()
			}
		})
	}
	return h
}

// Search reports whether key is present, using a pooled handle. Hot paths
// should call Handle.Search instead.
func (t *Tree) Search(key uint64) bool {
	h := t.handles.Get().(*Handle)
	ok := h.Search(key)
	t.handles.Put(h)
	return ok
}

// Insert adds key if absent, using a pooled handle.
func (t *Tree) Insert(key uint64) bool {
	h := t.handles.Get().(*Handle)
	ok := h.Insert(key)
	t.handles.Put(h)
	return ok
}

// Delete removes key if present, using a pooled handle.
func (t *Tree) Delete(key uint64) bool {
	h := t.handles.Get().(*Handle)
	ok := h.Delete(key)
	t.handles.Put(h)
	return ok
}

// NodesAllocated returns the number of arena slots reserved so far
// (diagnostic; includes block-allocation slack).
func (t *Tree) NodesAllocated() uint64 { return t.ar.Allocated() }
