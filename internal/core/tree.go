// Package core implements the lock-free external binary search tree of
// Natarajan and Mittal ("Fast Concurrent Lock-Free Binary Search Trees",
// PPoPP 2014) — the paper's primary contribution, referred to as NM-BST.
//
// # Algorithm
//
// The tree is external (leaf-oriented): keys live in leaves; internal nodes
// hold routing keys and always have exactly two children. Coordination
// between operations marks *edges*, not nodes: two bits are stolen from each
// child word —
//
//   - flag: the edge's head node (a leaf) is being deleted,
//   - tag: only the edge's tail node (an internal node) is being deleted.
//
// A delete first flags the edge into its target leaf (one CAS: the
// operation's linearization anchor), then tags the sibling edge of the
// leaf's parent (one BTS, which cannot fail), and finally splices the
// sibling up to the *ancestor* — the last node on the access path reached by
// an untagged edge (one CAS). Because the splice bypasses every tagged node
// between ancestor and parent, a single CAS can physically remove several
// logically deleted leaves at once. An insert needs exactly one CAS.
// Helping is performed only on behalf of deletes, by re-executing the
// cleanup steps; no separate coordination records are ever allocated.
//
// # Representation
//
// Go's garbage collector forbids mark bits inside real pointers, so nodes
// live in a chunked arena (internal/arena) and a child field is a single
// atomic uint64 packing a 32-bit arena index plus the flag and tag bits
// (internal/atomicx). This keeps the paper's instruction set intact: CAS is
// atomic.Uint64.CompareAndSwap and BTS is atomic.Uint64.Or. A GC-friendly
// boxed-pointer variant of the same algorithm, for comparison, is
// internal/nmboxed.
//
// # Usage
//
// Tree methods (Insert/Delete/Search) are safe for arbitrary concurrent use.
// For the hot path, each goroutine should obtain its own *Handle, which
// carries a private node allocator, the reusable seek record the paper
// describes, and operation statistics.
//
// Keys are the internal uint64 key space of internal/keys; the public
// wrapper (package bst at the module root) maps user int64 keys into it.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/atomicx"
	"repro/internal/failpoint"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/reclaim"
)

// node is a tree node. Exactly three fields, as in the paper: a key and two
// packed child words. Internal nodes have both children non-nil; leaves have
// both nil. The key, once initialized, never changes while the node is
// reachable.
type node struct {
	key   uint64
	left  atomic.Uint64
	right atomic.Uint64
}

// seekRecord holds the four access-path addresses a seek returns
// (Algorithm 1 of the paper). One record per Handle is reused across
// operations, as in the paper's per-thread seek record.
type seekRecord struct {
	ancestor  uint32 // tail of the last untagged edge on the access path
	successor uint32 // head of that edge
	parent    uint32 // second-to-last node on the access path
	leaf      uint32 // last node on the access path
}

// Config tunes a Tree.
type Config struct {
	// Capacity is the maximum number of arena slots (nodes) the tree may
	// ever allocate. With reclamation disabled (the paper's experimental
	// configuration) every insert permanently consumes two slots, so size
	// this to roughly 2× the total number of inserts in the tree's
	// lifetime. Default: 1 << 26.
	Capacity int
	// Reclaim enables epoch-based reclamation of spliced-out nodes: arena
	// slots are recycled once no operation can still reference them. The
	// paper's measurements run without reclamation; enable this for
	// long-lived trees.
	Reclaim bool
	// CountPrunedLeaves makes successful cleanup splices walk the removed
	// chain to count how many logically deleted leaves were physically
	// removed, recording it in Stats. Implied by Reclaim (the walk happens
	// anyway to retire nodes).
	CountPrunedLeaves bool
	// CASOnly replaces the BTS instruction (atomic Or) in cleanup with a
	// CAS retry loop — the paper's remark that the algorithm "can be
	// easily modified to use only CAS instructions", as an ablation for
	// hardware without a one-shot fetch-or.
	CASOnly bool
	// Failpoints, when non-nil, wires the tree's atomic steps and its
	// arena allocation site into a fault-injection registry (see
	// internal/failpoint and the FP* site names). Test-only: leave nil in
	// production — a nil set costs one pointer comparison per site.
	Failpoints *failpoint.Set
	// Metrics, when non-nil, wires the tree's hot paths into a live
	// telemetry registry: each handle gets a private cache-line-padded
	// shard for contention counters (CAS failures per step, helping,
	// restarts) and sampled power-of-two latency histograms, and the tree
	// registers a snapshot hook folding in arena and epoch telemetry.
	// When nil every instrumentation site costs one nil check.
	Metrics *metrics.Registry
	// TrackDirty gives every handle a private sharded mutation counter
	// (see dirty.go) that successful inserts and deletes bump before
	// returning. The order-statistics layer (internal/orderstat) reads
	// the total to decide whether its cached summaries are still exact.
	// When false the hot paths pay one nil check per successful mutation.
	TrackDirty bool
}

// DefaultCapacity is the arena capacity used when Config.Capacity is zero.
const DefaultCapacity = 1 << 26

// Tree is a lock-free external binary search tree over the internal uint64
// key space. All methods are safe for concurrent use.
type Tree struct {
	ar  *arena.Arena[node]
	r   uint32 // sentinel internal node ℝ, key ∞₂ (the root)
	s   uint32 // sentinel internal node 𝕊, key ∞₁ (ℝ's left child)
	cfg Config

	epoch   *reclaim.Domain[uint32] // grace periods for arena-slot recycling; nil when !cfg.Reclaim
	fp      *failpoint.Set          // fault injection; nil in production
	met     *metrics.Registry       // live telemetry; nil when disabled
	dirty   *DirtyCounter           // mutation counter for orderstat; nil when !cfg.TrackDirty
	handles sync.Pool               // fallback handles for direct Tree method calls

	// Tree-level Stats totals folded in from pooled handles at Put time,
	// so counts survive sync.Pool dropping a handle at GC. Guarded by
	// statsMu; only the convenience Tree methods (not the hot Handle
	// paths) touch it.
	statsMu     sync.Mutex
	pooledStats Stats
}

// New creates an empty tree (containing only the three sentinel keys of
// Figure 3 in the paper).
func New(cfg Config) *Tree {
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultCapacity
	}
	t := &Tree{ar: arena.New[node](cfg.Capacity), cfg: cfg, fp: cfg.Failpoints, met: cfg.Metrics}
	if cfg.TrackDirty {
		t.dirty = &DirtyCounter{}
	}
	if cfg.Reclaim {
		t.epoch = reclaim.NewDomain[uint32]()
		// A handle that closes mid-grace-period (pool churn, finalizer)
		// hands its un-freed retirees to the domain; route them back to the
		// arena through the shared pool, which any goroutine may touch.
		t.epoch.SetOrphanFree(t.ar.RecycleShared)
	}
	if t.met != nil {
		// One snapshot hook folds in everything maintained outside the
		// sharded hot path: arena allocation/spill telemetry and — when
		// reclamation is on — epoch progress and backlog gauges.
		ar, ep := t.ar, t.epoch
		capacity := cfg.Capacity
		// Counters and gauges both accumulate (+=) so several trees sharing
		// one registry — the shards of a forest — sum sensibly; a snapshot
		// starts from fresh maps, so for a single tree += equals =. (Summed
		// epoch_current is only meaningful per tree; forests report the max
		// epoch through Health instead.)
		t.met.AddHook(func(s *metrics.Snapshot) {
			s.External["arena_spill_hits_total"] += ar.SpillHits()
			s.External["arena_recycled_nodes_total"] += ar.Recycled()
			s.Gauges["arena_capacity_nodes"] += float64(capacity)
			s.Gauges["arena_allocated_nodes"] += float64(ar.Allocated())
			if ep != nil {
				s.External["epoch_advances_total"] += ep.Advances()
				s.External["epoch_flushes_total"] += ep.Flushes()
				eh := ep.Health()
				s.Gauges["epoch_current"] += float64(eh.Epoch)
				s.Gauges["epoch_slots"] += float64(eh.Slots)
				s.Gauges["epoch_pinned_slots"] += float64(eh.Pinned)
				s.Gauges["epoch_stalled_slots"] += float64(eh.Stalled)
				s.Gauges["epoch_retired_backlog_nodes"] += float64(eh.RetiredBacklog)
			}
		})
	}

	boot := t.ar.NewAlloc(8)
	newNode := func(key uint64, left, right uint64) uint32 {
		idx, n := boot.New()
		n.key = key
		n.left.Store(left)
		n.right.Store(right)
		return idx
	}
	// Figure 3: ℝ(∞₂) has left child 𝕊(∞₁) and right child leaf(∞₂);
	// 𝕊 has left child leaf(∞₀) and right child leaf(∞₁). Since every user
	// key is smaller than ∞₀, the whole user tree grows under 𝕊's left
	// child, and no outgoing edge of ℝ or 𝕊 is ever marked.
	l0 := newNode(keys.Inf0, 0, 0)
	l1 := newNode(keys.Inf1, 0, 0)
	l2 := newNode(keys.Inf2, 0, 0)
	t.s = newNode(keys.Inf1, atomicx.Pack(l0, false, false), atomicx.Pack(l1, false, false))
	t.r = newNode(keys.Inf2, atomicx.Pack(t.s, false, false), atomicx.Pack(l2, false, false))
	// Return the bootstrap allocator's unused reservation to the shared
	// pool — it matters for tightly bounded arenas.
	boot.Release()

	// Pooled handles back the convenience Tree methods. They reserve one
	// arena slot at a time: sync.Pool may drop handles at any GC (and does
	// so aggressively under the race detector), and a dropped handle
	// strands its unused block.
	t.handles.New = func() any { return t.newHandle(1, true) }
	return t
}

// NewHandle returns a per-goroutine accessor. A Handle must not be used
// concurrently; each worker goroutine should create its own.
func (t *Tree) NewHandle() *Handle {
	return t.newHandle(0, false)
}

// adaptiveBlock sizes a handle's private arena reservation. Unbounded
// arenas use the arena's default (amortizing the shared-cursor CAS);
// tightly bounded arenas get proportionally small blocks, so that many
// handles — e.g. one per server connection — cannot strand the capacity in
// private reservations while peers starve at ErrCapacity.
func adaptiveBlock(capacity int) int {
	if capacity <= 0 {
		return 0 // NewAlloc substitutes arena.DefaultBlock
	}
	b := capacity / 64
	if b < 1 {
		b = 1
	}
	if b > arena.DefaultBlock {
		b = arena.DefaultBlock
	}
	return b
}

// newHandle builds an accessor. sharedFree selects where the epoch domain
// returns this handle's reclaimed nodes: explicit handles recycle into
// their private allocator free list (fast reuse by the owning goroutine),
// while pooled handles recycle straight into the arena's shared pool —
// sync.Pool migrates and drops handles at will, and capacity parked in a
// private free list would be invisible to every other handle until a GC
// finalizer donates it.
func (t *Tree) newHandle(block int, sharedFree bool) *Handle {
	if block <= 0 {
		block = adaptiveBlock(t.cfg.Capacity)
	}
	h := &Handle{t: t, al: t.ar.NewAlloc(block)}
	if t.cfg.Reclaim {
		if sharedFree {
			h.slot = t.epoch.Register(t.ar.RecycleShared)
		} else {
			// Capture the allocator, not the handle: the epoch domain holds
			// this closure, and referencing h through it would keep the
			// handle reachable forever, so its finalizer could never run.
			al := h.al
			h.slot = t.epoch.Register(func(idx uint32) { al.Recycle(idx) })
		}
	}
	if t.met != nil {
		h.m = t.met.NewShard()
		h.mmask = t.met.SampleMask()
	}
	if t.dirty != nil {
		h.ds = t.dirty.NewShard()
	}
	// Safety net for handles that are dropped instead of Closed (the
	// convenience-method pool sheds handles at GC): deregister the epoch
	// slot so the domain's slot list cannot grow without bound, donate the
	// allocator's unused indices back to the arena's shared pool so a
	// dropped handle never strands capacity, and retire the metrics shard
	// so the registry stays bounded without losing the handle's counts.
	met, dirty := t.met, t.dirty
	runtime.SetFinalizer(h, func(h *Handle) {
		if h.slot != nil {
			h.slot.Close()
		}
		h.al.Release()
		if h.m != nil {
			met.Retire(h.m)
		}
		if h.ds != nil {
			dirty.Retire(h.ds)
		}
	})
	return h
}

// putHandle folds the handle's Stats into the tree-level totals before
// returning it to the pool. sync.Pool may drop the handle at any GC;
// without this fold the dropped handle's counts would vanish with it.
func (t *Tree) putHandle(h *Handle) {
	t.statsMu.Lock()
	t.pooledStats.Add(h.Stats)
	t.statsMu.Unlock()
	h.Stats = Stats{}
	if h.slot != nil && h.slot.Pending() > 0 {
		// Flush retirees before parking the handle: a pooled handle may sit
		// idle (or be dropped) indefinitely, and nothing else can free the
		// nodes queued on its slot. Best effort — anything a concurrent pin
		// blocks here is recovered by the finalizer's Close → orphan path.
		h.slot.Flush()
	}
	t.handles.Put(h)
}

// PooledStats returns the cumulative Stats of every operation performed
// through the Tree's convenience methods (Search/Insert/TryInsert/Delete).
// Handle-path operations are not included — aggregate Handle.Stats for
// those. Counts survive sync.Pool shedding handles at GC.
func (t *Tree) PooledStats() Stats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.pooledStats
}

// Search reports whether key is present, using a pooled handle. Hot paths
// should call Handle.Search instead. The deferred put guarantees the
// handle (and its epoch slot) returns to the pool even if the operation
// panics and is recovered upstream.
func (t *Tree) Search(key uint64) bool {
	h := t.handles.Get().(*Handle)
	defer t.putHandle(h)
	return h.Search(key)
}

// Insert adds key if absent, using a pooled handle. It panics on arena
// exhaustion; use TryInsert for the fail-soft path.
func (t *Tree) Insert(key uint64) bool {
	h := t.handles.Get().(*Handle)
	defer t.putHandle(h)
	return h.Insert(key)
}

// TryInsert adds key if absent, using a pooled handle. Instead of
// panicking on arena exhaustion it returns ErrCapacity, leaving the tree
// fully usable (see Handle.TryInsert).
func (t *Tree) TryInsert(key uint64) (bool, error) {
	h := t.handles.Get().(*Handle)
	defer t.putHandle(h)
	return h.TryInsert(key)
}

// Delete removes key if present, using a pooled handle.
func (t *Tree) Delete(key uint64) bool {
	h := t.handles.Get().(*Handle)
	defer t.putHandle(h)
	return h.Delete(key)
}

// LookupBatch reports, in out[i], whether ks[i] is present, using a pooled
// handle; see Handle.LookupBatch for the batching contract (per-op
// linearizability, shared wavefront descent).
func (t *Tree) LookupBatch(ks []uint64, out []bool) {
	h := t.handles.Get().(*Handle)
	defer t.putHandle(h)
	h.LookupBatch(ks, out)
}

// InsertBatch inserts every key with TryInsert semantics, using a pooled
// handle; see Handle.InsertBatch.
func (t *Tree) InsertBatch(ks []uint64, out []bool, errs []error) {
	h := t.handles.Get().(*Handle)
	defer t.putHandle(h)
	h.InsertBatch(ks, out, errs)
}

// DeleteBatch deletes every key, using a pooled handle; see
// Handle.DeleteBatch.
func (t *Tree) DeleteBatch(ks []uint64, out []bool) {
	h := t.handles.Get().(*Handle)
	defer t.putHandle(h)
	h.DeleteBatch(ks, out)
}

// Range visits keys in [lo, hi] ascending using a pooled handle; see
// Handle.Range for the concurrency contract (epoch-protected, weakly
// consistent).
func (t *Tree) Range(lo, hi uint64, yield func(key uint64) bool) {
	h := t.handles.Get().(*Handle)
	defer t.putHandle(h)
	h.Range(lo, hi, yield)
}

// Metrics returns the tree's telemetry registry, or nil when the tree was
// built without Config.Metrics.
func (t *Tree) Metrics() *metrics.Registry { return t.met }

// Dirty returns the tree's mutation counter, or nil when the tree was
// built without Config.TrackDirty. The order-statistics layer compares
// Total() across a summary rebuild to decide whether the summary is exact.
func (t *Tree) Dirty() *DirtyCounter { return t.dirty }

// Close retires the tree's reclamation domain (when reclamation is on):
// every still-registered epoch slot — explicit handles that were never
// Closed and pooled handles parked in the sync.Pool — is deactivated so it
// can never again block epoch advancement, and retired nodes whose grace
// period has elapsed are recycled. The tree must be quiescent: no operation
// may be in flight and none may start afterwards. Idempotent; a later
// finalizer or Handle.Close on an already-closed slot is a no-op.
func (t *Tree) Close() {
	if t.epoch != nil {
		t.epoch.Close()
	}
}

// NodesAllocated returns the number of arena slots reserved so far
// (diagnostic; includes block-allocation slack).
func (t *Tree) NodesAllocated() uint64 { return t.ar.Allocated() }

// Health is a point-in-time snapshot of the tree's capacity and
// reclamation state. Safe to call concurrently with operations; values are
// approximate under load.
type Health struct {
	Capacity  int    // configured arena bound (nodes); the hard allocation limit
	Allocated uint64 // arena indices reserved so far (monotonic, incl. block slack)
	Recycled  uint64 // indices returned to free lists for reuse
	Reclaim   bool   // whether epoch-based reclamation is enabled

	// Epoch-domain diagnostics; zero when Reclaim is false.
	Epoch          uint64 // current global epoch
	Slots          int    // registered epoch slots (≈ live handles)
	Pinned         int    // slots currently inside an operation
	Stalled        int    // pinned slots lagging the global epoch — reclamation is starved
	MaxEpochLag    uint64 // largest lag among pinned slots
	RetiredBacklog int    // spliced-out nodes still awaiting their grace period
}

// Health reports capacity and reclamation state so operators can see
// exhaustion and reclamation starvation (a stalled reader pinning an old
// epoch) before they become failures.
func (t *Tree) Health() Health {
	h := Health{
		Capacity:  t.cfg.Capacity,
		Allocated: t.ar.Allocated(),
		Recycled:  t.ar.Recycled(),
		Reclaim:   t.cfg.Reclaim,
	}
	if t.epoch != nil {
		eh := t.epoch.Health()
		h.Epoch = eh.Epoch
		h.Slots = eh.Slots
		h.Pinned = eh.Pinned
		h.Stalled = eh.Stalled
		h.MaxEpochLag = eh.MaxLag
		h.RetiredBacklog = eh.RetiredBacklog
	}
	return h
}
