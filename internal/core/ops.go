package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/atomicx"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/reclaim"
)

// ErrCapacity is returned by TryInsert when the tree's arena is exhausted
// and bounded retries (with epoch flushes) could not recover a slot. It is
// the same sentinel value as arena.ErrCapacity, so errors.Is works across
// layers.
var ErrCapacity = arena.ErrCapacity

// Failpoint site names understood by trees built with Config.Failpoints.
// The three delete sites fire immediately *before* the corresponding
// atomic instruction; the alloc site fires on every node allocation
// attempt and, when triggered, makes the attempt fail as if the arena were
// exhausted.
const (
	FPAlloc     = "arena-alloc" // node allocation in insert
	FPFlagCAS   = "flag-cas"    // delete step 1: flag the edge into the leaf
	FPTag       = "tag"         // delete step 2: tag the sibling edge (BTS)
	FPSpliceCAS = "splice-cas"  // delete step 3: splice at the ancestor
	FPInsertCAS = "insert-cas"  // insert's single CAS
	FPSeek      = "seek"        // start of each seek phase
)

// Stats counts the work a Handle has performed. All fields are maintained
// without atomics (a Handle is single-goroutine); aggregate across handles
// for totals. These counters regenerate Table 1 of the paper (objects
// allocated and atomic instructions executed per operation).
type Stats struct {
	Searches uint64 // completed search operations
	Inserts  uint64 // completed insert operations (hit or miss)
	Deletes  uint64 // completed delete operations (hit or miss)

	CASSucceeded uint64 // successful CAS instructions
	CASFailed    uint64 // failed CAS instructions
	BTS          uint64 // bit-test-and-set instructions
	NodesAlloc   uint64 // tree nodes allocated (fresh or recycled)

	Seeks        uint64 // seek-phase executions (≥1 per operation)
	HelpAttempts uint64 // cleanup invocations on behalf of another delete
	SpliceWins   uint64 // successful cleanup CASes (physical removals)
	PrunedLeaves uint64 // leaves physically removed by this handle's splices
	Recycled     uint64 // nodes retired for arena recycling

	CapacityFailures uint64 // TryInserts that returned ErrCapacity
	CapacityRetries  uint64 // epoch-flush retries taken on the capacity path

	Batches            uint64 // batched entry-point invocations
	BatchOps           uint64 // operations executed inside batches
	BatchSkippedLevels uint64 // seek levels skipped by path-sharing resumes
}

// add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Searches += o.Searches
	s.Inserts += o.Inserts
	s.Deletes += o.Deletes
	s.CASSucceeded += o.CASSucceeded
	s.CASFailed += o.CASFailed
	s.BTS += o.BTS
	s.NodesAlloc += o.NodesAlloc
	s.Seeks += o.Seeks
	s.HelpAttempts += o.HelpAttempts
	s.SpliceWins += o.SpliceWins
	s.PrunedLeaves += o.PrunedLeaves
	s.Recycled += o.Recycled
	s.CapacityFailures += o.CapacityFailures
	s.CapacityRetries += o.CapacityRetries
	s.Batches += o.Batches
	s.BatchOps += o.BatchOps
	s.BatchSkippedLevels += o.BatchSkippedLevels
}

// Atomics returns the total number of atomic read-modify-write instructions
// executed (CAS attempts plus BTS), the quantity Table 1 reports.
func (s *Stats) Atomics() uint64 { return s.CASSucceeded + s.CASFailed + s.BTS }

// Handle is a single goroutine's accessor to a Tree. It owns a private node
// allocator, the per-thread seek record from the paper, spare nodes reused
// across insert retries, and statistics. Handles are cheap; create one per
// worker goroutine.
type Handle struct {
	t  *Tree
	al *arena.Alloc[node]
	sr seekRecord

	// Spare nodes surviving a failed insert CAS, so a retried insert does
	// not allocate again (keeps the paper's two-objects-per-insert bound).
	spareInternal uint32
	spareLeaf     uint32

	slot *reclaim.Slot[uint32] // nil unless the tree reclaims memory

	// Scratch for the batched entry points (batch.go): the key sort buffer,
	// the recorded access path that write batches resume seeks from, the
	// per-key cursors of the wavefront, and the per-key seek records a
	// write batch's wavefront precomputes. unpinGen counts the times this
	// handle dropped its pin mid-batch (capacity recovery); a bump tells
	// the apply loop its precomputed records may hold recycled indices.
	batch    []batchEnt
	path     batchPath
	wave     []uint32
	recs     []waveEnt
	unpinGen uint64

	// m is this handle's private telemetry shard; nil unless the tree was
	// built with Config.Metrics, in which case every instrumentation site
	// is a single nil check. tick and mmask implement latency sampling:
	// the operation is timed when tick&mmask == 0.
	m     *metrics.Shard
	tick  uint64
	mmask uint64

	// ds is this handle's private dirty shard (Config.TrackDirty);
	// successful mutations bump it before returning so the orderstat
	// layer can tell whether its cached summaries have been overtaken.
	ds *DirtyShard

	// stepHook, when non-nil, is invoked immediately before every atomic
	// step of this handle's operations (and at each seek). It exists for
	// the exhaustive interleaving explorer in schedule_test.go, which
	// blocks here to drive operations one atomic step at a time; it is nil
	// in production (a single predictable branch on the hot path).
	stepHook func(point string)

	Stats Stats
}

func (h *Handle) hook(point string) {
	if h.stepHook != nil {
		h.stepHook(point)
	}
	if h.t.fp != nil {
		h.t.fp.Hit(point) // stall-style failpoints park here; return value unused
	}
}

func (h *Handle) pin() {
	if h.slot != nil {
		h.slot.Pin()
	}
}

func (h *Handle) unpin() {
	if h.slot != nil {
		h.slot.Unpin()
	}
}

// Close releases the handle's reclamation slot, if any, donates its
// allocator's unused arena reservations to the tree's shared pool, and
// retires its metrics shard (folding the counts into the registry so they
// survive the handle). After Close the handle must not be used.
func (h *Handle) Close() {
	if h.slot != nil {
		h.slot.Close()
		h.slot = nil
	}
	h.al.Release()
	if h.m != nil {
		h.t.met.Retire(h.m)
		h.m = nil
	}
	if h.ds != nil {
		h.t.dirty.Retire(h.ds)
		h.ds = nil
	}
	runtime.SetFinalizer(h, nil)
}

// bumpDirty records one successful mutation on the handle's dirty shard.
// It must run before the mutating call returns: the orderstat layer's
// exactness test is "no completed mutation is uncounted", which holds
// precisely because the bump happens on the completing goroutine between
// the linearization point and the return.
func (h *Handle) bumpDirty() {
	if h.ds != nil {
		h.ds.Bump()
	}
}

// seek is Algorithm 1: traverse from the root to a leaf, maintaining the
// four-pointer seek record. ancestor/successor track the tail/head of the
// last *untagged* edge seen before the parent, so that cleanup can splice
// around every node already being removed.
func (h *Handle) seek(key uint64) {
	t := h.t
	ar := t.ar
	sr := &h.sr
	h.Stats.Seeks++
	h.hook(FPSeek)

	sr.ancestor = t.r
	sr.successor = t.s
	sr.parent = t.s

	// parentField is the child word of the edge (parent → leaf);
	// currentField is the child word of the edge (leaf → current).
	parentField := ar.Get(t.s).left.Load()
	sr.leaf = atomicx.Addr(parentField)
	currentField := ar.Get(sr.leaf).left.Load()
	current := atomicx.Addr(currentField)

	for current != 0 {
		// The edge into the node about to become the parent is untagged:
		// it is not being spliced out, so it can serve as ancestor.
		if !atomicx.Tag(parentField) {
			sr.ancestor = sr.parent
			sr.successor = sr.leaf
		}
		sr.parent = sr.leaf
		sr.leaf = current
		parentField = currentField

		cn := ar.Get(current)
		if key < cn.key {
			currentField = cn.left.Load()
		} else {
			currentField = cn.right.Load()
		}
		current = atomicx.Addr(currentField)
	}
}

// sampleStart implements sampled latency timing: it advances the handle's
// operation tick and, one operation in every SampleEvery, reads the clock.
// Call only when h.m != nil; sampled is false for the untimed majority.
func (h *Handle) sampleStart() (t0 time.Time, sampled bool) {
	h.tick++
	if h.tick&h.mmask != 0 {
		return time.Time{}, false
	}
	return time.Now(), true
}

// Search reports whether key is present (Algorithm 2, lines 34–39). It is
// wait-free for a fixed tree and lock-free in general; it never writes to
// shared memory.
func (h *Handle) Search(key uint64) bool {
	if h.m != nil {
		return h.searchMetered(key)
	}
	return h.search(key)
}

func (h *Handle) searchMetered(key uint64) bool {
	t0, sampled := h.sampleStart()
	found := h.search(key)
	h.m.Inc(metrics.OpsSearch)
	if sampled {
		h.m.Observe(metrics.OpSearch, time.Since(t0))
	}
	return found
}

func (h *Handle) search(key uint64) bool {
	h.pin()
	h.seek(key)
	found := h.t.ar.Get(h.sr.leaf).key == key
	h.unpin()
	h.Stats.Searches++
	return found
}

// Range visits stored keys in [lo, hi] in ascending order until yield
// returns false. Unlike the quiescent Tree.Keys walk it is safe to run
// concurrently with writers: the traversal holds the handle's epoch pin, so
// every node it can reach stays allocated for the duration, and child words
// are read atomically with their flag/tag bits stripped.
//
// The scan is weakly consistent, in the style of concurrent-map iterators:
// every key present for the whole scan is visited exactly once (node keys
// are immutable and an external BST never moves a leaf), while keys
// inserted or deleted concurrently may or may not appear. It is not a
// linearizable snapshot. Sentinel keys are never visited.
//
// One long scan pins one epoch for its whole duration, deferring
// reclamation tree-wide; callers serving unbounded ranges should cap the
// number of keys per scan (as internal/server does) rather than let a
// client hold the epoch indefinitely.
func (h *Handle) Range(lo, hi uint64, yield func(key uint64) bool) {
	if lo > hi {
		return
	}
	h.pin()
	defer h.unpin()
	h.rangeWalk(h.t.r, lo, hi, yield)
}

// rangeWalk recursively visits the subtree at idx, pruning by the external
// BST routing invariant: left subtree < node key ≤ right subtree. The
// subtree reached through a spliced-out edge is still intact (retired nodes
// are immutable and protected by the pin), so a scan that raced a delete
// sees the pre-delete subtree — weak consistency, never a torn read.
func (h *Handle) rangeWalk(idx uint32, lo, hi uint64, yield func(uint64) bool) bool {
	n := h.t.ar.Get(idx)
	l := atomicx.Addr(n.left.Load())
	r := atomicx.Addr(n.right.Load())
	if l == 0 && r == 0 { // leaf
		if keys.IsSentinel(n.key) || n.key < lo || n.key > hi {
			return true
		}
		return yield(n.key)
	}
	if lo < n.key && l != 0 {
		if !h.rangeWalk(l, lo, hi, yield) {
			return false
		}
	}
	if hi >= n.key && r != 0 {
		if !h.rangeWalk(r, lo, hi, yield) {
			return false
		}
	}
	return true
}

// tryAlloc is the fallible node allocation: it consults the FPAlloc
// failpoint (when a registry is wired in) and then the arena's TryNew.
func (h *Handle) tryAlloc() (uint32, bool) {
	if h.t.fp != nil && h.t.fp.Hit(FPAlloc) {
		return 0, false
	}
	idx, _, ok := h.al.TryNew()
	return idx, ok
}

// trySpares returns the two nodes an insert will link, allocating only if
// no spares survive from a failed attempt. On exhaustion it reports
// ok=false after releasing any node reserved by this call back to the
// handle's free list, so a failed insert holds nothing.
func (h *Handle) trySpares() (internalIdx, leafIdx uint32, ok bool) {
	if h.spareInternal == 0 {
		idx, ok := h.tryAlloc()
		if !ok {
			return 0, 0, false
		}
		h.spareInternal = idx
		h.Stats.NodesAlloc++
	}
	if h.spareLeaf == 0 {
		idx, ok := h.tryAlloc()
		if !ok {
			h.al.Recycle(h.spareInternal)
			h.spareInternal = 0
			return 0, 0, false
		}
		h.spareLeaf = idx
		h.Stats.NodesAlloc++
	}
	return h.spareInternal, h.spareLeaf, true
}

// Insert adds key to the tree; it returns false if the key was already
// present (Algorithm 2, lines 40–59). A successful insert executes exactly
// one atomic instruction: the CAS that swings the parent's child word from
// the old leaf to the new internal node. Insert panics when the arena is
// exhausted (the paper's benchmark configuration sizes the arena for the
// whole run); TryInsert is the non-panicking path.
func (h *Handle) Insert(key uint64) bool {
	ok, err := h.TryInsert(key)
	if err != nil {
		panic("core: " + err.Error() + " (size Config.Capacity for the workload, enable Reclaim, or use TryInsert)")
	}
	return ok
}

// maxCapacityRetries bounds how many times TryInsert re-attempts after an
// allocation failure, each attempt preceded by an epoch flush (which can
// recycle spliced-out nodes into the free list) and a backoff.
const maxCapacityRetries = 8

// TryInsert adds key to the tree, returning (false, ErrCapacity) when node
// allocation fails and bounded retries cannot recover a slot. A failed
// TryInsert performs no tree writes: the structure stays valid, searches
// and deletes keep working, and inserts succeed again once reclamation
// recycles slots (deletes + grace periods).
func (h *Handle) TryInsert(key uint64) (bool, error) {
	if h.m != nil {
		return h.tryInsertMetered(key)
	}
	return h.tryInsert(key)
}

func (h *Handle) tryInsertMetered(key uint64) (bool, error) {
	t0, sampled := h.sampleStart()
	ok, err := h.tryInsert(key)
	h.m.Inc(metrics.OpsInsert)
	if sampled {
		h.m.Observe(metrics.OpInsert, time.Since(t0))
	}
	return ok, err
}

func (h *Handle) tryInsert(key uint64) (bool, error) {
	t := h.t
	ar := t.ar
	retries := 0
	h.pin()
	for {
		h.seek(key)
		leaf := h.sr.leaf
		leafKey := ar.Get(leaf).key
		if leafKey == key {
			h.unpin()
			h.Stats.Inserts++
			return false, nil // key already present
		}

		parent := h.sr.parent
		pn := ar.Get(parent)
		var childAddr *atomic.Uint64
		if key < pn.key {
			childAddr = &pn.left
		} else {
			childAddr = &pn.right
		}

		// Build the replacement subtree: a new internal node whose children
		// are the existing leaf and a new leaf holding key, ordered by key.
		// The internal node's routing key is the larger of the two.
		ni, nl, ok := h.trySpares()
		if !ok {
			// Arena exhausted. Without reclamation nothing can free a slot,
			// so fail fast; with it, unpin (so our own slot cannot block the
			// epoch), flush retired nodes into the free list, back off, and
			// retry a bounded number of times before surfacing ErrCapacity.
			if h.slot == nil || retries >= maxCapacityRetries {
				h.unpin()
				h.Stats.CapacityFailures++
				if h.m != nil {
					h.m.Inc(metrics.CapacityFailures)
				}
				return false, ErrCapacity
			}
			retries++
			h.Stats.CapacityRetries++
			if h.m != nil {
				h.m.Inc(metrics.CapacityRetries)
				h.m.Inc(metrics.SeekRestarts)
			}
			h.unpin()
			h.slot.Flush()
			for i := 0; i < retries; i++ {
				runtime.Gosched()
			}
			h.pin()
			continue
		}
		niN, nlN := ar.Get(ni), ar.Get(nl)
		nlN.key = key
		nlN.left.Store(0)
		nlN.right.Store(0)
		if key < leafKey {
			niN.key = leafKey
			niN.left.Store(atomicx.Pack(nl, false, false))
			niN.right.Store(atomicx.Pack(leaf, false, false))
		} else {
			niN.key = key
			niN.left.Store(atomicx.Pack(leaf, false, false))
			niN.right.Store(atomicx.Pack(nl, false, false))
		}

		h.hook(FPInsertCAS)
		if childAddr.CompareAndSwap(atomicx.Pack(leaf, false, false), atomicx.Pack(ni, false, false)) {
			h.Stats.CASSucceeded++
			h.spareInternal, h.spareLeaf = 0, 0
			h.unpin()
			h.Stats.Inserts++
			h.bumpDirty()
			return true, nil
		}
		h.Stats.CASFailed++
		if h.m != nil {
			h.m.Inc(metrics.InsertCASFailures)
			h.m.Inc(metrics.InsertRetries)
			h.m.Inc(metrics.SeekRestarts)
		}

		// The CAS failed. If the edge to our leaf still exists but is
		// marked, a delete owns parent; help it finish, then retry.
		w := childAddr.Load()
		if atomicx.Addr(w) == leaf && atomicx.Marked(w) {
			h.Stats.HelpAttempts++
			if h.m != nil {
				h.m.Inc(metrics.HelpOther)
			}
			h.cleanup(key, &h.sr)
		}
	}
}

// deleteMode distinguishes the two phases of Algorithm 3.
type deleteMode uint8

const (
	injection   deleteMode = iota // flag the edge into the target leaf
	cleanupMode                   // physically remove the flagged leaf
)

// Delete removes key from the tree; it returns false if the key was not
// present (Algorithm 3). The flagging CAS is the operation's commit point:
// once it succeeds the delete is guaranteed to complete (possibly finished
// by helpers). An uncontended delete executes exactly three atomic
// instructions: flag CAS, sibling-tag BTS, splice CAS.
func (h *Handle) Delete(key uint64) bool {
	if h.m != nil {
		return h.deleteMetered(key)
	}
	return h.delete(key)
}

func (h *Handle) deleteMetered(key uint64) bool {
	t0, sampled := h.sampleStart()
	removed := h.delete(key)
	h.m.Inc(metrics.OpsDelete)
	if sampled {
		h.m.Observe(metrics.OpDelete, time.Since(t0))
	}
	return removed
}

func (h *Handle) delete(key uint64) bool {
	t := h.t
	ar := t.ar
	mode := injection
	var leaf uint32

	h.pin()
	for {
		h.seek(key)
		sr := &h.sr
		pn := ar.Get(sr.parent)
		var childAddr *atomic.Uint64
		if key < pn.key {
			childAddr = &pn.left
		} else {
			childAddr = &pn.right
		}

		if mode == injection {
			leaf = sr.leaf
			if ar.Get(leaf).key != key {
				h.unpin()
				h.Stats.Deletes++
				return false // key not present
			}
			// Inject: flag the edge (parent → leaf).
			h.hook(FPFlagCAS)
			if childAddr.CompareAndSwap(atomicx.Pack(leaf, false, false), atomicx.Pack(leaf, true, false)) {
				h.Stats.CASSucceeded++
				mode = cleanupMode
				if h.cleanup(key, sr) {
					h.unpin()
					h.Stats.Deletes++
					h.bumpDirty()
					return true
				}
			} else {
				h.Stats.CASFailed++
				if h.m != nil {
					h.m.Inc(metrics.DeleteFlagCASFailures)
				}
				w := childAddr.Load()
				if atomicx.Addr(w) == leaf && atomicx.Marked(w) {
					h.Stats.HelpAttempts++
					if h.m != nil {
						h.m.Inc(metrics.HelpOther)
					}
					h.cleanup(key, sr)
				}
			}
		} else {
			// Cleanup mode: if our flagged leaf is no longer the leaf on
			// the access path, a helper already removed it.
			if sr.leaf != leaf {
				h.unpin()
				h.Stats.Deletes++
				h.bumpDirty()
				return true
			}
			if h.cleanup(key, sr) {
				h.unpin()
				h.Stats.Deletes++
				h.bumpDirty()
				return true
			}
		}
		// Any path reaching here loops back into another seek.
		if h.m != nil {
			h.m.Inc(metrics.SeekRestarts)
		}
	}
}

// cleanup is Algorithm 4: physically remove the flagged leaf on the access
// path for key (and every already-tagged internal node above it) by tagging
// the sibling edge and splicing the sibling up to the ancestor with one CAS.
// It is executed both by the owning delete and by helpers.
func (h *Handle) cleanup(key uint64, sr *seekRecord) bool {
	ar := h.t.ar
	an := ar.Get(sr.ancestor)
	pn := ar.Get(sr.parent)

	// Address of the ancestor's child word currently holding successor.
	var successorAddr *atomic.Uint64
	if key < an.key {
		successorAddr = &an.left
	} else {
		successorAddr = &an.right
	}
	// Addresses of the parent's two child words, oriented around key.
	var childAddr, siblingAddr *atomic.Uint64
	if key < pn.key {
		childAddr = &pn.left
		siblingAddr = &pn.right
	} else {
		childAddr = &pn.right
		siblingAddr = &pn.left
	}

	if !atomicx.Flag(childAddr.Load()) {
		// The leaf on key's side is not the delete target; the sibling is
		// (we are helping a delete of the other child). The roles swap.
		siblingAddr = childAddr
	}

	// Tag the sibling edge (BTS — cannot fail). From here on neither child
	// word of parent can change, so parent can never again be an injection
	// point.
	h.hook(FPTag)
	if h.t.cfg.CASOnly {
		// CAS-only mode: emulate BTS with a bounded retry loop. The loop
		// terminates because competitors only ever *set* bits on this word
		// (marked edges never change), so a failed CAS means the tag is
		// closer to — or already — set.
		for {
			w := siblingAddr.Load()
			if atomicx.Tag(w) {
				break
			}
			if siblingAddr.CompareAndSwap(w, w|atomicx.TagBit) {
				h.Stats.CASSucceeded++
				break
			}
			h.Stats.CASFailed++
			if h.m != nil {
				h.m.Inc(metrics.DeleteTagCASFailures)
			}
		}
	} else {
		siblingAddr.Or(atomicx.TagBit)
		h.Stats.BTS++
	}

	// Splice the sibling up: ancestor's child swings from successor to the
	// sibling node, preserving the sibling edge's flag bit (the sibling may
	// itself be a leaf already flagged by another delete).
	h.hook(FPSpliceCAS)
	sw := siblingAddr.Load()
	ok := successorAddr.CompareAndSwap(
		atomicx.Pack(sr.successor, false, false),
		atomicx.Pack(atomicx.Addr(sw), atomicx.Flag(sw), false),
	)
	if ok {
		h.Stats.CASSucceeded++
		h.Stats.SpliceWins++
		if h.m != nil {
			h.m.Inc(metrics.SpliceWins)
		}
		if h.slot != nil || h.t.cfg.CountPrunedLeaves {
			h.retireRemoved(sr, atomicx.Addr(sw))
		}
	} else {
		h.Stats.CASFailed++
		if h.m != nil {
			h.m.Inc(metrics.DeleteSpliceCASFailures)
		}
	}
	return ok
}

// retireRemoved walks the chain of nodes detached by a successful splice —
// successor down to parent through tagged edges, plus the flagged leaf
// hanging off each chain node — counting pruned leaves and, when
// reclamation is on, retiring every removed node. Only the goroutine whose
// splice CAS succeeded runs this, so each node is retired exactly once.
func (h *Handle) retireRemoved(sr *seekRecord, survivor uint32) {
	ar := h.t.ar
	n := sr.successor
	for {
		nd := ar.Get(n)
		l, r := nd.left.Load(), nd.right.Load()
		la, ra := atomicx.Addr(l), atomicx.Addr(r)
		h.retire(n)
		if n == sr.parent {
			// The splice kept survivor; the parent's other child is the
			// delete target. Both children may be flagged here (two deletes
			// targeting sibling leaves), so pick by identity, not by flag.
			h.Stats.PrunedLeaves++
			if h.m != nil {
				h.m.Inc(metrics.PrunedLeaves)
			}
			if la == survivor {
				h.retire(ra)
			} else {
				h.retire(la)
			}
			return
		}
		// Interior chain node: exactly one flagged child (a leaf some
		// delete targets) and one tagged child continuing toward parent.
		var leafChild, next uint32
		if atomicx.Flag(l) {
			leafChild, next = la, ra
		} else {
			leafChild, next = ra, la
		}
		h.Stats.PrunedLeaves++
		if h.m != nil {
			h.m.Inc(metrics.PrunedLeaves)
		}
		h.retire(leafChild)
		if next == 0 || next == survivor {
			return // defensive: never walk off the removed region
		}
		n = next
	}
}

func (h *Handle) retire(idx uint32) {
	if h.slot != nil {
		h.slot.Retire(idx)
		h.Stats.Recycled++
	}
}
