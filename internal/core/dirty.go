package core

import (
	"sync"
	"sync/atomic"
)

// The dirty counter is the only thing the lock-free write paths contribute
// to the order-statistics subsystem (internal/orderstat): one per-handle,
// cache-line-padded, single-writer counter bumped after every successful
// insert or delete, exactly the internal/metrics sharding pattern. Writers
// never CAS a shared summary word — the whole point of the lazy
// augmentation design is that the paper's one-CAS insert and three-atomic
// delete stay untouched — so the counter is a plain store over a load on a
// line owned by one goroutine, and reading the total is a sum over shards
// that is exact once the tree is quiescent and monotonically
// under-approximate while it is not.
//
// The ordering contract the orderstat layer depends on: a mutation's bump
// happens before the mutating call returns. Any mutation whose caller has
// been acknowledged is therefore visible in Total() — which is what lets a
// cached summary whose CleanDirty equals Total() answer exactly.

// DirtyShard is one handle's private mutation counter. Only the owning
// handle writes it; Total readers only load. The pad keeps two shards from
// sharing a cache line, so bumps never ping-pong lines between writers.
type DirtyShard struct {
	n atomic.Uint64
	_ [56]byte
}

// Bump records one successful mutation. Single-writer: a store over a load
// is one cache hit on an owned line, not an RMW.
func (s *DirtyShard) Bump() { s.n.Store(s.n.Load() + 1) }

// DirtyCounter aggregates the per-handle shards. Shard registration and
// retirement take a mutex (handle creation is off the hot path); Total is
// a locked sum so a shard can never be summed twice or lost while a
// retirement folds it into base.
type DirtyCounter struct {
	mu     sync.Mutex
	shards []*DirtyShard
	base   uint64 // counts folded in from retired shards
}

// NewShard registers and returns a fresh shard for one handle.
func (d *DirtyCounter) NewShard() *DirtyShard {
	s := &DirtyShard{}
	d.mu.Lock()
	d.shards = append(d.shards, s)
	d.mu.Unlock()
	return s
}

// Retire folds a handle's shard into the base total and drops it from the
// shard list, so closed handles do not accumulate. Idempotent per shard
// only if called once; callers nil their reference after retiring.
func (d *DirtyCounter) Retire(s *DirtyShard) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.base += s.n.Load()
	for i, sh := range d.shards {
		if sh == s {
			d.shards[i] = d.shards[len(d.shards)-1]
			d.shards = d.shards[:len(d.shards)-1]
			return
		}
	}
}

// Total returns the number of successful mutations recorded so far. It is
// monotonically non-decreasing, exact when the tree is quiescent, and
// never ahead of the mutations that have actually completed — a mutation
// still inside its call may or may not be counted yet, but one whose call
// returned always is.
func (d *DirtyCounter) Total() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.base
	for _, s := range d.shards {
		n += s.n.Load()
	}
	return n
}
