package core

import (
	"testing"

	"repro/internal/keys"
)

func TestSpaceAccounting(t *testing.T) {
	tr := New(Config{Capacity: 1 << 16})
	s := tr.Space()
	if s.LiveKeys != 0 || s.ReachableNodes != 5 {
		t.Fatalf("empty tree space = %+v, want 0 keys, 5 sentinel nodes", s)
	}
	h := tr.NewHandle()
	for i := int64(0); i < 100; i++ {
		h.Insert(keys.Map(i))
	}
	s = tr.Space()
	if s.LiveKeys != 100 {
		t.Fatalf("LiveKeys = %d", s.LiveKeys)
	}
	// Every insert adds one leaf and one internal node: 200 plus the
	// 5-node sentinel skeleton of Figure 3.
	if s.ReachableNodes != 2*100+5 {
		t.Fatalf("ReachableNodes = %d, want 205", s.ReachableNodes)
	}
	if s.ReservedSlots < 200 {
		t.Fatalf("ReservedSlots = %d, want ≥ 200", s.ReservedSlots)
	}
}

func TestSpaceReclaimPlateaus(t *testing.T) {
	// Identical churn with and without reclamation: reserved slots must
	// differ by an order of magnitude (the no-reclaim paper protocol leaks
	// by design; reclamation recycles).
	churn := func(tr *Tree) uint64 {
		h := tr.NewHandle()
		defer h.Close()
		for i := 0; i < 30000; i++ {
			k := keys.Map(int64(i % 64))
			h.Insert(k)
			h.Delete(k)
		}
		return tr.Space().ReservedSlots
	}
	leaky := churn(New(Config{Capacity: 1 << 20}))
	tight := churn(New(Config{Capacity: 1 << 20, Reclaim: true}))
	if tight*10 > leaky {
		t.Fatalf("reclamation ineffective: reserved %d (reclaim) vs %d (none)", tight, leaky)
	}
}
