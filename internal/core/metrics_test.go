package core

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/keys"
	"repro/internal/metrics"
)

// TestMetricsOpsAndLatency checks the basic wiring: every completed
// operation increments its ops counter, and with sampleEvery=1 every
// operation lands in the latency histogram.
func TestMetricsOpsAndLatency(t *testing.T) {
	reg := metrics.NewRegistry(1)
	tr := New(Config{Capacity: 1 << 12, Metrics: reg})
	h := tr.NewHandle()
	defer h.Close()

	const n = 100
	for i := uint64(0); i < n; i++ {
		h.Insert(i)
	}
	for i := uint64(0); i < n; i++ {
		h.Search(i)
	}
	for i := uint64(0); i < n; i++ {
		h.Delete(i)
	}

	s := reg.Snapshot()
	if s.Counters[metrics.OpsInsert] != n || s.Counters[metrics.OpsSearch] != n || s.Counters[metrics.OpsDelete] != n {
		t.Fatalf("ops counters = %d/%d/%d, want %d each",
			s.Counters[metrics.OpsInsert], s.Counters[metrics.OpsSearch], s.Counters[metrics.OpsDelete], n)
	}
	for op := metrics.Op(0); op < metrics.NumOps; op++ {
		if got := s.Latency[op].Count; got != n {
			t.Fatalf("latency[%s].Count = %d, want %d (sampleEvery=1)", op.Name(), got, n)
		}
		if s.Latency[op].SumNanos == 0 {
			t.Fatalf("latency[%s].SumNanos = 0, want > 0", op.Name())
		}
	}
	// Uncontended single handle: no restarts, no CAS failures, no helping.
	for _, c := range []metrics.Counter{
		metrics.SeekRestarts, metrics.InsertCASFailures, metrics.DeleteFlagCASFailures,
		metrics.DeleteSpliceCASFailures, metrics.HelpOther,
	} {
		if v := s.Counters[c]; v != 0 {
			t.Fatalf("uncontended %s = %d, want 0", c.Name(), v)
		}
	}
	if got, want := s.Counters[metrics.SpliceWins], uint64(n); got != want {
		t.Fatalf("SpliceWins = %d, want %d (every delete cleans up uncontended)", got, want)
	}
}

// TestMetricsSampling checks that a power-of-two sampling period records
// exactly 1/period of the operations.
func TestMetricsSampling(t *testing.T) {
	reg := metrics.NewRegistry(8)
	tr := New(Config{Capacity: 1 << 12, Metrics: reg})
	h := tr.NewHandle()
	defer h.Close()

	const n = 64
	for i := uint64(0); i < n; i++ {
		h.Search(i)
	}
	if got := reg.Snapshot().Latency[metrics.OpSearch].Count; got != n/8 {
		t.Fatalf("sampled count = %d, want %d", got, n/8)
	}
}

// TestMetricsContentionDeterministic freezes a deleter between its flag
// CAS and the tag step (via a failpoint stall), then runs a second delete
// of the same key. The second delete must fail its flag CAS, help the
// frozen delete's cleanup through, and restart its seek — so every
// contention counter on that path fires deterministically, even on one CPU.
func TestMetricsContentionDeterministic(t *testing.T) {
	fs := failpoint.NewSet()
	reg := metrics.NewRegistry(0)
	tr := New(Config{Capacity: 1 << 16, Failpoints: fs, Metrics: reg})

	setup := tr.NewHandle()
	for i := int64(0); i < 100; i++ {
		setup.Insert(keys.Map(i))
	}

	st := fs.Site(FPTag)
	st.StallNext()
	victimStats := make(chan Stats, 1)
	go func() {
		h := tr.NewHandle()
		if !h.Delete(keys.Map(50)) {
			t.Error("frozen deleter's delete failed; it owns the flag")
		}
		victimStats <- h.Stats
		h.Close()
	}()
	if !st.WaitStalled(10 * time.Second) {
		t.Fatal("deleter never reached the tag failpoint")
	}

	// Leaf 50's incoming edge is now flagged by the frozen deleter.
	h := tr.NewHandle()
	if h.Delete(keys.Map(50)) {
		t.Fatal("second delete of key 50 reported success; the frozen deleter owns it")
	}
	st.Release()
	vs := <-victimStats

	s := reg.Snapshot()
	for _, c := range []metrics.Counter{
		metrics.DeleteFlagCASFailures, // second delete lost the flag CAS
		metrics.HelpOther,             // ... and helped the frozen delete
		metrics.SpliceWins,            // the helper's cleanup spliced
		metrics.SeekRestarts,          // the second delete re-sought after helping
	} {
		if s.Counters[c] == 0 {
			t.Errorf("%s = 0, want > 0", c.Name())
		}
	}
	// Cross-check the live telemetry against the handles' offline Stats:
	// same events, two independent recorders.
	total := vs
	total.Add(h.Stats)
	total.Add(setup.Stats)
	casFails := s.Counters[metrics.InsertCASFailures] + s.Counters[metrics.DeleteFlagCASFailures] +
		s.Counters[metrics.DeleteTagCASFailures] + s.Counters[metrics.DeleteSpliceCASFailures]
	if casFails != total.CASFailed {
		t.Errorf("metrics CAS failures = %d, Stats.CASFailed = %d", casFails, total.CASFailed)
	}
	if got, want := s.Counters[metrics.HelpOther], total.HelpAttempts; got != want {
		t.Errorf("metrics HelpOther = %d, Stats.HelpAttempts = %d", got, want)
	}
	if got, want := s.Counters[metrics.SpliceWins], total.SpliceWins; got != want {
		t.Errorf("metrics SpliceWins = %d, Stats.SpliceWins = %d", got, want)
	}
	if err := tr.Audit(); err != nil {
		t.Fatalf("tree invalid after contended delete: %v", err)
	}
}

// TestMetricsInsertCASFailureDeterministic makes an insert lose its single
// CAS by having a saboteur handle delete the terminal leaf between the
// inserter's seek and its CAS (via the step hook), and checks the
// insert-side contention counters.
func TestMetricsInsertCASFailureDeterministic(t *testing.T) {
	reg := metrics.NewRegistry(0)
	tr := New(Config{Capacity: 1 << 12, Metrics: reg})
	h := tr.NewHandle()
	sab := tr.NewHandle()
	h.Insert(keys.Map(50)) // sole user key: every seek terminates at leaf 50

	fired := false
	h.stepHook = func(p string) {
		if p == FPInsertCAS && !fired {
			fired = true
			sab.Delete(keys.Map(50)) // invalidates the edge the CAS expects
		}
	}
	if !h.Insert(keys.Map(60)) {
		t.Fatal("insert of key 60 failed")
	}
	s := reg.Snapshot()
	for _, c := range []metrics.Counter{
		metrics.InsertCASFailures, metrics.InsertRetries, metrics.SeekRestarts,
	} {
		if s.Counters[c] == 0 {
			t.Errorf("%s = 0, want > 0", c.Name())
		}
	}
	if !h.Search(keys.Map(60)) || h.Search(keys.Map(50)) {
		t.Fatal("tree contents wrong after contended insert")
	}
}

// TestMetricsHookGauges checks the snapshot hook folds in arena and epoch
// telemetry.
func TestMetricsHookGauges(t *testing.T) {
	reg := metrics.NewRegistry(0)
	tr := New(Config{Capacity: 1 << 12, Reclaim: true, Metrics: reg})
	h := tr.NewHandle()
	for i := uint64(0); i < 200; i++ {
		h.Insert(i)
		h.Delete(i)
	}
	h.Close()

	s := reg.Snapshot()
	if s.Gauges["arena_capacity_nodes"] != float64(1<<12) {
		t.Fatalf("arena_capacity_nodes = %v, want %v", s.Gauges["arena_capacity_nodes"], 1<<12)
	}
	if s.Gauges["arena_allocated_nodes"] == 0 {
		t.Fatalf("arena_allocated_nodes = 0 after inserts")
	}
	for _, k := range []string{"epoch_current", "epoch_slots", "epoch_pinned_slots", "epoch_stalled_slots", "epoch_retired_backlog_nodes"} {
		if _, ok := s.Gauges[k]; !ok {
			t.Fatalf("missing epoch gauge %q", k)
		}
	}
	if s.External["epoch_advances_total"] == 0 {
		t.Fatalf("epoch_advances_total = 0 after insert/delete churn with reclaim on")
	}
}

// TestMetricsShardRetiredOnClose checks that counts from a closed handle
// survive in the registry (the shard folds into the base snapshot).
func TestMetricsShardRetiredOnClose(t *testing.T) {
	reg := metrics.NewRegistry(0)
	tr := New(Config{Capacity: 1 << 12, Metrics: reg})
	h := tr.NewHandle()
	for i := uint64(0); i < 50; i++ {
		h.Insert(i)
	}
	h.Close()
	if got := reg.Snapshot().Counters[metrics.OpsInsert]; got != 50 {
		t.Fatalf("OpsInsert after Close = %d, want 50", got)
	}
}

// TestPooledStatsSurvivePooling is the regression test for the
// convenience-method stats-loss bug: operation counts recorded on pooled
// handles used to live only inside the pooled Handle.Stats, so sync.Pool
// shedding handles at GC silently discarded them. putHandle now folds each
// handle's Stats into tree-level totals before Put.
func TestPooledStatsSurvivePooling(t *testing.T) {
	tr := New(Config{Capacity: 1 << 12})
	const n = 300
	for i := uint64(0); i < n; i++ {
		tr.Insert(i)
		// Force GC pressure mid-sequence so sync.Pool actually sheds the
		// pooled handles; before the fix this lost the shed handles' counts.
		if i%64 == 0 {
			runtime.GC()
		}
	}
	for i := uint64(0); i < n; i++ {
		tr.Search(i)
	}
	for i := uint64(0); i < n; i++ {
		tr.Delete(i)
	}
	runtime.GC()

	ps := tr.PooledStats()
	if ps.Inserts != n || ps.Searches != n || ps.Deletes != n {
		t.Fatalf("PooledStats = %d inserts / %d searches / %d deletes, want %d each (counts lost across pooling)",
			ps.Inserts, ps.Searches, ps.Deletes, n)
	}
	if ps.CASSucceeded == 0 || ps.NodesAlloc == 0 {
		t.Fatalf("PooledStats instruction counts empty: %+v", ps)
	}
}

// TestMetricsDisabledIsInert checks the nil-registry configuration leaves
// no telemetry state behind (the acceptance criterion that disabled
// metrics cannot perturb a run).
func TestMetricsDisabledIsInert(t *testing.T) {
	tr := New(Config{Capacity: 1 << 12})
	if tr.Metrics() != nil {
		t.Fatalf("Metrics() = %v, want nil when not configured", tr.Metrics())
	}
	h := tr.NewHandle()
	defer h.Close()
	for i := uint64(0); i < 100; i++ {
		h.Insert(i)
		h.Search(i)
		h.Delete(i)
	}
	if h.Stats.Inserts != 100 {
		t.Fatalf("Stats still work without metrics: %+v", h.Stats)
	}
}
