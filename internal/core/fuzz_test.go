package core

import (
	"testing"

	"repro/internal/keys"
)

// FuzzModelEquivalence interprets the fuzz input as an operation program
// (one byte opcode + one byte key per step) and differentially checks the
// tree against a map model, auditing the structure at the end. Run with
// `go test -fuzz FuzzModelEquivalence ./internal/core` to explore; the
// seed corpus executes under plain `go test`.
func FuzzModelEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 1})             // insert, delete, search key 1
	f.Add([]byte{0, 5, 0, 3, 1, 5, 2, 3, 1, 3}) // interleaved
	f.Add([]byte{0, 0, 0, 255, 1, 0, 1, 255})   // boundary keys
	f.Fuzz(func(t *testing.T, program []byte) {
		tr := New(Config{Capacity: 1 << 18})
		h := tr.NewHandle()
		model := map[int64]bool{}
		for i := 0; i+1 < len(program); i += 2 {
			op, kb := program[i]%3, program[i+1]
			k := int64(kb)
			u := keys.Map(k)
			switch op {
			case 0:
				if got, want := h.Insert(u), !model[k]; got != want {
					t.Fatalf("insert(%d) = %v, want %v", k, got, want)
				}
				model[k] = true
			case 1:
				if got, want := h.Delete(u), model[k]; got != want {
					t.Fatalf("delete(%d) = %v, want %v", k, got, want)
				}
				delete(model, k)
			default:
				if got, want := h.Search(u), model[k]; got != want {
					t.Fatalf("search(%d) = %v, want %v", k, got, want)
				}
			}
		}
		if err := tr.Audit(); err != nil {
			t.Fatalf("audit after program: %v", err)
		}
		if tr.Size() != len(model) {
			t.Fatalf("size %d, model %d", tr.Size(), len(model))
		}
	})
}

// FuzzReclaimEquivalence runs the same program shape against the
// reclaiming configuration, whose recycling paths are the riskiest code.
func FuzzReclaimEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 0, 1, 1, 1, 0, 1, 1, 1})
	f.Add([]byte{0, 9, 0, 8, 1, 9, 0, 9, 1, 8, 1, 9})
	f.Fuzz(func(t *testing.T, program []byte) {
		tr := New(Config{Capacity: 1 << 18, Reclaim: true})
		h := tr.NewHandle()
		defer h.Close()
		model := map[int64]bool{}
		for i := 0; i+1 < len(program); i += 2 {
			op, kb := program[i]%2, program[i+1]%16 // tiny key space: heavy recycling
			k := int64(kb)
			u := keys.Map(k)
			if op == 0 {
				if got, want := h.Insert(u), !model[k]; got != want {
					t.Fatalf("insert(%d) = %v, want %v", k, got, want)
				}
				model[k] = true
			} else {
				if got, want := h.Delete(u), model[k]; got != want {
					t.Fatalf("delete(%d) = %v, want %v", k, got, want)
				}
				delete(model, k)
			}
		}
		if err := tr.Audit(); err != nil {
			t.Fatal(err)
		}
	})
}
