package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/failpoint"
	"repro/internal/keys"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fillToCapacity inserts ascending keys through h until TryInsert reports
// ErrCapacity, returning the successfully inserted keys.
func fillToCapacity(t *testing.T, h *Handle, startKey int64) []int64 {
	t.Helper()
	var inserted []int64
	for i := startKey; ; i++ {
		ok, err := h.TryInsert(keys.Map(i))
		if err != nil {
			if !errors.Is(err, ErrCapacity) {
				t.Fatalf("TryInsert error = %v, want ErrCapacity", err)
			}
			return inserted
		}
		if !ok {
			t.Fatalf("TryInsert(%d) = false on a fresh key", i)
		}
		inserted = append(inserted, i)
		if len(inserted) > 1<<20 {
			t.Fatal("tree never exhausted; capacity bound not enforced")
		}
	}
}

func TestTryInsertCapacityExhaustionNoReclaim(t *testing.T) {
	tr := New(Config{Capacity: 64})
	h := tr.NewHandle()
	inserted := fillToCapacity(t, h, 0)
	if len(inserted) == 0 {
		t.Fatal("no insert succeeded before exhaustion")
	}
	if len(inserted) > 64/2 {
		t.Fatalf("%d inserts fit in a 64-node arena; bound not enforced", len(inserted))
	}

	// A full tree keeps serving reads and structural checks.
	for _, k := range inserted {
		if !h.Search(keys.Map(k)) {
			t.Fatalf("key %d lost after exhaustion", k)
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatalf("tree invalid after exhaustion: %v", err)
	}

	// Failure is sticky without reclamation: deletes free logically but
	// nothing recycles the slots.
	if !h.Delete(keys.Map(inserted[0])) {
		t.Fatal("delete failed on a full tree")
	}
	if _, err := h.TryInsert(keys.Map(1 << 30)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("TryInsert after delete without reclaim: err = %v, want ErrCapacity", err)
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertPanicsOnExhaustion(t *testing.T) {
	tr := New(Config{Capacity: 32})
	h := tr.NewHandle()
	defer func() {
		if recover() == nil {
			t.Fatal("legacy Insert did not panic on exhaustion")
		}
	}()
	for i := int64(0); i < 100; i++ {
		h.Insert(keys.Map(i))
	}
}

func TestCapacityRecoveryWithReclaim(t *testing.T) {
	tr := New(Config{Capacity: 128, Reclaim: true})
	h := tr.NewHandle()
	defer h.Close()
	inserted := fillToCapacity(t, h, 0)
	if len(inserted) < 8 {
		t.Fatalf("only %d inserts before exhaustion", len(inserted))
	}

	// Free half the keys; their nodes are retired and — after the grace
	// period the TryInsert retry path forces via epoch flushes — recycled.
	for _, k := range inserted[:len(inserted)/2] {
		if !h.Delete(keys.Map(k)) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	ok, err := h.TryInsert(keys.Map(1 << 30))
	if err != nil || !ok {
		t.Fatalf("TryInsert after frees = (%v, %v), want (true, nil)", ok, err)
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	hl := tr.Health()
	if hl.Recycled == 0 {
		t.Fatalf("Health.Recycled = 0 after recovery; health = %+v", hl)
	}
	if hl.Capacity != 128 || !hl.Reclaim {
		t.Fatalf("health misreports configuration: %+v", hl)
	}
	if h.Stats.CapacityRetries == 0 {
		t.Fatal("recovery did not use the retry path")
	}
}

func TestPooledTryInsertAndHealth(t *testing.T) {
	tr := New(Config{Capacity: 64, Reclaim: true})
	var firstErr error
	for i := int64(0); i < 200; i++ {
		_, err := tr.TryInsert(keys.Map(i))
		if err != nil {
			firstErr = err
			break
		}
	}
	if !errors.Is(firstErr, ErrCapacity) {
		t.Fatalf("pooled TryInsert never surfaced ErrCapacity (err=%v)", firstErr)
	}
	// The pooled handle must have been returned despite the error: direct
	// Tree methods still work (a leaked handle would not break them, but a
	// leaked *epoch slot* would eventually; exercise the path).
	if !tr.Search(keys.Map(0)) {
		t.Fatal("Search failed after pooled TryInsert error")
	}
	if !tr.Delete(keys.Map(0)) {
		t.Fatal("Delete failed after pooled TryInsert error")
	}
	hl := tr.Health()
	if hl.Allocated == 0 || hl.Capacity != 64 {
		t.Fatalf("implausible health %+v", hl)
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestInjectedAllocFailureLinearizable drives concurrent TryInsert/Delete/
// Search through an arena-alloc failpoint that fails every third
// allocation, and checks the recorded history linearizes. A TryInsert that
// returns ErrCapacity performed a seek that observed its key absent and
// wrote nothing, so it is recorded as a search returning false.
func TestInjectedAllocFailureLinearizable(t *testing.T) {
	const (
		workers  = 4
		opsEach  = 300
		keySpace = 96
	)
	fs := failpoint.NewSet()
	fs.Site(FPAlloc).FailEveryN(3)
	tr := New(Config{Capacity: 1 << 16, Failpoints: fs})

	base := time.Now()
	perWorker := make([][]trace.Event, workers)
	var wg sync.WaitGroup
	var capFails atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tr.NewHandle()
			gen := workload.NewGenerator(workload.Mix{Name: "hot", Search: 20, Insert: 40, Delete_: 40},
				keySpace, uint64(w)*7919+1)
			var evs []trace.Event
			for i := 0; i < opsEach; i++ {
				op, k := gen.Next()
				u := keys.Map(k)
				start := time.Since(base).Nanoseconds()
				var out bool
				switch op {
				case workload.OpSearch:
					out = h.Search(u)
				case workload.OpInsert:
					var err error
					out, err = h.TryInsert(u)
					if err != nil {
						capFails.Add(1)
						op, out = workload.OpSearch, false
					}
				default:
					out = h.Delete(u)
				}
				end := time.Since(base).Nanoseconds()
				evs = append(evs, trace.Event{Worker: w, Op: op, Key: k, Out: out, Start: start, End: end})
			}
			perWorker[w] = evs
		}(w)
	}
	wg.Wait()
	if capFails.Load() == 0 {
		t.Fatal("failpoint injected no allocation failures; test exercised nothing")
	}
	var events []trace.Event
	for _, evs := range perWorker {
		events = append(events, evs...)
	}
	if err := check.Linearizable(events, nil); err != nil {
		t.Fatalf("history not linearizable under injected allocation failure: %v (%s)", err, check.Stats(events))
	}
	if err := tr.Audit(); err != nil {
		t.Fatalf("tree invalid after injected failures: %v", err)
	}
}

// TestConcurrentExhaustionCounting hammers a genuinely tiny arena with
// reclamation from several goroutines and verifies the counting invariant
// and structural validity across repeated exhaust/recover cycles.
func TestConcurrentExhaustionCounting(t *testing.T) {
	const (
		workers  = 4
		opsEach  = 4000
		keySpace = 64
	)
	tr := New(Config{Capacity: 512, Reclaim: true})
	ins := make([]atomic.Int64, keySpace)
	del := make([]atomic.Int64, keySpace)
	var capFails atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			gen := workload.NewGenerator(workload.Mix{Name: "churn", Search: 10, Insert: 45, Delete_: 45},
				keySpace, uint64(w)*104729+13)
			for i := 0; i < opsEach; i++ {
				op, k := gen.Next()
				u := keys.Map(k)
				switch op {
				case workload.OpSearch:
					h.Search(u)
				case workload.OpInsert:
					ok, err := h.TryInsert(u)
					if err != nil {
						capFails.Add(1)
						continue
					}
					if ok {
						ins[k].Add(1)
					}
				default:
					if h.Delete(u) {
						del[k].Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	h := tr.NewHandle()
	defer h.Close()
	for k := int64(0); k < keySpace; k++ {
		diff := ins[k].Load() - del[k].Load()
		present := h.Search(keys.Map(k))
		if !(diff == 0 && !present || diff == 1 && present) {
			t.Fatalf("key %d: %d inserts - %d deletes, present=%v", k, ins[k].Load(), del[k].Load(), present)
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	t.Logf("capacity failures observed: %d; health: %s", capFails.Load(), fmt.Sprintf("%+v", tr.Health()))
}
