package core

import (
	"sync"
	"testing"

	"repro/internal/keys"
)

// TestDirtyCountsCompletedMutations pins the orderstat soundness anchor:
// every successful insert/delete — point or batched, helped or not — is
// counted by the time its call returns, and failed/no-op calls are not.
func TestDirtyCountsCompletedMutations(t *testing.T) {
	tr := New(Config{Capacity: 1 << 16, Reclaim: true, TrackDirty: true})
	defer tr.Close()
	d := tr.Dirty()
	if d == nil {
		t.Fatal("Dirty() = nil on a TrackDirty tree")
	}

	if !tr.Insert(keys.Map(1)) || d.Total() != 1 {
		t.Fatalf("after Insert(1): total = %d, want 1", d.Total())
	}
	if tr.Insert(keys.Map(1)) || d.Total() != 1 {
		t.Fatalf("duplicate insert bumped: total = %d, want 1", d.Total())
	}
	if tr.Delete(keys.Map(2)) || d.Total() != 1 {
		t.Fatalf("absent delete bumped: total = %d, want 1", d.Total())
	}
	if !tr.Delete(keys.Map(1)) || d.Total() != 2 {
		t.Fatalf("after Delete(1): total = %d, want 2", d.Total())
	}

	ks := make([]uint64, 8)
	for i := range ks {
		ks[i] = keys.Map(int64(10 + i))
	}
	out := make([]bool, len(ks))
	errs := make([]error, len(ks))
	tr.InsertBatch(ks, out, errs)
	if d.Total() != 2+8 {
		t.Fatalf("after InsertBatch: total = %d, want 10", d.Total())
	}
	tr.InsertBatch(ks, out, errs) // all duplicates: no bumps
	if d.Total() != 10 {
		t.Fatalf("duplicate batch bumped: total = %d, want 10", d.Total())
	}
	tr.DeleteBatch(ks[:4], out[:4])
	if d.Total() != 14 {
		t.Fatalf("after DeleteBatch: total = %d, want 14", d.Total())
	}
}

// TestDirtySurvivesHandleChurn checks the shard lifecycle: closing a
// handle folds its counts into the base total rather than dropping them.
func TestDirtySurvivesHandleChurn(t *testing.T) {
	tr := New(Config{Capacity: 1 << 20, Reclaim: true, TrackDirty: true})
	defer tr.Close()
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close() // retire mid-test: counts must fold into base
			for i := 0; i < each; i++ {
				h.Insert(keys.Map(int64(w*each + i)))
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Dirty().Total(); got != workers*each {
		t.Fatalf("total after handle churn = %d, want %d", got, workers*each)
	}
}
