package core

import (
	"runtime"
	"slices"

	"repro/internal/atomicx"
	"repro/internal/metrics"
)

// Batched operations: amortize the fixed per-operation costs — the epoch
// pin/unpin pair and, above all, the root-to-leaf seek — across a whole
// batch of keys. Two mechanisms cooperate, both operating on keys in
// sorted order:
//
// Wavefront seeks (seekWave, and the lookup loop): all keys descend the
// tree at once, one level per wave. The wave performs exactly the reads N
// independent seeks would perform, just interleaved in time, so each key
// ends with a seek record carrying the standard guarantees. Sorted keys
// currently at the same node form one contiguous run (same-depth nodes
// cover disjoint, ordered key intervals): the run reads the node once and
// every member routes off that read, so shared path prefixes cost one
// traversal per run instead of one per key — these "riders" are what
// BatchSeekSkippedLevels counts. Keys in distinct runs touch unrelated
// nodes, so their cache misses overlap in the memory system instead of
// serializing the way one-key-at-a-time seeks do; on uniformly random
// keys, where runs thin out after the first few levels, that overlap is
// most of the win.
//
// Deepest-ancestor resumes (seekBatch): when a write's precomputed seek
// record has gone stale — usually because an earlier operation of the same
// batch restructured the neighbourhood — its retry does not restart at the
// root. It resumes from the deepest node recorded on the previous
// (path-recording) seek whose child word is re-read unmarked, popping one
// level up per marked word and degrading to the root in the worst case.
// Resuming is sound on two tree invariants: an internal node is physically
// removed only after *both* its child edges are marked (so one unmarked
// child word proves the node was still attached at that read), and a
// node's routing interval only ever widens (splices lift surviving
// subtrees toward the root), so a key once inside a recorded node's
// interval is inside it at resume time.
//
// Staleness never costs correctness, only retries: inserts and deletes
// validate with their CASes, whose expected values (an unmarked edge to
// the recorded leaf) can only hold if the recorded parent is attached and
// the leaf is still the key's routing terminal — the same discipline the
// paper's helping protocol relies on. Each operation in a batch is
// individually linearizable within the batch's invocation window; no
// atomicity is claimed across a batch.
//
// The epoch pin is taken once per batch. While pinned, arena indices held
// in seek records and recorded paths cannot be recycled (no ABA). The one
// place a batch drops its pin mid-flight — the capacity-recovery path of a
// batched insert, which must let the epoch advance to recycle slots —
// bumps unpinGen, which invalidates every precomputed record and the
// recorded path for the rest of the batch.

// batchEnt pairs a key with its position in the caller's slices, so
// results land in caller order after the keys are processed in sorted
// order.
type batchEnt struct {
	key uint64
	pos int32
}

// waveEnt is one key's in-flight state during a wavefront seek: the seek
// record under construction plus the packed word of the edge into the
// node the key currently occupies.
type waveEnt struct {
	sr seekRecord
	pw uint64
}

// batchPath is the access path recorded by the most recent path-recording
// seek: the visited nodes, their (immutable) routing keys, and the packed
// child word read for each descent edge. nodes[0] is always the sentinel
// 𝕊; the last entry is the leaf the seek ended at. words[i] is the edge
// nodes[i] → nodes[i+1] as read during that seek. key is the key the path
// was recorded for (≤ every later key of the batch).
type batchPath struct {
	nodes []uint32
	keys  []uint64
	words []uint64
	key   uint64
	valid bool
}

func (p *batchPath) reset() {
	p.nodes = p.nodes[:0]
	p.keys = p.keys[:0]
	p.words = p.words[:0]
	p.valid = false
}

// push records one visited node; its descent edge word is appended when
// the next hop is read.
func (p *batchPath) push(node uint32, key uint64) {
	p.nodes = append(p.nodes, node)
	p.keys = append(p.keys, key)
}

// truncate keeps the first n nodes (and their n-1 edge words).
func (p *batchPath) truncate(n int) {
	p.nodes = p.nodes[:n]
	p.keys = p.keys[:n]
	p.words = p.words[:n-1]
}

// sortBatch loads the caller's keys into the handle's reusable scratch
// pairs and sorts them ascending. Stable order among duplicates is not
// needed: equal keys are independent operations on the same key and any
// interleaving is a valid linearization.
func (h *Handle) sortBatch(ks []uint64) []batchEnt {
	b := h.batch[:0]
	for i, k := range ks {
		b = append(b, batchEnt{key: k, pos: int32(i)})
	}
	slices.SortFunc(b, func(a, c batchEnt) int {
		switch {
		case a.key < c.key:
			return -1
		case a.key > c.key:
			return 1
		default:
			return 0
		}
	})
	h.batch = b
	return b
}

// seekWave runs the wavefront seek for every key in ord, filling h.recs
// with one complete seek record per entry (index-aligned with ord), and
// returns the number of levels skipped by run riders.
//
// The per-key descent follows the exact transition rule of seek
// (Algorithm 1) expressed over explicit state: at node L with entering
// edge word PW, read L's child word w for the key; if it leads to a node,
// an untagged PW promotes (parent, L) to (ancestor, successor) before the
// key advances. The initial state uses the root edge r→s, which is never
// marked (sentinels are not deletable), so the first transition lands on
// the same state seek starts from.
func (h *Handle) seekWave(ord []batchEnt) uint64 {
	t := h.t
	ar := t.ar
	recs := h.recs[:0]
	cur := h.wave[:0]
	for range ord {
		recs = append(recs, waveEnt{
			sr: seekRecord{ancestor: t.r, successor: t.s, parent: t.r},
			pw: atomicx.Pack(t.s, false, false),
		})
		cur = append(cur, t.s)
	}
	h.recs, h.wave = recs, cur
	h.Stats.Seeks += uint64(len(ord))
	h.hook(FPSeek)

	var skipped uint64
	active := len(ord)
	for active > 0 {
		active = 0
		i := 0
		for i < len(ord) {
			c := cur[i]
			if c == 0 { // this key's record is complete
				i++
				continue
			}
			nd := ar.Get(c)
			j := i
			for j < len(ord) && cur[j] == c {
				e := &recs[j]
				k := ord[j].key
				var w uint64
				if k < nd.key {
					w = nd.left.Load()
				} else {
					w = nd.right.Load()
				}
				nxt := atomicx.Addr(w)
				if nxt == 0 {
					e.sr.leaf = c
					cur[j] = 0
				} else {
					if !atomicx.Tag(e.pw) {
						e.sr.ancestor = e.sr.parent
						e.sr.successor = c
					}
					e.sr.parent = c
					e.pw = w
					cur[j] = nxt
					active++
				}
				j++
			}
			skipped += uint64(j - i - 1)
			i = j
		}
	}
	return skipped
}

// seekBatch is the resuming seek used by write retries: position the seek
// record for key, resuming from the deepest still-valid node of the
// recorded path, and re-record the path for the next resume. It returns
// the number of levels skipped relative to a full root seek.
func (h *Handle) seekBatch(key uint64) int {
	p := &h.path
	if !p.valid || len(p.nodes) < 3 || p.key > key {
		h.seekFromRoot(key)
		return 0
	}

	// Deepest recorded node that still routes key: edges match until the
	// first node where the recorded key went left but key would go right
	// (node keys are immutable). The final recorded node is the previous
	// leaf — not a resume candidate.
	m := len(p.nodes)
	j := m - 2
	for i := 1; i < m-1; i++ {
		if p.key < p.keys[i] && key >= p.keys[i] {
			j = i
			break
		}
	}

	ar := h.t.ar
	// Pop toward the root until the resume node proves it is still in the
	// tree: an unmarked child word is impossible on a detached node.
	var w uint64
	for ; j >= 1; j-- {
		nd := ar.Get(p.nodes[j])
		if key < p.keys[j] {
			w = nd.left.Load()
		} else {
			w = nd.right.Load()
		}
		if w&(atomicx.FlagBit|atomicx.TagBit) == 0 {
			break
		}
	}
	if j < 2 {
		// Nothing worth resuming (nodes[0] is 𝕊; resuming there is a full
		// seek with extra bookkeeping).
		h.seekFromRoot(key)
		return 0
	}

	sr := &h.sr
	h.Stats.Seeks++
	h.hook(FPSeek)

	// Reconstruct ancestor/successor — the last untagged edge strictly
	// above the resume edge — from the recorded words. words[0] (𝕊 → user
	// subtree) can never be marked, so the scan always terminates. A word
	// tagged since it was recorded only makes a later splice CAS fail and
	// retry, the same staleness the base algorithm tolerates.
	sr.ancestor = h.t.r
	sr.successor = h.t.s
	for i := j - 1; i >= 0; i-- {
		if !atomicx.Tag(p.words[i]) {
			sr.ancestor = p.nodes[i]
			sr.successor = p.nodes[i+1]
			break
		}
	}

	p.truncate(j + 1)
	sr.parent = p.nodes[j]
	sr.leaf = atomicx.Addr(w)
	h.descendRecord(key, w)
	return j
}

// seekFromRoot is the recording variant of seek: identical traversal, but
// it also captures the access path for later resumes.
func (h *Handle) seekFromRoot(key uint64) {
	t := h.t
	sr := &h.sr
	h.Stats.Seeks++
	h.hook(FPSeek)

	sr.ancestor = t.r
	sr.successor = t.s
	sr.parent = t.s

	p := &h.path
	p.reset()
	sn := t.ar.Get(t.s)
	p.push(t.s, sn.key)
	parentField := sn.left.Load()
	sr.leaf = atomicx.Addr(parentField)
	h.descendRecord(key, parentField)
}

// descendRecord runs the seek descent loop from the current sr.parent /
// sr.leaf position (leafField is the child word that led to sr.leaf),
// recording every hop. On return h.sr is a complete seek record for key
// and h.path holds the full access path ending at the leaf.
func (h *Handle) descendRecord(key uint64, leafField uint64) {
	ar := h.t.ar
	sr := &h.sr
	p := &h.path

	parentField := leafField
	ln := ar.Get(sr.leaf)
	p.words = append(p.words, parentField)
	p.push(sr.leaf, ln.key)

	var currentField uint64
	if key < ln.key {
		currentField = ln.left.Load()
	} else {
		currentField = ln.right.Load()
	}
	current := atomicx.Addr(currentField)

	for current != 0 {
		if !atomicx.Tag(parentField) {
			sr.ancestor = sr.parent
			sr.successor = sr.leaf
		}
		sr.parent = sr.leaf
		sr.leaf = current
		parentField = currentField

		cn := ar.Get(current)
		p.words = append(p.words, parentField)
		p.push(current, cn.key)
		if key < cn.key {
			currentField = cn.left.Load()
		} else {
			currentField = cn.right.Load()
		}
		current = atomicx.Addr(currentField)
	}
	p.key = key
	p.valid = true
}

// finishBatch folds the batch's telemetry into the handle's stats and
// metrics shard and releases the per-batch pin.
func (h *Handle) finishBatch(ops uint64, op metrics.Counter, skipped uint64) {
	h.unpin()
	h.path.valid = false
	h.Stats.Batches++
	h.Stats.BatchOps += ops
	h.Stats.BatchSkippedLevels += skipped
	if h.m != nil {
		h.m.Add(op, ops)
		h.m.Add(metrics.BatchOps, ops)
		h.m.Add(metrics.BatchSeekSkippedLevels, skipped)
	}
}

// LookupBatch reports, in out[i], whether ks[i] is present. Each lookup is
// individually linearizable (the batch is not a snapshot). len(out) must
// equal len(ks).
//
// Lookups need no seek record and perform no writes, so they run a leaner
// wavefront than seekWave: per-key state is just the current node, and a
// key's answer is read directly at its terminal node.
func (h *Handle) LookupBatch(ks []uint64, out []bool) {
	if len(out) != len(ks) {
		panic("core: LookupBatch result length mismatch")
	}
	if len(ks) == 0 {
		return
	}
	t := h.t
	ar := t.ar
	ord := h.sortBatch(ks)
	cur := h.wave[:0]
	for range ord {
		cur = append(cur, t.s)
	}
	h.wave = cur

	var skipped uint64
	h.pin()
	// Phase 1: grouped lockstep descent. Keys sharing their current node
	// read it once; the phase ends as soon as every surviving group is a
	// singleton — two keys at distinct nodes have disjoint subtrees, so
	// groups never re-merge and further grouping is pure scan overhead.
	shared := true
	for shared {
		shared = false
		i := 0
		for i < len(ord) {
			c := cur[i]
			if c == 0 { // this key already reached its leaf
				i++
				continue
			}
			nd := ar.Get(c)
			j := i
			for j < len(ord) && cur[j] == c {
				k := ord[j].key
				var w uint64
				if k < nd.key {
					w = nd.left.Load()
				} else {
					w = nd.right.Load()
				}
				nxt := atomicx.Addr(w)
				if nxt == 0 {
					out[ord[j].pos] = nd.key == k
					cur[j] = 0
				} else {
					cur[j] = nxt
				}
				j++
			}
			if j-i > 1 {
				shared = true
				skipped += uint64(j - i - 1)
			}
			i = j
		}
	}
	// Phase 2: the fragmented tail. Finish the keys in small fixed windows
	// of independent descents — wide enough that their cache misses still
	// overlap (memory-level parallelism saturates around the load-buffer
	// depth anyway), with none of the grouping bookkeeping.
	const window = 8
	for i := 0; i < len(ord); i += window {
		e := min(i+window, len(ord))
		active := 0
		for j := i; j < e; j++ {
			if cur[j] != 0 {
				active++
			}
		}
		for active > 0 {
			for j := i; j < e; j++ {
				c := cur[j]
				if c == 0 {
					continue
				}
				nd := ar.Get(c)
				k := ord[j].key
				var w uint64
				if k < nd.key {
					w = nd.left.Load()
				} else {
					w = nd.right.Load()
				}
				nxt := atomicx.Addr(w)
				if nxt == 0 {
					out[ord[j].pos] = nd.key == k
					cur[j] = 0
					active--
				} else {
					cur[j] = nxt
				}
			}
		}
	}
	h.Stats.Seeks += uint64(len(ks))
	h.Stats.Searches += uint64(len(ks))
	h.finishBatch(uint64(len(ks)), metrics.OpsSearch, skipped)
}

// InsertBatch inserts every key in ks with TryInsert semantics: out[i]
// reports whether the set changed and errs[i] is nil or ErrCapacity. A
// capacity failure mid-batch does not abort the batch — later operations
// still execute and report their own status. len(out) and len(errs) must
// equal len(ks).
func (h *Handle) InsertBatch(ks []uint64, out []bool, errs []error) {
	if len(out) != len(ks) || len(errs) != len(ks) {
		panic("core: InsertBatch result length mismatch")
	}
	if len(ks) == 0 {
		return
	}
	ord := h.sortBatch(ks)
	h.pin()
	h.path.valid = false
	skipped := h.seekWave(ord)
	gen := h.unpinGen
	for i, e := range ord {
		// Precomputed records are only safe while the batch pin has been
		// held continuously since the wave (arena indices must not have
		// been recycled).
		ok, s, err := h.batchInsertOne(e.key, h.recs[i].sr, h.unpinGen == gen)
		out[e.pos], errs[e.pos] = ok, err
		skipped += uint64(s)
	}
	h.Stats.Inserts += uint64(len(ks))
	h.finishBatch(uint64(len(ks)), metrics.OpsInsert, skipped)
}

// batchInsertOne is tryInsert's loop body adapted for a pinned batch: the
// first attempt positions with the wave-precomputed seek record (when rec
// is still valid), retries re-seek with the deepest-ancestor resume, and
// the capacity-recovery path drops the batch pin — bumping unpinGen, since
// unpinned slots may be recycled under us — before flushing the epoch.
func (h *Handle) batchInsertOne(key uint64, rec seekRecord, useRec bool) (bool, int, error) {
	t := h.t
	ar := t.ar
	retries := 0
	skipped := 0
	for {
		if useRec {
			h.sr = rec
			useRec = false
		} else {
			skipped += h.seekBatch(key)
		}
		leaf := h.sr.leaf
		leafKey := ar.Get(leaf).key
		if leafKey == key {
			return false, skipped, nil // key already present
		}

		parent := h.sr.parent
		pn := ar.Get(parent)
		childAddr := &pn.left
		if key >= pn.key {
			childAddr = &pn.right
		}

		ni, nl, ok := h.trySpares()
		if !ok {
			if h.slot == nil || retries >= maxCapacityRetries {
				h.Stats.CapacityFailures++
				if h.m != nil {
					h.m.Inc(metrics.CapacityFailures)
				}
				return false, skipped, ErrCapacity
			}
			retries++
			h.Stats.CapacityRetries++
			if h.m != nil {
				h.m.Inc(metrics.CapacityRetries)
				h.m.Inc(metrics.SeekRestarts)
			}
			// Drop the batch pin so the epoch can advance; anything the
			// wave or the path recorded may be recycled while unpinned.
			h.unpin()
			h.unpinGen++
			h.path.valid = false
			h.slot.Flush()
			for i := 0; i < retries; i++ {
				runtime.Gosched()
			}
			h.pin()
			continue
		}
		niN, nlN := ar.Get(ni), ar.Get(nl)
		nlN.key = key
		nlN.left.Store(0)
		nlN.right.Store(0)
		if key < leafKey {
			niN.key = leafKey
			niN.left.Store(atomicx.Pack(nl, false, false))
			niN.right.Store(atomicx.Pack(leaf, false, false))
		} else {
			niN.key = key
			niN.left.Store(atomicx.Pack(leaf, false, false))
			niN.right.Store(atomicx.Pack(nl, false, false))
		}

		h.hook(FPInsertCAS)
		if childAddr.CompareAndSwap(atomicx.Pack(leaf, false, false), atomicx.Pack(ni, false, false)) {
			h.Stats.CASSucceeded++
			h.spareInternal, h.spareLeaf = 0, 0
			h.bumpDirty()
			return true, skipped, nil
		}
		h.Stats.CASFailed++
		if h.m != nil {
			h.m.Inc(metrics.InsertCASFailures)
			h.m.Inc(metrics.InsertRetries)
			h.m.Inc(metrics.SeekRestarts)
		}
		w := childAddr.Load()
		if atomicx.Addr(w) == leaf && atomicx.Marked(w) {
			h.Stats.HelpAttempts++
			if h.m != nil {
				h.m.Inc(metrics.HelpOther)
			}
			h.cleanup(key, &h.sr)
		}
	}
}

// DeleteBatch deletes every key in ks; out[i] reports whether the set
// changed. Each delete is individually linearizable. len(out) must equal
// len(ks).
func (h *Handle) DeleteBatch(ks []uint64, out []bool) {
	if len(out) != len(ks) {
		panic("core: DeleteBatch result length mismatch")
	}
	if len(ks) == 0 {
		return
	}
	ord := h.sortBatch(ks)
	h.pin()
	h.path.valid = false
	skipped := h.seekWave(ord)
	for i, e := range ord {
		ok, s := h.batchDeleteOne(e.key, h.recs[i].sr)
		out[e.pos] = ok
		skipped += uint64(s)
	}
	h.Stats.Deletes += uint64(len(ks))
	h.finishBatch(uint64(len(ks)), metrics.OpsDelete, skipped)
}

// batchDeleteOne is delete's loop body adapted for a pinned batch; see
// batchInsertOne. Deletes never drop the batch pin, so the precomputed
// record is always safe to try first. After a successful splice the
// removed nodes' recorded entries fail the resume's unmarked-word check,
// so a retrying neighbour resumes from the surviving ancestor instead of
// the root.
func (h *Handle) batchDeleteOne(key uint64, rec seekRecord) (bool, int) {
	ar := h.t.ar
	mode := injection
	skipped := 0
	useRec := true
	var leaf uint32

	for {
		if useRec {
			h.sr = rec
			useRec = false
		} else {
			skipped += h.seekBatch(key)
		}
		sr := &h.sr
		pn := ar.Get(sr.parent)
		childAddr := &pn.left
		if key >= pn.key {
			childAddr = &pn.right
		}

		if mode == injection {
			leaf = sr.leaf
			if ar.Get(leaf).key != key {
				return false, skipped // key not present
			}
			h.hook(FPFlagCAS)
			if childAddr.CompareAndSwap(atomicx.Pack(leaf, false, false), atomicx.Pack(leaf, true, false)) {
				h.Stats.CASSucceeded++
				mode = cleanupMode
				if h.cleanup(key, sr) {
					h.bumpDirty()
					return true, skipped
				}
			} else {
				h.Stats.CASFailed++
				if h.m != nil {
					h.m.Inc(metrics.DeleteFlagCASFailures)
				}
				w := childAddr.Load()
				if atomicx.Addr(w) == leaf && atomicx.Marked(w) {
					h.Stats.HelpAttempts++
					if h.m != nil {
						h.m.Inc(metrics.HelpOther)
					}
					h.cleanup(key, sr)
				}
			}
		} else {
			if sr.leaf != leaf {
				h.bumpDirty()
				return true, skipped // a helper finished our delete
			}
			if h.cleanup(key, sr) {
				h.bumpDirty()
				return true, skipped
			}
		}
		if h.m != nil {
			h.m.Inc(metrics.SeekRestarts)
		}
	}
}
