package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/atomicx"
	"repro/internal/keys"
)

// TestConcurrentDisjointInserts has workers insert disjoint key ranges in
// parallel; every insert must succeed and the final tree must hold exactly
// the union.
func TestConcurrentDisjointInserts(t *testing.T) {
	const (
		workers = 8
		each    = 2000
	)
	tr := newTest(t)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tr.NewHandle()
			for i := 0; i < each; i++ {
				k := keys.Map(int64(w*each + i))
				if !h.Insert(k) {
					t.Errorf("worker %d: insert %d returned false", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Size() != workers*each {
		t.Fatalf("size = %d, want %d", tr.Size(), workers*each)
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers*each; i++ {
		if !tr.Search(keys.Map(int64(i))) {
			t.Fatalf("key %d missing after concurrent insert", i)
		}
	}
}

// TestConcurrentInsertDeleteDisjoint interleaves inserters and deleters on
// disjoint ranges: deleters chase keys their paired inserter publishes.
func TestConcurrentInsertDeleteDisjoint(t *testing.T) {
	const (
		pairs = 4
		each  = 3000
	)
	tr := newTest(t)
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		var published atomic.Int64
		published.Store(-1)
		wg.Add(2)
		go func(p int, published *atomic.Int64) {
			defer wg.Done()
			h := tr.NewHandle()
			for i := 0; i < each; i++ {
				if !h.Insert(keys.Map(int64(p*each + i))) {
					t.Errorf("pair %d: insert %d failed", p, i)
					return
				}
				published.Store(int64(i))
			}
		}(p, &published)
		go func(p int, published *atomic.Int64) {
			defer wg.Done()
			h := tr.NewHandle()
			for i := 0; i < each; i++ {
				for published.Load() < int64(i) {
					runtime.Gosched() // key not inserted yet
				}
				if !h.Delete(keys.Map(int64(p*each + i))) {
					t.Errorf("pair %d: delete %d failed", p, i)
					return
				}
			}
		}(p, &published)
	}
	wg.Wait()
	if tr.Size() != 0 {
		t.Fatalf("size = %d, want 0", tr.Size())
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentChurnCounting races workers over a small shared key space
// (maximum contention) and validates the fundamental counting invariant:
// per key, successful inserts minus successful deletes equals the key's
// final presence.
func TestConcurrentChurnCounting(t *testing.T) {
	const (
		workers  = 8
		opsEach  = 20000
		keySpace = 64 // tiny: forces constant conflicts, chained deletes
	)
	tr := newTest(t)
	var ins, del [keySpace]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				k := rng.Intn(keySpace)
				u := keys.Map(int64(k))
				switch rng.Intn(3) {
				case 0:
					if h.Insert(u) {
						ins[k].Add(1)
					}
				case 1:
					if h.Delete(u) {
						del[k].Add(1)
					}
				default:
					h.Search(u)
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keySpace; k++ {
		diff := ins[k].Load() - del[k].Load()
		present := tr.Search(keys.Map(int64(k)))
		switch {
		case diff == 0 && !present, diff == 1 && present:
			// consistent
		default:
			t.Fatalf("key %d: inserts=%d deletes=%d present=%v — counting invariant violated",
				k, ins[k].Load(), del[k].Load(), present)
		}
	}
}

// TestHelpingCompletesStalledDelete simulates a process that stalls
// immediately after the injection CAS of a delete (the paper's helping
// scenario): the edge to the victim leaf is flagged, but the stalled
// process never runs cleanup. Any conflicting modify operation must finish
// the removal on its behalf.
func TestHelpingCompletesStalledDelete(t *testing.T) {
	tr := newTest(t)
	h := tr.NewHandle()
	for _, k := range []int64{50, 25, 75, 60} {
		h.Insert(keys.Map(k))
	}

	// Manually perform only the injection step of delete(60): seek, then
	// flag the edge (parent → leaf60) and stop — as if the process died.
	victim := keys.Map(60)
	h.seek(victim)
	leaf := h.sr.leaf
	if tr.ar.Get(leaf).key != victim {
		t.Fatal("setup: seek did not find victim leaf")
	}
	pn := tr.ar.Get(h.sr.parent)
	childAddr := &pn.left
	if victim >= pn.key {
		childAddr = &pn.right
	}
	if !childAddr.CompareAndSwap(atomicx.Pack(leaf, false, false), atomicx.Pack(leaf, true, false)) {
		t.Fatal("setup: injection CAS failed")
	}

	// A search still sees the key (logically the delete has not happened —
	// its linearization point is the physical removal CAS).
	if !tr.Search(victim) {
		t.Fatal("flagged key should still be visible before cleanup")
	}

	// An insert landing on the same injection point must fail its CAS,
	// detect the mark, help the stalled delete, and then succeed.
	h2 := tr.NewHandle()
	if !h2.Insert(keys.Map(61)) {
		t.Fatal("conflicting insert failed")
	}
	if h2.Stats.HelpAttempts == 0 {
		t.Fatal("insert did not help the stalled delete")
	}
	if tr.Search(victim) {
		t.Fatal("stalled delete's victim still present: helping did not complete the removal")
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{50, 25, 75, 61} {
		if !tr.Search(keys.Map(k)) {
			t.Fatalf("key %d lost during helping", k)
		}
	}
}

// TestMultiLeafPrune builds the chained-deletion scenario of Figure 2: a
// path of tagged internal nodes each with a flagged leaf, removed by one
// splice CAS. The splice winner's PrunedLeaves counter must report all of
// them.
func TestMultiLeafPrune(t *testing.T) {
	tr := New(Config{Capacity: 1 << 20, CountPrunedLeaves: true})
	h := tr.NewHandle()
	// Build a right spine: 10 < 20 < 30 < 40. Deleting the largest leaves
	// in ascending order with stalled cleanups would chain; instead, stall
	// deletes of 40, 30, 20 after injection+tag, then complete one splice.
	for _, k := range []int64{10, 20, 30, 40} {
		h.Insert(keys.Map(k))
	}

	// Stall three deletes after their injection (flag) step. Each delete
	// also tags the sibling edge to freeze its parent — we emulate the
	// cleanup's BTS without the final CAS.
	stall := func(key int64) {
		u := keys.Map(key)
		h.seek(u)
		leaf := h.sr.leaf
		if tr.ar.Get(leaf).key != u {
			t.Fatalf("setup: key %d not found", key)
		}
		pn := tr.ar.Get(h.sr.parent)
		childAddr, siblingAddr := &pn.left, &pn.right
		if u >= pn.key {
			childAddr, siblingAddr = &pn.right, &pn.left
		}
		if !childAddr.CompareAndSwap(atomicx.Pack(leaf, false, false), atomicx.Pack(leaf, true, false)) {
			t.Fatalf("setup: flag CAS for %d failed", key)
		}
		siblingAddr.Or(atomicx.TagBit) // freeze parent, as cleanup's BTS would
	}
	// Flag the deepest leaf first, then walk upward so tags chain.
	stall(10)
	stall(20)
	stall(30)

	// Now run a real delete of 40: its cleanup must splice at the ancestor
	// above the whole tagged chain, removing 10, 20, 30 and 40 at once.
	h2 := tr.NewHandle()
	if !h2.Delete(keys.Map(40)) {
		t.Fatal("delete(40) failed")
	}
	if h2.Stats.PrunedLeaves < 4 {
		t.Fatalf("splice pruned %d leaves, want 4 (multi-leaf removal)", h2.Stats.PrunedLeaves)
	}
	for _, k := range []int64{10, 20, 30, 40} {
		if tr.Search(keys.Map(k)) {
			t.Fatalf("key %d still present after chained prune", k)
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("size = %d, want 0", tr.Size())
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestReclaimChurn exercises the epoch-reclamation configuration: with a
// bounded key space and sustained churn, arena slots must be recycled and
// correctness must be preserved.
func TestReclaimChurn(t *testing.T) {
	tr := New(Config{Capacity: 1 << 20, Reclaim: true})
	const (
		workers = 4
		opsEach = 30000
	)
	var wg sync.WaitGroup
	recycled := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(int64(w) * 31))
			for i := 0; i < opsEach; i++ {
				k := keys.Map(int64(rng.Intn(128)))
				switch rng.Intn(2) {
				case 0:
					h.Insert(k)
				default:
					h.Delete(k)
				}
			}
			recycled[w] = h.Stats.Recycled
		}(w)
	}
	wg.Wait()
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, r := range recycled {
		total += r
	}
	if total == 0 {
		t.Fatal("no nodes were retired under churn with reclamation enabled")
	}
}

// TestReclaimBoundsMemory verifies recycling actually limits arena growth:
// repeatedly inserting and deleting the same keys must reuse slots instead
// of growing the arena linearly with operation count.
func TestReclaimBoundsMemory(t *testing.T) {
	tr := New(Config{Capacity: 1 << 20, Reclaim: true})
	h := tr.NewHandle()
	defer h.Close()
	const rounds = 20000
	for i := 0; i < rounds; i++ {
		k := keys.Map(int64(i % 8))
		h.Insert(k)
		h.Delete(k)
	}
	fresh, recycled := h.alStats()
	if recycled == 0 {
		t.Fatal("allocator never served a recycled slot")
	}
	// Without recycling this loop would demand ~2 slots per round.
	if fresh > rounds {
		t.Fatalf("fresh allocations %d suggest recycling is ineffective (rounds=%d, recycled=%d)",
			fresh, rounds, recycled)
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

// alStats exposes allocator statistics for tests.
func (h *Handle) alStats() (fresh, recycled uint64) { return h.al.Stats() }

// TestConcurrentReadersDuringChurn checks searches never crash, hang, or
// return corrupted results while the tree is being modified: a reader must
// always be able to classify a key as present/absent without violating the
// counting bounds established when the writers finish.
func TestConcurrentReadersDuringChurn(t *testing.T) {
	tr := newTest(t)
	const keySpace = 256
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys.Map(int64(rng.Intn(keySpace)))
				if rng.Intn(2) == 0 {
					h.Insert(k)
				} else {
					h.Delete(k)
				}
			}
		}(int64(w) + 100)
	}
	var reads atomic.Int64
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Search(keys.Map(int64(rng.Intn(keySpace))))
				reads.Add(1)
			}
		}(int64(r) + 200)
	}
	for reads.Load() < 50000 {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}
