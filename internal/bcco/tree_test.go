package bcco_test

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/bcco"
	"repro/internal/keys"
	"repro/internal/settest"
)

func TestConformance(t *testing.T) {
	settest.Run(t, func(capacity int) settest.Set {
		return bcco.New()
	})
}

// TestBalanceSequential checks the relaxed-AVL property has teeth: after n
// sequential ascending inserts (the worst case for an unbalanced BST, which
// would produce height n), the height must be within a small factor of
// log2(n).
func TestBalanceSequential(t *testing.T) {
	tr := bcco.New()
	const n = 1 << 15
	for i := 0; i < n; i++ {
		if !tr.Insert(keys.Map(int64(i))) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	limit := 2*bits.Len(uint(n)) + 4
	if h := tr.Height(); h > limit {
		t.Fatalf("height %d after %d ascending inserts exceeds relaxed-AVL limit %d", h, n, limit)
	}
}

func TestBalanceDescending(t *testing.T) {
	tr := bcco.New()
	const n = 1 << 14
	for i := n; i > 0; i-- {
		tr.Insert(keys.Map(int64(i)))
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	limit := 2*bits.Len(uint(n)) + 4
	if h := tr.Height(); h > limit {
		t.Fatalf("height %d exceeds %d", h, limit)
	}
}

// TestRoutingNodeLifecycle verifies partial externality: deleting a
// two-children node leaves a routing node that still routes correctly, is
// invisible to searches, can be resurrected by a re-insert, and is
// physically unlinked once it loses a child.
func TestRoutingNodeLifecycle(t *testing.T) {
	tr := bcco.New()
	for _, k := range []int64{50, 25, 75} {
		tr.Insert(keys.Map(k))
	}
	// 50 has two children: becomes a routing node.
	if !tr.Delete(keys.Map(50)) {
		t.Fatal("delete failed")
	}
	if tr.Search(keys.Map(50)) {
		t.Fatal("routing node visible to search")
	}
	if !tr.Search(keys.Map(25)) || !tr.Search(keys.Map(75)) {
		t.Fatal("routing node stopped routing")
	}
	if tr.Size() != 2 {
		t.Fatalf("size = %d, want 2", tr.Size())
	}
	// Resurrect.
	if !tr.Insert(keys.Map(50)) {
		t.Fatal("re-insert over routing node failed")
	}
	if !tr.Search(keys.Map(50)) {
		t.Fatal("resurrected key invisible")
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleStats(t *testing.T) {
	tr := bcco.New()
	h := tr.NewHandle()
	for i := 0; i < 1024; i++ {
		h.Insert(keys.Map(int64(i)))
	}
	if h.Stats.Rotations == 0 {
		t.Fatal("1024 ascending inserts performed no rotations")
	}
	if h.Stats.NodesAlloc != 1024 {
		t.Fatalf("allocated %d nodes, want 1024", h.Stats.NodesAlloc)
	}
	for i := 0; i < 1024; i++ {
		h.Delete(keys.Map(int64(i)))
	}
	if tr.Size() != 0 {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestChurnKeepsTreeTidy(t *testing.T) {
	// Sustained random churn must not accumulate unbounded routing nodes or
	// corrupt the structure.
	tr := bcco.New()
	rng := rand.New(rand.NewSource(5))
	model := map[int64]bool{}
	for i := 0; i < 60000; i++ {
		k := int64(rng.Intn(512))
		u := keys.Map(k)
		if rng.Intn(2) == 0 {
			if got, want := tr.Insert(u), !model[k]; got != want {
				t.Fatalf("op %d insert(%d) = %v want %v", i, k, got, want)
			}
			model[k] = true
		} else {
			if got, want := tr.Delete(u), model[k]; got != want {
				t.Fatalf("op %d delete(%d) = %v want %v", i, k, got, want)
			}
			delete(model, k)
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Size(); got != len(model) {
		t.Fatalf("size = %d, model %d", got, len(model))
	}
}
