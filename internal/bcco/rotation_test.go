package bcco_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bcco"
	"repro/internal/keys"
)

// TestReadersDuringRotations targets the optimistic read protocol
// specifically: a writer inserts monotonically ascending keys — the
// rotation-heaviest load possible — while readers continuously look up
// keys *below a published watermark*. Every such key was durably inserted
// before the reader asked, so a miss would mean a rotation hid a key from
// the hand-over-hand validation (the central correctness risk of the
// version-based design).
func TestReadersDuringRotations(t *testing.T) {
	tr := bcco.New()
	const total = 60_000
	var watermark atomic.Int64 // all keys < watermark are inserted
	var wg sync.WaitGroup
	var failures atomic.Int64

	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tr.NewHandle()
		for i := int64(0); i < total; i++ {
			if !h.Insert(keys.Map(i)) {
				failures.Add(1)
				return
			}
			watermark.Store(i + 1)
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := tr.NewHandle()
			x := seed
			for {
				w := watermark.Load()
				if w >= total {
					return
				}
				if w == 0 {
					runtime.Gosched()
					continue
				}
				x = x*6364136223846793005 + 1442695040888963407
				k := int64(x % uint64(w))
				if !h.Search(keys.Map(k)) {
					t.Errorf("key %d below watermark %d invisible during rotations", k, w)
					failures.Add(1)
					return
				}
			}
		}(uint64(r) + 7)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatal("rotation visibility failures")
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != total {
		t.Fatalf("size = %d, want %d", tr.Size(), total)
	}
}

// TestDeleteDuringRotations mixes the other write path in: one goroutine
// inserts ascending keys, another deletes a trailing window, readers
// check the watermarked middle region stays visible.
func TestDeleteDuringRotations(t *testing.T) {
	tr := bcco.New()
	const total = 40_000
	const lag = 10_000
	var inserted, deleted atomic.Int64
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tr.NewHandle()
		for i := int64(0); i < total; i++ {
			h.Insert(keys.Map(i))
			inserted.Store(i + 1)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tr.NewHandle()
		next := int64(0)
		for next < total-lag {
			if inserted.Load()-next > lag {
				if !h.Delete(keys.Map(next)) {
					t.Errorf("delete of inserted key %d failed", next)
					return
				}
				deleted.Store(next + 1)
				next++
			} else {
				runtime.Gosched()
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tr.NewHandle()
		x := uint64(13)
		for inserted.Load() < total {
			lo, hi := deleted.Load(), inserted.Load()
			if hi-lo < 2 {
				runtime.Gosched()
				continue
			}
			x = x*6364136223846793005 + 1
			k := lo + int64(x%uint64(hi-lo))
			if !h.Search(keys.Map(k)) {
				// The deleter may have legitimately consumed k between the
				// watermark read and the search. The watermark reaches k
				// no later than the start of delete(k), so a miss while k
				// is still *above* the current watermark is a real bug.
				if k > deleted.Load() {
					t.Errorf("live key %d (deleted watermark %d) invisible", k, deleted.Load())
					return
				}
			}
		}
	}()
	wg.Wait()
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Size(), total-int(deleted.Load()); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
}
