// Package bcco implements the lock-based concurrent binary search tree of
// Bronson, Casper, Chafi and Olukotun ("A Practical Concurrent Binary
// Search Tree", PPoPP 2010) — the BCCO-BST baseline of the paper's
// evaluation.
//
// The design is a *partially external* relaxed-balance AVL tree with
// optimistic, hand-over-hand version validation:
//
//   - Reads are invisible: a search descends without locks, reading a
//     per-node version word before following a child pointer and
//     re-validating it afterwards. If the version changed — a rotation
//     moved the node down — the search retries from the node's parent.
//     While a node is mid-rotation its version carries a "changing" bit
//     and readers briefly wait.
//   - Writes lock individual nodes (parent before child, validating the
//     parent→child relation while holding the parent — this ordering is
//     what makes the locking deadlock-free).
//   - Deleting a node with two children merely clears its presence bit,
//     leaving a *routing* node (this is the partial externality); nodes
//     with fewer than two children are physically unlinked. Routing nodes
//     are reclaimed when rebalancing finds them with at most one child.
//   - Balancing is relaxed AVL: heights are hints repaired lazily by
//     fixHeightAndRebalance walking toward the root performing single and
//     double rotations under local locks.
//
// Adaptation note: the original distinguishes "grow" from "shrink" version
// changes so that rotations moving a node up do not invalidate concurrent
// descents. This implementation keeps that property (only the rotated-down
// node's version is bumped) but folds the two counters into a single
// change counter, trading a few extra read-retries for simplicity.
package bcco

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/keys"
)

// Version word bits.
const (
	vUnlinked uint64 = 1 << 0 // node removed from the tree (permanent)
	vChanging uint64 = 1 << 1 // node mid-rotation; readers wait
	vCountInc uint64 = 1 << 2 // change-counter increment
)

type node struct {
	key     uint64
	height  atomic.Int32
	version atomic.Uint64
	present atomic.Bool // false ⇒ routing node (partially external)
	parent  atomic.Pointer[node]
	left    atomic.Pointer[node]
	right   atomic.Pointer[node]
	mu      sync.Mutex
}

func (n *node) child(left bool) *atomic.Pointer[node] {
	if left {
		return &n.left
	}
	return &n.right
}

func height(n *node) int32 {
	if n == nil {
		return 0
	}
	return n.height.Load()
}

// waitUntilNotChanging spins while n is mid-rotation.
func waitUntilNotChanging(n *node) {
	for i := 0; ; i++ {
		v := n.version.Load()
		if v&vChanging == 0 {
			return
		}
		if i > 32 {
			runtime.Gosched()
		}
	}
}

// Stats counts work performed through a Handle.
type Stats struct {
	Searches, Inserts, Deletes uint64
	Retries                    uint64 // optimistic validation failures
	Rotations                  uint64
	Unlinks                    uint64 // routing/single-child nodes removed
	NodesAlloc                 uint64
}

// Tree is the BCCO lock-based relaxed AVL tree.
type Tree struct {
	holder *node // static pseudo-root; the real tree is holder.right
}

// New creates an empty tree.
func New() *Tree {
	h := &node{key: keys.Inf2}
	h.height.Store(0)
	return &Tree{holder: h}
}

// Handle is a per-goroutine accessor carrying statistics.
type Handle struct {
	t     *Tree
	Stats Stats
}

// NewHandle returns a per-goroutine accessor.
func (t *Tree) NewHandle() *Handle { return &Handle{t: t} }

// Convenience methods.

// Search reports whether key is present.
func (t *Tree) Search(key uint64) bool { h := Handle{t: t}; return h.Search(key) }

// Insert adds key if absent.
func (t *Tree) Insert(key uint64) bool { h := Handle{t: t}; return h.Insert(key) }

// Delete removes key if present.
func (t *Tree) Delete(key uint64) bool { h := Handle{t: t}; return h.Delete(key) }

// Results of optimistic attempts.
type result int8

const (
	rRetry result = iota // validation failed at this level; redo from parent
	rFalse               // operation completed, returns false
	rTrue                // operation completed, returns true
)

// Search descends optimistically; found means the node exists *and* its
// presence bit is set (routing nodes are logically absent).
func (h *Handle) Search(key uint64) bool {
	h.Stats.Searches++
	t := h.t
	for {
		right := t.holder.right.Load()
		if right == nil {
			return false
		}
		rv := right.version.Load()
		if rv&vChanging != 0 {
			waitUntilNotChanging(right)
			continue
		}
		if t.holder.right.Load() != right {
			h.Stats.Retries++
			continue
		}
		if res := h.attemptGet(key, right, rv); res != rRetry {
			return res == rTrue
		}
		h.Stats.Retries++
	}
}

// attemptGet searches within the subtree rooted at n, whose version was
// observed as nv. rRetry means the caller must re-descend into n's slot.
func (h *Handle) attemptGet(key uint64, n *node, nv uint64) result {
	for {
		if key == n.key {
			// Presence is a single atomic read: its change is the
			// linearization point of the corresponding insert/delete.
			if n.present.Load() {
				return rTrue
			}
			return rFalse
		}
		dirLeft := key < n.key
		child := n.child(dirLeft).Load()
		if child == nil {
			// Validate we did not read the nil while n was being moved.
			if n.version.Load() != nv {
				return rRetry
			}
			return rFalse
		}
		cv := child.version.Load()
		if cv&vChanging != 0 {
			waitUntilNotChanging(child)
			if n.version.Load() != nv {
				return rRetry
			}
			continue
		}
		if n.child(dirLeft).Load() != child || n.version.Load() != nv {
			if n.version.Load() != nv {
				return rRetry
			}
			continue
		}
		if res := h.attemptGet(key, child, cv); res != rRetry {
			return res
		}
		h.Stats.Retries++
		if n.version.Load() != nv {
			return rRetry
		}
	}
}

// Insert adds key if absent. Inserting over a routing node just sets its
// presence bit; otherwise a leaf is linked and the path rebalanced.
func (h *Handle) Insert(key uint64) bool {
	h.Stats.Inserts++
	t := h.t
	for {
		right := t.holder.right.Load()
		if right == nil {
			// Empty tree: link the first real node under the holder.
			t.holder.mu.Lock()
			if t.holder.right.Load() == nil {
				nn := h.newNode(key, t.holder)
				t.holder.right.Store(nn)
				t.holder.mu.Unlock()
				return true
			}
			t.holder.mu.Unlock()
			continue
		}
		rv := right.version.Load()
		if rv&vChanging != 0 {
			waitUntilNotChanging(right)
			continue
		}
		if t.holder.right.Load() != right {
			h.Stats.Retries++
			continue
		}
		if res := h.attemptInsert(key, right, rv); res != rRetry {
			return res == rTrue
		}
		h.Stats.Retries++
	}
}

func (h *Handle) newNode(key uint64, parent *node) *node {
	nn := &node{key: key}
	nn.height.Store(1)
	nn.present.Store(true)
	nn.parent.Store(parent)
	h.Stats.NodesAlloc++
	return nn
}

func (h *Handle) attemptInsert(key uint64, n *node, nv uint64) result {
	for {
		if key == n.key {
			n.mu.Lock()
			if n.version.Load()&vUnlinked != 0 {
				n.mu.Unlock()
				return rRetry
			}
			if n.present.Load() {
				n.mu.Unlock()
				return rFalse
			}
			n.present.Store(true) // routing node resurrected
			n.mu.Unlock()
			return rTrue
		}
		dirLeft := key < n.key
		child := n.child(dirLeft).Load()
		if child == nil {
			// Try to link a fresh leaf under n.
			n.mu.Lock()
			if n.version.Load() != nv {
				n.mu.Unlock()
				return rRetry
			}
			if n.child(dirLeft).Load() != nil {
				// Someone linked here first; re-descend from n.
				n.mu.Unlock()
				continue
			}
			nn := h.newNode(key, n)
			n.child(dirLeft).Store(nn)
			n.mu.Unlock()
			h.fixHeightAndRebalance(n)
			return rTrue
		}
		cv := child.version.Load()
		if cv&vChanging != 0 {
			waitUntilNotChanging(child)
			if n.version.Load() != nv {
				return rRetry
			}
			continue
		}
		if n.child(dirLeft).Load() != child || n.version.Load() != nv {
			if n.version.Load() != nv {
				return rRetry
			}
			continue
		}
		if res := h.attemptInsert(key, child, cv); res != rRetry {
			return res
		}
		h.Stats.Retries++
		if n.version.Load() != nv {
			return rRetry
		}
	}
}

// Delete removes key if present. Two-children nodes become routing nodes
// (presence bit cleared); others are unlinked under parent+node locks.
func (h *Handle) Delete(key uint64) bool {
	h.Stats.Deletes++
	t := h.t
	for {
		right := t.holder.right.Load()
		if right == nil {
			return false
		}
		rv := right.version.Load()
		if rv&vChanging != 0 {
			waitUntilNotChanging(right)
			continue
		}
		if t.holder.right.Load() != right {
			h.Stats.Retries++
			continue
		}
		if res := h.attemptDelete(key, right, rv); res != rRetry {
			return res == rTrue
		}
		h.Stats.Retries++
	}
}

func (h *Handle) attemptDelete(key uint64, n *node, nv uint64) result {
	for {
		if key == n.key {
			return h.removeNode(n)
		}
		dirLeft := key < n.key
		child := n.child(dirLeft).Load()
		if child == nil {
			if n.version.Load() != nv {
				return rRetry
			}
			return rFalse
		}
		cv := child.version.Load()
		if cv&vChanging != 0 {
			waitUntilNotChanging(child)
			if n.version.Load() != nv {
				return rRetry
			}
			continue
		}
		if n.child(dirLeft).Load() != child || n.version.Load() != nv {
			if n.version.Load() != nv {
				return rRetry
			}
			continue
		}
		if res := h.attemptDelete(key, child, cv); res != rRetry {
			return res
		}
		h.Stats.Retries++
		if n.version.Load() != nv {
			return rRetry
		}
	}
}

// removeNode deletes the key stored at n: a two-children node keeps its
// skeleton as a routing node; otherwise n is spliced out entirely.
func (h *Handle) removeNode(n *node) result {
	for {
		if n.version.Load()&vUnlinked != 0 {
			return rRetry
		}
		if n.left.Load() != nil && n.right.Load() != nil {
			// Looks like two children: clear presence under n's lock.
			n.mu.Lock()
			if n.version.Load()&vUnlinked != 0 {
				n.mu.Unlock()
				return rRetry
			}
			if n.left.Load() == nil || n.right.Load() == nil {
				n.mu.Unlock()
				continue // shrank meanwhile; take the unlink path
			}
			if !n.present.Load() {
				n.mu.Unlock()
				return rFalse
			}
			n.present.Store(false)
			n.mu.Unlock()
			return rTrue
		}

		// At most one child: unlink under parent→node locks.
		p := n.parent.Load()
		p.mu.Lock()
		if p.version.Load()&vUnlinked != 0 || n.parent.Load() != p {
			p.mu.Unlock()
			h.Stats.Retries++
			continue
		}
		n.mu.Lock()
		if n.version.Load()&vUnlinked != 0 {
			n.mu.Unlock()
			p.mu.Unlock()
			return rRetry
		}
		if n.left.Load() != nil && n.right.Load() != nil {
			// Grew a second child; handle on the next iteration.
			n.mu.Unlock()
			p.mu.Unlock()
			continue
		}
		if !n.present.Load() {
			n.mu.Unlock()
			p.mu.Unlock()
			return rFalse
		}
		h.unlinkLocked(p, n)
		n.mu.Unlock()
		p.mu.Unlock()
		h.fixHeightAndRebalance(p)
		return rTrue
	}
}

// unlinkLocked splices n (≤1 child) out from under p. Both locks held.
func (h *Handle) unlinkLocked(p, n *node) {
	splice := n.left.Load()
	if splice == nil {
		splice = n.right.Load()
	}
	v := n.version.Load()
	n.version.Store(v | vChanging)
	if p.left.Load() == n {
		p.left.Store(splice)
	} else {
		p.right.Store(splice)
	}
	if splice != nil {
		splice.parent.Store(p)
	}
	n.present.Store(false)
	n.version.Store((v + vCountInc) | vUnlinked)
	h.Stats.Unlinks++
}

// ---- relaxed AVL repair ----

// fixHeightAndRebalance walks from n toward the root repairing stale
// heights, rotating unbalanced nodes and unlinking spent routing nodes.
func (h *Handle) fixHeightAndRebalance(n *node) {
	for n != nil && n != h.t.holder {
		if n.version.Load()&vUnlinked != 0 {
			return
		}
		l, r := n.left.Load(), n.right.Load()
		hl, hr := height(l), height(r)
		bal := hl - hr
		routingSpent := !n.present.Load() && (l == nil || r == nil)

		switch {
		case routingSpent:
			n = h.tryUnlinkRouting(n)
		case bal > 1 || bal < -1:
			n = h.tryRotate(n)
		default:
			newH := 1 + max32(hl, hr)
			if newH == n.height.Load() {
				return // nothing stale; repair complete
			}
			n.mu.Lock()
			if n.version.Load()&vUnlinked != 0 {
				n.mu.Unlock()
				return
			}
			hl, hr = height(n.left.Load()), height(n.right.Load())
			newH = 1 + max32(hl, hr)
			if n.height.Load() == newH {
				n.mu.Unlock()
				return
			}
			n.height.Store(newH)
			n.mu.Unlock()
			n = n.parent.Load() // propagate the height change
		}
	}
}

// tryUnlinkRouting removes a presence-less node with ≤1 child; returns the
// node from which repair should continue.
func (h *Handle) tryUnlinkRouting(n *node) *node {
	p := n.parent.Load()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if p.version.Load()&vUnlinked != 0 || n.parent.Load() != p {
		p.mu.Unlock()
		return n // stale parent; recompute next round
	}
	n.mu.Lock()
	ok := n.version.Load()&vUnlinked == 0 &&
		!n.present.Load() &&
		(n.left.Load() == nil || n.right.Load() == nil)
	if ok {
		h.unlinkLocked(p, n)
	}
	n.mu.Unlock()
	p.mu.Unlock()
	return p
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// tryRotate performs a single or double rotation at n under parent→child
// ordered locks; returns the node from which repair should continue.
func (h *Handle) tryRotate(n *node) *node {
	p := n.parent.Load()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.version.Load()&vUnlinked != 0 || n.parent.Load() != p {
		return n
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.version.Load()&vUnlinked != 0 {
		return p
	}

	l, r := n.left.Load(), n.right.Load()
	bal := height(l) - height(r)
	switch {
	case bal > 1:
		// Left-heavy. l is non-nil (height ≥ 2).
		l.mu.Lock()
		defer l.mu.Unlock()
		if height(l.left.Load()) >= height(l.right.Load()) {
			h.rotateRight(p, n, l)
			return n // n moved down; re-examine it, then ancestors
		}
		// Double rotation: rotate l's right child up twice.
		lr := l.right.Load()
		if lr == nil {
			// Heights were stale; just repair them.
			h.fixHeightLocked(n)
			return p
		}
		lr.mu.Lock()
		defer lr.mu.Unlock()
		h.rotateLeft(n, l, lr) // within n's subtree: lr replaces l
		h.rotateRight(p, n, lr)
		return n
	case bal < -1:
		r.mu.Lock()
		defer r.mu.Unlock()
		if height(r.right.Load()) >= height(r.left.Load()) {
			h.rotateLeft(p, n, r)
			return n
		}
		rl := r.left.Load()
		if rl == nil {
			h.fixHeightLocked(n)
			return p
		}
		rl.mu.Lock()
		defer rl.mu.Unlock()
		h.rotateRight(n, r, rl)
		h.rotateLeft(p, n, rl)
		return n
	default:
		// Heights changed under us; repair and continue upward.
		h.fixHeightLocked(n)
		return p
	}
}

// fixHeightLocked recomputes n's height; n's lock must be held.
func (h *Handle) fixHeightLocked(n *node) {
	n.height.Store(1 + max32(height(n.left.Load()), height(n.right.Load())))
}

// rotateRight rotates l up over n (all of p, n, l locked):
//
//	    p            p
//	    |            |
//	    n            l
//	   / \    →     / \
//	  l   c        a   n
//	 / \              / \
//	a   b            b   c
//
// Only n moves down, so only n's version is bumped (readers inside l or a
// are unaffected — the "grow" side of Bronson's grow/shrink distinction).
func (h *Handle) rotateRight(p, n, l *node) {
	h.Stats.Rotations++
	v := n.version.Load()
	n.version.Store(v | vChanging)

	b := l.right.Load()
	n.left.Store(b)
	if b != nil {
		b.parent.Store(n)
	}
	l.right.Store(n)
	n.parent.Store(l)
	if p.left.Load() == n {
		p.left.Store(l)
	} else {
		p.right.Store(l)
	}
	l.parent.Store(p)

	n.height.Store(1 + max32(height(n.left.Load()), height(n.right.Load())))
	l.height.Store(1 + max32(height(l.left.Load()), height(n)))

	n.version.Store((v + vCountInc) &^ vChanging)
}

// rotateLeft is the mirror image of rotateRight.
func (h *Handle) rotateLeft(p, n, r *node) {
	h.Stats.Rotations++
	v := n.version.Load()
	n.version.Store(v | vChanging)

	b := r.left.Load()
	n.right.Store(b)
	if b != nil {
		b.parent.Store(n)
	}
	r.left.Store(n)
	n.parent.Store(r)
	if p.left.Load() == n {
		p.left.Store(r)
	} else {
		p.right.Store(r)
	}
	r.parent.Store(p)

	n.height.Store(1 + max32(height(n.left.Load()), height(n.right.Load())))
	r.height.Store(1 + max32(height(n), height(r.right.Load())))

	n.version.Store((v + vCountInc) &^ vChanging)
}

// ---- quiescent inspection ----

// Size counts present keys (quiescent only).
func (t *Tree) Size() int {
	n := 0
	t.Keys(func(uint64) bool { n++; return true })
	return n
}

// Keys visits present keys in ascending order (quiescent only). Routing
// nodes are skipped.
func (t *Tree) Keys(yield func(uint64) bool) {
	if r := t.holder.right.Load(); r != nil {
		t.visit(r, yield)
	}
}

func (t *Tree) visit(n *node, yield func(uint64) bool) bool {
	if l := n.left.Load(); l != nil && !t.visit(l, yield) {
		return false
	}
	if n.present.Load() && !yield(n.key) {
		return false
	}
	if r := n.right.Load(); r != nil && !t.visit(r, yield) {
		return false
	}
	return true
}

// Height returns the root height (quiescent diagnostic).
func (t *Tree) Height() int {
	return int(height(t.holder.right.Load()))
}

// SpaceStats reports reachable-node accounting (quiescent): partially
// external deletion leaves value-less routing nodes in place until
// rebalancing unlinks them, so TotalNodes can exceed LiveKeys.
type SpaceStats struct {
	LiveKeys     int
	RoutingNodes int
	TotalNodes   int
}

// Space computes SpaceStats by walking the tree (quiescent only).
func (t *Tree) Space() SpaceStats {
	var s SpaceStats
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		s.TotalNodes++
		if n.present.Load() {
			s.LiveKeys++
		} else {
			s.RoutingNodes++
		}
		walk(n.left.Load())
		walk(n.right.Load())
	}
	walk(t.holder.right.Load())
	return s
}

// Audit validates the structural invariants (quiescent only): strict key
// ordering, parent back-pointers, height hints within relaxed-AVL slack,
// and no changing/unlinked nodes reachable.
func (t *Tree) Audit() error {
	r := t.holder.right.Load()
	if r == nil {
		return nil
	}
	if r.parent.Load() != t.holder {
		return fmt.Errorf("root's parent pointer is stale")
	}
	_, err := t.audit(r, 0, keys.Inf2)
	return err
}

func (t *Tree) audit(n *node, lo, hi uint64) (int32, error) {
	if n.key < lo || n.key > hi {
		return 0, fmt.Errorf("key %#x outside [%#x, %#x]", n.key, lo, hi)
	}
	if v := n.version.Load(); v&(vUnlinked|vChanging) != 0 {
		return 0, fmt.Errorf("reachable node %#x has version flags %#x in quiescent tree", n.key, v)
	}
	var hl, hr int32
	if l := n.left.Load(); l != nil {
		if l.parent.Load() != n {
			return 0, fmt.Errorf("left child of %#x has stale parent", n.key)
		}
		if n.key == 0 {
			return 0, fmt.Errorf("node with key 0 has a left child")
		}
		var err error
		if hl, err = t.audit(l, lo, n.key-1); err != nil {
			return 0, err
		}
	}
	if r := n.right.Load(); r != nil {
		if r.parent.Load() != n {
			return 0, fmt.Errorf("right child of %#x has stale parent", n.key)
		}
		var err error
		if hr, err = t.audit(r, n.key+1, hi); err != nil {
			return 0, err
		}
	}
	trueH := 1 + max32(hl, hr)
	// Heights are repair hints, not invariants: racing fixups may leave
	// them stale until the next operation touches the path. Only reject
	// impossible values.
	if got := n.height.Load(); got < 1 {
		return 0, fmt.Errorf("node %#x has height hint %d", n.key, got)
	}
	return trueH, nil
}
