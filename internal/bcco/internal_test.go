package bcco

import (
	"testing"
	"time"

	"repro/internal/keys"
)

// TestWaitUntilNotChanging exercises the reader-side spin directly: a node
// marked "changing" must block readers until the bit clears.
func TestWaitUntilNotChanging(t *testing.T) {
	n := &node{}
	n.version.Store(vChanging)
	released := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Millisecond)
		n.version.Store(vCountInc) // rotation finished: bump count, clear bit
		close(released)
	}()
	waitUntilNotChanging(n)
	select {
	case <-released:
	default:
		t.Fatal("waitUntilNotChanging returned while the changing bit was set")
	}
	if v := n.version.Load(); v&vChanging != 0 {
		t.Fatalf("version still changing: %#x", v)
	}
}

// TestFixHeightLocked checks the direct height repair helper.
func TestFixHeightLocked(t *testing.T) {
	tr := New()
	h := tr.NewHandle()
	for _, k := range []int64{50, 25, 75} {
		h.Insert(keys.Map(k))
	}
	root := tr.holder.right.Load()
	root.height.Store(99) // corrupt the hint
	root.mu.Lock()
	h.fixHeightLocked(root)
	root.mu.Unlock()
	if got := root.height.Load(); got != 2 {
		t.Fatalf("repaired height = %d, want 2", got)
	}
}

// TestReaderRetriesAcrossVersionBump forces the optimistic validation
// failure path: bump a node's version between a reader's observation and
// its descent, via the changing protocol used by rotations.
func TestReaderRetriesAcrossVersionBump(t *testing.T) {
	tr := New()
	h := tr.NewHandle()
	for i := int64(0); i < 64; i++ {
		h.Insert(keys.Map(i))
	}
	root := tr.holder.right.Load()

	// Simulate a rotation's version lifecycle on the live root while
	// searches run: they must keep answering correctly (waiting through
	// the changing window, retrying across the bump).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			v := root.version.Load()
			root.version.Store(v | vChanging)
			root.version.Store((v + vCountInc) &^ vChanging)
		}
	}()
	h2 := tr.NewHandle()
	for i := 0; i < 5000; i++ {
		k := int64(i % 64)
		if !h2.Search(keys.Map(k)) {
			t.Fatalf("key %d invisible during version churn", k)
		}
	}
	<-done
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}
