package forest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/metrics"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Shards: 1}); err == nil {
		t.Fatal("want error for 1 shard")
	}
	if _, err := New(Config{Shards: MaxShards + 1}); err == nil {
		t.Fatal("want error above MaxShards")
	}
	f, err := New(Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if f.Shards() != 4 {
		t.Fatalf("3 shards should round to 4, got %d", f.Shards())
	}
}

// TestRoutingPartition checks that ShardOf and Bounds agree: every shard's
// bounds route back to it, bounds tile the key space without gaps, and
// keys outside a narrowed routing range clamp to the edge shards.
func TestRoutingPartition(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64} {
		for _, narrow := range []bool{false, true} {
			cfg := Config{Shards: n}
			if narrow {
				cfg.Lo, cfg.Hi = keys.Map(0), keys.Map(1<<20-1)
			}
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			prevHi := uint64(0)
			for i := 0; i < f.Shards(); i++ {
				lo, hi := f.Bounds(i)
				if i == 0 && lo != 0 {
					t.Fatalf("n=%d shard 0 lo = %d, want 0", n, lo)
				}
				if i > 0 && lo != prevHi+1 {
					t.Fatalf("n=%d shard %d lo = %d, want %d (no gap/overlap)", n, i, lo, prevHi+1)
				}
				if i == f.Shards()-1 && hi != keys.Map(keys.MaxUser) {
					t.Fatalf("n=%d last shard hi = %d, want top of user space", n, hi)
				}
				if got := f.ShardOf(lo); got != i {
					t.Fatalf("n=%d ShardOf(lo of shard %d) = %d", n, i, got)
				}
				if got := f.ShardOf(hi); got != i {
					t.Fatalf("n=%d ShardOf(hi of shard %d) = %d", n, i, got)
				}
				prevHi = hi
			}
		}
	}
}

func TestPointOpsAndSize(t *testing.T) {
	f, err := New(Config{Shards: 4, Lo: keys.Map(0), Hi: keys.Map(1 << 16)})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	want := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		// Mix of in-range and clamped out-of-range keys.
		u := keys.Map(rng.Int63n(1 << 18))
		if rng.Intn(3) == 0 {
			f.Delete(u)
			delete(want, u)
		} else {
			f.Insert(u)
			want[u] = true
		}
	}
	for u := range want {
		if !f.Search(u) {
			t.Fatalf("key %d missing", u)
		}
	}
	if f.Size() != len(want) {
		t.Fatalf("Size = %d, want %d", f.Size(), len(want))
	}
	if err := f.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestKeysSortedAcrossShards(t *testing.T) {
	f, err := New(Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		f.Insert(keys.Map(rng.Int63()))
	}
	var got []uint64
	f.Keys(func(u uint64) bool { got = append(got, u); return true })
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("Keys stream not globally sorted")
	}
	if len(got) != f.Size() {
		t.Fatalf("Keys yielded %d, Size %d", len(got), f.Size())
	}
}

func TestRangeMerge(t *testing.T) {
	f, err := New(Config{Shards: 4, Lo: keys.Map(0), Hi: keys.Map(4096)})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k <= 4096; k += 3 {
		f.Insert(keys.Map(k))
	}
	var got []int64
	f.Range(keys.Map(100), keys.Map(3000), func(u uint64) bool {
		got = append(got, keys.Unmap(u))
		return true
	})
	var want []int64
	for k := int64(102); k <= 3000; k += 3 {
		want = append(want, k)
	}
	if len(got) != len(want) {
		t.Fatalf("range yielded %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("range[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early stop.
	count := 0
	f.Range(0, keys.Map(keys.MaxUser), func(uint64) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("early stop yielded %d", count)
	}
}

func TestHandleBatchRoundTrip(t *testing.T) {
	f, err := New(Config{Shards: 8, Lo: keys.Map(0), Hi: keys.Map(1 << 20)})
	if err != nil {
		t.Fatal(err)
	}
	h := f.NewHandle()
	defer h.Close()
	const n = 4096 // large enough to fan out concurrently
	ks := make([]uint64, n)
	for i := range ks {
		// Distinct keys spread across all shards (unsorted input).
		ks[i] = keys.Map(int64(i)*173 + 7)
	}
	rand.New(rand.NewSource(3)).Shuffle(n, func(i, j int) { ks[i], ks[j] = ks[j], ks[i] })
	out := make([]bool, n)
	errs := make([]error, n)
	h.InsertBatch(ks, out, errs)
	for i := range ks {
		if errs[i] != nil || !out[i] {
			t.Fatalf("insert %d: ok=%v err=%v", i, out[i], errs[i])
		}
	}
	look := make([]bool, n)
	h.LookupBatch(ks, look)
	for i := range look {
		if !look[i] {
			t.Fatalf("lookup %d missing", i)
		}
	}
	del := make([]bool, n)
	h.DeleteBatch(ks, del)
	for i := range del {
		if !del[i] {
			t.Fatalf("delete %d reported no change", i)
		}
	}
	if f.Size() != 0 {
		t.Fatalf("Size after delete-all = %d", f.Size())
	}
}

// TestCapacityIsolation pins the satellite requirement: a shard exhausting
// its arena fails only its own keys' slots; ops routed to sibling shards
// in the same batch succeed.
func TestCapacityIsolation(t *testing.T) {
	// 4 shards over [0, 4096): tiny total capacity so each shard can hold
	// only a handful of user keys beyond its bootstrap sentinels.
	f, err := New(Config{Shards: 4, Lo: keys.Map(0), Hi: keys.Map(4095),
		Tree: core.Config{Capacity: 128}})
	if err != nil {
		t.Fatal(err)
	}
	_, shard0Hi := f.Bounds(0)
	// Exhaust shard 0 with distinct keys (2 nodes per insert).
	for k := uint64(0); ; k++ {
		if k > shard0Hi {
			t.Fatal("could not exhaust shard 0")
		}
		if _, err := f.TryInsert(k); errors.Is(err, core.ErrCapacity) {
			break
		}
	}
	// A batch spanning all four shards: shard 0's fresh keys must fail
	// with ErrCapacity, the other shards' keys must succeed.
	lo1, _ := f.Bounds(1)
	lo2, _ := f.Bounds(2)
	lo3, _ := f.Bounds(3)
	ks := []uint64{shard0Hi, lo1 + 5, shard0Hi - 1, lo2 + 5, lo3 + 5}
	out := make([]bool, len(ks))
	errs := make([]error, len(ks))
	f.InsertBatch(ks, out, errs)
	for _, i := range []int{0, 2} {
		if !errors.Is(errs[i], core.ErrCapacity) {
			t.Fatalf("slot %d (exhausted shard): err=%v, want ErrCapacity", i, errs[i])
		}
	}
	for _, i := range []int{1, 3, 4} {
		if errs[i] != nil || !out[i] {
			t.Fatalf("slot %d (healthy shard) poisoned: ok=%v err=%v", i, out[i], errs[i])
		}
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	reg := metrics.NewRegistry(0)
	f, err := New(Config{Shards: 4, Lo: keys.Map(0), Hi: keys.Map(1 << 16),
		Tree: core.Config{Reclaim: true, Metrics: reg}})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := f.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			ks := make([]uint64, 64)
			out := make([]bool, 64)
			errs := make([]error, 64)
			for i := 0; i < 200; i++ {
				for j := range ks {
					ks[j] = keys.Map(rng.Int63n(1 << 16))
				}
				switch i % 3 {
				case 0:
					h.InsertBatch(ks, out, errs)
				case 1:
					h.LookupBatch(ks, out)
				default:
					h.DeleteBatch(ks, out)
				}
				h.Insert(keys.Map(rng.Int63n(1 << 16)))
				h.Delete(keys.Map(rng.Int63n(1 << 16)))
				h.Search(keys.Map(rng.Int63n(1 << 16)))
			}
		}(w)
	}
	wg.Wait()
	if err := f.Audit(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Gauges["forest_shards"] != 4 {
		t.Fatalf("forest_shards gauge = %v", snap.Gauges["forest_shards"])
	}
	if snap.Gauges["arena_capacity_nodes"] != float64(4*core.DefaultCapacity) {
		t.Fatalf("arena_capacity_nodes should sum across shards: %v", snap.Gauges["arena_capacity_nodes"])
	}
	f.Close()
}

func TestHealthAggregates(t *testing.T) {
	f, err := New(Config{Shards: 2, Tree: core.Config{Capacity: 1 << 10, Reclaim: true}})
	if err != nil {
		t.Fatal(err)
	}
	h := f.Health()
	if h.Capacity != 1<<10 {
		t.Fatalf("Capacity = %d, want total %d", h.Capacity, 1<<10)
	}
	if !h.Reclaim {
		t.Fatal("Reclaim should be on")
	}
	f.Close()
}

func BenchmarkShardOf(b *testing.B) {
	f, err := New(Config{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		sink += f.ShardOf(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}

func Example() {
	f, _ := New(Config{Shards: 4, Lo: keys.Map(0), Hi: keys.Map(999)})
	f.Insert(keys.Map(1))
	f.Insert(keys.Map(500))
	fmt.Println(f.Size())
	// Output: 2
}
