package forest

import (
	"repro/internal/orderstat"
)

// Aggregates answers order-statistics queries over a sharded forest by
// combining per-shard summaries (internal/orderstat): shards cover
// disjoint ascending key ranges and the routing split is monotone in the
// key, so every merge is a prefix-sum over shards in shard order — a rank
// is the full population of every shard left of the key's routing split
// plus the in-shard rank, a range count/sum touches only the shards the
// range overlaps, and a select walks shard populations until the index
// falls inside one.
//
// Consistency is per shard, exactly like the merged Scan: each touched
// shard's summary satisfies the requested mode (Exact = no completed
// mutation on THAT shard uncounted; BoundedStale(m) = at most m completed
// mutations on that shard uncounted) at the instant it is acquired, but
// shards are acquired at successive instants, not one cross-shard
// snapshot. A query spanning k shards under BoundedStale(m) is therefore
// within k·m of an exact answer.
type Aggregates struct {
	f  *Forest
	ix []*orderstat.Index
}

// NewAggregates builds one order-statistics index per shard. Every shard
// must have been configured with core.Config.TrackDirty (the forest
// constructor propagates Config.Tree verbatim, so one flag covers all).
func NewAggregates(f *Forest) (*Aggregates, error) {
	a := &Aggregates{f: f, ix: make([]*orderstat.Index, f.n)}
	for i, t := range f.trees {
		ix, err := orderstat.New(t)
		if err != nil {
			for _, built := range a.ix[:i] {
				built.Close()
			}
			return nil, err
		}
		a.ix[i] = ix
	}
	return a, nil
}

// Close releases every shard index's walker handle.
func (a *Aggregates) Close() {
	for _, ix := range a.ix {
		ix.Close()
	}
}

// Index returns shard i's order-statistics index (diagnostics, tests).
func (a *Aggregates) Index(i int) *orderstat.Index { return a.ix[i] }

// Rank returns the number of keys strictly less than u across the forest:
// whole populations of the shards left of u's routing split, plus the
// in-shard rank. Monotone routing guarantees every key in a lower shard
// is smaller than u.
func (a *Aggregates) Rank(u uint64, exact bool, maxDirty uint64) int {
	s := a.f.ShardOf(u)
	rank := 0
	for i := 0; i < s; i++ {
		rank += a.ix[i].Acquire(exact, maxDirty).Len()
	}
	return rank + a.ix[s].Acquire(exact, maxDirty).Rank(u)
}

// Len returns the forest's total key count under the requested mode.
func (a *Aggregates) Len(exact bool, maxDirty uint64) int {
	n := 0
	for _, ix := range a.ix {
		n += ix.Acquire(exact, maxDirty).Len()
	}
	return n
}

// Select returns the i-th smallest key (0-based) across the forest,
// walking shard populations in order until i lands inside one; ok is
// false when i is out of range.
func (a *Aggregates) Select(i int, exact bool, maxDirty uint64) (uint64, bool) {
	if i < 0 {
		return 0, false
	}
	for _, ix := range a.ix {
		s := ix.Acquire(exact, maxDirty)
		if i < s.Len() {
			return s.Select(i)
		}
		i -= s.Len()
	}
	return 0, false
}

// Count returns the number of keys in [lo, hi] (inclusive), summing the
// shards the range overlaps — each shard's summary holds only that
// shard's keys, so per-shard counts add with no double counting.
func (a *Aggregates) Count(lo, hi uint64, exact bool, maxDirty uint64) int {
	if lo > hi {
		return 0
	}
	n := 0
	for s := a.f.ShardOf(lo); s <= a.f.ShardOf(hi); s++ {
		n += a.ix[s].Acquire(exact, maxDirty).Count(lo, hi)
	}
	return n
}

// Sum returns the sum of user (unmapped int64) keys in [lo, hi], with
// int64 wraparound on overflow.
func (a *Aggregates) Sum(lo, hi uint64, exact bool, maxDirty uint64) int64 {
	if lo > hi {
		return 0
	}
	var sum int64
	for s := a.f.ShardOf(lo); s <= a.f.ShardOf(hi); s++ {
		sum += a.ix[s].Acquire(exact, maxDirty).Sum(lo, hi)
	}
	return sum
}

// Visit yields summary keys in [lo, hi] ascending: per-shard planned
// scans concatenated in shard order (disjoint ascending shard ranges keep
// the merged stream sorted).
func (a *Aggregates) Visit(lo, hi uint64, exact bool, maxDirty uint64, yield func(u uint64) bool) {
	if lo > hi {
		return
	}
	stop := false
	for s := a.f.ShardOf(lo); s <= a.f.ShardOf(hi); s++ {
		a.ix[s].Acquire(exact, maxDirty).Visit(lo, hi, func(u uint64) bool {
			if !yield(u) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}
