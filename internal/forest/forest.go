// Package forest shards the internal uint64 key space across several
// independent core trees (internal/core), multiplying every per-tree
// resource that has become a global contention point: each shard owns its
// own arena allocator (and therefore its own spill pool), its own
// epoch-reclamation domain, and its own metrics shard population — trees
// over disjoint key ranges never interact, so no coordination is needed
// between shards (the observation that makes the Natarajan–Mittal design
// embarrassingly partitionable).
//
// # Routing
//
// Keys are routed by a range split: the configured routing range [Lo, Hi]
// is cut into n contiguous spans of equal power-of-two width, so the hot
// path computes the shard as one subtract and one shift — no division, no
// per-shard comparison loop. Keys outside [Lo, Hi] are legal and clamp to
// the first/last shard, which keeps the full key space storable even when
// the caller declares a narrower expected range for balance.
//
// Because the split is by range (not hash), ordered operations stay
// cheap: a merged Range is the concatenation of per-shard ranges in shard
// order, and a sorted batch splits into per-shard runs with a single
// pass.
//
// # What is shared, what is not
//
// Nothing is shared between shards. Arena indices are arena-local 32-bit
// values, so a slot can never migrate between shards — a shard that
// exhausts its capacity returns ErrCapacity even if a sibling has room
// (see DESIGN.md on the spill policy). A metrics registry MAY be shared
// across shards (Config.Tree.Metrics): per-handle shards are
// registry-local and the per-tree snapshot hooks accumulate, so one
// registry yields forest-wide totals.
package forest

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/metrics"
)

// MaxShards bounds the shard count (sanity bound, not a scaling limit).
const MaxShards = 256

// Config tunes a Forest.
type Config struct {
	// Shards is the number of independent trees. Values are rounded up to
	// a power of two (routing is a shift); 0 or 1 is rejected — use a
	// plain core.Tree when not sharding.
	Shards int
	// Lo and Hi bound the expected key range (internal mapped key space,
	// inclusive). The range is split evenly across shards, so a caller
	// that knows its key distribution should pass its real bounds; keys
	// outside the range still work but clamp to the edge shards. Zero
	// values (Lo == 0 && Hi == 0) select the full user key space.
	Lo, Hi uint64
	// Tree configures every shard. Capacity is the TOTAL node bound and
	// is split evenly (ceiling) across shards; zero keeps the core
	// default per shard. A non-nil Metrics registry is shared by all
	// shards.
	Tree core.Config
}

// Forest is a sharded set of core trees over disjoint key ranges. All
// methods are safe for concurrent use; hot paths should use a per-goroutine
// Handle.
type Forest struct {
	trees []*core.Tree
	n     int
	lo    uint64 // routing range start (mapped key space)
	hi    uint64 // routing range end, inclusive
	shift uint   // per-shard span is 1<<shift mapped keys
	met   *metrics.Registry
}

// New builds a forest of cfg.Shards independent trees.
func New(cfg Config) (*Forest, error) {
	if cfg.Shards < 2 {
		return nil, fmt.Errorf("forest: need at least 2 shards, got %d", cfg.Shards)
	}
	if cfg.Shards > MaxShards {
		return nil, fmt.Errorf("forest: %d shards exceeds limit %d", cfg.Shards, MaxShards)
	}
	n := 1 << uint(bits.Len(uint(cfg.Shards-1))) // round up to power of two
	lo, hi := cfg.Lo, cfg.Hi
	if lo == 0 && hi == 0 {
		hi = keys.Map(keys.MaxUser)
	}
	if lo > hi {
		return nil, fmt.Errorf("forest: empty routing range [%d, %d]", lo, hi)
	}
	span := hi - lo + 1 // cannot overflow: hi < MaxUint64 (sentinels are reserved)
	per := span / uint64(n)
	if span%uint64(n) != 0 {
		per++
	}
	shift := uint(bits.Len64(per - 1)) // smallest s with 1<<s >= per
	f := &Forest{n: n, lo: lo, hi: hi, shift: shift, met: cfg.Tree.Metrics}
	tc := cfg.Tree
	if tc.Capacity > 0 {
		tc.Capacity = (tc.Capacity + n - 1) / n
	}
	f.trees = make([]*core.Tree, n)
	for i := range f.trees {
		f.trees[i] = core.New(tc)
	}
	if f.met != nil {
		shards := n
		f.met.AddHook(func(s *metrics.Snapshot) {
			s.Gauges["forest_shards"] += float64(shards)
		})
	}
	return f, nil
}

// Shards returns the effective shard count (input rounded up to a power of
// two).
func (f *Forest) Shards() int { return f.n }

// ShardOf routes a mapped key to its shard: one subtract, one shift, and
// two clamping branches for keys outside the configured routing range.
func (f *Forest) ShardOf(u uint64) int {
	if u <= f.lo {
		return 0
	}
	s := (u - f.lo) >> f.shift
	if s >= uint64(f.n) {
		return f.n - 1
	}
	return int(s)
}

// satShl returns x << s saturating at MaxUint64 instead of wrapping.
func satShl(x uint64, s uint) uint64 {
	if s >= 64 || x > (^uint64(0))>>s {
		return ^uint64(0)
	}
	return x << s
}

// Bounds returns the inclusive mapped-key range routed to shard i. The
// first shard's range starts at 0 and the last extends to the top of the
// user key space, mirroring ShardOf's clamping.
func (f *Forest) Bounds(i int) (lo, hi uint64) {
	if i < 0 || i >= f.n {
		panic(fmt.Sprintf("forest: shard %d out of range [0,%d)", i, f.n))
	}
	if i == 0 {
		lo = 0
	} else {
		lo = satAdd(f.lo, satShl(uint64(i), f.shift))
	}
	if i == f.n-1 {
		hi = keys.Map(keys.MaxUser)
	} else {
		hi = satAdd(f.lo, satShl(uint64(i+1), f.shift)) - 1
	}
	return lo, hi
}

func satAdd(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return ^uint64(0)
}

// Tree returns shard i's underlying core tree (checkpoint/recovery paths
// address shards directly).
func (f *Forest) Tree(i int) *core.Tree { return f.trees[i] }

// Metrics returns the shared registry, or nil.
func (f *Forest) Metrics() *metrics.Registry { return f.met }

// --- Tree-level convenience operations (pooled handles inside each core
// tree). Hot paths should use a Handle instead.

// Search reports whether key is present.
func (f *Forest) Search(key uint64) bool { return f.trees[f.ShardOf(key)].Search(key) }

// Insert adds key; it reports whether the set changed. It panics on arena
// exhaustion of the key's shard; use TryInsert for the fail-soft path.
func (f *Forest) Insert(key uint64) bool { return f.trees[f.ShardOf(key)].Insert(key) }

// TryInsert adds key, reporting ErrCapacity instead of panicking when the
// key's shard is exhausted (sibling shards having room does not help: arena
// indices are arena-local and cannot migrate).
func (f *Forest) TryInsert(key uint64) (bool, error) { return f.trees[f.ShardOf(key)].TryInsert(key) }

// Delete removes key; it reports whether the set changed.
func (f *Forest) Delete(key uint64) bool { return f.trees[f.ShardOf(key)].Delete(key) }

// Size sums the shard sizes (quiescent for an exact count).
func (f *Forest) Size() int {
	n := 0
	for _, t := range f.trees {
		n += t.Size()
	}
	return n
}

// Keys visits every key in ascending order: shards cover disjoint
// ascending ranges, so concatenation in shard order is globally sorted.
func (f *Forest) Keys(yield func(key uint64) bool) {
	stop := false
	for _, t := range f.trees {
		t.Keys(func(u uint64) bool {
			if !yield(u) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Range visits keys in [lo, hi] ascending, pinning one epoch per shard
// (each shard's sub-range walk holds that shard's pin, exactly like a
// single tree's Range). Weakly consistent across shards: the merged stream
// is sorted, but shards are pinned at successive instants, not one global
// snapshot.
func (f *Forest) Range(lo, hi uint64, yield func(key uint64) bool) {
	if lo > hi {
		return
	}
	stop := false
	for s := f.ShardOf(lo); s <= f.ShardOf(hi); s++ {
		f.trees[s].Range(lo, hi, func(u uint64) bool {
			if !yield(u) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Audit validates every shard's structural invariants and that each key is
// routed to the shard that holds it (quiescent).
func (f *Forest) Audit() error {
	for i, t := range f.trees {
		if err := t.Audit(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		var bad error
		t.Keys(func(u uint64) bool {
			if got := f.ShardOf(u); got != i {
				bad = fmt.Errorf("shard %d holds key %d which routes to shard %d", i, u, got)
				return false
			}
			return true
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}

// Health aggregates per-shard health: capacity and counters sum, epoch is
// the maximum across shards, stall gauges sum (any stalled slot anywhere
// starves that shard's reclamation).
func (f *Forest) Health() core.Health {
	var h core.Health
	for _, t := range f.trees {
		th := t.Health()
		h.Capacity += th.Capacity
		h.Allocated += th.Allocated
		h.Recycled += th.Recycled
		h.Reclaim = th.Reclaim
		if th.Epoch > h.Epoch {
			h.Epoch = th.Epoch
		}
		h.Slots += th.Slots
		h.Pinned += th.Pinned
		h.Stalled += th.Stalled
		if th.MaxEpochLag > h.MaxEpochLag {
			h.MaxEpochLag = th.MaxEpochLag
		}
		h.RetiredBacklog += th.RetiredBacklog
	}
	return h
}

// Close retires every shard's reclamation domain (quiescent; idempotent).
func (f *Forest) Close() {
	for _, t := range f.trees {
		t.Close()
	}
}

// --- Forest-level batches. These split at shard boundaries and run the
// per-shard sub-batches through each tree's pooled handles; the Handle
// batch paths below reuse buffers and run shards concurrently.

// LookupBatch reports, in out[i], whether ks[i] is present.
func (f *Forest) LookupBatch(ks []uint64, out []bool) {
	var h Handle
	h.f = f
	h.LookupBatch(ks, out)
}

// InsertBatch inserts every key with TryInsert semantics. A shard hitting
// ErrCapacity fails only its own keys' slots; sibling shards' operations
// proceed untouched.
func (f *Forest) InsertBatch(ks []uint64, out []bool, errs []error) {
	var h Handle
	h.f = f
	h.InsertBatch(ks, out, errs)
}

// DeleteBatch deletes every key.
func (f *Forest) DeleteBatch(ks []uint64, out []bool) {
	var h Handle
	h.f = f
	h.DeleteBatch(ks, out)
}

// Handle is a single goroutine's accessor: one lazily created core handle
// per shard plus the scatter/gather scratch the batch paths reuse, so the
// steady-state batch path does not allocate. A Handle must not be shared
// between goroutines.
type Handle struct {
	f  *Forest
	hs []*core.Handle // lazily created per-shard handles

	// Batch scratch: per-shard key runs and their original positions, and
	// the per-shard result buffers scattered back after the sub-batches.
	sks  [][]uint64
	sps  [][]int32
	soks [][]bool
	serr [][]error
}

// NewHandle returns a per-goroutine accessor. Shard handles are created on
// first touch, so a handle that only ever works one key range registers
// epoch slots only on the shards it uses.
func (f *Forest) NewHandle() *Handle {
	return &Handle{f: f, hs: make([]*core.Handle, f.n)}
}

func (h *Handle) handle(s int) *core.Handle {
	if h.hs == nil {
		h.hs = make([]*core.Handle, h.f.n)
	}
	if h.hs[s] == nil {
		h.hs[s] = h.f.trees[s].NewHandle()
	}
	return h.hs[s]
}

// Search reports whether key is present.
func (h *Handle) Search(key uint64) bool { return h.handle(h.f.ShardOf(key)).Search(key) }

// Insert adds key; it reports whether the set changed.
func (h *Handle) Insert(key uint64) bool { return h.handle(h.f.ShardOf(key)).Insert(key) }

// TryInsert is Insert with ErrCapacity instead of a panic on shard
// exhaustion.
func (h *Handle) TryInsert(key uint64) (bool, error) {
	return h.handle(h.f.ShardOf(key)).TryInsert(key)
}

// Delete removes key; it reports whether the set changed.
func (h *Handle) Delete(key uint64) bool { return h.handle(h.f.ShardOf(key)).Delete(key) }

// Range visits keys in [lo, hi] ascending under one epoch pin per shard.
func (h *Handle) Range(lo, hi uint64, yield func(key uint64) bool) {
	if lo > hi {
		return
	}
	stop := false
	for s := h.f.ShardOf(lo); s <= h.f.ShardOf(hi); s++ {
		h.handle(s).Range(lo, hi, func(u uint64) bool {
			if !yield(u) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Stats sums the per-shard handle statistics.
func (h *Handle) Stats() core.Stats {
	var s core.Stats
	for _, ch := range h.hs {
		if ch != nil {
			s.Add(ch.Stats)
		}
	}
	return s
}

// Close releases every shard handle's resources (epoch slots, reserved
// arena indices, metrics shards).
func (h *Handle) Close() {
	for i, ch := range h.hs {
		if ch != nil {
			ch.Close()
			h.hs[i] = nil
		}
	}
}

// concurrencyFloor is the minimum total batch size at which a multi-shard
// batch fans out to one goroutine per touched shard. Below it the goroutine
// handoff costs more than the overlap buys.
const concurrencyFloor = 32

// split routes ks into per-shard runs, recording each key's original
// position, and sizes the per-shard result buffers. It returns the touched
// shard indices. The input does not need to be sorted (a single routing
// pass beats a sort + binary search at every batch size, and the core
// sorts its sub-batch internally anyway).
func (h *Handle) split(ks []uint64) []int {
	n := h.f.n
	if h.sks == nil {
		h.sks = make([][]uint64, n)
		h.sps = make([][]int32, n)
		h.soks = make([][]bool, n)
		h.serr = make([][]error, n)
	}
	for s := range h.sks {
		h.sks[s] = h.sks[s][:0]
		h.sps[s] = h.sps[s][:0]
	}
	for i, u := range ks {
		s := h.f.ShardOf(u)
		h.sks[s] = append(h.sks[s], u)
		h.sps[s] = append(h.sps[s], int32(i))
	}
	touched := make([]int, 0, n)
	for s := 0; s < n; s++ {
		m := len(h.sks[s])
		if m == 0 {
			continue
		}
		touched = append(touched, s)
		if cap(h.soks[s]) < m {
			h.soks[s] = make([]bool, m)
			h.serr[s] = make([]error, m)
		}
		if h.hs != nil {
			// Materialize the shard handle before any fan-out goroutine
			// runs, so the concurrent sub-batches never mutate h.hs.
			h.handle(s)
		}
	}
	return touched
}

// runShards executes fn once per touched shard — concurrently when the
// batch is large enough to amortize the fan-out. Each invocation owns its
// shard's core handle and buffers exclusively, so no locking is needed;
// shard failures are per-op statuses inside the buffers and can never
// affect a sibling shard's run.
func (h *Handle) runShards(touched []int, total int, fn func(s int)) {
	if len(touched) == 1 || total < concurrencyFloor {
		for _, s := range touched {
			fn(s)
		}
		return
	}
	var wg sync.WaitGroup
	for _, s := range touched[1:] {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	fn(touched[0]) // run the first shard on the caller's goroutine
	wg.Wait()
}

// LookupBatch reports, in out[i], whether ks[i] is present. Same contract
// as core.Handle.LookupBatch, with the batch split at shard boundaries and
// touched shards seeking their wavefronts concurrently.
func (h *Handle) LookupBatch(ks []uint64, out []bool) {
	if len(out) != len(ks) {
		panic("forest: batch result length mismatch")
	}
	touched := h.split(ks)
	h.runShards(touched, len(ks), func(s int) {
		if h.hs == nil || h.hs[s] == nil {
			h.f.trees[s].LookupBatch(h.sks[s], h.soks[s][:len(h.sks[s])])
		} else {
			h.hs[s].LookupBatch(h.sks[s], h.soks[s][:len(h.sks[s])])
		}
	})
	for _, s := range touched {
		oks := h.soks[s]
		for j, p := range h.sps[s] {
			out[p] = oks[j]
		}
	}
}

// InsertBatch inserts every key with TryInsert semantics; out and errs are
// per-op. A shard exhausting its arena (ErrCapacity) fails only that
// shard's slots — the other shards' sub-batches run to completion
// regardless, by construction (they share no state).
func (h *Handle) InsertBatch(ks []uint64, out []bool, errs []error) {
	if len(out) != len(ks) || len(errs) != len(ks) {
		panic("forest: batch result length mismatch")
	}
	touched := h.split(ks)
	h.runShards(touched, len(ks), func(s int) {
		m := len(h.sks[s])
		if h.hs == nil || h.hs[s] == nil {
			h.f.trees[s].InsertBatch(h.sks[s], h.soks[s][:m], h.serr[s][:m])
		} else {
			h.hs[s].InsertBatch(h.sks[s], h.soks[s][:m], h.serr[s][:m])
		}
	})
	for _, s := range touched {
		oks, es := h.soks[s], h.serr[s]
		for j, p := range h.sps[s] {
			out[p] = oks[j]
			errs[p] = es[j]
		}
	}
}

// DeleteBatch deletes every key; out[i] reports whether the set changed.
func (h *Handle) DeleteBatch(ks []uint64, out []bool) {
	if len(out) != len(ks) {
		panic("forest: batch result length mismatch")
	}
	touched := h.split(ks)
	h.runShards(touched, len(ks), func(s int) {
		if h.hs == nil || h.hs[s] == nil {
			h.f.trees[s].DeleteBatch(h.sks[s], h.soks[s][:len(h.sks[s])])
		} else {
			h.hs[s].DeleteBatch(h.sks[s], h.soks[s][:len(h.sks[s])])
		}
	})
	for _, s := range touched {
		oks := h.soks[s]
		for j, p := range h.sps[s] {
			out[p] = oks[j]
		}
	}
}
