package forest

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/keys"
)

func newAggForest(t *testing.T, shards int) (*Forest, *Aggregates) {
	t.Helper()
	cfg := Config{Shards: shards, Lo: keys.Map(0), Hi: keys.Map(1 << 20)}
	cfg.Tree.Capacity = 1 << 20
	cfg.Tree.Reclaim = true
	cfg.Tree.TrackDirty = true
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, err := NewAggregates(f)
	if err != nil {
		t.Fatalf("NewAggregates: %v", err)
	}
	t.Cleanup(func() { a.Close(); f.Close() })
	return f, a
}

// TestForestAggregatesMatchBruteForce cross-checks the shard merges —
// rank as prefix-of-whole-shards + in-shard rank, boundary-spanning
// counts and sums, forest-wide select — against a sorted reference.
func TestForestAggregatesMatchBruteForce(t *testing.T) {
	f, a := newAggForest(t, 4)
	rng := rand.New(rand.NewSource(11))
	ref := map[int64]bool{}
	for i := 0; i < 4000; i++ {
		k := int64(rng.Intn(1 << 20))
		if rng.Intn(4) == 0 {
			f.Delete(keys.Map(k))
			delete(ref, k)
		} else {
			f.Insert(keys.Map(k))
			ref[k] = true
		}
	}
	sorted := make([]int64, 0, len(ref))
	for k := range ref {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	if got := a.Len(true, 0); got != len(sorted) {
		t.Fatalf("Len = %d, want %d", got, len(sorted))
	}
	for trial := 0; trial < 50; trial++ {
		k := int64(rng.Intn(1 << 20))
		wantRank := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= k })
		if got := a.Rank(keys.Map(k), true, 0); got != wantRank {
			t.Fatalf("Rank(%d) = %d, want %d (key routes to shard %d)",
				k, got, wantRank, f.ShardOf(keys.Map(k)))
		}

		// Ranges sized to span shard boundaries more often than not.
		lo := int64(rng.Intn(1 << 20))
		hi := lo + int64(rng.Intn(1<<19))
		wantCount, wantSum := 0, int64(0)
		for _, v := range sorted {
			if v >= lo && v <= hi {
				wantCount++
				wantSum += v
			}
		}
		if got := a.Count(keys.Map(lo), keys.Map(hi), true, 0); got != wantCount {
			t.Fatalf("Count(%d,%d) = %d, want %d (shards %d..%d)",
				lo, hi, got, wantCount, f.ShardOf(keys.Map(lo)), f.ShardOf(keys.Map(hi)))
		}
		if got := a.Sum(keys.Map(lo), keys.Map(hi), true, 0); got != wantSum {
			t.Fatalf("Sum(%d,%d) = %d, want %d", lo, hi, got, wantSum)
		}

		i := rng.Intn(len(sorted))
		u, ok := a.Select(i, true, 0)
		if !ok || keys.Unmap(u) != sorted[i] {
			t.Fatalf("Select(%d) = (%d,%v), want %d", i, keys.Unmap(u), ok, sorted[i])
		}
	}
	if _, ok := a.Select(len(sorted), true, 0); ok {
		t.Fatal("Select(len) reported ok")
	}

	// The planned visit yields the same sorted stream as a merged Range.
	var viaVisit, viaRange []uint64
	a.Visit(keys.Map(0), keys.Map(1<<20), true, 0, func(u uint64) bool {
		viaVisit = append(viaVisit, u)
		return true
	})
	f.Range(keys.Map(0), keys.Map(1<<20), func(u uint64) bool {
		viaRange = append(viaRange, u)
		return true
	})
	if len(viaVisit) != len(viaRange) {
		t.Fatalf("Visit yielded %d keys, Range %d", len(viaVisit), len(viaRange))
	}
	for i := range viaVisit {
		if viaVisit[i] != viaRange[i] {
			t.Fatalf("Visit[%d] = %d, Range[%d] = %d", i, viaVisit[i], i, viaRange[i])
		}
	}
}

// TestForestAggregatesRequireTrackDirty: one untracked shard fails the
// whole construction (and leaks no walker handles from the built prefix).
func TestForestAggregatesRequireTrackDirty(t *testing.T) {
	cfg := Config{Shards: 2}
	cfg.Tree.Capacity = 1 << 12
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	if _, err := NewAggregates(f); err == nil {
		t.Fatal("NewAggregates succeeded without TrackDirty")
	}
}
