package orderstat

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/keys"
)

func newTracked(t *testing.T) (*core.Tree, *Index) {
	t.Helper()
	tree := core.New(core.Config{Capacity: 1 << 20, Reclaim: true, TrackDirty: true})
	ix, err := New(tree)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { ix.Close(); tree.Close() })
	return tree, ix
}

func TestNewRequiresTrackDirty(t *testing.T) {
	tree := core.New(core.Config{Capacity: 1 << 10})
	defer tree.Close()
	if _, err := New(tree); err != ErrNotTracked {
		t.Fatalf("New on untracked tree: err = %v, want ErrNotTracked", err)
	}
}

// TestSummaryAgainstBruteForce cross-checks every query shape against a
// sorted reference slice over random insert/delete churn.
func TestSummaryAgainstBruteForce(t *testing.T) {
	tree, ix := newTracked(t)
	rng := rand.New(rand.NewSource(7))
	ref := map[int64]bool{}
	for step := 0; step < 50; step++ {
		for i := 0; i < 200; i++ {
			k := int64(rng.Intn(5000))
			if rng.Intn(3) == 0 {
				if tree.Delete(keys.Map(k)) != ref[k] {
					t.Fatalf("Delete(%d) disagreed with reference", k)
				}
				delete(ref, k)
			} else {
				if tree.Insert(keys.Map(k)) != !ref[k] {
					t.Fatalf("Insert(%d) disagreed with reference", k)
				}
				ref[k] = true
			}
		}
		sorted := make([]int64, 0, len(ref))
		for k := range ref {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		s := ix.Acquire(true, 0)
		if s.Len() != len(sorted) {
			t.Fatalf("step %d: Len = %d, want %d", step, s.Len(), len(sorted))
		}
		for trial := 0; trial < 20; trial++ {
			k := int64(rng.Intn(5200))
			wantRank := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= k })
			if got := s.Rank(keys.Map(k)); got != wantRank {
				t.Fatalf("step %d: Rank(%d) = %d, want %d", step, k, got, wantRank)
			}

			lo := int64(rng.Intn(5200)) - 100
			hi := lo + int64(rng.Intn(2000))
			wantCount, wantSum := 0, int64(0)
			for _, v := range sorted {
				if v >= lo && v <= hi {
					wantCount++
					wantSum += v
				}
			}
			if got := s.Count(keys.Map(lo), keys.Map(hi)); got != wantCount {
				t.Fatalf("step %d: Count(%d,%d) = %d, want %d", step, lo, hi, got, wantCount)
			}
			if got := s.Sum(keys.Map(lo), keys.Map(hi)); got != wantSum {
				t.Fatalf("step %d: Sum(%d,%d) = %d, want %d", step, lo, hi, got, wantSum)
			}

			if len(sorted) > 0 {
				i := rng.Intn(len(sorted))
				u, ok := s.Select(i)
				if !ok || keys.Unmap(u) != sorted[i] {
					t.Fatalf("step %d: Select(%d) = (%d,%v), want %d", step, i, keys.Unmap(u), ok, sorted[i])
				}
			}
			if _, ok := s.Select(len(sorted)); ok {
				t.Fatalf("step %d: Select(len) reported ok", step)
			}

			got := []int64{}
			s.Visit(keys.Map(lo), keys.Map(hi), func(u uint64) bool {
				got = append(got, keys.Unmap(u))
				return true
			})
			if len(got) != wantCount {
				t.Fatalf("step %d: Visit yielded %d keys, want %d", step, len(got), wantCount)
			}
		}
	}
}

// TestExactReusesCleanSummary pins the caching contract: with no
// mutations between queries, one wave serves all of them; any mutation
// forces exactly one more wave.
func TestExactReusesCleanSummary(t *testing.T) {
	tree, ix := newTracked(t)
	for i := 0; i < 100; i++ {
		tree.Insert(keys.Map(int64(i)))
	}
	s1 := ix.Acquire(true, 0)
	w := ix.Waves()
	for i := 0; i < 10; i++ {
		if got := ix.Acquire(true, 0); got != s1 {
			t.Fatalf("quiescent exact query %d rebuilt the summary", i)
		}
	}
	if ix.Waves() != w {
		t.Fatalf("quiescent exact queries ran %d extra waves", ix.Waves()-w)
	}
	tree.Delete(keys.Map(int64(3)))
	s2 := ix.Acquire(true, 0)
	if s2 == s1 || s2.Len() != 99 {
		t.Fatalf("exact query after delete served the stale summary (len %d)", s2.Len())
	}
}

// TestBoundedStaleBound asserts the advertised error bound: a summary
// served under BoundedStale(m) lags the live tree by at most m completed
// mutations, so any count differs from exact by at most m.
func TestBoundedStaleBound(t *testing.T) {
	tree, ix := newTracked(t)
	const n = 1000
	for i := 0; i < n; i++ {
		tree.Insert(keys.Map(int64(i)))
	}
	exact := ix.Acquire(true, 0)
	if exact.Len() != n {
		t.Fatalf("exact Len = %d, want %d", exact.Len(), n)
	}
	const budget = 64
	// Mutate fewer than budget keys: the stale summary must still be served
	// (no wave), and its counts sit within budget of the live truth.
	w := ix.Waves()
	for i := 0; i < budget-1; i++ {
		tree.Insert(keys.Map(int64(n + i)))
	}
	stale := ix.Acquire(false, budget)
	if ix.Waves() != w {
		t.Fatalf("BoundedStale(%d) refreshed with only %d mutations pending", budget, budget-1)
	}
	liveCount := n + budget - 1
	if diff := liveCount - stale.Len(); diff < 0 || diff > budget {
		t.Fatalf("stale count %d vs live %d: error %d exceeds budget %d", stale.Len(), liveCount, diff, budget)
	}
	// Two more mutations push the lag to budget+1: the next acquire must
	// refresh (lag <= budget is within contract, budget+1 is not).
	tree.Insert(keys.Map(int64(n + budget - 1)))
	tree.Insert(keys.Map(int64(n + budget)))
	fresh := ix.Acquire(false, budget)
	if ix.Waves() == w {
		t.Fatalf("BoundedStale(%d) served a summary %d mutations stale", budget, budget+1)
	}
	if fresh.Len() != n+budget+1 {
		t.Fatalf("refreshed Len = %d, want %d", fresh.Len(), n+budget+1)
	}
}

// TestExactUnderConcurrentChurn runs exact queries against concurrent
// insert-only writers and checks the monotone window property: an exact
// count over the insert region can never fall below the number of inserts
// acked before the query began, nor exceed the number issued by its end.
func TestExactUnderConcurrentChurn(t *testing.T) {
	tree, ix := newTracked(t)
	const total = 20000
	var acked sync.Map
	var wg sync.WaitGroup
	done := make(chan struct{})
	var ackedCount, issued int64
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		h := tree.NewHandle()
		defer h.Close()
		for i := int64(0); i < total; i++ {
			mu.Lock()
			issued++
			mu.Unlock()
			h.Insert(keys.Map(i))
			mu.Lock()
			ackedCount++
			mu.Unlock()
			acked.Store(i, true)
		}
	}()
	for {
		select {
		case <-done:
			wg.Wait()
			s := ix.Acquire(true, 0)
			if got := s.Count(keys.Map(0), keys.Map(total-1)); got != total {
				t.Fatalf("quiescent exact count = %d, want %d", got, total)
			}
			return
		default:
		}
		mu.Lock()
		lowerBound := ackedCount
		mu.Unlock()
		s := ix.Acquire(true, 0)
		got := int64(s.Count(keys.Map(0), keys.Map(total-1)))
		mu.Lock()
		upperBound := issued
		mu.Unlock()
		if got < lowerBound || got > upperBound {
			t.Fatalf("exact count %d outside monotone window [%d, %d]", got, lowerBound, upperBound)
		}
	}
}
