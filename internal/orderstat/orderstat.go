// Package orderstat is the lazily-refreshed order-statistics layer over
// the lock-free external BST (internal/core): rank, select, count-in-range
// and sum-in-range in O(log n), without adding a single atomic instruction
// to the paper's insert and delete hot paths.
//
// # Why writers never CAS summary words
//
// The classic augmented-tree design stores a subtree size in every
// internal node and has writers update the sizes on the path they touched.
// In the NM-BST that is a non-starter: an insert is one CAS and a delete
// is three atomics precisely because nothing above the operation's edge is
// written, and a delete's splice CAS can excise a whole chain of tagged
// nodes whose ancestors' summaries would all need fixing — by whichever of
// several racing helpers happens to win. Making writers maintain exact
// summaries would reintroduce the multi-word coordination the paper's
// design eliminates.
//
// Instead, writers only bump a per-handle sharded dirty counter
// (core.Config.TrackDirty — the internal/metrics single-writer pattern:
// one padded cache line per handle, plain store over load, no RMW), and a
// refresher reconciles summaries in waves:
//
//	d0 := dirty.Total()            // before the walk
//	keys := epoch-pinned in-order walk (core.Handle.Range)
//	summaries := bottom-up build over keys
//	publish Summary{..., CleanDirty: d0}
//
// A wave runs under the same epoch pin as any Scan, so it sees every key
// whose insert completed before the pin and is indifferent to racers —
// the scan's usual weak-consistency contract. Reading d0 *before* the
// walk makes CleanDirty a sound freshness token: if dirty.Total() still
// equals CleanDirty at query time, no mutation has completed since before
// the wave began (bumps happen before mutating calls return), so the
// summary covers every completed mutation and answering from it is
// equivalent to running a fresh epoch-pinned scan at the query's
// linearization point.
//
// # The summary shape
//
// The wave's product is the in-order key sequence plus its prefix-sum
// array — which IS a balanced summary tree, stored implicitly: segment
// [a,b) of the sorted keys is a node whose subtree summaries are all O(1)
// (count = b-a, sum = Prefix[b]-Prefix[a], min = Keys[a], max =
// Keys[b-1]), and whose children are the half-open halves around the
// midpoint. Queries descend this tree, pruning subtrees wholly outside
// the requested range and consuming whole-subtree summaries for subtrees
// wholly inside, so every query is O(log n) — even when the live tree is
// a degenerate spine (sequential inserts build one: the external BST does
// not rebalance). Building it is one sorted append per key: the bottom-up
// reconciliation is the prefix-sum pass, there are no per-node words for
// writers to race on, and publishing is one atomic pointer store, so
// readers are lock-free and never observe a half-built summary.
//
// # Consistency menu
//
//   - Exact: serve the cached summary iff CleanDirty == dirty.Total(),
//     else run (or join) a refresh wave and answer from its result. Cost:
//     O(log n) when clean, one O(n) wave amortized over all concurrent
//     exact queries when not.
//   - BoundedStale(m): serve the cached summary iff at most m mutations
//     have completed since it was built. Each completed mutation moves
//     any count, rank or selection index by at most 1, so every answer is
//     within m (plus in-flight racers) of an exact one.
package orderstat

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/keys"
)

// ErrNotTracked reports an Index built over a tree without
// core.Config.TrackDirty: with no dirty counter there is no freshness
// token, and every staleness bound would be a lie.
var ErrNotTracked = errors.New("orderstat: tree was built without TrackDirty")

// Summary is one published wave: the tree's in-order key sequence at the
// wave's epoch pin, its user-key prefix sums, and the dirty total read
// before the walk. Immutable once published; readers share it lock-free.
type Summary struct {
	// Keys is the mapped (internal uint64) key sequence, ascending.
	Keys []uint64
	// Prefix[i] is the sum of the first i user keys (int64 wraparound
	// semantics on overflow, like any int64 sum). len(Prefix) == len(Keys)+1.
	Prefix []int64
	// CleanDirty is the dirty counter total read before the wave's walk
	// began. The summary is exact while the counter still reads this.
	CleanDirty uint64
	// Wave numbers the refresh that built this summary (diagnostics).
	Wave uint64
}

// Index is the order-statistics accessor for one core tree. All methods
// are safe for concurrent use; queries on a clean summary are lock-free.
type Index struct {
	t     *core.Tree
	dirty *core.DirtyCounter

	// mu serializes refresh waves and guards h, the wave walker handle.
	mu sync.Mutex
	h  *core.Handle

	cur    atomic.Pointer[Summary]
	waves  atomic.Uint64 // refresh waves run (diagnostics)
	served atomic.Uint64 // queries answered from a cached summary
	closed bool
}

// New builds an Index over t. The tree must have been created with
// Config.TrackDirty; the index registers one long-lived handle for its
// refresh walks.
func New(t *core.Tree) (*Index, error) {
	if t.Dirty() == nil {
		return nil, ErrNotTracked
	}
	ix := &Index{t: t, dirty: t.Dirty(), h: t.NewHandle()}
	ix.cur.Store(&Summary{Prefix: []int64{0}}) // empty tree, never-written token
	return ix, nil
}

// Close releases the index's walker handle. The index must be quiescent.
func (ix *Index) Close() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.closed {
		ix.h.Close()
		ix.closed = true
	}
}

// Waves returns how many refresh waves have run (diagnostics).
func (ix *Index) Waves() uint64 { return ix.waves.Load() }

// Served returns how many queries were answered from a cached summary
// without triggering a wave (diagnostics; the cache-hit numerator).
func (ix *Index) Served() uint64 { return ix.served.Load() }

// Acquire returns a summary satisfying the requested consistency: exact
// (no completed mutation uncounted) or bounded-stale (at most maxDirty
// completed mutations uncounted). A summary that fails the test triggers
// a refresh wave; concurrent acquirers join the same wave via mu.
func (ix *Index) Acquire(exact bool, maxDirty uint64) *Summary {
	s := ix.cur.Load()
	lag := ix.dirty.Total() - s.CleanDirty
	if s.CleanDirty == 0 && len(s.Keys) == 0 && s.Wave == 0 {
		// The constructor's placeholder: only trust it when the tree has
		// truly never been written (lag covers that), never as "clean".
		if lag == 0 && !exact {
			ix.served.Add(1)
			return s
		}
	} else if lag == 0 || (!exact && lag <= maxDirty) {
		ix.served.Add(1)
		return s
	}
	return ix.Refresh()
}

// Refresh runs one wave: read the dirty total, walk the tree in order
// under an epoch pin, rebuild the summary, publish it. Returns the
// published summary (which may be a concurrent wave's result that is
// already clean enough). Allocates O(n); superseded summaries are garbage
// collected once their readers finish — readers never block a wave.
func (ix *Index) Refresh() *Summary {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	d0 := ix.dirty.Total()
	if s := ix.cur.Load(); s.CleanDirty == d0 && s.Wave > 0 {
		// A wave we queued behind already covers every mutation completed
		// before our dirty read; rebuilding would produce the same answer.
		return s
	}
	n := len(ix.cur.Load().Keys)
	ks := make([]uint64, 0, n+n/8+16)
	ix.h.Range(0, keys.Map(keys.MaxUser), func(u uint64) bool {
		ks = append(ks, u)
		return true
	})
	prefix := make([]int64, len(ks)+1)
	for i, u := range ks {
		prefix[i+1] = prefix[i] + keys.Unmap(u)
	}
	s := &Summary{Keys: ks, Prefix: prefix, CleanDirty: d0, Wave: ix.waves.Add(1)}
	ix.cur.Store(s)
	return s
}

// --- Queries. All are pruning descents over the implicit balanced
// summary tree: segment [a,b) prunes when wholly outside [lo,hi] (its
// min/max summaries decide in O(1)) and contributes its whole-subtree
// summary when wholly inside, so only the two boundary paths split.

// Len returns the number of keys the summary covers.
func (s *Summary) Len() int { return len(s.Keys) }

// Rank returns the number of keys strictly less than u — a descent that
// prunes every subtree wholly below u (count taken from its summary) and
// wholly at-or-above u (contributes nothing).
func (s *Summary) Rank(u uint64) int {
	a, b := 0, len(s.Keys)
	rank := 0
	for a < b {
		m := int(uint(a+b) >> 1)
		if s.Keys[m] < u {
			rank += m + 1 - a // left half + midpoint: wholly below u
			a = m + 1
		} else {
			b = m
		}
	}
	return rank
}

// Select returns the i-th smallest key (0-based); ok is false when i is
// out of range. O(1): the implicit tree's in-order sequence is the array.
func (s *Summary) Select(i int) (uint64, bool) {
	if i < 0 || i >= len(s.Keys) {
		return 0, false
	}
	return s.Keys[i], true
}

// Count returns the number of keys in [lo, hi] (inclusive, matching the
// tree's Range): the rank descent run at both boundaries.
func (s *Summary) Count(lo, hi uint64) int {
	if lo > hi {
		return 0
	}
	c := s.Rank(hi+1) - s.Rank(lo)
	if hi == ^uint64(0) { // Rank(hi+1) would wrap; nothing exceeds hi
		c = len(s.Keys) - s.Rank(lo)
	}
	return c
}

// Sum returns the sum of the user (unmapped int64) keys in [lo, hi],
// with int64 wraparound on overflow. The boundary descents reduce to
// prefix-sum lookups: a wholly-inside subtree contributes
// Prefix[b]-Prefix[a] in O(1).
func (s *Summary) Sum(lo, hi uint64) int64 {
	if lo > hi {
		return 0
	}
	a := s.Rank(lo)
	b := len(s.Keys)
	if hi != ^uint64(0) {
		b = s.Rank(hi + 1)
	}
	return s.Prefix[b] - s.Prefix[a]
}

// Visit yields the summary's keys in [lo, hi] ascending — the planner
// behind the indexed scan: the descent seeks directly to the range's
// first key, skipping every subtree wholly outside the range, where a
// plain tree scan would walk and discard them.
func (s *Summary) Visit(lo, hi uint64, yield func(u uint64) bool) {
	if lo > hi {
		return
	}
	for i := s.Rank(lo); i < len(s.Keys) && s.Keys[i] <= hi; i++ {
		if !yield(s.Keys[i]) {
			return
		}
	}
}
