// Package logx is the shared logging surface for the serving stack:
// log/slog with one text handler per process, decorated per subsystem
// with the identity an operator greps for — node role, term, connection
// ID, and (when a request is sampled) its trace ID.
//
// Two pieces:
//
//   - New builds the process-wide root logger (slog.TextHandler on the
//     given writer, with a static "node" attribute).
//   - Dynamic wraps any handler with attributes computed at record time.
//     Role and term change under the logger's feet during failover; a
//     static With() would freeze the values at construction, so the
//     replication node hands Dynamic a closure that reads its atomics.
//
// Lower layers with printf-style hooks (wal, durable) are bridged with
// Printf, which keeps their dependency surface flat — they never import
// slog, the process adapts at the boundary.
package logx

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// New returns the process root logger: text lines on w, each stamped
// with the node's identity (typically its data-plane address).
func New(w io.Writer, node string) *slog.Logger {
	l := slog.New(slog.NewTextHandler(w, nil))
	if node != "" {
		l = l.With("node", node)
	}
	return l
}

// Discard returns a logger that drops everything — the nil-config
// default for libraries so call sites never nil-check.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }

// Dynamic returns a logger whose records gain fn()'s attributes at
// Handle time. fn must be safe for concurrent use; it runs once per
// emitted record (after level filtering), so cheap atomic loads are the
// expected shape.
func Dynamic(base *slog.Logger, fn func() []slog.Attr) *slog.Logger {
	if base == nil {
		base = Discard()
	}
	return slog.New(&dynamicHandler{inner: base.Handler(), fn: fn})
}

type dynamicHandler struct {
	inner slog.Handler
	fn    func() []slog.Attr
}

func (h *dynamicHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

func (h *dynamicHandler) Handle(ctx context.Context, r slog.Record) error {
	r = r.Clone()
	r.AddAttrs(h.fn()...)
	return h.inner.Handle(ctx, r)
}

func (h *dynamicHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &dynamicHandler{inner: h.inner.WithAttrs(attrs), fn: h.fn}
}

func (h *dynamicHandler) WithGroup(name string) slog.Handler {
	return &dynamicHandler{inner: h.inner.WithGroup(name), fn: h.fn}
}

// Printf adapts a slog.Logger to the printf-style hook the storage
// layers (wal.Options.Logf, durable.Options.Logf) accept. The formatted
// line becomes the message; structure below this boundary is the
// message text, by design.
func Printf(l *slog.Logger) func(format string, args ...any) {
	if l == nil {
		return nil
	}
	return func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
