package durable

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	bst "repro"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// shardedOpts returns Options for a 4-shard store over [0, 2^20-1] (an
// exact power-of-two span, so every shard gets a 2^18-wide slice and every
// WAL lane sees traffic), the configuration most sharded tests share.
func shardedOpts() Options {
	return Options{
		Sync: wal.SyncFsync,
		TreeOptions: []bst.Option{
			bst.WithShards(4),
			bst.WithShardRange(0, 1<<20-1),
		},
	}
}

func TestShardedCrashRecovers(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, shardedOpts())
	if d.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", d.Shards())
	}
	rng := rand.New(rand.NewSource(11))
	want := map[int64]bool{}
	for i := 0; i < 4000; i++ {
		k := rng.Int63n(1 << 20)
		if rng.Intn(4) == 0 {
			d.Delete(k)
			delete(want, k)
		} else {
			d.Insert(k)
			want[k] = true
		}
	}
	if err := d.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	d = openT(t, dir, shardedOpts())
	defer d.Close()
	rs := d.RecoveryStats()
	if rs.ReplayedOps == 0 {
		t.Fatal("sharded recovery replayed nothing")
	}
	if d.Len() != len(want) {
		t.Fatalf("recovered %d keys, want %d", d.Len(), len(want))
	}
	for k := range want {
		if !d.Contains(k) {
			t.Fatalf("recovered store missing key %d", k)
		}
	}
	// Every lane must have its own WAL directory.
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(shardDir(dir, i)); err != nil {
			t.Fatalf("lane %d directory missing: %v", i, err)
		}
	}
}

func TestShardedBatchCrashRecovers(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, shardedOpts())
	acc := d.NewAccessor()
	keys := make([]int64, 2000)
	out := make([]bst.OpResult, len(keys))
	for i := range keys {
		// Stride so every shard of the [0, 1<<20] range is hit.
		keys[i] = (int64(i) * 521) % (1 << 20)
	}
	acc.InsertBatch(keys, out)
	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("InsertBatch[%d]: %v", i, out[i].Err)
		}
	}
	acc.DeleteBatch(keys[:500], out[:500])
	if err := acc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}

	d = openT(t, dir, shardedOpts())
	defer d.Close()
	want := map[int64]bool{}
	for _, k := range keys[500:] {
		want[k] = true
	}
	for _, k := range keys[:500] {
		delete(want, k)
	}
	if d.Len() != len(want) {
		t.Fatalf("recovered %d keys, want %d", d.Len(), len(want))
	}
}

// TestShardedBatchOutOfRangeIsolated: a slot rejected by its shard
// (ErrKeyOutOfRange) must not poison sibling slots' durability acks.
func TestShardedBatchOutOfRangeIsolated(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, shardedOpts())
	acc := d.NewAccessor()
	keys := []int64{10, 1 << 18, bst.MaxKey + 1, 1 << 19, (1 << 20) - 1}
	out := make([]bst.OpResult, len(keys))
	acc.InsertBatch(keys, out)
	for i := range keys {
		if i == 2 {
			if !errors.Is(out[i].Err, bst.ErrKeyOutOfRange) {
				t.Fatalf("slot 2: err=%v, want ErrKeyOutOfRange", out[i].Err)
			}
			continue
		}
		if out[i].Err != nil || !out[i].OK {
			t.Fatalf("slot %d poisoned by sibling failure: %+v", i, out[i])
		}
	}
	if err := acc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	d = openT(t, dir, shardedOpts())
	defer d.Close()
	if d.Len() != 4 {
		t.Fatalf("recovered %d keys, want 4", d.Len())
	}
}

func TestShardedManifestRefusesMismatch(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, shardedOpts())
	d.Insert(42)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"different shard count", Options{TreeOptions: []bst.Option{
			bst.WithShards(8), bst.WithShardRange(0, 1<<20)}}, "shard count"},
		{"different range", Options{TreeOptions: []bst.Option{
			bst.WithShards(4), bst.WithShardRange(0, 1<<21)}}, "routing bound"},
		{"unsharded reopen", Options{}, "sharded store"},
	}
	for _, tc := range cases {
		if _, err := Open(dir, tc.opts); err == nil {
			t.Fatalf("%s: Open succeeded, want refusal", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// And the matching config still opens.
	d = openT(t, dir, shardedOpts())
	defer d.Close()
	if !d.Contains(42) {
		t.Fatal("matching reopen lost data")
	}
}

func TestShardedRefusesUnshardedDir(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, Options{Sync: wal.SyncFsync})
	d.Insert(7)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, shardedOpts()); err == nil {
		t.Fatal("sharded open over an unsharded store must be refused")
	}
}

func TestShardedCheckpointPerLane(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, shardedOpts())
	for i := int64(0); i < 2000; i++ {
		d.Insert((i * 521) % (1 << 20))
	}
	st, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if st.Keys != uint64(d.Len()) {
		t.Fatalf("checkpoint keys = %d, want %d", st.Keys, d.Len())
	}
	// Every lane must hold its own snapshot, and the manifest must record
	// per-lane horizons.
	for i := 0; i < 4; i++ {
		snaps, err := snapshot.List(shardDir(dir, i))
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) == 0 {
			t.Fatalf("lane %d has no snapshot after checkpoint", i)
		}
	}
	m, ok, err := loadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest missing after checkpoint: ok=%v err=%v", ok, err)
	}
	if len(m.CheckpointSeqs) != 4 {
		t.Fatalf("manifest CheckpointSeqs = %v", m.CheckpointSeqs)
	}
	var sum uint64
	for _, s := range m.CheckpointSeqs {
		sum += s
	}
	if sum == 0 {
		t.Fatal("no lane recorded a checkpoint horizon")
	}

	// Mutate past the checkpoint, crash, and verify snapshot+tail recovery.
	for i := int64(0); i < 100; i++ {
		d.Insert(1<<20 - 1 - i)
	}
	wantLen := d.Len()
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	d = openT(t, dir, shardedOpts())
	defer d.Close()
	rs := d.RecoveryStats()
	if rs.SnapshotKeys == 0 {
		t.Fatal("recovery ignored lane snapshots")
	}
	if d.Len() != wantLen {
		t.Fatalf("recovered %d keys, want %d", d.Len(), wantLen)
	}
}

func TestShardedSeqsAggregate(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, shardedOpts())
	defer d.Close()
	for i := int64(0); i < 400; i++ {
		d.Insert((i * 2621) % (1 << 20))
	}
	// LastSeq sums lanes, so it must equal the number of logged mutations.
	if got := d.LastSeq(); got != 400 {
		t.Fatalf("LastSeq = %d, want 400", got)
	}
	if got := d.DurableSeq(); got != 400 {
		t.Fatalf("DurableSeq = %d, want 400 (fsync acks already returned)", got)
	}
	ws := d.WALStats()
	if ws.Appends != 400 {
		t.Fatalf("WALStats.Appends = %d, want 400", ws.Appends)
	}
}

func TestShardedReplicationGated(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, shardedOpts())
	defer d.Close()
	if err := d.ReplayWAL(0, func(wal.Record) error { return nil }); !errors.Is(err, ErrSharded) {
		t.Fatalf("ReplayWAL err = %v, want ErrSharded", err)
	}
	if err := d.ApplyRecord(wal.Record{Seq: 1, Op: opInsert, Key: 5}); !errors.Is(err, ErrSharded) {
		t.Fatalf("ApplyRecord err = %v, want ErrSharded", err)
	}
	if err := d.ApplySnapshot([]int64{1, 2, 3}, 3); !errors.Is(err, ErrSharded) {
		t.Fatalf("ApplySnapshot err = %v, want ErrSharded", err)
	}
}

// TestShardedScanMatchesState: merged scan over a recovered sharded store
// yields the exact sorted survivor set.
func TestShardedScanMatchesState(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, shardedOpts())
	rng := rand.New(rand.NewSource(23))
	want := map[int64]bool{}
	for i := 0; i < 3000; i++ {
		k := rng.Int63n(1 << 20)
		if rng.Intn(3) == 0 {
			d.Delete(k)
			delete(want, k)
		} else {
			d.Insert(k)
			want[k] = true
		}
	}
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	d = openT(t, dir, shardedOpts())
	defer d.Close()
	got := keysOf(d)
	if len(got) != len(want) {
		t.Fatalf("scan yielded %d keys, want %d", len(got), len(want))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("sharded scan stream not sorted")
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("scan yielded ghost key %d", k)
		}
	}
}

// TestShardedConcurrentRecovers is the sharded variant of the mixed
// workload crash test: many goroutines, singles and batches, crash, then
// an exact-state audit.
func TestShardedConcurrentRecovers(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, Options{
		Sync: wal.SyncNone,
		TreeOptions: []bst.Option{
			bst.WithShards(4), bst.WithShardRange(0, 1<<16-1), bst.WithReclamation(),
		},
	})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := d.NewAccessor()
			defer acc.Close()
			rng := rand.New(rand.NewSource(int64(w) * 977))
			ks := make([]int64, 64)
			out := make([]bst.OpResult, 64)
			for i := 0; i < 60; i++ {
				for j := range ks {
					ks[j] = rng.Int63n(1 << 16)
				}
				acc.InsertBatch(ks, out)
				acc.DeleteBatch(ks[:16], out[:16])
				acc.Insert(rng.Int63n(1 << 16))
				acc.Delete(rng.Int63n(1 << 16))
			}
		}(w)
	}
	wg.Wait()
	want := keysOf(d)
	if err := d.Close(); err != nil { // clean close: fsync all lanes
		t.Fatal(err)
	}

	d = openT(t, dir, Options{Sync: wal.SyncNone, TreeOptions: []bst.Option{
		bst.WithShards(4), bst.WithShardRange(0, 1<<16-1)}})
	defer d.Close()
	got := keysOf(d)
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("key mismatch at %d: %d != %d", i, got[i], want[i])
		}
	}
}

// TestShardedLaneLayout: lane directories only ever hold that lane's WAL
// segments and snapshots — nothing leaks to the top level besides the
// manifest.
func TestShardedLaneLayout(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, shardedOpts())
	for i := int64(0); i < 100; i++ {
		d.Insert(i * 4099)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			if !strings.HasPrefix(e.Name(), "shard-") {
				t.Fatalf("unexpected directory %s at top level", e.Name())
			}
			continue
		}
		if e.Name() != manifestName {
			t.Fatalf("unexpected top-level file %s (WAL/snapshots must live in lanes)", e.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(shardDir(dir, 0), manifestName)); err == nil {
		t.Fatal("lane directories must not hold nested manifests")
	}
}
