package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/snapshot"
)

// manifestName is the forest manifest file, at the top of a sharded data
// directory. Its real job is refusing a reopen whose routing disagrees
// with the data on disk: a key's WAL records all live in ONE lane, and
// replay applies lanes independently — reopening with a different shard
// count (or routing range) would split a key's history across lanes and
// break per-key replay order. The manifest pins shards + per-shard bounds
// at first open and every later open must match exactly.
const manifestName = "FOREST"

// manifestVersion is bumped on incompatible layout changes.
const manifestVersion = 1

// forestManifest is the persisted sharding contract plus the last
// checkpoint's per-lane horizons (informational — each lane's snapshot
// carries its own authoritative horizon).
type forestManifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
	// BoundHi[i] is the inclusive upper user key routed to shard i; with
	// the shard count this pins the whole routing function.
	BoundHi []int64 `json:"bound_hi"`
	// CheckpointSeqs[i] is lane i's horizon at the last completed
	// checkpoint (all zero before the first).
	CheckpointSeqs []uint64 `json:"checkpoint_seqs,omitempty"`
}

func manifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// shardDir is lane i's subdirectory (its WAL segments and snapshots).
func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// loadManifest reads dir's manifest; ok is false when none exists.
func loadManifest(dir string) (m forestManifest, ok bool, err error) {
	b, err := os.ReadFile(manifestPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return m, false, nil
	}
	if err != nil {
		return m, false, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, false, fmt.Errorf("durable: corrupt forest manifest %s: %w", manifestPath(dir), err)
	}
	return m, true, nil
}

// writeManifest publishes m atomically: tmp file, fsync, rename over the
// final name, fsync the directory — the same publish protocol as
// snapshots, so a crash mid-write leaves either the old manifest or the
// new one, never a torn file.
func writeManifest(dir string, m forestManifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(dir, manifestName+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, manifestPath(dir)); err != nil {
		return err
	}
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}

// checkLayout validates dir against the requested shard count n (the
// tree's effective count) and, for a forest, creates or verifies the
// manifest. bounds must hold the tree's per-shard inclusive upper keys.
func checkLayout(dir string, n int, bounds []int64) (forestManifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return forestManifest{}, err
	}
	m, ok, err := loadManifest(dir)
	if err != nil {
		return forestManifest{}, err
	}
	if n == 1 {
		if ok {
			return forestManifest{}, fmt.Errorf("durable: %s is a sharded store (%d shards); open it with the same shard count", dir, m.Shards)
		}
		return forestManifest{}, nil
	}
	if !ok {
		// First sharded open. Refuse a directory already holding an
		// unsharded store's data: silently resharding it would strand that
		// history outside every lane.
		if snaps, err := snapshot.List(dir); err != nil {
			return forestManifest{}, err
		} else if len(snaps) > 0 {
			return forestManifest{}, fmt.Errorf("durable: %s holds an unsharded store's snapshots; cannot open sharded", dir)
		}
		if ents, err := os.ReadDir(dir); err != nil {
			return forestManifest{}, err
		} else {
			for _, e := range ents {
				if !e.IsDir() && filepath.Ext(e.Name()) == ".log" {
					return forestManifest{}, fmt.Errorf("durable: %s holds an unsharded store's WAL; cannot open sharded", dir)
				}
			}
		}
		m = forestManifest{Version: manifestVersion, Shards: n, BoundHi: append([]int64(nil), bounds...)}
		if err := writeManifest(dir, m); err != nil {
			return forestManifest{}, fmt.Errorf("durable: writing forest manifest: %w", err)
		}
		return m, nil
	}
	if m.Version != manifestVersion {
		return forestManifest{}, fmt.Errorf("durable: forest manifest version %d (want %d)", m.Version, manifestVersion)
	}
	if m.Shards != n {
		return forestManifest{}, fmt.Errorf("durable: store has %d shards, tree configured with %d — shard count is fixed at creation", m.Shards, n)
	}
	if len(m.BoundHi) != len(bounds) {
		return forestManifest{}, fmt.Errorf("durable: forest manifest has %d shard bounds, tree has %d", len(m.BoundHi), len(bounds))
	}
	for i := range bounds {
		if m.BoundHi[i] != bounds[i] {
			return forestManifest{}, fmt.Errorf("durable: shard %d routing bound changed (%d on disk, %d configured) — the shard range is fixed at creation", i, m.BoundHi[i], bounds[i])
		}
	}
	return m, nil
}
