package durable

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// latencyHist is a single-writer power-of-two nanosecond histogram (same
// discipline as the metrics shards: plain stores by the one writer, atomic
// loads by scrapers — scrapes never block a checkpoint).
type latencyHist struct {
	buckets [metrics.NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	i := 0
	for v := ns; v != 0; v >>= 1 {
		i++
	}
	if i >= metrics.NumBuckets {
		i = metrics.NumBuckets - 1
	}
	b := &h.buckets[i]
	b.Store(b.Load() + 1)
	h.count.Store(h.count.Load() + 1)
	h.sum.Store(h.sum.Load() + ns)
}

func (h *latencyHist) snapshot() metrics.LatencySnapshot {
	var l metrics.LatencySnapshot
	for i := range h.buckets {
		l.Buckets[i] = h.buckets[i].Load()
	}
	l.Count = h.count.Load()
	l.SumNanos = h.sum.Load()
	return l
}

// MetricsHook folds the durability subsystem's telemetry into a registry
// snapshot. Register it on the serving registry:
//
//	reg.AddHook(dur.MetricsHook)
//
// Counter names follow the existing export conventions (the renderer adds
// the bst_ prefix); histograms land in ExternalLatency with _seconds
// names and nanosecond buckets (the renderer converts).
func (d *Tree) MetricsHook(s *metrics.Snapshot) {
	st := d.WALStats()
	s.External["wal_append_total"] += st.Appends
	s.External["wal_fsync_total"] += st.Fsyncs
	s.External["wal_group_commits_total"] += st.Groups
	s.External["wal_group_records_total"] += st.GroupRecords
	s.External["wal_bytes_written_total"] += st.BytesWritten
	s.External["wal_rotations_total"] += st.Rotations
	s.External["wal_torn_bytes_truncated_total"] += st.TornTruncated
	s.External["snapshots_total"] += d.snapshots.Load()
	s.External["snapshot_keys_total"] += d.snapshotKeys.Load()
	s.External["recovery_replayed_ops_total"] += d.replayedTotal.Load()

	s.Gauges["wal_last_seq"] = float64(st.LastSeq)
	s.Gauges["wal_durable_seq"] = float64(st.DurableSeq)
	s.Gauges["wal_segments"] = float64(st.Segments)
	// wal_group_size: the live max plus mean-derivable counters above.
	s.Gauges["wal_group_size_max"] = float64(st.MaxGroup)
	s.Gauges["checkpoint_last_wal_seq"] = float64(d.lastCkptSeq.Load())
	s.Gauges["checkpoint_backlog_ops"] = float64(st.LastSeq - d.lastCkptSeq.Load())

	fold := func(name string, l metrics.LatencySnapshot) {
		cur := s.ExternalLatency[name]
		for i := range l.Buckets {
			cur.Buckets[i] += l.Buckets[i]
		}
		cur.Count += l.Count
		cur.SumNanos += l.SumNanos
		s.ExternalLatency[name] = cur
	}
	fold("wal_fsync_seconds", st.FsyncNanos)
	fold("snapshot_duration_seconds", d.snapshotHist.snapshot())
}
