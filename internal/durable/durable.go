// Package durable wraps a bst.Tree with write-ahead logging and
// checkpointing so the set survives crashes: the classic
// checkpoint-plus-log shape, built on two properties the tree already
// has — idempotent set semantics (replaying an insert/delete against a
// state that reflects it is a no-op) and an epoch-pinned weakly-consistent
// Scan that can stream a checkpoint without stopping writers.
//
// # Log-before-ack
//
// Every acknowledged mutation is in the WAL before the caller sees the
// result: apply to the tree, append to the log, then — under the fsync
// policy — wait for the group commit before returning. Only set-changing
// outcomes are logged; an Insert that returns false changed nothing, so it
// needs no durability (its ack is an observation, not a promise).
//
// # Per-key ordering
//
// Replay is per-key order-sensitive (insert-then-delete and
// delete-then-insert end differently), so the wrapper serializes each
// key's tree-apply + log-append through one of 256 striped mutexes. The
// stripe is held only for the tree operation and the (non-blocking) log
// enqueue — nanoseconds — never across the fsync wait, so group commit
// still batches arbitrarily many concurrent appenders. Operations on
// different keys commute, and their relative WAL order is irrelevant.
//
// # Checkpoint correctness
//
// Checkpoint records horizon H = log.LastSeq() and then scans. Any op
// with seq ≤ H ran its tree mutation before its seq was assigned (same
// stripe critical section), hence before the scan began, so the scan
// observes it; the weakly-consistent scan may also observe some ops with
// seq > H, which replay then re-applies idempotently. Recovery loads the
// newest valid snapshot and replays records with seq > H.
//
// # Recovery shape
//
// Snapshot keys are sorted, and inserting a sorted run into an external
// BST builds a worst-case spine. Recovery therefore inserts in BFS
// level-order of the implicit balanced tree over the sorted keys — the
// root median first, then the two quartile medians, and so on — giving a
// perfectly balanced start. Each level's medians are themselves ascending,
// so the batched-descent insert path applies.
package durable

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	bst "repro"
	"repro/internal/failpoint"
	"repro/internal/rtrace"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// Reuse the WAL's op codes as the package's public vocabulary.
const (
	opInsert = wal.OpInsert
	opDelete = wal.OpDelete
)

const numStripes = 256

// Options configures Open.
type Options struct {
	// Sync is the WAL durability policy (default wal.SyncFsync: acked ⇒
	// durable).
	Sync wal.SyncPolicy
	// SyncInterval is the fsync period under wal.SyncInterval.
	SyncInterval time.Duration
	// CheckpointEvery triggers a background checkpoint after this many
	// logged mutations (0 disables automatic checkpoints; explicit
	// Checkpoint calls always work).
	CheckpointEvery int
	// SegmentBytes is the WAL segment rotation size (0 = default).
	SegmentBytes int64
	// TreeOptions are passed to bst.New when recovery builds the tree.
	TreeOptions []bst.Option
	// Logf, when non-nil, receives recovery/checkpoint progress lines.
	Logf func(format string, args ...any)
	// Trace, when non-nil, instruments the synchronous mutation path for
	// deployments that embed the durable tree directly (bstbench's durable
	// cells): self-sampled mutations record a KTreeOp span (tree apply +
	// stripe + log enqueue) and a KWALWait span (the group-commit wait),
	// and every checkpoint records a loose KCheckpoint span. The server
	// path instruments these phases itself — wire Trace at exactly one
	// layer or phases double-count.
	Trace *rtrace.Recorder
	// Failpoints passes fault-injection sites down to the WAL (wal.FPFsync
	// stalls or fails the flusher's fsync). Leave nil in production.
	Failpoints *failpoint.Set
}

// RecoveryStats describes what Open reconstructed.
type RecoveryStats struct {
	// SnapshotPath is the snapshot the tree was loaded from ("" if none).
	SnapshotPath string
	// SnapshotWALSeq is that snapshot's horizon H.
	SnapshotWALSeq uint64
	// SnapshotKeys is the number of keys bulk-loaded.
	SnapshotKeys uint64
	// CorruptSnapshots counts newer snapshots skipped as corrupt.
	CorruptSnapshots int
	// ReplayedOps is the number of WAL records applied after the snapshot.
	ReplayedOps uint64
	// WALTornBytes is the size of the torn tail truncated at open.
	WALTornBytes uint64
	// Duration is wall time for the whole recovery.
	Duration time.Duration
}

// CheckpointStats describes one completed checkpoint.
type CheckpointStats struct {
	WALSeq      uint64 // horizon the snapshot covers
	Keys        uint64 // keys written
	Bytes       int64  // snapshot file size
	Duration    time.Duration
	SnapshotsGC int // superseded snapshots removed
	SegmentsGC  int // fully-checkpointed WAL segments removed
}

// lane is one WAL-and-snapshot chain. An unsharded store has exactly one,
// rooted at the data directory; a sharded store has one per shard, each in
// its own shard-NNN subdirectory, covering that shard's key range [lo, hi].
type lane struct {
	dir string
	log *wal.Log
	lo  int64 // inclusive user key range this lane covers
	hi  int64
}

// Tree is a durable concurrent ordered set: a bst.Tree plus one WAL lane
// per shard and a checkpointer. It satisfies the server's Store contract
// (NewAccessor, Scan, Health) so it drops into bstserve unchanged.
//
// With a sharded tree (bst.WithShards) every lane is independent: a key's
// mutations apply to its shard and append to its lane, checkpoints
// snapshot all lanes concurrently (one epoch-pinned scan per shard), and
// recovery replays lanes in parallel. Because the key→shard mapping is
// fixed, one key's records always live in one lane and per-key replay
// order is preserved; the forest manifest (manifest.go) pins the mapping
// so a mismatched reopen is refused instead of silently misrouted.
type Tree struct {
	dir  string
	opts Options
	tree *bst.Tree
	log  *wal.Log // lanes[0].log; the only log when unsharded (replication works through it)

	lanes []*lane

	stripes [numStripes]sync.Mutex

	recovery RecoveryStats

	ckptMu      sync.Mutex // one checkpoint at a time
	ckptRunning atomic.Bool
	sinceCkpt   atomic.Int64 // mutations logged since the last checkpoint
	ckptWG      sync.WaitGroup

	// walTap holds the replication frame tap (SetWALTap), dispatched from
	// the WAL flusher via fireTap. Stored as a func value so a leader can
	// be wired up after Open without reopening the log.
	walTap atomic.Value // func([]byte, uint64, uint64)

	closed atomic.Bool

	// fenceTerm, when non-zero, refuses direct mutations: the node was
	// deposed by this leader term (see Fence).
	fenceTerm atomic.Uint64

	// Cumulative checkpoint/recovery telemetry for MetricsHook.
	snapshots     atomic.Uint64
	snapshotKeys  atomic.Uint64
	snapshotHist  latencyHist
	lastCkptSeq   atomic.Uint64
	replayedTotal atomic.Uint64
}

func stripeOf(key int64) int {
	return int((uint64(key) * 0x9E3779B97F4A7C15) >> 56)
}

// laneOf routes a key to its WAL lane (always 0 when unsharded). The
// key→lane mapping mirrors the tree's key→shard routing and is pinned on
// disk by the forest manifest, so a key's whole history stays in one lane.
func (d *Tree) laneOf(key int64) int {
	if len(d.lanes) == 1 {
		return 0
	}
	return d.tree.ShardOf(key)
}

// Shards reports the number of WAL lanes (= the tree's shard count).
func (d *Tree) Shards() int { return len(d.lanes) }

// Open recovers (or creates) a durable tree in dir: newest valid snapshot
// → balanced bulk load → WAL tail replay, per lane. A corrupt snapshot
// falls back to the next older one; a corrupt WAL interior refuses with
// wal.ErrCorrupt. When TreeOptions selects a sharded tree (bst.WithShards)
// each shard recovers its own lane — snapshot load, WAL open and tail
// replay for all lanes run in parallel (disjoint key ranges; each replay
// goroutine owns a private accessor).
func Open(dir string, opts Options) (*Tree, error) {
	start := time.Now()
	d := &Tree{dir: dir, opts: opts}
	d.tree = bst.New(opts.TreeOptions...)
	n := d.tree.Shards()
	bounds := make([]int64, n)
	for i := range bounds {
		_, bounds[i] = d.tree.ShardKeyRange(i)
	}
	if _, err := checkLayout(dir, n, bounds); err != nil {
		d.tree.Close()
		return nil, err
	}

	var horizons []uint64
	var err error
	if n == 1 {
		// Unsharded: the lane is the data directory itself, with the
		// replication tap wired (legacy layout, byte-compatible with every
		// store created before sharding existed).
		lo, hi := d.tree.ShardKeyRange(0)
		ln := &lane{dir: dir, lo: lo, hi: hi}
		var h uint64
		if h, err = d.openLane(ln, d.fireTap, &d.recovery); err != nil {
			d.tree.Close()
			return nil, err
		}
		horizons = []uint64{h}
		d.lanes = []*lane{ln}
	} else {
		d.lanes = make([]*lane, n)
		horizons = make([]uint64, n)
		stats := make([]RecoveryStats, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			lo, hi := d.tree.ShardKeyRange(i)
			d.lanes[i] = &lane{dir: shardDir(dir, i), lo: lo, hi: hi}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				horizons[i], errs[i] = d.openLane(d.lanes[i], nil, &stats[i])
			}(i)
		}
		wg.Wait()
		for i, e := range errs {
			if e != nil && err == nil {
				err = fmt.Errorf("shard %d: %w", i, e)
			}
		}
		if err != nil {
			for _, ln := range d.lanes {
				if ln.log != nil {
					ln.log.Close()
				}
			}
			d.tree.Close()
			return nil, err
		}
		d.recovery.SnapshotPath = manifestPath(dir)
		for i := range stats {
			d.recovery.SnapshotKeys += stats[i].SnapshotKeys
			d.recovery.CorruptSnapshots += stats[i].CorruptSnapshots
			d.recovery.ReplayedOps += stats[i].ReplayedOps
			d.recovery.WALTornBytes += stats[i].WALTornBytes
			if stats[i].SnapshotWALSeq > d.recovery.SnapshotWALSeq {
				d.recovery.SnapshotWALSeq = stats[i].SnapshotWALSeq
			}
		}
	}
	d.log = d.lanes[0].log
	d.replayedTotal.Store(d.recovery.ReplayedOps)
	d.recovery.Duration = time.Since(start)
	// lastCkptSeq tracks the horizon sum so checkpoint_backlog_ops stays
	// meaningful against the summed wal_last_seq (identical to the single
	// horizon when unsharded).
	var hsum uint64
	for _, h := range horizons {
		hsum += h
	}
	d.lastCkptSeq.Store(hsum)
	d.logf("durable: recovered %d snapshot key(s) + %d replayed op(s) across %d lane(s) in %s",
		d.recovery.SnapshotKeys, d.recovery.ReplayedOps, len(d.lanes), d.recovery.Duration)
	return d, nil
}

// openLane recovers one lane into d.tree: newest valid snapshot in the
// lane's directory (bulk-loaded through a routing accessor), then the
// lane's WAL tail. Safe to run concurrently for distinct lanes — they
// cover disjoint key ranges and each call uses its own accessor. Returns
// the lane's snapshot horizon.
func (d *Tree) openLane(ln *lane, tap func([]byte, uint64, uint64), rs *RecoveryStats) (uint64, error) {
	snaps, err := snapshot.List(ln.dir)
	if err != nil {
		return 0, err
	}
	var horizon uint64
	for _, s := range snaps {
		keys, walSeq, lerr := loadSnapshotKeys(s.Path)
		if lerr != nil {
			if errors.Is(lerr, snapshot.ErrCorrupt) {
				d.logf("durable: skipping corrupt snapshot %s: %v", s.Path, lerr)
				rs.CorruptSnapshots++
				continue
			}
			return 0, lerr
		}
		if berr := bulkLoadBalanced(d.tree, keys); berr != nil {
			return 0, fmt.Errorf("durable: bulk load: %w", berr)
		}
		horizon = walSeq
		rs.SnapshotPath = s.Path
		rs.SnapshotWALSeq = walSeq
		rs.SnapshotKeys = uint64(len(keys))
		break
	}

	log, err := wal.Open(ln.dir, wal.Options{
		Sync:         d.opts.Sync,
		Interval:     d.opts.SyncInterval,
		SegmentBytes: d.opts.SegmentBytes,
		NextSeq:      horizon + 1,
		Logf:         d.opts.Logf,
		Tap:          tap,
		Failpoints:   d.opts.Failpoints,
	})
	if err != nil {
		return 0, err
	}
	acc := d.tree.NewAccessor()
	replayed := uint64(0)
	rerr := log.Replay(horizon, func(r wal.Record) error {
		switch r.Op {
		case opInsert:
			if _, err := acc.TryInsert(r.Key); err != nil {
				return fmt.Errorf("durable: replay insert %d (seq %d): %w", r.Key, r.Seq, err)
			}
		case opDelete:
			acc.Delete(r.Key)
		}
		replayed++
		return nil
	})
	acc.Close()
	if rerr != nil {
		log.Close()
		return 0, rerr
	}
	ln.log = log
	rs.ReplayedOps = replayed
	rs.WALTornBytes = log.Stats().TornTruncated
	return horizon, nil
}

func (d *Tree) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

// loadSnapshotKeys reads a whole snapshot into memory. The keys must be
// materialized anyway for balanced loading, and doing it before building
// the tree means a corrupt snapshot costs no tree work.
func loadSnapshotKeys(path string) (keys []int64, walSeq uint64, err error) {
	walSeq, count, err := snapshot.Load(path, 8192, func(chunk []int64) error {
		keys = append(keys, chunk...)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(keys)) != count {
		return nil, 0, fmt.Errorf("%w: streamed %d keys, trailer says %d", snapshot.ErrCorrupt, len(keys), count)
	}
	return keys, walSeq, nil
}

// bulkLoadBalanced inserts sorted keys in BFS level-order of the implicit
// balanced BST: each level's medians are ascending, so every InsertBatch
// call gets a sorted run and the result is a balanced external tree
// instead of the N-deep spine sequential insertion would build.
func bulkLoadBalanced(tree *bst.Tree, keys []int64) error {
	if len(keys) == 0 {
		return nil
	}
	const chunk = 1024
	acc := tree.NewAccessor()
	defer acc.Close()
	batch := make([]int64, 0, chunk)
	out := make([]bst.OpResult, chunk)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		acc.InsertBatch(batch, out[:len(batch)])
		for i := range batch {
			if err := out[i].Err; err != nil {
				return fmt.Errorf("key %d: %w", batch[i], err)
			}
		}
		batch = batch[:0]
		return nil
	}

	type span struct{ lo, hi int }
	level := []span{{0, len(keys)}}
	next := make([]span, 0, 2)
	for len(level) > 0 {
		next = next[:0]
		for _, s := range level {
			if s.lo >= s.hi {
				continue
			}
			mid := int(uint(s.lo+s.hi) >> 1)
			batch = append(batch, keys[mid])
			if len(batch) == chunk {
				if err := flush(); err != nil {
					return err
				}
			}
			next = append(next, span{s.lo, mid}, span{mid + 1, s.hi})
		}
		// Flush at the level boundary: the next level's first median is
		// smaller than this level's last, and InsertBatch wants runs it
		// can sort cheaply (each level is already ascending).
		if err := flush(); err != nil {
			return err
		}
		level, next = next, level
	}
	return nil
}

// ErrFenced is returned by direct mutations on a store whose node was
// deposed by a newer leader term: the replication layer fenced the store
// (Fence) and writes must be refused even when the request slipped past
// the server's role gate before the fence landed. Replicated applies and
// reads are unaffected.
var ErrFenced = errors.New("durable: fenced by a newer leader term")

// Fence refuses direct mutations (Insert/TryInsert/Delete and the batch
// paths) from now on, recording the deposing term. The replication layer
// calls it the moment the node observes a term newer than its own while
// believing itself leader — the apply-side half of term fencing: even a
// request already inside the server cannot produce an acknowledged write
// after the fence. ApplyRecord/ApplySnapshot (replicated state from the
// new leader) and reads keep working. Monotonic: a lower term than the
// recorded one does not overwrite it; Unfence (promotion) lifts it.
func (d *Tree) Fence(term uint64) {
	for {
		old := d.fenceTerm.Load()
		if term <= old || d.fenceTerm.CompareAndSwap(old, term) {
			return
		}
	}
}

// Unfence lifts a fence; the replication layer calls it when this node is
// (re-)promoted to leader and may take writes again.
func (d *Tree) Unfence() { d.fenceTerm.Store(0) }

// FencedTerm returns the term that fenced this store (0 = not fenced).
func (d *Tree) FencedTerm() uint64 { return d.fenceTerm.Load() }

// apply runs one mutation under its key's stripe: tree first, then the
// non-blocking WAL enqueue, so the record's sequence order matches the
// key's linearization order. The fsync wait happens after the stripe is
// released.
func (d *Tree) apply(op uint8, key int64, mutate func() (bool, error)) (bool, error) {
	if d.fenceTerm.Load() != 0 {
		return false, ErrFenced
	}
	tc := d.opts.Trace.SampleNext()
	var treeStart time.Time
	if tc.Sampled() {
		treeStart = time.Now()
	}
	lg := d.lanes[d.laneOf(key)].log
	st := &d.stripes[stripeOf(key)]
	st.Lock()
	ok, err := mutate()
	var t wal.Ticket
	if err == nil && ok {
		t = lg.Enqueue(op, key)
	}
	st.Unlock()
	if tc.Sampled() {
		d.opts.Trace.Span(tc, rtrace.KTreeOp, treeStart, key)
	}
	if err != nil || !ok {
		return ok, err
	}
	var walStart time.Time
	if tc.Sampled() {
		walStart = time.Now()
	}
	if _, werr := t.Wait(); werr != nil {
		// The tree changed but the change cannot be made durable: the
		// caller must not treat it as acknowledged.
		return false, fmt.Errorf("durable: %w", werr)
	}
	if tc.Sampled() {
		d.opts.Trace.Span(tc, rtrace.KWALWait, walStart, int64(t.Seq()))
	}
	d.noteMutations(1)
	return true, nil
}

// applyAsync is apply without the ticket wait: same stripe-serialized
// tree-then-enqueue protocol, but durability is the caller's to wait for.
func (d *Tree) applyAsync(op uint8, key int64, mutate func() (bool, error)) (bool, wal.Ticket, error) {
	if d.fenceTerm.Load() != 0 {
		return false, wal.Ticket{}, ErrFenced
	}
	lg := d.lanes[d.laneOf(key)].log
	st := &d.stripes[stripeOf(key)]
	st.Lock()
	ok, err := mutate()
	var t wal.Ticket
	if err == nil && ok {
		t = lg.Enqueue(op, key)
	}
	st.Unlock()
	if err != nil || !ok {
		return ok, wal.Ticket{}, err
	}
	d.noteMutations(1)
	return true, t, nil
}

// noteMutations advances the auto-checkpoint trigger.
func (d *Tree) noteMutations(n int64) {
	if d.opts.CheckpointEvery <= 0 {
		return
	}
	if d.sinceCkpt.Add(n) >= int64(d.opts.CheckpointEvery) && d.ckptRunning.CompareAndSwap(false, true) {
		d.ckptWG.Add(1)
		go func() {
			defer d.ckptWG.Done()
			defer d.ckptRunning.Store(false)
			if d.closed.Load() {
				return
			}
			if _, err := d.Checkpoint(); err != nil && !errors.Is(err, errClosed) {
				d.logf("durable: automatic checkpoint failed: %v", err)
			}
		}()
	}
}

// Insert adds key; it reports whether the set changed, and does not return
// until the change is durable per the sync policy. A WAL failure panics
// (matching Insert's panicking contract); use TryInsert for an error.
func (d *Tree) Insert(key int64) bool {
	ok, err := d.apply(opInsert, key, func() (bool, error) { return d.tree.Insert(key), nil })
	if err != nil {
		panic(err)
	}
	return ok
}

// TryInsert is the non-panicking Insert: it reports ErrKeyOutOfRange,
// ErrCapacity, and WAL failures as errors.
func (d *Tree) TryInsert(key int64) (bool, error) {
	return d.apply(opInsert, key, func() (bool, error) { return d.tree.TryInsert(key) })
}

// Delete removes key; it reports whether the set changed, durably.
func (d *Tree) Delete(key int64) bool {
	ok, err := d.apply(opDelete, key, func() (bool, error) { return d.tree.Delete(key), nil })
	if err != nil {
		panic(err)
	}
	return ok
}

// Contains reports whether key is present (reads don't touch the log).
func (d *Tree) Contains(key int64) bool { return d.tree.Contains(key) }

// Len returns the number of keys (quiescent; see bst.Tree.Len).
func (d *Tree) Len() int { return d.tree.Len() }

// Scan passes through to the tree's epoch-pinned weakly-consistent scan.
func (d *Tree) Scan(from, to int64, yield func(key int64) bool) { d.tree.Scan(from, to, yield) }

// Health passes through to the underlying tree.
func (d *Tree) Health() bst.Health { return d.tree.Health() }

// Underlying exposes the wrapped tree for telemetry wiring (metrics
// registry). Mutating through it bypasses the WAL; don't.
func (d *Tree) Underlying() *bst.Tree { return d.tree }

// Order-statistics pass-throughs: aggregates are reads, so nothing is
// logged, and a durable store fronting an indexed tree stays indexed over
// the wire (the server discovers the capability by type assertion).

// Rank passes through to the tree's order-statistics index.
func (d *Tree) Rank(key int64, c bst.Consistency) (int, error) { return d.tree.Rank(key, c) }

// Select passes through to the tree's order-statistics index.
func (d *Tree) Select(i int, c bst.Consistency) (int64, error) { return d.tree.Select(i, c) }

// CountRange passes through to the tree's order-statistics index.
func (d *Tree) CountRange(lo, hi int64, c bst.Consistency) (int, error) {
	return d.tree.CountRange(lo, hi, c)
}

// SumRange passes through to the tree's order-statistics index.
func (d *Tree) SumRange(lo, hi int64, c bst.Consistency) (int64, error) {
	return d.tree.SumRange(lo, hi, c)
}

// Dir returns the data directory (snapshots + WAL segments live there).
func (d *Tree) Dir() string { return d.dir }

// LastSeq returns the newest assigned WAL sequence number. On a sharded
// store it is the SUM across lanes — monotonic and usable as a progress
// gauge, but not a position in any one log; replication (which needs the
// latter) is restricted to unsharded stores.
func (d *Tree) LastSeq() uint64 {
	if len(d.lanes) == 1 {
		return d.log.LastSeq()
	}
	var s uint64
	for _, ln := range d.lanes {
		s += ln.log.LastSeq()
	}
	return s
}

// DurableSeq returns the newest WAL sequence number known fsynced (the
// lane sum on a sharded store; see LastSeq).
func (d *Tree) DurableSeq() uint64 {
	if len(d.lanes) == 1 {
		return d.log.DurableSeq()
	}
	var s uint64
	for _, ln := range d.lanes {
		s += ln.log.DurableSeq()
	}
	return s
}

// ErrSharded is returned by the replication surface on a sharded store:
// WAL shipping assumes one dense global sequence, which a forest of
// independent lanes does not have. Run replication with shards = 1.
var ErrSharded = errors.New("durable: operation requires an unsharded store (shards = 1)")

// WALFirstSeq returns the oldest WAL sequence number still retained;
// replication catch-up below it must come from a snapshot. Unsharded only.
func (d *Tree) WALFirstSeq() uint64 { return d.log.FirstSeq() }

// ReplayWAL streams retained records with seq > after to fn (see
// wal.Log.Replay for the live-log semantics replication relies on).
// Unsharded only: a forest's lanes have independent numbering.
func (d *Tree) ReplayWAL(after uint64, fn func(wal.Record) error) error {
	if len(d.lanes) != 1 {
		return ErrSharded
	}
	return d.log.Replay(after, fn)
}

// SetWALTap installs (or, with nil, removes) the frame tap the replication
// leader uses to observe committed WAL frames. The tap runs on the WAL
// flusher goroutine and must not retain the frame bytes past the call.
func (d *Tree) SetWALTap(fn func(frames []byte, firstSeq, lastSeq uint64)) {
	d.walTap.Store(fn)
}

func (d *Tree) fireTap(frames []byte, firstSeq, lastSeq uint64) {
	if f, _ := d.walTap.Load().(func([]byte, uint64, uint64)); f != nil {
		f(frames, firstSeq, lastSeq)
	}
}

// ApplyRecord applies one replicated WAL record on a follower: tree first,
// then the local WAL append, exactly like a leader-side mutation — so the
// follower's log is byte-for-byte replayable and its own checkpoints work
// unchanged. Records must arrive in dense sequence order (the replication
// stream's contract); a gap is a protocol error, not something to paper
// over. The caller is the single apply goroutine, so no stripe locking is
// needed — but the stripes are taken anyway because a follower can be
// promoted, and the moment it starts taking writes the per-key ordering
// argument must already hold.
func (d *Tree) ApplyRecord(r wal.Record) error {
	if d.closed.Load() {
		return errClosed
	}
	if len(d.lanes) != 1 {
		return ErrSharded
	}
	st := &d.stripes[stripeOf(r.Key)]
	st.Lock()
	defer st.Unlock()
	if want := d.log.LastSeq() + 1; r.Seq != want {
		return fmt.Errorf("durable: replication sequence gap: got %d, want %d", r.Seq, want)
	}
	switch r.Op {
	case opInsert:
		if _, err := d.tree.TryInsert(r.Key); err != nil {
			return fmt.Errorf("durable: replicated insert %d (seq %d): %w", r.Key, r.Seq, err)
		}
	case opDelete:
		d.tree.Delete(r.Key)
	default:
		return fmt.Errorf("durable: replicated record seq %d has unknown op %d", r.Seq, r.Op)
	}
	t := d.log.Enqueue(r.Op, r.Key)
	if t.Seq() != r.Seq {
		return fmt.Errorf("durable: local log assigned seq %d to replicated record %d (local writes on a follower?)", t.Seq(), r.Seq)
	}
	d.noteMutations(1)
	return nil
}

// ApplySnapshot bulk-loads a replicated snapshot (ascending keys covering
// walSeq) into an empty store, advances the local WAL numbering past the
// horizon, and persists a local snapshot so recovery never depends on the
// leader being reachable. It refuses a store that already holds data: a
// follower whose local history diverged from what the leader retains needs
// its data directory cleared by the operator, not a silent merge.
func (d *Tree) ApplySnapshot(keys []int64, walSeq uint64) error {
	if d.closed.Load() {
		return errClosed
	}
	if len(d.lanes) != 1 {
		return ErrSharded
	}
	if d.log.LastSeq() != 0 || d.tree.Len() != 0 {
		return errors.New("durable: ApplySnapshot needs an empty store (clear the data directory and resync)")
	}
	if err := bulkLoadBalanced(d.tree, keys); err != nil {
		return fmt.Errorf("durable: snapshot bulk load: %w", err)
	}
	if err := d.log.SkipTo(walSeq); err != nil {
		return err
	}
	info, err := snapshot.Write(d.dir, walSeq, func(emit func(int64) error) error {
		for _, k := range keys {
			if err := emit(k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("durable: persisting replicated snapshot: %w", err)
	}
	d.lastCkptSeq.Store(walSeq)
	d.snapshots.Add(1)
	d.snapshotKeys.Add(info.Count)
	d.logf("durable: bulk-loaded replicated snapshot @seq %d (%d keys)", walSeq, info.Count)
	return nil
}

// RecoveryStats reports what Open reconstructed.
func (d *Tree) RecoveryStats() RecoveryStats { return d.recovery }

// WALStats reports the log's counters; on a sharded store the lanes'
// counters are summed (sequence gauges become lane sums, MaxGroup the max).
func (d *Tree) WALStats() wal.Stats {
	if len(d.lanes) == 1 {
		return d.log.Stats()
	}
	var agg wal.Stats
	for _, ln := range d.lanes {
		st := ln.log.Stats()
		agg.Appends += st.Appends
		agg.Groups += st.Groups
		agg.GroupRecords += st.GroupRecords
		if st.MaxGroup > agg.MaxGroup {
			agg.MaxGroup = st.MaxGroup
		}
		agg.Fsyncs += st.Fsyncs
		agg.BytesWritten += st.BytesWritten
		agg.Rotations += st.Rotations
		agg.TornTruncated += st.TornTruncated
		agg.LastSeq += st.LastSeq
		agg.DurableSeq += st.DurableSeq
		agg.Segments += st.Segments
		for i := range st.FsyncNanos.Buckets {
			agg.FsyncNanos.Buckets[i] += st.FsyncNanos.Buckets[i]
		}
		agg.FsyncNanos.Count += st.FsyncNanos.Count
		agg.FsyncNanos.SumNanos += st.FsyncNanos.SumNanos
	}
	return agg
}

var errClosed = errors.New("durable: closed")

// Checkpoint writes a snapshot covering every logged mutation up to the
// current WAL horizon, then garbage-collects superseded snapshots and
// fully-checkpointed WAL segments. Writers keep running throughout (the
// scan is epoch-pinned, not blocking); only one checkpoint runs at a time.
func (d *Tree) Checkpoint() (CheckpointStats, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.closed.Load() {
		return CheckpointStats{}, errClosed
	}
	return d.checkpointLocked()
}

// checkpointLane snapshots one lane: read the lane's horizon FIRST, scan
// second — every op with seq ≤ H finished its tree mutation before H was
// read (stripe critical section), so the scan, which starts strictly
// later, observes it. The scan covers exactly the lane's key range, which
// on a sharded tree routes to one shard (one epoch pin, no cross-shard
// traffic).
func (d *Tree) checkpointLane(ln *lane) (CheckpointStats, error) {
	start := time.Now()
	h := ln.log.LastSeq()
	var scanErr error
	info, err := snapshot.Write(ln.dir, h, func(emit func(int64) error) error {
		d.tree.Scan(ln.lo, ln.hi, func(k int64) bool {
			if err := emit(k); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		return scanErr
	})
	if err != nil {
		return CheckpointStats{}, err
	}
	stats := CheckpointStats{WALSeq: h, Keys: info.Count, Bytes: info.Bytes, Duration: time.Since(start)}
	if n, err := snapshot.GC(ln.dir, h); err != nil {
		d.logf("durable: snapshot gc: %v", err)
	} else {
		stats.SnapshotsGC = n
	}
	if n, err := ln.log.RemoveThrough(h); err != nil {
		d.logf("durable: wal gc: %v", err)
	} else {
		stats.SegmentsGC = n
	}
	return stats, nil
}

func (d *Tree) checkpointLocked() (CheckpointStats, error) {
	start := time.Now()
	baseline := d.sinceCkpt.Load()
	var stats CheckpointStats
	if len(d.lanes) == 1 {
		var err error
		if stats, err = d.checkpointLane(d.lanes[0]); err != nil {
			return CheckpointStats{}, err
		}
	} else {
		// Sharded: snapshot every lane concurrently (each scan pins only
		// its own shard's epoch), then publish one manifest atomically.
		// Lane snapshots are individually atomic and self-describing, so a
		// crash between lane publishes is safe — each lane still recovers
		// from its own newest snapshot + WAL tail; the manifest rewrite
		// merely records the new horizons.
		per := make([]CheckpointStats, len(d.lanes))
		errs := make([]error, len(d.lanes))
		var wg sync.WaitGroup
		for i, ln := range d.lanes {
			wg.Add(1)
			go func(i int, ln *lane) {
				defer wg.Done()
				per[i], errs[i] = d.checkpointLane(ln)
			}(i, ln)
		}
		wg.Wait()
		seqs := make([]uint64, len(d.lanes))
		for i, e := range errs {
			if e != nil {
				return CheckpointStats{}, fmt.Errorf("durable: checkpoint shard %d: %w", i, e)
			}
			seqs[i] = per[i].WALSeq
			stats.WALSeq += per[i].WALSeq // lane sum, matching LastSeq's sharded semantics
			stats.Keys += per[i].Keys
			stats.Bytes += per[i].Bytes
			stats.SnapshotsGC += per[i].SnapshotsGC
			stats.SegmentsGC += per[i].SegmentsGC
		}
		m := forestManifest{Version: manifestVersion, Shards: len(d.lanes), CheckpointSeqs: seqs}
		for _, ln := range d.lanes {
			m.BoundHi = append(m.BoundHi, ln.hi)
		}
		if err := writeManifest(d.dir, m); err != nil {
			return CheckpointStats{}, fmt.Errorf("durable: publishing forest manifest: %w", err)
		}
		stats.Duration = time.Since(start)
	}
	h := stats.WALSeq
	d.sinceCkpt.Add(-baseline)
	d.lastCkptSeq.Store(h)
	d.snapshots.Add(uint64(len(d.lanes)))
	d.snapshotKeys.Add(stats.Keys)
	d.snapshotHist.observe(stats.Duration)
	// Checkpoints are rare enough to record unconditionally: a loose span
	// with no trace identity, visible in /debug/rtrace and the phase
	// aggregates (Arg = the horizon the snapshot covers).
	d.opts.Trace.Record(rtrace.Span{
		Kind: rtrace.KCheckpoint, Start: start.UnixNano(),
		Dur: stats.Duration.Nanoseconds(), Arg: int64(h),
	})
	d.logf("durable: checkpoint @seq %d: %d key(s), %d byte(s), %s (gc: %d snapshot(s), %d segment(s))",
		h, stats.Keys, stats.Bytes, stats.Duration, stats.SnapshotsGC, stats.SegmentsGC)
	return stats, nil
}

// Close makes every acknowledged mutation durable (final fsync), writes a
// final checkpoint, and releases the log and tree. Callers must have
// stopped mutating (the server drains connections first).
func (d *Tree) Close() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if !d.closed.CompareAndSwap(false, true) {
		return errClosed
	}
	var firstErr error
	for _, ln := range d.lanes {
		if err := ln.log.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		if _, err := d.checkpointLocked(); err != nil {
			firstErr = fmt.Errorf("durable: final checkpoint: %w", err)
		}
	}
	for _, ln := range d.lanes {
		if err := ln.log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.ckptMu.Unlock()
	d.ckptWG.Wait() // let a straggler auto-checkpoint goroutine observe closed
	d.ckptMu.Lock()
	if err := d.tree.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Crash abandons the store the way a crash would: no final checkpoint, no
// fsync — buffered WAL records are handed to the OS and the process-level
// state is dropped. For crash tests and the durability example; real
// shutdowns use Close.
func (d *Tree) Crash() error {
	if !d.closed.CompareAndSwap(false, true) {
		return errClosed
	}
	var err error
	for _, ln := range d.lanes {
		if cerr := ln.log.CloseDirty(); cerr != nil && err == nil {
			err = cerr
		}
	}
	d.ckptWG.Wait()
	d.tree.Close()
	return err
}
