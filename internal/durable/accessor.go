package durable

import (
	"fmt"

	bst "repro"
	"repro/internal/wal"
)

// Accessor is the durable per-goroutine fast path: every mutation follows
// the same stripe-serialized log-before-ack protocol as the Tree-level
// methods, and batches amortize the fsync wait — all of a batch's records
// are enqueued while the stripes are held, then one Wait per touched WAL
// lane covers the whole batch (group commits fsync in sequence order
// within a lane, so a lane's last record durable implies every earlier
// one is; an unsharded store has one lane and pays exactly one wait).
type accessor struct {
	d     *Tree
	inner bst.Accessor

	// Batch scratch, reused across calls: the newest ticket and an error
	// slot per lane. laneErr is nil-filled after each use.
	lastTickets []wal.Ticket
	laneErr     []error
}

// NewAccessor returns a durable per-goroutine fast path. Like
// bst.Tree.NewAccessor, the result must not be shared between goroutines.
func (d *Tree) NewAccessor() bst.Accessor {
	return &accessor{d: d, inner: d.tree.NewAccessor()}
}

func (a *accessor) Insert(key int64) bool {
	ok, err := a.d.apply(opInsert, key, func() (bool, error) { return a.inner.Insert(key), nil })
	if err != nil {
		panic(err)
	}
	return ok
}

func (a *accessor) TryInsert(key int64) (bool, error) {
	return a.d.apply(opInsert, key, func() (bool, error) { return a.inner.TryInsert(key) })
}

func (a *accessor) Delete(key int64) bool {
	ok, err := a.d.apply(opDelete, key, func() (bool, error) { return a.inner.Delete(key), nil })
	if err != nil {
		panic(err)
	}
	return ok
}

func (a *accessor) Contains(key int64) bool { return a.inner.Contains(key) }

// TryInsertTicket is TryInsert without the durability wait: the mutation
// is applied and its WAL record enqueued, and the returned ticket lets the
// caller batch one Wait over a whole window of operations (group commits
// fsync in sequence order, so waiting on a window's last ticket covers
// every earlier one). The caller must not acknowledge the operation before
// the ticket resolves.
func (a *accessor) TryInsertTicket(key int64) (bool, wal.Ticket, error) {
	return a.d.applyAsync(opInsert, key, func() (bool, error) { return a.inner.TryInsert(key) })
}

// DeleteTicket is Delete without the durability wait; see TryInsertTicket.
func (a *accessor) DeleteTicket(key int64) (bool, wal.Ticket, error) {
	return a.d.applyAsync(opDelete, key, func() (bool, error) { return a.inner.Delete(key), nil })
}

func (a *accessor) ContainsBatch(keys []int64, out []bst.OpResult) {
	a.inner.ContainsBatch(keys, out)
}

func (a *accessor) InsertBatch(keys []int64, out []bst.OpResult) {
	a.mutateBatch(opInsert, keys, out, a.inner.InsertBatch)
}

func (a *accessor) DeleteBatch(keys []int64, out []bst.OpResult) {
	a.mutateBatch(opDelete, keys, out, a.inner.DeleteBatch)
}

// mutateBatch applies one durable batch: lock every stripe the batch
// touches (in index order — deadlock-free by construction), run the inner
// batch, enqueue a WAL record per set-changing slot into its key's lane,
// release the stripes, then wait once per touched lane on that lane's
// newest ticket. Per-op linearizability is preserved (each slot is
// individually linearizable inside the inner batch, and its WAL record is
// ordered against all other ops on the same key by the stripe); the batch
// is still not atomic, exactly like the non-durable batch contract.
//
// Failure isolation: a WAL failure on one lane marks failed ONLY the
// set-changing slots whose keys route to that lane — sibling lanes' slots
// keep their acks (their group commits are independent), matching the
// per-op failure contract of the tree batches (ErrCapacity on one shard
// never poisons another shard's ops).
func (a *accessor) mutateBatch(op uint8, keys []int64, out []bst.OpResult, inner func([]int64, []bst.OpResult)) {
	if len(keys) == 0 {
		inner(keys, out) // let the inner batch enforce len(out) == len(keys)
		return
	}
	if a.d.fenceTerm.Load() != 0 {
		for i := range out[:len(keys)] {
			out[i] = bst.OpResult{Err: ErrFenced}
		}
		return
	}
	var touched [numStripes]bool
	for _, k := range keys {
		touched[stripeOf(k)] = true
	}
	for i := range touched {
		if touched[i] {
			a.d.stripes[i].Lock()
		}
	}
	inner(keys, out)
	nl := len(a.d.lanes)
	if cap(a.lastTickets) < nl {
		a.lastTickets = make([]wal.Ticket, nl)
		a.laneErr = make([]error, nl)
	}
	last := a.lastTickets[:nl]
	var logged int64
	for i, k := range keys {
		if out[i].Err == nil && out[i].OK {
			l := a.d.laneOf(k)
			last[l] = a.d.lanes[l].log.Enqueue(op, k)
			logged++
		}
	}
	for i := range touched {
		if touched[i] {
			a.d.stripes[i].Unlock()
		}
	}
	if logged == 0 {
		return
	}
	laneErr := a.laneErr[:nl]
	anyErr := false
	for l := range last {
		if last[l].Empty() {
			continue
		}
		if _, err := last[l].Wait(); err != nil {
			// Durability unknown for this lane's set-changing slots: report
			// them failed, matching the single-op behavior on WAL failure.
			laneErr[l] = fmt.Errorf("durable: %w", err)
			anyErr = true
		}
		last[l] = wal.Ticket{}
	}
	if anyErr {
		for i, k := range keys {
			if out[i].Err == nil && out[i].OK {
				if werr := laneErr[a.d.laneOf(k)]; werr != nil {
					out[i].OK = false
					out[i].Err = werr
					logged--
				}
			}
		}
		for l := range laneErr {
			laneErr[l] = nil
		}
	}
	if logged > 0 {
		a.d.noteMutations(logged)
	}
}

func (a *accessor) Close() error { return a.inner.Close() }
