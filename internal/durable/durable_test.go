package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	bst "repro"
	"repro/internal/metrics"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

func openT(t *testing.T, dir string, opts Options) *Tree {
	t.Helper()
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return d
}

// keysOf collects the full key set via the concurrent scan.
func keysOf(d *Tree) []int64 {
	var out []int64
	d.Scan(-1<<62, bst.MaxKey, func(k int64) bool { out = append(out, k); return true })
	return out
}

func TestCleanCloseRecovers(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, Options{Sync: wal.SyncFsync})
	for i := int64(0); i < 100; i++ {
		if !d.Insert(i * 3) {
			t.Fatalf("Insert(%d) = false", i*3)
		}
	}
	if !d.Delete(30) {
		t.Fatal("Delete(30) = false")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d = openT(t, dir, Options{Sync: wal.SyncFsync})
	defer d.Close()
	rs := d.RecoveryStats()
	// Close checkpoints, so recovery is pure snapshot load: 99 keys, no
	// replay.
	if rs.SnapshotKeys != 99 || rs.ReplayedOps != 0 {
		t.Fatalf("RecoveryStats = %+v, want 99 snapshot keys and 0 replayed", rs)
	}
	if d.Len() != 99 || d.Contains(30) || !d.Contains(33) {
		t.Fatalf("state wrong after recovery: len=%d", d.Len())
	}
}

func TestCrashRecoversFromWALAlone(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, Options{Sync: wal.SyncFsync})
	d.Insert(1)
	d.Insert(2)
	d.Delete(1)
	d.Insert(3)
	if err := d.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	d = openT(t, dir, Options{Sync: wal.SyncFsync})
	defer d.Close()
	rs := d.RecoveryStats()
	if rs.SnapshotKeys != 0 || rs.ReplayedOps != 4 {
		t.Fatalf("RecoveryStats = %+v, want 0 snapshot keys and 4 replayed ops", rs)
	}
	if got := keysOf(d); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("recovered keys = %v, want [2 3]", got)
	}
}

func TestSnapshotPlusTailReplay(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, Options{Sync: wal.SyncFsync})
	for i := int64(0); i < 50; i++ {
		d.Insert(i)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Tail: mutations after the horizon, including reversals of
	// checkpointed state.
	d.Delete(10)
	d.Insert(100)
	d.Delete(100)
	d.Insert(101)
	if err := d.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	d = openT(t, dir, Options{Sync: wal.SyncFsync})
	defer d.Close()
	rs := d.RecoveryStats()
	if rs.SnapshotKeys != 50 {
		t.Fatalf("SnapshotKeys = %d, want 50", rs.SnapshotKeys)
	}
	if rs.ReplayedOps != 4 {
		t.Fatalf("ReplayedOps = %d, want 4", rs.ReplayedOps)
	}
	if d.Contains(10) || d.Contains(100) || !d.Contains(101) || !d.Contains(49) {
		t.Fatal("tail replay produced wrong state")
	}
	if d.Len() != 50 { // 50 - delete(10) + insert(101)
		t.Fatalf("Len = %d, want 50", d.Len())
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, Options{Sync: wal.SyncFsync})
	for i := int64(0); i < 20; i++ {
		d.Insert(i)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	d.Insert(1000)
	if err := d.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	// A corrupt snapshot claiming a newer horizon must be skipped in favor
	// of the valid one.
	bogus := filepath.Join(dir, "snap-00000000ffffffff.bst")
	if err := os.WriteFile(bogus, []byte("BSTSNAP1 this is not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	d = openT(t, dir, Options{Sync: wal.SyncFsync})
	defer d.Close()
	rs := d.RecoveryStats()
	if rs.CorruptSnapshots != 1 {
		t.Fatalf("CorruptSnapshots = %d, want 1", rs.CorruptSnapshots)
	}
	if rs.SnapshotKeys != 20 || rs.ReplayedOps != 1 {
		t.Fatalf("RecoveryStats = %+v, want 20 keys + 1 replayed", rs)
	}
	if !d.Contains(1000) || d.Len() != 21 {
		t.Fatalf("fallback recovery wrong: len=%d", d.Len())
	}
}

func TestCheckpointGCsWALSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so the workload rotates several times.
	d := openT(t, dir, Options{Sync: wal.SyncFsync, SegmentBytes: 512})
	for i := int64(0); i < 200; i++ {
		d.Insert(i)
	}
	before := d.WALStats().Segments
	if before < 2 {
		t.Fatalf("expected multiple segments, got %d", before)
	}
	stats, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if stats.SegmentsGC == 0 {
		t.Fatal("checkpoint GC'd no WAL segments")
	}
	if after := d.WALStats().Segments; after >= before {
		t.Fatalf("segments did not shrink: %d → %d", before, after)
	}
	// Two checkpoints: the second supersedes the first's snapshot.
	d.Insert(1000)
	stats2, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint 2: %v", err)
	}
	if stats2.SnapshotsGC == 0 {
		t.Fatal("second checkpoint did not GC the first snapshot")
	}
	snaps, _ := snapshot.List(dir)
	if len(snaps) != 1 {
		t.Fatalf("want exactly 1 snapshot after GC, got %d", len(snaps))
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// And the GC'd log still recovers correctly (seq floor prevents reuse).
	d = openT(t, dir, Options{Sync: wal.SyncFsync})
	defer d.Close()
	if d.Len() != 201 {
		t.Fatalf("Len after GC+recover = %d, want 201", d.Len())
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, Options{Sync: wal.SyncNone, CheckpointEvery: 100})
	for i := int64(0); i < 350; i++ {
		d.Insert(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.snapshots.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no automatic checkpoint within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestBatchDurability(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, Options{Sync: wal.SyncFsync})
	acc := d.NewAccessor()
	keys := make([]int64, 500)
	out := make([]bst.OpResult, len(keys))
	for i := range keys {
		keys[i] = int64(i)
	}
	acc.InsertBatch(keys, out)
	for i := range out {
		if out[i].Err != nil || !out[i].OK {
			t.Fatalf("InsertBatch[%d] = %+v", i, out[i])
		}
	}
	// Second insert of the same keys: no slot changes the set, nothing new
	// must be logged.
	logged := d.WALStats().Appends
	acc.InsertBatch(keys, out)
	for i := range out {
		if out[i].Err != nil || out[i].OK {
			t.Fatalf("re-InsertBatch[%d] = %+v, want OK=false", i, out[i])
		}
	}
	if got := d.WALStats().Appends; got != logged {
		t.Fatalf("idempotent batch logged %d new records", got-logged)
	}
	acc.DeleteBatch(keys[:100], out[:100])
	if err := acc.Close(); err != nil {
		t.Fatalf("acc.Close: %v", err)
	}
	if err := d.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	d = openT(t, dir, Options{Sync: wal.SyncFsync})
	defer d.Close()
	if d.Len() != 400 || d.Contains(50) || !d.Contains(450) {
		t.Fatalf("batch recovery wrong: len=%d", d.Len())
	}
}

// TestConcurrentMixedWorkloadRecovers hammers one key range from many
// goroutines (singles and batches, inserts and deletes), then crashes and
// verifies the recovered state matches the tree's final pre-crash state —
// the per-key stripe ordering guarantee, under the race detector.
func TestConcurrentMixedWorkloadRecovers(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, Options{Sync: wal.SyncFsync})
	const (
		workers = 8
		iters   = 150
		keySpan = 64 // small: force same-key contention
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := d.NewAccessor()
			defer acc.Close()
			keys := make([]int64, 8)
			out := make([]bst.OpResult, 8)
			for i := 0; i < iters; i++ {
				k := int64((w*31 + i*17) % keySpan)
				switch i % 4 {
				case 0:
					acc.Insert(k)
				case 1:
					acc.Delete(k)
				case 2:
					for j := range keys {
						keys[j] = int64((w + i + j) % keySpan)
					}
					acc.InsertBatch(keys, out)
				default:
					for j := range keys {
						keys[j] = int64((w + i + j*3) % keySpan)
					}
					acc.DeleteBatch(keys, out)
				}
			}
		}(w)
	}
	wg.Wait()
	want := keysOf(d)
	if err := d.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	d = openT(t, dir, Options{Sync: wal.SyncFsync})
	defer d.Close()
	got := keysOf(d)
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d\n got %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBulkLoadBalancedShapes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 1023, 1024, 1025, 5000} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			keys := make([]int64, n)
			for i := range keys {
				keys[i] = int64(i * 2)
			}
			tree := bst.New()
			defer tree.Close()
			if err := bulkLoadBalanced(tree, keys); err != nil {
				t.Fatalf("bulkLoadBalanced: %v", err)
			}
			if tree.Len() != n {
				t.Fatalf("Len = %d, want %d", tree.Len(), n)
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			i := 0
			tree.Ascend(func(k int64) bool {
				if k != int64(i*2) {
					t.Fatalf("key %d = %d, want %d", i, k, i*2)
				}
				i++
				return true
			})
		})
	}
}

func TestMetricsHook(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, Options{Sync: wal.SyncFsync})
	defer d.Close()
	for i := int64(0); i < 10; i++ {
		d.Insert(i)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	reg := metrics.NewRegistry(0)
	reg.AddHook(d.MetricsHook)
	s := reg.Snapshot()
	if s.External["wal_append_total"] != 10 {
		t.Fatalf("wal_append_total = %d, want 10", s.External["wal_append_total"])
	}
	if s.External["wal_fsync_total"] == 0 {
		t.Fatal("wal_fsync_total = 0")
	}
	if s.External["snapshots_total"] != 1 || s.External["snapshot_keys_total"] != 10 {
		t.Fatalf("snapshot counters wrong: %v", s.External)
	}
	if s.ExternalLatency["wal_fsync_seconds"].Count == 0 {
		t.Fatal("wal_fsync_seconds histogram empty")
	}
	if s.ExternalLatency["snapshot_duration_seconds"].Count != 1 {
		t.Fatal("snapshot_duration_seconds histogram missing the checkpoint")
	}
	if s.Gauges["wal_last_seq"] != 10 || s.Gauges["checkpoint_backlog_ops"] != 0 {
		t.Fatalf("gauges wrong: %v", s.Gauges)
	}
}

func TestOpsAfterCloseFail(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, Options{Sync: wal.SyncNone})
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Close(); !errors.Is(err, errClosed) {
		t.Fatalf("second Close = %v, want errClosed", err)
	}
	if _, err := d.Checkpoint(); !errors.Is(err, errClosed) {
		t.Fatalf("Checkpoint after Close = %v, want errClosed", err)
	}
}

func TestTryInsertOutOfRange(t *testing.T) {
	dir := t.TempDir()
	d := openT(t, dir, Options{Sync: wal.SyncNone})
	defer d.Close()
	if _, err := d.TryInsert(bst.MaxKey + 1); !errors.Is(err, bst.ErrKeyOutOfRange) {
		t.Fatalf("TryInsert(MaxKey+1) = %v, want ErrKeyOutOfRange", err)
	}
	if got := d.WALStats().Appends; got != 0 {
		t.Fatalf("failed insert logged %d records", got)
	}
}
