package hjbst

import (
	"testing"

	"repro/internal/keys"
)

// TestHelpingCompletesStalledChildCAS simulates a process that wins the
// CHILDCAS flag for an insert and stalls before swinging the child pointer
// or releasing the node. The next traversal through the flagged node must
// complete both steps on its behalf.
func TestHelpingCompletesStalledChildCAS(t *testing.T) {
	tr := New()
	h := tr.NewHandle()
	for _, k := range []int64{50, 25, 75} {
		h.Insert(keys.Map(k))
	}

	// Manually install (but do not execute) an insert's ChildCASOp.
	newKey := keys.Map(60)
	res, _, _, curr, currOp := h.find(newKey, tr.root, true)
	if res == found {
		t.Fatal("setup: key already present")
	}
	nn := newNode(newKey)
	isLeft := res == notFoundL
	var old *node
	if isLeft {
		old = curr.left.Load()
	} else {
		old = curr.right.Load()
	}
	op := &childCASOp{isLeft: isLeft, expected: old, update: nn}
	op.flagged = &opRef{kind: kindChildCAS, cc: op}
	op.done = &opRef{kind: kindNone, cc: op}
	if !curr.op.CompareAndSwap(currOp, op.flagged) {
		t.Fatal("setup: flag CAS failed")
	}
	// ... and stall.

	// Any find that traverses the flagged node helps: a search for the new
	// key must observe the completed insert.
	h2 := tr.NewHandle()
	if !h2.Search(newKey) {
		t.Fatal("stalled insert not completed by a helping search")
	}
	if h2.Stats.Helps == 0 {
		t.Fatal("search did not help the stalled child CAS")
	}
	if curr.op.Load() != op.done {
		t.Fatal("flagged node not released after helping")
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestHelpingCompletesStalledRelocation installs a RelocateOp on a
// successor node (the first step of a two-child delete) and stalls. A
// traversal bumping into the successor must drive the relocation to its
// decision and apply the key replacement.
func TestHelpingCompletesStalledRelocation(t *testing.T) {
	tr := New()
	h := tr.NewHandle()
	for _, k := range []int64{50, 25, 75, 60, 90} {
		h.Insert(keys.Map(k))
	}

	// Target 50: two children. Successor in its right subtree is 60.
	target := keys.Map(50)
	res, _, _, curr, currOp := h.find(target, tr.root, true)
	if res != found {
		t.Fatal("setup: target not found")
	}
	if curr.left.Load() == nil || curr.right.Load() == nil {
		t.Fatal("setup: target does not have two children")
	}
	res2, _, _, replace, replaceOp := h.find(target, curr, false)
	if res2 == abort {
		t.Fatal("setup: successor find aborted")
	}
	ro := &relocateOp{dest: curr, destOp: currOp, removeKey: target, replaceKey: replace.key.Load()}
	ro.relocRef = &opRef{kind: kindRelocate, ro: ro}
	ro.doneRef = &opRef{kind: kindNone, ro: ro}
	ro.markRef = &opRef{kind: kindMark, ro: ro}
	if !replace.op.CompareAndSwap(replaceOp, ro.relocRef) {
		t.Fatal("setup: relocation install failed")
	}
	// ... and stall: the destination still holds the old key. The delete
	// has not linearized yet (that happens when the relocation is installed
	// on the destination), so the target is still — correctly — visible.
	if !tr.Search(target) {
		t.Fatal("target invisible before the relocation decided")
	}

	// A traversal through the successor node must help: it drives the
	// relocation to SUCCESSFUL, swaps the destination's key, marks the
	// successor and splices it out.
	h2 := tr.NewHandle()
	if !h2.Search(keys.Map(60)) {
		t.Fatal("successor key lost during helped relocation")
	}
	if h2.Stats.Helps == 0 {
		t.Fatal("search through the successor did not help the relocation")
	}
	if tr.Search(target) {
		t.Fatal("deleted key still visible after helped relocation")
	}
	// The successor key must have moved into the destination node.
	if curr.key.Load() != keys.Map(60) {
		t.Fatalf("destination key = %#x, want key 60", curr.key.Load())
	}
	for _, k := range []int64{25, 75, 60, 90} {
		if !tr.Search(keys.Map(k)) {
			t.Fatalf("key %d lost during helped relocation", k)
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}
