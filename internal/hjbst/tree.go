// Package hjbst implements the lock-free *internal* binary search tree of
// Howley and Jones ("A Non-Blocking Internal Binary Search Tree",
// SPAA 2012) — the HJ-BST baseline of the paper's evaluation.
//
// Keys are stored in every node (internal representation), so searches
// terminate as soon as the key is met — on average earlier than in an
// external tree. The price is paid by deletes: removing a node with two
// children *relocates* the key of its in-subtree successor into it, an
// operation coordinated by a RelocateOp record and up to 9 atomic
// instructions (Table 1 of the NM paper), versus 3 for NM-BST.
//
// Coordination uses per-node operation records: each node's op field holds
// an immutable reference {kind, record} where kind is NONE, CHILDCAS,
// RELOCATE or MARK. Installing a record "locks" the node lock-freely;
// any operation that encounters a non-NONE op helps it complete first.
//
// Adaptation notes (C original → Go): the original packs the operation
// state into pointer low bits; here an opRef record carries the kind, and
// all helpers CAS toward pre-created shared refs so record identity
// replaces packed-word equality. The node key must be mutable (relocation
// overwrites it), so it is atomic. Key values at a node only ever increase
// (a relocation installs the in-order successor), which rules out ABA on
// the key CAS.
package hjbst

import (
	"fmt"
	"sync/atomic"

	"repro/internal/keys"
)

type opKind uint8

const (
	kindNone     opKind = iota // no operation in progress
	kindChildCAS               // a child pointer is being swung
	kindRelocate               // the node's key is being replaced
	kindMark                   // the node is logically deleted (permanent)
)

// opRef is the immutable {kind, record} value stored in a node's op field.
type opRef struct {
	kind opKind
	cc   *childCASOp
	ro   *relocateOp
}

// noneRef is the shared initial op of every node.
var noneRef = &opRef{kind: kindNone}

type node struct {
	key   atomic.Uint64 // mutable: relocation replaces it (monotonically up)
	op    atomic.Pointer[opRef]
	left  atomic.Pointer[node]
	right atomic.Pointer[node]
}

func newNode(key uint64) *node {
	n := &node{}
	n.key.Store(key)
	n.op.Store(noneRef)
	return n
}

// childCASOp records an in-progress child-pointer swing on a flagged node.
type childCASOp struct {
	isLeft           bool
	expected, update *node
	flagged, done    *opRef // shared CAS targets for all helpers
}

// Relocation states.
const (
	stOngoing int32 = iota
	stSuccessful
	stFailed
)

// relocateOp coordinates replacing dest's key with the successor's key and
// deleting the successor node.
type relocateOp struct {
	state                 atomic.Int32
	dest                  *node
	destOp                *opRef
	removeKey, replaceKey uint64
	relocRef, doneRef     *opRef // shared CAS targets
	markRef               *opRef
}

// Stats counts work performed through a Handle (single-goroutine).
type Stats struct {
	Searches, Inserts, Deletes uint64
	CASSucceeded, CASFailed    uint64
	NodesAlloc, OpAlloc        uint64
	RefsAlloc                  uint64 // opRef wrappers (Go boxing of C's flag bits)
	Helps, FindRestarts        uint64
	Relocations                uint64
}

// Atomics returns total CAS attempts (Table 1's atomic instruction count).
func (s *Stats) Atomics() uint64 { return s.CASSucceeded + s.CASFailed }

// Tree is the HJ lock-free internal BST.
type Tree struct {
	root *node // sentinel: key ∞₂; the user tree hangs off root.right
}

// New creates an empty tree.
func New() *Tree {
	return &Tree{root: newNode(keys.Inf2)}
}

// Handle is a per-goroutine accessor carrying statistics.
type Handle struct {
	t     *Tree
	Stats Stats
}

// NewHandle returns a per-goroutine accessor.
func (t *Tree) NewHandle() *Handle { return &Handle{t: t} }

// Convenience methods on Tree.

// Search reports whether key is present.
func (t *Tree) Search(key uint64) bool { h := Handle{t: t}; return h.Search(key) }

// Insert adds key if absent.
func (t *Tree) Insert(key uint64) bool { h := Handle{t: t}; return h.Insert(key) }

// Delete removes key if present.
func (t *Tree) Delete(key uint64) bool { h := Handle{t: t}; return h.Delete(key) }

// findResult classifies where a traversal for a key ended.
type findResult uint8

const (
	found     findResult = iota
	notFoundL            // key absent; would be pred's/curr's left child
	notFoundR            // key absent; would be curr's right child
	abort                // subtree root was busy (non-root aux traversals only)
)

func (h *Handle) cas(won bool) bool {
	if won {
		h.Stats.CASSucceeded++
	} else {
		h.Stats.CASFailed++
	}
	return won
}

// find traverses for key starting at auxRoot, returning the final node and
// its pred along with the op values read. It helps any operation it
// bumps into and restarts, and validates the last right-turn node so a
// concurrent relocation cannot hide the key.
func (h *Handle) find(key uint64, auxRoot *node, isRoot bool) (res findResult, pred *node, predOp *opRef, curr *node, currOp *opRef) {
retry:
	res = notFoundR
	pred, predOp = nil, nil
	curr = auxRoot
	currOp = curr.op.Load()
	if currOp.kind != kindNone {
		if isRoot {
			// The root only ever carries child-CAS operations.
			h.Stats.Helps++
			h.helpChildCAS(currOp.cc, curr)
			goto retry
		}
		return abort, nil, nil, nil, nil
	}
	next := curr.right.Load()
	lastRight, lastRightOp := curr, currOp
	for next != nil {
		pred, predOp = curr, currOp
		curr = next
		currOp = curr.op.Load()
		if currOp.kind != kindNone {
			h.Stats.Helps++
			h.help(pred, predOp, curr, currOp)
			h.Stats.FindRestarts++
			goto retry
		}
		ck := curr.key.Load()
		switch {
		case key < ck:
			res = notFoundL
			next = curr.left.Load()
		case key > ck:
			res = notFoundR
			next = curr.right.Load()
			lastRight, lastRightOp = curr, currOp
		default:
			res = found
			next = nil
		}
	}
	if res != found && lastRightOp != lastRight.op.Load() {
		h.Stats.FindRestarts++
		goto retry
	}
	if curr.op.Load() != currOp {
		h.Stats.FindRestarts++
		goto retry
	}
	return res, pred, predOp, curr, currOp
}

// Search reports whether key is present.
func (h *Handle) Search(key uint64) bool {
	res, _, _, _, _ := h.find(key, h.t.root, true)
	h.Stats.Searches++
	return res == found
}

// Insert adds key if absent: install a ChildCASOp on the would-be parent,
// then swing the child pointer and release — 3 CAS when uncontended.
func (h *Handle) Insert(key uint64) bool {
	t := h.t
	for {
		res, _, _, curr, currOp := h.find(key, t.root, true)
		if res == found {
			h.Stats.Inserts++
			return false
		}
		nn := newNode(key)
		h.Stats.NodesAlloc++
		isLeft := res == notFoundL
		var old *node
		if isLeft {
			old = curr.left.Load()
		} else {
			old = curr.right.Load()
		}
		op := &childCASOp{isLeft: isLeft, expected: old, update: nn}
		op.flagged = &opRef{kind: kindChildCAS, cc: op}
		op.done = &opRef{kind: kindNone, cc: op}
		h.Stats.OpAlloc++
		h.Stats.RefsAlloc += 2
		if h.cas(curr.op.CompareAndSwap(currOp, op.flagged)) {
			h.helpChildCAS(op, curr)
			h.Stats.Inserts++
			return true
		}
	}
}

// Delete removes key if present. A node with at most one child is marked
// and spliced; a node with two children has its successor's key relocated
// into it and the successor removed.
func (h *Handle) Delete(key uint64) bool {
	t := h.t
	for {
		res, pred, predOp, curr, currOp := h.find(key, t.root, true)
		if res != found {
			h.Stats.Deletes++
			return false
		}
		if curr.right.Load() == nil || curr.left.Load() == nil {
			// At most one child: mark (permanent), then splice out.
			markRef := &opRef{kind: kindMark}
			h.Stats.RefsAlloc++
			if h.cas(curr.op.CompareAndSwap(currOp, markRef)) {
				h.helpMarked(pred, predOp, curr)
				h.Stats.Deletes++
				return true
			}
		} else {
			// Two children: relocate the successor's key into curr.
			res2, spred, spredOp, replace, replaceOp := h.find(key, curr, false)
			if res2 == abort || curr.op.Load() != currOp {
				continue
			}
			ro := &relocateOp{dest: curr, destOp: currOp, removeKey: key, replaceKey: replace.key.Load()}
			ro.relocRef = &opRef{kind: kindRelocate, ro: ro}
			ro.doneRef = &opRef{kind: kindNone, ro: ro}
			ro.markRef = &opRef{kind: kindMark, ro: ro}
			h.Stats.OpAlloc++
			h.Stats.RefsAlloc += 3
			if h.cas(replace.op.CompareAndSwap(replaceOp, ro.relocRef)) {
				h.Stats.Relocations++
				if h.helpRelocate(ro, spred, spredOp, replace) {
					h.Stats.Deletes++
					return true
				}
			}
		}
	}
}

// help dispatches on the operation found installed on curr.
func (h *Handle) help(pred *node, predOp *opRef, curr *node, currOp *opRef) {
	switch currOp.kind {
	case kindChildCAS:
		h.helpChildCAS(currOp.cc, curr)
	case kindRelocate:
		h.helpRelocate(currOp.ro, pred, predOp, curr)
	case kindMark:
		h.helpMarked(pred, predOp, curr)
	}
}

// helpChildCAS completes an installed child swing: apply it, then release
// the node back to NONE.
func (h *Handle) helpChildCAS(op *childCASOp, dest *node) {
	var f *atomic.Pointer[node]
	if op.isLeft {
		f = &dest.left
	} else {
		f = &dest.right
	}
	h.cas(f.CompareAndSwap(op.expected, op.update))
	h.cas(dest.op.CompareAndSwap(op.flagged, op.done))
}

// helpMarked splices a marked node out: its single child (or nil) replaces
// it in its parent via a fresh ChildCASOp on the parent.
func (h *Handle) helpMarked(pred *node, predOp *opRef, curr *node) {
	var newRef *node
	if l := curr.left.Load(); l != nil {
		newRef = l
	} else {
		newRef = curr.right.Load()
	}
	op := &childCASOp{isLeft: curr == pred.left.Load(), expected: curr, update: newRef}
	op.flagged = &opRef{kind: kindChildCAS, cc: op}
	op.done = &opRef{kind: kindNone, cc: op}
	h.Stats.OpAlloc++
	h.Stats.RefsAlloc += 2
	if h.cas(pred.op.CompareAndSwap(predOp, op.flagged)) {
		h.helpChildCAS(op, pred)
	}
}

// helpRelocate drives a relocation to its decision point and applies the
// consequences: on success dest's key becomes replaceKey and the successor
// node (curr) is marked and spliced; on failure the successor is released.
func (h *Handle) helpRelocate(op *relocateOp, pred *node, predOp *opRef, curr *node) bool {
	seenState := op.state.Load()
	if seenState == stOngoing {
		// Try to install the relocation on the destination.
		var seenOp *opRef
		if h.cas(op.dest.op.CompareAndSwap(op.destOp, op.relocRef)) {
			seenOp = op.destOp
		} else {
			seenOp = op.dest.op.Load()
		}
		if seenOp == op.destOp || seenOp == op.relocRef {
			op.state.CompareAndSwap(stOngoing, stSuccessful)
			seenState = stSuccessful
		} else {
			op.state.CompareAndSwap(stOngoing, stFailed)
			seenState = op.state.Load()
		}
	}
	if seenState == stSuccessful {
		h.cas(op.dest.key.CompareAndSwap(op.removeKey, op.replaceKey))
		h.cas(op.dest.op.CompareAndSwap(op.relocRef, op.doneRef))
	}
	result := seenState == stSuccessful
	if op.dest == curr {
		return result
	}
	var release *opRef
	if result {
		release = op.markRef
	} else {
		release = op.doneRef
	}
	h.cas(curr.op.CompareAndSwap(op.relocRef, release))
	if result {
		h.helpMarked(pred, predOp, curr)
	}
	return result
}

// ---- quiescent inspection ----

// Size counts stored user keys (quiescent only).
func (t *Tree) Size() int {
	n := 0
	t.Keys(func(uint64) bool { n++; return true })
	return n
}

// SpaceStats reports reachable-node accounting (quiescent): marked zombie
// nodes can linger until a later traversal splices them.
type SpaceStats struct {
	LiveKeys    int
	ZombieNodes int
	TotalNodes  int
}

// Space computes SpaceStats by walking the tree (quiescent only).
func (t *Tree) Space() SpaceStats {
	var s SpaceStats
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		s.TotalNodes++
		if t.root != n {
			if n.op.Load().kind == kindMark {
				s.ZombieNodes++
			} else {
				s.LiveKeys++
			}
		}
		walk(n.left.Load())
		walk(n.right.Load())
	}
	walk(t.root.right.Load())
	s.TotalNodes++ // the sentinel root
	return s
}

// Keys visits user keys in ascending order (quiescent only).
func (t *Tree) Keys(yield func(uint64) bool) {
	if r := t.root.right.Load(); r != nil {
		t.visit(r, yield)
	}
}

// visit walks in order. Marked nodes are physically present but logically
// deleted (a relocation or an unlucky splice can leave them behind; any
// later traversal that bumps into one helps remove it), so their keys are
// skipped while their children — at most one — are still descended.
func (t *Tree) visit(n *node, yield func(uint64) bool) bool {
	marked := n.op.Load().kind == kindMark
	if l := n.left.Load(); l != nil && !t.visit(l, yield) {
		return false
	}
	if k := n.key.Load(); !marked && !keys.IsSentinel(k) && !yield(k) {
		return false
	}
	if r := n.right.Load(); r != nil && !t.visit(r, yield) {
		return false
	}
	return true
}

// Audit validates internal-BST invariants (quiescent only): strict key
// ordering of live nodes within bounds, at most one child per marked
// (zombie) node, and no transient operation records left on reachable
// nodes. Marked leftovers are legal: deletes return once the logical
// removal is durable; the physical splice may be finished by later
// operations.
func (t *Tree) Audit() error {
	if k := t.root.key.Load(); k != keys.Inf2 {
		return fmt.Errorf("root key corrupted: %#x", k)
	}
	if l := t.root.left.Load(); l != nil {
		return fmt.Errorf("root grew a left child")
	}
	r := t.root.right.Load()
	if r == nil {
		return nil
	}
	return t.audit(r, 0, keys.Inf2-1)
}

func (t *Tree) audit(n *node, lo, hi uint64) error {
	k := n.key.Load()
	op := n.op.Load()
	switch op.kind {
	case kindNone:
		if k < lo || k > hi {
			return fmt.Errorf("key %#x outside [%#x, %#x]", k, lo, hi)
		}
	case kindMark:
		// A zombie's key is a duplicate of a relocated live key; it no
		// longer participates in ordering but must still route its (single)
		// child consistently.
		l, r := n.left.Load(), n.right.Load()
		if l != nil && r != nil {
			return fmt.Errorf("marked node %#x has two children", k)
		}
	default:
		return fmt.Errorf("reachable node %#x has transient op kind %d in quiescent tree", k, op.kind)
	}
	if l := n.left.Load(); l != nil {
		hiL := hi
		if k != 0 && k-1 < hiL {
			hiL = k - 1
		}
		if err := t.audit(l, lo, hiL); err != nil {
			return err
		}
	}
	if r := n.right.Load(); r != nil {
		loR := lo
		if k+1 > loR {
			loR = k + 1
		}
		if err := t.audit(r, loR, hi); err != nil {
			return err
		}
	}
	return nil
}
