package hjbst_test

import (
	"testing"

	"repro/internal/hjbst"
	"repro/internal/keys"
	"repro/internal/settest"
)

func TestConformance(t *testing.T) {
	settest.Run(t, func(capacity int) settest.Set {
		return hjbst.New()
	})
}

// TestTable1Counts verifies the HJ row of Table 1: insert allocates 2
// objects (node + ChildCASOp) and executes 3 atomics; an uncontended delete
// executes up to 9 atomics.
func TestTable1Counts(t *testing.T) {
	tr := hjbst.New()
	h := tr.NewHandle()
	for _, k := range []int64{50, 25, 75, 30, 60, 80} {
		h.Insert(keys.Map(k))
	}

	before := h.Stats
	if !h.Insert(keys.Map(55)) {
		t.Fatal("insert failed")
	}
	d := h.Stats
	if got := d.NodesAlloc + d.OpAlloc - before.NodesAlloc - before.OpAlloc; got != 2 {
		t.Fatalf("uncontended insert allocated %d objects, Table 1 says 2", got)
	}
	if got := d.Atomics() - before.Atomics(); got != 3 {
		t.Fatalf("uncontended insert executed %d atomics, Table 1 says 3", got)
	}

	// Delete a node with two children (50 has 25/30 and 75/...): the
	// relocation path, up to 9 atomics.
	before = h.Stats
	if !h.Delete(keys.Map(50)) {
		t.Fatal("delete failed")
	}
	d = h.Stats
	if got := d.Atomics() - before.Atomics(); got < 4 || got > 9 {
		t.Fatalf("uncontended two-child delete executed %d atomics, Table 1 says up to 9", got)
	}

	// Delete a leaf: the cheap path (mark + parent flag + child CAS + release).
	before = h.Stats
	if !h.Delete(keys.Map(80)) {
		t.Fatal("leaf delete failed")
	}
	d = h.Stats
	if got := d.Atomics() - before.Atomics(); got < 3 || got > 9 {
		t.Fatalf("uncontended leaf delete executed %d atomics, want 3..9", got)
	}
}

func TestInternalRepresentationRelocation(t *testing.T) {
	// Deleting a two-child node must keep all other keys reachable — the
	// successor's key moves up into the deleted node's position.
	tr := hjbst.New()
	ks := []int64{50, 25, 75, 10, 30, 60, 90, 55, 65}
	for _, k := range ks {
		if !tr.Insert(keys.Map(k)) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if !tr.Delete(keys.Map(50)) {
		t.Fatal("delete of two-child root failed")
	}
	if tr.Search(keys.Map(50)) {
		t.Fatal("deleted key still present")
	}
	for _, k := range ks {
		if k == 50 {
			continue
		}
		if !tr.Search(keys.Map(k)) {
			t.Fatalf("key %d lost after relocation", k)
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Size(); got != len(ks)-1 {
		t.Fatalf("size = %d, want %d", got, len(ks)-1)
	}
}

func TestKeysOrdered(t *testing.T) {
	tr := hjbst.New()
	in := []int64{42, 17, 99, -5, 63, 0}
	for _, k := range in {
		tr.Insert(keys.Map(k))
	}
	var got []int64
	tr.Keys(func(u uint64) bool {
		got = append(got, keys.Unmap(u))
		return true
	})
	want := []int64{-5, 0, 17, 42, 63, 99}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration order %v, want %v", got, want)
		}
	}
}

func TestDeleteRootChain(t *testing.T) {
	// Repeatedly delete the minimum — exercises both delete paths and
	// relocations near the sentinel.
	tr := hjbst.New()
	const n = 200
	for i := int64(0); i < n; i++ {
		tr.Insert(keys.Map(i))
	}
	for i := int64(0); i < n; i++ {
		if !tr.Delete(keys.Map(i)) {
			t.Fatalf("delete min %d failed", i)
		}
		if err := tr.Audit(); err != nil {
			t.Fatalf("after deleting %d: %v", i, err)
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("size = %d", tr.Size())
	}
}
