package nmboxed

import (
	"sync/atomic"

	"repro/internal/keys"
)

// This file extends the boxed NM tree from a set to a dictionary with
// values. Values ride on leaves: a leaf's value is immutable for that
// leaf's lifetime, set before the leaf is published, so value reads need
// no synchronization beyond the edge load that reached the leaf.
//
// Updating the value of an existing key is leaf *replacement*: one CAS
// swings the parent's edge from the old leaf to a fresh leaf with the
// same key and the new value. This preserves every invariant the paper's
// proof relies on — keys of nodes never change, leaves stay leaves, a
// marked edge is never modified (a flagged leaf cannot be replaced; the
// upsert helps the delete and retries) — and linearizes at the CAS.

// GetKV returns the value stored at key.
func (h *Handle) GetKV(key uint64) (val any, ok bool) {
	h.seek(key)
	h.Stats.Searches++
	leaf := h.sr.leaf
	if leaf.key != key {
		return nil, false
	}
	return leaf.val, true
}

// InsertKV adds key with a value; it returns false (and stores nothing)
// if the key is already present.
func (h *Handle) InsertKV(key uint64, val any) bool {
	return h.insert(key, val)
}

// Upsert sets key's value unconditionally, returning true if the key was
// already present (its value was replaced) and false if it was inserted.
func (h *Handle) Upsert(key uint64, val any) (replaced bool) {
	for {
		h.seek(key)
		sr := &h.sr
		leaf := sr.leaf
		parent := sr.parent
		var childField *atomic.Pointer[edge]
		if key < parent.key {
			childField = &parent.left
		} else {
			childField = &parent.right
		}

		if leaf.key != key {
			// Absent: plain insert, but keep the already-performed seek by
			// attempting the link inline.
			if h.tryLink(key, val, sr, childField) {
				h.Stats.Inserts++
				return false
			}
			continue
		}

		// Present: replace the leaf. A marked edge means a delete owns the
		// leaf (or its parent); help it finish and retry — the upsert will
		// then insert the key fresh.
		le := sr.leafEdge
		if !le.marked() {
			repl := &node{key: key, val: val}
			h.Stats.NodesAlloc++
			h.Stats.EdgesAlloc++
			if childField.CompareAndSwap(le, &edge{child: repl}) {
				h.Stats.CASSucceeded++
				h.Stats.Inserts++
				return true
			}
			h.Stats.CASFailed++
		}
		w := childField.Load()
		if w != nil && w.child == leaf && w.marked() {
			h.Stats.HelpAttempts++
			h.cleanup(key, sr)
		}
	}
}

// tryLink attempts the insert execution phase once against the current
// seek record; the caller loops on failure (mirrors Insert's body).
func (h *Handle) tryLink(key uint64, val any, sr *seekRecord, childField *atomic.Pointer[edge]) bool {
	leaf := sr.leaf
	ni := &node{}
	nl := &node{key: key, val: val}
	h.Stats.NodesAlloc += 2
	if key < leaf.key {
		ni.key = leaf.key
		ni.left.Store(&edge{child: nl})
		ni.right.Store(&edge{child: leaf})
	} else {
		ni.key = key
		ni.left.Store(&edge{child: leaf})
		ni.right.Store(&edge{child: nl})
	}
	h.Stats.EdgesAlloc += 3

	le := sr.leafEdge
	if !le.marked() && childField.CompareAndSwap(le, &edge{child: ni}) {
		h.Stats.CASSucceeded++
		return true
	}
	h.Stats.CASFailed++
	w := childField.Load()
	if w != nil && w.child == leaf && w.marked() {
		h.Stats.HelpAttempts++
		h.cleanup(key, sr)
	}
	return false
}

// Tree-level conveniences.

// GetKV returns the value stored at key.
func (t *Tree) GetKV(key uint64) (any, bool) { h := Handle{t: t}; return h.GetKV(key) }

// InsertKV adds key with a value if absent.
func (t *Tree) InsertKV(key uint64, val any) bool { h := Handle{t: t}; return h.InsertKV(key, val) }

// Upsert sets key's value unconditionally; true if it replaced a value.
func (t *Tree) Upsert(key uint64, val any) bool { h := Handle{t: t}; return h.Upsert(key, val) }

// Items visits (key, value) pairs in ascending key order (quiescent only).
func (t *Tree) Items(yield func(key uint64, val any) bool) {
	t.visitItems(t.r, yield)
}

func (t *Tree) visitItems(n *node, yield func(uint64, any) bool) bool {
	le, re := n.left.Load(), n.right.Load()
	if le == nil && re == nil {
		if keys.IsSentinel(n.key) {
			return true
		}
		return yield(n.key, n.val)
	}
	if le != nil && le.child != nil && !t.visitItems(le.child, yield) {
		return false
	}
	if re != nil && re.child != nil && !t.visitItems(re.child, yield) {
		return false
	}
	return true
}
