package nmboxed

// The boxed variant gets the same exhaustive interleaving treatment as the
// packed tree (see internal/core/schedule_test.go): its CAS compares edge
// *identity* rather than packed value, and its BTS is a CAS loop, so its
// race surface is subtly different and deserves independent coverage.

import (
	"testing"

	"repro/internal/check"
	"repro/internal/keys"
	"repro/internal/settest"
	"repro/internal/trace"
	"repro/internal/workload"
)

type opSpec struct {
	kind workload.OpKind
	key  int64
}

type scenario struct {
	name  string
	setup []int64
	ops   []opSpec
}

func (sc scenario) builder(t *testing.T) (func() []*settest.SteppedOp, func() *Tree) {
	var tr *Tree
	build := func() []*settest.SteppedOp {
		tr = New()
		setupH := tr.NewHandle()
		for _, k := range sc.setup {
			if !setupH.Insert(keys.Map(k)) {
				t.Fatalf("setup insert %d failed", k)
			}
		}
		ops := make([]*settest.SteppedOp, len(sc.ops))
		for i, spec := range sc.ops {
			h := tr.NewHandle()
			u := keys.Map(spec.key)
			run := map[workload.OpKind]func() bool{
				workload.OpInsert: func() bool { return h.Insert(u) },
				workload.OpDelete: func() bool { return h.Delete(u) },
				workload.OpSearch: func() bool { return h.Search(u) },
			}[spec.kind]
			ops[i] = settest.LaunchStepped(func(hook func(string)) { h.stepHook = hook }, run)
		}
		return ops
	}
	return build, func() *Tree { return tr }
}

func (sc scenario) validateOutcome(t *testing.T, schedule []int, ops []*settest.SteppedOp, tr *Tree) {
	t.Helper()
	if err := tr.Audit(); err != nil {
		t.Fatalf("scenario %q schedule %v: audit: %v", sc.name, schedule, err)
	}
	initial := map[int64]bool{}
	for _, k := range sc.setup {
		initial[k] = true
	}
	events := make([]trace.Event, len(ops))
	for i, op := range ops {
		events[i] = trace.Event{
			Worker: i, Op: sc.ops[i].kind, Key: sc.ops[i].key, Out: op.Result,
			Start: int64(op.FirstGrant), End: int64(op.LastGrant) + 1,
		}
	}
	if err := check.Linearizable(events, initial); err != nil {
		t.Fatalf("scenario %q schedule %v: %v", sc.name, schedule, err)
	}
	net := map[int64]int{}
	for i, op := range ops {
		if op.Result {
			switch sc.ops[i].kind {
			case workload.OpInsert:
				net[sc.ops[i].key]++
			case workload.OpDelete:
				net[sc.ops[i].key]--
			}
		}
	}
	for _, spec := range sc.ops {
		k := spec.key
		want := net[k] == 1 || (initial[k] && net[k] == 0)
		if got := tr.Search(keys.Map(k)); got != want {
			t.Fatalf("scenario %q schedule %v: membership of %d = %v, want %v",
				sc.name, schedule, k, got, want)
		}
	}
}

func TestExhaustiveTwoOpSchedules(t *testing.T) {
	scenarios := []scenario{
		{"delete-delete-same-key", []int64{50, 25, 75}, []opSpec{
			{workload.OpDelete, 25}, {workload.OpDelete, 25}}},
		{"delete-delete-siblings", []int64{50, 25, 75}, []opSpec{
			{workload.OpDelete, 25}, {workload.OpDelete, 50}}},
		{"insert-vs-delete-parent", []int64{50, 25, 75}, []opSpec{
			{workload.OpInsert, 30}, {workload.OpDelete, 25}}},
		{"insert-vs-delete-same-key", []int64{50, 25}, []opSpec{
			{workload.OpInsert, 25}, {workload.OpDelete, 25}}},
		{"upsert-vs-delete", []int64{50, 25}, []opSpec{
			{workload.OpDelete, 25}, {workload.OpInsert, 75}}},
		{"search-during-delete", []int64{50, 25, 75}, []opSpec{
			{workload.OpSearch, 25}, {workload.OpDelete, 25}}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			build, lastTree := sc.builder(t)
			n := settest.ExploreExhaustive(t, build, func(t *testing.T, schedule []int, ops []*settest.SteppedOp) {
				sc.validateOutcome(t, schedule, ops, lastTree())
			})
			if n < 2 {
				t.Fatalf("only %d schedules explored", n)
			}
			t.Logf("validated %d schedules", n)
		})
	}
}
