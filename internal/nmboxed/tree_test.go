package nmboxed_test

import (
	"testing"

	"repro/internal/keys"
	"repro/internal/nmboxed"
	"repro/internal/settest"
)

func TestConformance(t *testing.T) {
	settest.Run(t, func(capacity int) settest.Set {
		return nmboxed.New()
	})
}

func TestHandleStatsUncontended(t *testing.T) {
	tr := nmboxed.New()
	h := tr.NewHandle()
	for _, k := range []int64{50, 25, 75} {
		h.Insert(keys.Map(k))
	}

	before := h.Stats
	if !h.Insert(keys.Map(60)) {
		t.Fatal("insert failed")
	}
	d := h.Stats
	if got := d.NodesAlloc - before.NodesAlloc; got != 2 {
		t.Fatalf("uncontended insert allocated %d nodes, want 2", got)
	}
	if got := d.CASSucceeded + d.CASFailed - before.CASSucceeded - before.CASFailed; got != 1 {
		t.Fatalf("uncontended insert executed %d CAS, want 1", got)
	}
	// The boxing cost: three edge records per insert.
	if got := d.EdgesAlloc - before.EdgesAlloc; got != 3 {
		t.Fatalf("uncontended insert allocated %d edges, want 3", got)
	}

	before = h.Stats
	if !h.Delete(keys.Map(60)) {
		t.Fatal("delete failed")
	}
	d = h.Stats
	if got := d.NodesAlloc - before.NodesAlloc; got != 0 {
		t.Fatalf("uncontended delete allocated %d nodes, want 0", got)
	}
	// flag CAS + one BTS loop iteration (itself a CAS) + splice CAS.
	if got := d.Atomics() - before.Atomics(); got < 3 || got > 4 {
		t.Fatalf("uncontended delete executed %d atomic steps, want 3-4", got)
	}
}

func TestTreeConvenienceMethods(t *testing.T) {
	tr := nmboxed.New()
	if !tr.Insert(keys.Map(1)) || !tr.Search(keys.Map(1)) || !tr.Delete(keys.Map(1)) {
		t.Fatal("convenience methods broken")
	}
	if tr.Search(keys.Map(1)) {
		t.Fatal("key visible after delete")
	}
}

func TestKeysOrdered(t *testing.T) {
	tr := nmboxed.New()
	for _, k := range []int64{9, 3, 7, 1, 5} {
		tr.Insert(keys.Map(k))
	}
	var got []int64
	tr.Keys(func(u uint64) bool {
		got = append(got, keys.Unmap(u))
		return true
	})
	want := []int64{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration out of order: %v", got)
		}
	}
}
