package nmboxed

import (
	"fmt"
	"testing"

	"repro/internal/keys"
)

func TestKVBasics(t *testing.T) {
	tr := New()
	k := keys.Map(7)
	if _, ok := tr.GetKV(k); ok {
		t.Fatal("empty tree returned a value")
	}
	if !tr.InsertKV(k, "seven") {
		t.Fatal("InsertKV failed")
	}
	if v, ok := tr.GetKV(k); !ok || v.(string) != "seven" {
		t.Fatalf("GetKV = %v, %v", v, ok)
	}
	if tr.InsertKV(k, "nope") {
		t.Fatal("InsertKV overwrote")
	}
	if v, _ := tr.GetKV(k); v.(string) != "seven" {
		t.Fatal("InsertKV changed the value")
	}
	if !tr.Upsert(k, "SEVEN") {
		t.Fatal("Upsert of present key did not report replacement")
	}
	if v, _ := tr.GetKV(k); v.(string) != "SEVEN" {
		t.Fatal("Upsert did not replace the value")
	}
	if tr.Upsert(keys.Map(8), "eight") {
		t.Fatal("Upsert of absent key reported replacement")
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestItemsOrderedWithValues(t *testing.T) {
	tr := New()
	for _, k := range []int64{3, 1, 2} {
		tr.InsertKV(keys.Map(k), fmt.Sprintf("v%d", k))
	}
	var got []string
	tr.Items(func(u uint64, v any) bool {
		got = append(got, fmt.Sprintf("%d=%s", keys.Unmap(u), v))
		return true
	})
	want := []string{"1=v1", "2=v2", "3=v3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items = %v", got)
		}
	}
	// Early stop.
	n := 0
	tr.Items(func(uint64, any) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestUpsertHelpsFlaggedLeaf stalls a delete right after its injection CAS
// (the leaf's incoming edge is flagged) and then upserts the same key: the
// upsert must help the delete complete, then insert the key fresh with the
// new value.
func TestUpsertHelpsFlaggedLeaf(t *testing.T) {
	tr := New()
	h := tr.NewHandle()
	for _, k := range []int64{50, 25, 75} {
		h.InsertKV(keys.Map(k), "old")
	}

	victim := keys.Map(25)
	h.seek(victim)
	if h.sr.leaf.key != victim {
		t.Fatal("setup: victim not found")
	}
	parent := h.sr.parent
	childField := &parent.left
	if victim >= parent.key {
		childField = &parent.right
	}
	le := h.sr.leafEdge
	if !childField.CompareAndSwap(le, &edge{child: h.sr.leaf, flag: true}) {
		t.Fatal("setup: flag CAS failed")
	}
	// ... the delete stalls here.

	h2 := tr.NewHandle()
	if h2.Upsert(victim, "new") {
		t.Fatal("Upsert reported replacement: the flagged leaf's removal owns the old value")
	}
	if h2.Stats.HelpAttempts == 0 {
		t.Fatal("Upsert did not help the stalled delete")
	}
	if v, ok := tr.GetKV(victim); !ok || v.(string) != "new" {
		t.Fatalf("after helped upsert: %v, %v", v, ok)
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestUpsertContendedReplacement races a replacement against a concurrent
// structural change by pre-staling the seek record: the first CAS fails
// and the retry loop must converge.
func TestUpsertRetryOnStaleEdge(t *testing.T) {
	tr := New()
	h := tr.NewHandle()
	k := keys.Map(10)
	h.InsertKV(k, 1)
	// Replace the leaf once so any stale edge from before is invalid.
	if !tr.Upsert(k, 2) {
		t.Fatal("priming upsert failed")
	}
	if !tr.Upsert(k, 3) {
		t.Fatal("second upsert failed")
	}
	if v, _ := tr.GetKV(k); v.(int) != 3 {
		t.Fatalf("value = %v", v)
	}
}

func TestTreeLevelKVConveniences(t *testing.T) {
	tr := New()
	if !tr.InsertKV(keys.Map(1), "a") {
		t.Fatal("InsertKV failed")
	}
	if v, ok := tr.GetKV(keys.Map(1)); !ok || v.(string) != "a" {
		t.Fatal("GetKV failed")
	}
	if !tr.Upsert(keys.Map(1), "b") {
		t.Fatal("Upsert failed")
	}
}
