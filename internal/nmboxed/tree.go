// Package nmboxed is the GC-friendly ("boxed") variant of the
// Natarajan–Mittal lock-free external binary search tree.
//
// The primary implementation (internal/core) packs a 32-bit arena index and
// the two mark bits into one uint64 so the paper's single-word CAS and BTS
// apply literally. This variant instead represents each child edge as an
// atomic.Pointer to an immutable edge record {child, flag, tag} — the "flag
// wrapper" approach natural to garbage-collected languages. Marking an edge
// allocates a fresh record; BTS becomes a CAS loop (the paper notes the
// algorithm "can be easily modified to use only CAS instructions").
//
// Compared with internal/core:
//
//   - no arena and no index space limit; nodes are ordinary heap objects,
//   - memory reclamation is free (the GC collects unlinked subtrees), so no
//     epoch machinery is needed,
//   - every mark/link allocates an edge record, and CAS compares record
//     identity rather than packed value — extra allocation and indirection
//     on the hot path.
//
// The packed-vs-boxed benchmark (BenchmarkAblationEncoding) quantifies the
// difference; both variants pass the same conformance battery.
package nmboxed

import (
	"fmt"
	"sync/atomic"

	"repro/internal/keys"
)

// edge is an immutable snapshot of a child field: the target node plus the
// paper's two stolen bits. A nil *edge is a leaf's empty child slot.
type edge struct {
	child *node
	flag  bool // head (leaf) node marked for deletion
	tag   bool // tail (internal) node marked for deletion
}

func (e *edge) marked() bool { return e.flag || e.tag }

type node struct {
	key   uint64
	val   any // leaf payload; immutable for the leaf's lifetime (see map.go)
	left  atomic.Pointer[edge]
	right atomic.Pointer[edge]
}

// seekRecord matches the paper's four access-path addresses plus the two
// edge records whose identity the execution phase CASes against.
type seekRecord struct {
	ancestor  *node
	successor *node
	parent    *node
	leaf      *node
	succEdge  *edge // edge (ancestor → successor) observed during seek
	leafEdge  *edge // edge (parent → leaf) observed during seek
}

// Stats counts the work performed through a Handle (single-goroutine, no
// atomics; aggregate across handles).
type Stats struct {
	Searches, Inserts, Deletes uint64

	CASSucceeded, CASFailed uint64
	BTSLoops                uint64 // iterations of the CAS loop emulating BTS
	NodesAlloc              uint64
	EdgesAlloc              uint64 // edge records allocated (the boxing cost)

	Seeks, HelpAttempts, SpliceWins uint64
}

// Atomics returns CAS attempts plus BTS-loop iterations — the boxed
// counterpart of Table 1's atomic-instruction count.
func (s *Stats) Atomics() uint64 { return s.CASSucceeded + s.CASFailed + s.BTSLoops }

// Tree is the boxed lock-free external BST. All methods are safe for
// concurrent use; Handles are optional (they only add statistics and spare
// reuse).
type Tree struct {
	r *node // sentinel ℝ (key ∞₂)
	s *node // sentinel 𝕊 (key ∞₁)
}

// New creates an empty tree with the Figure 3 sentinel skeleton.
func New() *Tree {
	leaf := func(k uint64) *node { return &node{key: k} }
	s := &node{key: keys.Inf1}
	s.left.Store(&edge{child: leaf(keys.Inf0)})
	s.right.Store(&edge{child: leaf(keys.Inf1)})
	r := &node{key: keys.Inf2}
	r.left.Store(&edge{child: s})
	r.right.Store(&edge{child: leaf(keys.Inf2)})
	return &Tree{r: r, s: s}
}

// Handle carries per-goroutine state: the reusable seek record and
// statistics. Handles must not be shared between goroutines.
type Handle struct {
	t  *Tree
	sr seekRecord
	// Spare nodes reused across insert retries.
	spareInternal, spareLeaf *node

	// stepHook, when non-nil, is invoked before every atomic step (and at
	// each seek) — used by the interleaving explorer in schedule_test.go.
	stepHook func(point string)

	Stats Stats
}

func (h *Handle) hook(point string) {
	if h.stepHook != nil {
		h.stepHook(point)
	}
}

// NewHandle returns a per-goroutine accessor.
func (t *Tree) NewHandle() *Handle { return &Handle{t: t} }

// Search reports whether key is present (stateless convenience; allocates
// nothing).
func (t *Tree) Search(key uint64) bool {
	l := t.seekLeafOnly(key)
	return l.key == key
}

// seekLeafOnly is the read-only traversal used by Tree.Search.
func (t *Tree) seekLeafOnly(key uint64) *node {
	cur := t.s
	for {
		var f *edge
		if key < cur.key {
			f = cur.left.Load()
		} else {
			f = cur.right.Load()
		}
		if f == nil || f.child == nil {
			return cur
		}
		cur = f.child
	}
}

// Insert adds key via a throwaway handle. Hot paths should use a Handle.
func (t *Tree) Insert(key uint64) bool { h := Handle{t: t}; return h.Insert(key) }

// Delete removes key via a throwaway handle.
func (t *Tree) Delete(key uint64) bool { h := Handle{t: t}; return h.Delete(key) }

// seek is Algorithm 1 over boxed edges.
func (h *Handle) seek(key uint64) {
	t := h.t
	sr := &h.sr
	h.Stats.Seeks++
	h.hook("seek")

	sr.ancestor = t.r
	sr.successor = t.s
	sr.parent = t.s
	sr.succEdge = t.r.left.Load()

	parentField := t.s.left.Load()
	sr.leaf = parentField.child
	sr.leafEdge = parentField

	currentField := sr.leaf.left.Load()
	for currentField != nil && currentField.child != nil {
		if !parentField.tag {
			sr.ancestor = sr.parent
			sr.successor = sr.leaf
			sr.succEdge = parentField
		}
		sr.parent = sr.leaf
		sr.leaf = currentField.child
		sr.leafEdge = currentField
		parentField = currentField

		cn := sr.leaf
		if key < cn.key {
			currentField = cn.left.Load()
		} else {
			currentField = cn.right.Load()
		}
	}
}

// Search via the handle (records statistics).
func (h *Handle) Search(key uint64) bool {
	h.seek(key)
	h.Stats.Searches++
	return h.sr.leaf.key == key
}

// Insert adds key; false if already present. A successful uncontended
// insert performs exactly one CAS but allocates two nodes plus three edge
// records — the boxing overhead internal/core avoids.
func (h *Handle) Insert(key uint64) bool { return h.insert(key, nil) }

func (h *Handle) insert(key uint64, val any) bool {
	for {
		h.seek(key)
		sr := &h.sr
		leaf := sr.leaf
		if leaf.key == key {
			h.Stats.Inserts++
			return false
		}
		parent := sr.parent
		var childField *atomic.Pointer[edge]
		if key < parent.key {
			childField = &parent.left
		} else {
			childField = &parent.right
		}

		if h.spareInternal == nil {
			h.spareInternal = &node{}
			h.Stats.NodesAlloc++
		}
		if h.spareLeaf == nil {
			h.spareLeaf = &node{}
			h.Stats.NodesAlloc++
		}
		ni, nl := h.spareInternal, h.spareLeaf
		nl.key = key
		nl.val = val
		nl.left.Store(nil)
		nl.right.Store(nil)
		if key < leaf.key {
			ni.key = leaf.key
			ni.left.Store(&edge{child: nl})
			ni.right.Store(&edge{child: leaf})
		} else {
			ni.key = key
			ni.left.Store(&edge{child: leaf})
			ni.right.Store(&edge{child: nl})
		}
		h.Stats.EdgesAlloc += 3

		// The packed CAS encodes "edge unmarked" in its expected value; the
		// boxed CAS compares record identity, so marks must be checked
		// explicitly before attempting it.
		le := sr.leafEdge
		h.hook("insert-cas")
		if !le.marked() && childField.CompareAndSwap(le, &edge{child: ni}) {
			h.Stats.CASSucceeded++
			h.spareInternal, h.spareLeaf = nil, nil
			h.Stats.Inserts++
			return true
		}
		h.Stats.CASFailed++
		w := childField.Load()
		if w != nil && w.child == leaf && w.marked() {
			h.Stats.HelpAttempts++
			h.cleanup(key, sr)
		}
	}
}

// Delete removes key; false if absent (Algorithm 3).
func (h *Handle) Delete(key uint64) bool {
	injecting := true
	var target *node
	for {
		h.seek(key)
		sr := &h.sr
		parent := sr.parent
		var childField *atomic.Pointer[edge]
		if key < parent.key {
			childField = &parent.left
		} else {
			childField = &parent.right
		}

		if injecting {
			target = sr.leaf
			if target.key != key {
				h.Stats.Deletes++
				return false
			}
			le := sr.leafEdge
			if !le.marked() {
				h.Stats.EdgesAlloc++
			}
			h.hook("flag-cas")
			if !le.marked() && childField.CompareAndSwap(le, &edge{child: target, flag: true}) {
				h.Stats.CASSucceeded++
				injecting = false
				if h.cleanup(key, sr) {
					h.Stats.Deletes++
					return true
				}
			} else {
				h.Stats.CASFailed++
				w := childField.Load()
				if w != nil && w.child == target && w.marked() {
					h.Stats.HelpAttempts++
					h.cleanup(key, sr)
				}
			}
		} else {
			if sr.leaf != target {
				h.Stats.Deletes++
				return true // a helper finished the removal
			}
			if h.cleanup(key, sr) {
				h.Stats.Deletes++
				return true
			}
		}
	}
}

// bts emulates the bit-test-and-set instruction on a boxed edge: set the
// tag bit, preserving child and flag. Returns the tagged edge value.
func (h *Handle) bts(f *atomic.Pointer[edge]) *edge {
	for {
		e := f.Load()
		h.Stats.BTSLoops++
		h.hook("tag")
		if e.tag {
			return e
		}
		tagged := &edge{child: e.child, flag: e.flag, tag: true}
		h.Stats.EdgesAlloc++
		if f.CompareAndSwap(e, tagged) {
			return tagged
		}
	}
}

// cleanup is Algorithm 4 over boxed edges.
func (h *Handle) cleanup(key uint64, sr *seekRecord) bool {
	ancestor, parent := sr.ancestor, sr.parent

	var successorField *atomic.Pointer[edge]
	if key < ancestor.key {
		successorField = &ancestor.left
	} else {
		successorField = &ancestor.right
	}
	var childField, siblingField *atomic.Pointer[edge]
	if key < parent.key {
		childField = &parent.left
		siblingField = &parent.right
	} else {
		childField = &parent.right
		siblingField = &parent.left
	}

	if cw := childField.Load(); !cw.flag {
		// The delete target is the other child; roles swap (helping).
		siblingField = childField
	}

	sw := h.bts(siblingField)

	se := sr.succEdge
	h.hook("splice-cas")
	if se.marked() || se.child != sr.successor {
		// The packed CAS would fail on a marked or changed word; mirror it.
		return false
	}
	h.Stats.EdgesAlloc++
	ok := successorField.CompareAndSwap(se, &edge{child: sw.child, flag: sw.flag})
	if ok {
		h.Stats.CASSucceeded++
		h.Stats.SpliceWins++
	} else {
		h.Stats.CASFailed++
	}
	return ok
}

// ---- quiescent inspection ----

// Size counts stored user keys (quiescent only).
func (t *Tree) Size() int {
	n := 0
	t.Keys(func(uint64) bool { n++; return true })
	return n
}

// Keys visits user keys in ascending order (quiescent only).
func (t *Tree) Keys(yield func(uint64) bool) { t.visit(t.r, yield) }

func (t *Tree) visit(n *node, yield func(uint64) bool) bool {
	le, re := n.left.Load(), n.right.Load()
	if le == nil && re == nil {
		if keys.IsSentinel(n.key) {
			return true
		}
		return yield(n.key)
	}
	if le != nil && le.child != nil && !t.visit(le.child, yield) {
		return false
	}
	if re != nil && re.child != nil && !t.visit(re.child, yield) {
		return false
	}
	return true
}

// Audit validates the external-BST invariants (quiescent only).
func (t *Tree) Audit() error {
	if t.r.key != keys.Inf2 || t.s.key != keys.Inf1 {
		return fmt.Errorf("sentinel keys corrupted")
	}
	rl := t.r.left.Load()
	if rl.marked() || rl.child != t.s {
		return fmt.Errorf("edge (ℝ, 𝕊) invalid")
	}
	_, err := t.audit(t.r, 0, ^uint64(0))
	return err
}

func (t *Tree) audit(n *node, lo, hi uint64) (int, error) {
	if n.key < lo || n.key > hi {
		return 0, fmt.Errorf("key %#x outside [%#x, %#x]", n.key, lo, hi)
	}
	le, re := n.left.Load(), n.right.Load()
	if le != nil && le.marked() || re != nil && re.marked() {
		return 0, fmt.Errorf("marked edge in quiescent tree at key %#x", n.key)
	}
	lc, rc := childOf(le), childOf(re)
	switch {
	case lc == nil && rc == nil:
		return 1, nil
	case lc == nil || rc == nil:
		return 0, fmt.Errorf("internal node %#x has exactly one child", n.key)
	}
	if n.key == 0 {
		return 0, fmt.Errorf("internal node has key 0 with a left subtree")
	}
	nl, err := t.audit(lc, lo, n.key-1)
	if err != nil {
		return 0, err
	}
	nr, err := t.audit(rc, n.key, hi)
	if err != nil {
		return 0, err
	}
	return nl + nr, nil
}

func childOf(e *edge) *node {
	if e == nil {
		return nil
	}
	return e.child
}
