// Package metrics is the live contention-telemetry layer for the
// arena-backed Natarajan–Mittal tree (internal/core).
//
// The paper's whole argument is about atomic-instruction counts and
// contention behaviour (Table 1, Section 4); core.Stats can only show that
// offline, per handle, after a run. This package makes the same signals —
// CAS failures per step, helping, seek restarts, epoch advancement, latency
// distributions — scrapeable while a workload runs, at a cost low enough to
// leave the measurement itself credible.
//
// # Design
//
// A Registry owns one Shard per tree handle. A shard is written by exactly
// one goroutine (handles are single-goroutine by contract), so its counters
// are updated with plain atomic store/load pairs — a MOV pair on x86-64,
// not a LOCK ADD — and never contended. Shards are cache-line padded so
// neighbouring shards never false-share. Scrapers sum all shards; a scrape
// never blocks a writer.
//
// Latency is recorded into power-of-two-bucket histograms: bucket i counts
// operations whose duration d satisfies bits.Len64(d ns) == i, i.e.
// d ∈ [2^(i-1), 2^i). Recording allocates nothing. Because reading the
// clock twice would dominate a ~100ns tree operation, latency is *sampled*:
// each handle times one in every SampleEvery operations (default 64) and
// counts the rest untimed. Counters are never sampled.
//
// When a tree is built without a Registry every instrumentation site costs
// a single nil check, so the uninstrumented baseline is unchanged.
package metrics

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one sharded event counter. The set mirrors the atomic
// steps of the algorithm (insert CAS; the delete steps flag, tag, splice)
// plus the contention events the paper discusses (helping, restarts).
type Counter int

const (
	// OpsSearch/OpsInsert/OpsDelete count completed operations, so rates
	// (CAS failures per op, restarts per op) can be derived from a scrape.
	OpsSearch Counter = iota
	OpsInsert
	OpsDelete
	// SeekRestarts counts operation retries: an insert or delete that had
	// to re-execute its seek phase after a failed atomic step.
	SeekRestarts
	// InsertRetries counts insert attempts beyond the first (a subset of
	// SeekRestarts, kept separate to match Table 1's per-operation story).
	InsertRetries
	// InsertCASFailures counts failures of insert's single CAS.
	InsertCASFailures
	// DeleteFlagCASFailures counts failures of delete step 1 (flag the
	// edge into the target leaf — the injection CAS).
	DeleteFlagCASFailures
	// DeleteTagCASFailures counts failures of delete step 2 when the tree
	// runs in CAS-only mode (the BTS emulation loop); always zero when the
	// one-shot fetch-or is used, which cannot fail.
	DeleteTagCASFailures
	// DeleteSpliceCASFailures counts failures of delete step 3 (splice the
	// sibling up to the ancestor — the prune CAS).
	DeleteSpliceCASFailures
	// HelpOther counts cleanup invocations on behalf of another thread's
	// delete (the algorithm's only helping).
	HelpOther
	// SpliceWins counts successful splice CASes (physical removals).
	SpliceWins
	// PrunedLeaves counts leaves physically removed by winning splices; a
	// value above SpliceWins means single CASes removed several logically
	// deleted leaves at once (the paper's batched-cleanup effect).
	PrunedLeaves
	// CapacityFailures counts TryInserts that returned ErrCapacity;
	// CapacityRetries counts epoch-flush retries on that path.
	CapacityFailures
	CapacityRetries
	// BatchOps counts operations executed through the batched entry points
	// (these also count in OpsSearch/OpsInsert/OpsDelete, so the batched
	// fraction of traffic can be derived from one scrape).
	BatchOps
	// BatchSeekSkippedLevels counts seek levels skipped by path-sharing
	// resumes in batched operations; divided by BatchOps it measures how
	// much of the root-to-leaf descent batching amortizes away.
	BatchSeekSkippedLevels

	// NumCounters is the size of a shard's counter array.
	NumCounters
)

// counterNames are the stable export names (snake_case, no prefix); the
// HTTP layer prefixes them and maps some onto labelled Prometheus families.
var counterNames = [NumCounters]string{
	OpsSearch:               "ops_search_total",
	OpsInsert:               "ops_insert_total",
	OpsDelete:               "ops_delete_total",
	SeekRestarts:            "seek_restarts_total",
	InsertRetries:           "insert_retries_total",
	InsertCASFailures:       "cas_failures_insert_total",
	DeleteFlagCASFailures:   "cas_failures_flag_total",
	DeleteTagCASFailures:    "cas_failures_tag_total",
	DeleteSpliceCASFailures: "cas_failures_splice_total",
	HelpOther:               "help_other_total",
	SpliceWins:              "splice_wins_total",
	PrunedLeaves:            "pruned_leaves_total",
	CapacityFailures:        "capacity_failures_total",
	CapacityRetries:         "capacity_retries_total",
	BatchOps:                "batch_ops_total",
	BatchSeekSkippedLevels:  "batch_seek_skipped_levels_total",
}

// Name returns the counter's stable export name.
func (c Counter) Name() string { return counterNames[c] }

// Op identifies a latency-profiled operation kind.
type Op int

const (
	OpSearch Op = iota
	OpInsert
	OpDelete
	NumOps
)

var opNames = [NumOps]string{"search", "insert", "delete"}

// Name returns the operation's stable export name.
func (o Op) Name() string { return opNames[o] }

// NumBuckets is the number of power-of-two latency buckets. Bucket i spans
// [2^(i-1), 2^i) nanoseconds; 40 buckets reach ~9 minutes, far beyond any
// plausible tree operation. The last bucket absorbs everything larger.
const NumBuckets = 40

// BucketUpperNanos returns bucket i's exclusive upper bound in nanoseconds.
func BucketUpperNanos(i int) uint64 { return uint64(1) << uint(i) }

// hist is one operation kind's latency histogram within a shard.
type hist struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
}

// DefaultSampleEvery is the default latency sampling period: one timed
// operation per this many (per handle). Power of two so the fast-path test
// is a mask.
const DefaultSampleEvery = 64

// shardPad rounds the shard struct up past a cache line multiple so
// adjacent heap objects cannot share a line with a shard's hot counters.
const shardPad = 64 - (int(NumCounters)*8+int(NumOps)*(NumBuckets+2)*8)%64

// Shard is one handle's private slice of the registry. Exactly one
// goroutine writes a shard; any number may read it through snapshots.
type Shard struct {
	counters [NumCounters]atomic.Uint64
	hists    [NumOps]hist
	_        [shardPad]byte
}

// Inc adds 1 to counter c. Single-writer: uses a store/load pair instead of
// an atomic RMW, which is both cheaper and sufficient (atomicity is only
// needed against concurrent *readers*).
func (s *Shard) Inc(c Counter) {
	v := &s.counters[c]
	v.Store(v.Load() + 1)
}

// Add adds delta to counter c (single-writer, like Inc).
func (s *Shard) Add(c Counter, delta uint64) {
	v := &s.counters[c]
	v.Store(v.Load() + delta)
}

// Observe records one sampled operation latency. Allocation-free.
func (s *Shard) Observe(op Op, d time.Duration) {
	ns := uint64(d.Nanoseconds())
	i := bits.Len64(ns)
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	h := &s.hists[op]
	b := &h.buckets[i]
	b.Store(b.Load() + 1)
	h.count.Store(h.count.Load() + 1)
	h.sum.Store(h.sum.Load() + ns)
}

// Registry aggregates shards for one tree. Shard creation and snapshots
// take a mutex; shard *writes* never do.
type Registry struct {
	sampleMask uint64

	mu     sync.Mutex
	shards []*Shard
	base   Snapshot // folded-in totals of retired (closed) shards
	hooks  []func(*Snapshot)
}

// NewRegistry creates a registry. sampleEvery is the latency sampling
// period; 0 selects DefaultSampleEvery, 1 times every operation, other
// values are rounded up to a power of two.
func NewRegistry(sampleEvery int) *Registry {
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	if sampleEvery&(sampleEvery-1) != 0 {
		sampleEvery = 1 << bits.Len64(uint64(sampleEvery))
	}
	r := &Registry{sampleMask: uint64(sampleEvery) - 1}
	r.base = emptySnapshot(uint64(sampleEvery))
	return r
}

// SampleMask returns the handle-side sampling mask: a handle times an
// operation when tick&mask == 0.
func (r *Registry) SampleMask() uint64 { return r.sampleMask }

// NewShard creates and registers a shard for one handle.
func (r *Registry) NewShard() *Shard {
	s := &Shard{}
	r.mu.Lock()
	r.shards = append(r.shards, s)
	r.mu.Unlock()
	return s
}

// Retire folds a shard's totals into the registry's base and drops the
// shard, so a tree that churns through many short-lived handles keeps a
// bounded registry without losing history. The shard's owner must not
// write to it afterwards.
func (r *Registry) Retire(s *Shard) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, sh := range r.shards {
		if sh == s {
			r.base.addShard(s)
			r.shards[i] = r.shards[len(r.shards)-1]
			r.shards = r.shards[:len(r.shards)-1]
			return
		}
	}
}

// AddHook registers fn to run during Snapshot, letting the tree fold in
// counters and gauges maintained outside the sharded hot path (arena spill
// hits, epoch advances, backlog gauges). Hooks run under the registry
// mutex; keep them fast.
func (r *Registry) AddHook(fn func(*Snapshot)) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// LatencySnapshot is one operation kind's histogram at a point in time.
type LatencySnapshot struct {
	Buckets  [NumBuckets]uint64 // Buckets[i]: samples in [2^(i-1), 2^i) ns
	Count    uint64             // total samples (sum of Buckets)
	SumNanos uint64             // total sampled nanoseconds
}

// Quantile returns an approximate q-quantile (0 < q ≤ 1) in nanoseconds:
// the upper bound of the bucket containing the q-th sample. Returns 0 for
// an empty histogram.
func (l LatencySnapshot) Quantile(q float64) uint64 {
	if l.Count == 0 {
		return 0
	}
	target := uint64(q * float64(l.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range l.Buckets {
		cum += l.Buckets[i]
		if cum >= target {
			return BucketUpperNanos(i)
		}
	}
	return BucketUpperNanos(NumBuckets - 1)
}

// MeanNanos returns the mean sampled latency in nanoseconds.
func (l LatencySnapshot) MeanNanos() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.SumNanos) / float64(l.Count)
}

// Snapshot is a cumulative view of a registry: sharded counters summed
// across live and retired shards, plus whatever the registered hooks fold
// in. Counters and External values are monotonic; Gauges are instantaneous.
type Snapshot struct {
	SampleEvery uint64
	Counters    [NumCounters]uint64
	Latency     [NumOps]LatencySnapshot
	External    map[string]uint64  // hook-supplied monotonic counters
	Gauges      map[string]float64 // hook-supplied instantaneous values
	// ExternalLatency holds hook-supplied histograms that are not one of
	// the fixed per-op histograms — e.g. the WAL's fsync durations or the
	// checkpointer's snapshot durations. Keys are export names without the
	// "bst_" prefix ("wal_fsync_seconds"); values are cumulative.
	ExternalLatency map[string]LatencySnapshot
}

func emptySnapshot(sampleEvery uint64) Snapshot {
	return Snapshot{
		SampleEvery:     sampleEvery,
		External:        map[string]uint64{},
		Gauges:          map[string]float64{},
		ExternalLatency: map[string]LatencySnapshot{},
	}
}

// Snapshot sums all shards and runs the hooks. Values are monotonic but,
// under concurrent load, not a consistent cut (each word is read
// atomically; words are read at slightly different instants).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := emptySnapshot(r.sampleMask + 1)
	s.add(&r.base)
	for _, sh := range r.shards {
		s.addShard(sh)
	}
	for _, fn := range r.hooks {
		fn(&s)
	}
	return s
}

func (s *Snapshot) addShard(sh *Shard) {
	for i := range sh.counters {
		s.Counters[i] += sh.counters[i].Load()
	}
	for op := range sh.hists {
		h := &sh.hists[op]
		l := &s.Latency[op]
		for b := range h.buckets {
			l.Buckets[b] += h.buckets[b].Load()
		}
		l.Count += h.count.Load()
		l.SumNanos += h.sum.Load()
	}
}

func (s *Snapshot) add(o *Snapshot) {
	for i := range o.Counters {
		s.Counters[i] += o.Counters[i]
	}
	for op := range o.Latency {
		l, ol := &s.Latency[op], &o.Latency[op]
		for b := range ol.Buckets {
			l.Buckets[b] += ol.Buckets[b]
		}
		l.Count += ol.Count
		l.SumNanos += ol.SumNanos
	}
	for k, v := range o.External {
		s.External[k] += v
	}
	for k, v := range o.Gauges {
		s.Gauges[k] = v
	}
	for k, v := range o.ExternalLatency {
		l := s.ExternalLatency[k]
		for i := range v.Buckets {
			l.Buckets[i] += v.Buckets[i]
		}
		l.Count += v.Count
		l.SumNanos += v.SumNanos
		s.ExternalLatency[k] = l
	}
}

// Sub returns the delta s−prev for all monotonic values; gauges keep their
// current (s) values, since deltas of instantaneous readings are
// meaningless.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := emptySnapshot(s.SampleEvery)
	for i := range s.Counters {
		d.Counters[i] = s.Counters[i] - prev.Counters[i]
	}
	for op := range s.Latency {
		l := &d.Latency[op]
		for b := range s.Latency[op].Buckets {
			l.Buckets[b] = s.Latency[op].Buckets[b] - prev.Latency[op].Buckets[b]
		}
		l.Count = s.Latency[op].Count - prev.Latency[op].Count
		l.SumNanos = s.Latency[op].SumNanos - prev.Latency[op].SumNanos
	}
	for k, v := range s.External {
		d.External[k] = v - prev.External[k]
	}
	for k, v := range s.Gauges {
		d.Gauges[k] = v
	}
	for k, v := range s.ExternalLatency {
		p := prev.ExternalLatency[k]
		l := LatencySnapshot{Count: v.Count - p.Count, SumNanos: v.SumNanos - p.SumNanos}
		for i := range v.Buckets {
			l.Buckets[i] = v.Buckets[i] - p.Buckets[i]
		}
		d.ExternalLatency[k] = l
	}
	return d
}

// CounterMap flattens the named counters and hook-supplied external
// counters into one map keyed by stable export name (for JSON emission).
func (s Snapshot) CounterMap() map[string]uint64 {
	m := make(map[string]uint64, int(NumCounters)+len(s.External))
	for i := Counter(0); i < NumCounters; i++ {
		m[i.Name()] = s.Counters[i]
	}
	for k, v := range s.External {
		m[k] = v
	}
	return m
}
