package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Source is one named registry for exposition (the name becomes the
// {tree="..."} label / top-level JSON key).
type Source struct {
	Name     string
	Registry *Registry
}

// Handler serves the registries returned by resolve — re-evaluated on every
// request, so callers can rotate registries under a running endpoint (the
// stress tool swaps a fresh registry in each round):
//
//	GET /metrics     Prometheus text exposition format (version 0.0.4)
//	GET /debug/vars  expvar-style JSON of the same snapshots
func Handler(resolve func() []Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, snapshots(resolve()))
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		WriteExpvar(w, snapshots(resolve()))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		io.WriteString(w, "bst metrics: /metrics (Prometheus), /debug/vars (expvar JSON)\n")
	})
	return mux
}

// Named is a snapshot paired with its source name.
type Named struct {
	Name string
	Snap Snapshot
}

func snapshots(sources []Source) []Named {
	out := make([]Named, 0, len(sources))
	for _, s := range sources {
		if s.Registry == nil {
			continue
		}
		out = append(out, Named{Name: s.Name, Snap: s.Registry.Snapshot()})
	}
	return out
}

// promCounter maps an internal counter onto its Prometheus family and
// extra labels; several counters share the bst_cas_failures_total family
// distinguished by the step label, mirroring the algorithm's atomic steps.
var promCounter = [NumCounters]struct{ family, labels string }{
	OpsSearch:               {"bst_ops_total", `op="search"`},
	OpsInsert:               {"bst_ops_total", `op="insert"`},
	OpsDelete:               {"bst_ops_total", `op="delete"`},
	SeekRestarts:            {"bst_seek_restarts_total", ""},
	InsertRetries:           {"bst_insert_retries_total", ""},
	InsertCASFailures:       {"bst_cas_failures_total", `step="insert"`},
	DeleteFlagCASFailures:   {"bst_cas_failures_total", `step="flag"`},
	DeleteTagCASFailures:    {"bst_cas_failures_total", `step="tag"`},
	DeleteSpliceCASFailures: {"bst_cas_failures_total", `step="splice"`},
	HelpOther:               {"bst_help_total", ""},
	SpliceWins:              {"bst_splice_wins_total", ""},
	PrunedLeaves:            {"bst_pruned_leaves_total", ""},
	CapacityFailures:        {"bst_capacity_failures_total", ""},
	CapacityRetries:         {"bst_capacity_retries_total", ""},
	BatchOps:                {"bst_batch_ops_total", ""},
	BatchSeekSkippedLevels:  {"bst_batch_seek_skipped_levels_total", ""},
}

type promSample struct {
	labels string // full rendered label set, including tree=
	value  float64
}

type promFamily struct {
	name    string
	typ     string // "counter" | "gauge" | "histogram"
	samples []promSample
}

// WritePrometheus renders all snapshots in Prometheus text exposition
// format. Samples are grouped family-major (all series of one metric name
// together), as the format requires.
func WritePrometheus(w io.Writer, snaps []Named) {
	order := []string{}
	families := map[string]*promFamily{}
	fam := func(name, typ string) *promFamily {
		f, ok := families[name]
		if !ok {
			f = &promFamily{name: name, typ: typ}
			families[name] = f
			order = append(order, name)
		}
		return f
	}
	joinLabels := func(tree, extra string) string {
		l := `tree="` + tree + `"`
		if extra != "" {
			l += "," + extra
		}
		return l
	}

	for _, ns := range snaps {
		s := ns.Snap
		for c := Counter(0); c < NumCounters; c++ {
			pc := promCounter[c]
			f := fam(pc.family, "counter")
			f.samples = append(f.samples, promSample{joinLabels(ns.Name, pc.labels), float64(s.Counters[c])})
		}
		for _, k := range sortedKeys(s.External) {
			f := fam("bst_"+k, "counter")
			f.samples = append(f.samples, promSample{joinLabels(ns.Name, ""), float64(s.External[k])})
		}
		for _, k := range sortedGaugeKeys(s.Gauges) {
			f := fam("bst_"+k, "gauge")
			f.samples = append(f.samples, promSample{joinLabels(ns.Name, ""), s.Gauges[k]})
		}
		sp := fam("bst_latency_sample_period_ops", "gauge")
		sp.samples = append(sp.samples, promSample{joinLabels(ns.Name, ""), float64(s.SampleEvery)})

		appendHistogram := func(f *promFamily, base string, l LatencySnapshot) {
			var cum uint64
			for i := 0; i < NumBuckets; i++ {
				cum += l.Buckets[i]
				le := strconv.FormatFloat(float64(BucketUpperNanos(i))/1e9, 'g', -1, 64)
				f.samples = append(f.samples, promSample{
					labels: base + `,le="` + le + `"`,
					value:  float64(cum),
				})
			}
			f.samples = append(f.samples,
				promSample{base + `,le="+Inf"`, float64(l.Count)},
				promSample{labels: "\x00sum\x00" + base, value: float64(l.SumNanos) / 1e9},
				promSample{labels: "\x00count\x00" + base, value: float64(l.Count)},
			)
		}
		hf := fam("bst_op_latency_seconds", "histogram")
		for op := Op(0); op < NumOps; op++ {
			appendHistogram(hf, `tree="`+ns.Name+`",op="`+op.Name()+`"`, s.Latency[op])
		}
		for _, k := range sortedLatencyKeys(s.ExternalLatency) {
			appendHistogram(fam("bst_"+k, "histogram"), `tree="`+ns.Name+`"`, s.ExternalLatency[k])
		}
	}

	for _, name := range order {
		f := families[name]
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, sm := range f.samples {
			switch {
			case strings.HasPrefix(sm.labels, "\x00sum\x00"):
				fmt.Fprintf(w, "%s_sum{%s} %s\n", f.name, sm.labels[len("\x00sum\x00"):], formatValue(sm.value))
			case strings.HasPrefix(sm.labels, "\x00count\x00"):
				fmt.Fprintf(w, "%s_count{%s} %s\n", f.name, sm.labels[len("\x00count\x00"):], formatValue(sm.value))
			default:
				suffix := ""
				if f.typ == "histogram" {
					suffix = "_bucket"
				}
				fmt.Fprintf(w, "%s%s{%s} %s\n", f.name, suffix, sm.labels, formatValue(sm.value))
			}
		}
	}
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedLatencyKeys(m map[string]LatencySnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedGaugeKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// expvarLatency is the JSON shape of one op's histogram.
type expvarLatency struct {
	Count    uint64   `json:"count"`
	SumNanos uint64   `json:"sum_ns"`
	P50Nanos uint64   `json:"p50_ns"`
	P99Nanos uint64   `json:"p99_ns"`
	Buckets  []uint64 `json:"buckets_pow2_ns"`
}

// ExpvarMap renders one snapshot as the JSON-friendly map served at
// /debug/vars (also reused by the bench tool's -json output).
func ExpvarMap(s Snapshot) map[string]any {
	lat := map[string]expvarLatency{}
	for op := Op(0); op < NumOps; op++ {
		l := s.Latency[op]
		lat[op.Name()] = expvarLatency{
			Count:    l.Count,
			SumNanos: l.SumNanos,
			P50Nanos: l.Quantile(0.50),
			P99Nanos: l.Quantile(0.99),
			Buckets:  l.Buckets[:],
		}
	}
	for k, l := range s.ExternalLatency {
		lat[k] = expvarLatency{
			Count:    l.Count,
			SumNanos: l.SumNanos,
			P50Nanos: l.Quantile(0.50),
			P99Nanos: l.Quantile(0.99),
			Buckets:  l.Buckets[:],
		}
	}
	return map[string]any{
		"sample_every_ops": s.SampleEvery,
		"counters":         s.CounterMap(),
		"gauges":           s.Gauges,
		"latency":          lat,
	}
}

// WriteExpvar renders all snapshots as one expvar-style JSON document:
// a top-level object keyed by source name.
func WriteExpvar(w io.Writer, snaps []Named) {
	doc := map[string]any{}
	for _, ns := range snaps {
		doc[ns.Name] = ExpvarMap(ns.Snap)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}
