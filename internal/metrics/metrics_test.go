package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterNamesComplete(t *testing.T) {
	for c := Counter(0); c < NumCounters; c++ {
		if c.Name() == "" {
			t.Fatalf("counter %d has no export name", c)
		}
		if promCounter[c].family == "" {
			t.Fatalf("counter %d has no Prometheus family", c)
		}
	}
	for op := Op(0); op < NumOps; op++ {
		if op.Name() == "" {
			t.Fatalf("op %d has no export name", op)
		}
	}
}

func TestShardCountersAndSnapshot(t *testing.T) {
	r := NewRegistry(0)
	s1, s2 := r.NewShard(), r.NewShard()
	s1.Inc(SeekRestarts)
	s1.Add(SeekRestarts, 4)
	s2.Inc(SeekRestarts)
	s2.Inc(HelpOther)

	snap := r.Snapshot()
	if got := snap.Counters[SeekRestarts]; got != 6 {
		t.Fatalf("SeekRestarts = %d, want 6", got)
	}
	if got := snap.Counters[HelpOther]; got != 1 {
		t.Fatalf("HelpOther = %d, want 1", got)
	}
	if snap.SampleEvery != DefaultSampleEvery {
		t.Fatalf("SampleEvery = %d, want %d", snap.SampleEvery, DefaultSampleEvery)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry(1)
	sh := r.NewShard()
	sh.Observe(OpInsert, 100*time.Nanosecond) // bits.Len64(100) = 7 → bucket 7
	sh.Observe(OpInsert, 100*time.Nanosecond)
	sh.Observe(OpInsert, time.Hour) // clamps into the last bucket

	l := r.Snapshot().Latency[OpInsert]
	if l.Count != 3 {
		t.Fatalf("Count = %d, want 3", l.Count)
	}
	if l.Buckets[7] != 2 {
		t.Fatalf("bucket 7 = %d, want 2 (100ns samples)", l.Buckets[7])
	}
	if l.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("last bucket = %d, want 1 (clamped 1h sample)", l.Buckets[NumBuckets-1])
	}
	wantSum := uint64(200 + time.Hour.Nanoseconds())
	if l.SumNanos != wantSum {
		t.Fatalf("SumNanos = %d, want %d", l.SumNanos, wantSum)
	}
	// 100ns samples dominate: the median bucket's upper bound is 128ns.
	if q := l.Quantile(0.5); q != 128 {
		t.Fatalf("p50 = %d, want 128", q)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var l LatencySnapshot
	if q := l.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
	if m := l.MeanNanos(); m != 0 {
		t.Fatalf("empty histogram mean = %v, want 0", m)
	}
	l.Buckets[3] = 1
	l.Count = 1
	if q := l.Quantile(0.01); q != 8 {
		t.Fatalf("single-sample low quantile = %d, want 8", q)
	}
	if q := l.Quantile(1.0); q != 8 {
		t.Fatalf("single-sample high quantile = %d, want 8", q)
	}
}

func TestRetireFoldsIntoBase(t *testing.T) {
	r := NewRegistry(0)
	sh := r.NewShard()
	sh.Add(SpliceWins, 9)
	sh.Observe(OpDelete, 64*time.Nanosecond)
	r.Retire(sh)
	r.Retire(sh) // double retire is a no-op

	snap := r.Snapshot()
	if got := snap.Counters[SpliceWins]; got != 9 {
		t.Fatalf("retired SpliceWins = %d, want 9", got)
	}
	if got := snap.Latency[OpDelete].Count; got != 1 {
		t.Fatalf("retired histogram count = %d, want 1", got)
	}
	// A fresh shard keeps accumulating on top of the base.
	r.NewShard().Inc(SpliceWins)
	if got := r.Snapshot().Counters[SpliceWins]; got != 10 {
		t.Fatalf("base+live SpliceWins = %d, want 10", got)
	}
}

func TestSnapshotSubDeltas(t *testing.T) {
	r := NewRegistry(0)
	r.AddHook(func(s *Snapshot) {
		s.External["epoch_advances_total"] += 100
		s.Gauges["arena_allocated_nodes"] = 42
	})
	sh := r.NewShard()
	sh.Add(HelpOther, 3)
	prev := r.Snapshot()
	sh.Add(HelpOther, 5)
	sh.Observe(OpSearch, 10*time.Nanosecond)

	d := r.Snapshot().Sub(prev)
	if got := d.Counters[HelpOther]; got != 5 {
		t.Fatalf("delta HelpOther = %d, want 5", got)
	}
	if got := d.External["epoch_advances_total"]; got != 0 {
		t.Fatalf("delta external = %d, want 0 (hook value unchanged)", got)
	}
	if got := d.Gauges["arena_allocated_nodes"]; got != 42 {
		t.Fatalf("gauge should keep current value, got %v", got)
	}
	if got := d.Latency[OpSearch].Count; got != 1 {
		t.Fatalf("delta latency count = %d, want 1", got)
	}
}

func TestSampleEveryRounding(t *testing.T) {
	cases := map[int]uint64{0: DefaultSampleEvery, 1: 1, 2: 2, 3: 4, 63: 64, 64: 64}
	for in, want := range cases {
		r := NewRegistry(in)
		if got := r.SampleMask() + 1; got != want {
			t.Fatalf("NewRegistry(%d) period = %d, want %d", in, got, want)
		}
	}
}

// TestConcurrentShardsAndScrapes exercises the single-writer-per-shard,
// many-reader contract under the race detector.
func TestConcurrentShardsAndScrapes(t *testing.T) {
	r := NewRegistry(1)
	const writers = 4
	const each = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := r.NewShard()
			for i := 0; i < each; i++ {
				sh.Inc(SeekRestarts)
				sh.Observe(OpInsert, time.Duration(i)*time.Nanosecond)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	snap := r.Snapshot()
	if got := snap.Counters[SeekRestarts]; got != writers*each {
		t.Fatalf("SeekRestarts = %d, want %d", got, writers*each)
	}
	if got := snap.Latency[OpInsert].Count; got != writers*each {
		t.Fatalf("latency count = %d, want %d", got, writers*each)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry(0)
	sh := r.NewShard()
	sh.Inc(InsertCASFailures)
	sh.Inc(DeleteFlagCASFailures)
	sh.Observe(OpInsert, 200*time.Nanosecond)
	r.AddHook(func(s *Snapshot) {
		s.External["epoch_advances_total"] += 7
		s.Gauges["arena_allocated_nodes"] = 12
	})

	var b bytes.Buffer
	WritePrometheus(&b, []Named{{Name: "nm", Snap: r.Snapshot()}})
	out := b.String()

	for _, want := range []string{
		"# TYPE bst_cas_failures_total counter",
		`bst_cas_failures_total{tree="nm",step="insert"} 1`,
		`bst_cas_failures_total{tree="nm",step="flag"} 1`,
		"# TYPE bst_help_total counter",
		"# TYPE bst_seek_restarts_total counter",
		"# TYPE bst_op_latency_seconds histogram",
		`bst_op_latency_seconds_bucket{tree="nm",op="insert",le="+Inf"} 1`,
		`bst_op_latency_seconds_count{tree="nm",op="insert"} 1`,
		`bst_op_latency_seconds_sum{tree="nm",op="insert"}`,
		`bst_epoch_advances_total{tree="nm"} 7`,
		`bst_arena_allocated_nodes{tree="nm"} 12`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus output missing %q:\n%s", want, out)
		}
	}
	checkPrometheusWellFormed(t, out)
}

// checkPrometheusWellFormed enforces the exposition-format structural
// rules that matter for scrapers: every sample line parses as
// name{labels} value, and all samples of one metric family are contiguous.
func checkPrometheusWellFormed(t *testing.T, out string) {
	t.Helper()
	seen := map[string]bool{} // families already closed out
	last := ""
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			continue
		}
		brace := strings.IndexByte(line, '{')
		space := strings.LastIndexByte(line, ' ')
		if brace < 1 || space < brace || !strings.Contains(line[:space], "}") {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := line[:brace]
		// Histogram child series (_bucket/_sum/_count) belong to the parent.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suf)
		}
		if name != last {
			if seen[name] {
				t.Fatalf("family %q not contiguous", name)
			}
			if last != "" {
				seen[last] = true
			}
			last = name
		}
	}
}

func TestWriteExpvarJSON(t *testing.T) {
	r := NewRegistry(0)
	sh := r.NewShard()
	sh.Inc(HelpOther)
	sh.Observe(OpDelete, time.Microsecond)

	var b bytes.Buffer
	WriteExpvar(&b, []Named{{Name: "nm", Snap: r.Snapshot()}})
	var doc map[string]struct {
		SampleEvery uint64                   `json:"sample_every_ops"`
		Counters    map[string]uint64        `json:"counters"`
		Latency     map[string]expvarLatency `json:"latency"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v\n%s", err, b.String())
	}
	nm, ok := doc["nm"]
	if !ok {
		t.Fatalf("missing source key: %s", b.String())
	}
	if nm.Counters["help_other_total"] != 1 {
		t.Fatalf("help_other_total = %d, want 1", nm.Counters["help_other_total"])
	}
	if nm.Latency["delete"].Count != 1 {
		t.Fatalf("delete latency count = %d, want 1", nm.Latency["delete"].Count)
	}
}

func TestExternalLatencyHookAndRendering(t *testing.T) {
	r := NewRegistry(0)
	r.AddHook(func(s *Snapshot) {
		var l LatencySnapshot
		l.Buckets[20] = 3 // three samples around half a millisecond
		l.Count = 3
		l.SumNanos = 1_500_000
		s.ExternalLatency["wal_fsync_seconds"] = l
		s.External["wal_append_total"] += 9
	})
	snap := r.Snapshot()
	if got := snap.ExternalLatency["wal_fsync_seconds"].Count; got != 3 {
		t.Fatalf("hook latency count = %d, want 3", got)
	}

	var b bytes.Buffer
	WritePrometheus(&b, []Named{{Name: "srv", Snap: snap}})
	out := b.String()
	for _, want := range []string{
		"# TYPE bst_wal_fsync_seconds histogram",
		`bst_wal_fsync_seconds_bucket{tree="srv",le="+Inf"} 3`,
		`bst_wal_fsync_seconds_count{tree="srv"} 3`,
		`bst_wal_fsync_seconds_sum{tree="srv"} 0.0015`,
		`bst_wal_append_total{tree="srv"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus output missing %q:\n%s", want, out)
		}
	}
	checkPrometheusWellFormed(t, out)

	// The expvar document carries the same histogram under latency.
	b.Reset()
	WriteExpvar(&b, []Named{{Name: "srv", Snap: snap}})
	var doc map[string]struct {
		Latency map[string]expvarLatency `json:"latency"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("expvar output invalid: %v", err)
	}
	if doc["srv"].Latency["wal_fsync_seconds"].Count != 3 {
		t.Fatalf("expvar missing external latency: %s", b.String())
	}

	// Sub yields a proper delta.
	d := snap.Sub(emptySnapshot(snap.SampleEvery))
	if d.ExternalLatency["wal_fsync_seconds"].SumNanos != 1_500_000 {
		t.Fatalf("Sub lost external latency: %+v", d.ExternalLatency)
	}
}
