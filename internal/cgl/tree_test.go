package cgl_test

import (
	"testing"

	"repro/internal/cgl"
	"repro/internal/keys"
	"repro/internal/settest"
)

func TestConformance(t *testing.T) {
	settest.Run(t, func(capacity int) settest.Set {
		return cgl.New()
	})
}

func TestTwoChildDelete(t *testing.T) {
	tr := cgl.New()
	for _, k := range []int64{50, 25, 75, 60, 90, 55, 65} {
		tr.Insert(keys.Map(k))
	}
	if !tr.Delete(keys.Map(50)) {
		t.Fatal("delete failed")
	}
	for _, k := range []int64{25, 75, 60, 90, 55, 65} {
		if !tr.Search(keys.Map(k)) {
			t.Fatalf("key %d lost", k)
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestKeysOrdered(t *testing.T) {
	tr := cgl.New()
	for _, k := range []int64{5, 1, 9, 3, 7} {
		tr.Insert(keys.Map(k))
	}
	last := int64(-1 << 62)
	tr.Keys(func(u uint64) bool {
		k := keys.Unmap(u)
		if k <= last {
			t.Fatalf("out of order: %d after %d", k, last)
		}
		last = k
		return true
	})
}
