// Package cgl is a coarse-grained-lock binary search tree: one RWMutex
// around a plain sequential internal BST.
//
// It is not part of the paper's evaluation; it serves as (a) the obvious
// floor every concurrent algorithm must beat under contention, and (b) a
// trivially correct reference used by differential stress tests.
package cgl

import (
	"fmt"
	"sync"

	"repro/internal/keys"
)

type node struct {
	key         uint64
	left, right *node
}

// Tree is a coarse-locked sequential BST. All methods are safe for
// concurrent use.
type Tree struct {
	mu   sync.RWMutex
	root *node
	size int
}

// New creates an empty tree.
func New() *Tree { return &Tree{} }

// Search reports whether key is present (shared lock).
func (t *Tree) Search(key uint64) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return true
		}
	}
	return false
}

// Insert adds key if absent (exclusive lock).
func (t *Tree) Insert(key uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	link := &t.root
	for *link != nil {
		n := *link
		switch {
		case key < n.key:
			link = &n.left
		case key > n.key:
			link = &n.right
		default:
			return false
		}
	}
	*link = &node{key: key}
	t.size++
	return true
}

// Delete removes key if present (exclusive lock). A node with two children
// is replaced by its in-order successor.
func (t *Tree) Delete(key uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	link := &t.root
	for *link != nil && (*link).key != key {
		n := *link
		if key < n.key {
			link = &n.left
		} else {
			link = &n.right
		}
	}
	n := *link
	if n == nil {
		return false
	}
	switch {
	case n.left == nil:
		*link = n.right
	case n.right == nil:
		*link = n.left
	default:
		// Two children: splice in the successor (leftmost of right subtree).
		slink := &n.right
		for (*slink).left != nil {
			slink = &(*slink).left
		}
		s := *slink
		*slink = s.right
		s.left, s.right = n.left, n.right
		*link = s
	}
	t.size--
	return true
}

// Size returns the number of stored keys.
func (t *Tree) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Keys visits keys in ascending order under the shared lock.
func (t *Tree) Keys(yield func(uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	visit(t.root, yield)
}

func visit(n *node, yield func(uint64) bool) bool {
	if n == nil {
		return true
	}
	return visit(n.left, yield) && yield(n.key) && visit(n.right, yield)
}

// Audit validates BST ordering and the size counter.
func (t *Tree) Audit() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, err := audit(t.root, 0, ^uint64(0))
	if err != nil {
		return err
	}
	if n != t.size {
		return fmt.Errorf("size counter %d, actual %d", t.size, n)
	}
	return nil
}

func audit(n *node, lo, hi uint64) (int, error) {
	if n == nil {
		return 0, nil
	}
	if n.key < lo || n.key > hi {
		return 0, fmt.Errorf("key %#x outside [%#x, %#x]", n.key, lo, hi)
	}
	if keys.IsSentinel(n.key) {
		return 0, fmt.Errorf("sentinel key %#x stored as user key", n.key)
	}
	var nl, nr int
	var err error
	if n.left != nil {
		if n.key == 0 {
			return 0, fmt.Errorf("key 0 has left child")
		}
		if nl, err = audit(n.left, lo, n.key-1); err != nil {
			return 0, err
		}
	}
	if n.right != nil {
		if nr, err = audit(n.right, n.key+1, hi); err != nil {
			return 0, err
		}
	}
	return nl + nr + 1, nil
}
