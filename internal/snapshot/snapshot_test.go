package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeKeys(t *testing.T, dir string, walSeq uint64, keys []int64) Info {
	t.Helper()
	info, err := Write(dir, walSeq, func(emit func(int64) error) error {
		for _, k := range keys {
			if err := emit(k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	return info
}

func loadKeys(t *testing.T, path string, chunk int) (uint64, []int64) {
	t.Helper()
	var keys []int64
	walSeq, count, err := Load(path, chunk, func(ch []int64) error {
		keys = append(keys, ch...)
		return nil
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if count != uint64(len(keys)) {
		t.Fatalf("Load count = %d but streamed %d keys", count, len(keys))
	}
	return walSeq, keys
}

func TestWriteLoadRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 4096, 4097, 10000} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			dir := t.TempDir()
			keys := make([]int64, n)
			for i := range keys {
				keys[i] = int64(i*3 - n) // ascending, crosses zero
			}
			info := writeKeys(t, dir, uint64(n)+7, keys)
			if info.Count != uint64(n) {
				t.Fatalf("Info.Count = %d, want %d", info.Count, n)
			}
			st, err := os.Stat(info.Path)
			if err != nil {
				t.Fatalf("snapshot not published: %v", err)
			}
			if st.Size() != info.Bytes {
				t.Fatalf("Info.Bytes = %d, file is %d", info.Bytes, st.Size())
			}
			walSeq, got := loadKeys(t, info.Path, 1000)
			if walSeq != uint64(n)+7 {
				t.Fatalf("walSeq = %d, want %d", walSeq, n+7)
			}
			if len(got) != n {
				t.Fatalf("loaded %d keys, want %d", len(got), n)
			}
			for i := range keys {
				if got[i] != keys[i] {
					t.Fatalf("key[%d] = %d, want %d", i, got[i], keys[i])
				}
			}
		})
	}
}

func TestWriteRejectsUnsortedKeys(t *testing.T) {
	dir := t.TempDir()
	_, err := Write(dir, 1, func(emit func(int64) error) error {
		if err := emit(5); err != nil {
			return err
		}
		return emit(5) // duplicate: not strictly ascending
	})
	if err == nil {
		t.Fatal("Write accepted non-ascending keys")
	}
	// No file — final or temp — may remain.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("failed Write left files behind: %v", ents)
	}
}

func TestListNewestFirst(t *testing.T) {
	dir := t.TempDir()
	writeKeys(t, dir, 5, []int64{1})
	writeKeys(t, dir, 50, []int64{1, 2})
	writeKeys(t, dir, 20, []int64{3})
	// A stray tmp file must be invisible.
	os.WriteFile(filepath.Join(dir, "snap-00000000000000ff.bst.tmp"), []byte("x"), 0o644)
	ents, err := List(dir)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(ents) != 3 || ents[0].WALSeq != 50 || ents[1].WALSeq != 20 || ents[2].WALSeq != 5 {
		t.Fatalf("List = %+v, want horizons [50 20 5]", ents)
	}
}

func TestListMissingDir(t *testing.T) {
	ents, err := List(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(ents) != 0 {
		t.Fatalf("List on missing dir = (%v, %v), want (empty, nil)", ents, err)
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(i)
	}
	info := writeKeys(t, dir, 9, keys)
	pristine, err := os.ReadFile(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func(b []byte) []byte) {
		t.Run(name, func(t *testing.T) {
			b := append([]byte(nil), pristine...)
			b = f(b)
			if err := os.WriteFile(info.Path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := Load(info.Path, 128, func([]int64) error { return nil })
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load on %s = %v, want ErrCorrupt", name, err)
			}
		})
	}
	mutate("flipped-key-byte", func(b []byte) []byte { b[headerLen+123] ^= 0xFF; return b })
	mutate("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("truncated-mid-key", func(b []byte) []byte { return b[:len(b)-trailerLen-3] })
	mutate("truncated-whole-keys", func(b []byte) []byte {
		// Drop 8 keys AND fix up nothing: size is plausible but the
		// trailer count and CRC both disagree.
		n := len(b)
		copy(b[n-8*8-trailerLen:], b[n-trailerLen:])
		return b[:n-8*8]
	})
	mutate("flipped-crc", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b })
	mutate("flipped-count", func(b []byte) []byte { b[len(b)-trailerLen] ^= 0xFF; return b })
}

func TestGC(t *testing.T) {
	dir := t.TempDir()
	writeKeys(t, dir, 5, []int64{1})
	writeKeys(t, dir, 20, []int64{1})
	keep := writeKeys(t, dir, 50, []int64{1})
	os.WriteFile(filepath.Join(dir, "snap-0000000000000063.bst.tmp"), []byte("stale"), 0o644)

	removed, err := GC(dir, 50)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if removed != 3 { // two old snapshots + one tmp
		t.Fatalf("GC removed %d files, want 3", removed)
	}
	ents, err := List(dir)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(ents) != 1 || ents[0].Path != keep.Path {
		t.Fatalf("after GC List = %+v, want only %s", ents, keep.Path)
	}
}
