package snapshot

import (
	"os"
	"reflect"
	"sync"
	"testing"
)

// TestGCSkipsPinnedSnapshot is the regression test for snapshot GC racing
// a concurrent checkpoint: a replication leader that picked a snapshot for
// a catching-up follower pins it, and a checkpoint that completes
// mid-stream must not remove it.
func TestGCSkipsPinnedSnapshot(t *testing.T) {
	dir := t.TempDir()
	old := writeKeys(t, dir, 10, []int64{1, 2, 3})

	release := Pin(old.Path)

	// A checkpoint supersedes the pinned snapshot and GCs.
	writeKeys(t, dir, 20, []int64{1, 2, 3, 4})
	removed, err := GC(dir, 20)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if removed != 0 {
		t.Fatalf("GC removed %d file(s); the pinned snapshot must survive", removed)
	}
	if _, err := os.Stat(old.Path); err != nil {
		t.Fatalf("pinned snapshot vanished: %v", err)
	}

	// The pinned file is still fully readable — the follower's bulk load
	// source is intact.
	walSeq, keys := loadKeys(t, old.Path, 2)
	if walSeq != 10 || !reflect.DeepEqual(keys, []int64{1, 2, 3}) {
		t.Fatalf("pinned snapshot content changed: walSeq=%d keys=%v", walSeq, keys)
	}

	// Release; the next GC reclaims it.
	release()
	release() // idempotent
	removed, err = GC(dir, 20)
	if err != nil {
		t.Fatalf("GC after release: %v", err)
	}
	if removed != 1 {
		t.Fatalf("GC after release removed %d file(s), want 1", removed)
	}
	if _, err := os.Stat(old.Path); !os.IsNotExist(err) {
		t.Fatalf("released snapshot still present (err=%v)", err)
	}
}

// TestPinRefcount: two concurrent readers of the same snapshot; the file
// survives until the last one releases.
func TestPinRefcount(t *testing.T) {
	dir := t.TempDir()
	old := writeKeys(t, dir, 5, []int64{7})
	writeKeys(t, dir, 9, []int64{7, 8})

	r1 := Pin(old.Path)
	r2 := Pin(old.Path)
	r1()
	if n, err := GC(dir, 9); err != nil || n != 0 {
		t.Fatalf("GC with one pin left: removed=%d err=%v", n, err)
	}
	r2()
	if n, err := GC(dir, 9); err != nil || n != 1 {
		t.Fatalf("GC after all pins released: removed=%d err=%v", n, err)
	}
}

// TestPinUnderConcurrentGC hammers Pin/Load against concurrent GC cycles:
// a pinned snapshot must always open and load cleanly no matter how many
// checkpoints supersede it meanwhile.
func TestPinUnderConcurrentGC(t *testing.T) {
	dir := t.TempDir()
	base := writeKeys(t, dir, 1, []int64{1, 2, 3, 4, 5})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint64(2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			writeKeys(t, dir, seq, []int64{1, 2, 3, 4, 5, int64(seq) + 10})
			if _, err := GC(dir, seq); err != nil {
				t.Errorf("GC: %v", err)
				return
			}
			seq++
		}
	}()

	// One long pin held across many superseding checkpoints, like a slow
	// follower bulk-load: every chunked read of the pinned file must keep
	// succeeding.
	release := Pin(base.Path)
	for i := 0; i < 50; i++ {
		if _, _, err := Load(base.Path, 2, func([]int64) error { return nil }); err != nil {
			t.Fatalf("iteration %d: pinned snapshot failed to load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	release()
	if _, err := GC(dir, ^uint64(0)); err != nil {
		t.Fatalf("final GC: %v", err)
	}
	if _, err := os.Stat(base.Path); !os.IsNotExist(err) {
		t.Fatalf("base snapshot survived its release (err=%v)", err)
	}
}
