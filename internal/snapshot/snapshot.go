// Package snapshot reads and writes checkpoint files: the sorted key set
// of a tree at a moment in time, paired with the WAL sequence horizon the
// checkpoint covers.
//
// # Format
//
// A snapshot is a single file, all integers big-endian:
//
//	8  bytes  magic "BSTSNAP1"
//	8  bytes  walSeq — every logged op with seq ≤ walSeq is reflected
//	8N bytes  keys, strictly ascending two's-complement int64
//	8  bytes  count (= N), so a truncated file cannot masquerade as short
//	4  bytes  CRC-32C of everything above
//
// The count and CRC live in a trailer because the writer streams keys from
// an epoch-pinned Tree.Scan and does not know N up front. The file is
// written to a .tmp name, fsynced, and renamed into place, so a crash
// during checkpointing leaves at most a stale .tmp (collected by GC) and
// never a half-visible snapshot: a snapshot that exists under its final
// name is complete or detectably corrupt, nothing in between.
//
// # Naming
//
// snap-<walSeq as 16 hex digits>.bst — lexical order is horizon order, so
// "newest" needs no metadata. Recovery tries newest first and falls back;
// GC keeps the newest and removes the rest.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	magic      = "BSTSNAP1"
	filePrefix = "snap-"
	fileSuffix = ".bst"
	tmpSuffix  = ".tmp"
	headerLen  = 8 + 8 // magic + walSeq
	trailerLen = 8 + 4 // count + crc
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a snapshot that failed validation (bad magic, size,
// count, ordering or CRC). Recovery treats it as absent and falls back to
// an older snapshot.
var ErrCorrupt = errors.New("snapshot: corrupt")

// Info describes one written snapshot.
type Info struct {
	Path   string
	WALSeq uint64
	Count  uint64
	Bytes  int64
}

// Write streams the keys produced by src into a new snapshot covering
// walSeq and atomically publishes it. src must emit keys in strictly
// ascending order (Tree.Scan's contract); Write enforces this. The emit
// callback returns an error only when writing fails, letting src abort.
func Write(dir string, walSeq uint64, src func(emit func(int64) error) error) (Info, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Info{}, fmt.Errorf("snapshot: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("%s%016x%s", filePrefix, walSeq, fileSuffix))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return Info{}, fmt.Errorf("snapshot: %w", err)
	}
	// Any failure path removes the temp file; the final name only ever
	// appears via the rename at the bottom.
	cleanup := func(err error) (Info, error) {
		f.Close()
		os.Remove(tmp)
		return Info{}, err
	}

	crc := crc32.New(castagnoli)
	bw := bufio.NewWriterSize(f, 1<<20)
	write := func(b []byte) error {
		crc.Write(b) // hash.Hash.Write never fails
		_, err := bw.Write(b)
		return err
	}

	var hdr [headerLen]byte
	copy(hdr[:8], magic)
	binary.BigEndian.PutUint64(hdr[8:], walSeq)
	if err := write(hdr[:]); err != nil {
		return cleanup(fmt.Errorf("snapshot: %w", err))
	}

	var (
		count   uint64
		prev    int64
		keyBuf  [8]byte
		wrapped error
	)
	emit := func(k int64) error {
		if count > 0 && k <= prev {
			wrapped = fmt.Errorf("snapshot: keys not strictly ascending (%d after %d)", k, prev)
			return wrapped
		}
		prev = k
		count++
		binary.BigEndian.PutUint64(keyBuf[:], uint64(k))
		if err := write(keyBuf[:]); err != nil {
			wrapped = fmt.Errorf("snapshot: %w", err)
			return wrapped
		}
		return nil
	}
	if err := src(emit); err != nil {
		if wrapped != nil {
			err = wrapped
		}
		return cleanup(err)
	}

	var tr [trailerLen]byte
	binary.BigEndian.PutUint64(tr[:8], count)
	crc.Write(tr[:8])
	binary.BigEndian.PutUint32(tr[8:], crc.Sum32())
	if _, err := bw.Write(tr[:]); err != nil {
		return cleanup(fmt.Errorf("snapshot: %w", err))
	}
	if err := bw.Flush(); err != nil {
		return cleanup(fmt.Errorf("snapshot: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("snapshot: fsync: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return Info{}, fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return Info{}, fmt.Errorf("snapshot: publish: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return Info{}, err
	}
	size := int64(headerLen) + int64(count)*8 + trailerLen
	return Info{Path: final, WALSeq: walSeq, Count: count, Bytes: size}, nil
}

// Entry is one on-disk snapshot found by List.
type Entry struct {
	Path   string
	WALSeq uint64
}

// List returns dir's snapshots newest-horizon first. Stale .tmp files and
// foreign names are ignored.
func List(dir string) ([]Entry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var out []Entry
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		hexs := strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix)
		seq, err := strconv.ParseUint(hexs, 16, 64)
		if err != nil {
			continue
		}
		out = append(out, Entry{Path: filepath.Join(dir, name), WALSeq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WALSeq > out[j].WALSeq })
	return out, nil
}

// Load streams a snapshot's keys to fn in ascending order, in chunks of at
// most chunk keys (the slice is reused between calls — fn must not retain
// it). The CRC covers the whole file and is verified as the stream is
// read, but only checked at the end: by the time Load returns nil, every
// chunk fn saw is validated; if Load returns ErrCorrupt the caller must
// discard whatever it built from the chunks. It returns the WAL horizon
// and key count.
func Load(path string, chunk int, fn func([]int64) error) (walSeq, count uint64, err error) {
	if chunk <= 0 {
		chunk = 4096
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("snapshot: %w", err)
	}
	size := st.Size()
	if size < headerLen+trailerLen || (size-headerLen-trailerLen)%8 != 0 {
		return 0, 0, fmt.Errorf("%w: implausible size %d", ErrCorrupt, size)
	}
	n := uint64(size-headerLen-trailerLen) / 8

	crc := crc32.New(castagnoli)
	br := bufio.NewReaderSize(f, 1<<20)
	readFull := func(b []byte) error {
		if _, err := io.ReadFull(br, b); err != nil {
			return fmt.Errorf("%w: short read: %v", ErrCorrupt, err)
		}
		return nil
	}

	var hdr [headerLen]byte
	if err := readFull(hdr[:]); err != nil {
		return 0, 0, err
	}
	if string(hdr[:8]) != magic {
		return 0, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	crc.Write(hdr[:])
	walSeq = binary.BigEndian.Uint64(hdr[8:])

	buf := make([]byte, chunk*8)
	keys := make([]int64, chunk)
	var prev int64
	var read uint64
	for read < n {
		batch := uint64(chunk)
		if n-read < batch {
			batch = n - read
		}
		b := buf[:batch*8]
		if err := readFull(b); err != nil {
			return walSeq, 0, err
		}
		crc.Write(b)
		for i := uint64(0); i < batch; i++ {
			k := int64(binary.BigEndian.Uint64(b[i*8:]))
			if read+i > 0 && k <= prev {
				return walSeq, 0, fmt.Errorf("%w: keys not ascending", ErrCorrupt)
			}
			prev = k
			keys[i] = k
		}
		if err := fn(keys[:batch]); err != nil {
			return walSeq, 0, err
		}
		read += batch
	}

	var tr [trailerLen]byte
	if err := readFull(tr[:]); err != nil {
		return walSeq, 0, err
	}
	if got := binary.BigEndian.Uint64(tr[:8]); got != n {
		return walSeq, 0, fmt.Errorf("%w: trailer count %d, file holds %d keys", ErrCorrupt, got, n)
	}
	crc.Write(tr[:8])
	if got := binary.BigEndian.Uint32(tr[8:]); got != crc.Sum32() {
		return walSeq, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	return walSeq, n, nil
}

// pins is the process-local registry of snapshots currently being read —
// a replication leader streaming a snapshot to a catching-up follower pins
// its source file so a checkpoint finishing mid-stream cannot GC it out
// from under the reader. Refcounted: the same snapshot may feed several
// followers at once.
var (
	pinMu sync.Mutex
	pins  = map[string]int{}
)

// Pin marks the snapshot at path as in-use and returns its release
// function (idempotent). GC skips pinned snapshots; callers pin between
// List (choosing a snapshot) and the end of Load (streaming it) — the
// window in which a concurrent checkpoint could otherwise supersede and
// remove it.
func Pin(path string) (release func()) {
	key := filepath.Clean(path)
	pinMu.Lock()
	pins[key]++
	pinMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			pinMu.Lock()
			if pins[key]--; pins[key] <= 0 {
				delete(pins, key)
			}
			pinMu.Unlock()
		})
	}
}

func isPinned(path string) bool {
	pinMu.Lock()
	defer pinMu.Unlock()
	return pins[filepath.Clean(path)] > 0
}

// GC removes snapshots superseded by the one at keepWALSeq (strictly older
// horizons) and any stale .tmp files left by crashed checkpoints. Pinned
// snapshots (see Pin) are skipped and picked up by a later GC once
// released. Returns the number of files removed.
func GC(dir string, keepWALSeq uint64) (int, error) {
	removed := 0
	ents, err := List(dir)
	if err != nil {
		return 0, err
	}
	for _, e := range ents {
		if e.WALSeq >= keepWALSeq || isPinned(e.Path) {
			continue
		}
		if err := os.Remove(e.Path); err != nil {
			return removed, fmt.Errorf("snapshot: gc: %w", err)
		}
		removed++
	}
	dents, err := os.ReadDir(dir)
	if err != nil {
		return removed, fmt.Errorf("snapshot: %w", err)
	}
	for _, e := range dents {
		if strings.HasPrefix(e.Name(), filePrefix) && strings.HasSuffix(e.Name(), tmpSuffix) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return removed, fmt.Errorf("snapshot: gc tmp: %w", err)
			}
			removed++
		}
	}
	if removed > 0 {
		if err := syncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("snapshot: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("snapshot: sync dir: %w", err)
	}
	return nil
}
