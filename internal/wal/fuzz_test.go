package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRecordDecode holds DecodeFrame to the recovery contract on
// arbitrary bytes: every outcome is exactly one of accept, ErrTornFrame
// (bytes stop mid-frame — truncatable tail), or ErrCorrupt (a complete
// but damaged frame — refuse the log); an accepted frame re-encodes to
// the identical bytes; and flipping any single bit inside an accepted
// frame must not yield a different accepted record (CRC coverage).
func FuzzRecordDecode(f *testing.F) {
	f.Add(appendRecord(nil, Record{Seq: 1, Op: OpInsert, Key: 42}))
	f.Add(appendRecord(nil, Record{Seq: 1 << 40, Op: OpDelete, Key: -9}))
	f.Add(appendRecord(nil, Record{Seq: 7, Op: OpInsert, Key: 3})[:frameLen-3])
	f.Add(append(appendRecord(nil, Record{Seq: 2, Op: OpInsert, Key: 8}), 0xfe))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeFrame(data)
		switch {
		case errors.Is(err, ErrTornFrame), errors.Is(err, ErrCorrupt):
			return
		case err != nil:
			t.Fatalf("DecodeFrame: unexpected error class %v", err)
		}
		if n < frameLen || n > len(data) {
			t.Fatalf("DecodeFrame consumed %d bytes of %d", n, len(data))
		}
		if r.Op != OpInsert && r.Op != OpDelete {
			t.Fatalf("accepted record with invalid op %d", r.Op)
		}
		if got := appendRecord(nil, r); !bytes.Equal(got, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, data[:n])
		}
		// Single-bit damage anywhere in the accepted frame must not decode
		// to a different valid record.
		for i := 0; i < n; i++ {
			for bit := 0; bit < 8; bit++ {
				mut := bytes.Clone(data[:n])
				mut[i] ^= 1 << bit
				if r2, _, err := DecodeFrame(mut); err == nil {
					t.Fatalf("bit flip at byte %d bit %d went undetected (decoded %+v)", i, bit, r2)
				}
			}
		}
	})
}
