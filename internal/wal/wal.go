// Package wal is an append-only write-ahead log of set mutations
// (insert/delete of an int64 key) with group commit.
//
// # Format
//
// A log is a directory of segment files named wal-<firstseq>.log (16 hex
// digits). Each segment starts with an 8-byte magic ("BSTWAL01") followed
// by frames (see record.go): a 4-byte length, a 4-byte CRC-32C, and the
// payload. Sequence numbers are dense and ascending across the segment
// chain; a segment's name is the sequence number of its first record.
//
// # Group commit
//
// Appenders never touch the file. Append encodes the record into a shared
// in-memory buffer under a mutex and — under the fsync policy — waits for
// the single flusher goroutine to write and fsync the batch it joined.
// Every appender that arrives while an fsync is in progress joins the next
// batch, so one fsync amortizes over all concurrent appenders (the group):
// latency stays one fsync, throughput scales with the offered concurrency.
//
// # Sync policies
//
// SyncFsync acks an append only after its batch is fsynced: acked ⇒
// durable, the contract a system of record needs. SyncInterval acks after
// the record is buffered and fsyncs on a timer: a crash loses at most the
// last interval. SyncNone never fsyncs outside Close: the OS page cache
// decides, which survives process kills but not machine crashes.
//
// # Torn tails
//
// A crash mid-append leaves a partial final frame. Open detects it — the
// bytes end before the frame's length prefix says the frame does, or the
// final frame's CRC fails — truncates it away, and continues: those bytes
// were never acked (the fsync that would have acked them never completed).
// A CRC failure anywhere *before* the final frame is different: complete
// frames follow it, so the bytes were durable once and have since rotted
// or been overwritten. Open refuses the log (ErrCorrupt) rather than
// silently dropping acknowledged history.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
	"repro/internal/metrics"
)

// FPFsync is the failpoint site the flusher hits immediately before each
// segment fsync (see Options.Failpoints): a stall here is a slow disk, a
// failure is a dying one.
const FPFsync = "wal-fsync"

// SyncPolicy selects when appends become durable.
type SyncPolicy uint8

const (
	// SyncFsync fsyncs every group commit before acknowledging its
	// appenders: acked ⇒ durable.
	SyncFsync SyncPolicy = iota
	// SyncInterval acknowledges after buffering and fsyncs on a timer
	// (Options.Interval): bounded loss window, near-SyncNone throughput.
	SyncInterval
	// SyncNone acknowledges after buffering and never fsyncs outside
	// Close/Sync: page-cache durability only.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncFsync:
		return "fsync"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParseSyncPolicy parses "fsync", "interval" or "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "fsync":
		return SyncFsync, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want fsync, interval or none)", s)
	}
}

const (
	segMagic       = "BSTWAL01"
	segPrefix      = "wal-"
	segSuffix      = ".log"
	defaultSegment = 64 << 20
	defaultFlushIv = 5 * time.Millisecond
)

// Options configures Open.
type Options struct {
	// Sync is the durability policy (default SyncFsync).
	Sync SyncPolicy
	// Interval is the fsync period under SyncInterval (default 5ms).
	Interval time.Duration
	// SegmentBytes rotates the active segment when it exceeds this size
	// (default 64 MiB). Rotation bounds what checkpoint GC can reclaim.
	SegmentBytes int64
	// NextSeq, when non-zero, is the minimum sequence number the log will
	// assign to its next record. Recovery passes checkpointHorizon+1 so a
	// log whose checkpointed segments were all garbage-collected can never
	// reissue sequence numbers the snapshot already covers.
	NextSeq uint64
	// Logf, when non-nil, receives one line per notable event (torn-tail
	// truncation, segment rotation, GC).
	Logf func(format string, args ...any)
	// Failpoints wires the FP* sites for fault-injection tests (an armed
	// FPFsync stalls or fails the flusher right before it fsyncs, which is
	// how tests make "the disk is slow" deterministic). Leave nil in
	// production.
	Failpoints *failpoint.Set
	// Tap, when non-nil, receives every flushed run of frames right after
	// they hit the segment file (before the fsync, so replication shipping
	// overlaps the disk wait): the verbatim frame bytes and the sequence
	// range they cover. Called from the flusher goroutine with internal
	// locks held — the tap must be fast and must not retain frames past the
	// call (the buffer is recycled).
	Tap func(frames []byte, firstSeq, lastSeq uint64)
}

// Stats is a point-in-time snapshot of the log's counters. Monotonic
// unless noted.
type Stats struct {
	Appends       uint64 // records appended
	Groups        uint64 // group commits (write batches)
	GroupRecords  uint64 // records covered by those groups (≥ Appends once flushed)
	MaxGroup      uint64 // largest single group
	Fsyncs        uint64 // fsync calls on segment files
	BytesWritten  uint64 // payload bytes written (frames, not counting the magic)
	Rotations     uint64 // segment rotations
	TornTruncated uint64 // bytes truncated from the tail at Open
	LastSeq       uint64 // newest assigned sequence number (gauge)
	DurableSeq    uint64 // newest sequence number known fsynced (gauge; SyncFsync only advances it on sync)
	Segments      int    // live segment files (gauge)
	FsyncNanos    metrics.LatencySnapshot
}

// segInfo is one on-disk segment.
type segInfo struct {
	path     string
	firstSeq uint64
}

// batch is one group commit: every appender that joined waits on done.
type batch struct {
	done    chan struct{}
	err     error
	n       uint64
	lastSeq uint64
}

// Log is an open write-ahead log. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex // guards buf, cur, nextSeq, err, closed, segments
	buf     []byte
	cur     *batch
	nextSeq uint64
	err     error // sticky: a failed write/fsync poisons the log
	closed  bool

	segments []segInfo // all segments, ascending; last is active

	flushMu  sync.Mutex // serializes flushes so frames hit the file in seq order
	f        *os.File
	fileSize int64
	needSync bool // bytes written since the last fsync (under flushMu)

	notify chan struct{}
	quit   chan struct{}
	done   chan struct{}
	dirty  atomic.Bool // CloseDirty: final flush must skip fsync

	// Counters (written under flushMu except appends/lastSeq).
	appends      atomic.Uint64
	groups       atomic.Uint64
	groupRecs    atomic.Uint64
	maxGroup     atomic.Uint64
	fsyncs       atomic.Uint64
	bytesWritten atomic.Uint64
	rotations    atomic.Uint64
	tornBytes    atomic.Uint64
	durableSeq   atomic.Uint64
	fsyncHist    histo
}

// histo is a single-writer power-of-two-bucket nanosecond histogram in the
// style of internal/metrics shards: stores are plain (one writer), loads
// atomic, so scrapes never block the flusher.
type histo struct {
	buckets [metrics.NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

func (h *histo) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	i := 0
	for v := ns; v != 0; v >>= 1 {
		i++
	}
	if i >= metrics.NumBuckets {
		i = metrics.NumBuckets - 1
	}
	b := &h.buckets[i]
	b.Store(b.Load() + 1)
	h.count.Store(h.count.Load() + 1)
	h.sum.Store(h.sum.Load() + ns)
}

func (h *histo) snapshot() metrics.LatencySnapshot {
	var l metrics.LatencySnapshot
	for i := range h.buckets {
		l.Buckets[i] = h.buckets[i].Load()
	}
	l.Count = h.count.Load()
	l.SumNanos = h.sum.Load()
	return l
}

// Open opens (or creates) the log in dir, scanning existing segments to
// find the next sequence number, truncating a torn tail, and refusing
// interior corruption. The flusher goroutine starts immediately; call
// Replay before the first Append if the caller needs the existing records.
func Open(dir string, opts Options) (*Log, error) {
	if opts.Interval <= 0 {
		opts.Interval = defaultFlushIv
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegment
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:    dir,
		opts:   opts,
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l.segments = segs
	l.nextSeq = 1
	if opts.NextSeq > 0 {
		l.nextSeq = opts.NextSeq
	}

	// Validate the chain: interior segments must be clean end to end; the
	// final segment may carry a torn tail, which is truncated away.
	for i, seg := range segs {
		last := i == len(segs)-1
		lastSeq, goodLen, total, err := validateSegment(seg.path, seg.firstSeq)
		if err != nil {
			if !last && errors.Is(err, ErrTornFrame) {
				// A torn tail on a non-final segment is impossible from a
				// crashed append (appends only ever touch the last segment):
				// the chain itself is damaged.
				return nil, fmt.Errorf("%w: segment %s ends mid-frame but later segments exist", ErrCorrupt, filepath.Base(seg.path))
			}
			if !last || !errors.Is(err, ErrTornFrame) {
				return nil, fmt.Errorf("wal: segment %s: %w", filepath.Base(seg.path), err)
			}
			// Torn tail on the final segment: truncate to the last clean
			// frame boundary. Those bytes were never acknowledged.
			if terr := os.Truncate(seg.path, goodLen); terr != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(seg.path), terr)
			}
			l.tornBytes.Store(uint64(total - goodLen))
			l.logf("wal: truncated %d torn byte(s) from %s", total-goodLen, filepath.Base(seg.path))
			if serr := syncDir(dir); serr != nil {
				return nil, serr
			}
		}
		if lastSeq >= l.nextSeq {
			l.nextSeq = lastSeq + 1
		}
	}

	// Open (or create) the active segment for appending.
	if len(l.segments) == 0 {
		if err := l.createSegmentLocked(l.nextSeq); err != nil {
			return nil, err
		}
	} else {
		active := l.segments[len(l.segments)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.fileSize = f, st.Size()
	}
	l.durableSeq.Store(l.nextSeq - 1) // everything on disk at Open is as durable as it will get
	go l.flusher()
	return l, nil
}

func (l *Log) logf(format string, args ...any) {
	if l.opts.Logf != nil {
		l.opts.Logf(format, args...)
	}
}

// LastSeq returns the newest assigned sequence number (0 if none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// DurableSeq returns the newest sequence number known fsynced (under
// SyncInterval/SyncNone it advances only when an fsync actually happens).
func (l *Log) DurableSeq() uint64 { return l.durableSeq.Load() }

// FirstSeq returns the sequence number of the oldest record the log still
// retains (the first segment's first record). Records below it have been
// garbage-collected by a checkpoint; a replication subscriber that needs
// them must catch up from a snapshot instead.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segments) == 0 {
		return l.nextSeq
	}
	return l.segments[0].firstSeq
}

// SkipTo advances an empty log so its next record is assigned seq+1,
// replacing the empty active segment with one named for the new floor (a
// segment's name must match its first record for chain validation). A
// follower that bulk-loads a shipped snapshot covering walSeq calls this
// so its local log numbering continues the leader's. It refuses a log that
// has ever assigned a sequence number.
func (l *Log) SkipTo(seq uint64) error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.nextSeq != 1 || len(l.buf) > 0 || len(l.segments) != 1 {
		l.mu.Unlock()
		return errors.New("wal: SkipTo on a non-empty log")
	}
	if seq == 0 {
		l.mu.Unlock()
		return nil
	}
	old := l.segments[0]
	l.segments = l.segments[:0]
	l.nextSeq = seq + 1
	l.mu.Unlock()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: skip-to close: %w", err)
	}
	if err := os.Remove(old.path); err != nil {
		return fmt.Errorf("wal: skip-to remove: %w", err)
	}
	if err := l.createSegmentLocked(seq + 1); err != nil {
		return err
	}
	l.durableSeq.Store(seq)
	return nil
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	lastSeq := l.nextSeq - 1
	segs := len(l.segments)
	l.mu.Unlock()
	return Stats{
		Appends:       l.appends.Load(),
		Groups:        l.groups.Load(),
		GroupRecords:  l.groupRecs.Load(),
		MaxGroup:      l.maxGroup.Load(),
		Fsyncs:        l.fsyncs.Load(),
		BytesWritten:  l.bytesWritten.Load(),
		Rotations:     l.rotations.Load(),
		TornTruncated: l.tornBytes.Load(),
		LastSeq:       lastSeq,
		DurableSeq:    l.durableSeq.Load(),
		Segments:      segs,
		FsyncNanos:    l.fsyncHist.snapshot(),
	}
}

// Ticket is an enqueued append: the sequence number is assigned, the bytes
// are buffered, and Wait blocks until the record is durable per the log's
// sync policy.
type Ticket struct {
	seq uint64
	b   *batch
	l   *Log
	err error
}

// Enqueue assigns the next sequence number to a record and buffers its
// frame. It never blocks on I/O, so callers may hold fine-grained locks
// (the durable layer's per-key stripes) across it — that is the whole
// point: the lock-held section stays nanoseconds while the fsync wait
// happens outside via Wait.
func (l *Log) Enqueue(op uint8, key int64) Ticket {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return Ticket{err: err}
	}
	if l.closed {
		l.mu.Unlock()
		return Ticket{err: errClosed}
	}
	seq := l.nextSeq
	l.nextSeq++
	l.buf = appendRecord(l.buf, Record{Seq: seq, Op: op, Key: key})
	if l.cur == nil {
		l.cur = &batch{done: make(chan struct{})}
	}
	l.cur.n++
	l.cur.lastSeq = seq
	b := l.cur
	l.mu.Unlock()
	l.appends.Add(1)
	select {
	case l.notify <- struct{}{}:
	default:
	}
	return Ticket{seq: seq, b: b, l: l}
}

var errClosed = errors.New("wal: log closed")

// Seq returns the ticket's assigned sequence number (0 on a failed
// enqueue).
func (t Ticket) Seq() uint64 { return t.seq }

// Empty reports whether the ticket is the zero value — no record was
// enqueued, so there is nothing to wait for. Batched-ack paths that track
// "the last ticket of a window" use it to skip the wait on all-read
// windows.
func (t Ticket) Empty() bool { return t.l == nil && t.err == nil }

// Wait blocks until the ticket's record is durable under the log's sync
// policy and returns the sequence number. Under SyncInterval and SyncNone
// buffering is already "durable enough" and Wait returns immediately. A
// zero Ticket waits for nothing and returns (0, nil).
func (t Ticket) Wait() (uint64, error) {
	if t.err != nil {
		return 0, t.err
	}
	if t.l == nil || t.l.opts.Sync != SyncFsync {
		return t.seq, nil
	}
	<-t.b.done
	if t.b.err != nil {
		return 0, t.b.err
	}
	return t.seq, nil
}

// Append logs one record and blocks until it is durable per the sync
// policy, returning its sequence number. Equivalent to Enqueue().Wait().
func (l *Log) Append(op uint8, key int64) (uint64, error) {
	return l.Enqueue(op, key).Wait()
}

// flusher is the single goroutine that moves buffered frames to disk.
func (l *Log) flusher() {
	defer close(l.done)
	var tick *time.Ticker
	var tickC <-chan time.Time
	if l.opts.Sync == SyncInterval {
		tick = time.NewTicker(l.opts.Interval)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-l.notify:
			l.flushOnce(l.opts.Sync == SyncFsync)
		case <-tickC:
			l.flushOnce(true)
		case <-l.quit:
			l.flushOnce(l.opts.Sync != SyncNone && !l.dirty.Load())
			return
		}
	}
}

// flushOnce writes the pending buffer (rotating first if the active
// segment is full) and optionally fsyncs, then releases the batch's
// waiters. flushMu keeps concurrent callers (flusher, Sync, Close) from
// reordering frames.
func (l *Log) flushOnce(sync bool) {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	l.mu.Lock()
	buf, b := l.buf, l.cur
	l.buf, l.cur = nil, nil
	firstSeq := uint64(0)
	if b != nil {
		firstSeq = b.lastSeq - b.n + 1
	}
	stickyErr := l.err
	l.mu.Unlock()

	finish := func(err error) {
		if err != nil {
			l.mu.Lock()
			if l.err == nil {
				l.err = err
			}
			l.mu.Unlock()
		}
		if b != nil {
			b.err = err
			close(b.done)
		}
	}
	if stickyErr != nil {
		finish(stickyErr)
		return
	}

	if len(buf) > 0 {
		// Rotate before the write when the active segment is over budget,
		// so a segment boundary is also a frame boundary.
		if l.fileSize >= l.opts.SegmentBytes {
			if err := l.rotate(firstSeq); err != nil {
				finish(err)
				return
			}
		}
		if _, err := l.f.Write(buf); err != nil {
			finish(fmt.Errorf("wal: write: %w", err))
			return
		}
		l.fileSize += int64(len(buf))
		l.bytesWritten.Add(uint64(len(buf)))
		l.needSync = true
		if l.opts.Tap != nil && b != nil {
			l.opts.Tap(buf, firstSeq, b.lastSeq)
		}
	}
	if b != nil {
		l.groups.Add(1)
		l.groupRecs.Add(b.n)
		for {
			old := l.maxGroup.Load()
			if b.n <= old || l.maxGroup.CompareAndSwap(old, b.n) {
				break
			}
		}
	}
	if sync && l.needSync {
		if fp := l.opts.Failpoints; fp != nil {
			fp.Hit(FPFsync) // stall-style injection parks the flusher here
		}
		t0 := time.Now()
		if err := l.f.Sync(); err != nil {
			finish(fmt.Errorf("wal: fsync: %w", err))
			return
		}
		l.needSync = false
		l.fsyncs.Add(1)
		l.fsyncHist.observe(time.Since(t0))
		l.mu.Lock()
		l.durableSeq.Store(l.nextSeq - 1 - uint64(len(l.buf))/frameLen)
		l.mu.Unlock()
		if b != nil && b.lastSeq > 0 {
			// The batch's records are certainly durable now.
			for {
				old := l.durableSeq.Load()
				if b.lastSeq <= old || l.durableSeq.CompareAndSwap(old, b.lastSeq) {
					break
				}
			}
		}
	}
	finish(nil)
}

// rotate fsyncs and closes the active segment and starts a new one whose
// first record will be firstSeq. Called under flushMu.
func (l *Log) rotate(firstSeq uint64) error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync on rotate: %w", err)
	}
	l.fsyncs.Add(1)
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close on rotate: %w", err)
	}
	l.rotations.Add(1)
	l.logf("wal: rotating at %d bytes; next segment starts at seq %d", l.fileSize, firstSeq)
	return l.createSegmentLocked(firstSeq)
}

// createSegmentLocked creates a fresh segment for firstSeq and makes it
// the active file. Callers hold flushMu (or are in Open, pre-flusher).
func (l *Log) createSegmentLocked(firstSeq uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.fileSize = f, int64(len(segMagic))
	l.mu.Lock()
	l.segments = append(l.segments, segInfo{path: path, firstSeq: firstSeq})
	l.mu.Unlock()
	return nil
}

// Sync forces all buffered records to disk with an fsync, regardless of
// policy. The durable layer calls it on clean shutdown.
func (l *Log) Sync() error {
	l.flushOnce(true)
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Replay streams every record with sequence number strictly greater than
// after, in order, to fn. The durable layer calls it before the first
// Append (recovery replays, then serves); replication catch-up also calls
// it on a live log, where it observes a consistent prefix — a frame still
// being written looks like a torn tail and is skipped, and the caller
// resumes from the last sequence it saw. A segment GC'd mid-replay
// surfaces as a read error; the caller falls back to snapshot catch-up.
// fn returning an error aborts the replay.
func (l *Log) Replay(after uint64, fn func(Record) error) error {
	l.mu.Lock()
	segs := append([]segInfo(nil), l.segments...)
	l.mu.Unlock()
	for _, seg := range segs {
		if err := scanSegment(seg.path, seg.firstSeq, func(r Record) error {
			if r.Seq <= after {
				return nil
			}
			return fn(r)
		}); err != nil {
			return err
		}
	}
	return nil
}

// RemoveThrough garbage-collects segments whose records all have sequence
// numbers ≤ seq (they are fully covered by a checkpoint). The active
// segment is never removed. Returns the number of segments deleted.
func (l *Log) RemoveThrough(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segments) > 1 {
		// The first segment's records all precede the second's firstSeq.
		if l.segments[1].firstSeq > seq+1 {
			break
		}
		path := l.segments[0].path
		if err := os.Remove(path); err != nil {
			return removed, fmt.Errorf("wal: gc %s: %w", filepath.Base(path), err)
		}
		l.logf("wal: gc removed %s (records ≤ %d checkpointed)", filepath.Base(path), seq)
		l.segments = l.segments[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Close flushes buffered records, fsyncs (even under SyncNone — a clean
// shutdown should leave nothing to the page cache), and closes the file.
func (l *Log) Close() error { return l.close(true) }

// CloseDirty abandons the log the way a crash would, except that buffered
// records are handed to the OS first (a killed process loses its user-space
// buffers too, but tests that truncate the tail themselves need the bytes
// in the file): no fsync, no clean shutdown marker. For crash testing.
func (l *Log) CloseDirty() error {
	l.dirty.Store(true)
	return l.close(false)
}

func (l *Log) close(sync bool) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return l.err
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done
	// The flusher's final flushOnce ran without fsync under SyncNone /
	// CloseDirty semantics; honour the caller's choice here.
	l.flushMu.Lock()
	var err error
	if sync {
		if serr := l.f.Sync(); serr != nil {
			err = fmt.Errorf("wal: final fsync: %w", serr)
		} else {
			l.fsyncs.Add(1)
			l.durableSeq.Store(l.appendsDrained())
		}
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	l.flushMu.Unlock()
	l.mu.Lock()
	if l.err == nil {
		l.err = errClosed
	} else if err == nil && !errors.Is(l.err, errClosed) {
		err = l.err
	}
	l.mu.Unlock()
	return err
}

func (l *Log) appendsDrained() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// listSegments returns dir's segments sorted by first sequence number.
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hexs := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		seq, err := strconv.ParseUint(hexs, 16, 64)
		if err != nil {
			continue // not ours
		}
		segs = append(segs, segInfo{path: filepath.Join(dir, name), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// validateSegment scans one segment checking frame integrity and sequence
// continuity. It returns the last valid sequence number, the byte offset
// of the end of the last valid frame, and the file's total size. A torn
// tail reports ErrTornFrame; interior corruption reports ErrCorrupt.
func validateSegment(path string, firstSeq uint64) (lastSeq uint64, goodLen, total int64, err error) {
	lastSeq = firstSeq - 1
	goodLen, total, err = walkSegment(path, firstSeq, func(r Record) error {
		lastSeq = r.Seq
		return nil
	})
	return lastSeq, goodLen, total, err
}

// scanSegment streams a segment's records to fn, tolerating a torn tail
// (Open has already truncated the canonical log, but Replay may re-read a
// file Open validated, and crash tooling reads logs it never opened).
func scanSegment(path string, firstSeq uint64, fn func(Record) error) error {
	_, _, err := walkSegment(path, firstSeq, fn)
	if errors.Is(err, ErrTornFrame) {
		return nil
	}
	return err
}

// walkSegment reads the whole segment into memory (segments are bounded
// by SegmentBytes) and walks its frames. It enforces the header magic and
// dense ascending sequence numbers starting at firstSeq — a gap or
// repetition means frames were lost or duplicated and the log cannot be
// trusted. A frame error becomes ErrCorrupt when complete frames follow it
// (interior corruption) and stays ErrTornFrame only at the true tail.
func walkSegment(path string, firstSeq uint64, fn func(Record) error) (goodLen, total int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	total = int64(len(data))
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return 0, total, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	off := int64(len(segMagic))
	want := firstSeq
	for off < total {
		r, n, derr := DecodeFrame(data[off:])
		if derr != nil {
			if errors.Is(derr, ErrTornFrame) && !framesFollow(data[off:]) {
				return off, total, ErrTornFrame
			}
			// A complete-but-bad frame, or a "torn" frame with decodable
			// frames after it (which a single torn append cannot produce):
			// interior corruption.
			return off, total, fmt.Errorf("%w: frame at offset %d: %v", ErrCorrupt, off, derr)
		}
		if r.Seq != want {
			return off, total, fmt.Errorf("%w: sequence gap at offset %d: got %d, want %d", ErrCorrupt, off, r.Seq, want)
		}
		if err := fn(r); err != nil {
			return off, total, err
		}
		off += int64(n)
		want++
	}
	return off, total, nil
}

// framesFollow reports whether skipping one frame-sized stride from a bad
// frame lands on something that still decodes — the signature of interior
// damage rather than a torn tail. (A torn append is a pure prefix of one
// frame; nothing valid can follow it.)
func framesFollow(b []byte) bool {
	for skip := frameLen; skip < len(b); skip += frameLen {
		if _, _, err := DecodeFrame(b[skip:]); err == nil {
			return true
		}
	}
	return false
}

// syncDir fsyncs a directory so entry creation/removal/rename survives a
// crash (required on Linux for the rename-into-place pattern).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// ReadAll is a test/tooling helper: it returns every record in dir's
// segments without opening the log for writing, tolerating a torn tail.
func ReadAll(dir string) ([]Record, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, seg := range segs {
		if err := scanSegment(seg.path, seg.firstSeq, func(r Record) error {
			out = append(out, r)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}
