package wal

// TicketSet tracks the newest ticket per log across a window of
// operations. With a single log, "wait on the window's last ticket" covers
// the whole window because group commits fsync in sequence order — but a
// sharded store appends to one WAL lane per shard, and a ticket from lane
// A says nothing about lane B's durability. A TicketSet keeps one ticket
// per distinct log (sequence numbers are monotonic per log, so the newest
// ticket dominates every earlier one from the same log) and Wait blocks on
// each, restoring the one-wait-per-window batching with per-lane
// correctness. The zero value is ready to use; windows are expected to
// touch few lanes, so the set is a small slice scanned linearly.
//
// A TicketSet is not safe for concurrent use; each connection/window owns
// its own.
type TicketSet struct {
	ts []Ticket
}

// Add folds one ticket into the set. Empty tickets are ignored; error
// tickets are kept so Wait surfaces the failure.
func (s *TicketSet) Add(t Ticket) {
	if t.Empty() {
		return
	}
	for i := range s.ts {
		if s.ts[i].l == t.l {
			// Same log: keep the newer ticket (or any error ticket — all
			// error tickets have a nil log and one failure severs the
			// window anyway).
			if t.err != nil || t.seq >= s.ts[i].seq {
				s.ts[i] = t
			}
			return
		}
	}
	s.ts = append(s.ts, t)
}

// Empty reports whether no ticket has been added since the last Reset.
func (s *TicketSet) Empty() bool { return len(s.ts) == 0 }

// Wait blocks until every tracked log has made its newest tracked record
// durable, returning the first error encountered (after attempting every
// lane, so one failed lane does not leave another's wait abandoned).
func (s *TicketSet) Wait() error {
	var firstErr error
	for i := range s.ts {
		if _, err := s.ts[i].Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Reset clears the set for the next window, retaining capacity.
func (s *TicketSet) Reset() {
	for i := range s.ts {
		s.ts[i] = Ticket{}
	}
	s.ts = s.ts[:0]
}
