package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Record operation codes. The values match internal/wire's OpInsert and
// OpDelete on purpose — a WAL is a durable transcript of the same mutations
// the protocol carries — but the packages stay independent: the WAL format
// is a disk contract, the wire format a network one, and they must be able
// to evolve separately.
const (
	OpInsert uint8 = 1
	OpDelete uint8 = 2
)

// Record is one durable mutation: Seq is the log sequence number (dense,
// starting at 1), Op the mutation kind, Key the affected key. Only
// set-changing operations are logged — replaying a Record against a set
// that already reflects it is a no-op, which is what makes replay
// idempotent and checkpoint horizons safe (see internal/durable).
type Record struct {
	Seq uint64
	Op  uint8
	Key int64
}

// Frame layout, all integers big-endian:
//
//	uint32 length   length of the payload that follows the CRC
//	uint32 crc      CRC-32C (Castagnoli) of the payload
//	payload:
//	  uint64 seq
//	  uint8  op     OpInsert | OpDelete
//	  uint64 key    two's-complement int64
//
// The length prefix makes torn tails detectable (a crash mid-write leaves
// a frame shorter than its prefix claims); the CRC makes bit rot and
// partially overwritten tails detectable. recordLen is fixed today, but
// decoders honour the prefix so future record kinds can be longer.
const (
	frameHdrLen  = 8 // length + crc
	recordLen    = 8 + 1 + 8
	frameLen     = frameHdrLen + recordLen
	maxRecordLen = 64 // sanity bound: any claimed payload above this is corruption
)

// castagnoli is the CRC-32C table (the polynomial used by iSCSI, ext4 and
// most modern logs; hardware-accelerated on amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrTornFrame means the bytes end before the frame does —
// the signature of a crashed append, recoverable by truncation. ErrCorrupt
// means a structurally complete frame failed validation — not a torn
// write, and not safe to skip silently.
var (
	ErrTornFrame = errors.New("wal: torn frame (bytes end mid-frame)")
	ErrCorrupt   = errors.New("wal: corrupt frame")
)

// AppendFrame appends r's on-disk frame encoding to dst — the same bytes
// an append writes to a segment. Replication catch-up uses it to re-frame
// records read back via Replay so the stream format matches the live tap.
func AppendFrame(dst []byte, r Record) []byte { return appendRecord(dst, r) }

// appendRecord appends r's frame encoding to dst and returns it.
func appendRecord(dst []byte, r Record) []byte {
	var payload [recordLen]byte
	binary.BigEndian.PutUint64(payload[0:8], r.Seq)
	payload[8] = r.Op
	binary.BigEndian.PutUint64(payload[9:17], uint64(r.Key))
	dst = binary.BigEndian.AppendUint32(dst, recordLen)
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload[:], castagnoli))
	return append(dst, payload[:]...)
}

// DecodeFrame decodes the first frame in b, returning the record and the
// number of bytes the frame occupies. Errors distinguish a torn tail
// (ErrTornFrame: b ends before the frame does, or the length prefix is
// garbage with only tail-sized bytes remaining) from corruption
// (ErrCorrupt: a complete frame whose CRC or payload shape is wrong).
// Callers deciding between truncation and refusal additionally need to
// know whether more frames follow; see scanSegment.
func DecodeFrame(b []byte) (r Record, n int, err error) {
	if len(b) < frameHdrLen {
		return r, 0, ErrTornFrame
	}
	length := binary.BigEndian.Uint32(b[0:4])
	if length == 0 || length > maxRecordLen {
		// A garbage length prefix: either the tail of a torn write (the
		// prefix bytes themselves are partial) or corruption. The caller
		// disambiguates by position; report torn only when the remaining
		// bytes could not even hold one well-formed frame.
		if len(b) < frameLen {
			return r, 0, ErrTornFrame
		}
		return r, 0, ErrCorrupt
	}
	if len(b) < frameHdrLen+int(length) {
		return r, 0, ErrTornFrame
	}
	payload := b[frameHdrLen : frameHdrLen+int(length)]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(b[4:8]) {
		return r, 0, ErrCorrupt
	}
	if len(payload) < recordLen {
		return r, 0, ErrCorrupt
	}
	r.Seq = binary.BigEndian.Uint64(payload[0:8])
	r.Op = payload[8]
	r.Key = int64(binary.BigEndian.Uint64(payload[9:17]))
	if r.Op != OpInsert && r.Op != OpDelete {
		return r, 0, ErrCorrupt
	}
	return r, frameHdrLen + int(length), nil
}
