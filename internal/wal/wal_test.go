package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func readAllT(t *testing.T, dir string) []Record {
	t.Helper()
	recs, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncFsync})
	want := []Record{
		{Seq: 1, Op: OpInsert, Key: 10},
		{Seq: 2, Op: OpInsert, Key: -4},
		{Seq: 3, Op: OpDelete, Key: 10},
	}
	for _, r := range want {
		seq, err := l.Append(r.Op, r.Key)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != r.Seq {
			t.Fatalf("Append seq = %d, want %d", seq, r.Seq)
		}
	}
	if got := l.LastSeq(); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: replay must return exactly the appended records, and new
	// sequence numbers must continue where the old log stopped.
	l = openT(t, dir, Options{Sync: SyncFsync})
	defer l.Close()
	var got []Record
	if err := l.Replay(0, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("Replay returned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Replay[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Replay(after) filters.
	var tail []Record
	if err := l.Replay(2, func(r Record) error { tail = append(tail, r); return nil }); err != nil {
		t.Fatalf("Replay(2): %v", err)
	}
	if len(tail) != 1 || tail[0].Seq != 3 {
		t.Fatalf("Replay(2) = %+v, want just seq 3", tail)
	}
	if seq, err := l.Append(OpInsert, 99); err != nil || seq != 4 {
		t.Fatalf("Append after reopen = (%d, %v), want (4, nil)", seq, err)
	}
}

func TestConcurrentAppendsGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncFsync})
	const (
		workers = 8
		perW    = 200
	)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if _, err := l.Append(OpInsert, int64(w*perW+i)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := l.Stats()
	if st.Appends != workers*perW {
		t.Fatalf("Appends = %d, want %d", st.Appends, workers*perW)
	}
	// Group commit must have amortized: strictly fewer fsyncs than appends
	// (with 8 concurrent appenders the flusher batches them), and the
	// grouped-record count must cover every append.
	if st.Fsyncs >= st.Appends {
		t.Fatalf("group commit did not amortize: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
	if st.GroupRecords != st.Appends {
		t.Fatalf("GroupRecords = %d, want %d", st.GroupRecords, st.Appends)
	}
	if st.DurableSeq != st.LastSeq {
		t.Fatalf("DurableSeq = %d, want %d (all acked under fsync)", st.DurableSeq, st.LastSeq)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Every record present exactly once, sequence dense.
	recs := readAllT(t, dir)
	if len(recs) != workers*perW {
		t.Fatalf("got %d records, want %d", len(recs), workers*perW)
	}
	seen := map[int64]bool{}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if seen[r.Key] {
			t.Fatalf("key %d appears twice", r.Key)
		}
		seen[r.Key] = true
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncFsync, SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l := openT(t, dir, Options{Sync: pol})
			for i := 0; i < 50; i++ {
				if _, err := l.Append(OpInsert, int64(i)); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if got := len(readAllT(t, dir)); got != 50 {
				t.Fatalf("after clean close got %d records, want 50", got)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"fsync", SyncFsync, true},
		{"interval", SyncInterval, true},
		{"none", SyncNone, true},
		{"", 0, false},
		{"Fsync", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = (%v, %v), want (%v, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestTornTailTruncated simulates a crash mid-append: a partial final
// frame must be truncated at Open and the log must keep working.
func TestTornTailTruncated(t *testing.T) {
	for cut := 1; cut < frameLen; cut++ {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l := openT(t, dir, Options{Sync: SyncFsync})
			for i := 0; i < 5; i++ {
				if _, err := l.Append(OpInsert, int64(i)); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			seg := onlySegment(t, dir)
			st, _ := os.Stat(seg)
			// Leave 4 complete frames plus `cut` bytes of the 5th.
			if err := os.Truncate(seg, st.Size()-int64(frameLen)+int64(cut)); err != nil {
				t.Fatalf("truncate: %v", err)
			}

			l = openT(t, dir, Options{Sync: SyncFsync})
			if got := l.Stats().TornTruncated; got != uint64(cut) {
				t.Fatalf("TornTruncated = %d, want %d", got, cut)
			}
			if got := l.LastSeq(); got != 4 {
				t.Fatalf("LastSeq after torn-tail repair = %d, want 4", got)
			}
			// The next append reuses the torn record's sequence number.
			if seq, err := l.Append(OpDelete, 100); err != nil || seq != 5 {
				t.Fatalf("Append = (%d, %v), want (5, nil)", seq, err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			recs := readAllT(t, dir)
			if len(recs) != 5 || recs[4] != (Record{Seq: 5, Op: OpDelete, Key: 100}) {
				t.Fatalf("unexpected records after repair: %+v", recs)
			}
		})
	}
}

// TestInteriorCorruptionRefused flips a byte in the middle of the log:
// complete frames follow the damage, so Open must refuse, not truncate —
// truncating would silently drop acknowledged records.
func TestInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncFsync})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(OpInsert, int64(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload of frame 3 (well before the tail).
	data[len(segMagic)+2*frameLen+frameHdrLen+3] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on interior corruption = %v, want ErrCorrupt", err)
	}
}

// TestCorruptNonFinalSegmentRefused: damage in any segment other than the
// last is never a torn tail, even at that segment's end.
func TestCorruptNonFinalSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation.
	l := openT(t, dir, Options{Sync: SyncFsync, SegmentBytes: int64(len(segMagic) + 4*frameLen)})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(OpInsert, int64(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %d (err %v)", len(segs), err)
	}
	// Truncate the FIRST segment's tail — looks torn, but it is interior
	// to the chain.
	st, _ := os.Stat(segs[0].path)
	if err := os.Truncate(segs[0].path, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with damaged interior segment = %v, want ErrCorrupt", err)
	}
}

func TestRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	segBytes := int64(len(segMagic) + 5*frameLen)
	l := openT(t, dir, Options{Sync: SyncFsync, SegmentBytes: segBytes})
	const n = 32
	for i := 0; i < n; i++ {
		if _, err := l.Append(OpInsert, int64(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected rotations, got rotations=%d segments=%d", st.Rotations, st.Segments)
	}
	// All records must still replay across the segment chain.
	var count int
	if err := l.Replay(0, func(r Record) error { count++; return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if count != n {
		t.Fatalf("Replay saw %d records, want %d", count, n)
	}

	// GC through seq 20: every segment whose records are all ≤ 20 goes.
	removed, err := l.RemoveThrough(20)
	if err != nil {
		t.Fatalf("RemoveThrough: %v", err)
	}
	if removed == 0 {
		t.Fatal("RemoveThrough removed nothing")
	}
	// Records > 20 must all survive GC.
	var kept []uint64
	if err := l.Replay(0, func(r Record) error { kept = append(kept, r.Seq); return nil }); err != nil {
		t.Fatalf("Replay after GC: %v", err)
	}
	for _, seq := range kept[len(kept)-(n-20):] {
		if seq <= 20 {
			break
		}
	}
	last := kept[len(kept)-1]
	if last != n {
		t.Fatalf("lost the tail: last surviving seq %d, want %d", last, n)
	}
	hasAbove := false
	for _, s := range kept {
		if s > 20 {
			hasAbove = true
		}
	}
	if !hasAbove {
		t.Fatal("GC removed records above the horizon")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen after GC: sequence numbering continues, no gap complaints
	// (each surviving segment is self-consistent).
	l = openT(t, dir, Options{Sync: SyncFsync})
	if got := l.LastSeq(); got != n {
		t.Fatalf("LastSeq after GC+reopen = %d, want %d", got, n)
	}
	l.Close()
}

// TestNextSeqFloor: after a checkpoint at horizon H GCs every segment, a
// fresh Open must not restart numbering below H+1 — replay(after=H) would
// silently skip the reissued records.
func TestNextSeqFloor(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncFsync, NextSeq: 101})
	if seq, err := l.Append(OpInsert, 1); err != nil || seq != 101 {
		t.Fatalf("Append = (%d, %v), want (101, nil)", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The floor also holds on reopen when the log already has newer data.
	l = openT(t, dir, Options{Sync: SyncFsync, NextSeq: 50})
	if seq, err := l.Append(OpInsert, 2); err != nil || seq != 102 {
		t.Fatalf("Append = (%d, %v), want (102, nil)", seq, err)
	}
	l.Close()
}

func TestCloseDirtySkipsFsync(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(OpInsert, int64(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.CloseDirty(); err != nil {
		t.Fatalf("CloseDirty: %v", err)
	}
	if got := l.Stats().Fsyncs; got != 0 {
		t.Fatalf("CloseDirty fsynced %d times, want 0", got)
	}
	// The bytes still reached the OS, so a reopen sees them.
	if got := len(readAllT(t, dir)); got != 10 {
		t.Fatalf("got %d records after dirty close, want 10", got)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Append(OpInsert, 1); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestEmptyDirOpens(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh") // does not exist yet
	l := openT(t, dir, Options{Sync: SyncFsync})
	if got := l.LastSeq(); got != 0 {
		t.Fatalf("LastSeq on empty log = %d, want 0", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("want exactly 1 segment, got %d", len(segs))
	}
	return segs[0].path
}
