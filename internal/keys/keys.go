// Package keys maps user-facing int64 keys into the internal uint64 key
// space used by every tree implementation in this module.
//
// The mapping is order-preserving: for any two int64 keys a < b, Map(a) <
// Map(b). The top three values of the uint64 space are reserved for the
// sentinel keys the Natarajan–Mittal algorithm requires (Section 3.2.1 of
// the paper): three keys ∞₀ < ∞₁ < ∞₂ that are larger than every user key
// and are never removed from the tree. The other tree implementations reuse
// the same sentinels for their own dummy/root nodes so that all algorithms
// agree on one key space.
package keys

import "math"

// Internal sentinel keys. Inf0 < Inf1 < Inf2 and every mapped user key is
// strictly smaller than Inf0.
const (
	Inf0 uint64 = math.MaxUint64 - 2 // ∞₀
	Inf1 uint64 = math.MaxUint64 - 1 // ∞₁
	Inf2 uint64 = math.MaxUint64     // ∞₂
)

// MaxUser is the largest int64 key a caller may store. Larger keys would
// collide with the sentinel range after mapping.
const MaxUser = math.MaxInt64 - 3

// signBit flips the int64 sign bit so that the natural uint64 ordering of
// the mapped value matches the signed ordering of the original key.
const signBit = uint64(1) << 63

// Map converts a user key into the internal key space. It preserves order:
// a < b implies Map(a) < Map(b). Keys above MaxUser are not representable;
// InRange reports whether a key is storable.
func Map(k int64) uint64 { return uint64(k) ^ signBit }

// Unmap inverts Map.
func Unmap(u uint64) int64 { return int64(u ^ signBit) }

// InRange reports whether k can be stored without colliding with the
// sentinel keys.
func InRange(k int64) bool { return k <= MaxUser }

// IsSentinel reports whether an internal key is one of the three sentinels.
func IsSentinel(u uint64) bool { return u >= Inf0 }
