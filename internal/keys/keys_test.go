package keys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMapOrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		switch {
		case a < b:
			return Map(a) < Map(b)
		case a > b:
			return Map(a) > Map(b)
		default:
			return Map(a) == Map(b)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapRoundTrip(t *testing.T) {
	f := func(k int64) bool { return Unmap(Map(k)) == k }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSentinelOrdering(t *testing.T) {
	if !(Inf0 < Inf1 && Inf1 < Inf2) {
		t.Fatalf("sentinels misordered: %d %d %d", Inf0, Inf1, Inf2)
	}
}

func TestUserKeysBelowSentinels(t *testing.T) {
	for _, k := range []int64{math.MinInt64, -1, 0, 1, MaxUser} {
		if !InRange(k) {
			t.Fatalf("key %d should be in range", k)
		}
		if u := Map(k); u >= Inf0 {
			t.Fatalf("Map(%d) = %#x collides with sentinel range", k, u)
		}
		if IsSentinel(Map(k)) {
			t.Fatalf("Map(%d) wrongly reported as sentinel", k)
		}
	}
	if InRange(MaxUser + 1) {
		t.Fatalf("key %d should be out of range", int64(MaxUser+1))
	}
}

func TestIsSentinel(t *testing.T) {
	for _, u := range []uint64{Inf0, Inf1, Inf2} {
		if !IsSentinel(u) {
			t.Fatalf("IsSentinel(%#x) = false", u)
		}
	}
	if IsSentinel(Map(MaxUser)) {
		t.Fatal("largest user key reported as sentinel")
	}
}

func TestBoundaryAdjacency(t *testing.T) {
	// The largest mapped user key must sit immediately below Inf0.
	if got := Map(MaxUser); got != Inf0-1 {
		t.Fatalf("Map(MaxUser) = %#x, want %#x", got, Inf0-1)
	}
}
