package keys

import "testing"

func FuzzMapOrderAndRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(1))
	f.Add(int64(-1), int64(1))
	f.Add(int64(MaxUser), int64(-1<<63))
	f.Fuzz(func(t *testing.T, a, b int64) {
		if Unmap(Map(a)) != a {
			t.Fatalf("round trip broke for %d", a)
		}
		switch {
		case a < b:
			if Map(a) >= Map(b) {
				t.Fatalf("order broke: %d < %d but %#x >= %#x", a, b, Map(a), Map(b))
			}
		case a > b:
			if Map(a) <= Map(b) {
				t.Fatalf("order broke: %d > %d but %#x <= %#x", a, b, Map(a), Map(b))
			}
		}
		if InRange(a) && IsSentinel(Map(a)) {
			t.Fatalf("in-range key %d mapped into sentinel space", a)
		}
	})
}
