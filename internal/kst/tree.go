// Package kst implements a lock-free k-ary external search tree — the
// future-work direction named in Section 6 of the paper ("we plan to use
// the ideas in this work to develop more efficient lock-free algorithms
// for k-ary search trees"), in the style of Brown & Helga (OPODIS 2011).
//
// Structure:
//
//   - a leaf holds up to k−1 sorted keys (possibly zero);
//   - an internal node holds exactly k−1 immutable routing keys and k
//     children; child j covers keys in [routing[j−1], routing[j]).
//
// Every mutation is a **single CAS that replaces one leaf**:
//
//   - insert into a non-full leaf → replacement leaf with the key added;
//   - insert into a full leaf → replacement *internal* node whose k
//     children are single-key leaves (a split);
//   - delete → replacement leaf with the key removed (possibly empty).
//
// Leaves are immutable, internal nodes are immutable and — in this
// version — permanent, so searches need no validation at all: the last
// child-pointer load is the linearization point. Single-CAS mutation makes
// the algorithm trivially lock-free with no helping protocol.
//
// Scope note (honest accounting of the open problem): pruning empty
// leaves and collapsing underfull subtrees is exactly the part the paper
// proposes to solve with its edge-marking technique; it remains future
// work here as well. Consequently the structure's *internal node count*
// grows monotonically with the number of splits, though the key set
// itself is exact. For churn-heavy bounded key ranges this is fine (the
// structure converges to the key range's shape); unbounded fresh-key
// churn should prefer the binary NM tree with reclamation.
package kst

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// MinArity and MaxArity bound the configurable fan-out.
const (
	MinArity = 2
	MaxArity = 64
)

// node is either a leaf (children nil, items sorted, ≤ k−1 of them) or an
// internal node (routing of length k−1, children of length k). Both kinds
// are immutable after publication; only child *pointers* ever change.
type node struct {
	routing  []uint64
	items    []uint64
	children []atomic.Pointer[node]
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a lock-free k-ary external search tree over internal uint64
// keys. All methods are safe for concurrent use.
type Tree struct {
	k    int
	root atomic.Pointer[node]
}

// Stats counts the work performed through a Handle.
type Stats struct {
	Searches, Inserts, Deletes uint64
	CASSucceeded, CASFailed    uint64
	Splits                     uint64
	NodesAlloc                 uint64
}

// Handle is a per-goroutine accessor carrying statistics.
type Handle struct {
	t     *Tree
	Stats Stats
}

// New creates an empty tree with the given arity (children per internal
// node). Arity 2 degenerates to a binary external tree.
func New(k int) *Tree {
	if k < MinArity || k > MaxArity {
		panic(fmt.Sprintf("kst: arity %d outside [%d, %d]", k, MinArity, MaxArity))
	}
	t := &Tree{k: k}
	t.root.Store(&node{items: nil}) // empty leaf
	return t
}

// Arity returns the tree's fan-out k.
func (t *Tree) Arity() int { return t.k }

// NewHandle returns a per-goroutine accessor.
func (t *Tree) NewHandle() *Handle { return &Handle{t: t} }

// Convenience passthroughs.

// Search reports whether key is present.
func (t *Tree) Search(key uint64) bool { h := Handle{t: t}; return h.Search(key) }

// Insert adds key if absent.
func (t *Tree) Insert(key uint64) bool { h := Handle{t: t}; return h.Insert(key) }

// Delete removes key if present.
func (t *Tree) Delete(key uint64) bool { h := Handle{t: t}; return h.Delete(key) }

// childIndex returns which child of an internal node covers key.
func childIndex(routing []uint64, key uint64) int {
	// First routing key strictly greater than key; equal keys go right.
	return sort.Search(len(routing), func(i int) bool { return key < routing[i] })
}

// seek descends to the leaf covering key, returning the leaf and the
// field (root slot or parent child slot) holding it.
func (t *Tree) seek(key uint64) (field *atomic.Pointer[node], leaf *node) {
	field = &t.root
	n := field.Load()
	for !n.leaf() {
		field = &n.children[childIndex(n.routing, key)]
		n = field.Load()
	}
	return field, n
}

// contains reports whether a sorted leaf holds key.
func contains(items []uint64, key uint64) bool {
	i := sort.Search(len(items), func(i int) bool { return items[i] >= key })
	return i < len(items) && items[i] == key
}

// Search reports whether key is present. The final child-pointer load is
// the linearization point (leaves are immutable).
func (h *Handle) Search(key uint64) bool {
	_, leaf := h.t.seek(key)
	h.Stats.Searches++
	return contains(leaf.items, key)
}

// Insert adds key if absent: one CAS replacing the covering leaf, or — if
// the leaf is full — one CAS replacing it with a split node.
func (h *Handle) Insert(key uint64) bool {
	t := h.t
	for {
		field, leaf := t.seek(key)
		if contains(leaf.items, key) {
			h.Stats.Inserts++
			return false
		}
		var repl *node
		if len(leaf.items) < t.k-1 {
			repl = &node{items: insertSorted(leaf.items, key)}
			h.Stats.NodesAlloc++
		} else {
			repl = h.split(leaf.items, key)
		}
		if field.CompareAndSwap(leaf, repl) {
			h.Stats.CASSucceeded++
			h.Stats.Inserts++
			return true
		}
		h.Stats.CASFailed++
	}
}

// split builds the replacement internal node for a full leaf plus the new
// key: k sorted keys fan out into k single-key leaves, with keys[1:] as
// the routing keys.
func (h *Handle) split(items []uint64, key uint64) *node {
	all := insertSorted(items, key)
	k := h.t.k
	n := &node{
		routing:  all[1:],
		children: make([]atomic.Pointer[node], k),
	}
	for i, x := range all {
		n.children[i].Store(&node{items: []uint64{x}})
	}
	h.Stats.Splits++
	h.Stats.NodesAlloc += uint64(k + 1)
	return n
}

// Delete removes key if present: one CAS replacing the covering leaf with
// a copy lacking the key (possibly an empty leaf).
func (h *Handle) Delete(key uint64) bool {
	t := h.t
	for {
		field, leaf := t.seek(key)
		if !contains(leaf.items, key) {
			h.Stats.Deletes++
			return false
		}
		repl := &node{items: removeSorted(leaf.items, key)}
		h.Stats.NodesAlloc++
		if field.CompareAndSwap(leaf, repl) {
			h.Stats.CASSucceeded++
			h.Stats.Deletes++
			return true
		}
		h.Stats.CASFailed++
	}
}

func insertSorted(items []uint64, key uint64) []uint64 {
	i := sort.Search(len(items), func(i int) bool { return items[i] >= key })
	out := make([]uint64, len(items)+1)
	copy(out, items[:i])
	out[i] = key
	copy(out[i+1:], items[i:])
	return out
}

func removeSorted(items []uint64, key uint64) []uint64 {
	i := sort.Search(len(items), func(i int) bool { return items[i] >= key })
	out := make([]uint64, 0, len(items)-1)
	out = append(out, items[:i]...)
	return append(out, items[i+1:]...)
}

// ---- quiescent inspection ----

// Size counts stored keys (quiescent only).
func (t *Tree) Size() int {
	n := 0
	t.Keys(func(uint64) bool { n++; return true })
	return n
}

// Keys visits keys in ascending order (quiescent only).
func (t *Tree) Keys(yield func(uint64) bool) {
	t.visit(t.root.Load(), yield)
}

func (t *Tree) visit(n *node, yield func(uint64) bool) bool {
	if n.leaf() {
		for _, k := range n.items {
			if !yield(k) {
				return false
			}
		}
		return true
	}
	for i := range n.children {
		if !t.visit(n.children[i].Load(), yield) {
			return false
		}
	}
	return true
}

// Depth returns the maximum node depth (quiescent diagnostic).
func (t *Tree) Depth() int { return depth(t.root.Load()) }

// SpaceStats reports reachable-node accounting (quiescent): without
// empty-leaf pruning (the open future-work problem) the internal skeleton
// grows monotonically with splits.
type SpaceStats struct {
	LiveKeys      int
	EmptyLeaves   int
	Leaves        int
	InternalNodes int
}

// Space computes SpaceStats by walking the tree (quiescent only).
func (t *Tree) Space() SpaceStats {
	var s SpaceStats
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf() {
			s.Leaves++
			s.LiveKeys += len(n.items)
			if len(n.items) == 0 {
				s.EmptyLeaves++
			}
			return
		}
		s.InternalNodes++
		for i := range n.children {
			walk(n.children[i].Load())
		}
	}
	walk(t.root.Load())
	return s
}

func depth(n *node) int {
	if n.leaf() {
		return 1
	}
	d := 0
	for i := range n.children {
		if cd := depth(n.children[i].Load()); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Audit validates structural invariants (quiescent only): arity, sorted
// routing/items, and key-range coverage.
func (t *Tree) Audit() error {
	return t.audit(t.root.Load(), 0, ^uint64(0))
}

func (t *Tree) audit(n *node, lo, hi uint64) error {
	if n.leaf() {
		if len(n.items) > t.k-1 {
			return fmt.Errorf("leaf with %d items exceeds k-1=%d", len(n.items), t.k-1)
		}
		prev := uint64(0)
		for i, x := range n.items {
			if x < lo || x > hi {
				return fmt.Errorf("leaf key %#x outside [%#x, %#x]", x, lo, hi)
			}
			if i > 0 && x <= prev {
				return fmt.Errorf("leaf items unsorted: %#x after %#x", x, prev)
			}
			prev = x
		}
		return nil
	}
	if len(n.routing) != t.k-1 || len(n.children) != t.k {
		return fmt.Errorf("internal node with %d routers / %d children (k=%d)", len(n.routing), len(n.children), t.k)
	}
	for i := 1; i < len(n.routing); i++ {
		if n.routing[i] <= n.routing[i-1] {
			return fmt.Errorf("routing keys unsorted: %#x after %#x", n.routing[i], n.routing[i-1])
		}
	}
	for j := range n.children {
		clo, chi := lo, hi
		if j > 0 && n.routing[j-1] > clo {
			clo = n.routing[j-1]
		}
		if j < len(n.routing) {
			if n.routing[j] == 0 {
				return fmt.Errorf("routing key 0 cannot bound a child")
			}
			if n.routing[j]-1 < chi {
				chi = n.routing[j] - 1
			}
		}
		if err := t.audit(n.children[j].Load(), clo, chi); err != nil {
			return err
		}
	}
	return nil
}
