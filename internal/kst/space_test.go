package kst_test

import (
	"testing"

	"repro/internal/keys"
	"repro/internal/kst"
)

func TestSpaceAccounting(t *testing.T) {
	tr := kst.New(4)
	s := tr.Space()
	if s.LiveKeys != 0 || s.Leaves != 1 || s.InternalNodes != 0 {
		t.Fatalf("empty tree space = %+v", s)
	}
	for i := int64(0); i < 100; i++ {
		tr.Insert(keys.Map(i))
	}
	s = tr.Space()
	if s.LiveKeys != 100 {
		t.Fatalf("LiveKeys = %d", s.LiveKeys)
	}
	if s.InternalNodes == 0 {
		t.Fatal("100 inserts into k=4 produced no splits")
	}
	// Drain: keys go, skeleton stays (documented future-work gap).
	for i := int64(0); i < 100; i++ {
		tr.Delete(keys.Map(i))
	}
	s2 := tr.Space()
	if s2.LiveKeys != 0 {
		t.Fatalf("LiveKeys after drain = %d", s2.LiveKeys)
	}
	if s2.InternalNodes != s.InternalNodes {
		t.Fatalf("internal skeleton changed on delete: %d -> %d", s.InternalNodes, s2.InternalNodes)
	}
	if s2.EmptyLeaves == 0 {
		t.Fatal("drained tree reports no empty leaves")
	}
}
