package kst_test

import (
	"fmt"
	"math/bits"
	"testing"

	"repro/internal/keys"
	"repro/internal/kst"
	"repro/internal/settest"
)

func TestConformanceAcrossArities(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8, 16} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			settest.Run(t, func(capacity int) settest.Set {
				return kst.New(k)
			})
		})
	}
}

func TestArityBoundsPanic(t *testing.T) {
	for _, k := range []int{1, 0, -3, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("arity %d accepted", k)
				}
			}()
			kst.New(k)
		}()
	}
}

func TestSplitProducesValidStructure(t *testing.T) {
	// Fill one leaf past capacity and check the split routed every key.
	const k = 4
	tr := kst.New(k)
	for i := int64(0); i < 50; i++ {
		if !tr.Insert(keys.Map(i * 3)) {
			t.Fatalf("insert %d failed", i)
		}
		if err := tr.Audit(); err != nil {
			t.Fatalf("after %d inserts: %v", i+1, err)
		}
	}
	for i := int64(0); i < 50; i++ {
		if !tr.Search(keys.Map(i * 3)) {
			t.Fatalf("key %d missing", i*3)
		}
		if tr.Search(keys.Map(i*3 + 1)) {
			t.Fatalf("phantom key %d", i*3+1)
		}
	}
	if tr.Size() != 50 {
		t.Fatalf("size = %d", tr.Size())
	}
}

func TestFanOutReducesDepth(t *testing.T) {
	// The point of k-ary trees: depth shrinks by ~log₂k. Compare measured
	// depth against the binary bound for a random-ish key load.
	const n = 4096
	depths := map[int]int{}
	for _, k := range []int{2, 4, 16} {
		tr := kst.New(k)
		for i := 0; i < n; i++ {
			tr.Insert(keys.Map(int64(uint64(i) * 0x9E3779B97F4A7C15 >> 20)))
		}
		if err := tr.Audit(); err != nil {
			t.Fatal(err)
		}
		depths[k] = tr.Depth()
	}
	if !(depths[16] < depths[4] && depths[4] < depths[2]) {
		t.Fatalf("depth did not shrink with arity: %v", depths)
	}
	// Sanity: k=16 depth should be within a small factor of log₁₆ n.
	if limit := 3 * (bits.Len(n)/4 + 1); depths[16] > limit {
		t.Fatalf("k=16 depth %d exceeds %d", depths[16], limit)
	}
}

func TestEmptyLeavesRoute(t *testing.T) {
	// Delete every key out of a split structure: empty leaves must still
	// route subsequent operations correctly (pruning is future work).
	tr := kst.New(4)
	for i := int64(0); i < 100; i++ {
		tr.Insert(keys.Map(i))
	}
	for i := int64(0); i < 100; i++ {
		if !tr.Delete(keys.Map(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
	// Reuse the skeleton.
	for i := int64(0); i < 100; i += 2 {
		if !tr.Insert(keys.Map(i)) {
			t.Fatalf("re-insert %d failed", i)
		}
	}
	for i := int64(0); i < 100; i++ {
		want := i%2 == 0
		if got := tr.Search(keys.Map(i)); got != want {
			t.Fatalf("search %d = %v want %v", i, got, want)
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestKeysAscending(t *testing.T) {
	tr := kst.New(5)
	in := []int64{9, 1, 8, 2, 7, 3, 6, 4, 5, 0}
	for _, k := range in {
		tr.Insert(keys.Map(k))
	}
	var got []int64
	tr.Keys(func(u uint64) bool {
		got = append(got, keys.Unmap(u))
		return true
	})
	for i := range got {
		if got[i] != int64(i) {
			t.Fatalf("iteration order %v", got)
		}
	}
}

func TestHandleStats(t *testing.T) {
	tr := kst.New(4)
	h := tr.NewHandle()
	for i := int64(0); i < 64; i++ {
		h.Insert(keys.Map(i))
	}
	if h.Stats.Splits == 0 {
		t.Fatal("64 inserts into k=4 tree caused no splits")
	}
	if h.Stats.CASSucceeded != 64 {
		t.Fatalf("CAS successes = %d, want 64 (one per insert)", h.Stats.CASSucceeded)
	}
}
