package plot

import (
	"strings"
	"testing"
)

func twoSeries() []Series {
	return []Series{
		{Name: "nm", X: []float64{1, 2, 4, 8}, Y: []float64{1e6, 2e6, 3e6, 4e6}},
		{Name: "efrb", X: []float64{1, 2, 4, 8}, Y: []float64{0.8e6, 1.4e6, 2e6, 2.4e6}},
	}
}

func TestRenderContainsStructure(t *testing.T) {
	c := Chart{Title: "throughput", Series: twoSeries(), XLabel: "threads", YLabel: "ops/s", LogX: true}
	out := c.Render()
	for _, want := range []string{"throughput", "4.0M", "o nm", "x efrb", "x: threads", "y: ops/s", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart render: %q", out)
	}
}

func TestMarkersAtExtremes(t *testing.T) {
	// One flat series: all markers must land on one row, the top.
	c := Chart{
		Series: []Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}},
		Width:  30, Height: 10,
	}
	out := c.Render()
	lines := strings.Split(out, "\n")
	markerRows := 0
	for _, l := range lines {
		if strings.Contains(l, "o") && strings.Contains(l, "|") {
			markerRows++
		}
	}
	if markerRows != 1 {
		t.Fatalf("flat series drawn on %d rows, want 1:\n%s", markerRows, out)
	}
}

func TestSinglePointSeries(t *testing.T) {
	c := Chart{Series: []Series{{Name: "pt", X: []float64{4}, Y: []float64{7}}}}
	out := c.Render()
	if !strings.Contains(out, "o") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
}

func TestLogXOrdersTicks(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "s", X: []float64{1, 64}, Y: []float64{1, 2}}},
		LogX:   true, Width: 40, Height: 8,
	}
	out := c.Render()
	if !strings.Contains(out, "64") {
		t.Fatalf("max x tick missing:\n%s", out)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		950:     "950",
		1500:    "1.5K",
		2.5e6:   "2.5M",
		3e9:     "3.0G",
		1234.56: "1.2K",
	}
	for in, want := range cases {
		if got := formatTick(in); got != want {
			t.Fatalf("formatTick(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestLineConnectsPoints(t *testing.T) {
	// A steep diagonal must leave '.' connector cells between markers.
	c := Chart{
		Series: []Series{{Name: "s", X: []float64{0, 10}, Y: []float64{0, 10}}},
		Width:  20, Height: 10,
	}
	out := c.Render()
	if !strings.Contains(out, ".") {
		t.Fatalf("no connector drawn:\n%s", out)
	}
}
