// Package plot renders ASCII line charts for benchmark series — enough to
// eyeball the shape of Figure 4 (who wins, where curves cross) in a
// terminal, with no dependencies.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// markers are assigned to series in order.
var markers = []byte{'o', 'x', '+', '*', '#', '@', '%', '&'}

// Series is one line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a collection of series over a shared axis.
type Chart struct {
	Title  string
	YLabel string
	XLabel string
	Series []Series
	// Width and Height are the plot-area size in characters (default 60×16).
	Width, Height int
	// LogX positions x values on a log₂ scale (thread counts 1,2,4,…).
	LogX bool
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1) // y axis starts at 0, like the paper's
	for _, s := range c.Series {
		for i := range s.X {
			x := c.xpos(s.X[i])
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmax, -1) {
		return c.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		// Plot points and connect consecutive ones with a crude line.
		type pt struct{ col, row int }
		pts := make([]pt, 0, len(s.X))
		order := argsortByX(s.X)
		for _, i := range order {
			col := int(math.Round((c.xpos(s.X[i]) - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((s.Y[i]-ymin)/(ymax-ymin)*float64(h-1)))
			pts = append(pts, pt{col, row})
		}
		for j := 1; j < len(pts); j++ {
			drawLine(grid, pts[j-1].col, pts[j-1].row, pts[j].col, pts[j].row, '.')
		}
		for _, p := range pts {
			if p.row >= 0 && p.row < h && p.col >= 0 && p.col < w {
				grid[p.row][p.col] = m
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop := formatTick(ymax)
	yMid := formatTick(ymax / 2)
	labelW := len(yTop)
	if len(yMid) > labelW {
		labelW = len(yMid)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yTop)
		case h / 2:
			label = fmt.Sprintf("%*s", labelW, yMid)
		case h - 1:
			label = fmt.Sprintf("%*s", labelW, formatTick(ymin))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))

	// X tick labels: min, mid, max of the raw (unscaled) values.
	rawXs := c.rawXRange()
	if len(rawXs) > 0 {
		lo := formatTick(rawXs[0])
		hi := formatTick(rawXs[len(rawXs)-1])
		mid := formatTick(rawXs[len(rawXs)/2])
		line := make([]byte, w)
		for i := range line {
			line[i] = ' '
		}
		copy(line[0:], lo)
		copy(line[w/2-len(mid)/2:], mid)
		if w-len(hi) > 0 {
			copy(line[w-len(hi):], hi)
		}
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", labelW), string(line))
	}
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", labelW), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", labelW), markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func (c *Chart) xpos(x float64) float64 {
	if c.LogX && x > 0 {
		return math.Log2(x)
	}
	return x
}

// rawXRange returns the sorted distinct raw x values across all series.
func (c *Chart) rawXRange() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, s := range c.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	sort.Float64s(out)
	return out
}

func argsortByX(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

// drawLine rasterizes a segment with Bresenham, skipping endpoints so
// markers stay visible; only blank cells are painted.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, ch byte) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := sign(x1-x0), sign(y1-y0)
	err := dx + dy
	x, y := x0, y0
	for {
		if x == x1 && y == y1 {
			break
		}
		if !(x == x0 && y == y0) && y >= 0 && y < len(grid) && x >= 0 && x < len(grid[0]) {
			if grid[y][x] == ' ' {
				grid[y][x] = ch
			}
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
