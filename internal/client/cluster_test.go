package client

// Cluster-facing client behaviour against a real two-node replication
// stack: redirect following on StatusNotLeader, sentinel identity across
// the wire (errors.Is works on the far side of a TCP round trip exactly
// as it does in process — the same contract errprop gives the single-node
// statuses), and ReadAtLeast's staleness guarantee on a follower.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

// reserveAddr grabs an ephemeral port and releases it, so a data listener
// can be announced (to repl.Start) before the server binds it.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// clusterNode is one data server + replication node over a durable store.
type clusterNode struct {
	store *durable.Tree
	node  *repl.Node
	srv   *server.Server
	addr  string // data address
}

// startNode builds a durable store, a repl node (leader when replicaOf is
// empty), and a data server wired to it, on ephemeral ports.
func startNode(t *testing.T, replicaOf string) *clusterNode {
	t.Helper()
	store, err := durable.Open(t.TempDir(), durable.Options{Sync: wal.SyncFsync})
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	t.Cleanup(func() { store.Close() })

	addr := reserveAddr(t)
	node, err := repl.Start(repl.Config{
		Store:       store,
		Advertise:   addr,
		ListenRepl:  "127.0.0.1:0",
		ReplicaOf:   replicaOf,
		Heartbeat:   20 * time.Millisecond,
		AckEvery:    1,
		AckInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("repl.Start: %v", err)
	}
	t.Cleanup(func() { node.Close() })

	srv := server.New(server.Config{Store: store, Cluster: node})
	if err := srv.Start(addr); err != nil {
		t.Fatalf("server.Start(%s): %v", addr, err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return &clusterNode{store: store, node: node, srv: srv, addr: addr}
}

func startCluster(t *testing.T) (leader, follower *clusterNode) {
	t.Helper()
	leader = startNode(t, "")
	follower = startNode(t, leader.node.ReplAddr())
	// Redirects can only name the leader once a heartbeat has delivered
	// its data address; tests asserting on the address must not race it.
	deadline := time.Now().Add(10 * time.Second)
	for follower.node.LeaderAddr() != leader.addr {
		if time.Now().After(deadline) {
			t.Fatal("follower never learned the leader's data address")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return leader, follower
}

// TestRedirectFollowing: a mutation sent to a follower bounces with
// StatusNotLeader, and the client adopts the advertised leader address and
// lands the write there within the same call.
func TestRedirectFollowing(t *testing.T) {
	leader, follower := startCluster(t)
	ctx := context.Background()

	cl, err := Dial(Config{Addr: follower.addr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if ok, err := cl.Insert(ctx, 42); err != nil || !ok {
		t.Fatalf("Insert via follower = (%v, %v), want (true, nil)", ok, err)
	}
	if !leader.store.Contains(42) {
		t.Fatal("write did not land on the leader")
	}
	if got := cl.Leader(); got != leader.addr {
		t.Fatalf("client learned leader %q, want %q", got, leader.addr)
	}
	st := cl.Stats()
	if st.Redirects == 0 {
		t.Fatal("no redirect counted")
	}
	// Subsequent mutations go straight to the leader: no new redirects.
	before := st.Redirects
	if ok, err := cl.Insert(ctx, 43); err != nil || !ok {
		t.Fatalf("second Insert = (%v, %v)", ok, err)
	}
	if got := cl.Stats().Redirects; got != before {
		t.Fatalf("redirects grew %d → %d on a leader-bound write", before, got)
	}
}

// TestRedirectFollowingBatch: the batched path recovers the leader address
// from a frame-level StatusNotLeader (which the batch decoder itself drops)
// and retries the whole chunk against the leader.
func TestRedirectFollowingBatch(t *testing.T) {
	leader, follower := startCluster(t)
	ctx := context.Background()

	cl, err := Dial(Config{Addr: follower.addr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ops := []Op{InsertOp(1), InsertOp(2), DeleteOp(3), LookupOp(1)}
	results, err := cl.Do(ctx, ops)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("op %d err = %v", i, r.Err)
		}
	}
	if !results[0].OK || !results[1].OK || results[2].OK || !results[3].OK {
		t.Fatalf("batch results wrong: %+v", results)
	}
	if !leader.store.Contains(1) || !leader.store.Contains(2) {
		t.Fatal("batch writes did not land on the leader")
	}
	if cl.Stats().Redirects == 0 {
		t.Fatal("no redirect counted for the batch frame")
	}
}

// TestNotLeaderIdentity: with retries disabled the redirect surfaces as an
// error that is errors.Is-equal to ErrNotLeader and errors.As-extractable
// as a NotLeaderError carrying the leader's data address — across the wire.
func TestNotLeaderIdentity(t *testing.T) {
	leader, follower := startCluster(t)
	ctx := context.Background()

	cl, err := Dial(Config{Addr: follower.addr, Seed: 1, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, err = cl.Insert(ctx, 7)
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("Insert on follower err = %v, want errors.Is(…, ErrNotLeader)", err)
	}
	var nle *NotLeaderError
	if !errors.As(err, &nle) {
		t.Fatalf("err %v not errors.As-able to *NotLeaderError", err)
	}
	if nle.Leader != leader.addr {
		t.Fatalf("NotLeaderError.Leader = %q, want %q", nle.Leader, leader.addr)
	}
}

// TestReadAtLeast: the staleness regression. A follower read that names
// the leader's sequence horizon must observe the write at that horizon —
// never the pre-write state — and an unreachable horizon must surface as
// ErrReplLag rather than a silently stale answer.
func TestReadAtLeast(t *testing.T) {
	leader, follower := startCluster(t)
	ctx := context.Background()

	// Write on the leader directly; capture the ack's WAL sequence.
	if !leader.store.Insert(1000) {
		t.Fatal("leader insert failed")
	}
	seq := leader.store.LastSeq()

	// A client pointed at the follower (reads stay local: only mutations
	// redirect) must see the write once it names seq.
	cl, err := Dial(Config{Addr: follower.addr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ok, err := cl.ReadAtLeast(ctx, 1000, seq)
	if err != nil {
		t.Fatalf("ReadAtLeast(1000, %d): %v", seq, err)
	}
	if !ok {
		t.Fatalf("ReadAtLeast(1000, %d) = false: stale read", seq)
	}
	if cl.Leader() != "" {
		t.Fatal("a read triggered a leader redirect")
	}

	// A horizon the cluster has not reached: ErrReplLag, not a stale bool.
	cl2, err := Dial(Config{Addr: follower.addr, Seed: 1, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	// No client deadline: the server's DefaultDeadline (1s) bounds the
	// wait and the StatusReplLag answer arrives before any IO timeout.
	if _, err := cl2.ReadAtLeast(ctx, 1000, seq+1<<30); !errors.Is(err, ErrReplLag) {
		t.Fatalf("ReadAtLeast(future seq) err = %v, want errors.Is(…, ErrReplLag)", err)
	}
	if cl2.Stats().ReplLags == 0 {
		t.Fatal("no repl-lag response counted")
	}
}

// TestReadAtLeastSingleNode: without a cluster the server falls back to
// its durable horizon, so read-your-writes still holds on one node and an
// impossible horizon still answers ErrReplLag.
func TestReadAtLeastSingleNode(t *testing.T) {
	store, err := durable.Open(t.TempDir(), durable.Options{Sync: wal.SyncFsync})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := server.New(server.Config{Store: store})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	cl, err := Dial(Config{Addr: srv.Addr().String(), Seed: 1, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	if ok, err := cl.Insert(ctx, 5); err != nil || !ok {
		t.Fatalf("Insert = (%v, %v)", ok, err)
	}
	if ok, err := cl.ReadAtLeast(ctx, 5, store.LastSeq()); err != nil || !ok {
		t.Fatalf("ReadAtLeast = (%v, %v), want (true, nil)", ok, err)
	}
	if _, err := cl.ReadAtLeast(ctx, 5, store.LastSeq()+1); !errors.Is(err, ErrReplLag) {
		t.Fatalf("ReadAtLeast past horizon err = %v, want ErrReplLag", err)
	}
}

// TestFailoverRedial: when the learned leader dies, the client forgets it
// and falls back to the seed address — here the surviving follower, which
// after promotion takes the write itself.
func TestFailoverRedial(t *testing.T) {
	leader, follower := startCluster(t)
	ctx := context.Background()

	cl, err := Dial(Config{Addr: follower.addr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if ok, err := cl.Insert(ctx, 1); err != nil || !ok {
		t.Fatalf("Insert = (%v, %v)", ok, err)
	}
	// Everything acked on the old leader must be on the follower before
	// the kill, or the promoted node would serve a hole.
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := follower.node.WaitApplied(wctx, leader.store.LastSeq()); err != nil {
		t.Fatalf("WaitApplied: %v", err)
	}

	// Kill the leader, promote the follower.
	sctx, cancel2 := context.WithTimeout(ctx, 5*time.Second)
	defer cancel2()
	leader.srv.Shutdown(sctx)
	leader.node.Close()
	if _, err := follower.node.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}

	// The client still believes the dead leader leads; the failed dial
	// clears that and the retry loop lands on the seed (the new leader).
	if ok, err := cl.Insert(ctx, 2); err != nil || !ok {
		t.Fatalf("Insert after failover = (%v, %v)", ok, err)
	}
	if !follower.store.Contains(2) {
		t.Fatal("post-failover write missing from the promoted node")
	}
}

// TestAdaptiveBackoffLevel: backpressure raises the contention level (to a
// cap), success lowers it (to zero), and the level widens the window the
// next backoff draws from.
func TestAdaptiveBackoffLevel(t *testing.T) {
	cl, err := Dial(Config{Addr: "x", Seed: 9, Backoff: 2 * time.Millisecond, MaxBackoff: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < contentionCap+3; i++ {
		cl.noteBackpressure()
	}
	if got := cl.Stats().ContentionLevel; got != contentionCap {
		t.Fatalf("level after saturation = %d, want %d", got, contentionCap)
	}
	// At level L, attempt 0 draws from [d/2, d], d = base << L.
	d := 2 * time.Millisecond << contentionCap
	for i := 0; i < 50; i++ {
		got := cl.backoff(2*time.Millisecond, cl.shifted(0))
		if got < d/2 || got > d {
			t.Fatalf("backoff at level %d = %v outside [%v, %v]", contentionCap, got, d/2, d)
		}
	}
	for i := 0; i < contentionCap+3; i++ {
		cl.noteSuccess()
	}
	if got := cl.Stats().ContentionLevel; got != 0 {
		t.Fatalf("level after recovery = %d, want 0", got)
	}
	// Back at level 0 the window is tight again.
	for i := 0; i < 50; i++ {
		got := cl.backoff(2*time.Millisecond, cl.shifted(0))
		if got < time.Millisecond || got > 2*time.Millisecond {
			t.Fatalf("recovered backoff = %v outside [1ms, 2ms]", got)
		}
	}
}

// TestReplLagStatusMapping: the wire status ↔ sentinel mapping is stable
// (a regression guard for the numeric protocol constants).
func TestReplLagStatusMapping(t *testing.T) {
	if wire.StatusNotLeader != 8 || wire.StatusReplLag != 9 {
		t.Fatalf("repl status codes moved: NotLeader=%d ReplLag=%d", wire.StatusNotLeader, wire.StatusReplLag)
	}
}
