package client

// Pipelining: a Pipeline owns one dedicated connection and decouples
// sending from receiving, so many requests ride the wire before the first
// response returns — the request-per-round-trip client pays one RTT per
// operation, a pipeline pays one RTT per *window*. Submissions buffer in
// the connection's writer and flush either when the buffer fills or when a
// caller starts waiting; a background reader demultiplexes responses to
// their futures by correlation id (the server answers in order, but ids
// make the pairing robust and cheap to assert).
//
// Retries deliberately do not happen inside the pipeline: a retry must
// not block the reader (backoff sleeps) or reorder the stream. Instead a
// future whose outcome is retryable (shed, drain, capacity, transport
// failure) reports it, and Future.Wait re-runs that one operation through
// the client's pooled single-op path, which owns the full backoff policy.
// The pipeline stays a pure fast path; the slow path is the proven one.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	bst "repro"
	"repro/internal/rtrace"
	"repro/internal/wire"
)

// ErrPipelineClosed is returned by Submit after Close, or when the
// pipeline's connection failed.
var ErrPipelineClosed = errors.New("client: pipeline closed")

// Pipeline is an asynchronous session over one dedicated connection.
// Submit and Flush are safe for concurrent use; each Future belongs to
// the goroutine that waits on it.
type Pipeline struct {
	cl *Client
	c  net.Conn

	wmu     sync.Mutex // serializes writes and pending-map inserts
	bw      *bufio.Writer
	unsent  int // submissions buffered since the last flush
	pending map[uint64]*Future
	err     error // sticky: set once the connection is unusable

	readerDone chan struct{}
}

// Future is the pending result of one pipelined operation.
type Future struct {
	p     *Pipeline
	done  chan struct{}
	op    Op
	trace rtrace.Context // stamped at Submit; fallback re-runs keep it
	resp  wire.Response
	err   error // transport-level failure of the pipeline
}

// NewPipeline dials a dedicated connection for pipelined requests. The
// caller must Close the pipeline; outstanding futures then fail over to
// the pooled path when waited on.
func (cl *Client) NewPipeline(ctx context.Context) (*Pipeline, error) {
	d := net.Dialer{Timeout: cl.cfg.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", cl.targetAddr())
	if err != nil {
		return nil, fmt.Errorf("client: pipeline dial: %w", err)
	}
	p := &Pipeline{
		cl:         cl,
		c:          nc,
		bw:         bufio.NewWriterSize(nc, 32<<10),
		pending:    make(map[uint64]*Future),
		readerDone: make(chan struct{}),
	}
	go p.readLoop()
	return p, nil
}

// Submit enqueues one operation and returns its Future. The request may
// sit in the write buffer until Flush, a buffer-filling later Submit, or
// the first Wait on any of the pipeline's futures.
func (p *Pipeline) Submit(ctx context.Context, op Op) (*Future, error) {
	if op.Kind != wire.OpInsert && op.Kind != wire.OpDelete && op.Kind != wire.OpLookup {
		return nil, fmt.Errorf("%w: unknown op kind %d", ErrBadRequest, op.Kind)
	}
	f := &Future{p: p, done: make(chan struct{}), op: op, trace: p.cl.cfg.Trace.SampleNext()}
	req := wire.Request{
		ID:         p.cl.id.Add(1),
		Op:         op.Kind,
		DeadlineMS: deadlineMS(ctx),
		Key:        op.Key,
		Trace:      f.trace,
	}
	p.cl.stats.requests.Add(1)

	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.err != nil {
		return nil, p.err
	}
	// Register before writing: the response can race back before the
	// write lock is released.
	p.pending[req.ID] = f
	buf := wire.GetBuf()
	*buf = wire.AppendRequest((*buf)[:0], req)
	err := wire.WriteFrame(p.bw, *buf)
	wire.PutBuf(buf)
	if err != nil {
		delete(p.pending, req.ID)
		p.failLocked(fmt.Errorf("client: pipeline write: %w", err))
		return nil, p.err
	}
	p.unsent++
	return f, nil
}

// Flush pushes all buffered requests onto the wire.
func (p *Pipeline) Flush() error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	return p.flushLocked()
}

func (p *Pipeline) flushLocked() error {
	if p.err != nil {
		return p.err
	}
	if p.unsent == 0 {
		return nil
	}
	if err := p.bw.Flush(); err != nil {
		p.failLocked(fmt.Errorf("client: pipeline flush: %w", err))
		return p.err
	}
	p.unsent = 0
	return nil
}

// failLocked poisons the pipeline (wmu held): the sticky error fails
// future Submits, the connection close unblocks the reader, and the
// reader fails every pending future.
func (p *Pipeline) failLocked(err error) {
	if p.err == nil {
		p.err = err
	}
	p.c.Close()
}

// Close tears the pipeline down. Futures not yet answered complete with a
// transport error; waiting on them falls back to the pooled path.
func (p *Pipeline) Close() error {
	p.wmu.Lock()
	p.flushLocked() // best effort: answered-but-buffered must not strand peers
	p.failLocked(ErrPipelineClosed)
	p.wmu.Unlock()
	<-p.readerDone
	return nil
}

// readLoop demultiplexes responses to futures until the connection dies.
func (p *Pipeline) readLoop() {
	defer close(p.readerDone)
	br := bufio.NewReaderSize(p.c, 32<<10)
	var scratch []byte
	for {
		payload, s, err := wire.ReadFrame(br, scratch)
		scratch = s
		if err != nil {
			p.wmu.Lock()
			p.failLocked(fmt.Errorf("client: pipeline read: %w", err))
			for id, f := range p.pending {
				delete(p.pending, id)
				f.err = p.err
				close(f.done)
			}
			p.wmu.Unlock()
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			p.wmu.Lock()
			p.failLocked(fmt.Errorf("client: pipeline decode: %w", err))
			p.wmu.Unlock()
			continue // the read error on the closed conn finishes the loop
		}
		p.wmu.Lock()
		f := p.pending[resp.ID]
		delete(p.pending, resp.ID)
		p.wmu.Unlock()
		if f == nil {
			continue // stale response for a future torn down by a failure
		}
		f.resp = resp
		close(f.done)
	}
}

// Wait blocks for the operation's outcome. Retryable outcomes — a shed or
// draining server, a capacity-full tree, a broken pipeline — are re-run
// through the client's pooled single-op retry path, so Wait returns what
// the equivalent synchronous call would have: the same results, the same
// sentinel errors, the same backoff discipline.
func (f *Future) Wait(ctx context.Context) (bool, error) {
	select {
	case <-f.done:
	default:
		// Nothing can complete until buffered requests actually leave; a
		// flush failure needs no handling here, because it poisons the
		// pipeline and the reader then fails this future promptly.
		f.p.Flush()
		select {
		case <-f.done:
		case <-ctx.Done():
			return false, ctx.Err()
		}
	}

	if f.err != nil {
		// The pipeline died before answering; the operation may or may not
		// have executed. All three point ops are safe to re-run: they are
		// idempotent in effect, and the retried observation is as valid a
		// linearization as the lost one.
		return f.fallback(ctx)
	}
	switch f.resp.Status {
	case wire.StatusOK:
		return f.resp.OK, nil
	case wire.StatusOverloaded, wire.StatusDraining, wire.StatusCapacity:
		return f.fallback(ctx)
	case wire.StatusNotLeader:
		// The pipeline's dedicated connection points at a follower. Teach
		// the client the leader's address and let the pooled path (which
		// follows redirects) finish this operation; new pipelines should
		// be built against Leader().
		f.p.cl.stats.redirects.Add(1)
		f.p.cl.noteLeader(f.resp.Leader)
		f.p.cl.cfg.Trace.Event(f.trace, rtrace.KRedirect, 0)
		return f.fallback(ctx)
	case wire.StatusKeyOutOfRange:
		return false, fmt.Errorf("%w: key %d", bst.ErrKeyOutOfRange, f.op.Key)
	case wire.StatusDeadlineExceeded:
		return false, fmt.Errorf("%w: server reported budget exhausted", ErrDeadline)
	case wire.StatusInternal:
		return false, ErrInternal
	default:
		return false, fmt.Errorf("%w: status %v", ErrBadRequest, f.resp.Status)
	}
}

// fallback re-runs the operation on the pooled connections with the full
// retry loop, carrying the Future's trace context so a redirected or
// re-run operation stays one trace end to end.
func (f *Future) fallback(ctx context.Context) (bool, error) {
	resp, err := f.p.cl.do(ctx, wire.Request{Op: f.op.Kind, Key: f.op.Key, Trace: f.trace})
	return resp.OK, err
}
