package client

// Batched requests: Client.Do packs many point operations into OpBatch
// frames (internal/wire), so one round trip — and one server admission
// slot — covers up to wire.MaxBatchOps operations, and the server executes
// them through the tree's batched seeks. The retry policies of the
// single-op path apply per operation: a shed or drained *frame* retries
// wholesale, while per-op capacity failures retry as a shrinking sub-batch
// under the capacity backoff, and permanent per-op failures (key out of
// range) surface in their own slot without disturbing their neighbours.

import (
	"context"
	"fmt"
	"time"

	bst "repro"
	"repro/internal/rtrace"
	"repro/internal/wire"
)

// Op is one point operation inside a batched call.
type Op struct {
	Kind uint8 // wire.OpInsert, wire.OpDelete or wire.OpLookup
	Key  int64
}

// InsertOp, DeleteOp and LookupOp build batch operations.
func InsertOp(key int64) Op { return Op{Kind: wire.OpInsert, Key: key} }
func DeleteOp(key int64) Op { return Op{Kind: wire.OpDelete, Key: key} }
func LookupOp(key int64) Op { return Op{Kind: wire.OpLookup, Key: key} }

// OpResult is one operation's outcome from a batched call. OK mirrors the
// single-op return (set changed / key present); Err is nil or the same
// error the single-op method would have returned (bst.ErrCapacity,
// bst.ErrKeyOutOfRange, ErrOverloaded, ... — errors.Is works identically).
type OpResult struct {
	OK  bool
	Err error
}

// Do executes ops against the server in batch frames, one result per
// operation in order. Operations are individually linearizable, not
// atomic as a group, matching the tree's batch semantics. The returned
// error is nil unless the context expired or a whole chunk could never be
// delivered; per-operation failures live in their slots, so callers must
// check both.
func (cl *Client) Do(ctx context.Context, ops []Op) ([]OpResult, error) {
	out := make([]OpResult, len(ops))
	for start := 0; start < len(ops); start += wire.MaxBatchOps {
		end := min(start+wire.MaxBatchOps, len(ops))
		if err := cl.doChunk(ctx, ops[start:end], out[start:end]); err != nil {
			return out, err
		}
	}
	return out, nil
}

// doChunk runs one ≤MaxBatchOps slice of operations through the retry
// loop. out slots for operations that exhaust their attempts keep the
// error of their last attempt.
func (cl *Client) doChunk(ctx context.Context, ops []Op, out []OpResult) error {
	cl.stats.requests.Add(uint64(len(ops)))

	// One trace context covers the whole chunk, surviving every retry and
	// redirect (KClientSend's Arg carries the op count, not a key).
	tc := cl.cfg.Trace.SampleNext()
	if tc.Sampled() {
		start := time.Now()
		defer cl.cfg.Trace.Span(tc, rtrace.KClientSend, start, int64(len(ops)))
	}

	// pending holds the indices still awaiting a definitive outcome.
	pending := make([]int, 0, len(ops))
	for i, op := range ops {
		if op.Kind != wire.OpInsert && op.Kind != wire.OpDelete && op.Kind != wire.OpLookup {
			out[i] = OpResult{Err: fmt.Errorf("%w: unknown op kind %d", ErrBadRequest, op.Kind)}
			continue
		}
		pending = append(pending, i)
	}

	bops := make([]wire.BatchOp, 0, len(pending))
	results := make([]wire.BatchResult, 0, len(pending))
	for attempt := 0; attempt < cl.cfg.MaxAttempts && len(pending) > 0; attempt++ {
		if attempt > 0 {
			cl.stats.retries.Add(uint64(len(pending)))
			cl.cfg.Trace.Event(tc, rtrace.KRetry, int64(attempt))
		}
		if err := ctx.Err(); err != nil {
			return err
		}

		bops = bops[:0]
		for _, idx := range pending {
			bops = append(bops, wire.BatchOp{Op: ops[idx].Kind, Key: ops[idx].Key})
		}
		id := cl.id.Add(1)
		st, res, err := cl.roundTripBatch(ctx, id, deadlineMS(ctx), tc, bops, results[:0])
		results = res

		if err != nil {
			cl.stats.transport.Add(1)
			cl.noteBackpressure()
			for _, idx := range pending {
				out[idx] = OpResult{Err: err}
			}
			if !cl.sleep(ctx, cl.backoff(cl.cfg.Backoff, cl.shifted(attempt))) {
				return fmt.Errorf("%w (last transport error: %v)", context.Cause(ctx), err)
			}
			continue
		}

		switch st {
		case wire.StatusOK:
			cl.noteSuccess()
			// Fall through to per-op triage.
		case wire.StatusOverloaded, wire.StatusDraining:
			err := ErrOverloaded
			if st == wire.StatusDraining {
				cl.stats.drains.Add(1)
				err = ErrDraining
			} else {
				cl.stats.sheds.Add(1)
			}
			cl.noteBackpressure()
			for _, idx := range pending {
				out[idx] = OpResult{Err: err}
			}
			if !cl.sleep(ctx, cl.backoff(cl.cfg.Backoff, cl.shifted(attempt))) {
				return fmt.Errorf("%w after batch rejection", context.Cause(ctx))
			}
			continue
		case wire.StatusNotLeader:
			// The whole frame bounced off a follower; roundTripBatch
			// already adopted the leader address the response named, so
			// retry immediately against it (pause only while the cluster
			// is between leaders, to avoid a hot redirect loop).
			cl.stats.redirects.Add(1)
			cl.cfg.Trace.Event(tc, rtrace.KRedirect, int64(attempt))
			rerr := error(&NotLeaderError{Leader: cl.Leader()})
			for _, idx := range pending {
				out[idx] = OpResult{Err: rerr}
			}
			if cl.Leader() == "" {
				if !cl.sleep(ctx, cl.backoff(cl.cfg.Backoff, cl.shifted(attempt))) {
					return fmt.Errorf("%w awaiting leader election", context.Cause(ctx))
				}
			}
			continue
		default:
			// Frame-level permanent failure: every pending op inherits it.
			err := statusErr(st)
			for _, idx := range pending {
				out[idx] = OpResult{Err: err}
			}
			return nil
		}

		if len(results) != len(pending) {
			return fmt.Errorf("%w: batch response carries %d results for %d ops", ErrBadRequest, len(results), len(pending))
		}

		next := pending[:0]
		capacityRetry := false
		for k, idx := range pending {
			r := results[k]
			switch r.Status {
			case wire.StatusOK:
				out[idx] = OpResult{OK: r.OK}
			case wire.StatusCapacity:
				cl.stats.capacity.Add(1)
				out[idx] = OpResult{Err: bst.ErrCapacity}
				next = append(next, idx)
				capacityRetry = true
			case wire.StatusOverloaded:
				cl.stats.sheds.Add(1)
				out[idx] = OpResult{Err: ErrOverloaded}
				next = append(next, idx)
			case wire.StatusKeyOutOfRange:
				out[idx] = OpResult{Err: fmt.Errorf("%w: key %d", bst.ErrKeyOutOfRange, ops[idx].Key)}
			case wire.StatusDeadlineExceeded:
				out[idx] = OpResult{Err: fmt.Errorf("%w: server reported budget exhausted", ErrDeadline)}
			default:
				out[idx] = OpResult{Err: statusErr(r.Status)}
			}
		}
		pending = next
		if len(pending) > 0 {
			cl.noteBackpressure()
			base := cl.cfg.Backoff
			if capacityRetry {
				base = cl.cfg.CapacityBackoff
			}
			if !cl.sleep(ctx, cl.backoff(base, cl.shifted(attempt))) {
				return fmt.Errorf("%w retrying %d batched ops", context.Cause(ctx), len(pending))
			}
		}
	}
	// Attempts exhausted: the pending slots keep their last per-op error.
	return nil
}

// statusErr maps a permanent wire status to the client's error space.
func statusErr(st wire.Status) error {
	switch st {
	case wire.StatusInternal:
		return ErrInternal
	case wire.StatusKeyOutOfRange:
		return bst.ErrKeyOutOfRange
	case wire.StatusDeadlineExceeded:
		return ErrDeadline
	default:
		return fmt.Errorf("%w: status %v", ErrBadRequest, st)
	}
}

// roundTripBatch sends one OpBatch frame on a pooled connection and reads
// its response, appending the per-op results to dst.
func (cl *Client) roundTripBatch(ctx context.Context, id uint64, deadlineMS uint32, tc rtrace.Context, bops []wire.BatchOp, dst []wire.BatchResult) (wire.Status, []wire.BatchResult, error) {
	c, err := cl.acquire(ctx)
	if err != nil {
		return 0, dst, err
	}
	keep := false
	defer func() { cl.release(c, keep) }()

	c.scratch = wire.AppendBatchRequest(c.scratch[:0], id, deadlineMS, tc, bops)
	if err := wire.WriteFrame(c.bw, c.scratch); err != nil {
		return 0, dst, fmt.Errorf("client: write: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return 0, dst, fmt.Errorf("client: flush: %w", err)
	}
	payload, scratch, err := wire.ReadFrame(c.br, c.scratch)
	c.scratch = scratch
	if err != nil {
		return 0, dst, fmt.Errorf("client: read: %w", err)
	}
	rid, st, results, err := wire.DecodeBatchResponse(payload, dst)
	if err != nil {
		return 0, dst, fmt.Errorf("client: decode: %w", err)
	}
	if rid != id {
		return 0, dst, fmt.Errorf("client: response id %d for request %d", rid, id)
	}
	if st == wire.StatusNotLeader {
		// DecodeBatchResponse stops at the status byte on a frame-level
		// rejection; the leader address rides the single-response tail,
		// so re-decode the same payload through that view to learn it.
		if resp, derr := wire.DecodeResponse(payload); derr == nil {
			cl.noteLeader(resp.Leader)
		}
	}
	keep = st != wire.StatusDraining && st != wire.StatusInternal
	return st, results, nil
}
