package client

// End-to-end tracing against a real two-node cluster: one sampled write
// must yield a linked span tree spanning the client (round trip), the
// leader (request root, tree op, WAL fsync wait, semi-sync repl wait) and
// the follower (apply), exported intact through /debug/rtrace in both the
// native JSON and Chrome trace formats. Plus the pipeline contract: a
// batch future bounced with StatusNotLeader keeps its trace identity
// through the pooled-path retry and records the redirect hop.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/repl"
	"repro/internal/rtrace"
	"repro/internal/server"
	"repro/internal/wal"
)

// startTracedNode is startNode with a flight recorder wired into both the
// server and the replication node, and semi-sync on the leader (so the
// repl-wait phase exists to be traced).
func startTracedNode(t *testing.T, replicaOf string, rec *rtrace.Recorder) *clusterNode {
	t.Helper()
	store, err := durable.Open(t.TempDir(), durable.Options{Sync: wal.SyncFsync})
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	t.Cleanup(func() { store.Close() })

	addr := reserveAddr(t)
	node, err := repl.Start(repl.Config{
		Store:       store,
		Advertise:   addr,
		ListenRepl:  "127.0.0.1:0",
		ReplicaOf:   replicaOf,
		Heartbeat:   20 * time.Millisecond,
		AckEvery:    1,
		AckInterval: 2 * time.Millisecond,
		RequireAck:  replicaOf == "",
		AckTimeout:  10 * time.Second,
		Trace:       rec,
	})
	if err != nil {
		t.Fatalf("repl.Start: %v", err)
	}
	t.Cleanup(func() { node.Close() })

	srv := server.New(server.Config{Store: store, Cluster: node, Trace: rec})
	if err := srv.Start(addr); err != nil {
		t.Fatalf("server.Start(%s): %v", addr, err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return &clusterNode{store: store, node: node, srv: srv, addr: addr}
}

func startTracedCluster(t *testing.T, leaderRec, followerRec *rtrace.Recorder) (leader, follower *clusterNode) {
	t.Helper()
	leader = startTracedNode(t, "", leaderRec)
	follower = startTracedNode(t, leader.node.ReplAddr(), followerRec)
	deadline := time.Now().Add(10 * time.Second)
	for follower.node.LeaderAddr() != leader.addr {
		if time.Now().After(deadline) {
			t.Fatal("follower never learned the leader's data address")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return leader, follower
}

func findSpan(spans []rtrace.Span, trace uint64, kind uint8) (rtrace.Span, bool) {
	for _, sp := range spans {
		if sp.TraceID == trace && sp.Kind == kind {
			return sp, true
		}
	}
	return rtrace.Span{}, false
}

// TestClusterTraceLinkage is the tentpole acceptance test: a sampled PUT
// against a two-node semi-sync cluster produces one span tree — client
// send, server request root with tree-op / WAL-wait / repl-wait children,
// and a follower apply parented under the leader's request root — all
// sharing one trace ID across three recorders (three "processes").
func TestClusterTraceLinkage(t *testing.T) {
	leaderRec := rtrace.New(rtrace.Options{})   // records only wire-sampled requests
	followerRec := rtrace.New(rtrace.Options{}) // likewise: linkage, not self-sampling
	clientRec := rtrace.New(rtrace.Options{SampleEvery: 1})
	leader, follower := startTracedCluster(t, leaderRec, followerRec)
	_ = follower

	cl, err := Dial(Config{Addr: leader.addr, Seed: 1, Trace: clientRec})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// The leader stamps a shipped batch by looking the WAL seq up in the
	// sampled-seq table; the note lands just after execute, racing the
	// group-commit flusher, so a stamp can very occasionally miss a batch.
	// Insert until one full cross-process chain exists — one sampled write
	// normally suffices.
	var chain struct {
		trace                           uint64
		clientSend, root, tree, walWait rtrace.Span
		replWait, apply                 rtrace.Span
	}
	deadline := time.Now().Add(15 * time.Second)
	for key := int64(1000); ; key++ {
		if ok, err := cl.Insert(ctx, key); err != nil || !ok {
			t.Fatalf("Insert(%d) = (%v, %v)", key, ok, err)
		}
		clientSpans := clientRec.Snapshot()
		leaderSpans := leaderRec.Snapshot()
		followerSpans := followerRec.Snapshot()
		found := false
		for _, cs := range clientSpans {
			if cs.Kind != rtrace.KClientSend {
				continue
			}
			root, ok1 := findSpan(leaderSpans, cs.TraceID, rtrace.KRequest)
			tree, ok2 := findSpan(leaderSpans, cs.TraceID, rtrace.KTreeOp)
			walw, ok3 := findSpan(leaderSpans, cs.TraceID, rtrace.KWALWait)
			replw, ok4 := findSpan(leaderSpans, cs.TraceID, rtrace.KReplWait)
			apply, ok5 := findSpan(followerSpans, cs.TraceID, rtrace.KApply)
			if ok1 && ok2 && ok3 && ok4 && ok5 {
				chain.trace = cs.TraceID
				chain.clientSend, chain.root, chain.tree = cs, root, tree
				chain.walWait, chain.replWait, chain.apply = walw, replw, apply
				found = true
				break
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no complete cross-process span chain after %d sampled inserts", key-999)
		}
	}

	// Linkage: the client's send span and the leader's request root are
	// siblings under the context the client originated; the server-side
	// phases are children of the root; the follower's apply is parented
	// under the leader's request root (it crossed the wire in the shipped
	// batch's trace extension).
	if chain.clientSend.Parent != chain.root.Parent {
		t.Fatalf("client send parent %d != request root parent %d (should share the originated span ID)",
			chain.clientSend.Parent, chain.root.Parent)
	}
	for name, sp := range map[string]rtrace.Span{
		"tree_op": chain.tree, "wal_wait": chain.walWait, "repl_wait": chain.replWait,
	} {
		if sp.Parent != chain.root.SpanID {
			t.Fatalf("%s span parent = %d, want request root %d", name, sp.Parent, chain.root.SpanID)
		}
	}
	if chain.apply.Parent != chain.root.SpanID {
		t.Fatalf("follower apply parent = %d, want leader request root %d", chain.apply.Parent, chain.root.SpanID)
	}
	if chain.apply.Arg == 0 {
		t.Fatal("follower apply carries no WAL seq")
	}
	if chain.root.Op != 1 { // wire.OpInsert
		t.Fatalf("request root op = %d, want insert", chain.root.Op)
	}

	// Exports: the JSON endpoint must carry the request span; the Chrome
	// endpoint must be a valid trace-event document with the same spans.
	rw := httptest.NewRecorder()
	leaderRec.ServeJSON(rw, nil)
	var dump struct {
		Spans []struct {
			Trace string `json:"trace"`
			Kind  string `json:"kind"`
		} `json:"spans"`
		Phases map[string]struct {
			Count uint64 `json:"Count"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &dump); err != nil {
		t.Fatalf("/debug/rtrace is not valid JSON: %v", err)
	}
	wantHex := hexTrace(chain.trace)
	foundJSON := false
	for _, sp := range dump.Spans {
		if sp.Trace == wantHex && sp.Kind == "request" {
			foundJSON = true
		}
	}
	if !foundJSON {
		t.Fatalf("/debug/rtrace JSON missing request span for trace %s", wantHex)
	}

	rw = httptest.NewRecorder()
	leaderRec.ServeChrome(rw, nil)
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/rtrace/chrome is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/debug/rtrace/chrome has no events")
	}
	for _, ev := range doc.TraceEvents {
		if ev.Phase != "X" && ev.Phase != "i" {
			t.Fatalf("chrome event %q has phase %q, want X or i", ev.Name, ev.Phase)
		}
	}
}

func hexTrace(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// TestPipelineRedirectKeepsTrace: a pipelined future submitted to a
// follower bounces with StatusNotLeader; the pooled-path retry must carry
// the same trace ID (one logical operation, one trace) and the redirect
// hop must be recorded as an event on that trace.
func TestPipelineRedirectKeepsTrace(t *testing.T) {
	clientRec := rtrace.New(rtrace.Options{SampleEvery: 1})
	leader, follower := startTracedCluster(t, rtrace.New(rtrace.Options{}), rtrace.New(rtrace.Options{}))

	cl, err := Dial(Config{Addr: follower.addr, Seed: 1, Trace: clientRec})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	p, err := cl.NewPipeline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f, err := p.Submit(ctx, InsertOp(4242))
	if err != nil {
		t.Fatal(err)
	}
	if !f.trace.Sampled() {
		t.Fatal("future not sampled at SampleEvery=1")
	}
	if ok, err := f.Wait(ctx); err != nil || !ok {
		t.Fatalf("Wait = (%v, %v), want (true, nil)", ok, err)
	}
	if !leader.store.Contains(4242) {
		t.Fatal("redirected pipeline write did not land on the leader")
	}

	spans := clientRec.Snapshot()
	redirect, okR := findSpan(spans, f.trace.TraceID, rtrace.KRedirect)
	send, okS := findSpan(spans, f.trace.TraceID, rtrace.KClientSend)
	if !okR {
		t.Fatalf("no redirect event recorded for trace %016x; spans: %+v", f.trace.TraceID, spans)
	}
	if !okS {
		t.Fatalf("pooled-path retry lost the trace: no client_send span for %016x", f.trace.TraceID)
	}
	// Both hang off the identity stamped at Submit.
	if redirect.Parent != f.trace.SpanID || send.Parent != f.trace.SpanID {
		t.Fatalf("redirect parent %d / send parent %d, want submit-time span %d",
			redirect.Parent, send.Parent, f.trace.SpanID)
	}
}
