// Package client is the retrying network client for the bstserve protocol
// (internal/wire, served by internal/server).
//
// The client owns a small pool of TCP connections and classifies every
// failure into one of three retry policies:
//
//   - transport trouble (dial failure, connection reset, server drain):
//     redial and retry with short exponential backoff — the server is
//     restarting, a peer will come back;
//   - load shed (wire.StatusOverloaded): retry on the same connection
//     after short exponential backoff with jitter — the server is alive
//     and explicitly asked us to slow down, and jitter keeps a fleet of
//     clients from re-converging in lockstep;
//   - capacity (wire.StatusCapacity): retry after a *longer* backoff —
//     arena slots return only after deletes plus reclamation grace
//     periods, so hammering is pointless; the error surfaces as
//     bst.ErrCapacity when attempts run out, so errors.Is works across
//     the network boundary exactly as it does in process.
//
// Permanent failures (key out of range, malformed request, server panic)
// are never retried; wire.StatusKeyOutOfRange likewise surfaces as
// bst.ErrKeyOutOfRange. Deadlines flow from the context: the remaining
// budget rides in every request frame, and backoff sleeps never overrun
// the context.
//
// The client is replication-aware: a wire.StatusNotLeader response
// (mutation sent to a follower) carries the leader's advertised address,
// which the client adopts for subsequent connections and retries against
// immediately — redirects are topology information, not congestion, so
// they consume an attempt but no backoff. If the learned leader becomes
// undialable the client falls back to the configured seed address (which
// an operator points at a load balancer or any live node). A
// wire.StatusFenced response — the node was the leader but has been
// deposed by a newer term — is the same redirect with a stronger reason:
// the client adopts the named successor, or, when the fence names none,
// drops the cached leader and re-discovers from the seed under capped
// backoff. ReadAtLeast
// adds read-your-writes on followers: the request names a WAL sequence
// the replica must have applied before answering, and a replica that
// cannot catch up in time answers StatusReplLag, surfacing as ErrReplLag.
//
// Backoff adapts to observed contention: every shed, capacity rejection,
// drain, or transport failure raises a contention level that widens the
// base backoff window (each level doubles it, up to 2^6×), and every
// clean response lowers it. A fleet of clients hammering a struggling
// server therefore backs off more aggressively than the per-attempt
// exponential alone, and recovers to tight latencies as soon as the
// server breathes again.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	bst "repro"
	"repro/internal/rtrace"
	"repro/internal/wire"
)

// Sentinel errors. ErrOverloaded and ErrDraining wrap the corresponding
// wire statuses when retries run out; capacity and key-range failures
// surface as bst.ErrCapacity / bst.ErrKeyOutOfRange instead, so callers
// use one errors.Is test whether the tree is local or remote.
var (
	ErrOverloaded = errors.New("client: server overloaded")
	ErrDraining   = errors.New("client: server draining")
	ErrInternal   = errors.New("client: server internal error")
	ErrBadRequest = errors.New("client: bad request")
	ErrDeadline   = errors.New("client: deadline exceeded")
)

// Replication sentinels. ErrNotLeader matches (via errors.Is) any
// NotLeaderError, however many redirect hops deep it is wrapped;
// ErrReplLag reports a replica that could not reach the sequence a
// ReadAtLeast demanded within the request's deadline. ErrFenced matches a
// FencedError — a mutation reached a deposed leader; FencedError also
// satisfies errors.Is(err, ErrNotLeader), so callers with a generic
// "wrong node, follow the redirect" policy need no new case.
var (
	ErrNotLeader = errors.New("client: not the leader")
	ErrFenced    = errors.New("client: fenced (deposed) leader")
	ErrReplLag   = errors.New("client: replica lagging requested sequence")
)

// NotLeaderError is the concrete error behind ErrNotLeader: a mutation
// reached a follower, and Leader (when non-empty) is the data address the
// cluster believes leads. The client already adopted it for retries;
// callers that exhaust attempts can extract it with errors.As to decide
// whether a topology change, not load, is the problem.
type NotLeaderError struct {
	Leader string
}

func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return "client: not the leader (no leader known)"
	}
	return fmt.Sprintf("client: not the leader (leader at %s)", e.Leader)
}

// Is makes errors.Is(err, ErrNotLeader) hold for any NotLeaderError.
func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// FencedError is the concrete error behind ErrFenced: the node a mutation
// reached was the leader once but has been deposed by a newer term and is
// refusing writes until it rejoins. Leader (when non-empty) is where the
// cluster says writes go now; the client already adopted it.
type FencedError struct {
	Leader string
}

func (e *FencedError) Error() string {
	if e.Leader == "" {
		return "client: leader fenced by a newer term (successor unknown)"
	}
	return fmt.Sprintf("client: leader fenced by a newer term (leader at %s)", e.Leader)
}

// Is makes both errors.Is(err, ErrFenced) and errors.Is(err, ErrNotLeader)
// hold: a fence is a redirect with a stronger reason.
func (e *FencedError) Is(target error) bool {
	return target == ErrFenced || target == ErrNotLeader
}

// Config tunes a Client. Addr is required.
type Config struct {
	// Addr is the server's data address (host:port).
	Addr string
	// Conns bounds concurrent requests (one per pooled connection).
	// Default 4.
	Conns int
	// DialTimeout bounds each dial attempt. Default 2s.
	DialTimeout time.Duration
	// MaxAttempts is the total tries per operation (first attempt
	// included). Default 8; 1 disables retries.
	MaxAttempts int
	// Backoff is the base delay after a shed, drain, or transport error;
	// attempt n sleeps jittered exponential backoff from this base.
	// Default 2ms.
	Backoff time.Duration
	// CapacityBackoff is the base delay after StatusCapacity. Default
	// 20ms — capacity recovers on reclamation timescales, not RTTs.
	CapacityBackoff time.Duration
	// MaxBackoff caps any single sleep. Default 500ms.
	MaxBackoff time.Duration
	// Seed seeds the jitter source; 0 uses the current time.
	Seed int64
	// Trace, when non-nil, originates request tracing: every Nth operation
	// (per the recorder's sampling rate) is stamped with a trace context
	// that rides the wire to the server, and the client records a
	// KClientSend span covering the whole retry loop plus events for every
	// redirect, replica-lag bounce and retry. Nil disables tracing at the
	// cost of one pointer check per operation.
	Trace *rtrace.Recorder
}

// Stats counts client-side retry behaviour (monotonic, except
// ContentionLevel which is the adaptive backoff gauge at snapshot time).
type Stats struct {
	Requests        uint64 // operations attempted (first attempts)
	Retries         uint64 // additional attempts beyond the first
	Sheds           uint64 // StatusOverloaded responses seen
	DrainsSeen      uint64 // StatusDraining responses seen
	CapacityErrs    uint64 // StatusCapacity responses seen
	TransportErrors uint64 // dial/read/write failures (each forces a redial)
	Redirects       uint64 // StatusNotLeader responses followed
	FencedSeen      uint64 // StatusFenced responses seen (deposed leader)
	ReplLags        uint64 // StatusReplLag responses seen
	ContentionLevel int64  // current adaptive backoff level (0..contentionCap)
}

// Client is a retrying bstserve client. All methods are safe for
// concurrent use; concurrency beyond cfg.Conns queues on the pool.
type Client struct {
	cfg  Config
	pool chan *conn // fixed-capacity; nil entry = slot needs a dial
	id   atomic.Uint64

	// rngState drives the jitter source: a splitmix64 stream over an
	// atomic counter, so concurrent backoff computations never contend on
	// a lock (the retry path runs exactly when the system is stressed).
	rngState atomic.Uint64

	// leader is the cluster leader's data address ("" = none learned;
	// use cfg.Addr). Set from StatusNotLeader/StatusFenced redirects,
	// cleared when the learned address repeatedly stops dialing or a
	// fence names no successor.
	leader atomic.Value // string

	// leaderFails counts consecutive dial failures of the learned leader;
	// at leaderFailThreshold the cache is invalidated and dials fall back
	// to the seed address until a new redirect teaches us better. The
	// threshold keeps one flaky dial during a failover from discarding
	// topology that is still correct.
	leaderFails atomic.Int64

	// contention is the adaptive backoff level: raised by backpressure
	// signals (shed, capacity, drain, transport failure), lowered by
	// clean responses, and added to the attempt number when sizing a
	// backoff window — so a client that keeps getting pushed back widens
	// its sleeps even on fresh operations.
	contention atomic.Int64

	stats struct {
		requests, retries, sheds, drains, capacity, transport atomic.Uint64
		redirects, fenced, replLags                           atomic.Uint64
	}

	closed atomic.Bool
}

// contentionCap bounds the adaptive level: 2^6 widens a 2ms base to
// 128ms before per-attempt exponentiation, within MaxBackoff's reach.
const contentionCap = 6

// conn is one pooled connection.
type conn struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	scratch []byte
	// addr is the address this conn was dialed to; a pooled conn whose
	// addr no longer matches the redirect target is discarded.
	addr string
}

// Dial creates a client. Connections are established lazily, so Dial
// succeeds even while the server is still coming up.
func Dial(cfg Config) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("client: Config.Addr is required")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 2 * time.Millisecond
	}
	if cfg.CapacityBackoff <= 0 {
		cfg.CapacityBackoff = 20 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 500 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	cl := &Client{cfg: cfg, pool: make(chan *conn, cfg.Conns)}
	cl.rngState.Store(uint64(seed))
	cl.leader.Store("")
	for i := 0; i < cfg.Conns; i++ {
		cl.pool <- nil // lazily dialed
	}
	return cl, nil
}

// Stats returns a snapshot of the client's retry counters.
func (cl *Client) Stats() Stats {
	return Stats{
		Requests:        cl.stats.requests.Load(),
		Retries:         cl.stats.retries.Load(),
		Sheds:           cl.stats.sheds.Load(),
		DrainsSeen:      cl.stats.drains.Load(),
		CapacityErrs:    cl.stats.capacity.Load(),
		TransportErrors: cl.stats.transport.Load(),
		Redirects:       cl.stats.redirects.Load(),
		FencedSeen:      cl.stats.fenced.Load(),
		ReplLags:        cl.stats.replLags.Load(),
		ContentionLevel: cl.contention.Load(),
	}
}

// Leader returns the cluster leader address the client last learned from
// a redirect, or "" when none has been seen (or the last one went dark).
func (cl *Client) Leader() string {
	s, _ := cl.leader.Load().(string)
	return s
}

// targetAddr is where new connections dial: the learned leader when one
// is known, otherwise the configured seed address.
func (cl *Client) targetAddr() string {
	if s := cl.Leader(); s != "" {
		return s
	}
	return cl.cfg.Addr
}

// noteLeader records a redirect's leader address for subsequent dials.
func (cl *Client) noteLeader(addr string) {
	if addr != "" && addr != cl.Leader() {
		cl.leader.Store(addr)
		cl.leaderFails.Store(0)
	}
}

// invalidateLeader forgets the learned leader so dials fall back to the
// configured seed — the re-discovery path after a fence names no
// successor or the learned address keeps failing.
func (cl *Client) invalidateLeader() {
	cl.leader.Store("")
	cl.leaderFails.Store(0)
}

// leaderFailThreshold is how many consecutive dial failures of the
// learned leader the client tolerates before invalidating the cache.
const leaderFailThreshold = 2

// noteBackpressure raises the adaptive backoff level (saturating).
func (cl *Client) noteBackpressure() {
	for {
		v := cl.contention.Load()
		if v >= contentionCap {
			return
		}
		if cl.contention.CompareAndSwap(v, v+1) {
			return
		}
	}
}

// noteSuccess lowers the adaptive backoff level (floored at zero).
func (cl *Client) noteSuccess() {
	for {
		v := cl.contention.Load()
		if v <= 0 {
			return
		}
		if cl.contention.CompareAndSwap(v, v-1) {
			return
		}
	}
}

// shifted widens an attempt number by the current contention level, so
// backoff windows grow both with this operation's failures and with the
// backpressure the whole client has been seeing.
func (cl *Client) shifted(attempt int) int {
	return attempt + int(cl.contention.Load())
}

// Close tears down every pooled connection. In-flight calls race it and
// may return transport errors.
func (cl *Client) Close() error {
	if cl.closed.Swap(true) {
		return nil
	}
	for i := 0; i < cl.cfg.Conns; i++ {
		if c := <-cl.pool; c != nil {
			c.c.Close()
		}
	}
	return nil
}

// Insert adds key; it reports whether the set changed.
func (cl *Client) Insert(ctx context.Context, key int64) (bool, error) {
	resp, err := cl.do(ctx, wire.Request{Op: wire.OpInsert, Key: key})
	return resp.OK, err
}

// Delete removes key; it reports whether the set changed.
func (cl *Client) Delete(ctx context.Context, key int64) (bool, error) {
	resp, err := cl.do(ctx, wire.Request{Op: wire.OpDelete, Key: key})
	return resp.OK, err
}

// Lookup reports whether key is present.
func (cl *Client) Lookup(ctx context.Context, key int64) (bool, error) {
	resp, err := cl.do(ctx, wire.Request{Op: wire.OpLookup, Key: key})
	return resp.OK, err
}

// ReadAtLeast reports whether key is present, observed from replica state
// that has applied at least WAL sequence seq — read-your-writes against a
// follower: pass the sequence a mutation's ack carried (or any later
// horizon) and the answer can never predate that write. A replica that
// cannot reach seq within the deadline answers ErrReplLag after retries.
func (cl *Client) ReadAtLeast(ctx context.Context, key int64, seq uint64) (bool, error) {
	resp, err := cl.do(ctx, wire.Request{Op: wire.OpLookupAt, Key: key, MinSeq: seq})
	return resp.OK, err
}

// Range returns up to limit keys in [from, to] in ascending order (0 uses
// the server's default limit).
func (cl *Client) Range(ctx context.Context, from, to int64, limit int) ([]int64, error) {
	resp, err := cl.do(ctx, wire.Request{Op: wire.OpRange, Key: from, To: to, Limit: uint32(max(limit, 0))})
	return resp.Keys, err
}

// do runs one operation through the retry loop. A trace context already
// present on req (a pipeline fallback re-running its operation) is kept;
// otherwise the recorder decides whether this operation originates a
// sampled trace. Either way the context survives every retry and redirect
// unchanged — the whole client-side effort is one trace.
func (cl *Client) do(ctx context.Context, req wire.Request) (wire.Response, error) {
	cl.stats.requests.Add(1)
	if req.Trace == (rtrace.Context{}) {
		req.Trace = cl.cfg.Trace.SampleNext()
	}
	if req.Trace.Sampled() {
		start := time.Now()
		defer cl.cfg.Trace.Span(req.Trace, rtrace.KClientSend, start, req.Key)
	}
	var lastErr error
	for attempt := 0; attempt < cl.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			cl.stats.retries.Add(1)
			cl.cfg.Trace.Event(req.Trace, rtrace.KRetry, int64(attempt))
		}
		if err := ctx.Err(); err != nil {
			return wire.Response{}, err
		}
		req.ID = cl.id.Add(1)
		req.DeadlineMS = deadlineMS(ctx)

		resp, err := cl.roundTrip(ctx, req)
		if err != nil {
			// Transport: the conn is gone; retry redials.
			cl.stats.transport.Add(1)
			cl.noteBackpressure()
			lastErr = err
			if !cl.sleep(ctx, cl.backoff(cl.cfg.Backoff, cl.shifted(attempt))) {
				return wire.Response{}, fmt.Errorf("%w (last transport error: %v)", context.Cause(ctx), err)
			}
			continue
		}

		switch resp.Status {
		case wire.StatusOK:
			cl.noteSuccess()
			return resp, nil
		case wire.StatusOverloaded:
			cl.stats.sheds.Add(1)
			cl.noteBackpressure()
			lastErr = ErrOverloaded
			if !cl.sleep(ctx, cl.backoff(cl.cfg.Backoff, cl.shifted(attempt))) {
				return wire.Response{}, fmt.Errorf("%w after shed", context.Cause(ctx))
			}
		case wire.StatusDraining:
			cl.stats.drains.Add(1)
			cl.noteBackpressure()
			lastErr = ErrDraining
			if !cl.sleep(ctx, cl.backoff(cl.cfg.Backoff, cl.shifted(attempt))) {
				return wire.Response{}, fmt.Errorf("%w during server drain", context.Cause(ctx))
			}
		case wire.StatusCapacity:
			cl.stats.capacity.Add(1)
			cl.noteBackpressure()
			lastErr = bst.ErrCapacity
			if !cl.sleep(ctx, cl.backoff(cl.cfg.CapacityBackoff, cl.shifted(attempt))) {
				return wire.Response{}, fmt.Errorf("%w while tree at capacity", context.Cause(ctx))
			}
		case wire.StatusNotLeader:
			// A follower holds our mutation at the door. Adopt the leader
			// address it named and retry there immediately — this is
			// routing, not load, so no backoff unless the cluster has no
			// leader to name yet (mid-failover), where pausing avoids a
			// hot redirect loop.
			cl.stats.redirects.Add(1)
			cl.noteLeader(resp.Leader)
			cl.cfg.Trace.Event(req.Trace, rtrace.KRedirect, int64(attempt))
			lastErr = &NotLeaderError{Leader: resp.Leader}
			if resp.Leader == "" {
				if !cl.sleep(ctx, cl.backoff(cl.cfg.Backoff, cl.shifted(attempt))) {
					return wire.Response{}, fmt.Errorf("%w awaiting leader election", context.Cause(ctx))
				}
			}
		case wire.StatusFenced:
			// The node we were writing to has been deposed by a newer
			// term. Whatever we learned about it is void: adopt the named
			// successor, or — when the fence can't name one yet — forget
			// the cached leader entirely and re-discover from the seed,
			// paced by the capped backoff so a mid-election cluster isn't
			// hammered with redirect probes.
			cl.stats.fenced.Add(1)
			cl.cfg.Trace.Event(req.Trace, rtrace.KRedirect, int64(attempt))
			lastErr = &FencedError{Leader: resp.Leader}
			if resp.Leader != "" {
				cl.noteLeader(resp.Leader)
			} else {
				cl.invalidateLeader()
				if !cl.sleep(ctx, cl.backoff(cl.cfg.Backoff, cl.shifted(attempt))) {
					return wire.Response{}, fmt.Errorf("%w awaiting post-fence leader", context.Cause(ctx))
				}
			}
		case wire.StatusReplLag:
			// The replica hasn't applied the sequence a ReadAtLeast asked
			// for; it usually will have after a short wait.
			cl.stats.replLags.Add(1)
			cl.cfg.Trace.Event(req.Trace, rtrace.KReplLag, int64(req.MinSeq))
			lastErr = fmt.Errorf("%w: seq %d not yet applied", ErrReplLag, req.MinSeq)
			if !cl.sleep(ctx, cl.backoff(cl.cfg.Backoff, cl.shifted(attempt))) {
				return wire.Response{}, fmt.Errorf("%w waiting out replica lag", context.Cause(ctx))
			}
		case wire.StatusKeyOutOfRange:
			return wire.Response{}, fmt.Errorf("%w: key %d", bst.ErrKeyOutOfRange, req.Key)
		case wire.StatusDeadlineExceeded:
			return wire.Response{}, fmt.Errorf("%w: server reported budget exhausted", ErrDeadline)
		case wire.StatusInternal:
			return wire.Response{}, ErrInternal
		default:
			return wire.Response{}, fmt.Errorf("%w: status %v", ErrBadRequest, resp.Status)
		}
	}
	return wire.Response{}, fmt.Errorf("client: %d attempts exhausted: %w", cl.cfg.MaxAttempts, lastErr)
}

// acquire takes a pooled connection, dialing if the slot is empty. A
// pooled conn aimed at an address a redirect has since replaced is
// discarded and redialed at the current target. On success the caller
// must hand the conn to release exactly once.
func (cl *Client) acquire(ctx context.Context) (*conn, error) {
	var c *conn
	select {
	case c = <-cl.pool:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	addr := cl.targetAddr()
	if c != nil && c.addr != addr {
		c.c.Close()
		c = nil
	}
	if c == nil {
		nc, err := net.DialTimeout("tcp", addr, cl.cfg.DialTimeout)
		if err != nil {
			// A learned leader that repeatedly stops dialing is stale
			// topology: forget it so later attempts fall back to the seed
			// address (a load balancer or any surviving node). One failure
			// is tolerated — mid-failover the address often comes right
			// back — and the retry loop's capped exponential backoff paces
			// re-discovery either way.
			if addr == cl.Leader() && cl.leaderFails.Add(1) >= leaderFailThreshold {
				if cl.leader.CompareAndSwap(addr, "") {
					cl.leaderFails.Store(0)
				}
			}
			cl.pool <- nil
			return nil, fmt.Errorf("client: dial %s: %w", addr, err)
		}
		if addr == cl.Leader() {
			cl.leaderFails.Store(0)
		}
		c = &conn{c: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc), addr: addr}
	}
	// IO deadline: the context deadline when there is one, else a
	// generous transport bound.
	ioDeadline := time.Now().Add(30 * time.Second)
	if d, okd := ctx.Deadline(); okd && d.Before(ioDeadline) {
		ioDeadline = d
	}
	c.c.SetDeadline(ioDeadline)
	return c, nil
}

// release returns a connection to the pool; !keep closes it and leaves a
// nil slot so the next use redials.
func (cl *Client) release(c *conn, keep bool) {
	if keep {
		cl.pool <- c
		return
	}
	c.c.Close()
	cl.pool <- nil
}

// roundTrip sends req on a pooled connection and reads its response. Any
// error closes the connection; the pool slot is replaced with nil so the
// next use redials.
func (cl *Client) roundTrip(ctx context.Context, req wire.Request) (wire.Response, error) {
	c, err := cl.acquire(ctx)
	if err != nil {
		return wire.Response{}, err
	}
	ok := false
	defer func() { cl.release(c, ok) }()

	c.scratch = wire.AppendRequest(c.scratch[:0], req)
	if err := wire.WriteFrame(c.bw, c.scratch); err != nil {
		return wire.Response{}, fmt.Errorf("client: write: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return wire.Response{}, fmt.Errorf("client: flush: %w", err)
	}
	payload, scratch, err := wire.ReadFrame(c.br, c.scratch)
	c.scratch = scratch
	if err != nil {
		return wire.Response{}, fmt.Errorf("client: read: %w", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		return wire.Response{}, fmt.Errorf("client: decode: %w", err)
	}
	if resp.ID != req.ID {
		return wire.Response{}, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	// Draining and internal-error responses are terminal for the
	// connection: the server closes it right after (for internal errors the
	// connection is poisoned by the recovered panic). Drop it now instead
	// of failing the next use.
	ok = resp.Status != wire.StatusDraining && resp.Status != wire.StatusInternal
	return resp, nil
}

// backoff computes the jittered exponential delay for attempt n (0-based):
// uniformly random in [d/2, d) where d = min(base << n, MaxBackoff) — the
// "equal jitter" scheme, keeping a mean close to pure exponential while
// decorrelating a fleet of retrying clients.
func (cl *Client) backoff(base time.Duration, attempt int) time.Duration {
	if attempt > 20 {
		attempt = 20
	}
	d := base << uint(attempt)
	if d > cl.cfg.MaxBackoff || d <= 0 {
		d = cl.cfg.MaxBackoff
	}
	half := d / 2
	j := time.Duration(cl.randUint64() % uint64(half+1))
	return half + j
}

// randUint64 draws from a lock-free splitmix64 stream: each call advances
// the state by the golden-gamma via one atomic add (unique per caller even
// under races) and mixes it through the finalizer. Quality is ample for
// retry jitter, and there is no lock for stressed retry paths to pile on.
func (cl *Client) randUint64() uint64 {
	x := cl.rngState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// sleep blocks for d or until ctx is done; false means the context won.
func (cl *Client) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// deadlineMS converts ctx's remaining budget to the wire's millisecond
// field: 0 (server default) when ctx has no deadline, at least 1 when it
// does (a sub-millisecond remainder still must reach the server rather
// than round down to "no deadline").
func deadlineMS(ctx context.Context) uint32 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if ms < 1 {
		return 1
	}
	if ms > int64(^uint32(0)) {
		return 0 // effectively unbounded; let the server default apply
	}
	return uint32(ms)
}
