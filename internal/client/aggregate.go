package client

import (
	"context"
	"fmt"
	"time"

	bst "repro"
	"repro/internal/rtrace"
	"repro/internal/wire"
)

// Order-statistics queries over the wire. Each maps to one OpAggregate
// frame through the same retry loop as the point operations; the server
// answers from its lazily-refreshed summary (bst.WithOrderStatistics), so
// a count over a million-key range costs one frame and an O(log n)
// lookup, not a streamed range. A server whose store has no index answers
// StatusNoIndex, surfaced as bst.ErrNoOrderStats — permanent, don't retry.

// Consistency names the freshness an aggregate query demands, mirroring
// bst.Consistency: Exact linearizes against a summary refresh; otherwise
// the answer may lag at most MaxDirty completed mutations (per shard).
type Consistency struct {
	Exact    bool
	MaxDirty uint64
}

func (c Consistency) mode() uint8 {
	if c.Exact {
		return wire.AggModeExact
	}
	return wire.AggModeStale
}

// Rank returns the number of keys strictly less than key.
func (cl *Client) Rank(ctx context.Context, key int64, c Consistency) (int64, error) {
	return cl.doAggregate(ctx, wire.AggregateRequest{Kind: wire.AggRank, Mode: c.mode(), MaxDirty: c.MaxDirty, Key: key})
}

// Select returns the i-th smallest key (0-based); an index outside
// [0, count) answers bst.ErrSelectOutOfRange.
func (cl *Client) Select(ctx context.Context, i int64, c Consistency) (int64, error) {
	return cl.doAggregate(ctx, wire.AggregateRequest{Kind: wire.AggSelect, Mode: c.mode(), MaxDirty: c.MaxDirty, Key: i})
}

// CountRange returns the number of keys in [lo, hi], inclusive.
func (cl *Client) CountRange(ctx context.Context, lo, hi int64, c Consistency) (int64, error) {
	return cl.doAggregate(ctx, wire.AggregateRequest{Kind: wire.AggCount, Mode: c.mode(), MaxDirty: c.MaxDirty, Key: lo, To: hi})
}

// SumRange returns the sum of the keys in [lo, hi], inclusive.
func (cl *Client) SumRange(ctx context.Context, lo, hi int64, c Consistency) (int64, error) {
	return cl.doAggregate(ctx, wire.AggregateRequest{Kind: wire.AggSum, Mode: c.mode(), MaxDirty: c.MaxDirty, Key: lo, To: hi})
}

// doAggregate runs one aggregate query through the retry loop — the same
// status policy as do, minus statuses aggregates cannot receive (an
// aggregate is a read, so NotLeader/Fenced redirects only happen when an
// operator points the client at a bouncing cluster; they are handled all
// the same) plus the StatusNoIndex terminal.
func (cl *Client) doAggregate(ctx context.Context, req wire.AggregateRequest) (int64, error) {
	cl.stats.requests.Add(1)
	if req.Trace == (rtrace.Context{}) {
		req.Trace = cl.cfg.Trace.SampleNext()
	}
	if req.Trace.Sampled() {
		start := time.Now()
		defer cl.cfg.Trace.Span(req.Trace, rtrace.KClientSend, start, req.Key)
	}
	var lastErr error
	for attempt := 0; attempt < cl.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			cl.stats.retries.Add(1)
			cl.cfg.Trace.Event(req.Trace, rtrace.KRetry, int64(attempt))
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		req.ID = cl.id.Add(1)
		req.DeadlineMS = deadlineMS(ctx)

		resp, err := cl.roundTripAggregate(ctx, req)
		if err != nil {
			cl.stats.transport.Add(1)
			cl.noteBackpressure()
			lastErr = err
			if !cl.sleep(ctx, cl.backoff(cl.cfg.Backoff, cl.shifted(attempt))) {
				return 0, fmt.Errorf("%w (last transport error: %v)", context.Cause(ctx), err)
			}
			continue
		}

		switch resp.Status {
		case wire.StatusOK:
			cl.noteSuccess()
			return resp.Value, nil
		case wire.StatusOverloaded:
			cl.stats.sheds.Add(1)
			cl.noteBackpressure()
			lastErr = ErrOverloaded
			if !cl.sleep(ctx, cl.backoff(cl.cfg.Backoff, cl.shifted(attempt))) {
				return 0, fmt.Errorf("%w after shed", context.Cause(ctx))
			}
		case wire.StatusDraining:
			cl.stats.drains.Add(1)
			cl.noteBackpressure()
			lastErr = ErrDraining
			if !cl.sleep(ctx, cl.backoff(cl.cfg.Backoff, cl.shifted(attempt))) {
				return 0, fmt.Errorf("%w during server drain", context.Cause(ctx))
			}
		case wire.StatusNoIndex:
			return 0, fmt.Errorf("%w (server store)", bst.ErrNoOrderStats)
		case wire.StatusKeyOutOfRange:
			if req.Kind == wire.AggSelect {
				return 0, fmt.Errorf("%w: %d", bst.ErrSelectOutOfRange, req.Key)
			}
			return 0, fmt.Errorf("%w: key %d", bst.ErrKeyOutOfRange, req.Key)
		case wire.StatusDeadlineExceeded:
			return 0, fmt.Errorf("%w: server reported budget exhausted", ErrDeadline)
		case wire.StatusInternal:
			return 0, ErrInternal
		default:
			return 0, fmt.Errorf("%w: status %v", ErrBadRequest, resp.Status)
		}
	}
	return 0, fmt.Errorf("client: %d attempts exhausted: %w", cl.cfg.MaxAttempts, lastErr)
}

// roundTripAggregate sends one OpAggregate frame on a pooled connection
// and reads its response through the aggregate decoder (the generic one
// cannot parse the value tail).
func (cl *Client) roundTripAggregate(ctx context.Context, req wire.AggregateRequest) (wire.AggregateResponse, error) {
	c, err := cl.acquire(ctx)
	if err != nil {
		return wire.AggregateResponse{}, err
	}
	ok := false
	defer func() { cl.release(c, ok) }()

	c.scratch = wire.AppendAggregateRequest(c.scratch[:0], req)
	if err := wire.WriteFrame(c.bw, c.scratch); err != nil {
		return wire.AggregateResponse{}, fmt.Errorf("client: write: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return wire.AggregateResponse{}, fmt.Errorf("client: flush: %w", err)
	}
	payload, scratch, err := wire.ReadFrame(c.br, c.scratch)
	c.scratch = scratch
	if err != nil {
		return wire.AggregateResponse{}, fmt.Errorf("client: read: %w", err)
	}
	resp, err := wire.DecodeAggregateResponse(payload)
	if err != nil {
		return wire.AggregateResponse{}, fmt.Errorf("client: decode: %w", err)
	}
	if resp.ID != req.ID {
		return wire.AggregateResponse{}, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	ok = resp.Status != wire.StatusDraining && resp.Status != wire.StatusInternal
	return resp, nil
}
