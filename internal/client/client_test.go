package client

import (
	"context"
	"testing"
	"time"
)

func TestBackoffEqualJitter(t *testing.T) {
	cl, err := Dial(Config{Addr: "x", Backoff: 2 * time.Millisecond, MaxBackoff: 500 * time.Millisecond, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Attempt n draws uniformly from [d/2, d], d = min(base<<n, MaxBackoff).
	for attempt := 0; attempt < 12; attempt++ {
		d := 2 * time.Millisecond << uint(attempt)
		if d > 500*time.Millisecond || d <= 0 {
			d = 500 * time.Millisecond
		}
		for i := 0; i < 100; i++ {
			got := cl.backoff(2*time.Millisecond, attempt)
			if got < d/2 || got > d {
				t.Fatalf("backoff(attempt=%d) = %v outside [%v, %v]", attempt, got, d/2, d)
			}
		}
	}
	// Huge attempt numbers must not overflow into negatives.
	if got := cl.backoff(2*time.Millisecond, 63); got < 0 || got > 500*time.Millisecond {
		t.Fatalf("backoff(attempt=63) = %v", got)
	}
}

func TestBackoffJitterVaries(t *testing.T) {
	cl, _ := Dial(Config{Addr: "x", Seed: 7, MaxBackoff: time.Second})
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[cl.backoff(time.Millisecond, 4)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("jitter produced %d distinct delays in 50 draws, want ≥ 2", len(seen))
	}
}

func TestDeadlineMS(t *testing.T) {
	if got := deadlineMS(context.Background()); got != 0 {
		t.Fatalf("no-deadline ctx → %d, want 0 (server default)", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	if got := deadlineMS(ctx); got < 1 || got > 250 {
		t.Fatalf("250ms ctx → %d, want in [1, 250]", got)
	}

	// A sub-millisecond (even already-expired) deadline still reports ≥ 1:
	// the server must see *a* deadline, not fall back to its default.
	tight, cancel2 := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel2()
	time.Sleep(2 * time.Millisecond)
	if got := deadlineMS(tight); got != 1 {
		t.Fatalf("expired ctx → %d, want 1", got)
	}

	// A deadline beyond uint32 milliseconds is effectively unbounded.
	far, cancel3 := context.WithDeadline(context.Background(), time.Now().Add(200*24*365*time.Hour))
	defer cancel3()
	if got := deadlineMS(far); got != 0 {
		t.Fatalf("far-future ctx → %d, want 0", got)
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(Config{}); err == nil {
		t.Fatal("Dial without Addr succeeded")
	}
	cl, err := Dial(Config{Addr: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if cl.cfg.Conns != 4 || cl.cfg.MaxAttempts != 8 {
		t.Fatalf("defaults not applied: %+v", cl.cfg)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
}
