// Package check decides linearizability of concurrent set histories.
//
// The paper's correctness claim (Section 3.3) is that every execution of
// the tree is linearizable against the sequential dictionary
// specification. This checker verifies recorded histories against that
// specification: because every dictionary operation touches exactly one
// key and keys are independent in the sequential spec, a history is
// linearizable iff its per-key projections each are — which reduces the
// problem to checking a concurrent boolean register with insert (test-and-
// set), delete (test-and-clear) and search (read) operations.
//
// Each per-key history is decided by the Wing & Gong depth-first search
// with memoization on the set of already-linearized operations: an
// operation may be linearized next only if no other pending operation
// responded entirely before it was invoked.
package check

import (
	"fmt"
	"sort"

	"repro/internal/trace"
	"repro/internal/workload"
)

// MaxOpsPerKey bounds the per-key history length (the memoization mask is
// one machine word).
const MaxOpsPerKey = 63

// Linearizable decides whether the history is linearizable starting from
// the given initial key set (nil means the empty set). It returns nil when
// a valid linearization exists for every key, and a descriptive error
// naming the first offending key otherwise.
func Linearizable(events []trace.Event, initial map[int64]bool) error {
	for key, evs := range trace.PerKey(events) {
		if len(evs) > MaxOpsPerKey {
			return fmt.Errorf("key %d: history has %d operations (checker cap %d); use more keys or fewer ops", key, len(evs), MaxOpsPerKey)
		}
		if !checkKey(evs, initial[key]) {
			return fmt.Errorf("key %d: no valid linearization for %d operations: %v", key, len(evs), evs)
		}
	}
	return nil
}

// apply returns whether ev is legal in state, and the successor state.
func apply(ev trace.Event, state bool) (ok, next bool) {
	switch ev.Op {
	case workload.OpInsert:
		if ev.Out {
			return !state, true // succeeds only when absent
		}
		return state, state // fails only when present
	case workload.OpDelete:
		if ev.Out {
			return state, false // succeeds only when present
		}
		return !state, state // fails only when absent
	default: // search
		return ev.Out == state, state
	}
}

// checkKey runs the Wing & Gong search over one key's events.
func checkKey(evs []trace.Event, initial bool) bool {
	n := len(evs)
	if n == 0 {
		return true
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })

	full := uint64(1)<<n - 1
	// The state after linearizing a set of operations is a function of the
	// set alone (successful inserts/deletes alternate), so memoizing failed
	// masks is sound.
	visited := make(map[uint64]struct{})

	var dfs func(mask uint64, state bool) bool
	dfs = func(mask uint64, state bool) bool {
		if mask == full {
			return true
		}
		if _, seen := visited[mask]; seen {
			return false
		}
		visited[mask] = struct{}{}

		// An operation can linearize next only if it was invoked before
		// every pending operation's response.
		minEnd := int64(1<<63 - 1)
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 && evs[i].End < minEnd {
				minEnd = evs[i].End
			}
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			if evs[i].Start > minEnd {
				break // evs sorted by start; later ones start even later
			}
			if ok, next := apply(evs[i], state); ok && dfs(mask|1<<i, next) {
				return true
			}
		}
		return false
	}
	return dfs(0, initial)
}

// Stats summarizes a history (diagnostic aid for failure messages).
func Stats(events []trace.Event) string {
	var ins, del, src int
	keys := map[int64]struct{}{}
	for _, e := range events {
		keys[e.Key] = struct{}{}
		switch e.Op {
		case workload.OpInsert:
			ins++
		case workload.OpDelete:
			del++
		default:
			src++
		}
	}
	maxConc := maxConcurrency(events)
	return fmt.Sprintf("%d events (%d insert, %d delete, %d search) over %d keys, max concurrency %d",
		len(events), ins, del, src, len(keys), maxConc)
}

// maxConcurrency returns the largest number of simultaneously outstanding
// operations in the history.
func maxConcurrency(events []trace.Event) int {
	type pt struct {
		t     int64
		delta int
	}
	pts := make([]pt, 0, 2*len(events))
	for _, e := range events {
		pts = append(pts, pt{e.Start, 1}, pt{e.End, -1})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].t != pts[j].t {
			return pts[i].t < pts[j].t
		}
		return pts[i].delta < pts[j].delta // close before open at the same instant
	})
	cur, best := 0, 0
	for _, p := range pts {
		cur += p.delta
		if cur > best {
			best = cur
		}
	}
	return best
}
