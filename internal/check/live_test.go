package check_test

import (
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestTreesLinearizable records real concurrent histories from every tree
// implementation and verifies each against the sequential set
// specification — the paper's Section 3.3 safety claim, tested end to end.
func TestTreesLinearizable(t *testing.T) {
	const (
		workers  = 4
		opsEach  = 500
		keySpace = 128
		rounds   = 3
	)
	for _, target := range harness.Targets() {
		t.Run(target.Name, func(t *testing.T) {
			for round := 0; round < rounds; round++ {
				inst := target.New(harness.Config{ArenaCapacity: 1 << 20})
				rec := trace.NewRecorder(workers)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						acc := inst.NewAccessor()
						tape := rec.Worker(w)
						gen := workload.NewGenerator(workload.Mix{Name: "hot", Search: 20, Insert: 40, Delete_: 40},
							keySpace, uint64(round*100+w+1))
						for i := 0; i < opsEach; i++ {
							op, k := gen.Next()
							u := keys.Map(k)
							switch op {
							case workload.OpSearch:
								tape.Record(op, k, func() bool { return acc.Search(u) })
							case workload.OpInsert:
								tape.Record(op, k, func() bool { return acc.Insert(u) })
							default:
								tape.Record(op, k, func() bool { return acc.Delete(u) })
							}
						}
					}(w)
				}
				wg.Wait()
				events := rec.Events()
				if err := check.Linearizable(events, nil); err != nil {
					t.Fatalf("round %d: %v\nhistory: %s", round, err, check.Stats(events))
				}
			}
		})
	}
}
