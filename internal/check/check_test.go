package check

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// ev builds an event compactly for hand-written histories.
func ev(op workload.OpKind, key int64, out bool, start, end int64) trace.Event {
	return trace.Event{Op: op, Key: key, Out: out, Start: start, End: end}
}

func TestSequentialHistoryAccepted(t *testing.T) {
	h := []trace.Event{
		ev(workload.OpSearch, 1, false, 0, 1),
		ev(workload.OpInsert, 1, true, 2, 3),
		ev(workload.OpSearch, 1, true, 4, 5),
		ev(workload.OpInsert, 1, false, 6, 7),
		ev(workload.OpDelete, 1, true, 8, 9),
		ev(workload.OpDelete, 1, false, 10, 11),
		ev(workload.OpSearch, 1, false, 12, 13),
	}
	if err := Linearizable(h, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialViolationRejected(t *testing.T) {
	// search=true with no prior insert is impossible.
	h := []trace.Event{
		ev(workload.OpSearch, 1, true, 0, 1),
		ev(workload.OpInsert, 1, true, 2, 3),
	}
	if err := Linearizable(h, nil); err == nil {
		t.Fatal("impossible history accepted")
	}
}

func TestOverlapAllowsReordering(t *testing.T) {
	// The search overlaps the insert, so it may linearize after it.
	h := []trace.Event{
		ev(workload.OpInsert, 1, true, 0, 10),
		ev(workload.OpSearch, 1, true, 5, 6),
	}
	if err := Linearizable(h, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// The search completes strictly before the insert begins, so it cannot
	// see the inserted key.
	h := []trace.Event{
		ev(workload.OpSearch, 1, true, 0, 1),
		ev(workload.OpInsert, 1, true, 5, 6),
	}
	if err := Linearizable(h, nil); err == nil {
		t.Fatal("real-time order violation accepted")
	}
}

func TestDoubleInsertBothTrueRejected(t *testing.T) {
	// Two non-overlapping successful inserts with no delete between.
	h := []trace.Event{
		ev(workload.OpInsert, 1, true, 0, 1),
		ev(workload.OpInsert, 1, true, 2, 3),
	}
	if err := Linearizable(h, nil); err == nil {
		t.Fatal("two successful inserts without delete accepted")
	}
}

func TestConcurrentInsertsOneWins(t *testing.T) {
	h := []trace.Event{
		ev(workload.OpInsert, 1, true, 0, 10),
		ev(workload.OpInsert, 1, false, 1, 9),
	}
	if err := Linearizable(h, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInsertDeleteRace(t *testing.T) {
	// insert(true) ∥ delete(true): delete must linearize after insert.
	h := []trace.Event{
		ev(workload.OpInsert, 1, true, 0, 10),
		ev(workload.OpDelete, 1, true, 1, 9),
		ev(workload.OpSearch, 1, false, 20, 21),
	}
	if err := Linearizable(h, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInitialStateRespected(t *testing.T) {
	h := []trace.Event{
		ev(workload.OpSearch, 7, true, 0, 1),
		ev(workload.OpDelete, 7, true, 2, 3),
	}
	if err := Linearizable(h, nil); err == nil {
		t.Fatal("history needs initial presence but empty initial accepted")
	}
	if err := Linearizable(h, map[int64]bool{7: true}); err != nil {
		t.Fatal(err)
	}
}

func TestKeysIndependent(t *testing.T) {
	// A violation on key 2 must be reported even if key 1 is fine.
	h := []trace.Event{
		ev(workload.OpInsert, 1, true, 0, 1),
		ev(workload.OpSearch, 2, true, 2, 3),
	}
	err := Linearizable(h, nil)
	if err == nil {
		t.Fatal("cross-key contamination: violation missed")
	}
	if !strings.Contains(err.Error(), "key 2") {
		t.Fatalf("error does not name the offending key: %v", err)
	}
}

func TestHistoryCapEnforced(t *testing.T) {
	var h []trace.Event
	for i := int64(0); i < MaxOpsPerKey+1; i++ {
		h = append(h, ev(workload.OpSearch, 1, false, 2*i, 2*i+1))
	}
	if err := Linearizable(h, nil); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("cap not enforced: %v", err)
	}
}

func TestDeepOverlapWindow(t *testing.T) {
	// Many mutually overlapping operations: exercises memoization. All ops
	// span [0, 100]; a valid order exists (I D I D ... then searches).
	var h []trace.Event
	for i := 0; i < 10; i++ {
		out := true
		op := workload.OpInsert
		if i%2 == 1 {
			op = workload.OpDelete
		}
		h = append(h, ev(op, 1, out, int64(i), 100))
	}
	for i := 0; i < 6; i++ {
		h = append(h, ev(workload.OpSearch, 1, i%2 == 0, int64(20+i), 100))
	}
	if err := Linearizable(h, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatsSummary(t *testing.T) {
	h := []trace.Event{
		ev(workload.OpInsert, 1, true, 0, 5),
		ev(workload.OpSearch, 2, false, 1, 2),
		ev(workload.OpDelete, 1, true, 6, 7),
	}
	s := Stats(h)
	for _, want := range []string{"3 events", "1 insert", "1 delete", "1 search", "2 keys", "concurrency 2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Stats = %q missing %q", s, want)
		}
	}
}
