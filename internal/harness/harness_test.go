package harness

import (
	"testing"
	"time"

	"repro/internal/keys"
	"repro/internal/workload"
)

func quickCfg(threads int) Config {
	return Config{
		Threads:       threads,
		Duration:      30 * time.Millisecond,
		KeyRange:      1024,
		Mix:           workload.Mixed,
		Seed:          7,
		Prefill:       true,
		ArenaCapacity: 1 << 20,
	}
}

func TestAllTargetsSmoke(t *testing.T) {
	for _, target := range Targets() {
		t.Run(target.Name, func(t *testing.T) {
			res := RunTarget(target, quickCfg(4))
			if res.TotalOps == 0 {
				t.Fatal("no operations completed")
			}
			if res.Throughput() <= 0 {
				t.Fatal("non-positive throughput")
			}
			var sum uint64
			for _, c := range res.PerWorker {
				sum += c
			}
			if sum != res.TotalOps {
				t.Fatalf("per-worker sum %d != total %d", sum, res.TotalOps)
			}
			if len(res.PerWorker) != 4 {
				t.Fatalf("expected 4 worker counts, got %d", len(res.PerWorker))
			}
		})
	}
}

func TestPaperTargets(t *testing.T) {
	ts := PaperTargets()
	if len(ts) != 4 {
		t.Fatalf("Figure 4 compares 4 algorithms, got %d", len(ts))
	}
	want := map[string]bool{TargetNM: true, TargetEFRB: true, TargetHJ: true, TargetBCCO: true}
	for _, tt := range ts {
		if !want[tt.Name] {
			t.Fatalf("unexpected paper target %q", tt.Name)
		}
	}
}

func TestTargetByName(t *testing.T) {
	if _, err := TargetByName("nm"); err != nil {
		t.Fatal(err)
	}
	if _, err := TargetByName("bogus"); err == nil {
		t.Fatal("bogus target accepted")
	}
}

func TestPrefillHalfFills(t *testing.T) {
	target, _ := TargetByName(TargetNM)
	cfg := quickCfg(1)
	cfg.KeyRange = 10000
	inst := target.New(cfg)
	n := Prefill(inst, cfg)
	if n < 4500 || n > 5500 {
		t.Fatalf("prefill inserted %d of 10000", n)
	}
	// Every prefilled key must be found.
	acc := inst.NewAccessor()
	found := 0
	for k := int64(0); k < cfg.KeyRange; k++ {
		if acc.Search(keys.Map(k)) {
			found++
		}
	}
	if found != n {
		t.Fatalf("prefill claimed %d keys, tree holds %d", n, found)
	}
}

func TestRunRepeatedIndependentSeeds(t *testing.T) {
	target, _ := TargetByName(TargetCGL)
	cfg := quickCfg(2)
	cfg.Duration = 10 * time.Millisecond
	xs := RunRepeated(target, cfg, 3)
	if len(xs) != 3 {
		t.Fatalf("got %d results", len(xs))
	}
	for _, x := range xs {
		if x <= 0 {
			t.Fatal("non-positive throughput")
		}
	}
}

func TestZipfWorkloadRuns(t *testing.T) {
	target, _ := TargetByName(TargetNM)
	cfg := quickCfg(2)
	cfg.ZipfS = 1.5
	res := RunTarget(target, cfg)
	if res.TotalOps == 0 {
		t.Fatal("zipf run produced no ops")
	}
}

func TestReclaimConfigRuns(t *testing.T) {
	target, _ := TargetByName(TargetNM)
	cfg := quickCfg(2)
	cfg.Reclaim = true
	res := RunTarget(target, cfg)
	if res.TotalOps == 0 {
		t.Fatal("reclaim run produced no ops")
	}
}
