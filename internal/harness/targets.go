package harness

import (
	"fmt"

	"repro/internal/bcco"
	"repro/internal/cgl"
	"repro/internal/core"
	"repro/internal/efrb"
	"repro/internal/forest"
	"repro/internal/hjbst"
	"repro/internal/keys"
	"repro/internal/kst"
	"repro/internal/nmboxed"
)

// The paper's algorithm labels (Section 4) plus this module's extras.
const (
	TargetNM      = "nm"       // Natarajan–Mittal, packed arena (this paper)
	TargetNMBoxed = "nm-boxed" // Natarajan–Mittal, boxed pointers (ablation)
	TargetEFRB    = "efrb"     // Ellen et al., PODC 2010
	TargetHJ      = "hj"       // Howley–Jones, SPAA 2012
	TargetBCCO    = "bcco"     // Bronson et al., PPoPP 2010 (lock-based)
	TargetCGL     = "cgl"      // coarse-grained RWMutex floor
	TargetKST4    = "kst4"     // k-ary external search tree, k=4 (future work)
	TargetKST16   = "kst16"    // k-ary external search tree, k=16
)

// defaultArenaCapacity sizes the NM arena for short measurement cells:
// prefill plus a few tens of millions of insert allocations.
const defaultArenaCapacity = 1 << 26

type nmInstance struct{ t *core.Tree }

func (i nmInstance) NewAccessor() Accessor { return i.t.NewHandle() }

type forestInstance struct{ f *forest.Forest }

func (i forestInstance) NewAccessor() Accessor { return i.f.NewHandle() }

type nmBoxedInstance struct{ t *nmboxed.Tree }

func (i nmBoxedInstance) NewAccessor() Accessor { return i.t.NewHandle() }

type efrbInstance struct{ t *efrb.Tree }

func (i efrbInstance) NewAccessor() Accessor { return i.t.NewHandle() }

type hjInstance struct{ t *hjbst.Tree }

func (i hjInstance) NewAccessor() Accessor { return i.t.NewHandle() }

type bccoInstance struct{ t *bcco.Tree }

func (i bccoInstance) NewAccessor() Accessor { return i.t.NewHandle() }

type cglInstance struct{ t *cgl.Tree }

func (i cglInstance) NewAccessor() Accessor { return i.t }

type kstInstance struct{ t *kst.Tree }

func (i kstInstance) NewAccessor() Accessor { return i.t.NewHandle() }

// Targets returns every benchmarkable implementation keyed by label.
func Targets() []Target {
	return []Target{
		{Name: TargetNM, New: func(cfg Config) Instance {
			capacity := cfg.ArenaCapacity
			if capacity == 0 {
				capacity = defaultArenaCapacity
			}
			tc := core.Config{Capacity: capacity, Reclaim: cfg.Reclaim, CASOnly: cfg.CASOnly, Metrics: cfg.Metrics}
			if cfg.Shards > 1 {
				// Route only the benchmark's key range: the split boundaries
				// then tile [0, KeyRange) evenly, so a uniform workload loads
				// the shards evenly.
				fc := forest.Config{Shards: cfg.Shards, Tree: tc}
				if cfg.KeyRange > 0 {
					fc.Lo, fc.Hi = keys.Map(0), keys.Map(cfg.KeyRange-1)
				}
				f, err := forest.New(fc)
				if err != nil {
					panic(fmt.Sprintf("harness: forest target: %v", err))
				}
				return forestInstance{f}
			}
			return nmInstance{core.New(tc)}
		}},
		{Name: TargetNMBoxed, New: func(cfg Config) Instance {
			return nmBoxedInstance{nmboxed.New()}
		}},
		{Name: TargetEFRB, New: func(cfg Config) Instance {
			return efrbInstance{efrb.New()}
		}},
		{Name: TargetHJ, New: func(cfg Config) Instance {
			return hjInstance{hjbst.New()}
		}},
		{Name: TargetBCCO, New: func(cfg Config) Instance {
			return bccoInstance{bcco.New()}
		}},
		{Name: TargetCGL, New: func(cfg Config) Instance {
			return cglInstance{cgl.New()}
		}},
		{Name: TargetKST4, New: func(cfg Config) Instance {
			return kstInstance{kst.New(4)}
		}},
		{Name: TargetKST16, New: func(cfg Config) Instance {
			return kstInstance{kst.New(16)}
		}},
	}
}

// PaperTargets returns the four implementations in Figure 4 of the paper.
func PaperTargets() []Target {
	all := Targets()
	want := map[string]bool{TargetNM: true, TargetEFRB: true, TargetHJ: true, TargetBCCO: true}
	out := make([]Target, 0, 4)
	for _, t := range all {
		if want[t.Name] {
			out = append(out, t)
		}
	}
	return out
}

// TargetByName resolves a label.
func TargetByName(name string) (Target, error) {
	for _, t := range Targets() {
		if t.Name == name {
			return t, nil
		}
	}
	return Target{}, fmt.Errorf("unknown target %q", name)
}
