// Package harness measures the throughput of concurrent set
// implementations under the paper's experimental protocol (Section 4):
// pre-populate the structure to half the key range, then run N worker
// goroutines for a fixed wall-clock duration, each drawing operations from
// its own deterministic generator, and report operations per second.
package harness

import (
	"context"
	"fmt"
	"runtime/pprof"
	runtrace "runtime/trace"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicx"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/rtrace"
	"repro/internal/workload"
)

// Accessor is a per-worker view of a set under test, over internal keys.
// All tree Handles in this module satisfy it directly.
type Accessor interface {
	Search(key uint64) bool
	Insert(key uint64) bool
	Delete(key uint64) bool
}

// BatchAccessor is the optional batched view: group operations share one
// epoch pin and sorted path-sharing seeks. Satisfied by the arena-backed
// NM tree's Handle.
type BatchAccessor interface {
	Accessor
	LookupBatch(ks []uint64, out []bool)
	InsertBatch(ks []uint64, out []bool, errs []error)
	DeleteBatch(ks []uint64, out []bool)
}

// Instance is one constructed set under test.
type Instance interface {
	// NewAccessor returns a view for one worker goroutine.
	NewAccessor() Accessor
}

// Target names a constructor for a set implementation.
type Target struct {
	Name string
	New  func(cfg Config) Instance
}

// Config describes one measurement cell.
type Config struct {
	Threads  int
	Duration time.Duration
	KeyRange int64
	Mix      workload.Mix
	Seed     uint64
	Prefill  bool    // fill to ~KeyRange/2 before measuring (paper protocol)
	ZipfS    float64 // 0 = uniform keys; >1 = Zipf-skewed (ablation)

	// ArenaCapacity bounds node allocation for the arena-backed NM tree;
	// 0 uses a default sized for short benchmark cells.
	ArenaCapacity int
	// Reclaim enables epoch-based reclamation on implementations that
	// support it (ablation; the paper measures without reclamation).
	Reclaim bool
	// CASOnly makes the NM tree emulate BTS with a CAS loop (ablation:
	// the paper's CAS-only remark).
	CASOnly bool
	// Shards > 1 partitions the NM tree's key space across this many
	// independent trees (internal/forest), each with its own arena and
	// epoch domain; the other targets ignore it. ArenaCapacity is the
	// TOTAL budget, split evenly across shards.
	Shards int
	// BatchSize > 1 makes each worker draw operations in groups of this
	// size and issue them through the accessor's batch entry points
	// (sorted path-sharing seeks); accessors without batch support fall
	// back to the single-op loop. Throughput still counts individual
	// operations, so batched and unbatched cells compare directly.
	BatchSize int
	// Metrics, when non-nil, wires live contention telemetry into
	// implementations that support it (currently the arena-backed NM
	// tree); the other targets ignore it.
	Metrics *metrics.Registry
	// Trace, when non-nil, samples worker operations into the flight
	// recorder: each worker runs an rtrace.Conn, every SampleEvery-th
	// operation records a request root plus a KTreeOp span, and the
	// recorder's phase aggregates give per-cell time-in-phase breakdowns.
	// Nil (and a recorder with sampling disabled) stays off the measured
	// path: the per-op cost is a nil/flag check. The batched loop is not
	// instrumented — batch cells measure the coalescing fast path.
	Trace *rtrace.Recorder
}

// Result is the outcome of one measurement cell.
type Result struct {
	Target    string
	Cfg       Config
	Elapsed   time.Duration
	TotalOps  uint64
	PerWorker []uint64
}

// Throughput returns operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TotalOps) / r.Elapsed.Seconds()
}

func (r Result) String() string {
	return fmt.Sprintf("%s t=%d %s range=%d: %.0f ops/s",
		r.Target, r.Cfg.Threads, r.Cfg.Mix.Name, r.Cfg.KeyRange, r.Throughput())
}

// Prefill populates inst to roughly half the key range, deterministically
// in cfg.Seed. Returns the number of keys inserted.
func Prefill(inst Instance, cfg Config) int {
	acc := inst.NewAccessor()
	p := workload.Prefiller{KeyRange: cfg.KeyRange, Seed: cfg.Seed}
	return p.Fill(func(k int64) bool { return acc.Insert(keys.Map(k)) })
}

// Run executes one measurement cell against an already-constructed
// instance. The instance is prefilled first when cfg.Prefill is set.
//
// Each cell is a runtime/trace task with "prefill" and "measure" regions,
// and every worker goroutine carries pprof labels (bst_target, bst_phase,
// bst_workload, bst_worker), so per-phase, per-algorithm costs show up
// directly in `go tool pprof` and `go tool trace` when profiling or
// tracing is active; when neither is, the labels cost a few allocations
// per cell, off the measured path.
func Run(target string, inst Instance, cfg Config) Result {
	if cfg.Threads <= 0 {
		panic("harness: Threads must be positive")
	}
	ctx, task := runtrace.NewTask(context.Background(),
		fmt.Sprintf("bench-cell %s t=%d %s", target, cfg.Threads, cfg.Mix.Name))
	defer task.End()
	if cfg.Prefill {
		pprof.Do(ctx, pprof.Labels("bst_target", target, "bst_phase", "prefill"), func(ctx context.Context) {
			runtrace.WithRegion(ctx, "prefill", func() { Prefill(inst, cfg) })
		})
	}

	var stop atomic.Bool
	counts := make([]atomicx.PaddedUint64, cfg.Threads)
	start := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			labels := pprof.Labels(
				"bst_target", target,
				"bst_phase", "measure",
				"bst_workload", cfg.Mix.Name,
				"bst_worker", strconv.Itoa(id),
			)
			pprof.Do(ctx, labels, func(ctx context.Context) {
				runtrace.WithRegion(ctx, "measure", func() {
					acc := inst.NewAccessor()
					seed := cfg.Seed*0x9e3779b9 + uint64(id)*0x2545f4914f6cdd1d + 1
					var gen *workload.Generator
					if cfg.ZipfS > 1 {
						gen = workload.NewZipfGenerator(cfg.Mix, cfg.KeyRange, seed, cfg.ZipfS)
					} else {
						gen = workload.NewGenerator(cfg.Mix, cfg.KeyRange, seed)
					}
					tr := cfg.Trace.NewConn()
					defer tr.Close()
					<-start
					var n uint64
					if ba, ok := acc.(BatchAccessor); ok && cfg.BatchSize > 1 {
						n = measureBatched(ba, gen, cfg.BatchSize, &stop)
					} else {
						for !stop.Load() {
							op, k := gen.Next()
							u := keys.Map(k)
							sampled := tr.StartRequest(rtrace.Context{}, uint8(op), k)
							var t0 time.Time
							if sampled {
								t0 = time.Now()
							}
							switch op {
							case workload.OpSearch:
								acc.Search(u)
							case workload.OpInsert:
								acc.Insert(u)
							default:
								acc.Delete(u)
							}
							if sampled {
								tr.Span(rtrace.KTreeOp, t0, k)
								tr.EndRequest()
							}
							n++
						}
					}
					counts[id].Store(n)
				})
			})
		}(w)
	}

	close(start)
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(t0)

	res := Result{Target: target, Cfg: cfg, Elapsed: elapsed, PerWorker: make([]uint64, cfg.Threads)}
	for i := range counts {
		c := counts[i].Load()
		res.PerWorker[i] = c
		res.TotalOps += c
	}
	return res
}

// measureBatched is the worker loop for BatchSize > 1: operations coalesce
// into a per-kind buffer (batch entry points are per-kind) and each buffer
// is issued as soon as it holds a full group — the way a batching proxy
// coalesces like requests. Every batched call therefore carries exactly
// BatchSize keys; the workload mix governs how often each kind's buffer
// fills. The count is individual completed operations, comparable with the
// single-op loop (a final partial buffer per kind is discarded, bounded
// noise of <3·BatchSize ops against millions).
func measureBatched(ba BatchAccessor, gen *workload.Generator, size int, stop *atomic.Bool) uint64 {
	sk := make([]uint64, 0, size)
	ik := make([]uint64, 0, size)
	dk := make([]uint64, 0, size)
	out := make([]bool, size)
	errs := make([]error, size)
	var n uint64
	for !stop.Load() {
		op, k := gen.Next()
		u := keys.Map(k)
		switch op {
		case workload.OpSearch:
			if sk = append(sk, u); len(sk) == size {
				ba.LookupBatch(sk, out)
				sk, n = sk[:0], n+uint64(size)
			}
		case workload.OpInsert:
			if ik = append(ik, u); len(ik) == size {
				ba.InsertBatch(ik, out, errs)
				ik, n = ik[:0], n+uint64(size)
			}
		default:
			if dk = append(dk, u); len(dk) == size {
				ba.DeleteBatch(dk, out)
				dk, n = dk[:0], n+uint64(size)
			}
		}
	}
	return n
}

// RunTarget constructs a fresh instance of the target and measures it.
func RunTarget(t Target, cfg Config) Result {
	return Run(t.Name, t.New(cfg), cfg)
}

// RunRepeated measures a target several times on fresh instances and
// returns each run's throughput (ops/s).
func RunRepeated(t Target, cfg Config, reps int) []float64 {
	out := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*1_000_003
		out = append(out, RunTarget(t, c).Throughput())
	}
	return out
}
