package atomicx

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPackRoundTrip(t *testing.T) {
	f := func(idx uint32, flag, tag bool) bool {
		w := Pack(idx, flag, tag)
		return Addr(w) == idx && Flag(w) == flag && Tag(w) == tag &&
			Marked(w) == (flag || tag)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackZeroIsNil(t *testing.T) {
	if w := Pack(0, false, false); w != 0 {
		t.Fatalf("Pack(0,false,false) = %#x, want 0", w)
	}
}

func TestMaxIndexFits(t *testing.T) {
	w := Pack(math.MaxUint32, true, true)
	if Addr(w) != math.MaxUint32 {
		t.Fatalf("max index mangled: got %#x", Addr(w))
	}
	if !Flag(w) || !Tag(w) {
		t.Fatal("marks lost at max index")
	}
}

func TestWithAddrPreservesMarks(t *testing.T) {
	f := func(idx, idx2 uint32, flag, tag bool) bool {
		w := WithAddr(Pack(idx, flag, tag), idx2)
		return Addr(w) == idx2 && Flag(w) == flag && Tag(w) == tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClearMarks(t *testing.T) {
	w := ClearMarks(Pack(42, true, true))
	if Addr(w) != 42 || Marked(w) {
		t.Fatalf("ClearMarks wrong: %#x", w)
	}
}

// TestBTSSemantics checks that atomic Or on a packed word behaves like the
// paper's BTS instruction: it sets the tag bit exactly once regardless of
// how many goroutines race, and never disturbs the address or flag.
func TestBTSSemantics(t *testing.T) {
	var word atomic.Uint64
	word.Store(Pack(1234, true, false))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				word.Or(TagBit)
			}
		}()
	}
	wg.Wait()
	w := word.Load()
	if Addr(w) != 1234 || !Flag(w) || !Tag(w) {
		t.Fatalf("BTS corrupted word: %#x", w)
	}
}

func TestPaddedCounter(t *testing.T) {
	var c PaddedUint64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 40000 {
		t.Fatalf("counter = %d, want 40000", got)
	}
}

func TestBool(t *testing.T) {
	var b Bool
	if b.Get() {
		t.Fatal("zero value should be false")
	}
	b.Set(true)
	if !b.Get() {
		t.Fatal("Set(true) not observed")
	}
	b.Set(false)
	if b.Get() {
		t.Fatal("Set(false) not observed")
	}
}
