package atomicx

import "sync/atomic"

// CacheLine is the assumed cache line size in bytes. 64 is correct for all
// x86-64 and most arm64 parts; over-padding on exotic hardware only wastes a
// few bytes per counter.
const CacheLine = 64

// PaddedUint64 is an atomic counter padded to its own cache line so that
// arrays of per-worker counters do not false-share.
type PaddedUint64 struct {
	v atomic.Uint64
	_ [CacheLine - 8]byte
}

// Add atomically adds delta and returns the new value.
func (p *PaddedUint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// Load atomically reads the counter.
func (p *PaddedUint64) Load() uint64 { return p.v.Load() }

// Store atomically replaces the counter.
func (p *PaddedUint64) Store(x uint64) { p.v.Store(x) }

// Bool is an atomic boolean flag.
type Bool struct{ v atomic.Uint32 }

// Set stores b.
func (b *Bool) Set(x bool) {
	if x {
		b.v.Store(1)
	} else {
		b.v.Store(0)
	}
}

// Get loads the flag.
func (b *Bool) Get() bool { return b.v.Load() != 0 }
