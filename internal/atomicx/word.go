// Package atomicx provides the packed child-word representation used by the
// arena-based Natarajan–Mittal tree, plus small atomic utilities shared by
// the concurrent tree implementations.
//
// The paper steals two bits (flag and tag) from each child address stored in
// a node. Go's garbage collector forbids storing mark bits inside real
// pointers, so the packed representation works on 32-bit arena indices
// instead: a child field is a single uint64 word laid out as
//
//	bit 0      flag  — the edge's head node (a leaf) is being deleted
//	bit 1      tag   — the edge's tail node (an internal node) is being deleted
//	bits 2..33 index — arena index of the child node (0 means nil)
//
// Because the whole field is one machine word, the paper's single-word CAS
// and BTS (bit-test-and-set) instructions translate directly to
// atomic.Uint64 CompareAndSwap and Or.
package atomicx

// Bit layout of a packed child word.
const (
	FlagBit   uint64 = 1 << 0 // edge flagged: head (leaf) node marked for deletion
	TagBit    uint64 = 1 << 1 // edge tagged: tail (internal) node marked for deletion
	markBits         = FlagBit | TagBit
	addrShift        = 2
)

// Pack builds a child word from an arena index and the two mark bits.
func Pack(idx uint32, flag, tag bool) uint64 {
	w := uint64(idx) << addrShift
	if flag {
		w |= FlagBit
	}
	if tag {
		w |= TagBit
	}
	return w
}

// Addr extracts the arena index stored in a child word.
func Addr(w uint64) uint32 { return uint32(w >> addrShift) }

// Flag reports whether the edge is flagged (head node marked for deletion).
func Flag(w uint64) bool { return w&FlagBit != 0 }

// Tag reports whether the edge is tagged (tail node marked for deletion).
func Tag(w uint64) bool { return w&TagBit != 0 }

// Marked reports whether the edge carries either mark.
func Marked(w uint64) bool { return w&markBits != 0 }

// WithAddr returns w with its index replaced, marks preserved.
func WithAddr(w uint64, idx uint32) uint64 {
	return w&markBits | uint64(idx)<<addrShift
}

// ClearMarks returns w with both mark bits cleared.
func ClearMarks(w uint64) uint64 { return w &^ markBits }
