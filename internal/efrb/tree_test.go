package efrb_test

import (
	"testing"

	"repro/internal/efrb"
	"repro/internal/keys"
	"repro/internal/settest"
)

func TestConformance(t *testing.T) {
	settest.Run(t, func(capacity int) settest.Set {
		return efrb.New()
	})
}

// TestTable1Counts verifies the EFRB row of Table 1: insert allocates 4
// objects (3 nodes + 1 IInfo) and executes 3 atomic instructions; delete
// allocates 1 object (DInfo) and executes 4 atomic instructions — in the
// absence of contention.
func TestTable1Counts(t *testing.T) {
	tr := efrb.New()
	h := tr.NewHandle()
	for _, k := range []int64{50, 25, 75} {
		h.Insert(keys.Map(k))
	}

	before := h.Stats
	if !h.Insert(keys.Map(60)) {
		t.Fatal("insert failed")
	}
	d := h.Stats
	if got := d.NodesAlloc + d.InfoAlloc - before.NodesAlloc - before.InfoAlloc; got != 4 {
		t.Fatalf("uncontended insert allocated %d objects, Table 1 says 4", got)
	}
	if got := d.Atomics() - before.Atomics(); got != 3 {
		t.Fatalf("uncontended insert executed %d atomics, Table 1 says 3", got)
	}

	before = h.Stats
	if !h.Delete(keys.Map(60)) {
		t.Fatal("delete failed")
	}
	d = h.Stats
	if got := d.NodesAlloc + d.InfoAlloc - before.NodesAlloc - before.InfoAlloc; got != 1 {
		t.Fatalf("uncontended delete allocated %d objects, Table 1 says 1", got)
	}
	if got := d.Atomics() - before.Atomics(); got != 4 {
		t.Fatalf("uncontended delete executed %d atomics, Table 1 says 4", got)
	}
}

func TestKeysOrdered(t *testing.T) {
	tr := efrb.New()
	in := []int64{8, 2, 6, 4, 0}
	for _, k := range in {
		tr.Insert(keys.Map(k))
	}
	var got []int64
	tr.Keys(func(u uint64) bool {
		got = append(got, keys.Unmap(u))
		return true
	})
	want := []int64{0, 2, 4, 6, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration order %v, want %v", got, want)
		}
	}
}

func TestSearchDoesNotAllocateInfo(t *testing.T) {
	tr := efrb.New()
	h := tr.NewHandle()
	for i := int64(0); i < 50; i++ {
		h.Insert(keys.Map(i))
	}
	before := h.Stats
	for i := int64(0); i < 100; i++ {
		h.Search(keys.Map(i))
	}
	d := h.Stats
	if d.Atomics() != before.Atomics() || d.InfoAlloc != before.InfoAlloc {
		t.Fatal("search performed writes or allocations")
	}
}
