// Package efrb implements the lock-free external binary search tree of
// Ellen, Fatourou, Ruppert and van Breugel ("Non-Blocking Binary Search
// Trees", PODC 2010) — the EFRB-BST baseline of the paper's evaluation.
//
// Unlike the Natarajan–Mittal tree (which marks edges), EFRB coordinates at
// the node level: each internal node carries an update field combining a
// state (CLEAN / IFLAG / DFLAG / MARK) with a pointer to an Info record
// describing the operation in progress. An insert "locks" the parent of the
// leaf it replaces (IFLAG); a delete "locks" the grandparent (DFLAG) and
// then marks the parent (MARK, permanent). Conflicting operations help the
// owner finish by re-executing steps recorded in the Info object.
//
// Per uncontended operation (Table 1 of the NM paper): insert allocates 4
// objects (new internal, new leaf, a copy of the displaced leaf, IInfo) and
// executes 3 atomic instructions (flag, child CAS, unflag); delete
// allocates 1 object (DInfo) and executes 4 atomic instructions (flag,
// mark, child CAS, unflag).
//
// In this Go adaptation the paper's {state, info-pointer} word is an
// immutable record behind an atomic.Pointer; CAS compares record identity.
// The unflag/mark targets are pre-created inside each Info record so every
// helper CASes toward the identical object, exactly one winning.
package efrb

import (
	"fmt"
	"sync/atomic"

	"repro/internal/keys"
)

type state uint8

const (
	clean state = iota
	iflag       // parent flagged for an insert
	dflag       // grandparent flagged for a delete
	mark        // parent of a deleted leaf, permanently marked
)

// update is the immutable {state, info} word stored in a node's update
// field. Identity comparison stands in for the paper's packed-word CAS.
type update struct {
	s state
	i *iinfo
	d *dinfo
}

// cleanNil is the shared initial update of every node.
var cleanNil = &update{s: clean}

type node struct {
	key   uint64
	up    atomic.Pointer[update]
	left  atomic.Pointer[node] // nil for leaves
	right atomic.Pointer[node]
}

func (n *node) isLeaf() bool { return n.left.Load() == nil }

// iinfo describes an in-progress insert: replace leaf l under p by newInt.
type iinfo struct {
	p, l, newInt *node
	// Pre-created CAS targets shared by all helpers.
	flagUpd, cleanUpd *update
}

// dinfo describes an in-progress delete: remove leaf l and its parent p,
// splicing l's sibling into gp.
type dinfo struct {
	gp, p, l *node
	pupdate  *update
	// Pre-created CAS targets shared by all helpers.
	flagUpd, markUpd, cleanUpd *update
}

// Stats counts work performed through a Handle (single-goroutine).
type Stats struct {
	Searches, Inserts, Deletes uint64
	CASSucceeded, CASFailed    uint64
	NodesAlloc, InfoAlloc      uint64
	Helps                      uint64
}

// Atomics returns total CAS attempts (Table 1's atomic instruction count).
func (s *Stats) Atomics() uint64 { return s.CASSucceeded + s.CASFailed }

// Tree is the EFRB lock-free external BST. Methods are safe for concurrent
// use.
type Tree struct {
	root *node // sentinel ℝ (key ∞₂); left child sentinel 𝕊 (key ∞₁)
}

// New builds an empty tree with the same sentinel skeleton as the NM tree,
// which guarantees every user operation has a parent and grandparent.
func New() *Tree {
	leaf := func(k uint64) *node {
		n := &node{key: k}
		n.up.Store(cleanNil)
		return n
	}
	s := &node{key: keys.Inf1}
	s.up.Store(cleanNil)
	s.left.Store(leaf(keys.Inf0))
	s.right.Store(leaf(keys.Inf1))
	r := &node{key: keys.Inf2}
	r.up.Store(cleanNil)
	r.left.Store(s)
	r.right.Store(leaf(keys.Inf2))
	return &Tree{root: r}
}

// Handle is a per-goroutine accessor carrying statistics.
type Handle struct {
	t     *Tree
	Stats Stats
}

// NewHandle returns a per-goroutine accessor.
func (t *Tree) NewHandle() *Handle { return &Handle{t: t} }

// Tree-level convenience methods.

// Search reports whether key is present.
func (t *Tree) Search(key uint64) bool {
	l := t.root
	for !l.isLeaf() {
		if key < l.key {
			l = l.left.Load()
		} else {
			l = l.right.Load()
		}
	}
	return l.key == key
}

// Insert adds key if absent.
func (t *Tree) Insert(key uint64) bool { h := Handle{t: t}; return h.Insert(key) }

// Delete removes key if present.
func (t *Tree) Delete(key uint64) bool { h := Handle{t: t}; return h.Delete(key) }

// search traverses to the leaf for key, recording the grandparent, parent,
// and the update words read *before* following each child pointer (the
// ordering the protocol requires).
func (t *Tree) search(key uint64) (gp, p, l *node, gpup, pup *update) {
	l = t.root
	for !l.isLeaf() {
		gp, p = p, l
		gpup = pup
		pup = p.up.Load()
		if key < p.key {
			l = p.left.Load()
		} else {
			l = p.right.Load()
		}
	}
	return gp, p, l, gpup, pup
}

// Search reports whether key is present (handle variant with stats).
func (h *Handle) Search(key uint64) bool {
	h.Stats.Searches++
	return h.t.Search(key)
}

// casChild swings the child pointer of parent that routes newNode's key
// from old to newNode.
func (h *Handle) casChild(parent, old, newNode *node) bool {
	var f *atomic.Pointer[node]
	if newNode.key < parent.key {
		f = &parent.left
	} else {
		f = &parent.right
	}
	if f.CompareAndSwap(old, newNode) {
		h.Stats.CASSucceeded++
		return true
	}
	h.Stats.CASFailed++
	return false
}

func (h *Handle) cas(f *atomic.Pointer[update], old, new *update) bool {
	if f.CompareAndSwap(old, new) {
		h.Stats.CASSucceeded++
		return true
	}
	h.Stats.CASFailed++
	return false
}

// help dispatches on a non-clean update word.
func (h *Handle) help(u *update) {
	h.Stats.Helps++
	switch u.s {
	case iflag:
		h.helpInsert(u.i)
	case mark:
		h.helpMarked(u.d)
	case dflag:
		h.helpDelete(u.d)
	}
}

func (h *Handle) helpInsert(op *iinfo) {
	h.casChild(op.p, op.l, op.newInt) // ichild
	h.cas(&op.p.up, op.flagUpd, op.cleanUpd)
}

// helpDelete tries to mark the parent; on success the physical splice
// proceeds, otherwise the grandparent flag is backtracked.
func (h *Handle) helpDelete(op *dinfo) bool {
	if h.cas(&op.p.up, op.pupdate, op.markUpd) || op.p.up.Load() == op.markUpd {
		h.helpMarked(op)
		return true
	}
	// Another operation owns p: help it, then undo our flag on gp so the
	// delete can retry from scratch.
	cur := op.p.up.Load()
	if cur.s != clean {
		h.help(cur)
	}
	h.cas(&op.gp.up, op.flagUpd, op.cleanUpd)
	return false
}

// helpMarked physically removes p and l by swinging gp's child to l's
// sibling, then unflags gp.
func (h *Handle) helpMarked(op *dinfo) {
	other := op.p.right.Load()
	if other == op.l {
		other = op.p.left.Load()
	}
	h.casChild(op.gp, op.p, other) // dchild
	h.cas(&op.gp.up, op.flagUpd, op.cleanUpd)
}

// Insert adds key if absent: flag the parent (IFLAG), swing its child to a
// freshly built three-node subtree, unflag.
func (h *Handle) Insert(key uint64) bool {
	t := h.t
	for {
		_, p, l, _, pup := t.search(key)
		if l.key == key {
			h.Stats.Inserts++
			return false
		}
		if pup.s != clean {
			h.help(pup)
			continue
		}
		// Build the replacement subtree. EFRB copies the displaced leaf —
		// 4 allocations total, as Table 1 records.
		newLeaf := &node{key: key}
		newLeaf.up.Store(cleanNil)
		sibling := &node{key: l.key}
		sibling.up.Store(cleanNil)
		newInt := &node{}
		newInt.up.Store(cleanNil)
		if key < l.key {
			newInt.key = l.key
			newInt.left.Store(newLeaf)
			newInt.right.Store(sibling)
		} else {
			newInt.key = key
			newInt.left.Store(sibling)
			newInt.right.Store(newLeaf)
		}
		h.Stats.NodesAlloc += 3
		op := &iinfo{p: p, l: l, newInt: newInt}
		op.flagUpd = &update{s: iflag, i: op}
		op.cleanUpd = &update{s: clean, i: op}
		h.Stats.InfoAlloc++

		if h.cas(&p.up, pup, op.flagUpd) {
			h.helpInsert(op)
			h.Stats.Inserts++
			return true
		}
		h.help(p.up.Load())
	}
}

// Delete removes key if present: flag the grandparent (DFLAG), mark the
// parent (permanent), splice, unflag.
func (h *Handle) Delete(key uint64) bool {
	t := h.t
	for {
		gp, p, l, gpup, pup := t.search(key)
		if l.key != key {
			h.Stats.Deletes++
			return false
		}
		if gpup.s != clean {
			h.help(gpup)
			continue
		}
		if pup.s != clean {
			h.help(pup)
			continue
		}
		op := &dinfo{gp: gp, p: p, l: l, pupdate: pup}
		op.flagUpd = &update{s: dflag, d: op}
		op.markUpd = &update{s: mark, d: op}
		op.cleanUpd = &update{s: clean, d: op}
		h.Stats.InfoAlloc++

		if h.cas(&gp.up, gpup, op.flagUpd) {
			if h.helpDelete(op) {
				h.Stats.Deletes++
				return true
			}
		} else {
			h.help(gp.up.Load())
		}
	}
}

// ---- quiescent inspection ----

// Size counts stored user keys (quiescent only).
func (t *Tree) Size() int {
	n := 0
	t.Keys(func(uint64) bool { n++; return true })
	return n
}

// Keys visits user keys in ascending order (quiescent only).
func (t *Tree) Keys(yield func(uint64) bool) { t.visit(t.root, yield) }

func (t *Tree) visit(n *node, yield func(uint64) bool) bool {
	if n.isLeaf() {
		if keys.IsSentinel(n.key) {
			return true
		}
		return yield(n.key)
	}
	return t.visit(n.left.Load(), yield) && t.visit(n.right.Load(), yield)
}

// Audit validates external-BST invariants (quiescent only).
func (t *Tree) Audit() error {
	if t.root.key != keys.Inf2 {
		return fmt.Errorf("root key corrupted")
	}
	_, err := t.audit(t.root, 0, ^uint64(0))
	return err
}

func (t *Tree) audit(n *node, lo, hi uint64) (int, error) {
	if n.key < lo || n.key > hi {
		return 0, fmt.Errorf("key %#x outside [%#x, %#x]", n.key, lo, hi)
	}
	l, r := n.left.Load(), n.right.Load()
	switch {
	case l == nil && r == nil:
		return 1, nil
	case l == nil || r == nil:
		return 0, fmt.Errorf("internal node %#x has exactly one child", n.key)
	}
	if u := n.up.Load(); u.s == mark {
		return 0, fmt.Errorf("marked node %#x reachable in quiescent tree", n.key)
	}
	if n.key == 0 {
		return 0, fmt.Errorf("internal node has key 0 with a left subtree")
	}
	nl, err := t.audit(l, lo, n.key-1)
	if err != nil {
		return 0, err
	}
	nr, err := t.audit(r, n.key, hi)
	if err != nil {
		return 0, err
	}
	return nl + nr, nil
}
