package efrb

import (
	"testing"

	"repro/internal/keys"
)

// TestHelpingCompletesStalledDelete simulates a process that crashes right
// after winning the DFLAG CAS of a delete (the EFRB protocol's first
// step): the grandparent is flagged, the DInfo record published, but the
// stalled process never marks or splices. Subsequent conflicting
// operations must drive the delete to completion through help().
func TestHelpingCompletesStalledDelete(t *testing.T) {
	tr := New()
	h := tr.NewHandle()
	for _, k := range []int64{50, 25, 75} {
		if !h.Insert(keys.Map(k)) {
			t.Fatalf("setup insert %d failed", k)
		}
	}

	// Manually perform only the flag step of delete(25).
	victim := keys.Map(25)
	gp, p, l, gpup, pup := tr.search(victim)
	if l.key != victim {
		t.Fatal("setup: victim not found")
	}
	if gpup.s != clean || pup.s != clean {
		t.Fatal("setup: tree unexpectedly busy")
	}
	op := &dinfo{gp: gp, p: p, l: l, pupdate: pup}
	op.flagUpd = &update{s: dflag, d: op}
	op.markUpd = &update{s: mark, d: op}
	op.cleanUpd = &update{s: clean, d: op}
	if !gp.up.CompareAndSwap(gpup, op.flagUpd) {
		t.Fatal("setup: DFLAG CAS failed")
	}
	// ... and stall: no helpDelete call.

	// The key is still visible (the delete has not linearized).
	if !tr.Search(victim) {
		t.Fatal("victim invisible before physical removal")
	}

	// A second delete of the same key must find the flagged grandparent,
	// help the stalled delete to completion, and then itself return false
	// (the stalled operation is the one that logically removed the key).
	h2 := tr.NewHandle()
	if h2.Delete(victim) {
		t.Fatal("second delete returned true; the stalled delete owns the removal")
	}
	if h2.Stats.Helps == 0 {
		t.Fatal("no helping occurred despite a flagged grandparent")
	}
	if tr.Search(victim) {
		t.Fatal("stalled delete never completed: victim still present")
	}
	for _, k := range []int64{50, 75} {
		if !tr.Search(keys.Map(k)) {
			t.Fatalf("key %d lost during helping", k)
		}
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestHelpingCompletesStalledInsert: a process wins the IFLAG CAS and
// stalls before swinging the child pointer. Helpers must complete the
// insert (its linearization point is the successful flag).
func TestHelpingCompletesStalledInsert(t *testing.T) {
	tr := New()
	h := tr.NewHandle()
	for _, k := range []int64{50, 25, 75} {
		h.Insert(keys.Map(k))
	}

	newKey := keys.Map(60)
	_, p, l, _, pup := tr.search(newKey)
	if l.key == newKey {
		t.Fatal("setup: key already present")
	}
	if pup.s != clean {
		t.Fatal("setup: parent busy")
	}
	// Build the insert's replacement subtree exactly as Insert would.
	newLeaf := &node{key: newKey}
	newLeaf.up.Store(cleanNil)
	sibling := &node{key: l.key}
	sibling.up.Store(cleanNil)
	newInt := &node{}
	newInt.up.Store(cleanNil)
	if newKey < l.key {
		newInt.key = l.key
		newInt.left.Store(newLeaf)
		newInt.right.Store(sibling)
	} else {
		newInt.key = newKey
		newInt.left.Store(sibling)
		newInt.right.Store(newLeaf)
	}
	op := &iinfo{p: p, l: l, newInt: newInt}
	op.flagUpd = &update{s: iflag, i: op}
	op.cleanUpd = &update{s: clean, i: op}
	if !p.up.CompareAndSwap(pup, op.flagUpd) {
		t.Fatal("setup: IFLAG CAS failed")
	}
	// ... and stall: the child pointer still points at the old leaf.

	// A conflicting delete of the displaced leaf must help the insert
	// finish before it can proceed.
	h2 := tr.NewHandle()
	if !h2.Delete(keys.Map(75)) {
		t.Fatal("conflicting delete failed")
	}
	if h2.Stats.Helps == 0 {
		t.Fatal("no helping occurred despite a flagged parent")
	}
	if !tr.Search(newKey) {
		t.Fatal("stalled insert never completed")
	}
	if err := tr.Audit(); err != nil {
		t.Fatal(err)
	}
}
