// Package netchaos is a network fault-injection layer for cluster tests:
// a retargetable TCP proxy pinned between two members, with per-link
// rules — full partition, one-way blackhole, added latency and jitter, a
// bandwidth cap, and drop-after-N-bytes — that can change while
// connections are live. Faults are applied per forwarded chunk, so
// setting a partition makes an established replication stream go silent
// (heartbeats vanish, leases expire) without a TCP reset, exactly like a
// switch eating packets; healing the partition lets the same connection
// resume if both ends kept it open.
//
// Proxies are created before the processes they front (tests learn child
// addresses only after spawning them), so the forward target is settable
// after construction: until SetTarget, inbound connections are accepted
// and immediately closed, which dialers experience as a connect-then-EOF
// and retry.
//
// All randomness (jitter, schedule shuffling in callers) comes from a
// seeded splitmix64 generator so a chaos run reproduces from its seed.
package netchaos

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// chunkSize bounds one pump read; faults (latency, bandwidth, drop
// decisions) apply per chunk.
const chunkSize = 32 << 10

// Rule is the fault configuration of one link direction pair. The zero
// Rule forwards transparently.
type Rule struct {
	// Partition silently discards traffic in both directions. Connections
	// stay open — the remote sees silence, not a reset.
	Partition bool
	// BlackholeUp/BlackholeDown discard one direction only: Up is
	// client→target (e.g. a follower's acks vanish), Down is
	// target→client (e.g. the leader's heartbeats vanish).
	BlackholeUp   bool
	BlackholeDown bool
	// Latency is a base one-way delay added to every forwarded chunk;
	// Jitter adds a deterministic pseudo-random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBPS caps forwarding throughput in bytes per second
	// (0 = unlimited), modeled as a per-chunk sleep.
	BandwidthBPS int
	// DropAfterBytes hard-closes a connection once it has forwarded this
	// many bytes in total, both directions combined (0 = never). Models a
	// link that dies mid-transfer — snapshot ships, catch-up replays.
	DropAfterBytes int64
}

// Proxy is one listener forwarding to one (retargetable) address.
type Proxy struct {
	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool
	rng    *Rand

	mu     sync.Mutex
	target string
	rule   Rule
	conns  map[net.Conn]struct{}

	bytesUp   atomic.Int64
	bytesDown atomic.Int64
}

// New starts a proxy on a loopback ephemeral port with no target. seed
// feeds the jitter generator.
func New(seed uint64) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netchaos: listen: %w", err)
	}
	p := &Proxy{ln: ln, rng: NewRand(seed), conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address to hand to the dialing side.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetTarget points the proxy at the real endpoint. Existing connections
// keep their original target; new ones dial the new address.
func (p *Proxy) SetTarget(addr string) {
	p.mu.Lock()
	p.target = addr
	p.mu.Unlock()
}

// Target returns the current forward address ("" until SetTarget).
func (p *Proxy) Target() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// SetRule replaces the link's fault rule. It applies to live connections
// from their next chunk onward.
func (p *Proxy) SetRule(r Rule) {
	p.mu.Lock()
	p.rule = r
	p.mu.Unlock()
}

// Rule returns the current fault rule.
func (p *Proxy) Rule() Rule {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rule
}

// Sever closes every live connection (the listener keeps accepting).
// Unlike Partition this is a visible failure — dialers see resets and
// reconnect, subject to whatever rule is then in force.
func (p *Proxy) Sever() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// BytesForwarded reports total forwarded traffic (up, down).
func (p *Proxy) BytesForwarded() (up, down int64) {
	return p.bytesUp.Load(), p.bytesDown.Load()
}

// Close stops the listener and closes every connection.
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.ln.Close()
	p.Sever()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(c)
		}()
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

// handle runs one proxied connection: dial the target, then pump both
// directions until either side fails or a rule kills the link.
func (p *Proxy) handle(c net.Conn) {
	if !p.track(c) {
		c.Close()
		return
	}
	defer p.untrack(c)
	target := p.Target()
	if target == "" {
		return // connect-then-EOF; the dialer retries
	}
	t, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		return
	}
	if !p.track(t) {
		t.Close()
		return
	}
	defer p.untrack(t)

	var total atomic.Int64
	done := make(chan struct{}, 2)
	go p.pump(c, t, true, &total, done)
	go p.pump(t, c, false, &total, done)
	<-done
	c.Close()
	t.Close()
	<-done
}

// pump forwards src→dst one chunk at a time, consulting the rule fresh
// for every chunk so fault transitions land mid-stream.
func (p *Proxy) pump(src, dst net.Conn, up bool, total *atomic.Int64, done chan<- struct{}) {
	defer func() { done <- struct{}{} }()
	buf := make([]byte, chunkSize)
	for {
		nr, err := src.Read(buf)
		if nr > 0 {
			r := p.Rule()
			drop := r.Partition || (up && r.BlackholeUp) || (!up && r.BlackholeDown)
			if !drop {
				if d := r.Latency + p.rng.Duration(r.Jitter); d > 0 {
					time.Sleep(d)
				}
				if r.BandwidthBPS > 0 {
					time.Sleep(time.Duration(float64(nr) / float64(r.BandwidthBPS) * float64(time.Second)))
				}
				if _, werr := dst.Write(buf[:nr]); werr != nil {
					return
				}
				if up {
					p.bytesUp.Add(int64(nr))
				} else {
					p.bytesDown.Add(int64(nr))
				}
				if n := total.Add(int64(nr)); r.DropAfterBytes > 0 && n >= r.DropAfterBytes {
					src.Close()
					dst.Close()
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// Rand is a splitmix64 generator: tiny, seedable, lock-free, and — unlike
// the global math/rand source — reproducible per proxy, so a chaos run
// replays exactly from its seed.
type Rand struct{ state atomic.Uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.state.Store(seed)
	return r
}

// Next returns the next 64-bit value.
func (r *Rand) Next() uint64 {
	x := r.state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Intn returns a value in [0, n); n <= 0 returns 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Duration returns a value in [0, max); max <= 0 returns 0.
func (r *Rand) Duration(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(r.Next() % uint64(max))
}

// Event is one scheduled fault transition in a chaos script.
type Event struct {
	// At is the event's offset from the schedule's start.
	At time.Duration
	// Name labels the event in the run log.
	Name string
	// Do applies the transition (set a rule, sever a link, kill a node).
	Do func()
}

// ErrScheduleStopped reports a schedule interrupted via stop.
var ErrScheduleStopped = errors.New("netchaos: schedule stopped")

// RunSchedule fires events in At order relative to its own start time,
// blocking between them. Events with equal At keep their slice order, so
// a script is deterministic given a deterministic construction. logf (if
// non-nil) receives one line per event; stop (if non-nil) aborts the
// remainder.
func RunSchedule(events []Event, stop <-chan struct{}, logf func(format string, args ...any)) error {
	evs := make([]Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	start := time.Now()
	for _, e := range evs {
		if d := e.At - time.Since(start); d > 0 {
			if stop == nil {
				time.Sleep(d)
			} else {
				select {
				case <-stop:
					return ErrScheduleStopped
				case <-time.After(d):
				}
			}
		} else if stop != nil {
			select {
			case <-stop:
				return ErrScheduleStopped
			default:
			}
		}
		if logf != nil {
			logf("chaos: t=%v %s", e.At, e.Name)
		}
		e.Do()
	}
	return nil
}
