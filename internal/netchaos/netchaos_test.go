package netchaos

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) (addr string, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func newProxyFor(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	p.SetTarget(target)
	t.Cleanup(func() { p.Close() })
	return p
}

func roundtrip(t *testing.T, c net.Conn, msg string, timeout time.Duration) error {
	t.Helper()
	c.SetDeadline(time.Now().Add(timeout))
	if _, err := c.Write([]byte(msg)); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		return err
	}
	if string(buf) != msg {
		t.Fatalf("echo mismatch: got %q want %q", buf, msg)
	}
	return nil
}

func TestProxyForwards(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p := newProxyFor(t, addr)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := roundtrip(t, c, "hello through the proxy", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	up, down := p.BytesForwarded()
	if up == 0 || down == 0 {
		t.Fatalf("expected forwarded bytes both ways, got up=%d down=%d", up, down)
	}
}

// TestNoTargetConnectThenEOF: before SetTarget, dialers connect and get an
// immediate close — the retry-friendly behavior followers depend on.
func TestNoTargetConnectThenEOF(t *testing.T) {
	p, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF from untargeted proxy, got %v", err)
	}
}

// TestPartitionAndHeal: a live connection goes silent under Partition —
// no reset, no bytes — and the same connection resumes when healed.
func TestPartitionAndHeal(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p := newProxyFor(t, addr)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := roundtrip(t, c, "before", 2*time.Second); err != nil {
		t.Fatal(err)
	}

	p.SetRule(Rule{Partition: true})
	c.SetDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatalf("write into a partition must not error (silence, not reset): %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read through a partition returned data")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("expected timeout (silence), got %v", err)
	}

	p.SetRule(Rule{})
	if err := roundtrip(t, c, "after-heal", 2*time.Second); err != nil {
		t.Fatalf("healed link did not resume: %v", err)
	}
}

// TestBlackholeDown drops only target→client: writes flow, replies vanish.
func TestBlackholeDown(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p := newProxyFor(t, addr)
	p.SetRule(Rule{BlackholeDown: true})
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read through a down-blackhole returned data")
	}
	up, _ := p.BytesForwarded()
	if up == 0 {
		t.Fatal("upstream direction should still forward under a down-blackhole")
	}
}

func TestLatency(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p := newProxyFor(t, addr)
	const delay = 50 * time.Millisecond
	p.SetRule(Rule{Latency: delay})
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := roundtrip(t, c, "timed", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// One-way latency applies per direction: the echo roundtrip pays ~2×.
	if got := time.Since(start); got < 2*delay {
		t.Fatalf("roundtrip %v under injected latency %v per direction", got, delay)
	}
}

func TestDropAfterBytes(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p := newProxyFor(t, addr)
	p.SetRule(Rule{DropAfterBytes: 64})
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	c.Write(make([]byte, 128))
	// The link must die shortly after the budget is exceeded.
	_, err = io.ReadFull(c, make([]byte, 128))
	if err == nil {
		t.Fatal("connection survived past DropAfterBytes")
	}
}

func TestSeverKillsLiveConns(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p := newProxyFor(t, addr)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := roundtrip(t, c, "alive", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.Sever()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("severed connection still readable")
	}
	// The listener survives a sever: new connections work.
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := roundtrip(t, c2, "reconnected", 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestRetarget(t *testing.T) {
	addrA, stopA := echoServer(t)
	defer stopA()
	p := newProxyFor(t, addrA)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := roundtrip(t, c, "to-A", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()

	addrB, stopB := echoServer(t)
	defer stopB()
	p.SetTarget(addrB)
	stopA()
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := roundtrip(t, c2, "to-B", 2*time.Second); err != nil {
		t.Fatalf("retargeted proxy did not reach new endpoint: %v", err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("same-seed generators diverged at step %d: %d vs %d", i, av, bv)
		}
	}
	if NewRand(42).Next() == NewRand(43).Next() {
		t.Fatal("different seeds produced identical first values")
	}
	if NewRand(1).Intn(0) != 0 || NewRand(1).Duration(0) != 0 {
		t.Fatal("degenerate bounds must return 0")
	}
}

func TestRunScheduleOrderAndStop(t *testing.T) {
	var order []int
	err := RunSchedule([]Event{
		{At: 20 * time.Millisecond, Name: "second", Do: func() { order = append(order, 2) }},
		{At: 0, Name: "first", Do: func() { order = append(order, 1) }},
		{At: 40 * time.Millisecond, Name: "third", Do: func() { order = append(order, 3) }},
	}, nil, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}

	stop := make(chan struct{})
	close(stop)
	var fired atomic.Bool
	err = RunSchedule([]Event{{At: time.Hour, Name: "never", Do: func() { fired.Store(true) }}}, stop, nil)
	if !errors.Is(err, ErrScheduleStopped) {
		t.Fatalf("expected ErrScheduleStopped, got %v", err)
	}
	if fired.Load() {
		t.Fatal("stopped schedule still fired an event")
	}
}
