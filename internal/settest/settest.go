// Package settest is a conformance battery for concurrent set
// implementations over the internal uint64 key space.
//
// Every tree in this module (the Natarajan–Mittal tree and each baseline
// from the paper's evaluation) passes the same battery: sequential
// semantics, property-based model equivalence, and concurrent stress with
// counting invariants. Implementation-specific tests (helping, pruning,
// instruction counts) live in each implementation's own package.
package settest

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

// Set is the minimal concurrent dictionary interface every implementation
// provides, over internal (already mapped) keys.
type Set interface {
	Insert(key uint64) bool
	Delete(key uint64) bool
	Search(key uint64) bool
}

// Auditor is implemented by sets that can validate their own structural
// invariants in a quiescent state.
type Auditor interface {
	Audit() error
}

// Sizer is implemented by sets that can count stored keys in a quiescent
// state.
type Sizer interface {
	Size() int
}

// Ascender is implemented by sets that can iterate keys in ascending
// order in a quiescent state.
type Ascender interface {
	Keys(yield func(uint64) bool)
}

// Factory creates a fresh, empty set sized for at least the given number of
// live keys and the given total operation count (implementations without
// preallocation may ignore both).
type Factory func(capacity int) Set

func audit(t *testing.T, s Set) {
	t.Helper()
	if a, ok := s.(Auditor); ok {
		if err := a.Audit(); err != nil {
			t.Fatalf("audit: %v", err)
		}
	}
}

func size(s Set) (int, bool) {
	if z, ok := s.(Sizer); ok {
		return z.Size(), true
	}
	return 0, false
}

// Run executes the full conformance battery against the factory.
func Run(t *testing.T, f Factory) {
	t.Run("Empty", func(t *testing.T) { testEmpty(t, f) })
	t.Run("SingleKey", func(t *testing.T) { testSingleKey(t, f) })
	t.Run("OrderedInserts", func(t *testing.T) { testOrderedInserts(t, f) })
	t.Run("DeleteHalf", func(t *testing.T) { testDeleteHalf(t, f) })
	t.Run("FillDrainRounds", func(t *testing.T) { testFillDrainRounds(t, f) })
	t.Run("ExtremeKeys", func(t *testing.T) { testExtremeKeys(t, f) })
	t.Run("ModelQuick", func(t *testing.T) { testModelQuick(t, f) })
	t.Run("ModelLarge", func(t *testing.T) { testModelLarge(t, f) })
	t.Run("ConcurrentDisjoint", func(t *testing.T) { testConcurrentDisjoint(t, f) })
	t.Run("ConcurrentChurn", func(t *testing.T) { testConcurrentChurn(t, f) })
	t.Run("ReadersDuringChurn", func(t *testing.T) { testReadersDuringChurn(t, f) })
	t.Run("InsertDeleteRace", func(t *testing.T) { testInsertDeleteRace(t, f) })
}

func testEmpty(t *testing.T, f Factory) {
	s := f(16)
	if s.Search(keys.Map(0)) || s.Search(keys.Map(-1)) || s.Search(keys.Map(keys.MaxUser)) {
		t.Fatal("empty set claims to contain a key")
	}
	if s.Delete(keys.Map(5)) {
		t.Fatal("delete on empty set returned true")
	}
	if n, ok := size(s); ok && n != 0 {
		t.Fatalf("empty set size = %d", n)
	}
	audit(t, s)
}

func testSingleKey(t *testing.T, f Factory) {
	s := f(16)
	k := keys.Map(42)
	if !s.Insert(k) {
		t.Fatal("insert into empty set failed")
	}
	if s.Insert(k) {
		t.Fatal("duplicate insert succeeded")
	}
	if !s.Search(k) {
		t.Fatal("inserted key not found")
	}
	if !s.Delete(k) {
		t.Fatal("delete of present key failed")
	}
	if s.Delete(k) || s.Search(k) {
		t.Fatal("key still visible after delete")
	}
	audit(t, s)
}

func testOrderedInserts(t *testing.T, f Factory) {
	const n = 512
	for name, gen := range map[string]func(int) int64{
		"ascending":  func(i int) int64 { return int64(i) },
		"descending": func(i int) int64 { return int64(n - i) },
		"alternate":  func(i int) int64 { return int64((i%2)*n + i) },
	} {
		t.Run(name, func(t *testing.T) {
			s := f(n)
			for i := 0; i < n; i++ {
				if !s.Insert(keys.Map(gen(i))) {
					t.Fatalf("insert #%d failed", i)
				}
			}
			for i := 0; i < n; i++ {
				if !s.Search(keys.Map(gen(i))) {
					t.Fatalf("key #%d missing", i)
				}
			}
			if sz, ok := size(s); ok && sz != n {
				t.Fatalf("size = %d, want %d", sz, n)
			}
			audit(t, s)
		})
	}
}

func testDeleteHalf(t *testing.T, f Factory) {
	const n = 400
	s := f(n)
	for i := 0; i < n; i++ {
		s.Insert(keys.Map(int64(i)))
	}
	for i := 0; i < n; i += 2 {
		if !s.Delete(keys.Map(int64(i))) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := 0; i < n; i++ {
		want := i%2 == 1
		if got := s.Search(keys.Map(int64(i))); got != want {
			t.Fatalf("search %d = %v, want %v", i, got, want)
		}
	}
	audit(t, s)
}

func testFillDrainRounds(t *testing.T, f Factory) {
	s := f(256)
	for round := 0; round < 4; round++ {
		for i := 0; i < 128; i++ {
			if !s.Insert(keys.Map(int64(i))) {
				t.Fatalf("round %d insert %d failed", round, i)
			}
		}
		for i := 127; i >= 0; i-- {
			if !s.Delete(keys.Map(int64(i))) {
				t.Fatalf("round %d delete %d failed", round, i)
			}
		}
		if sz, ok := size(s); ok && sz != 0 {
			t.Fatalf("round %d size = %d", round, sz)
		}
		audit(t, s)
	}
}

func testExtremeKeys(t *testing.T, f Factory) {
	s := f(16)
	extremes := []int64{0, 1, -1, keys.MaxUser, -1 << 63, 1<<62 - 1}
	for _, k := range extremes {
		if !s.Insert(keys.Map(k)) {
			t.Fatalf("insert extreme %d failed", k)
		}
	}
	for _, k := range extremes {
		if !s.Search(keys.Map(k)) {
			t.Fatalf("extreme %d missing", k)
		}
	}
	for _, k := range extremes {
		if !s.Delete(keys.Map(k)) {
			t.Fatalf("delete extreme %d failed", k)
		}
	}
	audit(t, s)
}

func testModelQuick(t *testing.T, f Factory) {
	type op struct {
		Kind byte
		Key  int8 // very small key space: maximal structural churn
	}
	prop := func(ops []op) bool {
		s := f(256)
		model := map[int64]bool{}
		for _, o := range ops {
			k := int64(o.Key)
			u := keys.Map(k)
			switch o.Kind % 3 {
			case 0:
				if got, want := s.Insert(u), !model[k]; got != want {
					return false
				}
				model[k] = true
			case 1:
				if got, want := s.Delete(u), model[k]; got != want {
					return false
				}
				delete(model, k)
			default:
				if got, want := s.Search(u), model[k]; got != want {
					return false
				}
			}
		}
		if sz, ok := size(s); ok && sz != len(model) {
			return false
		}
		if a, ok := s.(Auditor); ok && a.Audit() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func testModelLarge(t *testing.T, f Factory) {
	s := f(4096)
	rng := rand.New(rand.NewSource(99))
	model := map[int64]bool{}
	for i := 0; i < 40000; i++ {
		k := int64(rng.Intn(3000) - 1500)
		u := keys.Map(k)
		switch rng.Intn(4) {
		case 0, 1:
			if got, want := s.Insert(u), !model[k]; got != want {
				t.Fatalf("op %d: insert(%d) = %v want %v", i, k, got, want)
			}
			model[k] = true
		case 2:
			if got, want := s.Delete(u), model[k]; got != want {
				t.Fatalf("op %d: delete(%d) = %v want %v", i, k, got, want)
			}
			delete(model, k)
		default:
			if got, want := s.Search(u), model[k]; got != want {
				t.Fatalf("op %d: search(%d) = %v want %v", i, k, got, want)
			}
		}
	}
	if sz, ok := size(s); ok && sz != len(model) {
		t.Fatalf("size = %d, model = %d", sz, len(model))
	}
	audit(t, s)

	// Iteration must yield exactly the model's keys, ascending.
	if asc, ok := s.(Ascender); ok {
		var got []uint64
		asc.Keys(func(u uint64) bool {
			got = append(got, u)
			return true
		})
		if len(got) != len(model) {
			t.Fatalf("iteration yielded %d keys, model has %d", len(got), len(model))
		}
		for i, u := range got {
			if i > 0 && got[i-1] >= u {
				t.Fatalf("iteration not strictly ascending at %d", i)
			}
			if !model[keys.Unmap(u)] {
				t.Fatalf("iteration yielded key %d not in model", keys.Unmap(u))
			}
		}
	}
}

func testConcurrentDisjoint(t *testing.T, f Factory) {
	const (
		workers = 8
		each    = 1500
	)
	s := f(workers * each)
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if !s.Insert(keys.Map(int64(w*each + i))) {
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		t.Fatal("an insert of a fresh key failed")
	}
	for i := 0; i < workers*each; i++ {
		if !s.Search(keys.Map(int64(i))) {
			t.Fatalf("key %d missing", i)
		}
	}
	if sz, ok := size(s); ok && sz != workers*each {
		t.Fatalf("size = %d, want %d", sz, workers*each)
	}
	audit(t, s)

	// Drain concurrently too.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if !s.Delete(keys.Map(int64(w*each + i))) {
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		t.Fatal("a delete of an owned key failed")
	}
	if sz, ok := size(s); ok && sz != 0 {
		t.Fatalf("size after drain = %d", sz)
	}
	audit(t, s)
}

func testConcurrentChurn(t *testing.T, f Factory) {
	const (
		workers  = 8
		opsEach  = 15000
		keySpace = 48
	)
	s := f(keySpace * 4)
	var ins, del [keySpace]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				k := rng.Intn(keySpace)
				u := keys.Map(int64(k))
				switch rng.Intn(3) {
				case 0:
					if s.Insert(u) {
						ins[k].Add(1)
					}
				case 1:
					if s.Delete(u) {
						del[k].Add(1)
					}
				default:
					s.Search(u)
				}
			}
		}(int64(w)*7 + 1)
	}
	wg.Wait()
	audit(t, s)
	for k := 0; k < keySpace; k++ {
		diff := ins[k].Load() - del[k].Load()
		present := s.Search(keys.Map(int64(k)))
		if !(diff == 0 && !present || diff == 1 && present) {
			t.Fatalf("key %d: inserts=%d deletes=%d present=%v", k, ins[k].Load(), del[k].Load(), present)
		}
	}
}

func testReadersDuringChurn(t *testing.T, f Factory) {
	const keySpace = 128
	s := f(keySpace * 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys.Map(int64(rng.Intn(keySpace)))
				if rng.Intn(2) == 0 {
					s.Insert(k)
				} else {
					s.Delete(k)
				}
			}
		}(int64(w) + 11)
	}
	var reads atomic.Int64
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Search(keys.Map(int64(rng.Intn(keySpace))))
				reads.Add(1)
			}
		}(int64(r) + 31)
	}
	for reads.Load() < 30000 {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	audit(t, s)
}

// testInsertDeleteRace makes every worker fight over the same single key:
// the strictest alternation test. Globally, successful inserts and deletes
// of one key must interleave I D I D ... — we can't observe the order, but
// the counts must balance to the final presence.
func testInsertDeleteRace(t *testing.T, f Factory) {
	s := f(16)
	const workers = 8
	const opsEach = 8000
	var ins, del atomic.Int64
	u := keys.Map(7)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				if (i+w)%2 == 0 {
					if s.Insert(u) {
						ins.Add(1)
					}
				} else {
					if s.Delete(u) {
						del.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	diff := ins.Load() - del.Load()
	present := s.Search(u)
	if !(diff == 0 && !present || diff == 1 && present) {
		t.Fatalf("single-key race: inserts=%d deletes=%d present=%v", ins.Load(), del.Load(), present)
	}
	audit(t, s)
}
