package settest

import (
	"testing"
)

// This file is the generic half of the exhaustive interleaving explorer:
// operations instrumented with a step hook are driven one atomic step at a
// time through every possible schedule. The tree-specific halves (hook
// installation, scenario setup, validation) live in each implementation's
// schedule_test.go.

// SteppedOp drives one concurrent operation through its atomic steps.
type SteppedOp struct {
	ready chan struct{}
	grant chan struct{}
	done  chan bool

	Finished   bool
	Result     bool
	FirstGrant int
	LastGrant  int
}

// LaunchStepped starts run in a goroutine after arming its step hook via
// setHook. run must call the hook before every atomic step (and at least
// once); LaunchStepped returns once the operation is parked at its first
// step.
func LaunchStepped(setHook func(hook func(string)), run func() bool) *SteppedOp {
	op := &SteppedOp{
		ready:      make(chan struct{}),
		grant:      make(chan struct{}),
		done:       make(chan bool),
		FirstGrant: -1,
	}
	setHook(func(string) {
		op.ready <- struct{}{}
		<-op.grant
	})
	go func() { op.done <- run() }()
	<-op.ready
	return op
}

// Step grants one atomic step; reports whether the operation finished.
func (op *SteppedOp) Step(tick int) bool {
	if op.FirstGrant < 0 {
		op.FirstGrant = tick
	}
	op.LastGrant = tick
	op.grant <- struct{}{}
	select {
	case <-op.ready:
		return false
	case res := <-op.done:
		op.Finished = true
		op.Result = res
		return true
	}
}

// MaxScheduleSteps bounds any single schedule; exceeding it indicates
// livelock (with ≤3 operations every conflict resolves in a few retries).
const MaxScheduleSteps = 120

// RunSchedule replays a freshly built scenario under the given schedule
// prefix, then drains every unfinished operation round-robin so all
// goroutines exit. It returns the ops and which were still unfinished
// after the prefix.
func RunSchedule(t *testing.T, build func() []*SteppedOp, prefix []int) (ops []*SteppedOp, unfinished []int) {
	t.Helper()
	ops = build()
	tick := 0
	for _, i := range prefix {
		if ops[i].Finished {
			t.Fatalf("schedule grants step to finished op %d", i)
		}
		ops[i].Step(tick)
		tick++
	}
	for i, op := range ops {
		if !op.Finished {
			unfinished = append(unfinished, i)
		}
	}
	for {
		progressed := false
		for _, op := range ops {
			if !op.Finished {
				op.Step(tick)
				tick++
				progressed = true
			}
		}
		if !progressed {
			break
		}
		if tick > MaxScheduleSteps {
			t.Fatalf("no completion after %d steps (livelock?)", tick)
		}
	}
	return ops, unfinished
}

// ExploreExhaustive enumerates every schedule by DFS over which unfinished
// operation takes the next atomic step, invoking validate for each
// complete schedule. It returns the number of schedules validated.
func ExploreExhaustive(t *testing.T, build func() []*SteppedOp, validate func(t *testing.T, schedule []int, ops []*SteppedOp)) int {
	t.Helper()
	count := 0
	var dfs func(prefix []int)
	dfs = func(prefix []int) {
		if len(prefix) > MaxScheduleSteps {
			t.Fatalf("schedule exceeded %d steps", MaxScheduleSteps)
		}
		ops, unfinished := RunSchedule(t, build, prefix)
		if len(unfinished) <= 1 {
			// Zero: complete. One: the rest of the schedule is forced and
			// the drain already executed exactly it.
			count++
			validate(t, prefix, ops)
			return
		}
		for _, i := range unfinished {
			dfs(append(append([]int{}, prefix...), i))
		}
	}
	dfs(nil)
	return count
}
