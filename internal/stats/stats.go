// Package stats provides the small statistical and tabulation helpers the
// benchmark harness uses to aggregate repeated runs and render the paper's
// tables and figure series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of measurements.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes sample statistics (sample standard deviation).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Speedup returns a/b as a percentage improvement of a over b, the form the
// paper reports ("NM-BST outperforms X by N%").
func Speedup(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return (a/b - 1) * 100
}

// Median returns the median of xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if len(c)%2 == 1 {
		return c[len(c)/2]
	}
	return (c[len(c)/2-1] + c[len(c)/2]) / 2
}

// Table renders rows as a fixed-width text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly (2 decimals, thousands unseparated).
func FormatFloat(v float64) string {
	switch {
	case math.IsInf(v, 0) || math.IsNaN(v):
		return fmt.Sprintf("%v", v)
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// HumanCount renders an operation count like "1.2M".
func HumanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
