package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("bad summary: %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary wrong")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
}

func TestSummarizeBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			// Keep magnitudes bounded so the sum cannot overflow — the
			// property under test is ordering, not extended-range arithmetic.
			xs[i] = math.Mod(x, 1e12)
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); got != 100 {
		t.Fatalf("Speedup(200,100) = %v, want 100", got)
	}
	if got := Speedup(100, 100); got != 0 {
		t.Fatalf("Speedup(100,100) = %v, want 0", got)
	}
	if got := Speedup(50, 100); got != -50 {
		t.Fatalf("Speedup(50,100) = %v, want -50", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("median even = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Fatalf("median empty = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("algo", "ops/s")
	tb.AddRow("nm", 123456.789)
	tb.AddRow("efrb", 42.0)
	s := tb.String()
	if !strings.Contains(s, "algo") || !strings.Contains(s, "123456.79") {
		t.Fatalf("table render wrong:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d", len(lines))
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "algo,ops/s\n") {
		t.Fatalf("csv wrong:\n%s", csv)
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[float64]string{
		12:      "12",
		1200:    "1.20K",
		3400000: "3.40M",
		2.5e9:   "2.50G",
	}
	for in, want := range cases {
		if got := HumanCount(in); got != want {
			t.Fatalf("HumanCount(%v) = %q, want %q", in, got, want)
		}
	}
}

// Zero- and one-sample summaries feed directly into bench table rendering
// (reps=1 is the default), so their exact values are contract, not corner.
func TestSummaryMathAtZeroAndOneSample(t *testing.T) {
	z := Summarize(nil)
	if z.N != 0 || z.Mean != 0 || z.Std != 0 || z.Min != 0 || z.Max != 0 {
		t.Fatalf("Summarize(nil) = %+v, want all-zero summary", z)
	}
	z = Summarize([]float64{})
	if z.N != 0 || z.Min != 0 || z.Max != 0 {
		t.Fatalf("Summarize(empty) = %+v, want all-zero summary", z)
	}
	one := Summarize([]float64{3.5})
	if one.N != 1 || one.Mean != 3.5 || one.Std != 0 || one.Min != 3.5 || one.Max != 3.5 {
		t.Fatalf("Summarize(single) = %+v", one)
	}
	if got := Median([]float64{3.5}); got != 3.5 {
		t.Fatalf("Median(single) = %v, want 3.5", got)
	}
	if got := Median([]float64{}); got != 0 {
		t.Fatalf("Median(empty) = %v, want 0", got)
	}
	if got := Speedup(100, 0); !math.IsInf(got, 1) {
		t.Fatalf("Speedup(_, 0) = %v, want +Inf", got)
	}
}
