package failpoint

import (
	"sync"
	"testing"
	"time"
)

func TestNilAndUnknownSitesAreInert(t *testing.T) {
	s := NewSet()
	for i := 0; i < 100; i++ {
		if s.Hit("never-armed") {
			t.Fatal("unarmed site injected a failure")
		}
	}
	if _, ok := s.sites["never-armed"]; ok {
		t.Fatal("Hit created a site as a side effect")
	}
}

func TestFailOnce(t *testing.T) {
	s := NewSet()
	s.Site("alloc").FailOnce()
	got := 0
	for i := 0; i < 10; i++ {
		if s.Hit("alloc") {
			got++
		}
	}
	if got != 1 {
		t.Fatalf("FailOnce injected %d failures, want 1", got)
	}
	if h := s.Site("alloc").Hits(); h != 10 {
		t.Fatalf("Hits = %d, want 10", h)
	}
}

func TestFailEveryN(t *testing.T) {
	s := NewSet()
	s.Site("alloc").FailEveryN(3)
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, s.Hit("alloc"))
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("hit %d: injected=%v, want %v (pattern %v)", i, pattern[i], want[i], pattern)
		}
	}
	s.Site("alloc").Reset()
	for i := 0; i < 6; i++ {
		if s.Hit("alloc") {
			t.Fatal("site injected after Reset")
		}
	}
}

func TestStallUntilReleased(t *testing.T) {
	s := NewSet()
	site := s.Site("step")
	site.StallNext()

	done := make(chan struct{})
	go func() {
		s.Hit("step")
		close(done)
	}()
	if !site.WaitStalled(5 * time.Second) {
		t.Fatal("goroutine never parked at the site")
	}
	select {
	case <-done:
		t.Fatal("goroutine passed the site before Release")
	case <-time.After(20 * time.Millisecond):
	}
	// A one-shot stall: other goroutines sail through while one is parked.
	for i := 0; i < 5; i++ {
		s.Hit("step")
	}
	site.Release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("goroutine still parked after Release")
	}
	site.Release() // idempotent
}

func TestReleaseBeforeHitDisarms(t *testing.T) {
	s := NewSet()
	site := s.Site("step")
	site.StallNext()
	site.Release()
	done := make(chan struct{})
	go func() {
		s.Hit("step")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hit parked even though the stall was disarmed")
	}
}

func TestConcurrentHits(t *testing.T) {
	s := NewSet()
	site := s.Site("hot")
	site.FailEveryN(2)
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	var injected sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 0
			for i := 0; i < each; i++ {
				if s.Hit("hot") {
					n++
				}
			}
			injected.Store(w, n)
		}(w)
	}
	wg.Wait()
	total := 0
	injected.Range(func(_, v any) bool { total += v.(int); return true })
	if want := workers * each / 2; total != want {
		t.Fatalf("injected %d failures over %d hits, want exactly %d", total, workers*each, want)
	}
	if h := site.Hits(); h != workers*each {
		t.Fatalf("Hits = %d, want %d", h, workers*each)
	}
}
