// Package failpoint is a tiny fault-injection registry for exercising the
// failure paths of the lock-free trees deterministically.
//
// A Set holds named sites. Code under test evaluates a site with Set.Hit
// at the moment the fault would strike (an allocation, an atomic step of a
// delete); tests arm sites with one of three behaviors:
//
//   - trigger once (FailOnce) or on every nth evaluation (FailEveryN):
//     Hit returns true and the caller injects its failure (e.g. treats an
//     allocation as out of capacity);
//   - stall until released (StallNext): the next goroutine to evaluate the
//     site parks inside Hit until Release, letting a test freeze one
//     operation between two atomic instructions while asserting that every
//     other thread keeps making progress — the lock-freedom property.
//
// Injection is test-only by default: production code passes a nil *Set and
// pays a single pointer comparison per site. A non-nil Set with an unarmed
// site costs one mutex-guarded map lookup — acceptable for tests, never on
// by default.
package failpoint

import (
	"sync"
	"time"
)

// Set is an independent registry of named sites. The zero value is not
// usable; call NewSet. A nil *Set disables injection entirely (callers
// guard evaluation with a nil check).
type Set struct {
	mu    sync.Mutex
	sites map[string]*Site
}

// NewSet creates an empty registry.
func NewSet() *Set {
	return &Set{sites: make(map[string]*Site)}
}

// Site returns the named site, creating it if necessary. Safe for
// concurrent use.
func (s *Set) Site(name string) *Site {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.sites[name]
	if st == nil {
		st = &Site{name: name}
		s.sites[name] = st
	}
	return st
}

// Hit evaluates the named site: it counts the visit, parks the caller if a
// stall is armed, and reports whether the caller should inject a failure.
// Evaluating a name no test ever armed is cheap and returns false without
// creating the site.
func (s *Set) Hit(name string) bool {
	s.mu.Lock()
	st := s.sites[name]
	s.mu.Unlock()
	if st == nil {
		return false
	}
	return st.hit()
}

// Site is one named injection point. All methods are safe for concurrent
// use.
type Site struct {
	name string

	mu   sync.Mutex
	hits uint64

	// failure triggering: every nth evaluation fails, remaining bounds the
	// total number of injections (-1 = unlimited).
	every     int
	remaining int
	sinceFail int

	// stall-until-released
	stallArmed bool
	parked     chan struct{} // closed by the goroutine that parks
	release    chan struct{} // closed by Release
}

// Name returns the site's name.
func (st *Site) Name() string { return st.name }

// Hits returns how many times the site has been evaluated.
func (st *Site) Hits() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.hits
}

// FailOnce arms the site to inject exactly one failure, on its next
// evaluation.
func (st *Site) FailOnce() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.every, st.remaining, st.sinceFail = 1, 1, 0
}

// FailEveryN arms the site to inject a failure on every nth evaluation
// from now on, with no bound on the total count. n < 1 disarms.
func (st *Site) FailEveryN(n int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n < 1 {
		st.every, st.remaining = 0, 0
		return
	}
	st.every, st.remaining, st.sinceFail = n, -1, 0
}

// StallNext arms the site so that the next goroutine to evaluate it parks
// until Release. Re-arming replaces any previous, un-hit stall.
func (st *Site) StallNext() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.stallArmed = true
	st.parked = make(chan struct{})
	st.release = make(chan struct{})
}

// WaitStalled blocks until a goroutine is parked at the site (true) or the
// timeout elapses (false). Call after StallNext.
func (st *Site) WaitStalled(timeout time.Duration) bool {
	st.mu.Lock()
	ch := st.parked
	st.mu.Unlock()
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Release frees a goroutine parked by StallNext (and disarms a stall that
// has not yet been hit). Idempotent.
func (st *Site) Release() {
	st.mu.Lock()
	r := st.release
	st.release = nil
	st.stallArmed = false
	st.mu.Unlock()
	if r != nil {
		close(r)
	}
}

// Reset disarms every behavior and frees any parked goroutine. The hit
// counter is preserved.
func (st *Site) Reset() {
	st.Release()
	st.mu.Lock()
	st.every, st.remaining, st.sinceFail = 0, 0, 0
	st.mu.Unlock()
}

// hit is the evaluation core behind Set.Hit.
func (st *Site) hit() bool {
	st.mu.Lock()
	st.hits++
	inject := false
	if st.every > 0 && st.remaining != 0 {
		st.sinceFail++
		if st.sinceFail >= st.every {
			st.sinceFail = 0
			if st.remaining > 0 {
				st.remaining--
			}
			inject = true
		}
	}
	var parked, release chan struct{}
	if st.stallArmed {
		st.stallArmed = false
		parked, release = st.parked, st.release
	}
	st.mu.Unlock()
	if parked != nil {
		close(parked)
		<-release
	}
	return inject
}
